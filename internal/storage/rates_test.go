package storage

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"authorityflow/internal/datagen"
	"authorityflow/internal/graph"
)

func TestRatesJSONRoundTrip(t *testing.T) {
	d := datagen.NewDBLPSchema()
	r := d.ExpertRates()
	var buf bytes.Buffer
	if err := SaveRates(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Paper-cites->Paper") {
		t.Errorf("JSON lacks readable names:\n%s", buf.String())
	}
	got, err := LoadRates(&buf, d.Schema)
	if err != nil {
		t.Fatal(err)
	}
	gv, wv := got.Vector(), r.Vector()
	for i := range wv {
		if gv[i] != wv[i] {
			t.Fatalf("rate %d: %v vs %v", i, gv[i], wv[i])
		}
	}
}

func TestLoadRatesRejectsMismatch(t *testing.T) {
	d := datagen.NewDBLPSchema()
	bio := datagen.NewBioSchema()
	var buf bytes.Buffer
	if err := SaveRates(&buf, d.ExpertRates()); err != nil {
		t.Fatal(err)
	}
	// DBLP rates against the bio schema: unknown names.
	if _, err := LoadRates(bytes.NewReader(buf.Bytes()), bio.Schema); err == nil {
		t.Error("cross-schema load should fail")
	}
	// Garbage.
	if _, err := LoadRates(strings.NewReader("{"), d.Schema); err == nil {
		t.Error("garbage should fail")
	}
	// Over-unity rates are rejected by validation.
	if _, err := LoadRates(strings.NewReader(`{"rates":{"Paper-cites->Paper":0.9,"Paper-by->Author":0.9}}`), d.Schema); err == nil {
		t.Error("invalid outgoing sums should fail")
	}
	// Negative rates are rejected.
	if _, err := LoadRates(strings.NewReader(`{"rates":{"Paper-cites->Paper":-1}}`), d.Schema); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestRatesFileRoundTrip(t *testing.T) {
	d := datagen.NewDBLPSchema()
	path := filepath.Join(t.TempDir(), "rates.json")
	if err := SaveRatesFile(path, d.ExpertRates()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRatesFile(path, d.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rate(graph.TransferType(d.Cites, graph.Forward)) != 0.7 {
		t.Error("file round trip lost rates")
	}
	if _, err := LoadRatesFile(filepath.Join(t.TempDir(), "missing.json"), d.Schema); err == nil {
		t.Error("missing file should error")
	}
}

func TestRatesAbsentTypesDefaultZero(t *testing.T) {
	d := datagen.NewDBLPSchema()
	got, err := LoadRates(strings.NewReader(`{"rates":{"Paper-cites->Paper":0.5}}`), d.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rate(graph.TransferType(d.By, graph.Forward)) != 0 {
		t.Error("absent type should default to 0")
	}
	if got.Rate(graph.TransferType(d.Cites, graph.Forward)) != 0.5 {
		t.Error("present type lost")
	}
}
