package storage

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestAtomicWriteFileReopen is the write-then-reopen durability check:
// the bytes handed to write() are exactly what a fresh open of the
// final path reads back, the temp file is gone, and overwriting an
// existing file replaces its content completely (no stale tail).
func TestAtomicWriteFileReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	payload := bytes.Repeat([]byte("authority-flow"), 1024)

	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("reopened file: %d bytes, want %d identical bytes", len(got), len(payload))
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: stat err = %v", err)
	}

	// Overwrite with a SHORTER payload: rename must fully replace.
	short := []byte("v2")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write(short)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, short) {
		t.Fatalf("overwrite left %q, want %q", got, short)
	}
}

// TestAtomicWriteFileFailure: an error from write() must leave neither
// the final file nor the temp file, and must not clobber an existing
// file under the final name.
func TestAtomicWriteFileFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("original"))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("mid-write failure")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the write callback's error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("failed write clobbered previous content: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind after failure: stat err = %v", err)
	}
}
