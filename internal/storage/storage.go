// Package storage persists datasets and exports explaining subgraphs.
// Datasets (graph + rates) serialize to a versioned gob snapshot so the
// synthetic corpora of the experiments can be generated once and
// reloaded; explaining subgraphs export to JSON (for programmatic
// consumers, mirroring the paper's deployed web demo) and Graphviz DOT
// (for display to the user, the Section 4 motivation).
package storage

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"authorityflow/internal/datagen"
	"authorityflow/internal/graph"
)

// snapshotVersion guards against decoding snapshots from incompatible
// releases.
const snapshotVersion = 1

// snapshot is the portable on-disk form of a dataset: the schema and
// raw node/edge lists, from which the CSR graph is rebuilt on load.
type snapshot struct {
	Version   int
	Name      string
	NodeTypes []string
	EdgeTypes []snapshotEdgeType
	Rates     []float64
	Labels    []int32
	Attrs     [][]graph.Attr
	Edges     []snapshotEdge
}

type snapshotEdgeType struct {
	Role     string
	From, To int32
}

type snapshotEdge struct {
	From, To int32
	Type     int32
}

// Save writes a dataset snapshot to w.
func Save(w io.Writer, ds *datagen.Dataset) error {
	g := ds.Graph
	s := g.Schema()
	snap := snapshot{
		Version: snapshotVersion,
		Name:    ds.Name,
		Rates:   ds.Rates.Vector(),
	}
	for t := 0; t < s.NumNodeTypes(); t++ {
		snap.NodeTypes = append(snap.NodeTypes, s.TypeName(graph.TypeID(t)))
	}
	for e := 0; e < s.NumEdgeTypes(); e++ {
		et := s.EdgeTypeInfo(graph.EdgeTypeID(e))
		snap.EdgeTypes = append(snap.EdgeTypes, snapshotEdgeType{Role: et.Role, From: int32(et.From), To: int32(et.To)})
	}
	for v := 0; v < g.NumNodes(); v++ {
		snap.Labels = append(snap.Labels, int32(g.Label(graph.NodeID(v))))
		snap.Attrs = append(snap.Attrs, g.Attrs(graph.NodeID(v)))
	}
	// Forward transfer arcs correspond one-to-one with data edges.
	for v := 0; v < g.NumNodes(); v++ {
		for _, a := range g.OutArcs(graph.NodeID(v)) {
			if a.Type.Dir() == graph.Forward {
				snap.Edges = append(snap.Edges, snapshotEdge{
					From: int32(v), To: int32(a.To), Type: int32(a.Type.EdgeType()),
				})
			}
		}
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reads a dataset snapshot from r and rebuilds the graph.
func Load(r io.Reader) (*datagen.Dataset, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("storage: decode: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("storage: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	s := graph.NewSchema()
	for _, name := range snap.NodeTypes {
		s.AddNodeType(name)
	}
	for _, et := range snap.EdgeTypes {
		if _, err := s.AddEdgeType(et.Role, graph.TypeID(et.From), graph.TypeID(et.To)); err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
	}
	b := graph.NewBuilder(s)
	for i, l := range snap.Labels {
		b.AddNode(graph.TypeID(l), snap.Attrs[i]...)
	}
	for _, e := range snap.Edges {
		b.AddEdge(graph.NodeID(e.From), graph.NodeID(e.To), graph.EdgeTypeID(e.Type))
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("storage: rebuild: %w", err)
	}
	rates := graph.NewRates(s)
	if err := rates.SetVector(snap.Rates); err != nil {
		return nil, fmt.Errorf("storage: rates: %w", err)
	}
	return &datagen.Dataset{Name: snap.Name, Graph: g, Rates: rates}, nil
}

// SaveFile writes a dataset snapshot to path.
func SaveFile(path string, ds *datagen.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := Save(w, ds); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset snapshot from path.
func LoadFile(path string) (*datagen.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}
