package storage

import (
	"bytes"
	"testing"
)

// FuzzLoad: arbitrary bytes never panic the snapshot decoder — they
// either round-trip (if they happen to be a valid snapshot) or return
// an error.
func FuzzLoad(f *testing.F) {
	// Seed with a real snapshot so the fuzzer mutates from valid input.
	ds := testDataset(f)
	var buf bytes.Buffer
	if err := Save(&buf, ds); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("not a snapshot"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected, fine
		}
		// Anything accepted must be internally consistent.
		if got.Graph == nil || got.Rates == nil {
			t.Fatal("accepted snapshot with nil parts")
		}
		if got.Graph.NumNodes() < 0 || got.Graph.NumEdges() < 0 {
			t.Fatal("negative sizes")
		}
		if err := got.Rates.Validate(); err != nil {
			// Rates from hostile input may be over-unity; Validate
			// rejecting them is acceptable, panicking is not.
			return
		}
	})
}
