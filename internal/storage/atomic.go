package storage

import (
	"io"
	"os"
)

// AtomicWriteFile writes a file via write(w) into path+".tmp" in the
// same directory and renames it over path on success — the shared
// crash-safety discipline of every durable artifact in the system
// (binary corpus snapshots, profile records): a crash or error
// mid-write never leaves a half-written file under the final name, and
// readers only ever observe complete files. On any error the temp file
// is removed and the previous content of path, if any, is untouched.
func AtomicWriteFile(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
