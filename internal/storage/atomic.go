package storage

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"syscall"
)

// AtomicWriteFile writes a file via write(w) into path+".tmp" in the
// same directory and renames it over path on success — the shared
// crash-safety discipline of every durable artifact in the system
// (binary corpus snapshots, profile records): a crash or error
// mid-write never leaves a half-written file under the final name, and
// readers only ever observe complete files. On any error the temp file
// is removed and the previous content of path, if any, is untouched.
//
// Durability, not just atomicity: the temp file is fsynced before the
// rename (so the bytes the rename publishes are on disk, not just in
// the page cache) and the PARENT DIRECTORY is fsynced after it (the
// rename itself is a directory entry update; without the directory
// sync a power cut after a "successful" write can resurrect the old
// file — or no file at all — on the next boot, ext4/XFS both document
// this). Directory fsync is a no-op-or-unsupported on some platforms
// (notably Windows, where open-for-sync on a directory fails), so
// unsupported errors from the directory sync are ignored.
func AtomicWriteFile(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Windows cannot open directories for syncing; the rename there is
// already as durable as the platform offers, so it reports nil.
func syncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems (and some container mounts) reject fsync on
		// a directory handle with EINVAL/ENOTSUP; the entry update is
		// still atomic, just not durably ordered — the historical
		// behavior of this helper. Don't fail the write over it.
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return nil
		}
		return err
	}
	return nil
}
