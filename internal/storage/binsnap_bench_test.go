package storage

import (
	"os"
	"path/filepath"
	"testing"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
)

// benchConfig is the default afqserver corpus (-gen dblptop -scale 0.1)
// so the cold-start comparison reflects what an operator actually
// boots.
func benchConfig() datagen.DBLPConfig {
	return datagen.DBLPTopConfig().Scale(0.1)
}

// BenchmarkColdStartBuild is the in-process path an un-snapshotted
// server pays on every boot: generate/load the dataset, freeze the
// graph, tokenize and index every node.
func BenchmarkColdStartBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := datagen.GenerateDBLP(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		eng, err := core.NewEngine(ds.Graph, ds.Rates, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if eng.Index().NumDocs() == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkColdStartSnapshot is the snapshot path: read the file,
// checksum-validate, slice the frozen arrays in place, and stand up
// the engine — no graph building, no tokenizing, no indexing.
func BenchmarkColdStartSnapshot(b *testing.B) {
	ds, err := datagen.GenerateDBLP(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(ds.Graph, ds.Rates, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "corpus.snap")
	if err := WriteSnapshotFile(path, ds, eng.Index()); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds2, ix2, err := ReadSnapshotFile(path)
		if err != nil {
			b.Fatal(err)
		}
		corpus, err := core.NewCorpusWithIndex(ds2.Graph, ix2, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		eng2, err := core.NewEngineWith(corpus, ds2.Rates)
		if err != nil {
			b.Fatal(err)
		}
		if eng2.Index().NumDocs() != eng.Index().NumDocs() {
			b.Fatal("index mismatch")
		}
	}
}
