package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"authorityflow/internal/datagen"
	"authorityflow/internal/graph"
)

// SchemaJSON is the portable description of a schema graph plus its
// authority transfer rates — what an adopter writes to load their own
// database instead of a synthetic corpus. Rates use the same
// human-readable transfer-type names as RatesJSON; absent types default
// to rate 0.
type SchemaJSON struct {
	NodeTypes []string           `json:"nodeTypes"`
	EdgeTypes []EdgeTypeJSON     `json:"edgeTypes"`
	Rates     map[string]float64 `json:"rates"`
}

// EdgeTypeJSON describes one schema edge.
type EdgeTypeJSON struct {
	Role string `json:"role"`
	From string `json:"from"`
	To   string `json:"to"`
}

// LoadSchema parses a SchemaJSON document into a schema graph and its
// rates.
func LoadSchema(r io.Reader) (*graph.Schema, *graph.Rates, error) {
	var in SchemaJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, nil, fmt.Errorf("storage: schema: %w", err)
	}
	if len(in.NodeTypes) == 0 {
		return nil, nil, fmt.Errorf("storage: schema declares no node types")
	}
	s := graph.NewSchema()
	for _, name := range in.NodeTypes {
		s.AddNodeType(name)
	}
	for _, et := range in.EdgeTypes {
		from, ok := s.TypeByName(et.From)
		if !ok {
			return nil, nil, fmt.Errorf("storage: edge %q references unknown type %q", et.Role, et.From)
		}
		to, ok := s.TypeByName(et.To)
		if !ok {
			return nil, nil, fmt.Errorf("storage: edge %q references unknown type %q", et.Role, et.To)
		}
		if _, err := s.AddEdgeType(et.Role, from, to); err != nil {
			return nil, nil, fmt.Errorf("storage: %w", err)
		}
	}
	ratesDoc, err := json.Marshal(RatesJSON{Rates: in.Rates})
	if err != nil {
		return nil, nil, err
	}
	rates, err := LoadRates(strings.NewReader(string(ratesDoc)), s)
	if err != nil {
		return nil, nil, err
	}
	return s, rates, nil
}

// ImportTSV builds a dataset from a schema document and two
// tab-separated files:
//
//	nodes:  <id> <TAB> <type> [<TAB> name=value]...
//	edges:  <from-id> <TAB> <to-id> <TAB> <role>
//
// IDs are arbitrary non-empty strings, mapped to dense node IDs in
// file order. Blank lines and lines starting with '#' are skipped.
// Every referenced type, role and ID must exist; duplicate node IDs and
// malformed lines are errors with line numbers.
func ImportTSV(schema io.Reader, nodes io.Reader, edges io.Reader, name string) (*datagen.Dataset, error) {
	s, rates, err := LoadSchema(schema)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(s)
	idMap := make(map[string]graph.NodeID)

	scan := bufio.NewScanner(nodes)
	scan.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for scan.Scan() {
		lineNo++
		line := scan.Text()
		if skippable(line) {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 2 {
			return nil, fmt.Errorf("storage: nodes line %d: want <id>\\t<type>[\\tname=value...]", lineNo)
		}
		id, typeName := fields[0], fields[1]
		if id == "" {
			return nil, fmt.Errorf("storage: nodes line %d: empty id", lineNo)
		}
		if _, dup := idMap[id]; dup {
			return nil, fmt.Errorf("storage: nodes line %d: duplicate id %q", lineNo, id)
		}
		t, ok := s.TypeByName(typeName)
		if !ok {
			return nil, fmt.Errorf("storage: nodes line %d: unknown type %q", lineNo, typeName)
		}
		var attrs []graph.Attr
		for _, f := range fields[2:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok || k == "" {
				return nil, fmt.Errorf("storage: nodes line %d: bad attribute %q", lineNo, f)
			}
			attrs = append(attrs, graph.Attr{Name: k, Value: v})
		}
		idMap[id] = b.AddNode(t, attrs...)
	}
	if err := scan.Err(); err != nil {
		return nil, fmt.Errorf("storage: nodes: %w", err)
	}

	scan = bufio.NewScanner(edges)
	scan.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo = 0
	for scan.Scan() {
		lineNo++
		line := scan.Text()
		if skippable(line) {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("storage: edges line %d: want <from>\\t<to>\\t<role>", lineNo)
		}
		from, ok := idMap[fields[0]]
		if !ok {
			return nil, fmt.Errorf("storage: edges line %d: unknown node %q", lineNo, fields[0])
		}
		to, ok := idMap[fields[1]]
		if !ok {
			return nil, fmt.Errorf("storage: edges line %d: unknown node %q", lineNo, fields[1])
		}
		role, ok := s.EdgeTypeByRole(fields[2])
		if !ok {
			return nil, fmt.Errorf("storage: edges line %d: unknown role %q", lineNo, fields[2])
		}
		b.AddEdge(from, to, role)
	}
	if err := scan.Err(); err != nil {
		return nil, fmt.Errorf("storage: edges: %w", err)
	}

	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	if name == "" {
		name = "imported"
	}
	return &datagen.Dataset{Name: name, Graph: g, Rates: rates}, nil
}

// ImportTSVFiles is ImportTSV over file paths.
func ImportTSVFiles(schemaPath, nodesPath, edgesPath, name string) (*datagen.Dataset, error) {
	sf, err := os.Open(schemaPath)
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	nf, err := os.Open(nodesPath)
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	ef, err := os.Open(edgesPath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(nodesPath), filepath.Ext(nodesPath))
	}
	return ImportTSV(sf, nf, ef, name)
}

// ExportTSV writes a dataset in the ImportTSV format (schema JSON,
// nodes TSV, edges TSV), enabling round trips and hand edits. Node IDs
// are written as n<ordinal>.
func ExportTSV(ds *datagen.Dataset, schema io.Writer, nodes io.Writer, edges io.Writer) error {
	g := ds.Graph
	s := g.Schema()

	doc := SchemaJSON{Rates: map[string]float64{}}
	for t := 0; t < s.NumNodeTypes(); t++ {
		doc.NodeTypes = append(doc.NodeTypes, s.TypeName(graph.TypeID(t)))
	}
	for e := 0; e < s.NumEdgeTypes(); e++ {
		et := s.EdgeTypeInfo(graph.EdgeTypeID(e))
		doc.EdgeTypes = append(doc.EdgeTypes, EdgeTypeJSON{
			Role: et.Role, From: s.TypeName(et.From), To: s.TypeName(et.To),
		})
	}
	for t := 0; t < s.NumTransferTypes(); t++ {
		tt := graph.TransferTypeID(t)
		if v := ds.Rates.Rate(tt); v != 0 {
			doc.Rates[s.TransferTypeName(tt)] = v
		}
	}
	enc := json.NewEncoder(schema)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(&doc); err != nil {
		return err
	}

	nw := bufio.NewWriter(nodes)
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		fmt.Fprintf(nw, "n%d\t%s", v, g.LabelName(id))
		for _, a := range g.Attrs(id) {
			fmt.Fprintf(nw, "\t%s=%s", a.Name, sanitizeTSV(a.Value))
		}
		fmt.Fprintln(nw)
	}
	if err := nw.Flush(); err != nil {
		return err
	}

	ew := bufio.NewWriter(edges)
	for v := 0; v < g.NumNodes(); v++ {
		for _, a := range g.OutArcs(graph.NodeID(v)) {
			if a.Type.Dir() == graph.Forward {
				role := s.EdgeTypeInfo(a.Type.EdgeType()).Role
				fmt.Fprintf(ew, "n%d\tn%d\t%s\n", v, a.To, role)
			}
		}
	}
	return ew.Flush()
}

func skippable(line string) bool {
	trimmed := strings.TrimSpace(line)
	return trimmed == "" || strings.HasPrefix(trimmed, "#")
}

// sanitizeTSV keeps attribute values single-line and tab-free so the
// format stays line-oriented.
func sanitizeTSV(v string) string {
	v = strings.ReplaceAll(v, "\t", " ")
	v = strings.ReplaceAll(v, "\n", " ")
	return v
}
