package storage

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"authorityflow/internal/graph"
)

// RatesJSON is the portable JSON form of a trained authority-transfer
// rate assignment. Rates are keyed by the human-readable transfer-type
// name ("Paper-cites->Paper") rather than by numeric ID, so a file
// survives schema re-registration order changes and is reviewable by a
// domain expert — the artifact the paper's training replaces.
type RatesJSON struct {
	Rates map[string]float64 `json:"rates"`
}

// SaveRates writes a rate assignment as JSON.
func SaveRates(w io.Writer, r *graph.Rates) error {
	s := r.Schema()
	out := RatesJSON{Rates: make(map[string]float64, s.NumTransferTypes())}
	for t := 0; t < s.NumTransferTypes(); t++ {
		tt := graph.TransferTypeID(t)
		if v := r.Rate(tt); v != 0 {
			out.Rates[s.TransferTypeName(tt)] = v
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false) // keep "->" readable in the rate names
	return enc.Encode(&out)
}

// LoadRates reads a JSON rate assignment into a rate vector over the
// given schema. Unknown transfer-type names are an error (they signal a
// schema mismatch); transfer types absent from the file get rate 0.
// The result is validated (outgoing sums at most 1).
func LoadRates(r io.Reader, s *graph.Schema) (*graph.Rates, error) {
	var in RatesJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("storage: rates: %w", err)
	}
	byName := make(map[string]graph.TransferTypeID, s.NumTransferTypes())
	for t := 0; t < s.NumTransferTypes(); t++ {
		tt := graph.TransferTypeID(t)
		byName[s.TransferTypeName(tt)] = tt
	}
	rates := graph.NewRates(s)
	for name, v := range in.Rates {
		tt, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("storage: rates: unknown transfer type %q for this schema", name)
		}
		if err := rates.SetRate(tt, v); err != nil {
			return nil, fmt.Errorf("storage: rates: %w", err)
		}
	}
	if err := rates.Validate(); err != nil {
		return nil, fmt.Errorf("storage: rates: %w", err)
	}
	return rates, nil
}

// SaveRatesFile writes rates as JSON to path.
func SaveRatesFile(path string, r *graph.Rates) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveRates(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadRatesFile reads JSON rates from path.
func LoadRatesFile(path string, s *graph.Schema) (*graph.Rates, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadRates(f, s)
}
