// binsnap.go is the versioned binary snapshot format — the cold-start
// and corpus-swap substrate of the generational corpus store. Where the
// gob snapshot (storage.go) stores raw node/edge lists and REBUILDS the
// CSR graph and re-tokenizes the index on load, the binary format
// persists the final frozen forms — both CSR halves, the node/type
// tables, and the inverted index — as flat little-endian sections, each
// offset-indexed and CRC-checksummed in the header. Loading is a
// validate-then-slice pass: after checksums and structural invariants
// are verified, the big arrays are reinterpreted in place (zero-copy on
// little-endian hosts, with a portable copying fallback), so cold start
// skips graph building and tokenization entirely and runs at close to
// disk bandwidth.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"

	"authorityflow/internal/datagen"
	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
)

// Typed load errors: hostile or damaged snapshot files must fail with
// one of these (wrapped with detail), never panic. Callers branch with
// errors.Is.
var (
	// ErrSnapshotMagic means the file does not start with the binary
	// snapshot magic (e.g. it is a gob snapshot or not a snapshot at all).
	ErrSnapshotMagic = errors.New("storage: not an afq binary snapshot (bad magic)")
	// ErrSnapshotVersion means the format version is not supported by
	// this release.
	ErrSnapshotVersion = errors.New("storage: unsupported binary snapshot version")
	// ErrSnapshotTruncated means the file is shorter than its header
	// claims.
	ErrSnapshotTruncated = errors.New("storage: binary snapshot truncated")
	// ErrSnapshotChecksum means a section's (or the section table's)
	// CRC32 does not match its payload.
	ErrSnapshotChecksum = errors.New("storage: binary snapshot checksum mismatch")
	// ErrSnapshotCorrupt means the file decodes but violates a
	// structural invariant: out-of-bounds section offsets, unsorted
	// string tables, CSR arrays that do not line up, and so on.
	ErrSnapshotCorrupt = errors.New("storage: binary snapshot corrupt")
)

// Wire layout (all integers little-endian):
//
//	header (32 bytes):
//	  magic    [8]byte  "AFQSNAP1"
//	  version  uint32   binSnapshotVersion
//	  count    uint32   number of sections
//	  tableCRC uint32   CRC32-C of the section table bytes
//	  _        uint32   reserved (zero)
//	  fileSize uint64   total file length
//	section table (count × 24 bytes):
//	  id     uint32
//	  crc    uint32    CRC32-C of the section payload
//	  offset uint64    absolute file offset (8-aligned)
//	  length uint64    payload length in bytes
//	payloads, each padded to 8-byte alignment.
const (
	binSnapshotVersion = 1
	headerSize         = 32
	sectionEntrySize   = 24
	maxSections        = 64
)

var binMagic = [8]byte{'A', 'F', 'Q', 'S', 'N', 'A', 'P', '1'}

// Section IDs. Homogeneous arrays get their own section so the loader
// can reinterpret each in place without an inner framing pass.
const (
	secMeta       = 1  // name, node/edge counts
	secNodeTypes  = 2  // string table of node type names
	secEdgeTypes  = 3  // {from,to} pairs + string table of roles
	secRates      = 4  // []float64, one rate per transfer type
	secLabels     = 5  // []int32, node type per node
	secAttrStart  = 6  // []int32, len n+1, prefix over attr entries
	secAttrEntry  = 7  // []uint32, {nameOff,nameLen,valOff,valLen} per attr
	secAttrBlob   = 8  // raw attribute name/value bytes
	secFwdStart   = 9  // []int32, len n+1, forward CSR offsets
	secFwdArcs    = 10 // []graph.Arc, 12 bytes each
	secRevStart   = 11 // []int32, len n+1, reverse CSR offsets
	secRevArcs    = 12 // []graph.Arc
	secDocLen     = 13 // []int32, document length per node
	secIdxMeta    = 14 // totalLen + BM25 params
	secTerms      = 15 // string table of the full vocabulary (sorted)
	secPostStart  = 16 // []int32, len terms+1, prefix over postings
	secPostings   = 17 // []ir.Posting, 8 bytes each
	numSectionIDs = 17
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Zero-copy gating: reinterpreting file bytes as typed slices requires
// a little-endian host and the exact struct layouts the format assumes.
// Anything else (or a misaligned buffer at load time) falls back to a
// portable copying decode — same results, one extra pass.
const (
	arcSize     = int(unsafe.Sizeof(graph.Arc{}))
	postingSize = int(unsafe.Sizeof(ir.Posting{}))
)

var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// forceCopyDecode disables the zero-copy fast path; tests flip it to
// cover the portable decoder on any host.
var forceCopyDecode = false

func zeroCopyOK() bool {
	return hostLittleEndian && arcSize == 12 && postingSize == 8 && !forceCopyDecode
}

func aligned(b []byte, align int) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%uintptr(align) == 0
}

func align8(n int) int { return (n + 7) &^ 7 }

// ---- encoding helpers ----

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendI32s(b []byte, vs []int32) []byte {
	if zeroCopyOK() && len(vs) > 0 {
		return append(b, unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), len(vs)*4)...)
	}
	for _, v := range vs {
		b = appendU32(b, uint32(v))
	}
	return b
}

func appendF64s(b []byte, vs []float64) []byte {
	for _, v := range vs {
		b = appendU64(b, math.Float64bits(v))
	}
	return b
}

func appendArcs(b []byte, arcs []graph.Arc) []byte {
	if zeroCopyOK() && len(arcs) > 0 {
		return append(b, unsafe.Slice((*byte)(unsafe.Pointer(&arcs[0])), len(arcs)*arcSize)...)
	}
	for _, a := range arcs {
		b = appendU32(b, uint32(a.To))
		b = appendU32(b, uint32(a.Type))
		b = appendU32(b, math.Float32bits(a.InvDeg))
	}
	return b
}

func appendPostings(b []byte, ps []ir.Posting) []byte {
	if zeroCopyOK() && len(ps) > 0 {
		return append(b, unsafe.Slice((*byte)(unsafe.Pointer(&ps[0])), len(ps)*postingSize)...)
	}
	for _, p := range ps {
		b = appendU32(b, uint32(p.Doc))
		b = appendU32(b, uint32(p.TF))
	}
	return b
}

// appendStringTable encodes count, count+1 ascending blob offsets, and
// the concatenated blob.
func appendStringTable(b []byte, ss []string) []byte {
	b = appendU32(b, uint32(len(ss)))
	off := uint32(0)
	b = appendU32(b, off)
	for _, s := range ss {
		off += uint32(len(s))
		b = appendU32(b, off)
	}
	for _, s := range ss {
		b = append(b, s...)
	}
	return b
}

// ---- decoding helpers ----

func decodeI32s(b []byte) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("%w: int32 section length %d not a multiple of 4", ErrSnapshotCorrupt, len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if zeroCopyOK() && aligned(b, 4) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

func decodeF64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: float64 section length %d not a multiple of 8", ErrSnapshotCorrupt, len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

func decodeArcs(b []byte) ([]graph.Arc, error) {
	if len(b)%12 != 0 {
		return nil, fmt.Errorf("%w: arc section length %d not a multiple of 12", ErrSnapshotCorrupt, len(b))
	}
	n := len(b) / 12
	if n == 0 {
		return nil, nil
	}
	if zeroCopyOK() && aligned(b, 4) {
		return unsafe.Slice((*graph.Arc)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]graph.Arc, n)
	for i := range out {
		rec := b[i*12:]
		out[i] = graph.Arc{
			To:     graph.NodeID(int32(binary.LittleEndian.Uint32(rec))),
			Type:   graph.TransferTypeID(int32(binary.LittleEndian.Uint32(rec[4:]))),
			InvDeg: math.Float32frombits(binary.LittleEndian.Uint32(rec[8:])),
		}
	}
	return out, nil
}

func decodePostings(b []byte) ([]ir.Posting, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: posting section length %d not a multiple of 8", ErrSnapshotCorrupt, len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if zeroCopyOK() && aligned(b, 4) {
		return unsafe.Slice((*ir.Posting)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]ir.Posting, n)
	for i := range out {
		rec := b[i*8:]
		out[i] = ir.Posting{
			Doc: int32(binary.LittleEndian.Uint32(rec)),
			TF:  int32(binary.LittleEndian.Uint32(rec[4:])),
		}
	}
	return out, nil
}

// blobString materializes blob[off:off+n] as a string — zero-copy when
// allowed (the blob is immutable by the load contract), copied
// otherwise.
func blobString(blob []byte, off, n uint32) string {
	if n == 0 {
		return ""
	}
	if zeroCopyOK() {
		return unsafe.String(&blob[off], int(n))
	}
	return string(blob[off : off+uint32(n)])
}

// decodeStringTable parses and bounds-checks an appendStringTable
// payload.
func decodeStringTable(b []byte, what string) ([]string, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %s table too short", ErrSnapshotCorrupt, what)
	}
	count := binary.LittleEndian.Uint32(b)
	if uint64(len(b)) < 4+uint64(count+1)*4 {
		return nil, fmt.Errorf("%w: %s table claims %d entries but is %d bytes", ErrSnapshotCorrupt, what, count, len(b))
	}
	offs := b[4 : 4+(count+1)*4]
	blob := b[4+(count+1)*4:]
	out := make([]string, count)
	prev := uint32(0)
	for i := uint32(0); i <= count; i++ {
		off := binary.LittleEndian.Uint32(offs[i*4:])
		if off < prev || off > uint32(len(blob)) {
			return nil, fmt.Errorf("%w: %s table offset %d out of order or out of bounds", ErrSnapshotCorrupt, what, off)
		}
		if i > 0 {
			out[i-1] = blobString(blob, prev, off-prev)
		}
		prev = off
	}
	if prev != uint32(len(blob)) {
		return nil, fmt.Errorf("%w: %s table blob has %d trailing bytes", ErrSnapshotCorrupt, what, uint32(len(blob))-prev)
	}
	return out, nil
}

// ---- writer ----

type binSection struct {
	id      uint32
	payload []byte
}

// WriteSnapshot writes the dataset and its prebuilt inverted index in
// the binary snapshot format. The index must cover exactly the graph's
// nodes (build it with the same BM25 parameters the serving corpus
// will use — they are persisted and reapplied on load).
func WriteSnapshot(w io.Writer, ds *datagen.Dataset, ix *ir.Index) error {
	g := ds.Graph
	if ix.NumDocs() != g.NumNodes() {
		return fmt.Errorf("storage: index covers %d documents, graph has %d nodes", ix.NumDocs(), g.NumNodes())
	}
	f := g.Frozen()
	s := f.Schema

	var meta []byte
	meta = appendU32(meta, uint32(len(ds.Name)))
	meta = append(meta, ds.Name...)
	meta = appendU64(meta, uint64(g.NumNodes()))
	meta = appendU64(meta, uint64(g.NumEdges()))

	nodeTypes := make([]string, s.NumNodeTypes())
	for t := range nodeTypes {
		nodeTypes[t] = s.TypeName(graph.TypeID(t))
	}
	var edgeTypes []byte
	edgeTypes = appendU32(edgeTypes, uint32(s.NumEdgeTypes()))
	roles := make([]string, s.NumEdgeTypes())
	for e := range roles {
		et := s.EdgeTypeInfo(graph.EdgeTypeID(e))
		edgeTypes = appendU32(edgeTypes, uint32(et.From))
		edgeTypes = appendU32(edgeTypes, uint32(et.To))
		roles[e] = et.Role
	}
	edgeTypes = appendStringTable(edgeTypes, roles)

	// Attributes: prefix counts per node, one {nameOff,nameLen,valOff,
	// valLen} quad per attribute, one shared byte blob.
	attrStart := make([]int32, len(f.Attrs)+1)
	var attrEntry []byte
	var attrBlob []byte
	for v, as := range f.Attrs {
		attrStart[v+1] = attrStart[v] + int32(len(as))
		for _, a := range as {
			attrEntry = appendU32(attrEntry, uint32(len(attrBlob)))
			attrEntry = appendU32(attrEntry, uint32(len(a.Name)))
			attrBlob = append(attrBlob, a.Name...)
			attrEntry = appendU32(attrEntry, uint32(len(attrBlob)))
			attrEntry = appendU32(attrEntry, uint32(len(a.Value)))
			attrBlob = append(attrBlob, a.Value...)
		}
	}

	var idxMeta []byte
	idxMeta = appendU64(idxMeta, uint64(ix.TotalLen()))
	p := ix.Params()
	idxMeta = appendF64s(idxMeta, []float64{p.K1, p.B, p.K3})

	terms := ix.Terms()
	postStart := make([]int32, len(terms)+1)
	var postings []byte
	for i, t := range terms {
		ps := ix.Postings(t)
		postStart[i+1] = postStart[i] + int32(len(ps))
		postings = appendPostings(postings, ps)
	}

	secs := []binSection{
		{secMeta, meta},
		{secNodeTypes, appendStringTable(nil, nodeTypes)},
		{secEdgeTypes, edgeTypes},
		{secRates, appendF64s(nil, ds.Rates.Vector())},
		{secLabels, appendI32s(nil, labelsToI32(f.Labels))},
		{secAttrStart, appendI32s(nil, attrStart)},
		{secAttrEntry, attrEntry},
		{secAttrBlob, attrBlob},
		{secFwdStart, appendI32s(nil, f.ArcStart)},
		{secFwdArcs, appendArcs(nil, f.Arcs)},
		{secRevStart, appendI32s(nil, f.RarcStart)},
		{secRevArcs, appendArcs(nil, f.Rarcs)},
		{secDocLen, appendI32s(nil, ix.DocLens())},
		{secIdxMeta, idxMeta},
		{secTerms, appendStringTable(nil, terms)},
		{secPostStart, appendI32s(nil, postStart)},
		{secPostings, postings},
	}

	// Lay out: header, table, 8-aligned payloads.
	table := make([]byte, 0, len(secs)*sectionEntrySize)
	off := align8(headerSize + len(secs)*sectionEntrySize)
	for _, sec := range secs {
		table = appendU32(table, sec.id)
		table = appendU32(table, crc32.Checksum(sec.payload, crcTable))
		table = appendU64(table, uint64(off))
		table = appendU64(table, uint64(len(sec.payload)))
		off = align8(off + len(sec.payload))
	}
	fileSize := off

	var hdr []byte
	hdr = append(hdr, binMagic[:]...)
	hdr = appendU32(hdr, binSnapshotVersion)
	hdr = appendU32(hdr, uint32(len(secs)))
	hdr = appendU32(hdr, crc32.Checksum(table, crcTable))
	hdr = appendU32(hdr, 0)
	hdr = appendU64(hdr, uint64(fileSize))

	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(table); err != nil {
		return err
	}
	written := headerSize + len(table)
	var pad [8]byte
	for _, sec := range secs {
		if n := align8(written) - written; n > 0 {
			if _, err := w.Write(pad[:n]); err != nil {
				return err
			}
			written += n
		}
		if _, err := w.Write(sec.payload); err != nil {
			return err
		}
		written += len(sec.payload)
	}
	if n := align8(written) - written; n > 0 {
		if _, err := w.Write(pad[:n]); err != nil {
			return err
		}
	}
	return nil
}

func labelsToI32(ls []graph.TypeID) []int32 {
	out := make([]int32, len(ls))
	for i, l := range ls {
		out[i] = int32(l)
	}
	return out
}

// WriteSnapshotFile writes a binary snapshot to path (atomically via a
// temp file in the same directory, so a crash mid-write never leaves a
// half-written snapshot under the final name).
func WriteSnapshotFile(path string, ds *datagen.Dataset, ix *ir.Index) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		return WriteSnapshot(w, ds, ix)
	})
}

// ---- reader ----

// ReadSnapshot parses a binary snapshot held in memory. On success the
// returned dataset and index RETAIN data (the big arrays are
// reinterpreted in place on little-endian hosts); the caller must not
// modify it afterwards. Every section is bounds- and checksum-verified
// and every structural invariant re-checked before any slice is
// handed out, so hostile input returns a typed error and never panics.
func ReadSnapshot(data []byte) (*datagen.Dataset, *ir.Index, error) {
	if len(data) < headerSize {
		return nil, nil, fmt.Errorf("%w: %d bytes is smaller than the header", ErrSnapshotTruncated, len(data))
	}
	if [8]byte(data[:8]) != binMagic {
		return nil, nil, ErrSnapshotMagic
	}
	version := binary.LittleEndian.Uint32(data[8:])
	if version != binSnapshotVersion {
		return nil, nil, fmt.Errorf("%w: version %d, want %d", ErrSnapshotVersion, version, binSnapshotVersion)
	}
	count := binary.LittleEndian.Uint32(data[12:])
	tableCRC := binary.LittleEndian.Uint32(data[16:])
	fileSize := binary.LittleEndian.Uint64(data[24:])
	if fileSize != uint64(len(data)) {
		if uint64(len(data)) < fileSize {
			return nil, nil, fmt.Errorf("%w: header claims %d bytes, have %d", ErrSnapshotTruncated, fileSize, len(data))
		}
		return nil, nil, fmt.Errorf("%w: header claims %d bytes, have %d", ErrSnapshotCorrupt, fileSize, len(data))
	}
	if count == 0 || count > maxSections {
		return nil, nil, fmt.Errorf("%w: implausible section count %d", ErrSnapshotCorrupt, count)
	}
	tableEnd := headerSize + int(count)*sectionEntrySize
	if len(data) < tableEnd {
		return nil, nil, fmt.Errorf("%w: section table extends past end of file", ErrSnapshotTruncated)
	}
	table := data[headerSize:tableEnd]
	if crc32.Checksum(table, crcTable) != tableCRC {
		return nil, nil, fmt.Errorf("%w: section table", ErrSnapshotChecksum)
	}

	secs := make(map[uint32][]byte, count)
	for i := 0; i < int(count); i++ {
		entry := table[i*sectionEntrySize:]
		id := binary.LittleEndian.Uint32(entry)
		crc := binary.LittleEndian.Uint32(entry[4:])
		off := binary.LittleEndian.Uint64(entry[8:])
		length := binary.LittleEndian.Uint64(entry[16:])
		if length > uint64(len(data)) || off > uint64(len(data))-length || off < uint64(tableEnd) {
			return nil, nil, fmt.Errorf("%w: section %d offset %d+%d out of bounds (file is %d bytes)",
				ErrSnapshotCorrupt, id, off, length, len(data))
		}
		payload := data[off : off+length]
		if crc32.Checksum(payload, crcTable) != crc {
			return nil, nil, fmt.Errorf("%w: section %d", ErrSnapshotChecksum, id)
		}
		if _, dup := secs[id]; dup {
			return nil, nil, fmt.Errorf("%w: duplicate section %d", ErrSnapshotCorrupt, id)
		}
		secs[id] = payload
	}
	for id := uint32(1); id <= numSectionIDs; id++ {
		if _, ok := secs[id]; !ok {
			return nil, nil, fmt.Errorf("%w: missing section %d", ErrSnapshotCorrupt, id)
		}
	}

	// Meta.
	meta := secs[secMeta]
	if len(meta) < 4 {
		return nil, nil, fmt.Errorf("%w: meta section too short", ErrSnapshotCorrupt)
	}
	nameLen := binary.LittleEndian.Uint32(meta)
	if uint64(len(meta)) != 4+uint64(nameLen)+16 {
		return nil, nil, fmt.Errorf("%w: meta section is %d bytes for a %d-byte name", ErrSnapshotCorrupt, len(meta), nameLen)
	}
	name := string(meta[4 : 4+nameLen])
	numNodes := binary.LittleEndian.Uint64(meta[4+nameLen:])
	numEdges := binary.LittleEndian.Uint64(meta[4+nameLen+8:])
	const maxNodes = 1 << 31
	if numNodes > maxNodes || numEdges > maxNodes {
		return nil, nil, fmt.Errorf("%w: implausible node/edge counts %d/%d", ErrSnapshotCorrupt, numNodes, numEdges)
	}
	n := int(numNodes)

	// Schema.
	nodeTypes, err := decodeStringTable(secs[secNodeTypes], "node type")
	if err != nil {
		return nil, nil, err
	}
	et := secs[secEdgeTypes]
	if len(et) < 4 {
		return nil, nil, fmt.Errorf("%w: edge type section too short", ErrSnapshotCorrupt)
	}
	numEdgeTypes := binary.LittleEndian.Uint32(et)
	if uint64(len(et)) < 4+uint64(numEdgeTypes)*8 {
		return nil, nil, fmt.Errorf("%w: edge type section claims %d entries but is %d bytes", ErrSnapshotCorrupt, numEdgeTypes, len(et))
	}
	roles, err := decodeStringTable(et[4+numEdgeTypes*8:], "edge role")
	if err != nil {
		return nil, nil, err
	}
	if uint32(len(roles)) != numEdgeTypes {
		return nil, nil, fmt.Errorf("%w: %d edge types but %d roles", ErrSnapshotCorrupt, numEdgeTypes, len(roles))
	}
	schema := graph.NewSchema()
	for _, tn := range nodeTypes {
		schema.AddNodeType(tn)
	}
	if schema.NumNodeTypes() != len(nodeTypes) {
		return nil, nil, fmt.Errorf("%w: duplicate node type names", ErrSnapshotCorrupt)
	}
	for e := uint32(0); e < numEdgeTypes; e++ {
		from := int32(binary.LittleEndian.Uint32(et[4+e*8:]))
		to := int32(binary.LittleEndian.Uint32(et[4+e*8+4:]))
		id, err := schema.AddEdgeType(roles[e], graph.TypeID(from), graph.TypeID(to))
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		if id != graph.EdgeTypeID(e) {
			return nil, nil, fmt.Errorf("%w: duplicate edge type %q", ErrSnapshotCorrupt, roles[e])
		}
	}

	// Node labels and attributes.
	labels32, err := decodeI32s(secs[secLabels])
	if err != nil {
		return nil, nil, err
	}
	if len(labels32) != n {
		return nil, nil, fmt.Errorf("%w: %d labels for %d nodes", ErrSnapshotCorrupt, len(labels32), n)
	}
	labels := make([]graph.TypeID, n)
	for i, l := range labels32 {
		labels[i] = graph.TypeID(l)
	}
	attrs, err := decodeAttrs(n, secs[secAttrStart], secs[secAttrEntry], secs[secAttrBlob])
	if err != nil {
		return nil, nil, err
	}

	// CSR halves.
	fwdStart, err := decodeI32s(secs[secFwdStart])
	if err != nil {
		return nil, nil, err
	}
	fwdArcs, err := decodeArcs(secs[secFwdArcs])
	if err != nil {
		return nil, nil, err
	}
	revStart, err := decodeI32s(secs[secRevStart])
	if err != nil {
		return nil, nil, err
	}
	revArcs, err := decodeArcs(secs[secRevArcs])
	if err != nil {
		return nil, nil, err
	}
	g, err := graph.FromFrozen(graph.Frozen{
		Schema:    schema,
		Labels:    labels,
		Attrs:     attrs,
		NumEdges:  int(numEdges),
		ArcStart:  fwdStart,
		Arcs:      fwdArcs,
		RarcStart: revStart,
		Rarcs:     revArcs,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}

	// Rates.
	rateVec, err := decodeF64s(secs[secRates])
	if err != nil {
		return nil, nil, err
	}
	rates := graph.NewRates(schema)
	if err := rates.SetVector(rateVec); err != nil {
		return nil, nil, fmt.Errorf("%w: rates: %v", ErrSnapshotCorrupt, err)
	}

	// Inverted index.
	im := secs[secIdxMeta]
	if len(im) != 32 {
		return nil, nil, fmt.Errorf("%w: index meta section is %d bytes, want 32", ErrSnapshotCorrupt, len(im))
	}
	totalLen := int64(binary.LittleEndian.Uint64(im))
	params := ir.BM25Params{
		K1: math.Float64frombits(binary.LittleEndian.Uint64(im[8:])),
		B:  math.Float64frombits(binary.LittleEndian.Uint64(im[16:])),
		K3: math.Float64frombits(binary.LittleEndian.Uint64(im[24:])),
	}
	docLen, err := decodeI32s(secs[secDocLen])
	if err != nil {
		return nil, nil, err
	}
	if len(docLen) != n {
		return nil, nil, fmt.Errorf("%w: %d document lengths for %d nodes", ErrSnapshotCorrupt, len(docLen), n)
	}
	terms, err := decodeStringTable(secs[secTerms], "term")
	if err != nil {
		return nil, nil, err
	}
	postStart, err := decodeI32s(secs[secPostStart])
	if err != nil {
		return nil, nil, err
	}
	flat, err := decodePostings(secs[secPostings])
	if err != nil {
		return nil, nil, err
	}
	if len(postStart) != len(terms)+1 {
		return nil, nil, fmt.Errorf("%w: %d posting offsets for %d terms", ErrSnapshotCorrupt, len(postStart), len(terms))
	}
	postings := make([][]ir.Posting, len(terms))
	for i := range terms {
		lo, hi := postStart[i], postStart[i+1]
		if lo < 0 || hi < lo || int(hi) > len(flat) {
			return nil, nil, fmt.Errorf("%w: posting offsets %d:%d out of bounds for %d postings", ErrSnapshotCorrupt, lo, hi, len(flat))
		}
		postings[i] = flat[lo:hi]
	}
	if len(postStart) > 0 && int(postStart[len(postStart)-1]) != len(flat) {
		return nil, nil, fmt.Errorf("%w: %d postings not covered by offsets", ErrSnapshotCorrupt, len(flat))
	}
	ix, err := ir.FromParts(params, docLen, totalLen, terms, postings)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}

	return &datagen.Dataset{Name: name, Graph: g, Rates: rates}, ix, nil
}

func decodeAttrs(n int, startSec, entrySec, blob []byte) ([][]graph.Attr, error) {
	start, err := decodeI32s(startSec)
	if err != nil {
		return nil, err
	}
	if len(start) != n+1 {
		return nil, fmt.Errorf("%w: %d attribute offsets for %d nodes", ErrSnapshotCorrupt, len(start), n)
	}
	if len(entrySec)%16 != 0 {
		return nil, fmt.Errorf("%w: attribute entry section length %d not a multiple of 16", ErrSnapshotCorrupt, len(entrySec))
	}
	numAttrs := len(entrySec) / 16
	if n > 0 && (start[0] != 0 || int(start[n]) != numAttrs) {
		return nil, fmt.Errorf("%w: attribute offsets cover %d of %d entries", ErrSnapshotCorrupt, start[n], numAttrs)
	}
	flat := make([]graph.Attr, numAttrs)
	for i := 0; i < numAttrs; i++ {
		rec := entrySec[i*16:]
		nameOff := binary.LittleEndian.Uint32(rec)
		nameLen := binary.LittleEndian.Uint32(rec[4:])
		valOff := binary.LittleEndian.Uint32(rec[8:])
		valLen := binary.LittleEndian.Uint32(rec[12:])
		if uint64(nameOff)+uint64(nameLen) > uint64(len(blob)) || uint64(valOff)+uint64(valLen) > uint64(len(blob)) {
			return nil, fmt.Errorf("%w: attribute %d references bytes outside the blob", ErrSnapshotCorrupt, i)
		}
		flat[i] = graph.Attr{
			Name:  blobString(blob, nameOff, nameLen),
			Value: blobString(blob, valOff, valLen),
		}
	}
	attrs := make([][]graph.Attr, n)
	for v := 0; v < n; v++ {
		lo, hi := start[v], start[v+1]
		if lo < 0 || hi < lo || int(hi) > numAttrs {
			return nil, fmt.Errorf("%w: node %d attribute range %d:%d out of bounds", ErrSnapshotCorrupt, v, lo, hi)
		}
		if lo < hi {
			attrs[v] = flat[lo:hi]
		}
	}
	return attrs, nil
}

// ReadSnapshotFile loads a binary snapshot from path. The whole file is
// read in one pass and retained by the returned dataset and index (see
// ReadSnapshot).
func ReadSnapshotFile(path string) (*datagen.Dataset, *ir.Index, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return ReadSnapshot(data)
}
