package storage

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"authorityflow/internal/core"
	"authorityflow/internal/graph"
)

// ExportHTML renders an explaining subgraph as a self-contained HTML
// page with an inline SVG — the "display to the user" artifact the
// paper's web demo served (Section 4: "we generate and display an
// explaining subgraph"). Nodes are laid out in columns by distance
// from the target (target rightmost), arcs are drawn with width and
// opacity proportional to their explaining authority flow, and
// hovering a node or edge shows its exact numbers.
func ExportHTML(w io.Writer, g *graph.Graph, sg *core.Subgraph) error {
	const (
		colWidth  = 260
		rowHeight = 64
		boxW      = 200
		boxH      = 44
		margin    = 40
	)

	// Columns by distance from the target; the target (dist 0) goes to
	// the rightmost column.
	maxDist := 0
	for _, v := range sg.Nodes {
		if d := sg.Dist[v]; d > maxDist {
			maxDist = d
		}
	}
	byDist := make([][]graph.NodeID, maxDist+1)
	for _, v := range sg.Nodes {
		d := sg.Dist[v]
		byDist[d] = append(byDist[d], v)
	}
	maxRows := 0
	for _, col := range byDist {
		sort.Slice(col, func(i, j int) bool { return col[i] < col[j] })
		if len(col) > maxRows {
			maxRows = len(col)
		}
	}

	width := (maxDist+1)*colWidth + 2*margin
	height := maxRows*rowHeight + 2*margin
	pos := make(map[graph.NodeID][2]int, len(sg.Nodes))
	for d, col := range byDist {
		x := margin + (maxDist-d)*colWidth
		for i, v := range col {
			y := margin + i*rowHeight
			pos[v] = [2]int{x, y}
		}
	}

	maxFlow := 0.0
	for _, a := range sg.Arcs {
		if a.Flow > maxFlow {
			maxFlow = a.Flow
		}
	}

	var b strings.Builder
	queryStr := ""
	if sg.Query != nil {
		queryStr = sg.Query.String()
	}
	fmt.Fprintf(&b, `<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>Explaining subgraph — %s</title>
<style>
body { font-family: sans-serif; margin: 16px; }
.node rect { fill: #eef4fb; stroke: #4a7ab5; rx: 6; }
.node.target rect { fill: #fdf1dd; stroke: #c77f1e; stroke-width: 2.5; }
.node text { font-size: 11px; }
.arc { stroke: #4a7ab5; fill: none; marker-end: url(#arrow); }
.meta { color: #555; font-size: 13px; }
</style></head><body>
<h2>Explaining subgraph for %s</h2>
<p class="meta">query %s — %d nodes, %d arcs, explained score %.4g,
%d flow-adjustment iterations (converged: %v)</p>
<svg width="%d" height="%d" viewBox="0 0 %d %d">
<defs><marker id="arrow" markerWidth="8" markerHeight="8" refX="8" refY="3" orient="auto">
<path d="M0,0 L8,3 L0,6 z" fill="#4a7ab5"/></marker></defs>
`,
		html.EscapeString(g.Display(sg.Target)),
		html.EscapeString(g.Display(sg.Target)),
		html.EscapeString(queryStr),
		len(sg.Nodes), len(sg.Arcs), sg.ExplainedScore(),
		sg.Iterations, sg.Converged,
		width, height, width, height)

	// Arcs first so boxes draw over them.
	for _, a := range sg.Arcs {
		p1, ok1 := pos[a.From]
		p2, ok2 := pos[a.To]
		if !ok1 || !ok2 {
			continue
		}
		w1, op := 1.0, 0.35
		if maxFlow > 0 {
			share := a.Flow / maxFlow
			w1 = 1 + 4*share
			op = 0.25 + 0.75*share
		}
		x1, y1 := p1[0]+boxW, p1[1]+boxH/2
		x2, y2 := p2[0], p2[1]+boxH/2
		if p1[0] == p2[0] { // same column (cycle): loop to the right edge
			x1 = p1[0] + boxW
			x2 = p2[0] + boxW
		}
		fmt.Fprintf(&b, `<path class="arc" d="M%d,%d C%d,%d %d,%d %d,%d" stroke-width="%.2f" opacity="%.2f"><title>%s: flow %.4g (original %.4g)</title></path>
`,
			x1, y1, (x1+x2)/2, y1, (x1+x2)/2, y2, x2, y2, w1, op,
			html.EscapeString(g.Schema().TransferTypeName(a.Type)), a.Flow, a.Flow0)
	}

	for _, v := range sg.Nodes {
		p := pos[v]
		cls := "node"
		if v == sg.Target {
			cls = "node target"
		}
		label := g.LabelName(v)
		text := ""
		if as := g.Attrs(v); len(as) > 0 {
			text = as[0].Value
		}
		if len(text) > 30 {
			text = text[:30] + "…"
		}
		fmt.Fprintf(&b, `<g class="%s"><rect x="%d" y="%d" width="%d" height="%d"/>
<text x="%d" y="%d">%s %d</text>
<text x="%d" y="%d">%s</text>
<title>h=%.4g dist=%d in-flow=%.4g out-flow=%.4g</title></g>
`,
			cls, p[0], p[1], boxW, boxH,
			p[0]+8, p[1]+17, html.EscapeString(label), v,
			p[0]+8, p[1]+34, html.EscapeString(text),
			sg.H[v], sg.Dist[v], sg.InFlow(v), sg.OutFlow(v))
	}

	b.WriteString("</svg></body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
