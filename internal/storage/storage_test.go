package storage

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

func testDataset(t testing.TB) *datagen.Dataset {
	t.Helper()
	cfg := datagen.DBLPTopConfig().Scale(0.01)
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := testDataset(t)
	var buf bytes.Buffer
	if err := Save(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ds.Name {
		t.Errorf("name = %q", got.Name)
	}
	if got.Graph.NumNodes() != ds.Graph.NumNodes() {
		t.Fatalf("nodes = %d, want %d", got.Graph.NumNodes(), ds.Graph.NumNodes())
	}
	if got.Graph.NumEdges() != ds.Graph.NumEdges() {
		t.Fatalf("edges = %d, want %d", got.Graph.NumEdges(), ds.Graph.NumEdges())
	}
	// Node content and arc structure survive.
	for v := 0; v < ds.Graph.NumNodes(); v += 53 {
		id := graph.NodeID(v)
		if got.Graph.Text(id) != ds.Graph.Text(id) {
			t.Fatalf("text mismatch at %d", v)
		}
		if got.Graph.LabelName(id) != ds.Graph.LabelName(id) {
			t.Fatalf("label mismatch at %d", v)
		}
		if len(got.Graph.OutArcs(id)) != len(ds.Graph.OutArcs(id)) {
			t.Fatalf("arc count mismatch at %d", v)
		}
	}
	// Rates survive.
	gv, wv := got.Rates.Vector(), ds.Rates.Vector()
	for i := range wv {
		if gv[i] != wv[i] {
			t.Fatalf("rate %d = %v, want %v", i, gv[i], wv[i])
		}
	}
	// Rankings over the reloaded graph are identical.
	opts := core.Config{Rank: rank.Options{Threshold: 1e-9, MaxIters: 300}}
	e1, err := core.NewEngine(ds.Graph, ds.Rates, opts)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := core.NewEngine(got.Graph, got.Rates, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := ir.NewQuery("olap")
	r1, r2 := e1.Rank(q), e2.Rank(q)
	for i := range r1.Scores {
		if r1.Scores[i] != r2.Scores[i] {
			t.Fatalf("score mismatch at %d", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds := testDataset(t)
	path := filepath.Join(t.TempDir(), "ds.gob")
	if err := SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumNodes() != ds.Graph.NumNodes() {
		t.Error("file round trip lost nodes")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file should error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage input should error")
	}
}

func explainSomething(t testing.TB) (*graph.Graph, *core.Subgraph) {
	t.Helper()
	ds := testDataset(t)
	e, err := core.NewEngine(ds.Graph, ds.Rates, core.Config{Rank: rank.Options{Threshold: 1e-7, MaxIters: 300}})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Rank(ir.NewQuery("olap"))
	top := res.TopK(1)
	if len(top) == 0 || top[0].Score == 0 {
		t.Fatal("no results to explain")
	}
	sg, err := e.Explain(res, top[0].Node, core.DefaultExplain())
	if err != nil {
		t.Fatal(err)
	}
	return ds.Graph, sg
}

func TestExportJSON(t *testing.T) {
	g, sg := explainSomething(t)
	var buf bytes.Buffer
	if err := ExportJSON(&buf, g, sg); err != nil {
		t.Fatal(err)
	}
	var out SubgraphJSON
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out.Target != int64(sg.Target) {
		t.Errorf("target = %d", out.Target)
	}
	if len(out.Nodes) != len(sg.Nodes) {
		t.Errorf("nodes = %d, want %d", len(out.Nodes), len(sg.Nodes))
	}
	if len(out.Arcs) != len(sg.Arcs) {
		t.Errorf("arcs = %d, want %d", len(out.Arcs), len(sg.Arcs))
	}
	// Arcs are sorted by descending flow for display.
	for i := 1; i < len(out.Arcs); i++ {
		if out.Arcs[i].Flow > out.Arcs[i-1].Flow {
			t.Error("arcs not sorted by flow")
			break
		}
	}
	if out.Query == "" {
		t.Error("query missing")
	}
}

func TestExportDOT(t *testing.T) {
	g, sg := explainSomething(t)
	var buf bytes.Buffer
	if err := ExportDOT(&buf, g, sg); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	if !strings.HasPrefix(dot, "digraph explain {") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Errorf("malformed DOT:\n%s", dot)
	}
	if !strings.Contains(dot, "peripheries=2") {
		t.Error("target not highlighted")
	}
	if strings.Count(dot, "->") != len(sg.Arcs) {
		t.Errorf("DOT arc count mismatch")
	}
}

func TestExportHTML(t *testing.T) {
	g, sg := explainSomething(t)
	var buf bytes.Buffer
	if err := ExportHTML(&buf, g, sg); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	if !strings.HasPrefix(doc, "<!DOCTYPE html>") {
		t.Error("not an HTML document")
	}
	if !strings.Contains(doc, "<svg") || !strings.Contains(doc, "</svg>") {
		t.Error("missing SVG")
	}
	// One <g class="node"...> per subgraph node; exactly one target box.
	if got := strings.Count(doc, `class="node"`) + strings.Count(doc, `class="node target"`); got != len(sg.Nodes) {
		t.Errorf("rendered %d node boxes, want %d", got, len(sg.Nodes))
	}
	if got := strings.Count(doc, `class="node target"`); got != 1 {
		t.Errorf("rendered %d target boxes, want 1", got)
	}
	// One path per arc.
	if got := strings.Count(doc, `class="arc"`); got != len(sg.Arcs) {
		t.Errorf("rendered %d arcs, want %d", got, len(sg.Arcs))
	}
	// Attribute values are HTML-escaped: no raw angle brackets from
	// transfer-type names like "Paper-cites->Paper".
	if strings.Contains(doc, "cites->") {
		t.Error("unescaped transfer-type name in HTML")
	}
}
