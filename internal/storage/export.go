package storage

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"authorityflow/internal/core"
	"authorityflow/internal/graph"
)

// SubgraphJSON is the JSON shape of an exported explaining subgraph.
type SubgraphJSON struct {
	Target     int64             `json:"target"`
	Query      string            `json:"query"`
	Score      float64           `json:"explainedScore"`
	Converged  bool              `json:"converged"`
	Iterations int               `json:"iterations"`
	Nodes      []SubgraphNode    `json:"nodes"`
	Arcs       []SubgraphArcJSON `json:"arcs"`
}

// SubgraphNode is one exported node with its display string, reduction
// factor, distance from the target, and flow sums.
type SubgraphNode struct {
	ID      int64   `json:"id"`
	Label   string  `json:"label"`
	Display string  `json:"display"`
	H       float64 `json:"h"`
	Dist    int     `json:"dist"`
	InFlow  float64 `json:"inFlow"`
	OutFlow float64 `json:"outFlow"`
}

// SubgraphArcJSON is one exported arc with original and adjusted flows.
type SubgraphArcJSON struct {
	From  int64   `json:"from"`
	To    int64   `json:"to"`
	Type  string  `json:"type"`
	Flow0 float64 `json:"flow0"`
	Flow  float64 `json:"flow"`
}

// ExportJSON renders an explaining subgraph as JSON, the format the
// deployed demo serves to its UI.
func ExportJSON(w io.Writer, g *graph.Graph, sg *core.Subgraph) error {
	out := BuildSubgraphJSON(g, sg)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// BuildSubgraphJSON assembles the exported JSON struct without encoding
// it, for callers (the /v1/explain envelope) that embed the legacy
// subgraph shape inside a larger response. Arc ordering (flow
// descending) matches ExportJSON exactly.
func BuildSubgraphJSON(g *graph.Graph, sg *core.Subgraph) SubgraphJSON {
	out := SubgraphJSON{
		Target:     int64(sg.Target),
		Score:      sg.ExplainedScore(),
		Converged:  sg.Converged,
		Iterations: sg.Iterations,
	}
	if sg.Query != nil {
		out.Query = sg.Query.String()
	}
	for _, v := range sg.Nodes {
		out.Nodes = append(out.Nodes, SubgraphNode{
			ID:      int64(v),
			Label:   g.LabelName(v),
			Display: g.Display(v),
			H:       sg.H[v],
			Dist:    sg.Dist[v],
			InFlow:  sg.InFlow(v),
			OutFlow: sg.OutFlow(v),
		})
	}
	arcs := append([]core.FlowArc(nil), sg.Arcs...)
	sort.Slice(arcs, func(i, j int) bool { return arcs[i].Flow > arcs[j].Flow })
	for _, a := range arcs {
		out.Arcs = append(out.Arcs, SubgraphArcJSON{
			From:  int64(a.From),
			To:    int64(a.To),
			Type:  g.Schema().TransferTypeName(a.Type),
			Flow0: a.Flow0,
			Flow:  a.Flow,
		})
	}
	return out
}

// ExportDOT renders an explaining subgraph in Graphviz DOT format: the
// target is double-circled, every arc is labeled with its explaining
// authority flow, and arc pen widths scale with flow so the
// high-authority paths the paper displays stand out.
func ExportDOT(w io.Writer, g *graph.Graph, sg *core.Subgraph) error {
	var b strings.Builder
	b.WriteString("digraph explain {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	for _, v := range sg.Nodes {
		shape := ""
		if v == sg.Target {
			shape = ", peripheries=2, style=bold"
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", v, dotLabel(g, v), shape)
	}
	maxFlow := 0.0
	for _, a := range sg.Arcs {
		if a.Flow > maxFlow {
			maxFlow = a.Flow
		}
	}
	for _, a := range sg.Arcs {
		width := 1.0
		if maxFlow > 0 {
			width = 1 + 3*a.Flow/maxFlow
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q, penwidth=%.2f];\n",
			a.From, a.To, fmt.Sprintf("%.2e", a.Flow), width)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// dotLabel renders a short multi-line node label.
func dotLabel(g *graph.Graph, v graph.NodeID) string {
	text := ""
	if as := g.Attrs(v); len(as) > 0 {
		text = as[0].Value
	}
	if len(text) > 32 {
		text = text[:32] + "…"
	}
	return fmt.Sprintf("%s %d\n%s", g.LabelName(v), v, text)
}
