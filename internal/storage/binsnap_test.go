package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// snapshotFixture builds a small dataset, its engine (whose corpus owns
// the inverted index), and the binary snapshot bytes for both.
func snapshotFixture(t testing.TB) (*datagen.Dataset, *core.Engine, []byte) {
	t.Helper()
	ds := testDataset(t)
	eng, err := core.NewEngine(ds.Graph, ds.Rates, core.Config{
		Rank: rank.Options{Threshold: 1e-8, MaxIters: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, ds, eng.Index()); err != nil {
		t.Fatal(err)
	}
	return ds, eng, buf.Bytes()
}

// engineFrom builds an engine from a loaded snapshot with the same rank
// options as snapshotFixture, so solver outputs are comparable bit for
// bit.
func engineFrom(t testing.TB, ds *datagen.Dataset, ix *ir.Index) *core.Engine {
	t.Helper()
	corpus, err := core.NewCorpusWithIndex(ds.Graph, ix, core.Config{
		Rank: rank.Options{Threshold: 1e-8, MaxIters: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngineWith(corpus, ds.Rates)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// withDecodeMode runs f once on the zero-copy path and once on the
// portable copying decoder, so both loaders are held to the same
// behaviour on every host.
func withDecodeMode(t *testing.T, f func(t *testing.T)) {
	saved := forceCopyDecode
	defer func() { forceCopyDecode = saved }()
	for _, mode := range []struct {
		name string
		copy bool
	}{{"zerocopy", false}, {"copy", true}} {
		t.Run(mode.name, func(t *testing.T) {
			forceCopyDecode = mode.copy
			f(t)
		})
	}
}

func TestBinSnapshotRoundTripLossless(t *testing.T) {
	ds, eng, data := snapshotFixture(t)
	withDecodeMode(t, func(t *testing.T) {
		got, ix, err := ReadSnapshot(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != ds.Name {
			t.Errorf("name = %q, want %q", got.Name, ds.Name)
		}
		if got.Graph.NumNodes() != ds.Graph.NumNodes() || got.Graph.NumEdges() != ds.Graph.NumEdges() {
			t.Fatalf("graph shape = (%d,%d), want (%d,%d)",
				got.Graph.NumNodes(), got.Graph.NumEdges(), ds.Graph.NumNodes(), ds.Graph.NumEdges())
		}
		if got.Graph.Fingerprint() != ds.Graph.Fingerprint() {
			t.Fatalf("graph fingerprint = %#x, want %#x", got.Graph.Fingerprint(), ds.Graph.Fingerprint())
		}
		for v := 0; v < ds.Graph.NumNodes(); v++ {
			id := graph.NodeID(v)
			if got.Graph.Text(id) != ds.Graph.Text(id) {
				t.Fatalf("text mismatch at node %d", v)
			}
			if got.Graph.LabelName(id) != ds.Graph.LabelName(id) {
				t.Fatalf("label mismatch at node %d", v)
			}
			w, ww := got.Graph.OutArcs(id), ds.Graph.OutArcs(id)
			if len(w) != len(ww) {
				t.Fatalf("out-degree mismatch at node %d", v)
			}
			for i := range w {
				if w[i] != ww[i] {
					t.Fatalf("arc mismatch at node %d arc %d: %+v vs %+v", v, i, w[i], ww[i])
				}
			}
		}
		gv, wv := got.Rates.Vector(), ds.Rates.Vector()
		if len(gv) != len(wv) {
			t.Fatalf("rates length = %d, want %d", len(gv), len(wv))
		}
		for i := range gv {
			if math.Float64bits(gv[i]) != math.Float64bits(wv[i]) {
				t.Fatalf("rate %d = %v, want bit-identical %v", i, gv[i], wv[i])
			}
		}
		// Index: full vocabulary, postings, document lengths.
		want := eng.Index()
		if ix.NumDocs() != want.NumDocs() {
			t.Fatalf("index docs = %d, want %d", ix.NumDocs(), want.NumDocs())
		}
		terms, wantTerms := ix.Terms(), want.Terms()
		if len(terms) != len(wantTerms) {
			t.Fatalf("vocabulary = %d terms, want %d", len(terms), len(wantTerms))
		}
		for i, term := range terms {
			if term != wantTerms[i] {
				t.Fatalf("term %d = %q, want %q", i, term, wantTerms[i])
			}
			p, wp := ix.Postings(term), want.Postings(term)
			if len(p) != len(wp) {
				t.Fatalf("postings for %q: %d, want %d", term, len(p), len(wp))
			}
			for j := range p {
				if p[j] != wp[j] {
					t.Fatalf("posting %d for %q = %+v, want %+v", j, term, p[j], wp[j])
				}
			}
		}
	})
}

// TestBinSnapshotBitIdenticalResults is the acceptance bar for the
// snapshot path: an engine rebuilt from a snapshot must produce
// bit-identical query scores, explaining subgraphs, and reformulated
// rates — not merely approximately equal ones.
func TestBinSnapshotBitIdenticalResults(t *testing.T) {
	_, eng, data := snapshotFixture(t)
	withDecodeMode(t, func(t *testing.T) {
		got, ix, err := ReadSnapshot(data)
		if err != nil {
			t.Fatal(err)
		}
		eng2 := engineFrom(t, got, ix)
		for _, raw := range []string{"mining", "xml data", "query optimization"} {
			q := ir.ParseQuery(raw)
			res1 := eng.Rank(q)
			res2 := eng2.Rank(q)
			if res1.Iterations != res2.Iterations || res1.Converged != res2.Converged {
				t.Fatalf("q=%q solver behaviour diverged: (%d,%v) vs (%d,%v)",
					raw, res1.Iterations, res1.Converged, res2.Iterations, res2.Converged)
			}
			if len(res1.Scores) != len(res2.Scores) {
				t.Fatalf("q=%q score lengths differ", raw)
			}
			top := graph.NodeID(0)
			for v := range res1.Scores {
				if math.Float64bits(res1.Scores[v]) != math.Float64bits(res2.Scores[v]) {
					t.Fatalf("q=%q score at node %d not bit-identical: %v vs %v",
						raw, v, res1.Scores[v], res2.Scores[v])
				}
				if res1.Scores[v] > res1.Scores[top] {
					top = graph.NodeID(v)
				}
			}
			// Explain the top result on both engines.
			sg1, err1 := eng.Explain(res1, top, core.DefaultExplain())
			sg2, err2 := eng2.Explain(res2, top, core.DefaultExplain())
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("q=%q explain errors diverged: %v vs %v", raw, err1, err2)
			}
			if err1 == nil {
				if math.Float64bits(sg1.ExplainedScore()) != math.Float64bits(sg2.ExplainedScore()) {
					t.Fatalf("q=%q explained score not bit-identical: %v vs %v",
						raw, sg1.ExplainedScore(), sg2.ExplainedScore())
				}
				// Reformulate from the explaining subgraph on both.
				rf1, err1 := eng.Reformulate(q, []*core.Subgraph{sg1}, core.ContentAndStructure())
				rf2, err2 := eng2.Reformulate(q, []*core.Subgraph{sg2}, core.ContentAndStructure())
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("q=%q reformulate errors diverged: %v vs %v", raw, err1, err2)
				}
				if err1 == nil {
					v1, v2 := rf1.Rates.Vector(), rf2.Rates.Vector()
					for i := range v1 {
						if math.Float64bits(v1[i]) != math.Float64bits(v2[i]) {
							t.Fatalf("q=%q reformulated rate %d not bit-identical: %v vs %v",
								raw, i, v1[i], v2[i])
						}
					}
				}
			}
			eng.Release(res1)
			eng2.Release(res2)
		}
	})
}

func TestBinSnapshotFileRoundTrip(t *testing.T) {
	ds, eng, _ := snapshotFixture(t)
	path := filepath.Join(t.TempDir(), "corpus.snap")
	if err := WriteSnapshotFile(path, ds, eng.Index()); err != nil {
		t.Fatal(err)
	}
	got, ix, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.Fingerprint() != ds.Graph.Fingerprint() {
		t.Fatalf("fingerprint mismatch after file round trip")
	}
	if ix.NumDocs() != eng.Index().NumDocs() {
		t.Fatalf("index docs mismatch after file round trip")
	}
	// No stray temp files left behind by the atomic write.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected only the snapshot in the temp dir, found %d entries", len(entries))
	}
}

// --- hostile-file helpers -------------------------------------------------

// sectionEntry returns the byte offset of section id's table entry.
func sectionEntry(t *testing.T, data []byte, id uint32) int {
	t.Helper()
	count := int(binary.LittleEndian.Uint32(data[12:]))
	for i := 0; i < count; i++ {
		off := headerSize + i*sectionEntrySize
		if binary.LittleEndian.Uint32(data[off:]) == id {
			return off
		}
	}
	t.Fatalf("section %d not found", id)
	return 0
}

// resealTable recomputes the section-table CRC in the header after a
// deliberate table mutation, so the corruption under test — not the
// table checksum — is what the loader trips on.
func resealTable(data []byte) {
	count := int(binary.LittleEndian.Uint32(data[12:]))
	table := data[headerSize : headerSize+count*sectionEntrySize]
	binary.LittleEndian.PutUint32(data[16:], crc32.Checksum(table, crcTable))
}

// resealSection recomputes section id's payload CRC (and the table CRC)
// after a deliberate payload mutation.
func resealSection(t *testing.T, data []byte, id uint32) {
	t.Helper()
	e := sectionEntry(t, data, id)
	off := binary.LittleEndian.Uint64(data[e+8:])
	length := binary.LittleEndian.Uint64(data[e+16:])
	binary.LittleEndian.PutUint32(data[e+4:], crc32.Checksum(data[off:off+length], crcTable))
	resealTable(data)
}

func TestBinSnapshotHostileFiles(t *testing.T) {
	_, _, pristine := snapshotFixture(t)

	cases := []struct {
		name    string
		mutate  func(t *testing.T, data []byte) []byte
		wantErr error // nil means "any error is acceptable"
	}{
		{"empty file", func(t *testing.T, d []byte) []byte {
			return nil
		}, ErrSnapshotTruncated},
		{"short header", func(t *testing.T, d []byte) []byte {
			return d[:headerSize-1]
		}, ErrSnapshotTruncated},
		{"bad magic", func(t *testing.T, d []byte) []byte {
			d[0] ^= 0xff
			return d
		}, ErrSnapshotMagic},
		{"gob snapshot bytes", func(t *testing.T, d []byte) []byte {
			return []byte("\x1f\x8b\x08\x00 definitely not a binary snapshot, padded out")
		}, ErrSnapshotMagic},
		{"future version", func(t *testing.T, d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:], binSnapshotVersion+1)
			return d
		}, ErrSnapshotVersion},
		{"truncated body", func(t *testing.T, d []byte) []byte {
			return d[:len(d)-1]
		}, ErrSnapshotTruncated},
		{"trailing garbage", func(t *testing.T, d []byte) []byte {
			return append(d, 0xee)
		}, ErrSnapshotCorrupt},
		{"zero section count", func(t *testing.T, d []byte) []byte {
			binary.LittleEndian.PutUint32(d[12:], 0)
			return d
		}, ErrSnapshotCorrupt},
		{"implausible section count", func(t *testing.T, d []byte) []byte {
			binary.LittleEndian.PutUint32(d[12:], maxSections+1)
			return d
		}, ErrSnapshotCorrupt},
		{"flipped table checksum", func(t *testing.T, d []byte) []byte {
			d[16] ^= 0x01
			return d
		}, ErrSnapshotChecksum},
		{"flipped table byte", func(t *testing.T, d []byte) []byte {
			d[headerSize+1] ^= 0x40
			return d
		}, ErrSnapshotChecksum},
		{"flipped payload byte", func(t *testing.T, d []byte) []byte {
			e := sectionEntry(t, d, secFwdArcs)
			off := binary.LittleEndian.Uint64(d[e+8:])
			d[off] ^= 0x80
			return d
		}, ErrSnapshotChecksum},
		{"section offset out of bounds", func(t *testing.T, d []byte) []byte {
			e := sectionEntry(t, d, secRates)
			binary.LittleEndian.PutUint64(d[e+8:], uint64(len(d)))
			resealTable(d)
			return d
		}, ErrSnapshotCorrupt},
		{"section length out of bounds", func(t *testing.T, d []byte) []byte {
			e := sectionEntry(t, d, secRates)
			binary.LittleEndian.PutUint64(d[e+16:], uint64(len(d))+8)
			resealTable(d)
			return d
		}, ErrSnapshotCorrupt},
		{"section overlapping table", func(t *testing.T, d []byte) []byte {
			e := sectionEntry(t, d, secRates)
			binary.LittleEndian.PutUint64(d[e+8:], 0)
			resealTable(d)
			return d
		}, ErrSnapshotCorrupt},
		{"duplicate section id", func(t *testing.T, d []byte) []byte {
			// Relabel secMeta's entry as secRates: either the duplicate
			// or the then-missing meta section must be rejected.
			e := sectionEntry(t, d, secMeta)
			binary.LittleEndian.PutUint32(d[e:], secRates)
			// The payload CRC still matches the payload, so only the
			// table digest needs resealing.
			resealTable(d)
			return d
		}, ErrSnapshotCorrupt},
		{"missing section", func(t *testing.T, d []byte) []byte {
			e := sectionEntry(t, d, secDocLen)
			binary.LittleEndian.PutUint32(d[e:], 63) // unknown id
			resealTable(d)
			return d
		}, ErrSnapshotCorrupt},
		{"lying node count", func(t *testing.T, d []byte) []byte {
			// Bump numNodes in the meta payload and reseal every
			// checksum: the loader must still notice the CSR arrays do
			// not line up with the claimed shape.
			e := sectionEntry(t, d, secMeta)
			off := binary.LittleEndian.Uint64(d[e+8:])
			nameLen := binary.LittleEndian.Uint32(d[off:])
			nodesOff := off + 4 + uint64(nameLen)
			n := binary.LittleEndian.Uint64(d[nodesOff:])
			binary.LittleEndian.PutUint64(d[nodesOff:], n+1)
			resealSection(t, d, secMeta)
			return d
		}, ErrSnapshotCorrupt},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(t, bytes.Clone(pristine))
			withDecodeMode(t, func(t *testing.T) {
				ds, ix, err := ReadSnapshot(data)
				if err == nil {
					t.Fatal("hostile snapshot loaded without error")
				}
				if ds != nil || ix != nil {
					t.Fatal("hostile snapshot returned non-nil results alongside the error")
				}
				if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want errors.Is(%v)", err, tc.wantErr)
				}
			})
		})
	}
}

// TestBinSnapshotTruncationSweep chops the file at many byte boundaries
// — every prefix must produce a typed error and must never panic, on
// both decode paths.
func TestBinSnapshotTruncationSweep(t *testing.T) {
	_, _, data := snapshotFixture(t)
	step := len(data)/61 + 1
	withDecodeMode(t, func(t *testing.T) {
		for cut := 0; cut < len(data); cut += step {
			prefix := data[:cut]
			ds, ix, err := ReadSnapshot(prefix)
			if err == nil {
				t.Fatalf("truncation at %d/%d bytes loaded without error", cut, len(data))
			}
			if ds != nil || ix != nil {
				t.Fatalf("truncation at %d returned non-nil results", cut)
			}
		}
	})
}
