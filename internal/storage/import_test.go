package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"authorityflow/internal/core"
	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
)

const testSchemaJSON = `{
  "nodeTypes": ["Paper", "Author"],
  "edgeTypes": [
    {"role": "cites", "from": "Paper", "to": "Paper"},
    {"role": "by", "from": "Paper", "to": "Author"}
  ],
  "rates": {
    "Paper-cites->Paper": 0.7,
    "Paper-by->Author": 0.2,
    "Paper<-by-Author": 0.2
  }
}`

const testNodesTSV = `# comment line
p1	Paper	Title=Index Selection for OLAP
p2	Paper	Title=Data Cube Operator	Venue=ICDE 1996

a1	Author	Name=J. Gray
`

const testEdgesTSV = `p1	p2	cites
p2	a1	by
`

func importTestDataset(t *testing.T) *graph.Graph {
	t.Helper()
	ds, err := ImportTSV(
		strings.NewReader(testSchemaJSON),
		strings.NewReader(testNodesTSV),
		strings.NewReader(testEdgesTSV),
		"mini")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "mini" {
		t.Errorf("name = %q", ds.Name)
	}
	return ds.Graph
}

func TestImportTSV(t *testing.T) {
	g := importTestDataset(t)
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("%d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	// Attributes parsed, including multiple per node.
	found := g.FindNodes("Data Cube", 1)
	if len(found) != 1 {
		t.Fatal("imported node not findable")
	}
	if got := g.Attr(found[0], "Venue"); got != "ICDE 1996" {
		t.Errorf("Venue = %q", got)
	}
	// The imported dataset actually ranks: p2 receives citation
	// authority for [olap] even though only p1 contains the keyword.
	ds, err := ImportTSV(strings.NewReader(testSchemaJSON), strings.NewReader(testNodesTSV), strings.NewReader(testEdgesTSV), "")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "imported" {
		t.Errorf("default name = %q", ds.Name)
	}
	eng, err := core.NewEngine(ds.Graph, ds.Rates, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Rank(ir.NewQuery("olap"))
	cube := ds.Graph.FindNodes("Data Cube", 1)[0]
	if res.Scores[cube] <= 0 {
		t.Error("citation authority did not flow in imported graph")
	}
}

func TestImportTSVErrors(t *testing.T) {
	cases := []struct {
		name                 string
		schema, nodes, edges string
	}{
		{"bad schema json", "{", testNodesTSV, testEdgesTSV},
		{"no node types", `{"nodeTypes":[]}`, testNodesTSV, testEdgesTSV},
		{"edge type refs unknown", `{"nodeTypes":["A"],"edgeTypes":[{"role":"x","from":"A","to":"B"}]}`, "", ""},
		{"unknown node type", testSchemaJSON, "p1\tBook\tTitle=x\n", ""},
		{"short node line", testSchemaJSON, "p1\n", ""},
		{"empty id", testSchemaJSON, "\tPaper\n", ""},
		{"duplicate id", testSchemaJSON, "p1\tPaper\np1\tPaper\n", ""},
		{"bad attribute", testSchemaJSON, "p1\tPaper\tnoequalsign\n", ""},
		{"edge bad arity", testSchemaJSON, "p1\tPaper\n", "p1\tp1\n"},
		{"edge unknown node", testSchemaJSON, "p1\tPaper\n", "p1\tpX\tcites\n"},
		{"edge unknown role", testSchemaJSON, "p1\tPaper\n", "p1\tp1\tfrobs\n"},
		{"edge wrong endpoint types", testSchemaJSON, "p1\tPaper\na1\tAuthor\n", "a1\tp1\tcites\n"},
		{"invalid rates", `{"nodeTypes":["A"],"edgeTypes":[{"role":"x","from":"A","to":"A"}],"rates":{"A-x->A":0.9,"A<-x-A":0.9}}`, "", ""},
	}
	for _, c := range cases {
		_, err := ImportTSV(strings.NewReader(c.schema), strings.NewReader(c.nodes), strings.NewReader(c.edges), "x")
		if err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	ds := testDataset(t)
	var schema, nodes, edges bytes.Buffer
	if err := ExportTSV(ds, &schema, &nodes, &edges); err != nil {
		t.Fatal(err)
	}
	got, err := ImportTSV(&schema, &nodes, &edges, ds.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumNodes() != ds.Graph.NumNodes() || got.Graph.NumEdges() != ds.Graph.NumEdges() {
		t.Fatalf("round trip: %d/%d vs %d/%d",
			got.Graph.NumNodes(), got.Graph.NumEdges(), ds.Graph.NumNodes(), ds.Graph.NumEdges())
	}
	// Ranking equality proves attribute and structure fidelity.
	opts := core.Config{}
	e1, err := core.NewEngine(ds.Graph, ds.Rates, opts)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := core.NewEngine(got.Graph, got.Rates, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := ir.NewQuery("olap")
	r1, r2 := e1.Rank(q), e2.Rank(q)
	for i := range r1.Scores {
		if r1.Scores[i] != r2.Scores[i] {
			t.Fatalf("score mismatch at %d", i)
		}
	}
}

func TestImportTSVFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := writeFileHelper(p, content); err != nil {
			t.Fatal(err)
		}
		return p
	}
	sp := write("schema.json", testSchemaJSON)
	np := write("corpus.tsv", testNodesTSV)
	ep := write("edges.tsv", testEdgesTSV)
	ds, err := ImportTSVFiles(sp, np, ep, "")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "corpus" { // derived from the nodes filename
		t.Errorf("name = %q", ds.Name)
	}
	if _, err := ImportTSVFiles(filepath.Join(dir, "missing.json"), np, ep, ""); err == nil {
		t.Error("missing schema should error")
	}
	if _, err := ImportTSVFiles(sp, filepath.Join(dir, "missing.tsv"), ep, ""); err == nil {
		t.Error("missing nodes should error")
	}
	if _, err := ImportTSVFiles(sp, np, filepath.Join(dir, "missing.tsv"), ""); err == nil {
		t.Error("missing edges should error")
	}
}

func TestSanitizeTSV(t *testing.T) {
	if got := sanitizeTSV("a\tb\nc"); got != "a b c" {
		t.Errorf("sanitizeTSV = %q", got)
	}
}

func writeFileHelper(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
