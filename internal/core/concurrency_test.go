package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
)

// TestConcurrentRankVsSetRates hammers Rank/Explain readers against
// SetRates writers with no external synchronization. Run with -race:
// the snapshot design means readers either see the old or the new
// rates wholesale, never a torn mixture, and never block.
func TestConcurrentRankVsSetRates(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	q := ir.NewQuery("olap")

	// Two alternating valid rate assignments.
	r1 := f.rates.Clone()
	r2 := f.rates.Clone()
	r2.Set(f.edges["cites"], graph.Forward, 0.5)
	r2.Set(f.edges["by"], graph.Backward, 0.1)

	stop := make(chan struct{})
	var readers, writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := e.Rank(q)
				if len(res.Scores) != f.g.NumNodes() {
					t.Error("short score vector")
					return
				}
				if res.RatesVersion == 0 {
					t.Error("missing rates version")
					return
				}
				if _, err := e.Explain(res, f.ids["v7"], DefaultExplain()); err != nil {
					t.Errorf("explain: %v", err)
					return
				}
				e.Release(res)
			}
		}()
	}
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				r := r1
				if (i+w)%2 == 0 {
					r = r2
				}
				if err := e.SetRates(r); err != nil {
					t.Errorf("SetRates: %v", err)
					return
				}
			}
		}(w)
	}
	writers.Wait() // readers race the full write burst
	close(stop)
	readers.Wait()

	if v := e.RatesVersion(); v != 1+400 {
		t.Errorf("rates version = %d after 400 writes, want 401", v)
	}
}

// TestTrySetRatesConflict exercises the optimistic-concurrency write:
// of N concurrent reformulation-style writers pinned to the same
// version, exactly one wins; the rest get ErrRatesConflict with the
// winning version.
func TestTrySetRatesConflict(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)

	pin := e.Pin()
	const n = 8
	var wins, conflicts atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := e.TrySetRates(pin.Rates(), pin.Version())
			switch {
			case err == nil:
				wins.Add(1)
				if v != pin.Version()+1 {
					t.Errorf("winning version = %d, want %d", v, pin.Version()+1)
				}
			case errors.Is(err, ErrRatesConflict):
				conflicts.Add(1)
				if v != pin.Version()+1 {
					t.Errorf("conflict reports version %d, want %d", v, pin.Version()+1)
				}
			default:
				t.Errorf("TrySetRates: %v", err)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 || conflicts.Load() != n-1 {
		t.Errorf("wins = %d, conflicts = %d (want 1, %d)", wins.Load(), conflicts.Load(), n-1)
	}
}

// TestPinnedConsistency verifies that a pinned view keeps serving the
// rates captured at pin time even after SetRates publishes new ones —
// the property the server's multi-step reformulation flow relies on.
func TestPinnedConsistency(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	q := ir.NewQuery("olap")

	pin := e.Pin()
	before := pin.Rank(q)
	beforeScores := append([]float64(nil), before.Scores...)
	e.Release(before)

	// Publish drastically different rates.
	changed := f.rates.Clone()
	changed.Set(f.edges["cites"], 0, 0.05)
	if err := e.SetRates(changed); err != nil {
		t.Fatal(err)
	}
	if e.RatesVersion() != pin.Version()+1 {
		t.Fatalf("version = %d", e.RatesVersion())
	}

	// The pin still computes the original fixpoint, bit for bit.
	again := pin.Rank(q)
	for i, s := range again.Scores {
		if s != beforeScores[i] {
			t.Fatalf("pinned rank drifted at node %d: %g != %g", i, s, beforeScores[i])
		}
	}
	e.Release(again)

	// The engine itself serves the new rates (different scores).
	fresh := e.Rank(q)
	same := true
	for i, s := range fresh.Scores {
		if s != beforeScores[i] {
			same = false
			break
		}
	}
	e.Release(fresh)
	if same {
		t.Error("engine still serving pre-SetRates scores")
	}

	// And a stale publication against the pin's version conflicts.
	if _, err := e.TrySetRates(pin.Rates(), pin.Version()); !errors.Is(err, ErrRatesConflict) {
		t.Errorf("stale TrySetRates err = %v, want ErrRatesConflict", err)
	}
}

// BenchmarkEngineRankPooled measures steady-state serving with the
// release loop closed: allocations should be far below the seed's
// per-query cost because score buffers recycle through the pool.
func BenchmarkEngineRankPooled(b *testing.B) {
	f := newFixture(b)
	e := f.newEngine(b)
	q := ir.NewQuery("olap")
	// Warm the pool and the global-PageRank cache.
	e.Release(e.Rank(q))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.Rank(q)
		e.Release(res)
	}
}
