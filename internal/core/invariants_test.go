package core

import (
	"math"
	"math/rand"
	"testing"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// TestFlowConservationIdentity checks the sharp algebraic consequence
// of Equations 7–10: for every non-target node v of a (radius-
// unlimited) explaining subgraph,
//
//	O(v) = d · r^Q(v) · h(v)
//
// i.e. the adjusted out-flow equals the damped original score scaled by
// the reduction factor — the explaining subgraph is exactly "the
// original flows, discounted by what leaks away from the target".
func TestFlowConservationIdentity(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("olap"))
	for _, targetName := range []string{"v4", "v7", "v6", "v3"} {
		target := f.ids[targetName]
		sg, err := e.Explain(res, target, ExplainOptions{Threshold: 1e-12, MaxIters: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if !sg.Converged {
			t.Fatalf("target %s: not converged", targetName)
		}
		d := 0.85
		for _, v := range sg.Nodes {
			if v == target {
				continue
			}
			want := d * res.Scores[v] * sg.H[v]
			got := sg.OutFlow(v)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("target %s: O(%d) = %v, want d·r·h = %v", targetName, v, got, want)
			}
		}
	}
}

// TestExplainOnCyclicSubgraph drives the Theorem 1 case: the explaining
// subgraph contains cycles through the target (v4 is both base-set
// member and target; authority loops v4 -> v6 -> v4) and the adjustment
// still converges to values in [0, 1].
func TestExplainOnCyclicSubgraph(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("olap"))
	sg, err := e.Explain(res, f.ids["v4"], ExplainOptions{Radius: 2, Threshold: 1e-10, MaxIters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !sg.Converged {
		t.Fatal("cycle through target broke convergence")
	}
	// The v4 -> v6 -> v4 cycle means v4 has outgoing arcs inside its
	// own explaining subgraph.
	hasOut := false
	for _, a := range sg.Arcs {
		if a.From == f.ids["v4"] {
			hasOut = true
		}
	}
	if !hasOut {
		t.Error("expected arcs out of the target on the cycle")
	}
}

// TestExplainThresholdControlsIterations: a looser threshold converges
// in no more iterations than a tight one, and both end with h(target)=1.
func TestExplainThresholdControlsIterations(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("olap"))
	loose, err := e.Explain(res, f.ids["v4"], ExplainOptions{Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := e.Explain(res, f.ids["v4"], ExplainOptions{Threshold: 1e-12, MaxIters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Iterations > tight.Iterations {
		t.Errorf("loose threshold took more iterations: %d vs %d", loose.Iterations, tight.Iterations)
	}
	if loose.H[f.ids["v4"]] != 1 || tight.H[f.ids["v4"]] != 1 {
		t.Error("h(target) drifted")
	}
	// Timings are recorded.
	if tight.BuildDuration <= 0 || tight.AdjustDuration <= 0 {
		t.Error("stage durations not recorded")
	}
}

// TestSubgraphNodeAuthority: the target's per-node authority uses
// d · in-flow (its out-flow is not in the subgraph), everyone else uses
// out-flow (Equation 11's footnote).
func TestSubgraphNodeAuthority(t *testing.T) {
	e, ids := chainFixture(t)
	res := e.Rank(ir.NewQuery("start"))
	sg, err := e.Explain(res, ids["t"], ExplainOptions{Threshold: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sg.NodeAuthority(ids["t"]), 0.85*sg.InFlow(ids["t"]); math.Abs(got-want) > 1e-12 {
		t.Errorf("target authority = %v, want %v", got, want)
	}
	if got, want := sg.NodeAuthority(ids["a"]), sg.OutFlow(ids["a"]); got != want {
		t.Errorf("interior authority = %v, want %v", got, want)
	}
}

// TestSelfLoopAndDuplicateEdges: the engine handles self-citations and
// parallel edges (the paper assumes them away "for simplicity"; a
// production system cannot).
func TestSelfLoopAndDuplicateEdges(t *testing.T) {
	s := graph.NewSchema()
	paper := s.AddNodeType("Paper")
	cites := s.MustAddEdgeType("cites", paper, paper)
	b := graph.NewBuilder(s)
	a := b.AddNode(paper, graph.Attr{Name: "Title", Value: "self olap"})
	c := b.AddNode(paper, graph.Attr{Name: "Title", Value: "other"})
	b.AddEdge(a, a, cites) // self loop
	b.AddEdge(a, c, cites)
	b.AddEdge(a, c, cites) // duplicate
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := graph.NewRates(s)
	r.Set(cites, graph.Forward, 0.7)
	e, err := NewEngine(g, r, Config{Rank: rank.Options{Threshold: 1e-10, MaxIters: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Rank(ir.NewQuery("olap"))
	if !res.Converged {
		t.Fatal("did not converge with self loop")
	}
	// Equation 1: out-degree 3 for a's cites arcs, each carrying 0.7/3.
	// The duplicate edge doubles c's share.
	if res.Scores[c] <= 0 {
		t.Error("duplicate-edge target got no authority")
	}
	sg, err := e.Explain(res, c, ExplainOptions{Threshold: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	// Both parallel arcs appear in the subgraph.
	count := 0
	for _, arc := range sg.Arcs {
		if arc.From == a && arc.To == c {
			count++
		}
	}
	if count != 2 {
		t.Errorf("parallel arcs in subgraph = %d, want 2", count)
	}
}

// TestExplainInvariantsWithBackwardRates reruns the random invariant
// suite with non-zero backward rates (denser, cyclic subgraphs).
func TestExplainInvariantsWithBackwardRates(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := graph.NewSchema()
	paper := s.AddNodeType("Paper")
	author := s.AddNodeType("Author")
	cites := s.MustAddEdgeType("cites", paper, paper)
	by := s.MustAddEdgeType("by", paper, author)
	for trial := 0; trial < 10; trial++ {
		b := graph.NewBuilder(s)
		nP, nA := 10+rng.Intn(15), 3+rng.Intn(5)
		var papers, authors []graph.NodeID
		for i := 0; i < nP; i++ {
			title := "topic"
			if rng.Intn(2) == 0 {
				title = "olap topic"
			}
			papers = append(papers, b.AddNode(paper, graph.Attr{Name: "Title", Value: title}))
		}
		for i := 0; i < nA; i++ {
			authors = append(authors, b.AddNode(author, graph.Attr{Name: "Name", Value: "someone"}))
		}
		for i := 0; i < 2*nP; i++ {
			b.AddEdge(papers[rng.Intn(nP)], papers[rng.Intn(nP)], cites)
		}
		for _, p := range papers {
			b.AddEdge(p, authors[rng.Intn(nA)], by)
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		r := graph.NewRates(s)
		r.Set(cites, graph.Forward, 0.5)
		r.Set(cites, graph.Backward, 0.1)
		r.Set(by, graph.Forward, 0.3)
		r.Set(by, graph.Backward, 0.9)
		e, err := NewEngine(g, r, Config{Rank: rank.Options{Threshold: 1e-10, MaxIters: 3000}})
		if err != nil {
			t.Fatal(err)
		}
		res := e.Rank(ir.NewQuery("olap"))
		target := papers[rng.Intn(nP)]
		sg, err := e.Explain(res, target, ExplainOptions{Threshold: 1e-10, MaxIters: 3000})
		if err != nil {
			t.Fatal(err)
		}
		if !sg.Converged {
			t.Fatalf("trial %d: not converged", trial)
		}
		d := 0.85
		for _, v := range sg.Nodes {
			if v == target {
				continue
			}
			want := d * res.Scores[v] * sg.H[v]
			if math.Abs(sg.OutFlow(v)-want) > 1e-8 {
				t.Fatalf("trial %d: conservation violated at %d: %v vs %v",
					trial, v, sg.OutFlow(v), want)
			}
		}
	}
}
