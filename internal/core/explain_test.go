package core

import (
	"math"
	"math/rand"
	"testing"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// chainFixture builds the hand-computable leak example:
//
//	s -> a -> t   (s in the base set for "start")
//	     a -> x   (x cannot reach t, so flow over a->x leaks out)
//
// All edges are cites (0.7 forward, 0 backward), d = 0.85.
// Closed forms: r(s)=0.15, r(a)=0.85·0.7·0.15, r(t)=r(x)=0.85·0.35·r(a);
// h(t)=1, h(a)=0.35, h(s)=0.245.
func chainFixture(t *testing.T) (*Engine, map[string]graph.NodeID) {
	t.Helper()
	s := graph.NewSchema()
	paper := s.AddNodeType("Paper")
	cites := s.MustAddEdgeType("cites", paper, paper)
	b := graph.NewBuilder(s)
	ids := map[string]graph.NodeID{
		"s": b.AddNode(paper, graph.Attr{Name: "Title", Value: "start paper"}),
		"a": b.AddNode(paper, graph.Attr{Name: "Title", Value: "middle paper"}),
		"t": b.AddNode(paper, graph.Attr{Name: "Title", Value: "target paper"}),
		"x": b.AddNode(paper, graph.Attr{Name: "Title", Value: "leak paper"}),
	}
	b.AddEdge(ids["s"], ids["a"], cites)
	b.AddEdge(ids["a"], ids["t"], cites)
	b.AddEdge(ids["a"], ids["x"], cites)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := graph.NewRates(s)
	r.Set(cites, graph.Forward, 0.7)
	e, err := NewEngine(g, r, Config{Rank: rank.Options{Damping: 0.85, Threshold: 1e-12, MaxIters: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	return e, ids
}

func TestExplainChainClosedForm(t *testing.T) {
	e, ids := chainFixture(t)
	res := e.Rank(ir.NewQuery("start"))
	sg, err := e.Explain(res, ids["t"], ExplainOptions{Threshold: 1e-12, MaxIters: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !sg.Converged {
		t.Fatal("flow adjustment did not converge")
	}
	// Construction: exactly {s, a, t}; the leak node x is excluded.
	if sg.Has(ids["x"]) {
		t.Error("leak node x must not be in the explaining subgraph")
	}
	for _, n := range []string{"s", "a", "t"} {
		if !sg.Has(ids[n]) {
			t.Errorf("node %s missing from subgraph", n)
		}
	}
	if len(sg.Arcs) != 2 {
		t.Fatalf("arcs = %v", sg.Arcs)
	}

	// Reduction factors (Equation 10).
	if h := sg.H[ids["t"]]; h != 1 {
		t.Errorf("h(target) = %v, want 1", h)
	}
	if h := sg.H[ids["a"]]; math.Abs(h-0.35) > 1e-9 {
		t.Errorf("h(a) = %v, want 0.35", h)
	}
	if h := sg.H[ids["s"]]; math.Abs(h-0.245) > 1e-9 {
		t.Errorf("h(s) = %v, want 0.245", h)
	}

	// Flows (Equations 5 and 7).
	rs, ra := 0.15, 0.85*0.7*0.15
	wantFlow0SA := 0.85 * 0.7 * rs
	wantFlowSA := 0.35 * wantFlow0SA
	wantFlowAT := 0.85 * 0.35 * ra // unchanged: enters the target
	for _, a := range sg.Arcs {
		switch {
		case a.From == ids["s"] && a.To == ids["a"]:
			if math.Abs(a.Flow0-wantFlow0SA) > 1e-9 {
				t.Errorf("Flow0(s->a) = %v, want %v", a.Flow0, wantFlow0SA)
			}
			if math.Abs(a.Flow-wantFlowSA) > 1e-9 {
				t.Errorf("Flow(s->a) = %v, want %v", a.Flow, wantFlowSA)
			}
		case a.From == ids["a"] && a.To == ids["t"]:
			if math.Abs(a.Flow-wantFlowAT) > 1e-9 {
				t.Errorf("Flow(a->t) = %v, want %v", a.Flow, wantFlowAT)
			}
			if a.Flow != a.Flow0 {
				t.Error("flows into the target must not be adjusted")
			}
		default:
			t.Errorf("unexpected arc %+v", a)
		}
	}
	if got := sg.ExplainedScore(); math.Abs(got-wantFlowAT) > 1e-9 {
		t.Errorf("ExplainedScore = %v, want %v", got, wantFlowAT)
	}
	// Distances from the target.
	if sg.Dist[ids["t"]] != 0 || sg.Dist[ids["a"]] != 1 || sg.Dist[ids["s"]] != 2 {
		t.Errorf("distances = %v", sg.Dist)
	}
	// In/out flow bookkeeping.
	if got := sg.OutFlow(ids["a"]); math.Abs(got-wantFlowAT) > 1e-9 {
		t.Errorf("OutFlow(a) = %v", got)
	}
	if got := sg.InFlow(ids["a"]); math.Abs(got-wantFlowSA) > 1e-9 {
		t.Errorf("InFlow(a) = %v", got)
	}
}

// TestExample1DataCubeExcluded reproduces Example 1: the explaining
// subgraph for target v4 ("Range Queries in OLAP") under Q=["OLAP"]
// contains v1..v6 but NOT the "Data Cube" paper v7, because with the
// Figure 3 rates (cited = 0) no authority can flow from v7 to v4.
func TestExample1DataCubeExcluded(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("olap"))
	sg, err := e.Explain(res, f.ids["v4"], ExplainOptions{Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if sg.Has(f.ids["v7"]) {
		t.Error("v7 (Data Cube) must not be in the explaining subgraph")
	}
	for _, n := range []string{"v1", "v2", "v3", "v4", "v5", "v6"} {
		if !sg.Has(f.ids[n]) {
			t.Errorf("%s missing from explaining subgraph", n)
		}
	}
	if h := sg.H[f.ids["v4"]]; h != 1 {
		t.Errorf("h(v4) = %v, want 1 (target flows are not adjusted)", h)
	}
	if !sg.Converged {
		t.Error("Equation 10 fixpoint did not converge (Theorem 1)")
	}
	// All reduction factors lie in [0, 1].
	for v, h := range sg.H {
		if h < 0 || h > 1+1e-9 {
			t.Errorf("h(%d) = %v outside [0,1]", v, h)
		}
	}
	// Flows into the target are the original ones.
	for _, a := range sg.Arcs {
		if a.To == f.ids["v4"] && math.Abs(a.Flow-a.Flow0) > 1e-12 {
			t.Errorf("incoming target flow adjusted: %+v", a)
		}
		if a.Flow > a.Flow0+1e-12 {
			t.Errorf("adjusted flow exceeds original: %+v", a)
		}
	}
	if sg.ExplainedScore() <= 0 {
		t.Error("target should receive positive explained authority")
	}
}

// TestObservation1 verifies: no arc with non-zero authority flow enters
// the (radius-unlimited) subgraph from outside it.
func TestObservation1(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("olap"))
	for _, target := range []graph.NodeID{f.ids["v4"], f.ids["v7"], f.ids["v6"]} {
		sg, err := e.Explain(res, target, ExplainOptions{Threshold: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		alpha := e.Rates()
		for u := 0; u < f.g.NumNodes(); u++ {
			if res.Scores[u] == 0 {
				continue
			}
			for _, a := range f.g.OutArcs(graph.NodeID(u)) {
				if alpha.Rate(a.Type) == 0 {
					continue
				}
				if sg.Has(a.To) && a.To != target && !sg.Has(graph.NodeID(u)) {
					t.Errorf("target %d: arc %d->%d carries flow from outside the subgraph", target, u, a.To)
				}
			}
		}
	}
}

func TestExplainRadiusLimits(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("olap"))
	// Radius 1 around v4: only v6 has a positive-rate arc into v4
	// (cited rate is 0), and v6 is forward-reachable from v4 itself (a
	// base-set member) via the by edge.
	sg, err := e.Explain(res, f.ids["v4"], ExplainOptions{Radius: 1, Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	want := map[graph.NodeID]bool{f.ids["v4"]: true, f.ids["v6"]: true}
	if len(sg.Nodes) != len(want) {
		t.Fatalf("radius-1 nodes = %v", sg.Nodes)
	}
	for _, v := range sg.Nodes {
		if !want[v] {
			t.Errorf("unexpected node %d at radius 1", v)
		}
	}
	for _, v := range sg.Nodes {
		if sg.Dist[v] > 1 {
			t.Errorf("node %d at distance %d despite radius 1", v, sg.Dist[v])
		}
	}
	// Larger radius yields a superset.
	sg3, err := e.Explain(res, f.ids["v4"], ExplainOptions{Radius: 3, Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sg.Nodes {
		if !sg3.Has(v) {
			t.Errorf("radius-3 subgraph missing radius-1 node %d", v)
		}
	}
}

func TestExplainTargetWithNoInflow(t *testing.T) {
	// Explaining an unreachable target yields a singleton subgraph with
	// zero explained score rather than an error.
	e, ids := chainFixture(t)
	res := e.Rank(ir.NewQuery("target")) // base = {t}; nothing flows to s
	sg, err := e.Explain(res, ids["s"], ExplainOptions{Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if got := sg.ExplainedScore(); got != 0 {
		t.Errorf("ExplainedScore = %v, want 0", got)
	}
	if !sg.Has(ids["s"]) {
		t.Error("target itself must always be present")
	}
}

func TestExplainBadTarget(t *testing.T) {
	e, _ := chainFixture(t)
	res := e.Rank(ir.NewQuery("start"))
	if _, err := e.Explain(res, graph.NodeID(99), ExplainOptions{}); err == nil {
		t.Error("out-of-range target should error")
	}
	if _, err := e.Explain(res, graph.NodeID(-1), ExplainOptions{}); err == nil {
		t.Error("negative target should error")
	}
}

func TestTopPathsChain(t *testing.T) {
	e, ids := chainFixture(t)
	res := e.Rank(ir.NewQuery("start"))
	sg, err := e.Explain(res, ids["t"], ExplainOptions{Threshold: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	paths := sg.TopPaths(sg.BaseSources(res), 5)
	if len(paths) != 1 {
		t.Fatalf("paths = %+v", paths)
	}
	p := paths[0]
	if len(p.Nodes) != 3 || p.Nodes[0] != ids["s"] || p.Nodes[2] != ids["t"] {
		t.Errorf("path nodes = %v", p.Nodes)
	}
	// Bottleneck is the smaller of the two adjusted flows.
	wantBottleneck := math.Min(0.35*0.85*0.7*0.15, 0.85*0.35*(0.85*0.7*0.15))
	if math.Abs(p.Flow-wantBottleneck) > 1e-9 {
		t.Errorf("path flow = %v, want %v", p.Flow, wantBottleneck)
	}
	if got := sg.TopPaths(nil, 5); got != nil {
		t.Errorf("TopPaths with no sources = %v", got)
	}
	if got := sg.TopPaths(sg.BaseSources(res), 0); got != nil {
		t.Errorf("TopPaths k=0 = %v", got)
	}
}

func TestTopPathsOrdering(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("olap"))
	sg, err := e.Explain(res, f.ids["v7"], ExplainOptions{Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	paths := sg.TopPaths(sg.BaseSources(res), 10)
	if len(paths) < 2 {
		t.Fatalf("expected multiple paths into v7, got %d", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Flow > paths[i-1].Flow+1e-12 {
			t.Errorf("paths not sorted by flow: %v then %v", paths[i-1].Flow, paths[i].Flow)
		}
	}
	for _, p := range paths {
		if p.Nodes[len(p.Nodes)-1] != f.ids["v7"] {
			t.Errorf("path does not end at target: %v", p.Nodes)
		}
		if len(p.Arcs) != len(p.Nodes)-1 {
			t.Errorf("arc/node count mismatch: %v", p)
		}
	}
}

func TestPrune(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("olap"))
	sg, err := e.Explain(res, f.ids["v4"], ExplainOptions{Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	// Pruning at 0 keeps all arcs.
	same := sg.Prune(0)
	if len(same.Arcs) != len(sg.Arcs) {
		t.Errorf("Prune(0) dropped arcs: %d -> %d", len(sg.Arcs), len(same.Arcs))
	}
	// Pruning at a high threshold keeps only the target.
	maxFlow := 0.0
	for _, a := range sg.Arcs {
		if a.Flow > maxFlow {
			maxFlow = a.Flow
		}
	}
	tiny := sg.Prune(maxFlow * 2)
	if len(tiny.Arcs) != 0 {
		t.Errorf("Prune above max flow kept arcs: %v", tiny.Arcs)
	}
	if !tiny.Has(f.ids["v4"]) {
		t.Error("pruned subgraph must keep the target")
	}
	// Intermediate pruning keeps a subset and consistent flow sums.
	mid := sg.Prune(maxFlow / 2)
	if len(mid.Arcs) == 0 || len(mid.Arcs) >= len(sg.Arcs) {
		t.Errorf("Prune(mid) kept %d of %d arcs", len(mid.Arcs), len(sg.Arcs))
	}
	for _, a := range mid.Arcs {
		if a.Flow < maxFlow/2 {
			t.Errorf("kept arc below threshold: %+v", a)
		}
	}
}

// TestExplainInvariantsRandom checks the Section 4 invariants on random
// graphs: h in [0,1] with h(target)=1, Flow <= Flow0, unadjusted target
// inflows, and out-flow never exceeding d·r(v) (a node cannot forward
// more authority than it forwards in the full graph).
func TestExplainInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := graph.NewSchema()
	paper := s.AddNodeType("Paper")
	cites := s.MustAddEdgeType("cites", paper, paper)
	for trial := 0; trial < 20; trial++ {
		b := graph.NewBuilder(s)
		n := 8 + rng.Intn(20)
		ids := make([]graph.NodeID, n)
		for i := range ids {
			title := "paper"
			if rng.Intn(3) == 0 {
				title = "olap paper"
			}
			ids[i] = b.AddNode(paper, graph.Attr{Name: "Title", Value: title})
		}
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(ids[u], ids[v], cites)
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		r := graph.NewRates(s)
		r.Set(cites, graph.Forward, 0.6)
		r.Set(cites, graph.Backward, 0.2)
		e, err := NewEngine(g, r, Config{Rank: rank.Options{Threshold: 1e-10, MaxIters: 2000}})
		if err != nil {
			t.Fatal(err)
		}
		res := e.Rank(ir.NewQuery("olap"))
		target := ids[rng.Intn(n)]
		sg, err := e.Explain(res, target, ExplainOptions{Threshold: 1e-10, MaxIters: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if !sg.Converged {
			t.Fatalf("trial %d: no convergence", trial)
		}
		if sg.H[target] != 1 {
			t.Fatalf("trial %d: h(target) = %v", trial, sg.H[target])
		}
		for v, h := range sg.H {
			if h < -1e-12 || h > 1+1e-9 {
				t.Fatalf("trial %d: h(%d) = %v", trial, v, h)
			}
		}
		for _, a := range sg.Arcs {
			if a.Flow > a.Flow0+1e-12 {
				t.Fatalf("trial %d: Flow > Flow0 on %+v", trial, a)
			}
			if a.To == target && math.Abs(a.Flow-a.Flow0) > 1e-12 {
				t.Fatalf("trial %d: target inflow adjusted: %+v", trial, a)
			}
		}
		d := 0.85
		for _, v := range sg.Nodes {
			if out := sg.OutFlow(v); out > d*res.Scores[v]+1e-9 {
				t.Fatalf("trial %d: OutFlow(%d) = %v exceeds d·r = %v", trial, v, out, d*res.Scores[v])
			}
		}
	}
}
