package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// newRandomCorpusGraph builds a citation graph large enough that
// tiling and panel-mode differences are exercised across many panels,
// with node text drawn from a small vocabulary so queries hit
// non-trivial base sets. Besides the globally-spread "cites" edges it
// adds a second "extends" type confined to the first 5% of nodes, so
// delta-solve tests can perturb a LOCALIZED rate (the push-phase
// sweet spot) as well as a global one. Returns the two edge types in
// that order.
func newRandomCorpusGraph(t testing.TB, n, m int) (*graph.Graph, *graph.Rates, []graph.EdgeTypeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	vocab := []string{"olap", "cube", "index", "range", "query", "warehouse", "stream", "join"}
	s := graph.NewSchema()
	paper := s.AddNodeType("Paper")
	cites := s.MustAddEdgeType("cites", paper, paper)
	extends := s.MustAddEdgeType("extends", paper, paper)
	b := graph.NewBuilder(s)
	ids := make([]graph.NodeID, n)
	for i := range ids {
		w1 := vocab[rng.Intn(len(vocab))]
		w2 := vocab[rng.Intn(len(vocab))]
		ids[i] = b.AddNode(paper, graph.Attr{Name: "Title", Value: w1 + " " + w2 + " paper"})
	}
	for i := 0; i < m; i++ {
		b.AddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)], cites)
	}
	loc := n / 20
	for i := 0; i < m/20; i++ {
		b.AddEdge(ids[rng.Intn(loc)], ids[rng.Intn(loc)], extends)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := graph.NewRates(s)
	r.Set(cites, graph.Forward, 0.6)
	r.Set(cites, graph.Backward, 0.2)
	r.Set(extends, graph.Forward, 0.1)
	r.Set(extends, graph.Backward, 0.05)
	return g, r, []graph.EdgeTypeID{cites, extends}
}

// TestConfigTileNodesBitIdentical: a tiled engine must answer every
// single and batched query bit-identically to an untiled engine over
// the same graph — Config.TileNodes is purely an execution plan.
func TestConfigTileNodesBitIdentical(t *testing.T) {
	g, r, _ := newRandomCorpusGraph(t, 1500, 12000)
	cfg := Config{Rank: rank.Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 300}}
	plain, err := NewEngine(g, r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TileNodes = 256
	tiled, err := NewEngine(g, r, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	qs := []*ir.Query{
		ir.NewQuery("olap"), ir.NewQuery("cube index"), ir.NewQuery("warehouse"),
		ir.NewQuery("stream join"), ir.NewQuery("range query"),
	}
	for _, q := range qs {
		a, err := plain.RankCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tiled.RankCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Iterations != b.Iterations {
			t.Fatalf("query %q: tiled ran %d iterations, untiled %d", q, b.Iterations, a.Iterations)
		}
		for v := range a.Scores {
			if math.Float64bits(a.Scores[v]) != math.Float64bits(b.Scores[v]) {
				t.Fatalf("query %q node %d: tiled engine diverged bitwise", q, v)
			}
		}
		plain.Release(a)
		tiled.Release(b)
	}

	as, err := plain.RankManyCtx(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := tiled.RankManyCtx(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		for v := range as[i].Scores {
			if math.Float64bits(as[i].Scores[v]) != math.Float64bits(bs[i].Scores[v]) {
				t.Fatalf("batch query %d node %d: tiled engine diverged bitwise", i, v)
			}
		}
		plain.Release(as[i])
		tiled.Release(bs[i])
	}
}

// TestRankManyModeF32Agreement: PanelF32 batches agree with PanelF64
// batches to within the mode's published 1e-6 bound, and PanelF64
// through RankManyModeCtx stays bit-identical to RankManyCtx.
func TestRankManyModeF32Agreement(t *testing.T) {
	g, r, _ := newRandomCorpusGraph(t, 1200, 9600)
	e, err := NewEngine(g, r, Config{Rank: rank.Options{Damping: 0.85, Threshold: 1e-8, MaxIters: 500}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pin := e.Pin()
	qs := []*ir.Query{
		ir.NewQuery("olap"), ir.NewQuery("cube"), ir.NewQuery("index"),
		ir.NewQuery("warehouse stream"), ir.NewQuery("join"),
	}
	f64s, err := pin.RankManyModeCtx(ctx, qs, nil, PanelF64)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pin.RankManyCtx(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	f32s, err := pin.RankManyModeCtx(ctx, qs, nil, PanelF32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		for v := range ref[i].Scores {
			if math.Float64bits(f64s[i].Scores[v]) != math.Float64bits(ref[i].Scores[v]) {
				t.Fatalf("query %d node %d: explicit PanelF64 diverged from RankManyCtx", i, v)
			}
			if d := math.Abs(f32s[i].Scores[v] - ref[i].Scores[v]); d > 1e-6 {
				t.Fatalf("query %d node %d: PanelF32 deviates by %.3g > 1e-6", i, v, d)
			}
		}
		e.Release(f64s[i])
		e.Release(ref[i])
		e.Release(f32s[i])
	}
}

// TestRankDeltaCtx: after a small rates republish, the delta solve
// seeded with the previous version's vector lands within the
// convergence tolerance class of a full solve and reports its push
// telemetry through the solve hook; a stale (wrong-generation-sized)
// prev degrades to a full solve bit-identically.
func TestRankDeltaCtx(t *testing.T) {
	g, r, ets := newRandomCorpusGraph(t, 1500, 12000)
	thr := 1e-9
	e, err := NewEngine(g, r, Config{Rank: rank.Options{Damping: 0.85, Threshold: thr, MaxIters: 500}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := ir.NewQuery("olap cube")
	prev, err := e.RankCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	// ε-perturb the localized extends rate and republish: the residual
	// frontier stays confined to the extends-bearing region, the case
	// the push phase exists for.
	r2 := r.Clone()
	extends := graph.TransferType(ets[1], graph.Forward)
	r2.SetRate(extends, r2.Rate(extends)+1e-5)
	if err := e.SetRates(r2); err != nil {
		t.Fatal(err)
	}

	var last SolveStats
	e.SetSolveHook(func(s SolveStats) { last = s })
	pin := e.Pin()
	full, err := pin.RankCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	fullIters := full.Iterations
	delta, err := pin.RankDeltaCtx(ctx, q, prev.Scores)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Converged {
		t.Fatal("delta solve did not converge")
	}
	if last.DeltaFellBack {
		t.Fatalf("ε-republish fell back to full sweeps (pushes=%d)", last.DeltaPushes)
	}
	work := float64(delta.Iterations) + float64(last.DeltaPushes)/float64(g.NumNodes())
	if work >= float64(fullIters) {
		t.Fatalf("delta did %.2f sweep-equivalents, full solve needed %d", work, fullIters)
	}
	bound := 2 * thr / (1 - 0.85)
	l1 := 0.0
	for v := range full.Scores {
		l1 += math.Abs(delta.Scores[v] - full.Scores[v])
	}
	if l1 > bound {
		t.Fatalf("delta L1-distance %.3g exceeds tolerance bound %.3g", l1, bound)
	}

	// Stale prev: wrong length ⇒ cold full solve, bit-identical to RankCtx.
	staleDelta, err := pin.RankDeltaCtx(ctx, q, make([]float64, g.NumNodes()+9))
	if err != nil {
		t.Fatal(err)
	}
	if !last.DeltaFellBack {
		t.Fatal("stale prev did not report fallback")
	}
	for v := range full.Scores {
		if math.Float64bits(staleDelta.Scores[v]) != math.Float64bits(full.Scores[v]) {
			t.Fatalf("node %d: stale-prev delta differs from full solve", v)
		}
	}
	e.Release(prev)
	e.Release(full)
	e.Release(delta)
	e.Release(staleDelta)
}
