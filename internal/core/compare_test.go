package core

import (
	"math"
	"strings"
	"testing"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
)

func TestCompareDataCubeVsModeling(t *testing.T) {
	// Why does "Data Cube" (v7) outrank "Modeling Multidimensional
	// Databases" (v5) for [olap]? Citations: v7 receives three cites
	// flows, v5 one — the comparison must surface cites as the dominant
	// advantage.
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("olap"))
	cmp, err := e.Compare(res, f.ids["v7"], f.ids["v5"], ExplainOptions{Threshold: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Gap() <= 0 {
		t.Fatalf("v7 should outscore v5: gap = %v", cmp.Gap())
	}
	dom := cmp.DominantType()
	if !strings.Contains(dom.Name, "cites") {
		t.Errorf("dominant advantage = %q, want a cites type", dom.Name)
	}
	if dom.A <= dom.B {
		t.Errorf("dominant type should favor A: %v vs %v", dom.A, dom.B)
	}
	// Neither paper contains "olap", so base contributions are zero.
	if cmp.BaseA != 0 || cmp.BaseB != 0 {
		t.Errorf("base contributions = %v / %v, want 0", cmp.BaseA, cmp.BaseB)
	}
	if s := cmp.String(); !strings.Contains(s, "gap") {
		t.Errorf("String = %q", s)
	}
	if cmp.SubA == nil || cmp.SubB == nil {
		t.Error("underlying subgraphs missing")
	}
}

func TestCompareBaseSetContribution(t *testing.T) {
	// v1 is in the base set, v7 is not: v1's base contribution is
	// (1-d)·s(v1) > 0, v7's is 0.
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("olap"))
	cmp, err := e.Compare(res, f.ids["v1"], f.ids["v7"], ExplainOptions{Threshold: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.BaseA <= 0 {
		t.Errorf("v1 base contribution = %v, want > 0", cmp.BaseA)
	}
	if cmp.BaseB != 0 {
		t.Errorf("v7 base contribution = %v, want 0", cmp.BaseB)
	}
	// Base contribution is bounded by the full score.
	if cmp.BaseA > cmp.ScoreA+1e-12 {
		t.Errorf("base %v exceeds score %v", cmp.BaseA, cmp.ScoreA)
	}
	// The per-type inflows of A sum to (close to) score minus base: the
	// intake decomposition is complete for a radius-unlimited subgraph.
	sumA := 0.0
	for _, tf := range cmp.ByType {
		sumA += tf.A
	}
	if math.Abs(sumA+cmp.BaseA-cmp.ScoreA) > 0.01*cmp.ScoreA+1e-9 {
		t.Errorf("decomposition gap: flows %v + base %v vs score %v", sumA, cmp.BaseA, cmp.ScoreA)
	}
}

func TestCompareErrors(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("olap"))
	if _, err := e.Compare(res, graph.NodeID(999), f.ids["v1"], ExplainOptions{}); err == nil {
		t.Error("bad A should error")
	}
	if _, err := e.Compare(res, f.ids["v1"], graph.NodeID(-3), ExplainOptions{}); err == nil {
		t.Error("bad B should error")
	}
}

func TestCompareEmptyFlows(t *testing.T) {
	// Comparing two isolated base-set nodes: no type flows at all.
	e, ids := chainFixture(t)
	res := e.Rank(ir.NewQuery("leak")) // base = {x}, which has no in-subgraph arcs
	cmp, err := e.Compare(res, ids["x"], ids["s"], ExplainOptions{Threshold: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if dom := cmp.DominantType(); dom.Name != "" && dom.A == 0 && dom.B == 0 {
		t.Errorf("unexpected dominant type on empty flows: %+v", dom)
	}
}

func TestDecomposeByTerm(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	q := ir.NewQuery("olap", "multidimensional")
	res := e.Rank(q)

	// The shares must sum to the multi-keyword score (linearity).
	for _, name := range []string{"v7", "v5", "v1"} {
		v := f.ids[name]
		shares, err := e.DecomposeByTerm(q, v)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, s := range shares {
			if s.Score < 0 {
				t.Errorf("%s: negative share %+v", name, s)
			}
			sum += s.Score
		}
		if math.Abs(sum-res.Scores[v]) > 1e-6 {
			t.Errorf("%s: shares sum to %v, score is %v", name, sum, res.Scores[v])
		}
	}

	// v5 contains "multidimensional" itself: that term dominates its
	// score; v1 contains only "olap".
	shares5, _ := e.DecomposeByTerm(q, f.ids["v5"])
	if shares5[0].Term != "multidimensional" {
		t.Errorf("v5 dominant term = %q", shares5[0].Term)
	}

	// Errors and degenerate cases.
	if _, err := e.DecomposeByTerm(q, graph.NodeID(99)); err == nil {
		t.Error("out-of-range node should error")
	}
	none, err := e.DecomposeByTerm(ir.NewQuery("zebra"), f.ids["v1"])
	if err != nil || none != nil {
		t.Errorf("no-term decomposition = %v, %v", none, err)
	}
}
