package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
)

// ReformulateOptions control query reformulation (Section 5).
type ReformulateOptions struct {
	// Ce is the expansion factor (0..1) scaling the weights of the
	// content-based expansion terms relative to the current query
	// vector (Equation 12). 0 disables content-based reformulation.
	// The paper typically uses 0.5 and 0.2 in the surveys.
	Ce float64
	// Cf is the authority-transfer-rate adjustment factor (0..1) of
	// the structure-based reformulation (Equation 13). 0 disables
	// structure-based reformulation. The paper typically uses 0.5.
	Cf float64
	// Cd is the decay factor weighting expansion terms by their
	// distance from the feedback object (Equation 11), typically 0.5.
	Cd float64
	// TopTerms is Z, the number of highest-weighted expansion terms
	// added to the query (default 5).
	TopTerms int
}

func (o ReformulateOptions) withDefaults() ReformulateOptions {
	if o.Cd == 0 {
		o.Cd = 0.5
	}
	if o.TopTerms == 0 {
		o.TopTerms = 5
	}
	return o
}

// ContentOnly returns the paper's content-only survey setting.
func ContentOnly() ReformulateOptions { return ReformulateOptions{Ce: 0.2, Cf: 0, Cd: 0.5} }

// StructureOnly returns the paper's structure-only survey setting.
func StructureOnly() ReformulateOptions { return ReformulateOptions{Ce: 0, Cf: 0.5, Cd: 0.5} }

// ContentAndStructure returns the paper's combined survey setting.
func ContentAndStructure() ReformulateOptions {
	return ReformulateOptions{Ce: 0.2, Cf: 0.5, Cd: 0.5}
}

// WeightedTerm is one expansion-term candidate with its Equation 11
// weight (after normalization).
type WeightedTerm struct {
	Term   string
	Weight float64
}

// Reformulation is the outcome of one feedback iteration: the expanded
// query vector and the adjusted authority transfer rates, along with
// diagnostics for display and experiments.
type Reformulation struct {
	// Query is the reformulated query vector Q_{i+1}.
	Query *ir.Query
	// Rates is the reformulated authority transfer rate assignment.
	// Equal to the input rates (cloned) when Cf is 0.
	Rates *graph.Rates
	// Expansion lists the terms added (or re-weighted) by the
	// content-based component, highest weight first; empty when Ce = 0.
	Expansion []WeightedTerm
	// FlowByType holds the aggregated F(e_S) factors per transfer type
	// before normalization (Equation 13/15 diagnostics).
	FlowByType []float64
}

// Reformulate produces a reformulated query from the explaining
// subgraphs of the user-selected feedback objects (Section 5). The
// content-based component (5.1) expands the query vector with terms
// from nodes that transfer high authority to the feedback objects; the
// structure-based component (5.2) boosts the transfer rates of edge
// types that carry large authority in the explaining subgraphs.
// Multiple feedback objects combine by summation (5.3, Equations
// 14–15).
func (e *Engine) Reformulate(q *ir.Query, feedback []*Subgraph, opts ReformulateOptions) (*Reformulation, error) {
	return e.reformulateAt(context.Background(), e.state.Load(), q, feedback, nil, opts)
}

// ReformulateCtx is Reformulate under a cancellable context. The
// reformulation itself is cheap (its cost is linear in the feedback
// subgraphs, not the corpus), so ctx is checked at entry and between
// the content and structure components — enough to make an already-dead
// request return immediately without starting the clone-and-adjust
// work.
func (e *Engine) ReformulateCtx(ctx context.Context, q *ir.Query, feedback []*Subgraph, opts ReformulateOptions) (*Reformulation, error) {
	return e.reformulateAt(ctx, e.state.Load(), q, feedback, nil, opts)
}

// ReformulateWeighted is Reformulate with a per-feedback-object
// confidence weight — the paper's click-through remark made concrete
// ("the user's click-through could be used to implicitly derive such
// markings"): implicit signals are weaker than explicit marks, so each
// object's Equation 14/15 contribution is scaled by its weight. nil
// weights mean 1 everywhere (explicit marks, the plain summation of
// Section 5.3); the weight count must otherwise match the feedback
// count and weights must be non-negative.
func (e *Engine) ReformulateWeighted(q *ir.Query, feedback []*Subgraph, confidences []float64, opts ReformulateOptions) (*Reformulation, error) {
	return e.reformulateAt(context.Background(), e.state.Load(), q, feedback, confidences, opts)
}

// ReformulateWeightedCtx is ReformulateWeighted under a cancellable
// context (see ReformulateCtx for the checking granularity).
func (e *Engine) ReformulateWeightedCtx(ctx context.Context, q *ir.Query, feedback []*Subgraph, confidences []float64, opts ReformulateOptions) (*Reformulation, error) {
	return e.reformulateAt(ctx, e.state.Load(), q, feedback, confidences, opts)
}

// reformulateAt is ReformulateWeighted against one pinned rates
// snapshot: the cloned-and-adjusted Rates in the result derive from the
// snapshot's rates, not from whatever SetRates may have published since
// the caller started its feedback round. Combined with
// TrySetRates(result.Rates, snapshotVersion) this gives callers an
// optimistic-concurrency loop: the adjustment is computed off a stable
// basis and publication fails (rather than silently clobbering) when
// another writer got there first.
func (e *Engine) reformulateAt(ctx context.Context, st *engineState, q *ir.Query, feedback []*Subgraph, confidences []float64, opts ReformulateOptions) (*Reformulation, error) {
	snap := st.snap
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(feedback) == 0 {
		return nil, fmt.Errorf("core: reformulation requires at least one feedback object")
	}
	if confidences != nil && len(confidences) != len(feedback) {
		return nil, fmt.Errorf("core: %d confidences for %d feedback objects", len(confidences), len(feedback))
	}
	for _, c := range confidences {
		if c < 0 || math.IsNaN(c) {
			return nil, fmt.Errorf("core: invalid feedback confidence %v", c)
		}
	}
	weightOf := func(i int) float64 {
		if confidences == nil {
			return 1
		}
		return confidences[i]
	}
	opts = opts.withDefaults()
	g := st.gen.corpus.g
	out := &Reformulation{Query: q.Clone(), Rates: snap.rates.Clone()}

	if opts.Ce > 0 {
		weights := make(map[string]float64)
		for i, sg := range feedback {
			per := make(map[string]float64)
			contentWeights(g, sg, opts.Cd, per) // Equation 14: weighted sum across objects
			for t, w := range per {
				weights[t] += weightOf(i) * w
			}
		}
		out.Expansion = expandQuery(out.Query, weights, opts)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Cf > 0 {
		flows := make([]float64, g.Schema().NumTransferTypes())
		for i, sg := range feedback {
			for _, a := range sg.Arcs { // Equation 15: weighted sum across objects
				flows[a.Type] += weightOf(i) * a.Flow
			}
		}
		out.FlowByType = append([]float64(nil), flows...)
		out.Rates = adjustRates(snap.rates, flows, opts.Cf)
	}
	return out, nil
}

// contentWeights accumulates the Equation 11 expansion-term weights for
// one feedback object's explaining subgraph into acc:
//
//	w'(t) = sum over nodes v_k containing t of
//	        C_d^D(v_k) · (authority v_k transfers toward the target)
//
// where the per-node authority is the node's adjusted out-flow in the
// subgraph (d · in-flow for the target itself) and D(v_k) is the node's
// distance from the target. Stopwords and single-character tokens are
// excluded.
func contentWeights(g *graph.Graph, sg *Subgraph, cd float64, acc map[string]float64) {
	for _, v := range sg.Nodes {
		authority := sg.NodeAuthority(v)
		if authority <= 0 {
			continue
		}
		decay := math.Pow(cd, float64(sg.Dist[v]))
		contribution := decay * authority
		// Each distinct term of the node contributes once.
		seen := make(map[string]bool)
		for _, tok := range ir.TokenizeFiltered(g.Text(v)) {
			if !seen[tok] {
				seen[tok] = true
				acc[tok] += contribution
			}
		}
	}
}

// expandQuery performs the Equation 12 update: it selects the top-Z
// candidate terms, normalizes their weights so the maximum equals the
// current query's average term weight a_q (Section 5.1 normalization),
// and adds C_e times each normalized weight to the query vector.
func expandQuery(q *ir.Query, weights map[string]float64, opts ReformulateOptions) []WeightedTerm {
	candidates := make([]WeightedTerm, 0, len(weights))
	for t, w := range weights {
		if w > 0 {
			candidates = append(candidates, WeightedTerm{Term: t, Weight: w})
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Weight != candidates[j].Weight {
			return candidates[i].Weight > candidates[j].Weight
		}
		return candidates[i].Term < candidates[j].Term
	})
	if len(candidates) > opts.TopTerms {
		candidates = candidates[:opts.TopTerms]
	}
	if len(candidates) == 0 {
		return nil
	}
	// Normalize: the maximum selected weight becomes a_q, the average
	// weight of the current query vector.
	aq := q.AverageWeight()
	if aq == 0 {
		aq = 1
	}
	scale := aq / candidates[0].Weight
	for i := range candidates {
		candidates[i].Weight *= scale
	}
	for _, c := range candidates {
		q.Add(c.Term, opts.Ce*c.Weight)
	}
	return candidates
}

// adjustRates performs the Equation 13 structure-based update with the
// paper's normalization pipeline:
//
//  1. normalize the per-type flow factors F(e_S) by their maximum;
//  2. boost every rate: a'(e_S) = (1 + C_f · F̂(e_S)) · a(e_S);
//  3. if any single rate exceeds 1, rescale all rates by the maximum;
//  4. if any schema node's outgoing rates sum beyond 1, rescale ALL
//     rates by the largest such sum. Global (rather than per-node)
//     rescaling preserves the relative proportions between edge types —
//     this reproduces the paper's Example 2, where rates of types
//     carrying no flow (CY, YC, YP, AP) all shrink by the same factor.
func adjustRates(old *graph.Rates, flows []float64, cf float64) *graph.Rates {
	schema := old.Schema()
	norm := append([]float64(nil), flows...)
	maxF := 0.0
	for _, f := range norm {
		if f > maxF {
			maxF = f
		}
	}
	if maxF > 0 {
		for i := range norm {
			norm[i] /= maxF
		}
	}

	vec := old.Vector()
	for i := range vec {
		vec[i] *= 1 + cf*norm[i]
	}

	maxRate := 0.0
	for _, a := range vec {
		if a > maxRate {
			maxRate = a
		}
	}
	if maxRate > 1 {
		for i := range vec {
			vec[i] /= maxRate
		}
	}

	tmp := graph.NewRates(schema)
	if err := tmp.SetVector(vec); err != nil {
		// vec is derived from validated non-negative inputs.
		panic(err)
	}
	maxSum := 0.0
	for t := graph.TypeID(0); int(t) < schema.NumNodeTypes(); t++ {
		if s := tmp.OutgoingSum(t); s > maxSum {
			maxSum = s
		}
	}
	if maxSum > 1 {
		for i := range vec {
			vec[i] /= maxSum
		}
		if err := tmp.SetVector(vec); err != nil {
			panic(err)
		}
	}
	return tmp
}
