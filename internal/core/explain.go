package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
)

// ExplainOptions control explaining-subgraph construction (Section 4).
type ExplainOptions struct {
	// Radius bounds the length of explained paths: only nodes within
	// Radius transfer arcs of the target enter the subgraph. The paper
	// uses L = 3, observing that longer paths are unintuitive and carry
	// little authority. Zero means unlimited.
	Radius int
	// Threshold is the convergence threshold of the flow-adjustment
	// fixpoint (Equation 10). Zero means the paper's 0.002.
	Threshold float64
	// MaxIters bounds the flow-adjustment iterations (default 200).
	MaxIters int
}

func (o ExplainOptions) withDefaults() ExplainOptions {
	if o.Threshold == 0 {
		o.Threshold = 0.002
	}
	if o.MaxIters == 0 {
		o.MaxIters = 200
	}
	return o
}

// DefaultExplain returns the paper's setting: radius 3, threshold 0.002.
func DefaultExplain() ExplainOptions { return ExplainOptions{Radius: 3} }

// FlowArc is one edge of an explaining subgraph, annotated with the
// authority it carries.
type FlowArc struct {
	From graph.NodeID
	To   graph.NodeID
	Type graph.TransferTypeID
	// Rate is the arc's authority transfer rate under the engine's
	// rates at explain time: alpha(Type)/OutDeg(From, Type)
	// (Equation 1).
	Rate float64
	// Flow0 is the "original" authority flow at the converged
	// ObjectRank2 state: d · Rate · r^Q(From) (Equation 5).
	Flow0 float64
	// Flow is the explaining authority flow after adjustment: the part
	// of Flow0 that eventually reaches the target inside the subgraph
	// (Equation 7: Flow = h(To) · Flow0).
	Flow float64
}

// Subgraph is the explaining subgraph G^Q_v of a target object v: every
// path along which authority travels from the base set S(Q) to v, with
// each arc annotated by the amount of authority that flows over it and
// eventually reaches v.
type Subgraph struct {
	// Target is the explained object v.
	Target graph.NodeID
	// Query is the query whose ranking is being explained.
	Query *ir.Query
	// Nodes lists the subgraph's nodes in ascending ID order; the
	// target is always present.
	Nodes []graph.NodeID
	// Arcs lists the subgraph's arcs with original and adjusted flows.
	Arcs []FlowArc
	// H maps each node to its converged flow-reduction factor h
	// (Equation 10); h(Target) = 1 by construction.
	H map[graph.NodeID]float64
	// Dist maps each node to its distance (in arcs) from the target,
	// the D(v_k) of the content-based reformulation decay (Equation 11).
	Dist map[graph.NodeID]int
	// Iterations and Converged report the Equation 10 fixpoint run;
	// Table 3 of the paper tracks these counts.
	Iterations int
	Converged  bool
	// BuildDuration is the wall time of the construction stage and
	// AdjustDuration of the flow-adjustment stage — the "Explaining
	// Subgraph Creation" and "Explaining ObjectRank2 Execution" bars of
	// Figures 14–17.
	BuildDuration  time.Duration
	AdjustDuration time.Duration

	damping float64
	inFlow  map[graph.NodeID]float64
	outFlow map[graph.NodeID]float64
}

// Has reports whether v is part of the subgraph.
func (sg *Subgraph) Has(v graph.NodeID) bool {
	_, ok := sg.H[v]
	return ok
}

// InFlow returns I(v): the summed adjusted flow entering v inside the
// subgraph (Equation 6a).
func (sg *Subgraph) InFlow(v graph.NodeID) float64 { return sg.inFlow[v] }

// OutFlow returns O(v): the summed adjusted flow leaving v inside the
// subgraph (Equation 6b).
func (sg *Subgraph) OutFlow(v graph.NodeID) float64 { return sg.outFlow[v] }

// ExplainedScore returns the total adjusted authority arriving at the
// target — what the subgraph shows the user as "why this object is
// ranked where it is".
func (sg *Subgraph) ExplainedScore() float64 { return sg.inFlow[sg.Target] }

// NodeAuthority returns the authority a node transfers toward the
// target, the per-node factor of the content-based reformulation
// weight (Equation 11): the node's adjusted out-flow, except for the
// target itself which uses d times its in-flow because the target's
// out-flow is not part of the subgraph.
func (sg *Subgraph) NodeAuthority(v graph.NodeID) float64 {
	if v == sg.Target {
		return sg.damping * sg.inFlow[v]
	}
	return sg.outFlow[v]
}

// Explain builds the explaining subgraph for target under the converged
// ObjectRank2 result res, following the two-stage algorithm of
// Figure 8: (i) construction — a backward traversal from the target
// intersected with a forward traversal from the base set keeps exactly
// the arcs that can carry authority to the target; (ii) flow adjustment
// — the Equation 10 fixpoint computes, per node, the reduction factor h
// by which its incoming flows are scaled to discount authority that
// leaks out of the subgraph.
func (e *Engine) Explain(res *RankResult, target graph.NodeID, opts ExplainOptions) (*Subgraph, error) {
	return e.explainAt(context.Background(), e.state.Load(), res, target, opts)
}

// ExplainCtx is Explain under a cancellable context: the construction
// stage checks ctx at its phase boundaries (after each BFS and after
// arc collection) and the Equation 10 fixpoint polls once per
// iteration, so a cancelled or expired request abandons the build
// within one phase/iteration and returns ctx.Err() instead of a
// subgraph. A nil or background context behaves exactly like Explain.
func (e *Engine) ExplainCtx(ctx context.Context, res *RankResult, target graph.NodeID, opts ExplainOptions) (*Subgraph, error) {
	return e.explainAt(ctx, e.state.Load(), res, target, opts)
}

// explainAt is Explain against one pinned engine state, so a Pinned
// view's explain stage cannot observe rates published — or a corpus
// swapped in — after the view was taken. The engine's own Explain
// simply pins the current state at entry.
func (e *Engine) explainAt(ctx context.Context, st *engineState, res *RankResult, target graph.NodeID, opts ExplainOptions) (*Subgraph, error) {
	return e.explainCorpusAt(ctx, st, st.gen.corpus, res, target, opts)
}

// explainCorpusAt is explainAt against an explicit corpus view of the
// pinned state: the generation's authority corpus on the standard path,
// its direction-reversed hub view when explaining a hub-mode ranking
// (mode.go). res must have been solved on the SAME view — the flows of
// Equation 5 read res.Scores through this corpus's arcs.
func (e *Engine) explainCorpusAt(ctx context.Context, st *engineState, c *Corpus, res *RankResult, target graph.NodeID, opts ExplainOptions) (*Subgraph, error) {
	snap := st.snap
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := c.g
	if int(target) < 0 || int(target) >= g.NumNodes() {
		return nil, fmt.Errorf("core: explain target %d out of range", target)
	}
	opts = opts.withDefaults()
	alpha := snap.alpha
	buildStart := time.Now()

	// Stage (i)a: backward breadth-first search from the target over
	// arcs with non-zero transfer rates, bounded by the radius. dist
	// holds each node's arc distance to the target (D(v_k)).
	dist := map[graph.NodeID]int{target: 0}
	queue := []graph.NodeID{target}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		if opts.Radius > 0 && dv >= opts.Radius {
			continue
		}
		for _, a := range g.InArcs(v) {
			if alpha[a.Type] == 0 {
				continue
			}
			if _, seen := dist[a.To]; !seen {
				dist[a.To] = dv + 1
				queue = append(queue, a.To)
			}
		}
	}

	// Phase boundary: the backward BFS can touch a Radius-bounded
	// neighborhood of the whole graph; bail before starting the forward
	// pass if the request died meanwhile.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage (i)b: forward breadth-first search from the base-set nodes
	// that survived the backward stage, restricted to backward-reached
	// nodes. A node is kept iff it lies on a directed path from S(Q) to
	// the target (within the radius). The target itself is always kept
	// so an explanation exists even when no authority reaches it.
	inG := make(map[graph.NodeID]bool, len(dist))
	var frontier []graph.NodeID
	for _, sd := range res.Base {
		v := graph.NodeID(sd.Doc)
		if _, ok := dist[v]; ok && !inG[v] {
			inG[v] = true
			frontier = append(frontier, v)
		}
	}
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		for _, a := range g.OutArcs(v) {
			if alpha[a.Type] == 0 {
				continue
			}
			if _, back := dist[a.To]; !back {
				continue
			}
			if !inG[a.To] {
				inG[a.To] = true
				frontier = append(frontier, a.To)
			}
		}
	}
	inG[target] = true

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	sg := &Subgraph{
		Target:  target,
		Query:   res.Query,
		H:       make(map[graph.NodeID]float64, len(inG)),
		Dist:    make(map[graph.NodeID]int, len(inG)),
		damping: c.nopts.Damping,
		inFlow:  make(map[graph.NodeID]float64, len(inG)),
		outFlow: make(map[graph.NodeID]float64, len(inG)),
	}
	for v := range inG {
		sg.Nodes = append(sg.Nodes, v)
		sg.Dist[v] = dist[v]
	}
	sort.Slice(sg.Nodes, func(i, j int) bool { return sg.Nodes[i] < sg.Nodes[j] })

	// Collect subgraph arcs with their original flows (Equation 5).
	d := sg.damping
	for _, u := range sg.Nodes {
		for _, a := range g.OutArcs(u) {
			w := alpha[a.Type]
			if w == 0 || !inG[a.To] {
				continue
			}
			rate := w * float64(a.InvDeg)
			sg.Arcs = append(sg.Arcs, FlowArc{
				From:  u,
				To:    a.To,
				Type:  a.Type,
				Rate:  rate,
				Flow0: d * rate * res.Scores[u],
			})
		}
	}

	sg.BuildDuration = time.Since(buildStart)

	// Stage (ii): the Equation 10 fixpoint. h(target) is pinned to 1;
	// every other node's factor is the rate-weighted sum of its
	// successors' factors inside the subgraph, discounting authority
	// that leaks outside. Like the ranking kernel, the fixpoint polls
	// ctx once per iteration, so a dead request abandons the adjustment
	// within one sweep.
	adjustStart := time.Now()
	if err := sg.runAdjustment(ctx, opts); err != nil {
		return nil, err
	}

	// Final flows (Equation 7) and per-node flow sums (Equation 6).
	for i := range sg.Arcs {
		a := &sg.Arcs[i]
		a.Flow = sg.H[a.To] * a.Flow0
		sg.outFlow[a.From] += a.Flow
		sg.inFlow[a.To] += a.Flow
	}
	sg.AdjustDuration = time.Since(adjustStart)
	sg.inFlow[target] += 0 // ensure the target has an entry even with no arcs
	return sg, nil
}

// runAdjustment iterates Equation 10 to convergence:
//
//	h(v_k) = sum over (v_k -> v_j) in G of h(v_j) · a(v_k -> v_j)
//
// with h(target) = 1 fixed. Per Observation 2 the original ObjectRank2
// scores are not needed. The iteration converges by Theorem 1 (the
// computation mirrors PageRank with in/out edges swapped and no damping
// factor, on a graph where every node reaches the target). ctx is
// polled once per iteration, mirroring the ranking kernel's per-sweep
// cancellation contract; on cancellation the context error is returned
// and the subgraph must be discarded.
func (sg *Subgraph) runAdjustment(ctx context.Context, opts ExplainOptions) error {
	// Group arcs by source for the per-node sums. Only arc rates are
	// needed — per Observation 2, the original ObjectRank2 scores play
	// no role in the reduction factors.
	type succ struct {
		to   graph.NodeID
		rate float64
	}
	succs := make(map[graph.NodeID][]succ, len(sg.Nodes))
	for _, a := range sg.Arcs {
		succs[a.From] = append(succs[a.From], succ{to: a.To, rate: a.Rate})
	}

	h := sg.H
	for _, v := range sg.Nodes {
		h[v] = 1
	}
	for it := 0; it < opts.MaxIters; it++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		sg.Iterations = it + 1
		maxDiff := 0.0
		for _, v := range sg.Nodes {
			if v == sg.Target {
				continue
			}
			sum := 0.0
			for _, s := range succs[v] {
				sum += h[s.to] * s.rate
			}
			if diff := math.Abs(sum - h[v]); diff > maxDiff {
				maxDiff = diff
			}
			h[v] = sum
		}
		if maxDiff < opts.Threshold {
			sg.Converged = true
			break
		}
	}
	return nil
}
