package core

// personal.go holds the two engine primitives of the personalization
// tier (internal/profile): derived custom-rates views and solves from a
// caller-supplied jump distribution. Both operate strictly within one
// pinned (generation, ratesVersion) state, so a personalized execution
// can never mix corpus generations any more than a plain pinned one.

import (
	"context"
	"fmt"
	"time"

	"authorityflow/internal/graph"
	"authorityflow/internal/rank"
)

// WithRates returns a derived pinned view that ranks, explains and
// reformulates under the given rates (cloned) instead of the snapshot's
// published ones, while keeping the pinned CORPUS generation — the
// primitive behind per-profile serving, where a caller's effective
// rates are the published vector plus a private delta. The rates are
// validated against the pinned generation's schema.
//
// The derived view is read-only personalization state, not a
// publication: it reports the SAME version token as its parent pin, so
// a reformulation computed on the derived view can still be published
// globally with TrySetRates(rates, pin.Version()) under the usual
// optimistic-concurrency contract, or kept private as a profile delta.
// The generation's global PageRank warm-start cache is shared with the
// parent (warm starts do not affect the fixpoint a solve converges to).
func (p *Pinned) WithRates(r *graph.Rates) (*Pinned, error) {
	if err := validateRates(p.st.gen.corpus.g, r); err != nil {
		return nil, err
	}
	clone := r.Clone()
	return &Pinned{
		e: p.e,
		st: &engineState{
			gen:  p.st.gen,
			snap: &ratesSnapshot{rates: clone, alpha: clone.Vector(), version: p.st.snap.version},
		},
	}, nil
}

// RankJumpCtx executes the authority-flow fixpoint r = d·A·r + (1−d)·s
// under the pinned state for a caller-supplied jump distribution s,
// bypassing the IR base-set stage entirely. This is the reference
// evaluation path of the personalization tier: a profile's personalized
// answer is a linear combination of basis fixpoints, and this method
// solves the SAME personalized jump directly so the combination can be
// checked against a from-scratch power iteration (fixpoint linearity
// makes the two agree up to convergence tolerance).
//
// jump must have one entry per node of the pinned graph and should be a
// probability vector (non-negative, summing to 1); it is copied, never
// retained. init, if non-nil, seeds the iteration (§6.2 warm start); a
// wrong-length init is dropped, as in every other rank path. An
// all-zero jump short-circuits to the all-zero fixpoint. Cancellation
// follows the RankCtx contract: partial vectors are recycled and never
// published.
func (p *Pinned) RankJumpCtx(ctx context.Context, jump []float64, init []float64) (*RankResult, error) {
	return p.e.rankJumpAt(ctx, p.st, jump, init)
}

// rankJumpAt mirrors rankAt with the base-set stage replaced by a
// caller-supplied jump vector. The kernel invocation is identical, so
// solve-hook accounting and pooling behave exactly like a single query
// solve.
func (e *Engine) rankJumpAt(ctx context.Context, st *engineState, jump []float64, init []float64) (*RankResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c, snap := st.gen.corpus, st.snap
	n := c.g.NumNodes()
	if len(jump) != n {
		return nil, fmt.Errorf("core: jump vector has %d entries, graph has %d nodes", len(jump), n)
	}
	if init != nil && len(init) != n {
		init = nil
	}
	j := c.pool.GetZeroed(n)
	nonzero := 0
	for i, v := range jump {
		if v != 0 {
			j[i] = v
			nonzero++
		}
	}
	if nonzero == 0 {
		return &RankResult{Scores: j, Converged: true, RatesVersion: snap.version, Generation: st.gen.num}, nil
	}
	opts := c.opts
	opts.Init = init
	opts.Ctx = ctx
	t0 := time.Now()
	res := rank.Iterate(c.g, snap.alpha, j, opts, c.workers, c.pool)
	solveDur := time.Since(t0)
	c.pool.Put(j)
	if res.Err != nil {
		res.ReleaseTo(c.pool)
		return nil, res.Err
	}
	e.notifySolve(SolveStats{
		Iterations:  res.Iterations,
		Converged:   res.Converged,
		WarmStarted: init != nil,
		BaseSet:     nonzero,
		SolveDur:    solveDur,
		Columns:     1,
	})
	return &RankResult{
		Scores:       res.Scores,
		Iterations:   res.Iterations,
		Converged:    res.Converged,
		RatesVersion: snap.version,
		Generation:   st.gen.num,
		SolveDur:     solveDur,
	}, nil
}
