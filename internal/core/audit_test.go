package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"authorityflow/internal/ir"
)

// auditTarget picks the fixture node whose explaining subgraph is
// non-trivial for the query: the top-ranked olap paper v7.
func auditFixture(t *testing.T) (*fixture, *Pinned, *RankResult) {
	t.Helper()
	f := newFixture(t)
	pin := f.newEngine(t).Pin()
	res, err := pin.RankCtx(context.Background(), ir.ParseQuery("olap"))
	if err != nil {
		t.Fatal(err)
	}
	return f, pin, res
}

// TestAuditDeterministic: two audits of the same target under the same
// pinned (generation, ratesVersion) must be structurally identical —
// the in-memory half of the HTTP layer's byte-identity promise.
func TestAuditDeterministic(t *testing.T) {
	f, pin, res := auditFixture(t)
	opts := AuditOptions{Budget: 8}
	a1, err := pin.AuditCtx(context.Background(), ModeAuthority, res, f.ids["v7"], opts)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := pin.AuditCtx(context.Background(), ModeAuthority, res, f.ids["v7"], opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("two audits under one pin differ:\n%+v\nvs\n%+v", a1, a2)
	}
	if a1.Generation != pin.Generation() || a1.RatesVersion != pin.Version() {
		t.Error("audit not stamped with the pinned state")
	}
}

// TestAuditSensitivityIsFlowOverRate pins the derivative: each arc's
// sensitivity is exactly Flow/Rate, arcs arrive sensitivity-descending,
// and per-node sensitivity sums the node's out-arcs.
func TestAuditSensitivityIsFlowOverRate(t *testing.T) {
	f, pin, res := auditFixture(t)
	a, err := pin.AuditCtx(context.Background(), ModeAuthority, res, f.ids["v7"], AuditOptions{Budget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Arcs) == 0 || len(a.Nodes) == 0 {
		t.Fatalf("audit of v7 is empty: %d arcs, %d nodes", len(a.Arcs), len(a.Nodes))
	}
	if a.TotalArcs != len(a.Arcs) || a.TotalNodes != len(a.Nodes) {
		t.Errorf("totals (%d, %d) disagree with untruncated lists (%d, %d)",
			a.TotalArcs, a.TotalNodes, len(a.Arcs), len(a.Nodes))
	}
	byNode := map[int]float64{}
	for i, arc := range a.Arcs {
		if arc.Rate <= 0 {
			t.Fatalf("arc %d has non-positive rate %v", i, arc.Rate)
		}
		if math.Float64bits(arc.Sensitivity) != math.Float64bits(arc.Flow/arc.Rate) {
			t.Fatalf("arc %d sensitivity %v != Flow/Rate %v", i, arc.Sensitivity, arc.Flow/arc.Rate)
		}
		if i > 0 && a.Arcs[i-1].Sensitivity < arc.Sensitivity {
			t.Fatalf("arcs not sensitivity-descending at %d", i)
		}
		byNode[int(arc.From)] += arc.Sensitivity
	}
	for i, n := range a.Nodes {
		// Sums accumulate in the same deterministic arc order as auditOf,
		// so they must match bit-for-bit.
		if math.Float64bits(byNode[int(n.Node)]) != math.Float64bits(n.Sensitivity) {
			t.Errorf("node %d sensitivity %v != sum of its arcs %v", n.Node, n.Sensitivity, byNode[int(n.Node)])
		}
		if i > 0 && a.Nodes[i-1].Sensitivity < n.Sensitivity {
			t.Fatalf("nodes not sensitivity-descending at %d", i)
		}
	}
	if a.Score <= 0 {
		t.Errorf("explained score %v, want > 0", a.Score)
	}
}

// TestAuditBudgetTruncates: a budget smaller than the subgraph clips
// both lists to exactly the budget and keeps the sensitivity-top prefix
// of the unclipped ranking; totals still report the full subgraph.
func TestAuditBudgetTruncates(t *testing.T) {
	f, pin, res := auditFixture(t)
	full, err := pin.AuditCtx(context.Background(), ModeAuthority, res, f.ids["v7"], AuditOptions{Budget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalArcs < 3 {
		t.Fatalf("fixture subgraph too small (%d arcs) for a truncation test", full.TotalArcs)
	}
	budget := 2
	clipped, err := pin.AuditCtx(context.Background(), ModeAuthority, res, f.ids["v7"], AuditOptions{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if len(clipped.Arcs) != budget {
		t.Fatalf("budget %d returned %d arcs", budget, len(clipped.Arcs))
	}
	if clipped.TotalArcs != full.TotalArcs || clipped.TotalNodes != full.TotalNodes {
		t.Error("truncation must not change the reported subgraph totals")
	}
	if !reflect.DeepEqual(clipped.Arcs, full.Arcs[:budget]) {
		t.Error("clipped arcs are not the top-budget prefix of the full ranking")
	}

	// Zero budget takes the default.
	def, err := pin.AuditCtx(context.Background(), ModeAuthority, res, f.ids["v7"], AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if def.Budget != DefaultAuditBudget {
		t.Errorf("zero budget resolved to %d, want DefaultAuditBudget", def.Budget)
	}
}

// TestAuditRejectsCombinedAndHonorsDeadline.
func TestAuditRejectsCombinedAndHonorsDeadline(t *testing.T) {
	f, pin, res := auditFixture(t)
	if _, err := pin.AuditCtx(context.Background(), ModeCombined, res, f.ids["v7"], AuditOptions{}); err == nil {
		t.Error("combined-mode audit must fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pin.AuditCtx(ctx, ModeAuthority, res, f.ids["v7"], AuditOptions{}); err == nil {
		t.Error("cancelled-context audit must fail")
	}
}

// TestAuditHubMode: audits of hub rankings run over the reversed view
// and are deterministic too.
func TestAuditHubMode(t *testing.T) {
	f := newFixture(t)
	pin := f.newEngine(t).Pin()
	res, err := pin.RankHubCtx(context.Background(), ir.ParseQuery("olap"))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := pin.AuditCtx(context.Background(), ModeHub, res, f.ids["v4"], AuditOptions{Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := pin.AuditCtx(context.Background(), ModeHub, res, f.ids["v4"], AuditOptions{Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Error("hub-mode audit is not deterministic")
	}
	if a1.Score <= 0 {
		t.Errorf("hub audit of v4 explained no flow (score %v)", a1.Score)
	}
}
