package core

import (
	"testing"

	"authorityflow/internal/graph"
	"authorityflow/internal/rank"
)

// fixture bundles the paper's running example: the Figure 1/5/6
// seven-node DBLP subgraph with the Figure 3 authority transfer rates.
type fixture struct {
	g     *graph.Graph
	rates *graph.Rates
	types map[string]graph.TypeID
	edges map[string]graph.EdgeTypeID
	ids   map[string]graph.NodeID
}

// newDBLPSchema builds the Figure 2 schema: Paper, Conference, Year,
// Author with cites, hasInstance, contains and by edges.
func newDBLPSchema() (*graph.Schema, map[string]graph.TypeID, map[string]graph.EdgeTypeID) {
	s := graph.NewSchema()
	types := map[string]graph.TypeID{
		"Paper":      s.AddNodeType("Paper"),
		"Conference": s.AddNodeType("Conference"),
		"Year":       s.AddNodeType("Year"),
		"Author":     s.AddNodeType("Author"),
	}
	edges := map[string]graph.EdgeTypeID{
		"cites":       s.MustAddEdgeType("cites", types["Paper"], types["Paper"]),
		"hasInstance": s.MustAddEdgeType("hasInstance", types["Conference"], types["Year"]),
		"contains":    s.MustAddEdgeType("contains", types["Year"], types["Paper"]),
		"by":          s.MustAddEdgeType("by", types["Paper"], types["Author"]),
	}
	return s, types, edges
}

// figure3Rates assigns the Figure 3 authority transfer rates:
// cites 0.7/0.0, by 0.2/0.2, hasInstance 0.3/0.3, contains 0.3/0.1.
func figure3Rates(s *graph.Schema, edges map[string]graph.EdgeTypeID) *graph.Rates {
	r := graph.NewRates(s)
	r.Set(edges["cites"], graph.Forward, 0.7)
	r.Set(edges["cites"], graph.Backward, 0.0)
	r.Set(edges["by"], graph.Forward, 0.2)
	r.Set(edges["by"], graph.Backward, 0.2)
	r.Set(edges["hasInstance"], graph.Forward, 0.3)
	r.Set(edges["hasInstance"], graph.Backward, 0.3)
	r.Set(edges["contains"], graph.Forward, 0.3)
	r.Set(edges["contains"], graph.Backward, 0.1)
	return r
}

// newFixture builds the Figure 1 data graph. Node names follow the
// paper's v1..v7 numbering of Figure 6:
//
//	v1 "Index Selection for OLAP"         (base set for Q=[olap])
//	v2 Conference ICDE
//	v3 Year ICDE 1997
//	v4 "Range Queries in OLAP Data Cubes" (base set for Q=[olap])
//	v5 "Modeling Multidimensional Databases"
//	v6 Author R. Agrawal
//	v7 "Data Cube" (contains no query keyword, yet top-ranked)
func newFixture(t testing.TB) *fixture {
	t.Helper()
	s, types, edges := newDBLPSchema()
	b := graph.NewBuilder(s)
	ids := map[string]graph.NodeID{}
	ids["v1"] = b.AddNode(types["Paper"],
		graph.Attr{Name: "Title", Value: "Index Selection for OLAP."},
		graph.Attr{Name: "Authors", Value: "H. Gupta, V. Harinarayan, A. Rajaraman, J. Ullman"},
		graph.Attr{Name: "Year", Value: "ICDE 1997"})
	ids["v2"] = b.AddNode(types["Conference"],
		graph.Attr{Name: "Name", Value: "ICDE"})
	ids["v3"] = b.AddNode(types["Year"],
		graph.Attr{Name: "Name", Value: "ICDE"},
		graph.Attr{Name: "Year", Value: "1997"},
		graph.Attr{Name: "Location", Value: "Birmingham"})
	ids["v4"] = b.AddNode(types["Paper"],
		graph.Attr{Name: "Title", Value: "Range Queries in OLAP Data Cubes."},
		graph.Attr{Name: "Authors", Value: "C. Ho, R. Agrawal, N. Megiddo, R. Srikant"},
		graph.Attr{Name: "Year", Value: "SIGMOD 1997"})
	ids["v5"] = b.AddNode(types["Paper"],
		graph.Attr{Name: "Title", Value: "Modeling Multidimensional Databases."},
		graph.Attr{Name: "Authors", Value: "R. Agrawal, A. Gupta, S. Sarawagi"},
		graph.Attr{Name: "Year", Value: "ICDE 1997"})
	ids["v6"] = b.AddNode(types["Author"],
		graph.Attr{Name: "Name", Value: "R. Agrawal"})
	ids["v7"] = b.AddNode(types["Paper"],
		graph.Attr{Name: "Title", Value: "Data Cube: A Relational Aggregation Operator Generalizing Group-By, Cross-Tab, and Sub-Total."},
		graph.Attr{Name: "Authors", Value: "J. Gray, A. Bosworth, A. Layman, H. Pirahesh"},
		graph.Attr{Name: "Year", Value: "ICDE 1996"})

	b.AddEdge(ids["v2"], ids["v3"], edges["hasInstance"])
	b.AddEdge(ids["v3"], ids["v1"], edges["contains"])
	b.AddEdge(ids["v3"], ids["v5"], edges["contains"])
	b.AddEdge(ids["v1"], ids["v7"], edges["cites"])
	b.AddEdge(ids["v4"], ids["v7"], edges["cites"])
	b.AddEdge(ids["v4"], ids["v5"], edges["cites"])
	b.AddEdge(ids["v5"], ids["v7"], edges["cites"])
	b.AddEdge(ids["v4"], ids["v6"], edges["by"])
	b.AddEdge(ids["v5"], ids["v6"], edges["by"])

	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		g:     g,
		rates: figure3Rates(s, edges),
		types: types,
		edges: edges,
		ids:   ids,
	}
}

// newEngine builds an Engine over the fixture with a tight convergence
// threshold so golden-value comparisons are stable.
func (f *fixture) newEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := NewEngine(f.g, f.rates, Config{
		Rank: rank.Options{Damping: 0.85, Threshold: 1e-10, MaxIters: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}
