package core

import (
	"math"
	"testing"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
)

func TestNewEngineValidation(t *testing.T) {
	f := newFixture(t)
	// Invalid rates (outgoing sum > 1) are rejected.
	bad := graph.UniformRates(f.g.Schema(), 0.4)
	if _, err := NewEngine(f.g, bad, Config{}); err == nil {
		t.Error("NewEngine should reject rates with outgoing sums > 1")
	}
	// Rates over a different schema are rejected.
	other, _, otherEdges := newDBLPSchema()
	or := figure3Rates(other, otherEdges)
	if _, err := NewEngine(f.g, or, Config{}); err == nil {
		t.Error("NewEngine should reject rates over a foreign schema")
	}
	e := f.newEngine(t)
	if err := e.SetRates(or); err == nil {
		t.Error("SetRates should reject rates over a foreign schema")
	}
	if err := e.SetRates(bad); err == nil {
		t.Error("SetRates should reject invalid rates")
	}
}

func TestBaseSetWeightedAndNormalized(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	q := ir.NewQuery("olap")
	base := e.BaseSet(q)
	// Exactly v1 and v4 contain "olap".
	if len(base) != 2 {
		t.Fatalf("base set = %v", base)
	}
	gotDocs := map[graph.NodeID]float64{}
	sum := 0.0
	for _, sd := range base {
		gotDocs[graph.NodeID(sd.Doc)] = sd.Score
		sum += sd.Score
		if sd.Score <= 0 {
			t.Errorf("doc %d has non-positive base weight", sd.Doc)
		}
	}
	if _, ok := gotDocs[f.ids["v1"]]; !ok {
		t.Error("v1 missing from base set")
	}
	if _, ok := gotDocs[f.ids["v4"]]; !ok {
		t.Error("v4 missing from base set")
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("base weights sum to %v, want 1", sum)
	}
	// Both titles contain "olap" once in near-equal-length documents, so
	// the weights are close to 0.5 each.
	for v, w := range gotDocs {
		if math.Abs(w-0.5) > 0.05 {
			t.Errorf("node %d base weight = %v, want ~0.5", v, w)
		}
	}
}

// TestFigure6Scores reproduces the paper's worked example: for
// Q=["OLAP"], d=0.85 and the Figure 3 rates, the converged ObjectRank2
// vector over v1..v7 is approximately
// [0.076, 0.002, 0.009, 0.076, 0.017, 0.025, 0.083] — in particular the
// "Data Cube" paper (v7) is ranked FIRST even though it does not
// contain the keyword.
func TestFigure6Scores(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("olap"))
	if !res.Converged {
		t.Fatal("did not converge")
	}
	want := map[string]float64{
		"v1": 0.076, "v2": 0.002, "v3": 0.009, "v4": 0.076,
		"v5": 0.025, "v6": 0.017, "v7": 0.083,
	}
	for name, ws := range want {
		got := res.Scores[f.ids[name]]
		if math.Abs(got-ws) > 0.01 {
			t.Errorf("score(%s) = %.4f, want ~%.3f", name, got, ws)
		}
	}
	top := res.TopK(1)
	if top[0].Node != f.ids["v7"] {
		t.Errorf("top result = %v, want v7 (Data Cube)", top[0].Node)
	}
	if res.InBase(f.ids["v7"]) {
		t.Error("v7 must not be in the base set")
	}
	if !res.InBase(f.ids["v1"]) {
		t.Error("v1 must be in the base set")
	}
}

func TestRankWarmMatchesColdFixpoint(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	q := ir.NewQuery("olap")
	cold := e.RankCold(q)
	warmInit := e.Rank(ir.NewQuery("cubes"))
	warm := e.RankFrom(q, warmInit.Scores)
	for i := range cold.Scores {
		if math.Abs(cold.Scores[i]-warm.Scores[i]) > 1e-6 {
			t.Fatalf("warm/cold mismatch at %d: %v vs %v", i, cold.Scores[i], warm.Scores[i])
		}
	}
}

func TestEmptyBaseSet(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("zebra"))
	for i, s := range res.Scores {
		if s != 0 {
			t.Errorf("score[%d] = %v with empty base set", i, s)
		}
	}
	if len(res.Base) != 0 {
		t.Errorf("base = %v", res.Base)
	}
}

func TestTopKOfTypeFiltersPapers(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("olap"))
	top := res.TopKOfType(f.g, f.types["Paper"], 10)
	if len(top) != 4 {
		t.Fatalf("paper results = %v", top)
	}
	for _, r := range top {
		if f.g.Label(r.Node) != f.types["Paper"] {
			t.Errorf("non-paper %v in typed top-k", r.Node)
		}
	}
}

func TestGlobalRankCachedAndPositive(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	g1 := e.GlobalRank()
	g2 := e.GlobalRank()
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatal("GlobalRank should be deterministic/cached")
		}
		if g1[i] <= 0 {
			t.Errorf("global rank of node %d = %v, want > 0", i, g1[i])
		}
	}
	// Returned slice is a copy.
	g1[0] = 42
	if e.GlobalRank()[0] == 42 {
		t.Error("GlobalRank leaked internal storage")
	}
}

func TestObjectRankBaselineMultiKeyword(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.ObjectRankBaseline(ir.NewQuery("olap", "databases"))
	// "olap" base = {v1,v4}; "databases" base = {v5}. Nodes reachable
	// from both (v5, v6, v7, and the year/conf loop) score > 0.
	if res.Scores[f.ids["v7"]] <= 0 {
		t.Error("v7 should be reachable from both keywords")
	}
	if res.Iterations <= 0 {
		t.Error("baseline iterations should accumulate")
	}
	// The weighted single-keyword run differs from the baseline: the
	// baseline treats base-set entries uniformly.
	or2 := e.Rank(ir.NewQuery("olap"))
	or1 := e.ObjectRankBaseline(ir.NewQuery("olap"))
	if or1.Scores[f.ids["v7"]] <= 0 || or2.Scores[f.ids["v7"]] <= 0 {
		t.Error("both semantics should rank v7 positively")
	}
}

func TestSetRatesChangesRanking(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	q := ir.NewQuery("olap")
	before := e.Rank(q).Scores[f.ids["v7"]]
	// Kill citation authority; v7 should collapse.
	r := e.Rates()
	r.Set(f.edges["cites"], graph.Forward, 0.0)
	if err := e.SetRates(r); err != nil {
		t.Fatal(err)
	}
	after := e.Rank(q).Scores[f.ids["v7"]]
	if after >= before {
		t.Errorf("v7 score did not drop after zeroing cites: %v -> %v", before, after)
	}
}

func TestEngineAccessors(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	if e.Graph() != f.g {
		t.Error("Graph accessor broken")
	}
	if e.Index() == nil || e.Index().NumDocs() != f.g.NumNodes() {
		t.Error("Index not built over all nodes")
	}
	// Rates accessor returns a clone.
	r := e.Rates()
	r.Set(f.edges["cites"], graph.Forward, 0.0)
	if e.Rates().Rate(graph.TransferType(f.edges["cites"], graph.Forward)) != 0.7 {
		t.Error("Rates leaked internal storage")
	}
	if e.Options().Damping != 0.85 {
		t.Error("Options lost")
	}
}

func TestParallelEngineMatchesSerial(t *testing.T) {
	f := newFixture(t)
	serial := f.newEngine(t)
	par, err := NewEngine(f.g, f.rates, Config{
		Rank:    serial.Options(),
		Workers: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := ir.NewQuery("olap")
	rs, rp := serial.Rank(q), par.Rank(q)
	for i := range rs.Scores {
		if math.Abs(rs.Scores[i]-rp.Scores[i]) > 1e-9 {
			t.Fatalf("parallel engine diverges at node %d: %v vs %v", i, rs.Scores[i], rp.Scores[i])
		}
	}
	// Explain and reformulate work identically on the parallel engine.
	sg, err := par.Explain(rp, f.ids["v7"], ExplainOptions{Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !sg.Converged || sg.ExplainedScore() <= 0 {
		t.Error("explain on parallel engine broken")
	}
}

func TestHITSBaseline(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.HITSBaseline(ir.NewQuery("olap"), 2)
	if !res.Converged {
		t.Fatal("HITS did not converge")
	}
	// The Data Cube paper is the citation sink of the focused subgraph
	// and must be its top authority, matching the ObjectRank2 outcome
	// on this example.
	top := res.TopK(1)
	if top[0].Node != f.ids["v7"] {
		t.Errorf("HITS top authority = %v, want v7", top[0])
	}
	// An empty base set yields all-zero scores.
	empty := e.HITSBaseline(ir.NewQuery("zebra"), 2)
	for i, s := range empty.Scores {
		if s != 0 {
			t.Errorf("score[%d] = %v for empty base", i, s)
		}
	}
}
