package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// newEightNodeCorpus builds a second-generation corpus: the Figure 1
// graph plus an extra OLAP paper (v8), so the two generations have
// different node counts and a result vector sized for one generation
// can never be mistaken for the other's.
func newEightNodeCorpus(t testing.TB) (*Corpus, *graph.Rates) {
	t.Helper()
	s, types, edges := newDBLPSchema()
	b := graph.NewBuilder(s)
	var ids [9]graph.NodeID
	ids[1] = b.AddNode(types["Paper"], graph.Attr{Name: "Title", Value: "Index Selection for OLAP."})
	ids[2] = b.AddNode(types["Conference"], graph.Attr{Name: "Name", Value: "ICDE"})
	ids[3] = b.AddNode(types["Year"], graph.Attr{Name: "Name", Value: "ICDE"}, graph.Attr{Name: "Year", Value: "1997"})
	ids[4] = b.AddNode(types["Paper"], graph.Attr{Name: "Title", Value: "Range Queries in OLAP Data Cubes."})
	ids[5] = b.AddNode(types["Paper"], graph.Attr{Name: "Title", Value: "Modeling Multidimensional Databases."})
	ids[6] = b.AddNode(types["Author"], graph.Attr{Name: "Name", Value: "R. Agrawal"})
	ids[7] = b.AddNode(types["Paper"], graph.Attr{Name: "Title", Value: "Data Cube: A Relational Aggregation Operator."})
	ids[8] = b.AddNode(types["Paper"], graph.Attr{Name: "Title", Value: "An OLAP Survey, Second Edition."})
	b.AddEdge(ids[2], ids[3], edges["hasInstance"])
	b.AddEdge(ids[3], ids[1], edges["contains"])
	b.AddEdge(ids[3], ids[5], edges["contains"])
	b.AddEdge(ids[1], ids[7], edges["cites"])
	b.AddEdge(ids[4], ids[7], edges["cites"])
	b.AddEdge(ids[4], ids[5], edges["cites"])
	b.AddEdge(ids[5], ids[7], edges["cites"])
	b.AddEdge(ids[4], ids[6], edges["by"])
	b.AddEdge(ids[5], ids[6], edges["by"])
	b.AddEdge(ids[8], ids[1], edges["cites"])
	b.AddEdge(ids[8], ids[4], edges["cites"])
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCorpus(g, Config{Rank: rank.Options{Damping: 0.85, Threshold: 1e-10, MaxIters: 500}})
	return c, figure3Rates(s, edges)
}

func TestSwapCorpusCASAndPinnedIsolation(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	c2, r2 := newEightNodeCorpus(t)
	q := ir.NewQuery("olap")

	gen0, ver0 := e.Generation(), e.RatesVersion()
	pin := e.Pin()

	// Wrong generation token: the CAS must refuse and report the winner.
	if gen, err := e.SwapCorpus(c2, r2, gen0+5); !errors.Is(err, ErrGenerationConflict) {
		t.Fatalf("stale-token swap: gen=%d err=%v, want ErrGenerationConflict", gen, err)
	} else if gen != gen0 {
		t.Fatalf("conflict reported generation %d, want current %d", gen, gen0)
	}
	if e.Generation() != gen0 {
		t.Fatalf("failed swap moved the generation to %d", e.Generation())
	}

	// Rates over a foreign schema must be rejected without publishing.
	if _, err := e.SwapCorpus(c2, f.rates, gen0); err == nil {
		t.Fatal("swap accepted rates defined over a different schema")
	}
	if e.Generation() != gen0 {
		t.Fatalf("rejected swap moved the generation to %d", e.Generation())
	}

	// Correct token: generation and rates version both advance.
	gen1, err := e.SwapCorpus(c2, r2, gen0)
	if err != nil {
		t.Fatal(err)
	}
	if gen1 != gen0+1 {
		t.Fatalf("generation = %d, want %d", gen1, gen0+1)
	}
	if e.RatesVersion() != ver0+1 {
		t.Fatalf("rates version = %d, want %d", e.RatesVersion(), ver0+1)
	}
	if n := e.Graph().NumNodes(); n != 8 {
		t.Fatalf("swapped-in graph has %d nodes, want 8", n)
	}

	// The pre-swap pin still serves the old generation, wholesale.
	if pin.Generation() != gen0 {
		t.Fatalf("pin generation = %d, want %d", pin.Generation(), gen0)
	}
	if n := pin.Corpus().Graph().NumNodes(); n != 7 {
		t.Fatalf("pinned graph has %d nodes, want 7", n)
	}
	res := pin.Rank(q)
	if res.Generation != gen0 || len(res.Scores) != 7 {
		t.Fatalf("pinned rank: generation=%d len=%d, want generation=%d len=7", res.Generation, len(res.Scores), gen0)
	}

	// A fresh pin sees the new generation end to end.
	res2 := e.Pin().Rank(q)
	if res2.Generation != gen1 || len(res2.Scores) != 8 {
		t.Fatalf("post-swap rank: generation=%d len=%d, want generation=%d len=8", res2.Generation, len(res2.Scores), gen1)
	}

	// A reformulation token minted before the swap loses its race:
	// version tokens never repeat across generations. (r2 matches the
	// current schema, so the stale token is what gets rejected.)
	if _, err := e.TrySetRates(r2, pin.Version()); !errors.Is(err, ErrRatesConflict) {
		t.Fatalf("pre-swap version token: err=%v, want ErrRatesConflict", err)
	}
	e.Release(res)
	e.Release(res2)
}

// TestSwapCorpusWarmStartLengthGuard feeds a warm-start vector sized
// for the old generation into the new one: the engine must silently
// fall back to a cold start rather than index out of range.
func TestSwapCorpusWarmStartLengthGuard(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	q := ir.NewQuery("olap")
	stale := e.Rank(q) // 7-wide vector from generation 1

	c2, r2 := newEightNodeCorpus(t)
	if _, err := e.SwapCorpus(c2, r2, e.Generation()); err != nil {
		t.Fatal(err)
	}
	res := e.RankFrom(q, stale.Scores) // would panic without the guard
	if len(res.Scores) != 8 {
		t.Fatalf("len(scores) = %d, want 8", len(res.Scores))
	}
	e.Release(res)
}

// TestSwapCorpusBatchWarmStartGuards is the cross-generation
// regression for the blocked warm-start path: per-query donations
// sized for a previous generation's graph must silently degrade to the
// global warm start (earlier builds fed them to the kernel, which
// panicked the serving goroutine), while a MIS-COUNTED donation slice
// — desynced bookkeeping with no possible pairing — comes back as
// ErrWarmStartMismatch instead of a panic.
func TestSwapCorpusBatchWarmStartGuards(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	ctx := context.Background()
	qs := []*ir.Query{ir.NewQuery("olap"), ir.NewQuery("cube")}

	// Converged vectors from generation 1 (7 nodes each).
	pre, err := e.RankManyCtx(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	stale := [][]float64{pre[0].Scores, pre[1].Scores}

	c2, r2 := newEightNodeCorpus(t)
	if _, err := e.SwapCorpus(c2, r2, e.Generation()); err != nil {
		t.Fatal(err)
	}
	pin := e.Pin()

	// Stale donations: every column degrades, none may panic or index
	// out of range, and results match the undonated batch bit for bit.
	donated, err := pin.RankManyFromCtx(ctx, qs, stale)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := pin.RankManyCtx(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if len(donated[i].Scores) != 8 {
			t.Fatalf("query %d: donated result has %d scores, want 8", i, len(donated[i].Scores))
		}
		for v := range plain[i].Scores {
			if donated[i].Scores[v] != plain[i].Scores[v] {
				t.Fatalf("query %d node %d: stale donation changed the answer", i, v)
			}
		}
	}

	// Mis-counted donations: typed error, not a panic.
	if _, err := pin.RankManyFromCtx(ctx, qs, stale[:1]); !errors.Is(err, ErrWarmStartMismatch) {
		t.Fatalf("mis-counted inits: err=%v, want ErrWarmStartMismatch", err)
	}
	for _, r := range pre {
		e.Release(r)
	}
	for _, r := range donated {
		e.Release(r)
	}
	for _, r := range plain {
		e.Release(r)
	}
}

// TestSwapCorpusHammer is the -race acceptance hammer: concurrent
// queries, corpus swaps and rate publishes with no external locking.
// Every result must be internally consistent with the state its reader
// pinned — the score vector sized for exactly the generation stamped on
// the result, the (generation, version) pair one that was actually
// published.
func TestSwapCorpusHammer(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	cA := e.Corpus()
	rA := f.rates
	cB, rB := newEightNodeCorpus(t)
	q := ir.NewQuery("olap")

	// nodesOf records the node count of every published generation.
	// Only the swapper goroutine publishes, so the map is complete.
	var nodesOf sync.Map
	nodesOf.Store(e.Generation(), e.Graph().NumNodes())

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers: pin, rank, and audit the result against the pin.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pin := e.Pin()
				res, err := pin.RankCtx(ctx, q)
				if err != nil {
					t.Errorf("rank: %v", err)
					return
				}
				if res.Generation != pin.Generation() {
					t.Errorf("result generation %d != pinned %d", res.Generation, pin.Generation())
				}
				if res.RatesVersion != pin.Version() {
					t.Errorf("result version %d != pinned %d", res.RatesVersion, pin.Version())
				}
				want, ok := nodesOf.Load(res.Generation)
				if !ok {
					t.Errorf("result carries unpublished generation %d", res.Generation)
				} else if want.(int) != len(res.Scores) {
					t.Errorf("generation %d result has %d scores, want %d", res.Generation, len(res.Scores), want)
				}
				if n := pin.Corpus().Graph().NumNodes(); n != len(res.Scores) {
					t.Errorf("pinned graph has %d nodes but result has %d scores", n, len(res.Scores))
				}
				e.Release(res)
			}
		}()
	}

	// Swapper: alternate the two corpora through the generation CAS.
	wg.Add(1)
	go func() {
		defer wg.Done()
		useB := true
		for i := 0; i < 200; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c, r := cA, rA
			if useB {
				c, r = cB, rB
			}
			gen, err := e.SwapCorpus(c, r, e.Generation())
			if err == nil {
				nodesOf.Store(gen, c.Graph().NumNodes())
				useB = !useB
			} else if !errors.Is(err, ErrGenerationConflict) {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()

	// Rates writer: optimistic publishes racing the swapper; both
	// conflicts and successes are legal, torn state is not.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			select {
			case <-stop:
				return
			default:
			}
			pin := e.Pin()
			r := pin.Rates()
			// Any error is legal here: a stale version token
			// (ErrRatesConflict) or, when a swap lands between Pin and
			// publish, a schema-validation rejection. Torn state — not
			// rejection — is what -race and the readers check for.
			_, _ = e.TrySetRates(r, pin.Version())
		}
	}()

	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Whatever generation won, the engine still serves.
	res := e.Pin().Rank(q)
	if len(res.Scores) != e.Graph().NumNodes() {
		t.Fatalf("post-hammer rank sized %d for a %d-node graph", len(res.Scores), e.Graph().NumNodes())
	}
	e.Release(res)
}
