package core

import (
	"fmt"
	"sort"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
)

// TypeFlow is one edge type's contribution to an explained score.
type TypeFlow struct {
	Type graph.TransferTypeID
	// Name is the human-readable transfer-type name.
	Name string
	// A and B are the adjusted authority flows arriving at the
	// respective objects over this edge type.
	A float64
	B float64
}

// Comparison answers "why is A ranked above B?" for a query: the score
// gap decomposed into per-edge-type authority arriving directly at each
// object, plus each object's base-set contribution. It is the natural
// comparative extension of the paper's single-object explanations — the
// same explaining subgraphs, read side by side.
type Comparison struct {
	Query  *ir.Query
	A, B   graph.NodeID
	ScoreA float64
	ScoreB float64
	// BaseA / BaseB are the random-jump contributions (1−d)·s(v): the
	// part of each score earned by CONTAINING the keywords rather than
	// receiving authority.
	BaseA float64
	BaseB float64
	// ByType lists the per-type direct inflows, sorted by descending
	// advantage of A (A − B).
	ByType []TypeFlow
	// SubA / SubB are the underlying explaining subgraphs.
	SubA *Subgraph
	SubB *Subgraph
}

// Compare explains the relative ranking of two objects under one
// converged result: it builds both explaining subgraphs and decomposes
// each object's authority intake by edge type.
func (e *Engine) Compare(res *RankResult, a, b graph.NodeID, opts ExplainOptions) (*Comparison, error) {
	sgA, err := e.Explain(res, a, opts)
	if err != nil {
		return nil, fmt.Errorf("core: compare: %w", err)
	}
	sgB, err := e.Explain(res, b, opts)
	if err != nil {
		return nil, fmt.Errorf("core: compare: %w", err)
	}
	cmp := &Comparison{
		Query:  res.Query,
		A:      a,
		B:      b,
		ScoreA: res.Scores[a],
		ScoreB: res.Scores[b],
		SubA:   sgA,
		SubB:   sgB,
	}
	d := e.Corpus().nopts.Damping
	for _, sd := range res.Base {
		if graph.NodeID(sd.Doc) == a {
			cmp.BaseA = (1 - d) * sd.Score
		}
		if graph.NodeID(sd.Doc) == b {
			cmp.BaseB = (1 - d) * sd.Score
		}
	}

	flows := map[graph.TransferTypeID]*TypeFlow{}
	get := func(t graph.TransferTypeID) *TypeFlow {
		if f, ok := flows[t]; ok {
			return f
		}
		f := &TypeFlow{Type: t, Name: e.Corpus().g.Schema().TransferTypeName(t)}
		flows[t] = f
		return f
	}
	for _, arc := range sgA.Arcs {
		if arc.To == a {
			get(arc.Type).A += arc.Flow
		}
	}
	for _, arc := range sgB.Arcs {
		if arc.To == b {
			get(arc.Type).B += arc.Flow
		}
	}
	for _, f := range flows {
		cmp.ByType = append(cmp.ByType, *f)
	}
	sort.Slice(cmp.ByType, func(i, j int) bool {
		di := cmp.ByType[i].A - cmp.ByType[i].B
		dj := cmp.ByType[j].A - cmp.ByType[j].B
		if di != dj {
			return di > dj
		}
		return cmp.ByType[i].Type < cmp.ByType[j].Type
	})
	return cmp, nil
}

// Gap returns ScoreA − ScoreB.
func (c *Comparison) Gap() float64 { return c.ScoreA - c.ScoreB }

// DominantType returns the edge type contributing the largest share of
// A's advantage (zero value if there are no type flows).
func (c *Comparison) DominantType() TypeFlow {
	if len(c.ByType) == 0 {
		return TypeFlow{}
	}
	return c.ByType[0]
}

// String renders a short textual answer to "why is A above B".
func (c *Comparison) String() string {
	s := fmt.Sprintf("score %.4g vs %.4g (gap %.4g); base-set %.4g vs %.4g",
		c.ScoreA, c.ScoreB, c.Gap(), c.BaseA, c.BaseB)
	if len(c.ByType) > 0 {
		t := c.ByType[0]
		s += fmt.Sprintf("; biggest edge-type advantage: %s (%.4g vs %.4g)", t.Name, t.A, t.B)
	}
	return s
}

// TermShare is one query term's contribution to a node's ObjectRank2
// score.
type TermShare struct {
	Term  string
	Score float64
}

// DecomposeByTerm splits a node's ObjectRank2 score into per-query-term
// contributions. Because the fixpoint is linear in the jump
// distribution, the multi-keyword score is exactly the γ-weighted sum
// of single-term scores; this diagnostic runs one fixpoint per term
// (warm-started) and reports each term's share at the node, largest
// first. An empty result means no term reaches the node.
func (e *Engine) DecomposeByTerm(q *ir.Query, v graph.NodeID) ([]TermShare, error) {
	c := e.Corpus()
	if int(v) < 0 || int(v) >= c.g.NumNodes() {
		return nil, fmt.Errorf("core: decompose target %d out of range", v)
	}
	terms := q.Terms()
	weights := q.Weights()
	type part struct {
		term  string
		gamma float64
		score float64
	}
	var parts []part
	total := 0.0
	for i, t := range terms {
		w := weights[i]
		if w <= 0 {
			continue
		}
		single := ir.NewQuery(t)
		mass := 0.0
		for _, sd := range c.ix.BaseSet(single) {
			mass += sd.Score
		}
		if mass == 0 {
			continue
		}
		res := e.Rank(single)
		gamma := qtfSaturation(w) * mass
		parts = append(parts, part{term: t, gamma: gamma, score: res.Scores[v]})
		total += gamma
	}
	if total == 0 {
		return nil, nil
	}
	out := make([]TermShare, 0, len(parts))
	for _, p := range parts {
		out = append(out, TermShare{Term: p.term, Score: p.gamma / total * p.score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Term < out[j].Term
	})
	return out, nil
}

// qtfSaturation mirrors the index's query-side BM25 factor with the
// default k3.
func qtfSaturation(w float64) float64 {
	const k3 = 1000
	return (k3 + 1) * w / (k3 + w)
}
