package core

import (
	"math"
	"testing"
	"testing/quick"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
)

func TestAdjustRatesExample2(t *testing.T) {
	// Reproduces Example 2's structure-based arithmetic: starting from
	// the Figure 3 rates [PP,Pcited,PA,AP,CY,YC,YP,PY] =
	// [0.7,0.0,0.2,0.2,0.3,0.3,0.3,0.1] with normalized flow factors
	// F̂(PA)=1.0 and F̂(PP)=0.393 (others 0) and C_f = 0.5, the
	// reformulated rates are [0.67,0.0,0.24,0.16,0.24,0.24,0.24,0.08]:
	// PA increases and AP decreases, and every no-flow type shrinks by
	// the common global factor.
	s, _, edges := newDBLPSchema()
	old := figure3Rates(s, edges)
	flows := make([]float64, s.NumTransferTypes())
	flows[graph.TransferType(edges["by"], graph.Forward)] = 1.0      // PA
	flows[graph.TransferType(edges["cites"], graph.Forward)] = 0.393 // PP
	newRates := adjustRates(old, flows, 0.5)

	get := func(role string, dir graph.Direction) float64 {
		return newRates.Rate(graph.TransferType(edges[role], dir))
	}
	want := map[string]float64{
		"PP":     0.68, // paper rounds to 0.67
		"Pcited": 0.0,
		"PA":     0.24,
		"AP":     0.16,
		"CY":     0.24,
		"YC":     0.24,
		"YP":     0.24,
		"PY":     0.08,
	}
	got := map[string]float64{
		"PP":     get("cites", graph.Forward),
		"Pcited": get("cites", graph.Backward),
		"PA":     get("by", graph.Forward),
		"AP":     get("by", graph.Backward),
		"CY":     get("hasInstance", graph.Forward),
		"YC":     get("hasInstance", graph.Backward),
		"YP":     get("contains", graph.Forward),
		"PY":     get("contains", graph.Backward),
	}
	for k, w := range want {
		if math.Abs(got[k]-w) > 0.01 {
			t.Errorf("rate %s = %.4f, want ~%.2f", k, got[k], w)
		}
	}
	if err := newRates.Validate(); err != nil {
		t.Errorf("reformulated rates invalid: %v", err)
	}
	// PA grew relative to its old value after accounting for the global
	// rescale; AP shrank.
	if got["PA"] <= got["AP"] {
		t.Errorf("PA (%.3f) should exceed AP (%.3f) after reformulation", got["PA"], got["AP"])
	}
}

func TestAdjustRatesClampsSingleRate(t *testing.T) {
	// A rate boosted above 1 triggers the step-3 max normalization.
	s := graph.NewSchema()
	paper := s.AddNodeType("Paper")
	cites := s.MustAddEdgeType("cites", paper, paper)
	old := graph.NewRates(s)
	old.Set(cites, graph.Forward, 0.9)
	flows := make([]float64, s.NumTransferTypes())
	flows[graph.TransferType(cites, graph.Forward)] = 5
	got := adjustRates(old, flows, 1.0) // boost: 0.9*2 = 1.8 -> clamp
	if r := got.Rate(graph.TransferType(cites, graph.Forward)); r > 1+1e-12 {
		t.Errorf("rate = %v, want <= 1", r)
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}

func TestAdjustRatesNoFlowsIsNoOpUpToValidation(t *testing.T) {
	s, _, edges := newDBLPSchema()
	old := figure3Rates(s, edges)
	flows := make([]float64, s.NumTransferTypes())
	got := adjustRates(old, flows, 0.5)
	for i, a := range old.Vector() {
		if math.Abs(got.Vector()[i]-a) > 1e-12 {
			t.Errorf("rate %d changed with zero flows: %v -> %v", i, a, got.Vector()[i])
		}
	}
}

func TestReformulateRequiresFeedback(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	if _, err := e.Reformulate(ir.NewQuery("olap"), nil, StructureOnly()); err == nil {
		t.Error("Reformulate should require feedback objects")
	}
}

// explainFeedback runs the standard feedback flow: rank, pick target,
// explain.
func explainFeedback(t *testing.T, e *Engine, q *ir.Query, target graph.NodeID) (*RankResult, *Subgraph) {
	t.Helper()
	res := e.Rank(q)
	sg, err := e.Explain(res, target, ExplainOptions{Radius: 3, Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	return res, sg
}

// TestExample2ContentExpansion mirrors Example 2's content-based
// reformulation: with feedback object v4 ("Range Queries in OLAP Data
// Cubes"), the expansion is dominated by the feedback object's own
// terms (olap, cubes, range, queries) thanks to the C_d decay, with
// terms from authority-transferring neighbors (modeling,
// multidimensional) weighted much lower.
func TestExample2ContentExpansion(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	q := ir.NewQuery("olap")
	_, sg := explainFeedback(t, e, q, f.ids["v4"])
	ref, err := e.Reformulate(q, []*Subgraph{sg}, ReformulateOptions{Ce: 0.5, Cd: 0.5, TopTerms: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Expansion) == 0 {
		t.Fatal("no expansion terms")
	}
	weights := map[string]float64{}
	for _, wt := range ref.Expansion {
		weights[wt.Term] = wt.Weight
	}
	// Terms from the feedback object itself must be present.
	for _, term := range []string{"range", "queries", "cubes"} {
		if weights[term] == 0 {
			t.Errorf("feedback-object term %q missing from expansion (%v)", term, ref.Expansion)
		}
	}
	// A term occurring only in a distance-1 neighbor with little
	// authority ("modeling", from v5) must weigh less than a term of
	// the feedback object itself ("range"), per the C_d decay and
	// flow weighting of Equation 11.
	if weights["modeling"] >= weights["range"] {
		t.Errorf("low-flow neighbor term outweighs target term: %v", ref.Expansion)
	}
	// A term occurring in the target AND in authority-transferring
	// neighbors ("agrawal": v4, v5, v6) accumulates more weight than a
	// target-only term — the summation semantics of Equation 11.
	if weights["agrawal"] <= weights["range"] {
		t.Errorf("multi-node term should outweigh single-node term: %v", ref.Expansion)
	}
	// The reformulated query keeps the original term and gains weight
	// on expansion terms scaled by C_e and the a_q/max normalization:
	// the strongest expansion term gets exactly C_e * a_q = 0.5 * 1.
	if ref.Query.Weight("olap") < 1 {
		t.Errorf("original term lost weight: %v", ref.Query)
	}
	maxExp := 0.0
	for _, wt := range ref.Expansion {
		if wt.Weight > maxExp {
			maxExp = wt.Weight
		}
	}
	if math.Abs(maxExp-1.0) > 1e-9 { // normalized so max == a_q == 1
		t.Errorf("max normalized expansion weight = %v, want 1", maxExp)
	}
	// Stopwords never enter the query.
	for term := range weights {
		if ir.IsStopword(term) {
			t.Errorf("stopword %q in expansion", term)
		}
	}
}

func TestContentOnlyLeavesRatesUnchanged(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	q := ir.NewQuery("olap")
	_, sg := explainFeedback(t, e, q, f.ids["v4"])
	ref, err := e.Reformulate(q, []*Subgraph{sg}, ContentOnly())
	if err != nil {
		t.Fatal(err)
	}
	oldVec := e.Rates().Vector()
	for i, a := range ref.Rates.Vector() {
		if a != oldVec[i] {
			t.Errorf("rate %d changed under content-only reformulation", i)
		}
	}
	if len(ref.Expansion) == 0 {
		t.Error("content-only reformulation should expand the query")
	}
}

func TestStructureOnlyLeavesQueryUnchanged(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	q := ir.NewQuery("olap")
	_, sg := explainFeedback(t, e, q, f.ids["v4"])
	ref, err := e.Reformulate(q, []*Subgraph{sg}, StructureOnly())
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Expansion) != 0 {
		t.Errorf("structure-only reformulation expanded the query: %v", ref.Expansion)
	}
	if ref.Query.Len() != q.Len() || ref.Query.Weight("olap") != 1 {
		t.Errorf("query changed: %v", ref.Query)
	}
	if err := ref.Rates.Validate(); err != nil {
		t.Errorf("reformulated rates invalid: %v", err)
	}
	// Types that carried flow in the subgraph were boosted relative to
	// types that carried none (before the common rescale): the ratio
	// new/old must be strictly larger for a flow-carrying type.
	oldVec := e.Rates().Vector()
	newVec := ref.Rates.Vector()
	var flowRatio, noFlowRatio float64
	for i := range oldVec {
		if oldVec[i] == 0 {
			continue
		}
		r := newVec[i] / oldVec[i]
		if ref.FlowByType[i] > 0 && r > flowRatio {
			flowRatio = r
		}
		if ref.FlowByType[i] == 0 && noFlowRatio == 0 {
			noFlowRatio = r
		}
	}
	if flowRatio <= noFlowRatio {
		t.Errorf("flow-carrying type ratio %v should exceed no-flow ratio %v", flowRatio, noFlowRatio)
	}
}

func TestMultipleFeedbackObjectsSum(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	q := ir.NewQuery("olap")
	res := e.Rank(q)
	sg4, err := e.Explain(res, f.ids["v4"], ExplainOptions{Radius: 3, Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	sg1, err := e.Explain(res, f.ids["v1"], ExplainOptions{Radius: 3, Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	refBoth, err := e.Reformulate(q, []*Subgraph{sg4, sg1}, ContentAndStructure())
	if err != nil {
		t.Fatal(err)
	}
	ref4, err := e.Reformulate(q, []*Subgraph{sg4}, ContentAndStructure())
	if err != nil {
		t.Fatal(err)
	}
	// Equation 15: the combined F factors are the per-object sums.
	ref1, err := e.Reformulate(q, []*Subgraph{sg1}, ContentAndStructure())
	if err != nil {
		t.Fatal(err)
	}
	for i := range refBoth.FlowByType {
		want := ref4.FlowByType[i] + ref1.FlowByType[i]
		if math.Abs(refBoth.FlowByType[i]-want) > 1e-12 {
			t.Errorf("F[%d] = %v, want sum %v", i, refBoth.FlowByType[i], want)
		}
	}
	if err := refBoth.Rates.Validate(); err != nil {
		t.Error(err)
	}
	if len(refBoth.Expansion) == 0 {
		t.Error("combined reformulation should expand the query")
	}
}

func TestReformulationIterationImprovesFeedbackObject(t *testing.T) {
	// End-to-end feedback loop on the fixture: after reformulating
	// toward feedback object v7 (the citation hub), the citation edge
	// type should keep or gain relative strength, and re-ranking should
	// keep v7 on top.
	f := newFixture(t)
	e := f.newEngine(t)
	q := ir.NewQuery("olap")
	res := e.Rank(q)
	sg, err := e.Explain(res, f.ids["v7"], ExplainOptions{Radius: 3, Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.Reformulate(q, []*Subgraph{sg}, StructureOnly())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetRates(ref.Rates); err != nil {
		t.Fatal(err)
	}
	res2 := e.RankFrom(ref.Query, res.Scores)
	if top := res2.TopK(1); top[0].Node != f.ids["v7"] {
		t.Errorf("v7 lost the top rank after feedback on v7: %v", top)
	}
}

func TestReformulateOptionPresets(t *testing.T) {
	if o := ContentOnly(); o.Ce == 0 || o.Cf != 0 {
		t.Errorf("ContentOnly = %+v", o)
	}
	if o := StructureOnly(); o.Ce != 0 || o.Cf == 0 {
		t.Errorf("StructureOnly = %+v", o)
	}
	if o := ContentAndStructure(); o.Ce == 0 || o.Cf == 0 {
		t.Errorf("ContentAndStructure = %+v", o)
	}
	def := ReformulateOptions{}.withDefaults()
	if def.Cd != 0.5 || def.TopTerms != 5 {
		t.Errorf("defaults = %+v", def)
	}
}

// TestPropertyAdjustRates: for arbitrary non-negative flow factors and
// C_f values in [0,1], the normalization pipeline always yields a valid
// rate assignment (non-negative, each rate <= 1, outgoing sums <= 1)
// that preserves per-node relative ORDER of rates whose flows tie.
func TestPropertyAdjustRates(t *testing.T) {
	s, _, edges := newDBLPSchema()
	base := figure3Rates(s, edges)
	prop := func(raw []float64, cfRaw uint8) bool {
		flows := make([]float64, s.NumTransferTypes())
		for i := range flows {
			if i < len(raw) {
				f := raw[i]
				if f < 0 {
					f = -f
				}
				if f > 1e9 || f != f { // clamp huge, drop NaN
					f = 1
				}
				flows[i] = f
			}
		}
		cf := float64(cfRaw%101) / 100
		got := adjustRates(base, flows, cf)
		if err := got.Validate(); err != nil {
			return false
		}
		for _, a := range got.Vector() {
			if a < 0 || a > 1+1e-12 {
				return false
			}
		}
		// Zero-rate types stay zero (no flow can resurrect a disabled
		// edge direction: a'(e) multiplies a(e)).
		if got.Rate(graph.TransferType(edges["cites"], graph.Backward)) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReformulateWeighted(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	q := ir.NewQuery("olap")
	res := e.Rank(q)
	sg4, err := e.Explain(res, f.ids["v4"], ExplainOptions{Radius: 3, Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	sg1, err := e.Explain(res, f.ids["v1"], ExplainOptions{Radius: 3, Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	subs := []*Subgraph{sg4, sg1}

	// Uniform weights of 1 match plain Reformulate exactly.
	plain, err := e.Reformulate(q, subs, ContentAndStructure())
	if err != nil {
		t.Fatal(err)
	}
	ones, err := e.ReformulateWeighted(q, subs, []float64{1, 1}, ContentAndStructure())
	if err != nil {
		t.Fatal(err)
	}
	pv, ov := plain.Rates.Vector(), ones.Rates.Vector()
	for i := range pv {
		if pv[i] != ov[i] {
			t.Fatalf("weight-1 rates differ at %d", i)
		}
	}
	// Zeroing one object's weight equals dropping it.
	zeroed, err := e.ReformulateWeighted(q, subs, []float64{1, 0}, ContentAndStructure())
	if err != nil {
		t.Fatal(err)
	}
	solo, err := e.Reformulate(q, subs[:1], ContentAndStructure())
	if err != nil {
		t.Fatal(err)
	}
	zv, sv := zeroed.Rates.Vector(), solo.Rates.Vector()
	for i := range zv {
		if math.Abs(zv[i]-sv[i]) > 1e-12 {
			t.Fatalf("zero-weight rates differ from dropped-object rates at %d", i)
		}
	}
	// Scaling all weights by a common factor leaves rates unchanged
	// (the Equation 13 normalization divides it out).
	doubled, err := e.ReformulateWeighted(q, subs, []float64{2, 2}, ContentAndStructure())
	if err != nil {
		t.Fatal(err)
	}
	dv := doubled.Rates.Vector()
	for i := range pv {
		if math.Abs(dv[i]-pv[i]) > 1e-12 {
			t.Fatalf("scaled weights changed rates at %d", i)
		}
	}
	// Errors.
	if _, err := e.ReformulateWeighted(q, subs, []float64{1}, StructureOnly()); err == nil {
		t.Error("mismatched weight count should error")
	}
	if _, err := e.ReformulateWeighted(q, subs, []float64{1, -1}, StructureOnly()); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := e.ReformulateWeighted(q, subs, []float64{1, math.NaN()}, StructureOnly()); err == nil {
		t.Error("NaN weight should error")
	}
}
