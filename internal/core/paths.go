package core

import (
	"sort"

	"authorityflow/internal/graph"
)

// Path is one authority-flow path from a base-set node to the target
// of an explaining subgraph, used when displaying an explanation: the
// paper keeps only the paths with high authority flow.
type Path struct {
	// Nodes lists the path's nodes from source (a base-set object) to
	// the target.
	Nodes []graph.NodeID
	// Arcs lists the traversed arcs, len(Nodes)-1 of them.
	Arcs []FlowArc
	// Flow is the path's bottleneck authority flow: the smallest
	// adjusted arc flow along it, the amount of authority the whole
	// path can be said to carry to the target.
	Flow float64
}

// topPathsExplored caps the number of partial paths the enumeration
// expands, keeping TopPaths interactive on dense subgraphs.
const topPathsExplored = 200000

// TopPaths enumerates simple paths from base-set sources to the target
// inside the subgraph and returns the k paths with the highest
// bottleneck flow (ties broken by shorter length, then lexicographic
// node order for determinism). sources are typically the subgraph's
// base-set members; non-members are ignored.
func (sg *Subgraph) TopPaths(sources []graph.NodeID, k int) []Path {
	if k <= 0 {
		return nil
	}
	// Adjacency over positive-flow arcs only, highest flow first so the
	// exploration budget goes to the promising paths.
	adj := make(map[graph.NodeID][]FlowArc, len(sg.Nodes))
	for _, a := range sg.Arcs {
		if a.Flow > 0 {
			adj[a.From] = append(adj[a.From], a)
		}
	}
	for _, arcs := range adj {
		sort.Slice(arcs, func(i, j int) bool { return arcs[i].Flow > arcs[j].Flow })
	}
	// Paths much longer than the subgraph radius are unintuitive (the
	// paper's display rationale for limiting L) and explode the search
	// space, so bound the node count by the deepest distance plus a
	// small detour allowance.
	maxDist := 0
	for _, d := range sg.Dist {
		if d > maxDist {
			maxDist = d
		}
	}
	maxLen := maxDist + 3
	if maxLen > len(sg.Nodes) {
		maxLen = len(sg.Nodes)
	}

	var out []Path
	explored := 0
	onPath := make(map[graph.NodeID]bool)
	var nodes []graph.NodeID
	var arcs []FlowArc

	var dfs func(v graph.NodeID, bottleneck float64)
	dfs = func(v graph.NodeID, bottleneck float64) {
		if explored >= topPathsExplored {
			return
		}
		explored++
		if v == sg.Target && len(nodes) > 1 {
			out = append(out, Path{
				Nodes: append([]graph.NodeID(nil), nodes...),
				Arcs:  append([]FlowArc(nil), arcs...),
				Flow:  bottleneck,
			})
			return
		}
		if len(nodes) >= maxLen {
			return
		}
		for _, a := range adj[v] {
			if onPath[a.To] {
				continue
			}
			b := bottleneck
			if a.Flow < b {
				b = a.Flow
			}
			onPath[a.To] = true
			nodes = append(nodes, a.To)
			arcs = append(arcs, a)
			dfs(a.To, b)
			arcs = arcs[:len(arcs)-1]
			nodes = nodes[:len(nodes)-1]
			delete(onPath, a.To)
		}
	}

	seen := make(map[graph.NodeID]bool)
	for _, s := range sources {
		if seen[s] || !sg.Has(s) {
			continue
		}
		seen[s] = true
		onPath[s] = true
		nodes = append(nodes, s)
		dfs(s, inf)
		nodes = nodes[:0]
		delete(onPath, s)
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Flow != out[j].Flow {
			return out[i].Flow > out[j].Flow
		}
		if len(out[i].Nodes) != len(out[j].Nodes) {
			return len(out[i].Nodes) < len(out[j].Nodes)
		}
		return lessNodeSeq(out[i].Nodes, out[j].Nodes)
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

const inf = 1e308

func lessNodeSeq(a, b []graph.NodeID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// BaseSources returns the subgraph nodes that belong to the rank
// result's base set — the roots an explanation's paths start from.
func (sg *Subgraph) BaseSources(res *RankResult) []graph.NodeID {
	var out []graph.NodeID
	for _, sd := range res.Base {
		v := graph.NodeID(sd.Doc)
		if sg.Has(v) {
			out = append(out, v)
		}
	}
	return out
}

// Prune returns a copy of the subgraph containing only arcs with
// adjusted flow at least minFlow, plus every node still touching an arc
// (and the target). The paper prunes explaining subgraphs this way
// before display, keeping only high-authority paths.
func (sg *Subgraph) Prune(minFlow float64) *Subgraph {
	cp := &Subgraph{
		Target:     sg.Target,
		Query:      sg.Query,
		H:          make(map[graph.NodeID]float64),
		Dist:       make(map[graph.NodeID]int),
		Iterations: sg.Iterations,
		Converged:  sg.Converged,
		damping:    sg.damping,
		inFlow:     make(map[graph.NodeID]float64),
		outFlow:    make(map[graph.NodeID]float64),
	}
	keep := map[graph.NodeID]bool{sg.Target: true}
	for _, a := range sg.Arcs {
		if a.Flow >= minFlow {
			cp.Arcs = append(cp.Arcs, a)
			keep[a.From] = true
			keep[a.To] = true
			cp.inFlow[a.To] += a.Flow
			cp.outFlow[a.From] += a.Flow
		}
	}
	for v := range keep {
		cp.Nodes = append(cp.Nodes, v)
		cp.H[v] = sg.H[v]
		cp.Dist[v] = sg.Dist[v]
	}
	sort.Slice(cp.Nodes, func(i, j int) bool { return cp.Nodes[i] < cp.Nodes[j] })
	return cp
}
