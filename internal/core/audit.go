package core

import (
	"context"
	"sort"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
)

// DefaultAuditBudget caps audit contributions when the caller does not
// choose a budget.
const DefaultAuditBudget = 16

// AuditOptions control an audit: the contribution budget and the
// underlying explaining-subgraph construction.
type AuditOptions struct {
	// Budget caps the number of arc and node contributions returned —
	// the top-Budget of each by sensitivity. Zero means
	// DefaultAuditBudget.
	Budget int
	// Explain configures the subgraph build (radius, Eq. 10 threshold).
	Explain ExplainOptions
}

func (o AuditOptions) withDefaults() AuditOptions {
	if o.Budget <= 0 {
		o.Budget = DefaultAuditBudget
	}
	return o
}

// AuditArc is one explaining-subgraph arc ranked by how strongly the
// target's explained score responds to perturbing the arc's authority
// transfer rate — the AURORA-style "which edges move this ranking"
// question answered inside the paper's own flow machinery.
type AuditArc struct {
	From graph.NodeID
	To   graph.NodeID
	Type graph.TransferTypeID
	// Rate and Flow mirror the FlowArc fields (Equation 1 rate, adjusted
	// Equation 7 flow).
	Rate float64
	Flow float64
	// Sensitivity is ∂(explained score)/∂(arc rate) with the rest of the
	// subgraph frozen: the arc delivers h(To)·d·rate·r(From) to the
	// target, so the derivative is h(To)·d·r(From) = Flow/Rate. A
	// high-sensitivity arc is one whose rate perturbation moves the
	// target's score the most per unit of rate.
	Sensitivity float64
}

// AuditNode aggregates arc sensitivities per source node: how strongly
// the target's score responds to uniformly perturbing the rates of the
// node's outgoing subgraph arcs.
type AuditNode struct {
	Node        graph.NodeID
	Sensitivity float64
	// Flow is the node's adjusted out-flow inside the subgraph
	// (Equation 6b) — the authority it actually forwards to the target.
	Flow float64
}

// Audit is the sensitivity ranking of one result node: the top-Budget
// arcs and nodes of its explaining subgraph ordered by score
// sensitivity to rate perturbation. At a pinned (generation,
// ratesVersion) the construction is fully deterministic — subgraph
// arcs are collected in ascending-node CSR order, sensitivities are
// exact derivatives of the frozen flow system, and ties break on
// (From, To, Type) — so two audits of the same target under the same
// pinned state are identical, which is what lets the HTTP layer promise
// byte-identical bodies.
type Audit struct {
	Target graph.NodeID
	Query  *ir.Query
	// Score is the explained score: the adjusted authority arriving at
	// the target inside the subgraph.
	Score  float64
	Budget int
	// Arcs and Nodes are the top-Budget contributions, sensitivity
	// descending; TotalArcs/TotalNodes count the subgraph before
	// truncation so callers can tell a complete audit from a clipped
	// one.
	Arcs       []AuditArc
	Nodes      []AuditNode
	TotalArcs  int
	TotalNodes int
	// Iterations and Converged report the Equation 10 fixpoint run.
	Iterations int
	Converged  bool
	// RatesVersion and Generation stamp the pinned state the audit ran
	// under — the determinism key.
	RatesVersion uint64
	Generation   uint64
}

// AuditCtx ranks the explaining subgraph of target by score sensitivity
// to rate perturbation, under the pinned state and the given ranking
// mode. res must be a converged result for the same query, state, and
// mode (the serving layer obtains it through the cache or RankModeCtx).
// Deadline-awareness is inherited from the explain stages: the BFS
// phases and the Eq. 10 fixpoint poll ctx, and the final ranking pass
// is linear in the subgraph. Combined mode is rejected via
// ExplainModeCtx.
func (p *Pinned) AuditCtx(ctx context.Context, m Mode, res *RankResult, target graph.NodeID, opts AuditOptions) (*Audit, error) {
	opts = opts.withDefaults()
	sg, err := p.ExplainModeCtx(ctx, m, res, target, opts.Explain)
	if err != nil {
		return nil, err
	}
	a := auditOf(sg, opts.Budget)
	a.RatesVersion = p.st.snap.version
	a.Generation = p.st.gen.num
	return a, nil
}

// AuditOf derives the sensitivity ranking from an already-built
// subgraph, without the pinned-state stamps AuditCtx adds. The
// /v1/explain envelope uses it to attach a contributions[] block to a
// subgraph it has already paid for, instead of re-running the BFS and
// Eq. 10 fixpoint through AuditCtx.
func AuditOf(sg *Subgraph, budget int) *Audit {
	if budget <= 0 {
		budget = DefaultAuditBudget
	}
	return auditOf(sg, budget)
}

// auditOf derives the sensitivity ranking from a built subgraph.
func auditOf(sg *Subgraph, budget int) *Audit {
	a := &Audit{
		Target:     sg.Target,
		Query:      sg.Query,
		Score:      sg.ExplainedScore(),
		Budget:     budget,
		TotalArcs:  len(sg.Arcs),
		Iterations: sg.Iterations,
		Converged:  sg.Converged,
	}

	arcs := make([]AuditArc, len(sg.Arcs))
	perNode := make(map[graph.NodeID]*AuditNode, len(sg.Nodes))
	for i, fa := range sg.Arcs {
		// Rate > 0 by construction (zero-rate arcs never enter the
		// subgraph), so the derivative Flow/Rate is always defined.
		arcs[i] = AuditArc{
			From:        fa.From,
			To:          fa.To,
			Type:        fa.Type,
			Rate:        fa.Rate,
			Flow:        fa.Flow,
			Sensitivity: fa.Flow / fa.Rate,
		}
		n := perNode[fa.From]
		if n == nil {
			n = &AuditNode{Node: fa.From}
			perNode[fa.From] = n
		}
		// sg.Arcs is ordered (ascending source, CSR arc order), so these
		// per-node sums accumulate in a deterministic order.
		n.Sensitivity += arcs[i].Sensitivity
		n.Flow += fa.Flow
	}
	a.TotalNodes = len(perNode)

	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].Sensitivity != arcs[j].Sensitivity {
			return arcs[i].Sensitivity > arcs[j].Sensitivity
		}
		if arcs[i].From != arcs[j].From {
			return arcs[i].From < arcs[j].From
		}
		if arcs[i].To != arcs[j].To {
			return arcs[i].To < arcs[j].To
		}
		return arcs[i].Type < arcs[j].Type
	})
	if len(arcs) > budget {
		arcs = arcs[:budget]
	}
	a.Arcs = arcs

	nodes := make([]AuditNode, 0, len(perNode))
	// Iterate sg.Nodes (ascending) rather than the map for a
	// deterministic pre-sort order — sort.Slice is not stable.
	for _, v := range sg.Nodes {
		if n := perNode[v]; n != nil {
			nodes = append(nodes, *n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Sensitivity != nodes[j].Sensitivity {
			return nodes[i].Sensitivity > nodes[j].Sensitivity
		}
		return nodes[i].Node < nodes[j].Node
	})
	if len(nodes) > budget {
		nodes = nodes[:budget]
	}
	a.Nodes = nodes
	return a
}
