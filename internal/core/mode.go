package core

import (
	"context"
	"fmt"
	"math"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// Mode selects the ranking direction of a read query. Authority is the
// paper's ObjectRank2 semantics — a node is important when important
// nodes point at it. Hub is the CheiRank dual solved on the
// direction-reversed graph — a node is important when it points at
// important nodes (the internal-linking / curation workload). Combined
// merges both per node, surfacing objects that score on both axes.
type Mode string

const (
	ModeAuthority Mode = "authority"
	ModeHub       Mode = "hub"
	ModeCombined  Mode = "combined"
)

// ParseMode maps the wire-level mode parameter onto a Mode. The empty
// string is ModeAuthority — the whole pre-mode query surface keeps its
// meaning unchanged. This is the ONE validation point for the
// parameter: every HTTP handler (server and router alike) funnels
// through it so an invalid mode produces the same invalid_argument
// message everywhere.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", ModeAuthority:
		return ModeAuthority, nil
	case ModeHub:
		return ModeHub, nil
	case ModeCombined:
		return ModeCombined, nil
	}
	return "", fmt.Errorf("mode must be one of authority, hub, combined")
}

// Explainable reports whether rankings under the mode decompose into a
// single authority-flow system that the Section 4 explaining subgraph
// (and hence /v1/audit) can operate on. Combined rankings mix two
// separate fixpoints and are not explainable.
func (m Mode) Explainable() bool { return m != ModeCombined }

// hubCorpus returns the generation's direction-reversed corpus view,
// built on first use and kept for the generation's lifetime. The view
// shares the authority corpus's index, buffer pool, worker policy, and
// panel width; only the graph (an O(1) CSR-role swap, graph.Reversed)
// and — when tiling is configured — the tiling plan differ.
func (gn *generation) hubCorpus() *Corpus {
	gn.hubOnce.Do(func() {
		c := gn.corpus
		rg := c.g.Reversed()
		opts := c.opts
		if opts.Tile != nil {
			// A tiling plan indexes one specific reverse CSR. On the
			// reversed view that CSR is the authority graph's FORWARD
			// half, so reusing the authority plan would address the wrong
			// arc runs (Tiling.usable only checks the node count and
			// cannot catch this). Build a fresh plan against the reversed
			// view; tiled and untiled sweeps are bit-identical, so this
			// is purely a throughput decision.
			opts.Tile = rank.NewTiling(rg, opts.Tile.TileNodes())
		}
		gn.hub = &Corpus{
			g:         rg,
			ix:        c.ix,
			opts:      opts,
			nopts:     opts.Normalized(),
			workers:   c.workers,
			blockSize: c.blockSize,
			pool:      c.pool,
		}
	})
	return gn.hub
}

// hubGlobalScores returns the generation's reversed-direction PageRank
// warm-start vector, computed on first use under snap's rates —
// exactly the vector globalScores would hold if the corpus had been
// built pre-reversed, which is what keeps hub-mode solves bit-identical
// to authority solves on a pre-reversed corpus.
func (gn *generation) hubGlobalScores(snap *ratesSnapshot) []float64 {
	gn.hubGlobalOnce.Do(func() {
		hc := gn.hubCorpus()
		gn.hubGlobal = rank.PageRank(hc.g, snap.rates, hc.opts).Scores
	})
	return gn.hubGlobal
}

// RankHubCtx executes the hub-mode (CheiRank) solve for q under the
// pinned state: the standard ObjectRank2 kernel over the pinned
// generation's direction-reversed corpus view, warm-started from the
// reversed-direction global PageRank. The result is bit-identical to
// what RankCtx would return on a corpus built from the pre-reversed
// graph — same arrays, same operation order — which is the contract
// the mode=hub golden tests pin.
func (p *Pinned) RankHubCtx(ctx context.Context, q *ir.Query) (*RankResult, error) {
	st := p.st
	return p.e.rankCorpusAt(ctx, st, st.gen.hubCorpus(), q, st.gen.hubGlobalScores(st.snap))
}

// RankHubFromCtx is RankHubCtx warm-started from a previous hub score
// vector (the serving cache's cross-version donation path). Donated
// vectors must come from hub-mode solves; a wrong-length vector
// degrades to a cold start exactly as on the authority path.
func (p *Pinned) RankHubFromCtx(ctx context.Context, q *ir.Query, init []float64) (*RankResult, error) {
	return p.e.rankCorpusAt(ctx, p.st, p.st.gen.hubCorpus(), q, init)
}

// RankManyHubFromCtx is the blocked multi-solve of the hub direction:
// RankManyFromCtx's exact contract (panels of BlockSize, per-query
// warm-start donations, partial results on cancel) over the reversed
// corpus view, with nil donations falling back to the reversed-
// direction global PageRank.
func (p *Pinned) RankManyHubFromCtx(ctx context.Context, qs []*ir.Query, inits [][]float64) ([]*RankResult, error) {
	st := p.st
	return p.e.rankManyCorpusAt(ctx, st, st.gen.hubCorpus(),
		func() []float64 { return st.gen.hubGlobalScores(st.snap) }, qs, inits, PanelF64)
}

// RankCombinedCtx executes both directions for q and merges them with
// Combine. Two kernel executions run (both deadline-aware); the solve
// hook fires once per direction.
func (p *Pinned) RankCombinedCtx(ctx context.Context, q *ir.Query) (*RankResult, error) {
	auth, err := p.RankCtx(ctx, q)
	if err != nil {
		return nil, err
	}
	hub, err := p.RankHubCtx(ctx, q)
	if err != nil {
		p.e.Release(auth)
		return nil, err
	}
	out := p.Combine(auth, hub)
	pool := p.st.gen.corpus.pool
	pool.Put(auth.Scores)
	pool.Put(hub.Scores)
	return out, nil
}

// Combine merges an authority and a hub result for the same query into
// one combined ranking: Scores[v] = sqrt(auth[v] · hub[v]), the
// geometric mean, so a node must carry weight on BOTH axes to rank (an
// arithmetic mean would let a pure authority dominate a balanced
// node). The merge is elementwise over two deterministic inputs, so
// combined rankings inherit the per-mode bit-identity contract. The
// input results are not consumed — the caller decides whether to
// recycle their vectors.
func (p *Pinned) Combine(auth, hub *RankResult) *RankResult {
	c := p.st.gen.corpus
	out := c.pool.GetZeroed(c.g.NumNodes())
	n := len(out)
	if len(auth.Scores) < n {
		n = len(auth.Scores)
	}
	if len(hub.Scores) < n {
		n = len(hub.Scores)
	}
	for i := 0; i < n; i++ {
		out[i] = math.Sqrt(auth.Scores[i] * hub.Scores[i])
	}
	return &RankResult{
		Query:        auth.Query,
		Scores:       out,
		Base:         auth.Base,
		Iterations:   auth.Iterations + hub.Iterations,
		Converged:    auth.Converged && hub.Converged,
		RatesVersion: p.st.snap.version,
		Generation:   p.st.gen.num,
		BaseSetDur:   auth.BaseSetDur + hub.BaseSetDur,
		SolveDur:     auth.SolveDur + hub.SolveDur,
	}
}

// RankModeCtx dispatches one solve by Mode — the single entry point the
// uncached serving path uses for every read query.
func (p *Pinned) RankModeCtx(ctx context.Context, q *ir.Query, m Mode) (*RankResult, error) {
	switch m {
	case ModeAuthority, "":
		return p.RankCtx(ctx, q)
	case ModeHub:
		return p.RankHubCtx(ctx, q)
	case ModeCombined:
		return p.RankCombinedCtx(ctx, q)
	}
	return nil, fmt.Errorf("core: unknown ranking mode %q", m)
}

// ExplainModeCtx builds the explaining subgraph for a mode's ranking:
// the authority corpus for authority results, the reversed view for hub
// results (hub flows travel over reversed arcs, so the subgraph's
// From/To follow the hub direction). res must have been solved under
// the same pinned state AND the same mode. Combined rankings are not
// explainable; callers should gate on Mode.Explainable and surface an
// invalid-argument error instead of calling this.
func (p *Pinned) ExplainModeCtx(ctx context.Context, m Mode, res *RankResult, target graph.NodeID, opts ExplainOptions) (*Subgraph, error) {
	switch m {
	case ModeAuthority, "":
		return p.e.explainAt(ctx, p.st, res, target, opts)
	case ModeHub:
		return p.e.explainCorpusAt(ctx, p.st, p.st.gen.hubCorpus(), res, target, opts)
	}
	return nil, fmt.Errorf("core: %s rankings cannot be explained (combined scores mix two flow systems)", m)
}
