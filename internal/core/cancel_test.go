package core

import (
	"context"
	"testing"

	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// TestRankCtxCancelled: a pre-cancelled context stops the query before
// the solve starts — nil result, context.Canceled — and no score vector
// escapes the engine's pool.
func TestRankCtxCancelled(t *testing.T) {
	e := newFixture(t).newEngine(t)
	q := ir.NewQuery("olap")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if res, err := e.RankCtx(ctx, q); err != context.Canceled || res != nil {
		t.Fatalf("RankCtx = (%v, %v), want (nil, context.Canceled)", res, err)
	}
	if res, err := e.RankColdCtx(ctx, q); err != context.Canceled || res != nil {
		t.Fatalf("RankColdCtx = (%v, %v), want (nil, context.Canceled)", res, err)
	}
	if res, err := e.Pin().RankCtx(ctx, q); err != context.Canceled || res != nil {
		t.Fatalf("Pinned.RankCtx = (%v, %v), want (nil, context.Canceled)", res, err)
	}
}

// TestRankCtxLiveMatchesRank: a live context changes nothing — the
// RankCtx result is bit-identical to the plain Rank result (same
// snapshot, same warm start discipline).
func TestRankCtxLiveMatchesRank(t *testing.T) {
	e := newFixture(t).newEngine(t)
	q := ir.NewQuery("olap")

	plain := e.RankCold(q)
	withCtx, err := e.RankColdCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("RankColdCtx under live ctx: %v", err)
	}
	if plain.Iterations != withCtx.Iterations || plain.Converged != withCtx.Converged {
		t.Fatalf("iterations/converged differ: %d/%t vs %d/%t",
			plain.Iterations, plain.Converged, withCtx.Iterations, withCtx.Converged)
	}
	for v := range plain.Scores {
		if plain.Scores[v] != withCtx.Scores[v] {
			t.Fatalf("score %d differs: %v vs %v", v, plain.Scores[v], withCtx.Scores[v])
		}
	}
	e.Release(plain)
	e.Release(withCtx)
}

// TestExplainCtxCancelled: explain under a dead context returns the
// context error from the first phase boundary; a live context produces
// the same subgraph as the plain entry point.
func TestExplainCtxCancelled(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	res := e.Rank(ir.NewQuery("olap"))
	defer e.Release(res)
	target := f.ids["v7"]

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if sg, err := e.ExplainCtx(ctx, res, target, DefaultExplain()); err != context.Canceled || sg != nil {
		t.Fatalf("ExplainCtx = (%v, %v), want (nil, context.Canceled)", sg, err)
	}
	if sg, err := e.Pin().ExplainCtx(ctx, res, target, DefaultExplain()); err != context.Canceled || sg != nil {
		t.Fatalf("Pinned.ExplainCtx = (%v, %v), want (nil, context.Canceled)", sg, err)
	}

	plain, err := e.Explain(res, target, DefaultExplain())
	if err != nil {
		t.Fatal(err)
	}
	live, err := e.ExplainCtx(context.Background(), res, target, DefaultExplain())
	if err != nil {
		t.Fatalf("ExplainCtx under live ctx: %v", err)
	}
	if plain.ExplainedScore() != live.ExplainedScore() || plain.Iterations != live.Iterations {
		t.Fatalf("live-ctx explain differs: score %v/%v iters %d/%d",
			plain.ExplainedScore(), live.ExplainedScore(), plain.Iterations, live.Iterations)
	}
}

// TestReformulateCtxCancelled: reformulation under a dead context
// returns the context error before touching the snapshot's rates.
func TestReformulateCtxCancelled(t *testing.T) {
	f := newFixture(t)
	e := f.newEngine(t)
	q := ir.NewQuery("olap")
	res := e.Rank(q)
	defer e.Release(res)
	sg, err := e.Explain(res, f.ids["v7"], DefaultExplain())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if out, err := e.ReformulateCtx(ctx, q, []*Subgraph{sg}, ContentAndStructure()); err != context.Canceled || out != nil {
		t.Fatalf("ReformulateCtx = (%v, %v), want (nil, context.Canceled)", out, err)
	}
	if out, err := e.ReformulateWeightedCtx(ctx, q, []*Subgraph{sg}, []float64{1}, ContentAndStructure()); err != context.Canceled || out != nil {
		t.Fatalf("ReformulateWeightedCtx = (%v, %v), want (nil, context.Canceled)", out, err)
	}
	if out, err := e.Pin().ReformulateCtx(ctx, q, []*Subgraph{sg}, ContentAndStructure()); err != context.Canceled || out != nil {
		t.Fatalf("Pinned.ReformulateCtx = (%v, %v), want (nil, context.Canceled)", out, err)
	}

	// Live context: identical outcome to the plain entry point.
	plain, err := e.Reformulate(q, []*Subgraph{sg}, ContentAndStructure())
	if err != nil {
		t.Fatal(err)
	}
	live, err := e.ReformulateCtx(context.Background(), q, []*Subgraph{sg}, ContentAndStructure())
	if err != nil {
		t.Fatalf("ReformulateCtx under live ctx: %v", err)
	}
	if len(plain.Expansion) != len(live.Expansion) {
		t.Fatalf("expansion sizes differ: %d vs %d", len(plain.Expansion), len(live.Expansion))
	}
	for i := range plain.Expansion {
		if plain.Expansion[i] != live.Expansion[i] {
			t.Fatalf("expansion %d differs: %+v vs %+v", i, plain.Expansion[i], live.Expansion[i])
		}
	}
}

// TestRankCtxMidSolveCancel drives a cancellation from the solve hook's
// observer path: a context cancelled during the fixpoint makes RankCtx
// return the context error and recycle the partial vector instead of
// publishing it.
func TestRankCtxMidSolveCancel(t *testing.T) {
	f := newFixture(t)
	// A fresh engine with ZeroThreshold forces the solve to run the full
	// MaxIters budget, leaving plenty of sweeps to cancel within.
	e, err := NewEngine(f.g, f.rates, Config{
		Rank: rank.Options{Damping: 0.85, Threshold: rank.ZeroThreshold, MaxIters: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	hooked := false
	e.SetSolveHook(func(SolveStats) { hooked = true })
	// Cancel after the warm-start global solve: GlobalRank runs without
	// the caller ctx, so only the query solve observes the cancellation.
	e.GlobalRank()
	cancel()
	res, err := e.RankCtx(ctx, ir.NewQuery("olap"))
	if err != context.Canceled || res != nil {
		t.Fatalf("RankCtx = (%v, %v), want (nil, context.Canceled)", res, err)
	}
	if hooked {
		t.Fatal("solve hook fired for a cancelled solve")
	}
}
