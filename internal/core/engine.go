// Package core implements the primary contribution of "Explaining and
// Reformulating Authority Flow Queries" (ICDE 2008): the ObjectRank2
// ranking semantics with an IR-weighted base set (Section 3), the
// explaining-subgraph construction and flow-adjustment algorithm
// (Section 4, Figure 8), and content- and structure-based query
// reformulation from user relevance feedback (Section 5).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// Corpus is the immutable half of a query processor: the frozen data
// graph with its CSR adjacency, the inverted index over node text, the
// rank options, the worker policy, and the shared score-buffer pool.
// Everything in a Corpus is read-only after construction and therefore
// safe for unbounded concurrent use; several Engines (e.g. per-tenant
// rate assignments over one dataset) can share a single Corpus without
// duplicating the graph or index.
type Corpus struct {
	g  *graph.Graph
	ix *ir.Index
	// opts keeps the caller's raw options (zero fields and sentinels
	// intact — the kernel normalizes per run); nopts caches the
	// normalized view for components that need literal values, such as
	// the explain stage's damping factor.
	opts      rank.Options
	nopts     rank.Options
	workers   int
	blockSize int
	pool      *rank.BufferPool
}

// DefaultBlockSize is the panel width of the blocked multi-solve paths
// (RankManyCtx, precompute panels, cache prewarm) when Config.BlockSize
// is zero: eight float64 lanes fill one 64-byte cache line, so the
// blocked sweep's inner loop reads exactly one line per source node.
const DefaultBlockSize = 8

// ErrWarmStartMismatch reports a warm-started batch whose init slice
// does not pair up with its query slice. This is the one shape error
// the engine cannot repair locally: a wrong-LENGTH init VECTOR is a
// stale donation from another generation and silently degrades to a
// cold start (see rankAt), but a wrong COUNT of vectors means the
// caller's bookkeeping desynchronized — e.g. a cache prewarm list
// mutated between assembling queries and donations across a corpus
// swap — and no per-query pairing can be inferred. Callers get a typed
// error instead of the panic earlier builds raised.
var ErrWarmStartMismatch = errors.New("core: warm-start init count does not match query count")

// PanelMode selects the arithmetic of a blocked multi-solve panel.
type PanelMode int

const (
	// PanelF64 is the default full-precision panel: every column is
	// bit-identical to the corresponding single solve. All user-facing
	// query paths use it unconditionally.
	PanelF64 PanelMode = iota
	// PanelF32 stores panels as float32 (half the sweep bandwidth,
	// sixteen lanes per cache line) while keeping float64 arithmetic;
	// per-column scores agree with PanelF64 to within ~1e-6 on
	// unit-mass distributions (rank.IterateBlock32). Only throwaway
	// warm-start producers — precompute panels, cache prewarm, profile
	// basis builds — may opt in; answer-serving paths must stay PanelF64
	// to preserve the bit-identity contract.
	PanelF32
)

// Config collects construction parameters for a Corpus (and hence an
// Engine).
type Config struct {
	// BM25 parameters for the node index; zero value means DefaultBM25.
	BM25 ir.BM25Params
	// Rank options (damping, threshold, max iterations); zero fields
	// take the paper defaults (0.85, 0.002, 200) and the rank package's
	// explicit-zero sentinels are honored.
	Rank rank.Options
	// Workers selects the power-iteration execution: 0 runs the serial
	// kernel (bitwise-deterministic, right for small graphs), -1 uses
	// all cores, and any positive value pins the worker count. Parallel
	// runs match serial ones up to floating-point summation order.
	Workers int
	// BlockSize is the panel width of the blocked multi-solve paths
	// (Engine.RankManyCtx and everything built on it): up to BlockSize
	// base sets advance through each CSR sweep together. Zero means
	// DefaultBlockSize. Per-column results are bit-identical to the
	// corresponding single solves at any width, so this is purely a
	// throughput/memory knob (working set is 2·BlockSize score vectors).
	BlockSize int
	// TileNodes enables cache-blocked tiling of every power-iteration
	// sweep: the source-node axis is partitioned into tiles of this
	// many nodes and each sweep makes one pass per tile, keeping the
	// tile's slice of the score vector hot in cache while destinations
	// stream. Tiling reproduces the untiled kernel's floating-point
	// operation order exactly, so every result stays bit-identical at
	// any width (rank.Tiling). Zero disables tiling — the right choice
	// when the score vector already fits in cache; graphs that fit in a
	// single tile ignore the plan automatically.
	//
	// Sizing: each sweep re-streams the accumulator vector once per
	// tile pass, an overhead of |V|²/TileNodes that outgrows the
	// linear gather win if the tile stays fixed while the graph grows.
	// Aim for 4–16 passes (TileNodes ≈ |V|/8) and never below
	// rank.DefaultTileNodes; see DESIGN.md §13.1 for the measured law.
	TileNodes int
}

// NewCorpus indexes the text of every node of g and freezes the
// immutable substrate of a query processor.
func NewCorpus(g *graph.Graph, cfg Config) *Corpus {
	if cfg.BM25 == (ir.BM25Params{}) {
		cfg.BM25 = ir.DefaultBM25()
	}
	ix := ir.BuildIndex(g.NumNodes(), func(i int) string { return g.Text(graph.NodeID(i)) }, cfg.BM25)
	workers := cfg.Workers
	if workers < 0 {
		workers = rank.AutoWorkers()
	}
	blockSize := cfg.BlockSize
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	opts := cfg.Rank
	if cfg.TileNodes > 0 {
		// The tiling plan is built once against the frozen CSR and rides
		// along in the corpus rank options, so every solve path — single,
		// blocked, delta seeding, global PageRank — picks it up.
		opts.Tile = rank.NewTiling(g, cfg.TileNodes)
	}
	return &Corpus{
		g:         g,
		ix:        ix,
		opts:      opts,
		nopts:     opts.Normalized(),
		workers:   workers,
		blockSize: blockSize,
		pool:      rank.NewBufferPool(),
	}
}

// NewCorpusWithIndex is NewCorpus with a prebuilt inverted index —
// e.g. one loaded from a binary snapshot — so the tokenization pass,
// the dominant cost of corpus construction, is skipped entirely. The
// index must cover exactly g's nodes. cfg.BM25 is ignored: the index
// carries its own parameters.
func NewCorpusWithIndex(g *graph.Graph, ix *ir.Index, cfg Config) (*Corpus, error) {
	if ix.NumDocs() != g.NumNodes() {
		return nil, fmt.Errorf("core: index covers %d documents, graph has %d nodes", ix.NumDocs(), g.NumNodes())
	}
	workers := cfg.Workers
	if workers < 0 {
		workers = rank.AutoWorkers()
	}
	blockSize := cfg.BlockSize
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	opts := cfg.Rank
	if cfg.TileNodes > 0 {
		opts.Tile = rank.NewTiling(g, cfg.TileNodes)
	}
	return &Corpus{
		g:         g,
		ix:        ix,
		opts:      opts,
		nopts:     opts.Normalized(),
		workers:   workers,
		blockSize: blockSize,
		pool:      rank.NewBufferPool(),
	}, nil
}

// BlockSize returns the panel width of the corpus's blocked multi-solve
// paths.
func (c *Corpus) BlockSize() int { return c.blockSize }

// Graph returns the corpus's data graph.
func (c *Corpus) Graph() *graph.Graph { return c.g }

// Index returns the corpus's inverted index.
func (c *Corpus) Index() *ir.Index { return c.ix }

// Options returns the rank options in effect (as configured; zero
// fields mean the paper defaults).
func (c *Corpus) Options() rank.Options { return c.opts }

// ratesSnapshot is one immutable published state of the mutable half of
// an Engine: a rate assignment, its flat vector (what the kernel
// reads), and a monotonically increasing version. Snapshots are never
// mutated after publication — reformulation builds a fresh snapshot and
// publishes it with a compare-and-swap — so readers that loaded a
// snapshot can keep using it lock-free for as long as they like.
type ratesSnapshot struct {
	rates   *graph.Rates
	alpha   []float64
	version uint64
}

// generation is one immutable corpus identity inside an Engine: the
// corpus itself, its monotonically increasing generation number, and
// the per-generation cache of the global PageRank warm-start vector.
// A generation is shared by every rates snapshot published while it is
// current — SetRates keeps the generation, SwapCorpus replaces it.
type generation struct {
	corpus *Corpus
	num    uint64

	// global caches the PageRank vector used to warm-start initial
	// queries (Section 6.2), computed on first use under the rates in
	// force at that moment and kept for the generation's lifetime.
	globalOnce sync.Once
	global     []float64

	// hub caches the direction-reversed corpus view serving hub-mode
	// (CheiRank) solves, built on first hub-mode touch and kept for the
	// generation's lifetime; hubGlobal is the reversed-direction PageRank
	// warm start, mirroring global's compute-once contract. See mode.go.
	hubOnce sync.Once
	hub     *Corpus

	hubGlobalOnce sync.Once
	hubGlobal     []float64
}

// globalScores returns the generation's warm-start vector, computing
// it on first use under snap's rates.
func (gn *generation) globalScores(snap *ratesSnapshot) []float64 {
	gn.globalOnce.Do(func() {
		gn.global = rank.PageRank(gn.corpus.g, snap.rates, gn.corpus.opts).Scores
	})
	return gn.global
}

// engineState is the one atomically published word of engine identity:
// a (generation, rates snapshot) pair. Every read path loads it once
// at entry; SetRates/TrySetRates publish a new state with the same
// generation, SwapCorpus publishes one with a fresh generation. Pin
// captures a whole state, so a pinned view is consistent across BOTH
// axes — rates version and corpus generation.
type engineState struct {
	gen  *generation
	snap *ratesSnapshot
}

// globalScores is the state-consistent warm-start vector: sized for
// THIS state's graph, never a concurrently swapped-in one.
func (st *engineState) globalScores() []float64 {
	return st.gen.globalScores(st.snap)
}

// Engine ties an atomically swapped (corpus generation, rates
// snapshot) pair into an ObjectRank2 query processor.
//
// Concurrency model: Rank, Explain, Reformulate and every other read
// path load the current engineState once at entry and never look
// again, so they are safe under full concurrency with both
// SetRates/TrySetRates (which publish a new rates snapshot under the
// same generation) and SwapCorpus (which publishes a whole new corpus
// generation). All publications go through compare-and-swap on one
// pointer; there are no locks anywhere on the serving path. In-flight
// operations — including detached cache flights — finish on the
// generation they pinned. Use Pin to hold one state across a
// multi-step operation (rank → explain → reformulate) so all steps see
// the same rates AND the same graph.
type Engine struct {
	state atomic.Pointer[engineState]

	// publishHook, when set, is invoked after every successful rates
	// publication with the replaced and new snapshot versions. The
	// serving cache subscribes here to trigger prewarming; see
	// SetPublishHook.
	publishHook atomic.Pointer[func(oldVersion, newVersion uint64)]

	// swapHook, when set, is invoked after every successful corpus swap
	// with the replaced and new generation numbers; see SetSwapHook.
	swapHook atomic.Pointer[func(oldGeneration, newGeneration uint64)]

	// solveHook, when set, is invoked after every completed kernel
	// execution on the ObjectRank2 path with that solve's SolveStats.
	// The observability layer subscribes here to drive its kernel-solve
	// counters and iterations-to-convergence histogram; see
	// SetSolveHook.
	solveHook atomic.Pointer[func(SolveStats)]
}

// SolveStats describes one completed power-iteration execution on the
// engine's ObjectRank2 path (Rank/RankFrom/RankCold and their Pinned
// variants — including solves issued internally by the serving cache,
// which all funnel through the same path).
type SolveStats struct {
	// Iterations and Converged mirror the kernel result.
	Iterations int
	Converged  bool
	// WarmStarted reports whether the solve began from a caller-
	// provided Init vector (§6.2 warm start) rather than cold.
	WarmStarted bool
	// BaseSet is the size of the weighted base set |S(Q)|.
	BaseSet int
	// BaseSetDur and SolveDur are the wall-clock durations of the
	// base-set/IR-scoring stage and the kernel iteration stage.
	BaseSetDur time.Duration
	SolveDur   time.Duration
	// Columns is the number of base sets the kernel execution advanced:
	// 1 for single solves, up to the corpus BlockSize for one blocked
	// panel of RankManyCtx. afq_kernel_solves_total counts EXECUTIONS
	// (hook firings), so a 16-query batch at BlockSize 8 contributes 2
	// solves / 16 columns.
	Columns int
	// DeltaPushes is the number of residual-frontier point updates a
	// delta solve applied (zero for full-sweep solves); DeltaFellBack
	// reports that a delta solve abandoned the push phase and completed
	// with warm full sweeps. Both are zero outside RankDeltaCtx.
	DeltaPushes   int
	DeltaFellBack bool
}

// SetSolveHook registers f to be called after every completed kernel
// execution with that solve's statistics. At most one hook is held; a
// nil f removes it. The hook runs synchronously on the solving
// goroutine, so concurrent solves invoke it concurrently — it must be
// safe for concurrent use and should be cheap (a few atomic updates).
// Degenerate executions that never enter the kernel (an empty base
// set) do not fire the hook.
func (e *Engine) SetSolveHook(f func(SolveStats)) {
	if f == nil {
		e.solveHook.Store(nil)
		return
	}
	e.solveHook.Store(&f)
}

func (e *Engine) notifySolve(st SolveStats) {
	if h := e.solveHook.Load(); h != nil {
		(*h)(st)
	}
}

// SetPublishHook registers f to be called after every successful rates
// publication (SetRates or TrySetRates) with the versions of the
// replaced and the newly published snapshot. At most one hook is held;
// a nil f removes it. The hook runs synchronously on the publishing
// goroutine AFTER the compare-and-swap, so it observes the new snapshot
// via the engine's normal read paths; it must not itself publish rates
// (that would recurse). This is the engine-level integration point for
// version-keyed caches: invalidation is implicit (cache keys embed the
// rates identity), the hook exists to kick off background refresh work
// such as prewarming hot terms.
func (e *Engine) SetPublishHook(f func(oldVersion, newVersion uint64)) {
	if f == nil {
		e.publishHook.Store(nil)
		return
	}
	e.publishHook.Store(&f)
}

func (e *Engine) notifyPublish(oldVersion, newVersion uint64) {
	if h := e.publishHook.Load(); h != nil {
		(*h)(oldVersion, newVersion)
	}
}

// SetSwapHook registers f to be called after every successful
// SwapCorpus with the replaced and new generation numbers. At most one
// hook is held; a nil f removes it. The hook runs synchronously on the
// swapping goroutine AFTER the compare-and-swap (so it observes the
// new generation through the engine's normal read paths) and BEFORE
// the publish hook fires for the swap's rates publication.
func (e *Engine) SetSwapHook(f func(oldGeneration, newGeneration uint64)) {
	if f == nil {
		e.swapHook.Store(nil)
		return
	}
	e.swapHook.Store(&f)
}

func (e *Engine) notifySwap(oldGeneration, newGeneration uint64) {
	if h := e.swapHook.Load(); h != nil {
		(*h)(oldGeneration, newGeneration)
	}
}

// ErrRatesConflict is returned by TrySetRates when the engine's rates
// were replaced concurrently: the caller's version token no longer
// names the current snapshot. HTTP layers map it to 409 Conflict.
var ErrRatesConflict = errors.New("core: rates were changed concurrently (version conflict)")

// ErrGenerationConflict is returned by SwapCorpus when the engine's
// corpus was swapped concurrently: the caller's generation token no
// longer names the current generation. HTTP layers map it to 409
// Conflict, exactly like ErrRatesConflict.
var ErrGenerationConflict = errors.New("core: corpus was swapped concurrently (generation conflict)")

// NewEngine indexes the text of every node of g and returns an engine
// using the given authority transfer rates. The rates are cloned; later
// external mutation does not affect the engine.
func NewEngine(g *graph.Graph, rates *graph.Rates, cfg Config) (*Engine, error) {
	return NewEngineWith(NewCorpus(g, cfg), rates)
}

// NewEngineWith returns an engine over an existing (possibly shared)
// corpus with the given initial authority transfer rates (cloned).
// The engine starts at generation 1, rates version 1.
func NewEngineWith(c *Corpus, rates *graph.Rates) (*Engine, error) {
	if err := validateRates(c.g, rates); err != nil {
		return nil, err
	}
	e := &Engine{}
	clone := rates.Clone()
	e.state.Store(&engineState{
		gen:  &generation{corpus: c, num: 1},
		snap: &ratesSnapshot{rates: clone, alpha: clone.Vector(), version: 1},
	})
	return e, nil
}

func validateRates(g *graph.Graph, r *graph.Rates) error {
	if r.Schema() != g.Schema() {
		return fmt.Errorf("core: rates defined over a different schema than the graph")
	}
	if err := r.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// Corpus returns the engine's current immutable substrate. In a
// multi-step flow, prefer Pin: two Corpus calls may straddle a swap.
func (e *Engine) Corpus() *Corpus { return e.state.Load().gen.corpus }

// Graph returns the engine's current data graph.
func (e *Engine) Graph() *graph.Graph { return e.Corpus().g }

// Index returns the engine's current inverted index.
func (e *Engine) Index() *ir.Index { return e.Corpus().ix }

// Rates returns a copy of the current authority transfer rates.
func (e *Engine) Rates() *graph.Rates { return e.state.Load().snap.rates.Clone() }

// RatesVersion returns the version of the currently published rates
// snapshot. Versions start at 1 and increase by one per successful
// SetRates/TrySetRates/SwapCorpus — monotonically across corpus swaps,
// never resetting, so a version token uniquely names one published
// rates identity for the engine's whole lifetime. They are the
// optimistic-concurrency token of the reformulation API.
func (e *Engine) RatesVersion() uint64 { return e.state.Load().snap.version }

// Generation returns the current corpus generation number. Generations
// start at 1 and increase by one per successful SwapCorpus; they are
// the optimistic-concurrency token of the corpus-swap API.
func (e *Engine) Generation() uint64 { return e.state.Load().gen.num }

// SetRates replaces the authority transfer rates (cloned) by publishing
// a fresh snapshot, unconditionally (last writer wins). Used after a
// structure-based reformulation. Safe under full concurrency with every
// read path; in-flight operations keep the state they started with.
// The corpus generation is preserved — rates are validated against the
// generation current at each CAS attempt, so a SetRates racing a
// SwapCorpus fails cleanly if the new generation has a different
// schema rather than publishing rates the new graph cannot interpret.
func (e *Engine) SetRates(r *graph.Rates) error {
	clone := r.Clone()
	alpha := clone.Vector()
	for {
		old := e.state.Load()
		if err := validateRates(old.gen.corpus.g, clone); err != nil {
			return err
		}
		next := &engineState{
			gen:  old.gen,
			snap: &ratesSnapshot{rates: clone, alpha: alpha, version: old.snap.version + 1},
		}
		if e.state.CompareAndSwap(old, next) {
			e.notifyPublish(old.snap.version, next.snap.version)
			return nil
		}
	}
}

// TrySetRates publishes new rates only if the current snapshot still
// carries the given version — the optimistic-concurrency write of a
// reformulation computed against that snapshot. On success it returns
// the new version; if another writer got there first it returns the
// winning snapshot's version alongside ErrRatesConflict, and the caller
// should re-run its reformulation against fresh state (or surface 409).
// A corpus swap also advances the rates version, so a token pinned
// before a swap conflicts here — by design: a reformulation computed
// against the old graph must not be published onto the new one.
func (e *Engine) TrySetRates(r *graph.Rates, ifVersion uint64) (uint64, error) {
	old := e.state.Load()
	if err := validateRates(old.gen.corpus.g, r); err != nil {
		return old.snap.version, err
	}
	if old.snap.version != ifVersion {
		return old.snap.version, ErrRatesConflict
	}
	clone := r.Clone()
	next := &engineState{
		gen:  old.gen,
		snap: &ratesSnapshot{rates: clone, alpha: clone.Vector(), version: old.snap.version + 1},
	}
	if !e.state.CompareAndSwap(old, next) {
		return e.state.Load().snap.version, ErrRatesConflict
	}
	e.notifyPublish(old.snap.version, next.snap.version)
	return next.snap.version, nil
}

// SwapCorpus publishes a whole new corpus generation — graph, index
// and initial rates (cloned) — only if the current generation still
// carries the given number: the CAS mirror of TrySetRates on the
// generation axis. On success it returns the new generation number;
// if another swapper got there first it returns the winning generation
// alongside ErrGenerationConflict. The rates version advances by one
// (monotonically — version tokens never repeat across generations), so
// version-keyed caches and in-flight reformulation tokens invalidate
// implicitly. In-flight queries and detached cache flights finish on
// the generation they pinned; nothing blocks. After the CAS the swap
// hook fires, then the publish hook (the existing prewarm path), so a
// serving cache refreshes its hot set against the new generation.
func (e *Engine) SwapCorpus(c *Corpus, r *graph.Rates, ifGeneration uint64) (uint64, error) {
	if err := validateRates(c.g, r); err != nil {
		return e.Generation(), err
	}
	clone := r.Clone()
	old := e.state.Load()
	if old.gen.num != ifGeneration {
		return old.gen.num, ErrGenerationConflict
	}
	next := &engineState{
		gen:  &generation{corpus: c, num: old.gen.num + 1},
		snap: &ratesSnapshot{rates: clone, alpha: clone.Vector(), version: old.snap.version + 1},
	}
	if !e.state.CompareAndSwap(old, next) {
		return e.state.Load().gen.num, ErrGenerationConflict
	}
	e.notifySwap(old.gen.num, next.gen.num)
	e.notifyPublish(old.snap.version, next.snap.version)
	return next.gen.num, nil
}

// Options returns the rank options in effect (as configured).
func (e *Engine) Options() rank.Options { return e.Corpus().opts }

// baseSetOf computes the weighted query base set S(Q) over one corpus:
// every node containing at least one query keyword, scored by
// IRScore(v, Q) (Equation 2) and normalized to sum to 1 so the scores
// act as random-jump probabilities. This is the defining difference
// between ObjectRank2 and the original 0/1 ObjectRank.
func baseSetOf(c *Corpus, q *ir.Query) []ir.ScoredDoc {
	base := c.ix.BaseSet(q)
	sum := 0.0
	for _, sd := range base {
		sum += sd.Score
	}
	if sum > 0 {
		for i := range base {
			base[i].Score /= sum
		}
	}
	return base
}

// BaseSet computes the weighted query base set S(Q) over the current
// corpus; see baseSetOf.
func (e *Engine) BaseSet(q *ir.Query) []ir.ScoredDoc {
	return baseSetOf(e.Corpus(), q)
}

// RankResult is the outcome of one ObjectRank2 execution.
type RankResult struct {
	// Query is the (possibly reformulated) query vector that was run.
	Query *ir.Query
	// Scores holds the converged ObjectRank2 score r^Q(v) per node.
	// When the result is no longer needed, Engine.Release returns the
	// vector to the engine's buffer pool; after that the result must
	// not be read again.
	Scores []float64
	// Base is the normalized weighted base set used for random jumps.
	Base []ir.ScoredDoc
	// Iterations and Converged report the power-iteration behaviour;
	// iteration counts are the warm-start metric of Figures 14b–17b.
	Iterations int
	Converged  bool
	// RatesVersion is the version of the rates snapshot the execution
	// ran under — the optimistic-concurrency token to present when
	// publishing a reformulation derived from this result.
	RatesVersion uint64
	// Generation is the corpus generation the execution ran under.
	// Scores is sized for THAT generation's graph; consumers rendering
	// node IDs must use the same generation's graph, which is what a
	// Pinned view guarantees.
	Generation uint64
	// BaseSetDur and SolveDur are the wall-clock stage timings of the
	// execution (IR scoring vs kernel iteration) — the per-request
	// trace's span durations. Zero for results that did not run the
	// kernel (empty base set, cache hits reconstructed from stored
	// vectors).
	BaseSetDur time.Duration
	SolveDur   time.Duration
}

// TopK returns the k best nodes by ObjectRank2 score.
func (r *RankResult) TopK(k int) []rank.Ranked { return rank.TopK(r.Scores, k) }

// TopKOfType returns the k best nodes of one node type.
func (r *RankResult) TopKOfType(g *graph.Graph, t graph.TypeID, k int) []rank.Ranked {
	return rank.TopKOfType(g, r.Scores, t, k)
}

// InBase reports whether v is in the result's base set.
func (r *RankResult) InBase(v graph.NodeID) bool {
	for _, sd := range r.Base {
		if graph.NodeID(sd.Doc) == v {
			return true
		}
	}
	return false
}

// Release returns a result's score vector to the engine's buffer pool,
// closing the zero-allocation serving loop. The result's Scores must
// not be touched afterwards (TopK included). Optional: results that are
// never released are simply collected by the GC.
func (e *Engine) Release(res *RankResult) {
	if res == nil || res.Scores == nil {
		return
	}
	// Releasing into the CURRENT corpus's pool is safe even when the
	// result came from an earlier generation: BufferPool.Get re-checks
	// capacity and allocates fresh on a size mismatch.
	e.Corpus().pool.Put(res.Scores)
	res.Scores = nil
}

// Rank executes ObjectRank2 (Equation 4) for q, warm-started from the
// cached global PageRank as the paper does for initial queries.
func (e *Engine) Rank(q *ir.Query) *RankResult {
	st := e.state.Load()
	res, _ := e.rankAt(context.Background(), st, q, st.globalScores())
	return res
}

// RankCtx is Rank under a request context: the kernel polls ctx once
// per sweep and the call returns (nil, ctx.Err()) promptly on
// cancellation or deadline expiry. A cancelled solve publishes NOTHING
// — the partial score vector goes straight back to the engine's buffer
// pool, so no caller can observe a half-converged ranking. The solve
// hook does not fire for cancelled runs (they are not completed kernel
// executions).
func (e *Engine) RankCtx(ctx context.Context, q *ir.Query) (*RankResult, error) {
	st := e.state.Load()
	return e.rankAt(ctx, st, q, st.globalScores())
}

// RankFrom executes ObjectRank2 warm-started from a previous score
// vector — the Section 6.2 optimization for reformulated queries, whose
// scores are expected to be close to the previous iteration's. The init
// vector is only read, never retained.
func (e *Engine) RankFrom(q *ir.Query, init []float64) *RankResult {
	res, _ := e.rankAt(context.Background(), e.state.Load(), q, init)
	return res
}

// RankFromCtx is RankFrom under a request context (see RankCtx for the
// cancellation contract).
func (e *Engine) RankFromCtx(ctx context.Context, q *ir.Query, init []float64) (*RankResult, error) {
	return e.rankAt(ctx, e.state.Load(), q, init)
}

// RankCold executes ObjectRank2 with no warm start (the ablation
// baseline).
func (e *Engine) RankCold(q *ir.Query) *RankResult {
	res, _ := e.rankAt(context.Background(), e.state.Load(), q, nil)
	return res
}

// RankColdCtx is RankCold under a request context (see RankCtx for the
// cancellation contract).
func (e *Engine) RankColdCtx(ctx context.Context, q *ir.Query) (*RankResult, error) {
	return e.rankAt(ctx, e.state.Load(), q, nil)
}

// rankAt is the single ObjectRank2 execution path: every Rank* entry —
// Engine, Pinned, cache-internal — funnels here. ctx must be non-nil
// (use context.Background() for uncancellable runs; those never return
// an error). On cancellation the partial kernel vector is returned to
// the buffer pool and (nil, ctx.Err()) comes back: scores are never
// partially published.
func (e *Engine) rankAt(ctx context.Context, st *engineState, q *ir.Query, init []float64) (*RankResult, error) {
	return e.rankCorpusAt(ctx, st, st.gen.corpus, q, init)
}

// rankCorpusAt is rankAt against an explicit corpus view of the pinned
// state: the generation's authority corpus on every standard path, its
// direction-reversed hub view on hub-mode paths (mode.go). The corpus
// must belong to st.gen — both views share the state's index, pool,
// and provenance stamps.
func (e *Engine) rankCorpusAt(ctx context.Context, st *engineState, c *Corpus, q *ir.Query, init []float64) (*RankResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	snap := st.snap
	if init != nil && len(init) != c.g.NumNodes() {
		// A warm-start vector sized for another generation's graph
		// (donated across a concurrent corpus swap) cannot seed this
		// kernel; fall back to the cold path rather than panicking.
		init = nil
	}
	t0 := time.Now()
	base := baseSetOf(c, q)
	jump := c.pool.GetZeroed(c.g.NumNodes())
	baseDur := time.Since(t0)
	if len(base) == 0 {
		// No node contains any query keyword: the fixpoint is
		// identically zero, so skip the iteration (a warm start would
		// otherwise only decay toward zero).
		return &RankResult{Query: q, Scores: jump, Base: base, Converged: true, RatesVersion: snap.version, Generation: st.gen.num, BaseSetDur: baseDur}, nil
	}
	for _, sd := range base {
		jump[sd.Doc] = sd.Score
	}
	opts := c.opts
	opts.Init = init
	opts.Ctx = ctx
	t1 := time.Now()
	res := rank.Iterate(c.g, snap.alpha, jump, opts, c.workers, c.pool)
	solveDur := time.Since(t1)
	c.pool.Put(jump)
	if res.Err != nil {
		// Cancelled mid-solve: recycle the partial vector, publish
		// nothing, and do not fire the solve hook (the execution did
		// not complete).
		res.ReleaseTo(c.pool)
		return nil, res.Err
	}
	e.notifySolve(SolveStats{
		Iterations:  res.Iterations,
		Converged:   res.Converged,
		WarmStarted: init != nil,
		BaseSet:     len(base),
		BaseSetDur:  baseDur,
		SolveDur:    solveDur,
		Columns:     1,
	})
	return &RankResult{
		Query:        q,
		Scores:       res.Scores,
		Base:         base,
		Iterations:   res.Iterations,
		Converged:    res.Converged,
		RatesVersion: snap.version,
		Generation:   st.gen.num,
		BaseSetDur:   baseDur,
		SolveDur:     solveDur,
	}, nil
}

// RankManyCtx executes ObjectRank2 for a batch of queries through the
// blocked kernel: queries are solved in panels of at most the corpus
// BlockSize, each panel advancing all its base sets through one shared
// CSR sweep per iteration (rank.IterateBlock). Every query is
// warm-started from the cached global PageRank, exactly as Rank is, and
// each returned result is bit-identical to the corresponding single
// RankCtx call — blocking changes throughput, never answers.
//
// Results come back in query order. On cancellation the slice returned
// alongside ctx's error is PARTIAL: entries for queries whose panel
// completed before the cutoff are filled, the rest are nil (a cancelled
// panel publishes nothing, like a cancelled single solve). The solve
// hook fires once per completed PANEL with SolveStats.Columns set to
// the panel width — afq_kernel_solves_total therefore counts ⌈N/B⌉ for
// an N-query batch, the metric the /v1/query/batch acceptance check
// reads.
func (e *Engine) RankManyCtx(ctx context.Context, qs []*ir.Query) ([]*RankResult, error) {
	return e.rankManyAt(ctx, e.state.Load(), qs, nil, PanelF64)
}

// RankManyCtx is Engine.RankManyCtx under the pinned state.
func (p *Pinned) RankManyCtx(ctx context.Context, qs []*ir.Query) ([]*RankResult, error) {
	return p.e.rankManyAt(ctx, p.st, qs, nil, PanelF64)
}

// RankManyFromCtx is RankManyCtx with per-query warm starts: inits must
// be nil (global warm start everywhere) or have one entry per query,
// where a non-nil entry is handed to the kernel as that column's
// Options.Init (the §6.2 warm start) and a nil entry falls back to the
// global PageRank. The cache prewarmer uses this to refresh a panel of
// hot terms, each starting from its previous rates version's vector.
// A mis-counted inits slice returns ErrWarmStartMismatch.
func (p *Pinned) RankManyFromCtx(ctx context.Context, qs []*ir.Query, inits [][]float64) ([]*RankResult, error) {
	return p.e.rankManyAt(ctx, p.st, qs, inits, PanelF64)
}

// RankManyModeCtx is RankManyFromCtx with an explicit panel mode.
// PanelF32 halves the panels' sweep bandwidth at a ~1e-6 agreement
// cost (see PanelMode); it is reserved for warm-start producers —
// precompute, cache prewarm, profile basis — whose output seeds later
// exact solves rather than being served directly.
func (p *Pinned) RankManyModeCtx(ctx context.Context, qs []*ir.Query, inits [][]float64, mode PanelMode) ([]*RankResult, error) {
	return p.e.rankManyAt(ctx, p.st, qs, inits, mode)
}

// rankManyAt is the blocked counterpart of rankAt: the single execution
// path of every multi-solve batch. Each panel of up to BlockSize
// non-empty base sets runs through rank.IterateBlock (or
// rank.IterateBlock32 under PanelF32); per-column options replicate
// rankAt's exactly (corpus rank options + Init + Ctx), so PanelF64
// column results are bit-identical to single solves.
func (e *Engine) rankManyAt(ctx context.Context, st *engineState, qs []*ir.Query, inits [][]float64, mode PanelMode) ([]*RankResult, error) {
	return e.rankManyCorpusAt(ctx, st, st.gen.corpus, st.globalScores, qs, inits, mode)
}

// rankManyCorpusAt is rankManyAt against an explicit corpus view of the
// pinned state (see rankCorpusAt) with its matching warm-start source:
// st.globalScores on the authority path, the hub view's reversed-
// direction PageRank on hub-mode paths. The getter is invoked lazily so
// an all-empty batch never computes a warm-start vector.
func (e *Engine) rankManyCorpusAt(ctx context.Context, st *engineState, c *Corpus, globalFn func() []float64, qs []*ir.Query, inits [][]float64, mode PanelMode) ([]*RankResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if inits != nil && len(inits) != len(qs) {
		// A miscounted donation list is unrecoverable desync, not a stale
		// vector: no per-query pairing exists, so no degrade is possible.
		// Earlier builds panicked here and took the server down when a
		// prewarm list raced a corpus swap.
		return nil, fmt.Errorf("%w: %d init vectors for %d queries", ErrWarmStartMismatch, len(inits), len(qs))
	}
	out := make([]*RankResult, len(qs))
	if len(qs) == 0 {
		return out, ctx.Err()
	}
	snap := st.snap
	n := c.g.NumNodes()
	global := globalFn()

	for lo := 0; lo < len(qs); lo += c.blockSize {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		hi := lo + c.blockSize
		if hi > len(qs) {
			hi = len(qs)
		}

		// Per-query base sets. Empty base sets short-circuit to the
		// all-zero fixpoint without occupying a panel column, exactly
		// as rankAt does.
		type column struct {
			q       int // index into qs
			base    []ir.ScoredDoc
			baseDur time.Duration
		}
		var cols []column
		var jumps [][]float64
		var opts []rank.Options
		for i := lo; i < hi; i++ {
			t0 := time.Now()
			base := baseSetOf(c, qs[i])
			jump := c.pool.GetZeroed(n)
			baseDur := time.Since(t0)
			if len(base) == 0 {
				out[i] = &RankResult{Query: qs[i], Scores: jump, Base: base, Converged: true, RatesVersion: snap.version, Generation: st.gen.num, BaseSetDur: baseDur}
				continue
			}
			for _, sd := range base {
				jump[sd.Doc] = sd.Score
			}
			o := c.opts
			o.Init = global
			if inits != nil && inits[i] != nil && len(inits[i]) == n {
				// A donated warm start sized for another generation's
				// graph is silently dropped (see rankAt).
				o.Init = inits[i]
			}
			o.Ctx = ctx
			cols = append(cols, column{q: i, base: base, baseDur: baseDur})
			jumps = append(jumps, jump)
			opts = append(opts, o)
		}
		if len(cols) == 0 {
			continue
		}

		t1 := time.Now()
		var results []rank.Result
		if mode == PanelF32 {
			results = rank.IterateBlock32(c.g, snap.alpha, jumps, opts, c.workers, c.pool)
		} else {
			results = rank.IterateBlock(c.g, snap.alpha, jumps, opts, c.workers, c.pool)
		}
		solveDur := time.Since(t1)
		for _, j := range jumps {
			c.pool.Put(j)
		}

		stats := SolveStats{Converged: true, SolveDur: solveDur, Columns: len(cols)}
		var panelErr error
		for ci, res := range results {
			col := cols[ci]
			if res.Err != nil {
				// Cancelled mid-panel: recycle the partial vector and
				// publish nothing for this query (rankAt's contract).
				res.ReleaseTo(c.pool)
				panelErr = res.Err
				continue
			}
			if res.Iterations > stats.Iterations {
				stats.Iterations = res.Iterations
			}
			stats.Converged = stats.Converged && res.Converged
			stats.WarmStarted = stats.WarmStarted || opts[ci].Init != nil
			stats.BaseSet += len(col.base)
			stats.BaseSetDur += col.baseDur
			out[col.q] = &RankResult{
				Query:        qs[col.q],
				Scores:       res.Scores,
				Base:         col.base,
				Iterations:   res.Iterations,
				Converged:    res.Converged,
				RatesVersion: snap.version,
				Generation:   st.gen.num,
				BaseSetDur:   col.baseDur,
				SolveDur:     solveDur,
			}
		}
		if panelErr != nil {
			// Columns that converged before the cancellation landed are
			// kept in out (they are complete, consistent solves); the
			// cancelled columns published nothing. The panel's solve
			// hook is skipped — the execution did not complete.
			return out, panelErr
		}
		e.notifySolve(stats)
	}
	return out, ctx.Err()
}

// RankDeltaCtx executes ObjectRank2 incrementally from prev, a score
// vector previously converged for the SAME query under an earlier
// rates version of the pinned state's generation (rank.IterateDelta):
// one seeding sweep localizes the rate perturbation's residual
// frontier and push-style point updates repair just that region. The
// result agrees with a full solve within the convergence tolerance
// class — NOT bitwise — so this path is reserved for warm-start
// producers such as the cache prewarmer's rates-republish refresh;
// answer-serving paths must use RankCtx. A nil or stale prev (wrong
// generation) degrades to the standard globally warm-started solve —
// bit-identical to RankCtx — and a perturbation that
// disturbs too much of the graph completes as warm full sweeps; both
// are reported via SolveStats.DeltaFellBack.
func (p *Pinned) RankDeltaCtx(ctx context.Context, q *ir.Query, prev []float64) (*RankResult, error) {
	return p.e.rankDeltaAt(ctx, p.st, q, prev)
}

// rankDeltaAt mirrors rankAt with rank.IterateDelta as the kernel.
func (e *Engine) rankDeltaAt(ctx context.Context, st *engineState, q *ir.Query, prev []float64) (*RankResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c, snap := st.gen.corpus, st.snap
	t0 := time.Now()
	base := baseSetOf(c, q)
	jump := c.pool.GetZeroed(c.g.NumNodes())
	baseDur := time.Since(t0)
	if len(base) == 0 {
		return &RankResult{Query: q, Scores: jump, Base: base, Converged: true, RatesVersion: snap.version, Generation: st.gen.num, BaseSetDur: baseDur}, nil
	}
	for _, sd := range base {
		jump[sd.Doc] = sd.Score
	}
	opts := c.opts
	opts.Ctx = ctx
	if prev == nil || len(prev) != c.g.NumNodes() {
		// Stale or missing prev: degrade to the standard solve, global
		// warm start included, so the result is bit-identical to RankCtx.
		prev = nil
		opts.Init = st.globalScores()
	}
	t1 := time.Now()
	res := rank.IterateDelta(c.g, snap.alpha, jump, prev, opts, 0, c.workers, c.pool)
	solveDur := time.Since(t1)
	c.pool.Put(jump)
	if res.Err != nil {
		res.ReleaseTo(c.pool)
		return nil, res.Err
	}
	e.notifySolve(SolveStats{
		Iterations:    res.Iterations,
		Converged:     res.Converged,
		WarmStarted:   prev != nil,
		BaseSet:       len(base),
		BaseSetDur:    baseDur,
		SolveDur:      solveDur,
		Columns:       1,
		DeltaPushes:   res.Pushes,
		DeltaFellBack: res.FellBack,
	})
	return &RankResult{
		Query:        q,
		Scores:       res.Scores,
		Base:         base,
		Iterations:   res.Iterations,
		Converged:    res.Converged,
		RatesVersion: snap.version,
		Generation:   st.gen.num,
		BaseSetDur:   baseDur,
		SolveDur:     solveDur,
	}, nil
}

// GlobalRank returns the query-independent PageRank over the current
// generation's authority transfer data graph, computed once per
// generation (under the rates in force at first use) and cached. It is
// only ever used as a warm-start vector — the fixpoint a query
// converges to does not depend on it — so it is deliberately NOT
// invalidated by rate changes, matching the paper's protocol of
// global-initializing only the initial user query. A corpus swap DOES
// reset it: the new generation's graph has different nodes, so its
// warm-start vector is recomputed on first use.
func (e *Engine) GlobalRank() []float64 {
	s := e.state.Load().globalScores()
	out := make([]float64, len(s))
	copy(out, s)
	return out
}

// ObjectRankBaseline runs the modified original ObjectRank of
// Equation 16 (0/1 per-keyword base sets combined with normalizing
// exponents) for comparison surveys such as Table 2.
func (e *Engine) ObjectRankBaseline(q *ir.Query) *RankResult {
	st := e.state.Load()
	c, snap := st.gen.corpus, st.snap
	var baseSets [][]graph.NodeID
	for _, t := range q.Terms() {
		single := ir.NewQuery(t)
		var bs []graph.NodeID
		for _, sd := range c.ix.BaseSet(single) {
			bs = append(bs, graph.NodeID(sd.Doc))
		}
		baseSets = append(baseSets, bs)
	}
	res := rank.ObjectRankMulti(c.g, snap.rates, baseSets, c.opts)
	return &RankResult{
		Query:        q,
		Scores:       res.Scores,
		Iterations:   res.Iterations,
		Converged:    res.Converged,
		RatesVersion: snap.version,
		Generation:   st.gen.num,
	}
}

// HITSBaseline ranks by Kleinberg's hubs-and-authorities over the
// [Kle99]-style focused subgraph of the query's base set (base nodes
// plus radius hops), the second related-work baseline next to the
// original ObjectRank. Scores are HITS authority values; nodes outside
// the focused subgraph score zero. Iterations reports the HITS
// iteration count.
func (e *Engine) HITSBaseline(q *ir.Query, radius int) *RankResult {
	st := e.state.Load()
	c := st.gen.corpus
	base := baseSetOf(c, q)
	if len(base) == 0 {
		// An empty base set focuses on nothing; HITS's nil-subset
		// convention (whole graph) must not kick in.
		return &RankResult{Query: q, Scores: make([]float64, c.g.NumNodes()), Base: base, Converged: true, Generation: st.gen.num}
	}
	nodes := make([]graph.NodeID, len(base))
	for i, sd := range base {
		nodes[i] = graph.NodeID(sd.Doc)
	}
	focused := rank.FocusedSubgraph(c.g, nodes, radius)
	res := rank.HITS(c.g, focused, c.nopts.Threshold, c.nopts.MaxIters)
	return &RankResult{
		Query:      q,
		Scores:     res.Authorities,
		Base:       base,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Generation: st.gen.num,
	}
}

// Pinned is a consistent read-only view of the engine at one
// (generation, ratesVersion) pair. Every operation on a Pinned view —
// ranking, explaining, reformulating, rendering node IDs through
// Corpus — uses the corpus AND rates captured at Pin time, regardless
// of concurrent SetRates or SwapCorpus calls, so multi-step flows
// (rank → explain → reformulate → publish) compose without locks:
// compute against the pin, then publish with TrySetRates(rates,
// pin.Version()) and retry on conflict. A pin taken before a corpus
// swap keeps the old generation's graph and index alive until the pin
// is dropped; nothing it returns can mix generations.
type Pinned struct {
	e  *Engine
	st *engineState
}

// Pin captures the current (generation, rates snapshot) pair.
func (e *Engine) Pin() *Pinned { return &Pinned{e: e, st: e.state.Load()} }

// Version returns the pinned snapshot's rates version token.
func (p *Pinned) Version() uint64 { return p.st.snap.version }

// Generation returns the pinned corpus generation number.
func (p *Pinned) Generation() uint64 { return p.st.gen.num }

// Corpus returns the pinned generation's corpus: the graph and index
// every result of this view is sized for.
func (p *Pinned) Corpus() *Corpus { return p.st.gen.corpus }

// Rates returns a copy of the pinned rates.
func (p *Pinned) Rates() *graph.Rates { return p.st.snap.rates.Clone() }

// Engine returns the engine the view was pinned from.
func (p *Pinned) Engine() *Engine { return p.e }

// BaseSet computes the weighted query base set S(Q) over the pinned
// generation's index; see Engine.BaseSet.
func (p *Pinned) BaseSet(q *ir.Query) []ir.ScoredDoc {
	return baseSetOf(p.st.gen.corpus, q)
}

// GlobalRank returns the pinned generation's global PageRank
// warm-start vector (shared, read-only — see Engine.GlobalRank for the
// copying variant).
func (p *Pinned) globalScores() []float64 { return p.st.globalScores() }

// Rank executes ObjectRank2 under the pinned state, warm-started from
// the pinned generation's global PageRank.
func (p *Pinned) Rank(q *ir.Query) *RankResult {
	res, _ := p.e.rankAt(context.Background(), p.st, q, p.st.globalScores())
	return res
}

// RankCtx is Rank under a request context (see Engine.RankCtx for the
// cancellation contract).
func (p *Pinned) RankCtx(ctx context.Context, q *ir.Query) (*RankResult, error) {
	return p.e.rankAt(ctx, p.st, q, p.st.globalScores())
}

// RankFrom executes ObjectRank2 under the pinned state, warm-started
// from a previous score vector.
func (p *Pinned) RankFrom(q *ir.Query, init []float64) *RankResult {
	res, _ := p.e.rankAt(context.Background(), p.st, q, init)
	return res
}

// RankFromCtx is RankFrom under a request context.
func (p *Pinned) RankFromCtx(ctx context.Context, q *ir.Query, init []float64) (*RankResult, error) {
	return p.e.rankAt(ctx, p.st, q, init)
}

// RankCold executes ObjectRank2 under the pinned state with no warm
// start.
func (p *Pinned) RankCold(q *ir.Query) *RankResult {
	res, _ := p.e.rankAt(context.Background(), p.st, q, nil)
	return res
}

// RankColdCtx is RankCold under a request context.
func (p *Pinned) RankColdCtx(ctx context.Context, q *ir.Query) (*RankResult, error) {
	return p.e.rankAt(ctx, p.st, q, nil)
}

// Explain builds the explaining subgraph for target under the pinned
// state.
func (p *Pinned) Explain(res *RankResult, target graph.NodeID, opts ExplainOptions) (*Subgraph, error) {
	return p.e.explainAt(context.Background(), p.st, res, target, opts)
}

// ExplainCtx is Explain under a request context: the traversal stages
// and the Equation 10 flow-adjustment fixpoint poll ctx (the fixpoint
// once per iteration) and return ctx.Err() promptly on cancellation.
func (p *Pinned) ExplainCtx(ctx context.Context, res *RankResult, target graph.NodeID, opts ExplainOptions) (*Subgraph, error) {
	return p.e.explainAt(ctx, p.st, res, target, opts)
}

// Reformulate produces a reformulated query under the pinned state.
func (p *Pinned) Reformulate(q *ir.Query, feedback []*Subgraph, opts ReformulateOptions) (*Reformulation, error) {
	return p.e.reformulateAt(context.Background(), p.st, q, feedback, nil, opts)
}

// ReformulateCtx is Reformulate under a request context.
func (p *Pinned) ReformulateCtx(ctx context.Context, q *ir.Query, feedback []*Subgraph, opts ReformulateOptions) (*Reformulation, error) {
	return p.e.reformulateAt(ctx, p.st, q, feedback, nil, opts)
}

// ReformulateWeighted is Reformulate with per-feedback-object
// confidence weights, under the pinned state.
func (p *Pinned) ReformulateWeighted(q *ir.Query, feedback []*Subgraph, confidences []float64, opts ReformulateOptions) (*Reformulation, error) {
	return p.e.reformulateAt(context.Background(), p.st, q, feedback, confidences, opts)
}

// ReformulateWeightedCtx is ReformulateWeighted under a request
// context.
func (p *Pinned) ReformulateWeightedCtx(ctx context.Context, q *ir.Query, feedback []*Subgraph, confidences []float64, opts ReformulateOptions) (*Reformulation, error) {
	return p.e.reformulateAt(ctx, p.st, q, feedback, confidences, opts)
}
