// Package core implements the primary contribution of "Explaining and
// Reformulating Authority Flow Queries" (ICDE 2008): the ObjectRank2
// ranking semantics with an IR-weighted base set (Section 3), the
// explaining-subgraph construction and flow-adjustment algorithm
// (Section 4, Figure 8), and content- and structure-based query
// reformulation from user relevance feedback (Section 5).
package core

import (
	"fmt"
	"sync"

	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// Engine ties a data graph, its inverted index, and an authority
// transfer rate assignment into an ObjectRank2 query processor.
//
// Rates are mutable via SetRates because structure-based reformulation
// replaces them between feedback iterations; everything else is frozen.
// An Engine is safe for concurrent Rank/Explain calls as long as
// SetRates is not called concurrently.
type Engine struct {
	g       *graph.Graph
	ix      *ir.Index
	rates   *graph.Rates
	opts    rank.Options
	workers int

	// global caches the PageRank vector used to warm-start initial
	// queries (Section 6.2), computed on first use.
	globalOnce sync.Once
	global     []float64
}

// Config collects Engine construction parameters.
type Config struct {
	// BM25 parameters for the node index; zero value means DefaultBM25.
	BM25 ir.BM25Params
	// Rank options (damping, threshold, max iterations); zero fields
	// take the paper defaults (0.85, 0.002, 200).
	Rank rank.Options
	// Workers selects the power-iteration execution: 0 runs the serial
	// kernel (bitwise-deterministic, right for small graphs), -1 uses
	// all cores, and any positive value pins the worker count. Parallel
	// runs match serial ones up to floating-point summation order.
	Workers int
}

// NewEngine indexes the text of every node of g and returns an engine
// using the given authority transfer rates. The rates are cloned; later
// external mutation does not affect the engine.
func NewEngine(g *graph.Graph, rates *graph.Rates, cfg Config) (*Engine, error) {
	if g.Schema() != rates.Schema() {
		return nil, fmt.Errorf("core: rates defined over a different schema than the graph")
	}
	if err := rates.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.BM25 == (ir.BM25Params{}) {
		cfg.BM25 = ir.DefaultBM25()
	}
	ix := ir.BuildIndex(g.NumNodes(), func(i int) string { return g.Text(graph.NodeID(i)) }, cfg.BM25)
	return &Engine{g: g, ix: ix, rates: rates.Clone(), opts: cfg.Rank, workers: cfg.Workers}, nil
}

// Graph returns the engine's data graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Index returns the engine's inverted index.
func (e *Engine) Index() *ir.Index { return e.ix }

// Rates returns a copy of the current authority transfer rates.
func (e *Engine) Rates() *graph.Rates { return e.rates.Clone() }

// SetRates replaces the authority transfer rates (cloned). Used after a
// structure-based reformulation.
func (e *Engine) SetRates(r *graph.Rates) error {
	if r.Schema() != e.g.Schema() {
		return fmt.Errorf("core: rates defined over a different schema than the graph")
	}
	if err := r.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	e.rates = r.Clone()
	return nil
}

// Options returns the rank options in effect.
func (e *Engine) Options() rank.Options { return e.opts }

// BaseSet computes the weighted query base set S(Q): every node
// containing at least one query keyword, scored by IRScore(v, Q)
// (Equation 2) and normalized to sum to 1 so the scores act as
// random-jump probabilities. This is the defining difference between
// ObjectRank2 and the original 0/1 ObjectRank.
func (e *Engine) BaseSet(q *ir.Query) []ir.ScoredDoc {
	base := e.ix.BaseSet(q)
	sum := 0.0
	for _, sd := range base {
		sum += sd.Score
	}
	if sum > 0 {
		for i := range base {
			base[i].Score /= sum
		}
	}
	return base
}

// RankResult is the outcome of one ObjectRank2 execution.
type RankResult struct {
	// Query is the (possibly reformulated) query vector that was run.
	Query *ir.Query
	// Scores holds the converged ObjectRank2 score r^Q(v) per node.
	Scores []float64
	// Base is the normalized weighted base set used for random jumps.
	Base []ir.ScoredDoc
	// Iterations and Converged report the power-iteration behaviour;
	// iteration counts are the warm-start metric of Figures 14b–17b.
	Iterations int
	Converged  bool
}

// TopK returns the k best nodes by ObjectRank2 score.
func (r *RankResult) TopK(k int) []rank.Ranked { return rank.TopK(r.Scores, k) }

// TopKOfType returns the k best nodes of one node type.
func (r *RankResult) TopKOfType(g *graph.Graph, t graph.TypeID, k int) []rank.Ranked {
	return rank.TopKOfType(g, r.Scores, t, k)
}

// InBase reports whether v is in the result's base set.
func (r *RankResult) InBase(v graph.NodeID) bool {
	for _, sd := range r.Base {
		if graph.NodeID(sd.Doc) == v {
			return true
		}
	}
	return false
}

// Rank executes ObjectRank2 (Equation 4) for q, warm-started from the
// cached global PageRank as the paper does for initial queries.
func (e *Engine) Rank(q *ir.Query) *RankResult {
	return e.rankWith(q, e.globalScores())
}

// RankFrom executes ObjectRank2 warm-started from a previous score
// vector — the Section 6.2 optimization for reformulated queries, whose
// scores are expected to be close to the previous iteration's.
func (e *Engine) RankFrom(q *ir.Query, init []float64) *RankResult {
	return e.rankWith(q, init)
}

// RankCold executes ObjectRank2 with no warm start (the ablation
// baseline).
func (e *Engine) RankCold(q *ir.Query) *RankResult {
	return e.rankWith(q, nil)
}

func (e *Engine) rankWith(q *ir.Query, init []float64) *RankResult {
	base := e.BaseSet(q)
	jump := make([]float64, e.g.NumNodes())
	if len(base) == 0 {
		// No node contains any query keyword: the fixpoint is
		// identically zero, so skip the iteration (a warm start would
		// otherwise only decay toward zero).
		return &RankResult{Query: q, Scores: jump, Base: base, Converged: true}
	}
	for _, sd := range base {
		jump[sd.Doc] = sd.Score
	}
	opts := e.opts
	opts.Init = init
	res := e.run(jump, opts)
	return &RankResult{
		Query:      q,
		Scores:     res.Scores,
		Base:       base,
		Iterations: res.Iterations,
		Converged:  res.Converged,
	}
}

// run dispatches between the serial and parallel power-iteration
// kernels per the engine's Workers setting.
func (e *Engine) run(jump []float64, opts rank.Options) rank.Result {
	if e.workers != 0 {
		w := e.workers
		if w < 0 {
			w = 0 // RunParallel auto-sizes on <= 0
		}
		return rank.RunParallel(e.g, e.rates, jump, opts, w)
	}
	return rank.Run(e.g, e.rates, jump, opts)
}

// GlobalRank returns the query-independent PageRank over the authority
// transfer data graph, computed once (under the rates in force at first
// use) and cached. It is only ever used as a warm-start vector — the
// fixpoint a query converges to does not depend on it — so it is
// deliberately NOT invalidated by SetRates, matching the paper's
// protocol of global-initializing only the initial user query.
func (e *Engine) GlobalRank() []float64 {
	s := e.globalScores()
	out := make([]float64, len(s))
	copy(out, s)
	return out
}

func (e *Engine) globalScores() []float64 {
	e.globalOnce.Do(func() {
		e.global = rank.PageRank(e.g, e.rates, e.opts).Scores
	})
	return e.global
}

// ObjectRankBaseline runs the modified original ObjectRank of
// Equation 16 (0/1 per-keyword base sets combined with normalizing
// exponents) for comparison surveys such as Table 2.
func (e *Engine) ObjectRankBaseline(q *ir.Query) *RankResult {
	var baseSets [][]graph.NodeID
	for _, t := range q.Terms() {
		single := ir.NewQuery(t)
		var bs []graph.NodeID
		for _, sd := range e.ix.BaseSet(single) {
			bs = append(bs, graph.NodeID(sd.Doc))
		}
		baseSets = append(baseSets, bs)
	}
	res := rank.ObjectRankMulti(e.g, e.rates, baseSets, e.opts)
	return &RankResult{
		Query:      q,
		Scores:     res.Scores,
		Iterations: res.Iterations,
		Converged:  res.Converged,
	}
}

// HITSBaseline ranks by Kleinberg's hubs-and-authorities over the
// [Kle99]-style focused subgraph of the query's base set (base nodes
// plus radius hops), the second related-work baseline next to the
// original ObjectRank. Scores are HITS authority values; nodes outside
// the focused subgraph score zero. Iterations reports the HITS
// iteration count.
func (e *Engine) HITSBaseline(q *ir.Query, radius int) *RankResult {
	base := e.BaseSet(q)
	if len(base) == 0 {
		// An empty base set focuses on nothing; HITS's nil-subset
		// convention (whole graph) must not kick in.
		return &RankResult{Query: q, Scores: make([]float64, e.g.NumNodes()), Base: base, Converged: true}
	}
	nodes := make([]graph.NodeID, len(base))
	for i, sd := range base {
		nodes[i] = graph.NodeID(sd.Doc)
	}
	focused := rank.FocusedSubgraph(e.g, nodes, radius)
	res := rank.HITS(e.g, focused, e.opts.Threshold, e.opts.MaxIters)
	return &RankResult{
		Query:      q,
		Scores:     res.Authorities,
		Base:       base,
		Iterations: res.Iterations,
		Converged:  res.Converged,
	}
}
