package core

import (
	"context"
	"math"
	"testing"

	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"", ModeAuthority, true},
		{"authority", ModeAuthority, true},
		{"hub", ModeHub, true},
		{"combined", ModeCombined, true},
		{"Hub", "", false},
		{"cheirank", "", false},
		{"both", "", false},
	} {
		got, err := ParseMode(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseMode(%q) = (%q, %v), want (%q, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if ModeCombined.Explainable() {
		t.Error("combined must not be explainable")
	}
	if !ModeHub.Explainable() || !ModeAuthority.Explainable() {
		t.Error("authority and hub must be explainable")
	}
}

// TestHubBitIdenticalToPreReversedAuthority is the golden contract of
// hub mode: solving mode=hub on an engine over g must produce the exact
// bit pattern that mode=authority produces on an engine built over
// g.Reversed(). Both paths share the frozen arc arrays, so any drift
// means the hub path stopped reusing them verbatim.
func TestHubBitIdenticalToPreReversedAuthority(t *testing.T) {
	f := newFixture(t)
	eng := f.newEngine(t)

	pre, err := NewEngine(f.g.Reversed(), f.rates, Config{
		Rank: rank.Options{Damping: 0.85, Threshold: 1e-10, MaxIters: 500},
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, raw := range []string{"olap", "cube agrawal", "multidimensional", "icde"} {
		q := ir.ParseQuery(raw)
		hub, err := eng.Pin().RankHubCtx(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		auth, err := pre.Pin().RankCtx(context.Background(), ir.ParseQuery(raw))
		if err != nil {
			t.Fatal(err)
		}
		if len(hub.Scores) != len(auth.Scores) {
			t.Fatalf("%q: score lengths differ", raw)
		}
		for i := range hub.Scores {
			if math.Float64bits(hub.Scores[i]) != math.Float64bits(auth.Scores[i]) {
				t.Fatalf("%q node %d: hub %x != pre-reversed authority %x",
					raw, i, math.Float64bits(hub.Scores[i]), math.Float64bits(auth.Scores[i]))
			}
		}
		if hub.Iterations != auth.Iterations {
			t.Errorf("%q: iterations %d vs %d", raw, hub.Iterations, auth.Iterations)
		}
	}
}

// TestHubBlockedMatchesSingle pins the blocked hub panel to the single
// hub solve, mirroring the authority-side contract.
func TestHubBlockedMatchesSingle(t *testing.T) {
	f := newFixture(t)
	eng := f.newEngine(t)
	pin := eng.Pin()

	raws := []string{"olap", "cube", "agrawal", "databases icde"}
	qs := make([]*ir.Query, len(raws))
	for i, r := range raws {
		qs[i] = ir.ParseQuery(r)
	}
	many, err := pin.RankManyHubFromCtx(context.Background(), qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, raw := range raws {
		single, err := pin.RankHubCtx(context.Background(), ir.ParseQuery(raw))
		if err != nil {
			t.Fatal(err)
		}
		for v := range single.Scores {
			if math.Float64bits(many[i].Scores[v]) != math.Float64bits(single.Scores[v]) {
				t.Fatalf("%q node %d: blocked hub differs from single", raw, v)
			}
		}
	}
}

// TestCombinedIsGeometricMean checks the combined ranking against a
// from-scratch elementwise merge of the two directions.
func TestCombinedIsGeometricMean(t *testing.T) {
	f := newFixture(t)
	eng := f.newEngine(t)
	pin := eng.Pin()
	q := ir.ParseQuery("olap")

	auth, err := pin.RankCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	hub, err := pin.RankHubCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	comb, err := pin.RankCombinedCtx(context.Background(), ir.ParseQuery("olap"))
	if err != nil {
		t.Fatal(err)
	}
	for v := range comb.Scores {
		want := math.Sqrt(auth.Scores[v] * hub.Scores[v])
		if math.Float64bits(comb.Scores[v]) != math.Float64bits(want) {
			t.Fatalf("node %d: combined %v, want sqrt(%v*%v)=%v", v, comb.Scores[v], auth.Scores[v], hub.Scores[v], want)
		}
	}
	if comb.Generation != pin.Generation() || comb.RatesVersion != pin.Version() {
		t.Error("combined result not stamped with the pinned state")
	}
	if comb.Iterations != auth.Iterations+hub.Iterations {
		t.Errorf("combined iterations = %d, want %d", comb.Iterations, auth.Iterations+hub.Iterations)
	}
}

// TestRankModeDispatch checks the mode dispatcher reaches each path and
// rejects unknown modes.
func TestRankModeDispatch(t *testing.T) {
	f := newFixture(t)
	pin := f.newEngine(t).Pin()
	q := ir.ParseQuery("olap")

	authority, err := pin.RankModeCtx(context.Background(), q, ModeAuthority)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := pin.RankCtx(context.Background(), ir.ParseQuery("olap"))
	if err != nil {
		t.Fatal(err)
	}
	for v := range direct.Scores {
		if math.Float64bits(authority.Scores[v]) != math.Float64bits(direct.Scores[v]) {
			t.Fatal("ModeAuthority dispatch does not match RankCtx")
		}
	}
	if _, err := pin.RankModeCtx(context.Background(), q, Mode("bogus")); err == nil {
		t.Error("unknown mode must be rejected")
	}

	// Hub rankings order differently from authority on the fixture: v4
	// (cites three nodes, in no base set's shadow) is a strong hub.
	hub, err := pin.RankModeCtx(context.Background(), ir.ParseQuery("olap"), ModeHub)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	ha, aa := hub.TopK(7), direct.TopK(7)
	for i := range ha {
		if ha[i].Node != aa[i].Node {
			same = false
			break
		}
	}
	if same {
		t.Error("hub and authority rankings are identical on the fixture; the hub path is suspicious")
	}
}

// TestHubExplainFollowsReversedArcs: explaining a hub ranking walks the
// reversed direction, so arcs in the subgraph run opposite to the
// authority explanation's.
func TestHubExplainFollowsReversedArcs(t *testing.T) {
	f := newFixture(t)
	pin := f.newEngine(t).Pin()
	q := ir.ParseQuery("olap")

	hub, err := pin.RankHubCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// v4 cites v7/v5 — in the hub direction authority flows v7->v4.
	sg, err := pin.ExplainModeCtx(context.Background(), ModeHub, hub, f.ids["v4"], DefaultExplain())
	if err != nil {
		t.Fatal(err)
	}
	if sg.ExplainedScore() <= 0 {
		t.Fatalf("hub explanation of v4 carries no flow; score %v", sg.ExplainedScore())
	}
	for _, a := range sg.Arcs {
		if a.From == f.ids["v4"] && a.To == f.ids["v7"] {
			t.Error("subgraph contains the authority-direction arc v4->v7; hub explanations must use reversed arcs")
		}
	}

	// Combined is not explainable.
	if _, err := pin.ExplainModeCtx(context.Background(), ModeCombined, hub, f.ids["v4"], DefaultExplain()); err == nil {
		t.Error("combined mode must not be explainable")
	}
}
