package ir

import (
	"math"
	"sort"
)

// This file implements the link-free authority construction: when a
// corpus has no citation/containment structure at all, authority flow
// still works if the arcs are *derived* from content. Following the
// paper's observation that ObjectRank-style flow only needs a graph —
// not hyperlinks — we build a cluster graph whose arcs connect each
// document to its K nearest neighbors under the cosine similarity of
// tf-idf document language models. The resulting graph is handed to the
// ordinary datagen/graph pipeline, so snapshots, rate training, hub
// scores and audits all run unchanged on linkless corpora.

// DefaultClusterK is the number of nearest neighbors kept per document
// when ClusterOptions.K is unset.
const DefaultClusterK = 8

// DefaultClusterMaxDFRatio is the default document-frequency cutoff:
// terms occurring in more than this fraction of the collection carry
// almost no discriminative weight (their IDF is clamped near zero) but
// dominate the pairwise accumulation cost, so they are excluded from
// the similarity space entirely.
const DefaultClusterMaxDFRatio = 0.5

// ClusterOptions parameterizes ClusterGraph.
type ClusterOptions struct {
	// K is the number of nearest neighbors kept per document
	// (DefaultClusterK when <= 0).
	K int
	// MaxDFRatio excludes terms whose document frequency exceeds
	// MaxDFRatio * NumDocs (DefaultClusterMaxDFRatio when <= 0).
	// Stopwords and single-character tokens are always excluded.
	MaxDFRatio float64
	// MinSim drops neighbor candidates whose cosine similarity is
	// below the floor; 0 keeps every positive similarity.
	MinSim float64
}

// ClusterEdge is one directed knn arc of the cluster graph: From's
// language model has To among its K most similar peers, with the
// cosine similarity attached. Edges are emitted in ascending From
// order; within one source document, neighbors are ordered by
// descending similarity with ties broken on ascending To.
type ClusterEdge struct {
	From int32
	To   int32
	Sim  float64
}

// clusterTerm is one eligible term's posting list with the tf-idf
// weight of every posting precomputed (aligned by index).
type clusterTerm struct {
	ps []Posting
	w  []float64
}

// ClusterGraph builds the knn cluster graph over the indexed documents:
// each document is a tf-idf vector over the eligible vocabulary (terms
// with 2 <= DF <= MaxDFRatio*N, excluding stopwords), similarity is the
// cosine of those vectors, and each document keeps its top-K neighbors.
//
// The accumulation is term-at-a-time over sorted posting lists, so the
// result is fully deterministic — same index, same options, same edges,
// bit-identical similarities. Cost is sum over eligible terms of DF^2,
// which the MaxDFRatio cap keeps bounded.
func (ix *Index) ClusterGraph(o ClusterOptions) []ClusterEdge {
	if !ix.finalized {
		panic("ir: ClusterGraph before Finalize")
	}
	n := ix.NumDocs()
	if n == 0 {
		return nil
	}
	k := o.K
	if k <= 0 {
		k = DefaultClusterK
	}
	ratio := o.MaxDFRatio
	if ratio <= 0 {
		ratio = DefaultClusterMaxDFRatio
	}
	maxDF := int(ratio * float64(n))
	if maxDF < 2 {
		maxDF = 2
	}

	// Eligible vocabulary in sorted order: iteration order fixes the
	// floating-point accumulation order, which fixes the output bits.
	var vocab []string
	for _, t := range ix.TermsWithDF(2) {
		if ix.DF(t) <= maxDF {
			vocab = append(vocab, t)
		}
	}

	// Precompute per-posting tf-idf weights, per-document norms over
	// the eligible space, and the doc-major forward index (term
	// ordinal + own weight per document).
	terms := make([]clusterTerm, len(vocab))
	norm2 := make([]float64, n)
	type docTerm struct {
		term int32
		w    float64
	}
	forward := make([][]docTerm, n)
	for ti, t := range vocab {
		ps := ix.postings[t]
		idf := ix.IDF(t)
		ws := make([]float64, len(ps))
		for i, p := range ps {
			w := idf * ix.weightTF(p.Doc, float64(p.TF))
			ws[i] = w
			norm2[p.Doc] += w * w
			forward[p.Doc] = append(forward[p.Doc], docTerm{term: int32(ti), w: w})
		}
		terms[ti] = clusterTerm{ps: ps, w: ws}
	}

	// Term-at-a-time knn: for each document, accumulate dot products
	// against every co-occurring document, normalize to cosine, keep
	// the deterministic top-K.
	acc := make([]float64, n)
	var touched []int32
	var edges []ClusterEdge
	cands := make([]ClusterEdge, 0, 64)
	for d := 0; d < n; d++ {
		if norm2[d] == 0 {
			continue
		}
		touched = touched[:0]
		for _, dt := range forward[d] {
			term := terms[dt.term]
			for i, p := range term.ps {
				if int(p.Doc) == d {
					continue
				}
				if acc[p.Doc] == 0 {
					touched = append(touched, p.Doc)
				}
				acc[p.Doc] += dt.w * term.w[i]
			}
		}
		cands = cands[:0]
		nd := math.Sqrt(norm2[d])
		for _, j := range touched {
			if norm2[j] == 0 || acc[j] == 0 {
				continue
			}
			sim := acc[j] / (nd * math.Sqrt(norm2[j]))
			if sim <= 0 || sim < o.MinSim {
				continue
			}
			cands = append(cands, ClusterEdge{From: int32(d), To: j, Sim: sim})
		}
		for _, j := range touched {
			acc[j] = 0
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].Sim != cands[b].Sim {
				return cands[a].Sim > cands[b].Sim
			}
			return cands[a].To < cands[b].To
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		edges = append(edges, cands...)
	}
	return edges
}
