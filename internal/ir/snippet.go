package ir

import (
	"strings"
	"unicode"
)

// Snippet extracts a query-focused excerpt from text for result
// display: the window of at most width characters containing the most
// distinct query terms (earliest such window on ties), with ellipses
// marking truncation. The deployed demo uses it to show WHY a result
// matched, complementing the explaining subgraph that shows why it
// RANKED where it did. Returns a prefix of the text when no term
// occurs.
func Snippet(text string, q *Query, width int) string {
	if width <= 0 {
		width = 160
	}
	if len(text) <= width {
		return text
	}

	// Locate query-term occurrences as byte ranges.
	type hit struct{ start, end int }
	var hits []hit
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		if q.Has(strings.ToLower(text[start:end])) {
			hits = append(hits, hit{start, end})
		}
		start = -1
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(text))

	if len(hits) == 0 {
		return clipWord(text, width) + "…"
	}

	// Slide a window over the hits: choose the one covering the most
	// hits within width bytes.
	best, bestCount := 0, 0
	for i := range hits {
		count := 0
		for j := i; j < len(hits) && hits[j].end-hits[i].start <= width; j++ {
			count++
		}
		if count > bestCount {
			best, bestCount = i, count
		}
	}

	// Center the window on the covered hits.
	lo := hits[best].start
	hi := lo + width
	if hi > len(text) {
		hi = len(text)
		lo = hi - width
		if lo < 0 {
			lo = 0
		}
	}
	// Snap to rune and word boundaries.
	for lo > 0 && !isBoundary(text[lo-1]) {
		lo--
	}
	for hi < len(text) && !isBoundary(text[hi]) {
		hi++
	}
	out := strings.TrimSpace(text[lo:hi])
	if lo > 0 {
		out = "…" + out
	}
	if hi < len(text) {
		out += "…"
	}
	return out
}

func isBoundary(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '.' || b == ',' || b == ';'
}

// clipWord clips text to at most width bytes at a word boundary.
func clipWord(text string, width int) string {
	if len(text) <= width {
		return text
	}
	cut := width
	for cut > 0 && !isBoundary(text[cut]) {
		cut--
	}
	if cut == 0 {
		cut = width
	}
	return strings.TrimSpace(text[:cut])
}
