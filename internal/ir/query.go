package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Query is a weighted keyword query: the query vector Q = [w1, ..., wm]
// of Section 3. The paper defines a query as a TUPLE of keywords (order
// matters once weights differ), so terms are kept in insertion order.
// The initial query vector assigns weight 1 to every user keyword;
// reformulation (Section 5.1) appends expansion terms with smaller
// weights and may re-weight existing terms.
type Query struct {
	terms   []string
	weights []float64
	index   map[string]int
}

// NewQuery builds a query from raw keywords, each with weight 1.
// Keywords are lowercased; duplicates are merged (their weights add).
func NewQuery(keywords ...string) *Query {
	q := &Query{index: make(map[string]int, len(keywords))}
	for _, k := range keywords {
		for _, tok := range Tokenize(k) {
			q.Add(tok, 1)
		}
	}
	return q
}

// ParseQuery splits a free-text query string into keywords with weight
// 1 each, e.g. "query optimization" -> [query, optimization].
func ParseQuery(text string) *Query { return NewQuery(text) }

// Add adds weight w to term t (inserting it with weight w if absent).
func (q *Query) Add(t string, w float64) {
	t = strings.ToLower(t)
	if i, ok := q.index[t]; ok {
		q.weights[i] += w
		return
	}
	q.index[t] = len(q.terms)
	q.terms = append(q.terms, t)
	q.weights = append(q.weights, w)
}

// SetWeight sets the weight of term t, inserting it if absent.
func (q *Query) SetWeight(t string, w float64) {
	t = strings.ToLower(t)
	if i, ok := q.index[t]; ok {
		q.weights[i] = w
		return
	}
	q.index[t] = len(q.terms)
	q.terms = append(q.terms, t)
	q.weights = append(q.weights, w)
}

// Weight returns the weight of term t (0 if absent).
func (q *Query) Weight(t string) float64 {
	if i, ok := q.index[strings.ToLower(t)]; ok {
		return q.weights[i]
	}
	return 0
}

// Has reports whether t is a query term.
func (q *Query) Has(t string) bool {
	_, ok := q.index[strings.ToLower(t)]
	return ok
}

// Terms returns the query terms in insertion order. The slice is a copy.
func (q *Query) Terms() []string {
	out := make([]string, len(q.terms))
	copy(out, q.terms)
	return out
}

// Weights returns the term weights aligned with Terms. The slice is a
// copy.
func (q *Query) Weights() []float64 {
	out := make([]float64, len(q.weights))
	copy(out, q.weights)
	return out
}

// Len returns the number of distinct query terms.
func (q *Query) Len() int { return len(q.terms) }

// AverageWeight returns the mean term weight a_q used by the
// term-weight normalization of Section 5.1 (0 for an empty query).
func (q *Query) AverageWeight() float64 {
	if len(q.weights) == 0 {
		return 0
	}
	sum := 0.0
	for _, w := range q.weights {
		sum += w
	}
	return sum / float64(len(q.weights))
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	cp := &Query{
		terms:   append([]string(nil), q.terms...),
		weights: append([]float64(nil), q.weights...),
		index:   make(map[string]int, len(q.terms)),
	}
	for t, i := range q.index {
		cp.index[t] = i
	}
	return cp
}

// TopTerms returns up to k terms with the highest weights, useful for
// rendering reformulated queries.
func (q *Query) TopTerms(k int) []string {
	idx := make([]int, len(q.terms))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if q.weights[idx[a]] != q.weights[idx[b]] {
			return q.weights[idx[a]] > q.weights[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = q.terms[idx[i]]
	}
	return out
}

// String renders the query vector as "[olap:1.00 cubes:0.99]".
func (q *Query) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, t := range q.terms {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%.2f", t, q.weights[i])
	}
	b.WriteByte(']')
	return b.String()
}
