package ir

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Data Cube: A Relational Aggregation Operator", []string{"data", "cube", "a", "relational", "aggregation", "operator"}},
		{"Group-By, Cross-Tab, and Sub-Total.", []string{"group", "by", "cross", "tab", "and", "sub", "total"}},
		{"OLAP", []string{"olap"}},
		{"", nil},
		{"  ,.;  ", nil},
		{"ICDE 1997 Birmingham", []string{"icde", "1997", "birmingham"}},
		{"x", []string{"x"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeFiltered(t *testing.T) {
	got := TokenizeFiltered("The Range Queries in OLAP Data Cubes")
	want := []string{"range", "queries", "olap", "data", "cubes"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TokenizeFiltered = %v, want %v", got, want)
	}
	if !IsStopword("the") || IsStopword("olap") {
		t.Error("IsStopword misclassifies")
	}
}

func TestQueryBasics(t *testing.T) {
	q := NewQuery("OLAP")
	if q.Len() != 1 || q.Weight("olap") != 1 {
		t.Fatalf("NewQuery(OLAP) = %v", q)
	}
	q = ParseQuery("query optimization")
	if q.Len() != 2 || !q.Has("query") || !q.Has("OPTIMIZATION") {
		t.Fatalf("ParseQuery = %v", q)
	}
	q.Add("olap", 0.5)
	if w := q.Weight("olap"); w != 0.5 {
		t.Errorf("Weight(olap) = %v", w)
	}
	q.Add("olap", 0.25)
	if w := q.Weight("olap"); w != 0.75 {
		t.Errorf("Weight(olap) after second Add = %v", w)
	}
	q.SetWeight("olap", 2)
	if w := q.Weight("olap"); w != 2 {
		t.Errorf("SetWeight failed: %v", w)
	}
	if got := q.AverageWeight(); math.Abs(got-(1+1+2)/3.0) > 1e-12 {
		t.Errorf("AverageWeight = %v", got)
	}
	if top := q.TopTerms(1); len(top) != 1 || top[0] != "olap" {
		t.Errorf("TopTerms = %v", top)
	}
	if s := q.String(); !strings.Contains(s, "olap:2.00") {
		t.Errorf("String = %q", s)
	}
	cp := q.Clone()
	cp.SetWeight("query", 9)
	if q.Weight("query") == 9 {
		t.Error("Clone not deep")
	}
	// Duplicate keywords in the constructor merge.
	q2 := NewQuery("xml", "xml")
	if q2.Len() != 1 || q2.Weight("xml") != 2 {
		t.Errorf("duplicate keywords: %v", q2)
	}
	// Terms/Weights stay aligned and are copies.
	terms, weights := q.Terms(), q.Weights()
	if len(terms) != len(weights) {
		t.Fatal("Terms/Weights misaligned")
	}
	terms[0] = "mutated"
	if q.Terms()[0] == "mutated" {
		t.Error("Terms returned internal storage")
	}
}

func buildTestIndex() *Index {
	docs := []string{
		"Index Selection for OLAP",
		"Range Queries in OLAP Data Cubes",
		"Modeling Multidimensional Databases",
		"Data Cube A Relational Aggregation Operator",
		"", // empty document
		"olap olap olap olap",
	}
	return BuildIndex(len(docs), func(i int) string { return docs[i] }, DefaultBM25())
}

func TestIndexStats(t *testing.T) {
	ix := buildTestIndex()
	if ix.NumDocs() != 6 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	if ix.DF("olap") != 3 {
		t.Errorf("DF(olap) = %d", ix.DF("olap"))
	}
	if ix.DF("nonexistent") != 0 {
		t.Errorf("DF(nonexistent) = %d", ix.DF("nonexistent"))
	}
	if ix.TF(5, "olap") != 4 {
		t.Errorf("TF(5, olap) = %d", ix.TF(5, "olap"))
	}
	if ix.TF(2, "olap") != 0 {
		t.Errorf("TF(2, olap) = %d", ix.TF(2, "olap"))
	}
	if ix.AvgDocLen() <= 0 {
		t.Error("AvgDocLen should be positive")
	}
	if ix.Vocabulary() == 0 {
		t.Error("Vocabulary should be positive")
	}
}

func TestIDFMonotonicInDF(t *testing.T) {
	ix := buildTestIndex()
	// "olap" (df=3) must have lower IDF than "modeling" (df=1).
	if ix.IDF("olap") >= ix.IDF("modeling") {
		t.Errorf("IDF(olap)=%v should be < IDF(modeling)=%v", ix.IDF("olap"), ix.IDF("modeling"))
	}
	if ix.IDF("nonexistent") != 0 {
		t.Errorf("IDF of unseen term = %v", ix.IDF("nonexistent"))
	}
	// A term in more than half the docs is clamped to the floor, not
	// negative.
	docs := []string{"x a", "x b", "x c", "d"}
	ix2 := BuildIndex(len(docs), func(i int) string { return docs[i] }, DefaultBM25())
	if idf := ix2.IDF("x"); idf <= 0 {
		t.Errorf("clamped IDF = %v, want > 0", idf)
	}
}

func TestWeightProperties(t *testing.T) {
	ix := buildTestIndex()
	// Weight is 0 for absent terms and positive for present ones.
	if w := ix.Weight(2, "olap"); w != 0 {
		t.Errorf("Weight(absent) = %v", w)
	}
	if w := ix.Weight(0, "olap"); w <= 0 {
		t.Errorf("Weight(present) = %v", w)
	}
	// BM25 tf saturation: more occurrences weigh more, but sublinearly.
	w1 := ix.weightTF(0, 1)
	w2 := ix.weightTF(0, 2)
	w4 := ix.weightTF(0, 4)
	if !(w1 < w2 && w2 < w4) {
		t.Errorf("tf factor not monotone: %v %v %v", w1, w2, w4)
	}
	if w2-w1 <= w4-w2 {
		// strictly concave in tf
		t.Errorf("tf factor not saturating: %v %v %v", w1, w2, w4)
	}
}

func TestScoreAndBaseSet(t *testing.T) {
	ix := buildTestIndex()
	q := NewQuery("OLAP")
	base := ix.BaseSet(q)
	wantDocs := []int32{0, 1, 5}
	if len(base) != len(wantDocs) {
		t.Fatalf("BaseSet = %v", base)
	}
	for i, sd := range base {
		if sd.Doc != wantDocs[i] {
			t.Fatalf("BaseSet docs = %v, want %v", base, wantDocs)
		}
		if sd.Score <= 0 {
			t.Errorf("doc %d has non-positive score %v", sd.Doc, sd.Score)
		}
		if got := ix.Score(sd.Doc, q); math.Abs(got-sd.Score) > 1e-12 {
			t.Errorf("Score(%d) = %v, BaseSet score = %v", sd.Doc, got, sd.Score)
		}
	}
	// Non-members score 0.
	if s := ix.Score(2, q); s != 0 {
		t.Errorf("Score(non-member) = %v", s)
	}
	// Zero- and negative-weight terms contribute nothing.
	q2 := NewQuery()
	q2.SetWeight("olap", 0)
	if got := ix.BaseSet(q2); len(got) != 0 {
		t.Errorf("BaseSet with zero weights = %v", got)
	}
}

func TestMultiTermScoring(t *testing.T) {
	ix := buildTestIndex()
	q := NewQuery("data", "cubes")
	// Doc 1 contains both, doc 3 contains only "data".
	s1 := ix.Score(1, q)
	s3 := ix.Score(3, q)
	if s1 <= s3 {
		t.Errorf("two-term doc should outscore one-term doc: %v vs %v", s1, s3)
	}
	base := ix.BaseSet(q)
	if len(base) != 2 {
		t.Fatalf("BaseSet = %v", base)
	}
}

func TestQueryWeightScalesScore(t *testing.T) {
	ix := buildTestIndex()
	q1 := NewQuery("olap")
	q2 := NewQuery()
	q2.SetWeight("olap", 2)
	// With k3=1000 the query-side saturation is nearly linear, so
	// doubling the weight nearly doubles the score.
	r := ix.Score(0, q2) / ix.Score(0, q1)
	if r < 1.9 || r > 2.0 {
		t.Errorf("weight-2 score ratio = %v, want ~2", r)
	}
}

func TestAddOutOfOrderPanics(t *testing.T) {
	ix := NewIndex(DefaultBM25())
	ix.Add(1, "skip zero is fine") // hole-filling is allowed
	defer func() {
		if recover() == nil {
			t.Error("Add out of order should panic")
		}
	}()
	ix.Add(0, "going backwards is not")
}

func TestAddAfterFinalizePanics(t *testing.T) {
	ix := NewIndex(DefaultBM25())
	ix.Add(0, "a")
	ix.Finalize()
	ix.Finalize() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("Add after Finalize should panic")
		}
	}()
	ix.Add(1, "b")
}

func TestEmptyIndex(t *testing.T) {
	ix := BuildIndex(0, nil, DefaultBM25())
	if ix.NumDocs() != 0 || ix.AvgDocLen() != 0 {
		t.Error("empty index stats wrong")
	}
	if got := ix.BaseSet(NewQuery("olap")); len(got) != 0 {
		t.Errorf("BaseSet on empty index = %v", got)
	}
}

// TestPropertyScoreNonNegative: IRScore is non-negative for any
// documents and any single-term query drawn from the corpus.
func TestPropertyScoreNonNegative(t *testing.T) {
	prop := func(texts []string, probe string) bool {
		if len(texts) == 0 {
			return true
		}
		ix := BuildIndex(len(texts), func(i int) string { return texts[i] }, DefaultBM25())
		q := NewQuery(probe)
		for d := 0; d < len(texts); d++ {
			if ix.Score(int32(d), q) < 0 {
				return false
			}
		}
		for _, sd := range ix.BaseSet(q) {
			if sd.Score < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBaseSetMatchesContainment: a document is in BaseSet(q)
// iff it contains at least one positive-weight query term.
func TestPropertyBaseSetMatchesContainment(t *testing.T) {
	corpus := []string{
		"olap cube range", "xml indexing search", "mining graphs",
		"olap xml", "ranked keyword search", "",
	}
	ix := BuildIndex(len(corpus), func(i int) string { return corpus[i] }, DefaultBM25())
	prop := func(pick uint8) bool {
		words := []string{"olap", "xml", "search", "zzz"}
		q := NewQuery(words[int(pick)%len(words)])
		inBase := make(map[int32]bool)
		for _, sd := range ix.BaseSet(q) {
			inBase[sd.Doc] = true
		}
		for d, text := range corpus {
			contains := false
			for _, tok := range Tokenize(text) {
				if q.Has(tok) {
					contains = true
					break
				}
			}
			if contains != inBase[int32(d)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTermsWithDF(t *testing.T) {
	ix := buildTestIndex()
	all := ix.TermsWithDF(1)
	if len(all) == 0 {
		t.Fatal("no terms")
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatal("terms not sorted")
		}
	}
	for _, term := range all {
		if IsStopword(term) || len(term) <= 1 {
			t.Errorf("term %q should be filtered", term)
		}
	}
	// "olap" has df=3, so it survives minDF=3 but "modeling" (df=1)
	// does not.
	df3 := ix.TermsWithDF(3)
	found := map[string]bool{}
	for _, term := range df3 {
		found[term] = true
	}
	if !found["olap"] {
		t.Error("olap missing at minDF=3")
	}
	if found["modeling"] {
		t.Error("modeling present at minDF=3")
	}
}
