// Package ir implements the information-retrieval substrate of
// ObjectRank2 (Section 3 of the paper): tokenization, an inverted index
// over the text of data-graph nodes, Okapi BM25 term weighting
// (Equation 3), query vectors with per-term weights, and the
// IR-weighted base-set computation IRScore(v, Q) = v . Q (Equation 2).
package ir

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lowercase alphanumeric tokens. Hyphens and
// apostrophes inside words are treated as separators ("group-by" yields
// "group" and "by"), matching the keyword sets used in the paper's
// examples.
func Tokenize(text string) []string {
	var tokens []string
	start := -1
	flush := func(end int) {
		if start >= 0 {
			tokens = append(tokens, strings.ToLower(text[start:end]))
			start = -1
		}
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(text))
	return tokens
}

// stopwords is a compact English stopword list. Expansion terms are
// drawn from node text (Section 5.1 "ignoring stop words"), so common
// glue words must never enter a reformulated query.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true,
	"at": true, "be": true, "but": true, "by": true, "for": true,
	"from": true, "has": true, "have": true, "in": true, "is": true,
	"it": true, "its": true, "of": true, "on": true, "or": true,
	"that": true, "the": true, "their": true, "this": true, "to": true,
	"was": true, "were": true, "which": true, "with": true, "we": true,
	"using": true, "used": true, "use": true, "can": true, "our": true,
	"these": true, "than": true, "then": true, "via": true, "into": true,
	"over": true, "under": true, "based": true, "new": true, "also": true,
}

// IsStopword reports whether the (lowercase) token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// TokenizeFiltered tokenizes text and drops stopwords and single-rune
// tokens. Used when selecting query-expansion candidates.
func TokenizeFiltered(text string) []string {
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if len(t) > 1 && !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}
