package ir

import (
	"fmt"
	"sort"
)

// Params returns the index's BM25 parameters.
func (ix *Index) Params() BM25Params { return ix.params }

// DocLens returns the per-document lengths in characters. The slice
// aliases internal storage and must not be modified.
func (ix *Index) DocLens() []int32 { return ix.docLen }

// TotalLen returns the summed document length in characters (avdl's
// numerator, persisted so a reloaded index recomputes avdl with the
// exact same division).
func (ix *Index) TotalLen() int64 { return ix.totalLen }

// Terms returns every indexed term, sorted lexicographically. Unlike
// TermsWithDF this is the complete vocabulary — the enumeration a
// snapshot writer needs for a lossless dump.
func (ix *Index) Terms() []string {
	out := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// FromParts reassembles a finalized Index from its frozen parts,
// taking ownership of the slices (no copies; posting lists may alias
// one backing array). terms and postings are parallel: postings[i] is
// the posting list of terms[i], sorted by strictly ascending document
// ID with positive term frequencies. Every invariant Finalize
// establishes is re-checked so corrupt input yields an error, never an
// index that misbehaves later. avdl is recomputed from totalLen with
// the same division Finalize uses, keeping BM25 weights bit-identical
// to the originally built index.
func FromParts(params BM25Params, docLen []int32, totalLen int64, terms []string, postings [][]Posting) (*Index, error) {
	if len(terms) != len(postings) {
		return nil, fmt.Errorf("ir: %d terms but %d posting lists", len(terms), len(postings))
	}
	n := int32(len(docLen))
	m := make(map[string][]Posting, len(terms))
	for i, t := range terms {
		if t == "" {
			return nil, fmt.Errorf("ir: empty term at position %d", i)
		}
		if _, dup := m[t]; dup {
			return nil, fmt.Errorf("ir: duplicate term %q", t)
		}
		ps := postings[i]
		if len(ps) == 0 {
			return nil, fmt.Errorf("ir: term %q has no postings", t)
		}
		prev := int32(-1)
		for _, p := range ps {
			if p.Doc <= prev || p.Doc < 0 || p.Doc >= n {
				return nil, fmt.Errorf("ir: term %q has unsorted or out-of-range posting doc %d", t, p.Doc)
			}
			if p.TF <= 0 {
				return nil, fmt.Errorf("ir: term %q has non-positive term frequency %d in doc %d", t, p.TF, p.Doc)
			}
			prev = p.Doc
		}
		m[t] = ps
	}
	ix := &Index{
		params:    params,
		postings:  m,
		docLen:    docLen,
		totalLen:  totalLen,
		finalized: true,
	}
	if len(docLen) > 0 {
		ix.avdl = float64(totalLen) / float64(len(docLen))
	}
	return ix, nil
}
