package ir

import (
	"math"
	"sort"
)

// BM25Params are the Okapi BM25 constants of Equation 3. The paper's
// stated ranges: k1 in 1.0–2.0, b usually 0.75, k3 in 0–1000.
type BM25Params struct {
	K1 float64
	B  float64
	K3 float64
}

// DefaultBM25 returns the standard parameter choice (k1=1.2, b=0.75,
// k3=1000).
func DefaultBM25() BM25Params { return BM25Params{K1: 1.2, B: 0.75, K3: 1000} }

// Posting records the term frequency of one term in one document.
type Posting struct {
	Doc int32
	TF  int32
}

// Index is an in-memory inverted index over the documents of a data
// graph (each node is a document: its concatenated attribute values,
// per Section 2). It provides the Okapi BM25 weights W(v, t) of
// Equation 3 and the base-set scores IRScore(v, Q) of Equation 2.
//
// Build an index with NewIndex + Add + Finalize, or BuildIndex. A
// finalized Index is immutable and safe for concurrent reads.
type Index struct {
	params    BM25Params
	postings  map[string][]Posting
	docLen    []int32
	totalLen  int64
	avdl      float64
	finalized bool
}

// NewIndex returns an empty index with the given BM25 parameters.
func NewIndex(params BM25Params) *Index {
	return &Index{params: params, postings: make(map[string][]Posting)}
}

// Add indexes the text of document doc. Documents must be added in
// ascending doc order (the data-graph node order); Add panics
// otherwise, and after Finalize.
func (ix *Index) Add(doc int32, text string) {
	if ix.finalized {
		panic("ir: Add after Finalize")
	}
	if int(doc) < len(ix.docLen) {
		panic("ir: documents must be added in ascending order")
	}
	for int(doc) > len(ix.docLen) { // fill holes with empty docs
		ix.docLen = append(ix.docLen, 0)
	}
	toks := Tokenize(text)
	ix.docLen = append(ix.docLen, int32(len(text)))
	ix.totalLen += int64(len(text))
	// Count term frequencies locally, then append one posting per term.
	tf := make(map[string]int32, len(toks))
	for _, t := range toks {
		tf[t]++
	}
	for t, f := range tf {
		ix.postings[t] = append(ix.postings[t], Posting{Doc: doc, TF: f})
	}
}

// Finalize freezes the index: computes avdl and sorts posting lists by
// document ID.
func (ix *Index) Finalize() {
	if ix.finalized {
		return
	}
	if n := len(ix.docLen); n > 0 {
		ix.avdl = float64(ix.totalLen) / float64(n)
	}
	for _, ps := range ix.postings {
		sort.Slice(ps, func(i, j int) bool { return ps[i].Doc < ps[j].Doc })
	}
	ix.finalized = true
}

// BuildIndex indexes n documents provided by text and finalizes the
// result.
func BuildIndex(n int, text func(i int) string, params BM25Params) *Index {
	ix := NewIndex(params)
	for i := 0; i < n; i++ {
		ix.Add(int32(i), text(i))
	}
	ix.Finalize()
	return ix
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return len(ix.docLen) }

// AvgDocLen returns avdl, the average document length in characters.
func (ix *Index) AvgDocLen() float64 { return ix.avdl }

// DF returns the document frequency of term t.
func (ix *Index) DF(term string) int { return len(ix.postings[term]) }

// TF returns the term frequency of term in doc (0 if absent).
func (ix *Index) TF(doc int32, term string) int {
	ps := ix.postings[term]
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Doc >= doc })
	if i < len(ps) && ps[i].Doc == doc {
		return int(ps[i].TF)
	}
	return 0
}

// Postings returns the posting list of term. The slice aliases internal
// storage and must not be modified.
func (ix *Index) Postings(term string) []Posting { return ix.postings[term] }

// idfFloor keeps IDF positive: base-set membership requires IRScore > 0
// for every node that contains a query keyword, so terms occurring in
// more than half the collection are clamped to a tiny positive weight
// instead of Equation 3's (negative) log odds.
const idfFloor = 1e-6

// IDF returns the Robertson–Sparck-Jones inverse document frequency
// ln((n - df + 0.5)/(df + 0.5)) of Equation 3, clamped to a small
// positive floor.
func (ix *Index) IDF(term string) float64 {
	n := float64(len(ix.docLen))
	df := float64(ix.DF(term))
	if df == 0 {
		return 0
	}
	idf := math.Log((n - df + 0.5) / (df + 0.5))
	if idf < idfFloor {
		return idfFloor
	}
	return idf
}

// weightTF returns the document-side BM25 factor
// (k1+1)·tf / (K + tf) with K = k1·((1-b) + b·dl/avdl).
func (ix *Index) weightTF(doc int32, tf float64) float64 {
	k1, b := ix.params.K1, ix.params.B
	dl := float64(ix.docLen[doc])
	avdl := ix.avdl
	if avdl == 0 {
		avdl = 1
	}
	k := k1 * ((1 - b) + b*dl/avdl)
	return (k1 + 1) * tf / (k + tf)
}

// Weight returns the Okapi document-term weight W(v, t) of Equation 3
// (IDF times the saturated term-frequency factor), 0 if t does not
// occur in doc.
func (ix *Index) Weight(doc int32, term string) float64 {
	tf := ix.TF(doc, term)
	if tf == 0 {
		return 0
	}
	return ix.IDF(term) * ix.weightTF(doc, float64(tf))
}

// qtfSat returns the query-side BM25 factor (k3+1)·qtf / (k3 + qtf).
// With the default large k3 this is nearly linear in the query-term
// weight, so reformulated weights keep their intended proportions.
func (ix *Index) qtfSat(qtf float64) float64 {
	k3 := ix.params.K3
	return (k3 + 1) * qtf / (k3 + qtf)
}

// Score returns IRScore(v, Q) = v · Q (Equation 2): the dot product of
// the document's Okapi weight vector with the query vector, with each
// query weight passed through BM25's query-side saturation.
func (ix *Index) Score(doc int32, q *Query) float64 {
	s := 0.0
	terms := q.terms
	for i, t := range terms {
		w := q.weights[i]
		if w <= 0 {
			continue
		}
		dw := ix.Weight(doc, t)
		if dw == 0 {
			continue
		}
		s += ix.qtfSat(w) * dw
	}
	return s
}

// ScoredDoc is one base-set member with its (unnormalized) IR score.
type ScoredDoc struct {
	Doc   int32
	Score float64
}

// BaseSet returns every document containing at least one query term,
// with IRScore(v, Q) attached, sorted by ascending document ID. This is
// the query base set S(Q) of Section 3; the caller normalizes scores to
// sum to one before using them as random-jump probabilities.
func (ix *Index) BaseSet(q *Query) []ScoredDoc {
	seen := make(map[int32]float64)
	for i, t := range q.terms {
		w := q.weights[i]
		if w <= 0 {
			continue
		}
		ps := ix.postings[t]
		if len(ps) == 0 {
			continue
		}
		idf := ix.IDF(t)
		qs := ix.qtfSat(w)
		for _, p := range ps {
			seen[p.Doc] += qs * idf * ix.weightTF(p.Doc, float64(p.TF))
		}
	}
	out := make([]ScoredDoc, 0, len(seen))
	for d, s := range seen {
		out = append(out, ScoredDoc{Doc: d, Score: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
	return out
}

// Vocabulary returns the number of distinct indexed terms.
func (ix *Index) Vocabulary() int { return len(ix.postings) }

// TermsWithDF returns every indexed term whose document frequency is at
// least minDF, sorted lexicographically. Stopwords and single-character
// tokens are excluded: this is the vocabulary enumeration used to build
// precomputed per-keyword score stores, where such terms never make
// useful query keywords.
func (ix *Index) TermsWithDF(minDF int) []string {
	var out []string
	for t, ps := range ix.postings {
		if len(ps) >= minDF && len(t) > 1 && !stopwords[t] {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}
