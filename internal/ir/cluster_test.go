package ir

import (
	"reflect"
	"testing"
)

// clusterCorpus is a tiny corpus with two clear content clusters (olap
// vs xml) plus a ubiquitous term shared by everything.
func clusterCorpus() []string {
	return []string{
		"olap cube aggregation shared",
		"olap cube warehouse shared",
		"olap aggregation warehouse shared",
		"xml xpath twig shared",
		"xml xpath schemas shared",
		"xml twig schemas shared",
	}
}

func buildClusterIndex(t *testing.T, docs []string) *Index {
	t.Helper()
	return BuildIndex(len(docs), func(i int) string { return docs[i] }, DefaultBM25())
}

func TestClusterGraphGroupsByContent(t *testing.T) {
	ix := buildClusterIndex(t, clusterCorpus())
	edges := ix.ClusterGraph(ClusterOptions{K: 2})
	if len(edges) == 0 {
		t.Fatal("no cluster edges")
	}
	cluster := func(d int32) int { return int(d) / 3 } // docs 0-2 olap, 3-5 xml
	for _, e := range edges {
		if e.From == e.To {
			t.Fatalf("self edge %+v", e)
		}
		if e.Sim <= 0 || e.Sim > 1+1e-12 {
			t.Fatalf("cosine out of range: %+v", e)
		}
		if cluster(e.From) != cluster(e.To) {
			t.Errorf("cross-cluster edge %+v: knn should stay within the content cluster", e)
		}
	}
	// Every document has same-cluster peers, so every document should
	// keep exactly K neighbors.
	perDoc := map[int32]int{}
	for _, e := range edges {
		perDoc[e.From]++
	}
	for d := int32(0); d < 6; d++ {
		if perDoc[d] != 2 {
			t.Errorf("doc %d has %d neighbors, want 2", d, perDoc[d])
		}
	}
}

func TestClusterGraphDeterministic(t *testing.T) {
	a := buildClusterIndex(t, clusterCorpus()).ClusterGraph(ClusterOptions{K: 3})
	b := buildClusterIndex(t, clusterCorpus()).ClusterGraph(ClusterOptions{K: 3})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ClusterGraph is not deterministic across identical builds")
	}
	// Ordering contract: ascending From; per source descending Sim with
	// ascending To on ties.
	for i := 1; i < len(a); i++ {
		p, q := a[i-1], a[i]
		if q.From < p.From {
			t.Fatalf("edges not in ascending From order: %+v before %+v", p, q)
		}
		if q.From == p.From {
			if q.Sim > p.Sim || (q.Sim == p.Sim && q.To <= p.To) {
				t.Fatalf("neighbor order violated: %+v before %+v", p, q)
			}
		}
	}
}

func TestClusterGraphMaxDFExcludesUbiquitousTerms(t *testing.T) {
	// Documents 0/1 share only the ubiquitous term "shared" (DF = 4 of
	// 4 docs); documents 2/3 genuinely overlap. With the DF cap active,
	// "shared" is outside the similarity space, so no 0-1 edge exists.
	docs := []string{
		"olap cube shared",
		"xml twig shared",
		"mining patterns shared",
		"mining patterns shared frequent",
	}
	ix := buildClusterIndex(t, docs)
	edges := ix.ClusterGraph(ClusterOptions{K: 3, MaxDFRatio: 0.9})
	for _, e := range edges {
		lo, hi := e.From, e.To
		if lo > hi {
			lo, hi = hi, lo
		}
		if !(lo == 2 && hi == 3) {
			t.Fatalf("unexpected edge %+v: only docs 2 and 3 share discriminative terms", e)
		}
	}
	if len(edges) != 2 {
		t.Fatalf("want the symmetric 2<->3 pair, got %d edges: %+v", len(edges), edges)
	}
}

func TestClusterGraphMinSimFloor(t *testing.T) {
	ix := buildClusterIndex(t, clusterCorpus())
	all := ix.ClusterGraph(ClusterOptions{K: 5})
	floored := ix.ClusterGraph(ClusterOptions{K: 5, MinSim: 0.999})
	if len(floored) >= len(all) {
		t.Fatalf("MinSim floor did not drop weak edges: %d vs %d", len(floored), len(all))
	}
	for _, e := range floored {
		if e.Sim < 0.999 {
			t.Fatalf("edge below floor survived: %+v", e)
		}
	}
}

func TestClusterGraphEmptyAndSingleton(t *testing.T) {
	if got := buildClusterIndex(t, nil).ClusterGraph(ClusterOptions{}); len(got) != 0 {
		t.Fatalf("empty corpus produced edges: %+v", got)
	}
	if got := buildClusterIndex(t, []string{"olap cube"}).ClusterGraph(ClusterOptions{}); len(got) != 0 {
		t.Fatalf("singleton corpus produced edges: %+v", got)
	}
}
