package ir

import (
	"strings"
	"testing"
)

func TestSnippetShortTextUnchanged(t *testing.T) {
	q := NewQuery("olap")
	if got := Snippet("short olap text", q, 160); got != "short olap text" {
		t.Errorf("Snippet = %q", got)
	}
}

func TestSnippetCentersOnTerms(t *testing.T) {
	prefix := strings.Repeat("filler words here and there ", 20)
	text := prefix + "the olap cube aggregation core " + prefix
	q := NewQuery("olap", "cube")
	got := Snippet(text, q, 60)
	if !strings.Contains(got, "olap") || !strings.Contains(got, "cube") {
		t.Errorf("snippet missed terms: %q", got)
	}
	if len(got) > 60+20 { // width plus boundary snap + ellipses
		t.Errorf("snippet too long: %d bytes", len(got))
	}
	if !strings.HasPrefix(got, "…") || !strings.HasSuffix(got, "…") {
		t.Errorf("snippet not marked as truncated: %q", got)
	}
}

func TestSnippetPicksDensestWindow(t *testing.T) {
	// One lonely hit early, two hits close together late: the window
	// must cover the pair.
	text := "olap " + strings.Repeat("x ", 100) + "olap cube end"
	q := NewQuery("olap", "cube")
	got := Snippet(text, q, 30)
	if !strings.Contains(got, "cube") {
		t.Errorf("snippet chose the sparse window: %q", got)
	}
}

func TestSnippetNoHits(t *testing.T) {
	text := strings.Repeat("unrelated words ", 30)
	got := Snippet(text, NewQuery("olap"), 40)
	if len(got) > 45 {
		t.Errorf("no-hit snippet too long: %q", got)
	}
	if !strings.HasSuffix(got, "…") {
		t.Errorf("no-hit snippet not marked truncated: %q", got)
	}
}

func TestSnippetDefaultsAndEdges(t *testing.T) {
	if got := Snippet("", NewQuery("x"), 0); got != "" {
		t.Errorf("empty text = %q", got)
	}
	// Width 0 falls back to the default.
	long := strings.Repeat("word olap ", 50)
	got := Snippet(long, NewQuery("olap"), 0)
	if len(got) == 0 || len(got) > 200 {
		t.Errorf("default-width snippet = %d bytes", len(got))
	}
}

func FuzzSnippet(f *testing.F) {
	f.Add("the olap cube aggregation", "olap", 20)
	f.Add("", "", 0)
	f.Add(strings.Repeat("ü ", 100), "ü", 10)
	f.Fuzz(func(t *testing.T, text, term string, width int) {
		if width > 1<<20 || width < -1<<20 {
			return
		}
		got := Snippet(text, NewQuery(term), width)
		// Never longer than the input plus ellipses markers.
		if len(got) > len(text)+6 {
			t.Fatalf("snippet grew: %d > %d", len(got), len(text))
		}
	})
}
