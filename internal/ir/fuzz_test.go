package ir

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTokenize: tokenization never panics, produces only non-empty
// lowercase alphanumeric tokens, and is idempotent (tokenizing the join
// of tokens yields the same tokens).
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"Data Cube: A Relational Aggregation Operator",
		"Group-By, Cross-Tab, and Sub-Total.",
		"ICDE 1997 Birmingham",
		"ünïcode teXT ΣΩ",
		"", "   ", "a-b_c.d",
		"日本語 text mixed ascii",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		toks := Tokenize(text)
		for _, tok := range toks {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q contains separator rune %q", tok, r)
				}
			}
			// Lowercasing is idempotent. (Some uppercase runes have no
			// lowercase mapping, so "no IsUpper rune" would be wrong.)
			if tok != strings.ToLower(tok) {
				t.Fatalf("token %q not lowercased", tok)
			}
		}
		// Filtered tokenization is a subset.
		filtered := TokenizeFiltered(text)
		if len(filtered) > len(toks) {
			t.Fatalf("filter grew tokens: %d > %d", len(filtered), len(toks))
		}
	})
}

// FuzzQuery: query construction never panics and keeps terms/weights
// aligned for arbitrary inputs.
func FuzzQuery(f *testing.F) {
	f.Add("olap", "data cubes", 0.5)
	f.Add("", "", -1.0)
	f.Add("ünïcode", "ΣΩ 123", 1e300)
	f.Fuzz(func(t *testing.T, kw1, kw2 string, w float64) {
		q := NewQuery(kw1, kw2)
		q.Add(kw1, w)
		q.SetWeight(kw2, w)
		terms, weights := q.Terms(), q.Weights()
		if len(terms) != len(weights) {
			t.Fatal("terms/weights misaligned")
		}
		if q.Len() != len(terms) {
			t.Fatal("Len mismatch")
		}
		_ = q.String()
		_ = q.AverageWeight()
		_ = q.TopTerms(3)
		cp := q.Clone()
		if cp.Len() != q.Len() {
			t.Fatal("clone length mismatch")
		}
	})
}

// FuzzIndexScore: scoring arbitrary documents with arbitrary queries
// never panics and never yields negative or NaN scores for positive
// query weights.
func FuzzIndexScore(f *testing.F) {
	f.Add("olap cubes", "range olap queries", "olap")
	f.Add("", "x", "y")
	f.Fuzz(func(t *testing.T, doc1, doc2, term string) {
		docs := []string{doc1, doc2}
		ix := BuildIndex(len(docs), func(i int) string { return docs[i] }, DefaultBM25())
		q := NewQuery(term)
		for d := int32(0); d < 2; d++ {
			s := ix.Score(d, q)
			if s < 0 || s != s {
				t.Fatalf("score(%d) = %v", d, s)
			}
		}
		for _, sd := range ix.BaseSet(q) {
			if sd.Score < 0 || sd.Score != sd.Score {
				t.Fatalf("base score = %v", sd.Score)
			}
		}
	})
}
