package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates nodes and edges and freezes them into an
// immutable Graph. It validates conformance to the schema graph as
// defined in Section 2 of the paper: every node's label must be a
// schema node and every edge's endpoint types must match its edge
// type's declaration.
type Builder struct {
	schema *Schema
	labels []TypeID
	attrs  [][]Attr
	edges  []Edge
	err    error
}

// NewBuilder returns a Builder for data graphs conforming to s.
func NewBuilder(s *Schema) *Builder {
	return &Builder{schema: s}
}

// AddNode appends a node with the given label and attribute tuple and
// returns its ID. Node IDs are dense and assigned in insertion order.
func (b *Builder) AddNode(label TypeID, attrs ...Attr) NodeID {
	if b.err == nil && (label < 0 || int(label) >= b.schema.NumNodeTypes()) {
		b.err = fmt.Errorf("graph: node %d has unknown label %d", len(b.labels), label)
	}
	b.labels = append(b.labels, label)
	b.attrs = append(b.attrs, attrs)
	return NodeID(len(b.labels) - 1)
}

// AddEdge appends a typed data edge. Endpoint conformance is checked:
// the labels of from and to must equal the edge type's declared source
// and target types. Errors are deferred and reported by Build.
func (b *Builder) AddEdge(from, to NodeID, t EdgeTypeID) {
	if b.err == nil {
		switch {
		case int(from) >= len(b.labels) || from < 0:
			b.err = fmt.Errorf("graph: edge references unknown source node %d", from)
		case int(to) >= len(b.labels) || to < 0:
			b.err = fmt.Errorf("graph: edge references unknown target node %d", to)
		case int(t) >= b.schema.NumEdgeTypes() || t < 0:
			b.err = fmt.Errorf("graph: edge references unknown edge type %d", t)
		default:
			et := b.schema.EdgeTypeInfo(t)
			if b.labels[from] != et.From || b.labels[to] != et.To {
				b.err = fmt.Errorf(
					"graph: edge %d->%d does not conform to type %s-%s->%s (got %s->%s)",
					from, to,
					b.schema.TypeName(et.From), et.Role, b.schema.TypeName(et.To),
					b.schema.TypeName(b.labels[from]), b.schema.TypeName(b.labels[to]))
			}
		}
	}
	b.edges = append(b.edges, Edge{From: from, To: to, Type: t})
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build freezes the accumulated nodes and edges into a Graph, deriving
// the authority transfer data graph: for every data edge u->v of schema
// type e it creates a forward arc u->v of transfer type (e, Forward)
// and a backward arc v->u of type (e, Backward), each carrying the
// inverse per-type out-degree of its source (Equation 1). Build returns
// the first conformance error encountered, if any.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := len(b.labels)
	g := &Graph{
		schema:   b.schema,
		labels:   b.labels,
		attrs:    b.attrs,
		numEdges: len(b.edges),
	}

	// Count outgoing and incoming transfer arcs per node.
	outCount := make([]int32, n+1)
	inCount := make([]int32, n+1)
	for _, e := range b.edges {
		outCount[e.From]++ // forward arc leaves From
		outCount[e.To]++   // backward arc leaves To
		inCount[e.To]++    // forward arc enters To
		inCount[e.From]++  // backward arc enters From
	}

	g.arcStart = prefixSum(outCount)
	g.rarcStart = prefixSum(inCount)
	g.arcs = make([]Arc, 2*len(b.edges))
	g.rarcs = make([]Arc, 2*len(b.edges))

	// Fill forward arcs; use per-node cursors.
	outCur := make([]int32, n)
	copy(outCur, g.arcStart[:n])
	for _, e := range b.edges {
		g.arcs[outCur[e.From]] = Arc{To: e.To, Type: TransferType(e.Type, Forward)}
		outCur[e.From]++
		g.arcs[outCur[e.To]] = Arc{To: e.From, Type: TransferType(e.Type, Backward)}
		outCur[e.To]++
	}

	// Sort each node's arc run by type for cache-friendly per-type
	// scans, then compute inverse per-type out-degrees.
	for v := 0; v < n; v++ {
		run := g.arcs[g.arcStart[v]:g.arcStart[v+1]]
		sort.Slice(run, func(i, j int) bool {
			if run[i].Type != run[j].Type {
				return run[i].Type < run[j].Type
			}
			return run[i].To < run[j].To
		})
		for i := 0; i < len(run); {
			j := i
			for j < len(run) && run[j].Type == run[i].Type {
				j++
			}
			inv := float32(1) / float32(j-i)
			for k := i; k < j; k++ {
				run[k].InvDeg = inv
			}
			i = j
		}
	}

	// The reverse CSR stores, per incoming arc, the SOURCE's inverse
	// out-degree for the arc's type, so InArcs callers can compute arc
	// weights without touching the forward CSR. Every forward-CSR entry
	// (u -> a.To) maps to exactly one reverse-CSR entry at a.To, with
	// the same type and InvDeg, so the finished forward CSR fills the
	// reverse CSR in one linear pass.
	//
	// Ordering invariant: each node's reverse run is sorted by (source,
	// type) — the exact order in which a source-major scatter sweep
	// (ascending source, out-arcs sorted by type) would deposit
	// contributions onto the node. The rank kernel's gather formulation
	// relies on this to accumulate floating-point sums in the same order
	// as the scatter formulation, making serial results bit-identical
	// across the two. The linear fill below already visits sources in
	// ascending order and each source's out-arcs in (type, to) order, so
	// the runs come out sorted without an extra pass; the sort is kept
	// as a guard against future fill-order changes (it is O(arcs) on
	// already-sorted input for the library's pdqsort).
	inCur := make([]int32, n)
	copy(inCur, g.rarcStart[:n])
	for u := 0; u < n; u++ {
		for _, a := range g.OutArcs(NodeID(u)) {
			g.rarcs[inCur[a.To]] = Arc{To: NodeID(u), Type: a.Type, InvDeg: a.InvDeg}
			inCur[a.To]++
		}
	}
	for v := 0; v < n; v++ {
		run := g.rarcs[g.rarcStart[v]:g.rarcStart[v+1]]
		sort.Slice(run, func(i, j int) bool {
			if run[i].To != run[j].To {
				return run[i].To < run[j].To
			}
			return run[i].Type < run[j].Type
		})
	}

	return g, nil
}

// MustBuild is Build panicking on error; intended for statically known
// graphs such as test fixtures.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// prefixSum converts per-index counts (with one slot of slack at the
// end) into CSR start offsets of length len(counts).
func prefixSum(counts []int32) []int32 {
	var sum int32
	for i, c := range counts {
		counts[i] = sum
		sum += c
	}
	return counts
}
