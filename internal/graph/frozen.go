package graph

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Frozen is the raw dump of a frozen Graph: every derived array exactly
// as the Builder produced it. Snapshots persist this final CSR form and
// reload it verbatim, so a loaded graph cannot differ from the built
// one in arc order — which bit-identical kernel results depend on. The
// slices returned by Graph.Frozen alias the graph's internal storage
// and must be treated as read-only.
type Frozen struct {
	Schema    *Schema
	Labels    []TypeID
	Attrs     [][]Attr
	NumEdges  int
	ArcStart  []int32
	Arcs      []Arc
	RarcStart []int32
	Rarcs     []Arc
}

// Frozen returns the graph's raw frozen parts for serialization.
func (g *Graph) Frozen() Frozen {
	return Frozen{
		Schema:    g.schema,
		Labels:    g.labels,
		Attrs:     g.attrs,
		NumEdges:  g.numEdges,
		ArcStart:  g.arcStart,
		Arcs:      g.arcs,
		RarcStart: g.rarcStart,
		Rarcs:     g.rarcs,
	}
}

// FromFrozen reassembles a Graph from raw frozen parts, taking
// ownership of the slices (no copies). Every structural invariant a
// Builder-produced graph upholds is re-checked — CSR offsets monotonic
// and in bounds, labels and arc endpoints within range, inverse
// out-degrees in (0, 1] — so hostile or corrupt input yields an error,
// never a graph that can panic a kernel sweep later.
func FromFrozen(f Frozen) (*Graph, error) {
	if f.Schema == nil {
		return nil, fmt.Errorf("graph: frozen parts have no schema")
	}
	n := len(f.Labels)
	if len(f.Attrs) != n {
		return nil, fmt.Errorf("graph: %d labels but %d attribute tuples", n, len(f.Attrs))
	}
	numTypes := TypeID(f.Schema.NumNodeTypes())
	for v, l := range f.Labels {
		if l < 0 || l >= numTypes {
			return nil, fmt.Errorf("graph: node %d has label %d, schema has %d node types", v, l, numTypes)
		}
	}
	if len(f.Arcs) != len(f.Rarcs) {
		return nil, fmt.Errorf("graph: %d forward arcs but %d reverse arcs", len(f.Arcs), len(f.Rarcs))
	}
	if len(f.Arcs) != 2*f.NumEdges {
		return nil, fmt.Errorf("graph: %d arcs for %d edges (want 2 per edge)", len(f.Arcs), f.NumEdges)
	}
	if err := checkCSR("forward", n, f.ArcStart, f.Arcs, f.Schema); err != nil {
		return nil, err
	}
	if err := checkCSR("reverse", n, f.RarcStart, f.Rarcs, f.Schema); err != nil {
		return nil, err
	}
	return &Graph{
		schema:    f.Schema,
		labels:    f.Labels,
		attrs:     f.Attrs,
		numEdges:  f.NumEdges,
		arcStart:  f.ArcStart,
		arcs:      f.Arcs,
		rarcStart: f.RarcStart,
		rarcs:     f.Rarcs,
	}, nil
}

func checkCSR(side string, n int, start []int32, arcs []Arc, s *Schema) error {
	if len(start) != n+1 {
		return fmt.Errorf("graph: %s CSR has %d offsets for %d nodes (want %d)", side, len(start), n, n+1)
	}
	if start[0] != 0 {
		return fmt.Errorf("graph: %s CSR does not start at 0", side)
	}
	for i := 1; i < len(start); i++ {
		if start[i] < start[i-1] {
			return fmt.Errorf("graph: %s CSR offsets decrease at node %d", side, i-1)
		}
	}
	if int(start[n]) != len(arcs) {
		return fmt.Errorf("graph: %s CSR covers %d arcs, have %d", side, start[n], len(arcs))
	}
	numTransfer := TransferTypeID(s.NumTransferTypes())
	for i, a := range arcs {
		if a.To < 0 || int(a.To) >= n {
			return fmt.Errorf("graph: %s arc %d targets node %d of %d", side, i, a.To, n)
		}
		if a.Type < 0 || a.Type >= numTransfer {
			return fmt.Errorf("graph: %s arc %d has transfer type %d of %d", side, i, a.Type, numTransfer)
		}
		if !(a.InvDeg > 0 && a.InvDeg <= 1) || math.IsNaN(float64(a.InvDeg)) {
			return fmt.Errorf("graph: %s arc %d has inverse out-degree %v outside (0, 1]", side, i, a.InvDeg)
		}
	}
	return nil
}

// Fingerprint returns a 64-bit FNV-1a digest of the frozen graph —
// schema type names, labels, attribute text, and both CSR halves —
// computed once and cached. Two graphs with the same fingerprint are,
// for ranking purposes, the same corpus; precomputed score stores use
// it to refuse revalidation against a different generation's graph.
func (g *Graph) Fingerprint() uint64 {
	g.fpOnce.Do(func() {
		h := fnv.New64a()
		var buf [12]byte
		u32 := func(v uint32) {
			binary.LittleEndian.PutUint32(buf[:4], v)
			h.Write(buf[:4])
		}
		u32(uint32(len(g.labels)))
		u32(uint32(g.numEdges))
		for t := 0; t < g.schema.NumNodeTypes(); t++ {
			h.Write([]byte(g.schema.TypeName(TypeID(t))))
			h.Write([]byte{0})
		}
		for e := 0; e < g.schema.NumEdgeTypes(); e++ {
			et := g.schema.EdgeTypeInfo(EdgeTypeID(e))
			h.Write([]byte(et.Role))
			u32(uint32(et.From))
			u32(uint32(et.To))
		}
		for _, l := range g.labels {
			u32(uint32(l))
		}
		for _, as := range g.attrs {
			for _, a := range as {
				h.Write([]byte(a.Name))
				h.Write([]byte{1})
				h.Write([]byte(a.Value))
				h.Write([]byte{0})
			}
			h.Write([]byte{2})
		}
		for _, a := range g.arcs {
			binary.LittleEndian.PutUint32(buf[0:4], uint32(a.To))
			binary.LittleEndian.PutUint32(buf[4:8], uint32(a.Type))
			binary.LittleEndian.PutUint32(buf[8:12], math.Float32bits(a.InvDeg))
			h.Write(buf[:12])
		}
		g.fp = h.Sum64()
	})
	return g.fp
}
