package graph

import (
	"strings"
	"testing"
)

func TestComputeStatsFigure1(t *testing.T) {
	g, ids := figure1Graph(t)
	s := ComputeStats(g)
	if s.Nodes != 7 || s.Edges != 9 {
		t.Fatalf("nodes/edges = %d/%d", s.Nodes, s.Edges)
	}
	if s.NodesByType["Paper"] != 4 || s.NodesByType["Author"] != 1 {
		t.Errorf("NodesByType = %v", s.NodesByType)
	}
	if s.EdgesByType["cites"] != 4 {
		t.Errorf("EdgesByType[cites] = %d", s.EdgesByType["cites"])
	}
	if s.EdgesByType["by"] != 2 || s.EdgesByType["contains"] != 2 || s.EdgesByType["hasInstance"] != 1 {
		t.Errorf("EdgesByType = %v", s.EdgesByType)
	}
	// v4 cites 2 papers + 1 author edge = out-degree 3 (data edges).
	if s.MaxOutDeg != 3 {
		t.Errorf("MaxOutDeg = %d", s.MaxOutDeg)
	}
	// v7 is cited 3 times.
	if s.MaxInDeg != 3 {
		t.Errorf("MaxInDeg = %d", s.MaxInDeg)
	}
	// The figure-1 graph is connected.
	if s.Components != 1 || s.LargestComponent != 7 {
		t.Errorf("components = %d largest = %d", s.Components, s.LargestComponent)
	}
	str := s.String()
	if !strings.Contains(str, "Paper") || !strings.Contains(str, "cites") {
		t.Errorf("String = %q", str)
	}
	_ = ids
}

func TestComputeStatsDisconnected(t *testing.T) {
	s := NewSchema()
	paper := s.AddNodeType("Paper")
	cites := s.MustAddEdgeType("cites", paper, paper)
	b := NewBuilder(s)
	a := b.AddNode(paper)
	c := b.AddNode(paper)
	b.AddNode(paper) // isolated
	b.AddNode(paper) // isolated
	b.AddEdge(a, c, cites)
	g := b.MustBuild()
	st := ComputeStats(g)
	if st.Components != 3 {
		t.Errorf("components = %d, want 3", st.Components)
	}
	if st.LargestComponent != 2 {
		t.Errorf("largest = %d, want 2", st.LargestComponent)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := NewSchema()
	s.AddNodeType("Paper")
	g := NewBuilder(s).MustBuild()
	st := ComputeStats(g)
	if st.Nodes != 0 || st.Components != 0 || st.AvgOutDeg != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}
