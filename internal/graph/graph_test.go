package graph

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// dblpSchema builds the Figure 2 schema of the paper: Paper, Conference,
// Year, Author with cites, hasInstance (Conference->Year), contains
// (Year->Paper) and by (Paper->Author) edges.
func dblpSchema(t testing.TB) (*Schema, map[string]TypeID, map[string]EdgeTypeID) {
	t.Helper()
	s := NewSchema()
	types := map[string]TypeID{
		"Paper":      s.AddNodeType("Paper"),
		"Conference": s.AddNodeType("Conference"),
		"Year":       s.AddNodeType("Year"),
		"Author":     s.AddNodeType("Author"),
	}
	edges := map[string]EdgeTypeID{
		"cites":       s.MustAddEdgeType("cites", types["Paper"], types["Paper"]),
		"hasInstance": s.MustAddEdgeType("hasInstance", types["Conference"], types["Year"]),
		"contains":    s.MustAddEdgeType("contains", types["Year"], types["Paper"]),
		"by":          s.MustAddEdgeType("by", types["Paper"], types["Author"]),
	}
	return s, types, edges
}

func TestSchemaBasics(t *testing.T) {
	s, types, edges := dblpSchema(t)
	if got := s.NumNodeTypes(); got != 4 {
		t.Fatalf("NumNodeTypes = %d, want 4", got)
	}
	if got := s.NumEdgeTypes(); got != 4 {
		t.Fatalf("NumEdgeTypes = %d, want 4", got)
	}
	if got := s.NumTransferTypes(); got != 8 {
		t.Fatalf("NumTransferTypes = %d, want 8", got)
	}
	if s.TypeName(types["Paper"]) != "Paper" {
		t.Errorf("TypeName(Paper) = %q", s.TypeName(types["Paper"]))
	}
	if id, ok := s.TypeByName("Author"); !ok || id != types["Author"] {
		t.Errorf("TypeByName(Author) = %d, %v", id, ok)
	}
	if _, ok := s.TypeByName("Nope"); ok {
		t.Error("TypeByName(Nope) should not exist")
	}
	if id, ok := s.EdgeTypeByRole("cites"); !ok || id != edges["cites"] {
		t.Errorf("EdgeTypeByRole(cites) = %d, %v", id, ok)
	}
	// Duplicate registration returns the same IDs.
	if s.AddNodeType("Paper") != types["Paper"] {
		t.Error("duplicate AddNodeType returned a new ID")
	}
	if s.MustAddEdgeType("cites", types["Paper"], types["Paper"]) != edges["cites"] {
		t.Error("duplicate AddEdgeType returned a new ID")
	}
}

func TestSchemaAddEdgeTypeErrors(t *testing.T) {
	s := NewSchema()
	p := s.AddNodeType("Paper")
	if _, err := s.AddEdgeType("cites", p, TypeID(42)); err == nil {
		t.Error("AddEdgeType with unknown target type should fail")
	}
	if _, err := s.AddEdgeType("cites", TypeID(-1), p); err == nil {
		t.Error("AddEdgeType with unknown source type should fail")
	}
}

func TestTransferTypeRoundTrip(t *testing.T) {
	for e := EdgeTypeID(0); e < 100; e++ {
		for _, dir := range []Direction{Forward, Backward} {
			tt := TransferType(e, dir)
			if tt.EdgeType() != e {
				t.Fatalf("EdgeType(%d,%v) = %d", e, dir, tt.EdgeType())
			}
			if tt.Dir() != dir {
				t.Fatalf("Dir(%d,%v) = %v", e, dir, tt.Dir())
			}
			if tt.Reverse().Dir() == dir || tt.Reverse().EdgeType() != e {
				t.Fatalf("Reverse(%d,%v) broken", e, dir)
			}
		}
	}
}

func TestTransferTypeNames(t *testing.T) {
	s, _, edges := dblpSchema(t)
	fwd := s.TransferTypeName(TransferType(edges["cites"], Forward))
	if !strings.Contains(fwd, "->") || !strings.Contains(fwd, "cites") {
		t.Errorf("forward name = %q", fwd)
	}
	bwd := s.TransferTypeName(TransferType(edges["cites"], Backward))
	if !strings.Contains(bwd, "<-") {
		t.Errorf("backward name = %q", bwd)
	}
}

func TestTransferTypesFrom(t *testing.T) {
	s, types, edges := dblpSchema(t)
	// Paper has outgoing transfer types: cites fwd, cites bwd (cited),
	// contains bwd, by fwd.
	got := s.TransferTypesFrom(types["Paper"])
	want := map[TransferTypeID]bool{
		TransferType(edges["cites"], Forward):     true,
		TransferType(edges["cites"], Backward):    true,
		TransferType(edges["contains"], Backward): true,
		TransferType(edges["by"], Forward):        true,
	}
	if len(got) != len(want) {
		t.Fatalf("TransferTypesFrom(Paper) = %v, want %d entries", got, len(want))
	}
	for _, tt := range got {
		if !want[tt] {
			t.Errorf("unexpected transfer type %s", s.TransferTypeName(tt))
		}
	}
}

// figure1Graph builds the 7-node DBLP subgraph of Figures 1/5/6.
// Node IDs follow the paper's v1..v7 numbering (0-based here).
func figure1Graph(t testing.TB) (*Graph, map[string]NodeID) {
	t.Helper()
	s, types, edges := dblpSchema(t)
	b := NewBuilder(s)
	v1 := b.AddNode(types["Paper"], Attr{"Title", "Index Selection for OLAP."}, Attr{"Authors", "H. Gupta, V. Harinarayan, A. Rajaraman, J. Ullman"}, Attr{"Year", "ICDE 1997"})
	v2 := b.AddNode(types["Conference"], Attr{"Name", "ICDE"})
	v3 := b.AddNode(types["Year"], Attr{"Name", "ICDE"}, Attr{"Year", "1997"}, Attr{"Location", "Birmingham"})
	v4 := b.AddNode(types["Paper"], Attr{"Title", "Range Queries in OLAP Data Cubes."}, Attr{"Authors", "C. Ho, R. Agrawal, N. Megiddo, R. Srikant"}, Attr{"Year", "SIGMOD 1997"})
	v5 := b.AddNode(types["Paper"], Attr{"Title", "Modeling Multidimensional Databases."}, Attr{"Authors", "R. Agrawal, A. Gupta, S. Sarawagi"}, Attr{"Year", "ICDE 1997"})
	v6 := b.AddNode(types["Author"], Attr{"Name", "R. Agrawal"})
	v7 := b.AddNode(types["Paper"], Attr{"Title", "Data Cube: A Relational Aggregation Operator Generalizing Group-By, Cross-Tab, and Sub-Total."}, Attr{"Authors", "J. Gray, A. Bosworth, A. Layman, H. Pirahesh"}, Attr{"Year", "ICDE 1996"})

	b.AddEdge(v2, v3, edges["hasInstance"])
	b.AddEdge(v3, v1, edges["contains"])
	b.AddEdge(v3, v5, edges["contains"])
	b.AddEdge(v1, v7, edges["cites"])
	b.AddEdge(v4, v7, edges["cites"])
	b.AddEdge(v5, v7, edges["cites"])
	b.AddEdge(v4, v5, edges["cites"])
	b.AddEdge(v4, v6, edges["by"])
	b.AddEdge(v5, v6, edges["by"])

	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, map[string]NodeID{
		"v1": v1, "v2": v2, "v3": v3, "v4": v4, "v5": v5, "v6": v6, "v7": v7,
	}
}

func TestBuildFigure1(t *testing.T) {
	g, ids := figure1Graph(t)
	if g.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 9 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.NumArcs() != 18 {
		t.Fatalf("NumArcs = %d", g.NumArcs())
	}
	if g.LabelName(ids["v6"]) != "Author" {
		t.Errorf("v6 label = %q", g.LabelName(ids["v6"]))
	}
	if got := g.Attr(ids["v3"], "Location"); got != "Birmingham" {
		t.Errorf("v3 Location = %q", got)
	}
	if got := g.Attr(ids["v3"], "Missing"); got != "" {
		t.Errorf("missing attr = %q", got)
	}
	if txt := g.Text(ids["v3"]); !strings.Contains(txt, "ICDE") || !strings.Contains(txt, "Birmingham") {
		t.Errorf("v3 text = %q", txt)
	}
	if d := g.Display(ids["v6"]); !strings.Contains(d, "Author") || !strings.Contains(d, "R. Agrawal") {
		t.Errorf("Display = %q", d)
	}
}

func TestOutDegAndInvDeg(t *testing.T) {
	g, ids := figure1Graph(t)
	s := g.Schema()
	cites, _ := s.EdgeTypeByRole("cites")
	citesFwd := TransferType(cites, Forward)
	citesBwd := TransferType(cites, Backward)

	// v4 cites two papers (v7 and v5).
	if d := g.OutDeg(ids["v4"], citesFwd); d != 2 {
		t.Errorf("OutDeg(v4, cites fwd) = %d, want 2", d)
	}
	// v7 is cited by three papers, so it has three backward cites arcs.
	if d := g.OutDeg(ids["v7"], citesBwd); d != 3 {
		t.Errorf("OutDeg(v7, cites bwd) = %d, want 3", d)
	}
	// InvDeg on v4's forward cites arcs must be 1/2.
	for _, a := range g.OutArcs(ids["v4"]) {
		if a.Type == citesFwd && math.Abs(float64(a.InvDeg)-0.5) > 1e-6 {
			t.Errorf("InvDeg(v4 cites) = %v, want 0.5", a.InvDeg)
		}
	}
}

func TestEquation1ArcWeights(t *testing.T) {
	g, ids := figure1Graph(t)
	s := g.Schema()
	rates := NewRates(s)
	cites, _ := s.EdgeTypeByRole("cites")
	if err := rates.Set(cites, Forward, 0.7); err != nil {
		t.Fatal(err)
	}
	citesFwd := TransferType(cites, Forward)
	// v4 has OutDeg(v4, cites fwd)=2 so each arc carries 0.7/2 = 0.35.
	for _, a := range g.OutArcs(ids["v4"]) {
		if a.Type != citesFwd {
			continue
		}
		if w := g.ArcWeight(a, rates); math.Abs(w-0.35) > 1e-6 {
			t.Errorf("ArcWeight = %v, want 0.35", w)
		}
	}
	// v1 has OutDeg 1, so weight = 0.7.
	for _, a := range g.OutArcs(ids["v1"]) {
		if a.Type != citesFwd {
			continue
		}
		if w := g.ArcWeight(a, rates); math.Abs(w-0.7) > 1e-6 {
			t.Errorf("ArcWeight = %v, want 0.7", w)
		}
	}
}

func TestInArcsMirrorOutArcs(t *testing.T) {
	g, _ := figure1Graph(t)
	type key struct {
		from, to NodeID
		tt       TransferTypeID
	}
	fwd := map[key]float32{}
	for u := 0; u < g.NumNodes(); u++ {
		for _, a := range g.OutArcs(NodeID(u)) {
			fwd[key{NodeID(u), a.To, a.Type}] = a.InvDeg
		}
	}
	count := 0
	for v := 0; v < g.NumNodes(); v++ {
		for _, a := range g.InArcs(NodeID(v)) {
			count++
			inv, ok := fwd[key{a.To, NodeID(v), a.Type}]
			if !ok {
				t.Fatalf("reverse arc %d<-%d type %d missing from forward CSR", v, a.To, a.Type)
			}
			if inv != a.InvDeg {
				t.Errorf("InvDeg mismatch on %d<-%d: %v vs %v", v, a.To, a.InvDeg, inv)
			}
		}
	}
	if count != g.NumArcs() {
		t.Errorf("reverse CSR has %d arcs, want %d", count, g.NumArcs())
	}
}

func TestBuilderConformanceErrors(t *testing.T) {
	s, types, edges := dblpSchema(t)

	b := NewBuilder(s)
	p := b.AddNode(types["Paper"])
	a := b.AddNode(types["Author"])
	b.AddEdge(a, p, edges["cites"]) // Author cannot cite.
	if _, err := b.Build(); err == nil {
		t.Error("Build should reject non-conforming edge endpoints")
	}

	b = NewBuilder(s)
	p = b.AddNode(types["Paper"])
	b.AddEdge(p, NodeID(99), edges["cites"])
	if _, err := b.Build(); err == nil {
		t.Error("Build should reject unknown target node")
	}

	b = NewBuilder(s)
	b.AddNode(TypeID(77))
	if _, err := b.Build(); err == nil {
		t.Error("Build should reject unknown label")
	}

	b = NewBuilder(s)
	p = b.AddNode(types["Paper"])
	b.AddEdge(p, p, EdgeTypeID(99))
	if _, err := b.Build(); err == nil {
		t.Error("Build should reject unknown edge type")
	}
}

func TestFindNodesAndNodesOfType(t *testing.T) {
	g, ids := figure1Graph(t)
	found := g.FindNodes("cross-tab", 5)
	if len(found) != 1 || found[0] != ids["v7"] {
		t.Errorf("FindNodes(data cube) = %v", found)
	}
	papers, _ := g.Schema().TypeByName("Paper")
	if got := g.NodesOfType(papers); len(got) != 4 {
		t.Errorf("NodesOfType(Paper) = %v", got)
	}
	counts := g.CountByType()
	if counts[papers] != 4 {
		t.Errorf("CountByType[Paper] = %d", counts[papers])
	}
	if g.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
}

func TestRatesBasics(t *testing.T) {
	s, types, edges := dblpSchema(t)
	r := UniformRates(s, 0.3)
	if got := r.Rate(TransferType(edges["cites"], Forward)); got != 0.3 {
		t.Fatalf("uniform rate = %v", got)
	}
	if err := r.SetRate(TransferType(edges["cites"], Backward), -1); err == nil {
		t.Error("negative rate should be rejected")
	}
	if err := r.SetRate(TransferType(edges["cites"], Backward), math.NaN()); err == nil {
		t.Error("NaN rate should be rejected")
	}
	// Paper has 4 outgoing transfer types at 0.3 each -> sum 1.2 > 1.
	if err := r.Validate(); err == nil {
		t.Error("Validate should reject outgoing sum > 1")
	}
	r.NormalizeOutgoing()
	if err := r.Validate(); err != nil {
		t.Errorf("Validate after NormalizeOutgoing: %v", err)
	}
	if sum := r.OutgoingSum(types["Paper"]); math.Abs(sum-1) > 1e-9 {
		t.Errorf("Paper outgoing sum = %v, want 1", sum)
	}

	cp := r.Clone()
	cp.SetRate(0, 0.9)
	if r.Rate(0) == 0.9 {
		t.Error("Clone is not a deep copy")
	}

	vec := r.Vector()
	if len(vec) != s.NumTransferTypes() {
		t.Fatalf("Vector len = %d", len(vec))
	}
	r2 := NewRates(s)
	if err := r2.SetVector(vec); err != nil {
		t.Fatal(err)
	}
	if r2.Rate(3) != r.Rate(3) {
		t.Error("SetVector round trip failed")
	}
	if err := r2.SetVector(vec[:2]); err == nil {
		t.Error("SetVector with wrong length should fail")
	}
	if r.String() == "" {
		t.Error("String should render non-zero rates")
	}
}

func TestPaperRatesFigure3(t *testing.T) {
	// The Figure 3 rate assignment: cites 0.7 / cited 0.0, Paper->Author
	// 0.2 / Author->Paper 0.2, Conference<->Year 0.3/0.3, Year->Paper
	// 0.3 / Paper->Year 0.1. Each schema node's outgoing rates must sum
	// to <= 1.
	s, _, edges := dblpSchema(t)
	r := NewRates(s)
	r.Set(edges["cites"], Forward, 0.7)
	r.Set(edges["cites"], Backward, 0.0)
	r.Set(edges["by"], Forward, 0.2)
	r.Set(edges["by"], Backward, 0.2)
	r.Set(edges["hasInstance"], Forward, 0.3)
	r.Set(edges["hasInstance"], Backward, 0.3)
	r.Set(edges["contains"], Forward, 0.3)
	r.Set(edges["contains"], Backward, 0.1)
	if err := r.Validate(); err != nil {
		t.Fatalf("Figure 3 rates should validate: %v", err)
	}
}

// TestCSRRandomGraphs cross-checks the CSR construction against a naive
// edge-list interpretation on random graphs.
func TestCSRRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, types, edges := dblpSchema(t)
	for trial := 0; trial < 25; trial++ {
		b := NewBuilder(s)
		n := 2 + rng.Intn(40)
		var papers []NodeID
		for i := 0; i < n; i++ {
			papers = append(papers, b.AddNode(types["Paper"]))
		}
		m := rng.Intn(4 * n)
		type pair struct{ u, v NodeID }
		var raw []pair
		for i := 0; i < m; i++ {
			u := papers[rng.Intn(n)]
			v := papers[rng.Intn(n)]
			b.AddEdge(u, v, edges["cites"])
			raw = append(raw, pair{u, v})
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		// Naive out-degree per direction.
		outFwd := make(map[NodeID]int)
		outBwd := make(map[NodeID]int)
		for _, e := range raw {
			outFwd[e.u]++
			outBwd[e.v]++
		}
		citesFwd := TransferType(edges["cites"], Forward)
		citesBwd := TransferType(edges["cites"], Backward)
		for _, p := range papers {
			if got := g.OutDeg(p, citesFwd); got != outFwd[p] {
				t.Fatalf("trial %d: OutDeg(%d,fwd) = %d, want %d", trial, p, got, outFwd[p])
			}
			if got := g.OutDeg(p, citesBwd); got != outBwd[p] {
				t.Fatalf("trial %d: OutDeg(%d,bwd) = %d, want %d", trial, p, got, outBwd[p])
			}
		}
	}
}

// TestPropertyInvDegConsistent checks, with testing/quick-generated edge
// lists, that every arc's InvDeg equals 1/OutDeg(source, type).
func TestPropertyInvDegConsistent(t *testing.T) {
	s, types, edges := dblpSchema(t)
	prop := func(pairs []uint16) bool {
		const n = 12
		b := NewBuilder(s)
		var nodes []NodeID
		for i := 0; i < n; i++ {
			nodes = append(nodes, b.AddNode(types["Paper"]))
		}
		for _, p := range pairs {
			u := nodes[int(p>>8)%n]
			v := nodes[int(p&0xff)%n]
			b.AddEdge(u, v, edges["cites"])
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		for u := 0; u < g.NumNodes(); u++ {
			for _, a := range g.OutArcs(NodeID(u)) {
				want := float32(1) / float32(g.OutDeg(NodeID(u), a.Type))
				if a.InvDeg != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
