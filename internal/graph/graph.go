package graph

import (
	"fmt"
	"strings"
	"sync"
)

// NodeID identifies a node (database object) in a data graph.
type NodeID int32

// Attr is one name/value pair of a node's tuple. The keywords of a node
// are the tokens of its attribute values (Section 2 of the paper).
type Attr struct {
	Name  string
	Value string
}

// Edge is one typed data-graph edge as supplied to the Builder.
type Edge struct {
	From NodeID
	To   NodeID
	Type EdgeTypeID
}

// Arc is one edge of the authority transfer data graph D^A: a directed
// typed connection that can carry authority. Every data edge yields two
// arcs, one per direction. InvDeg is 1/OutDeg(from, Type) precomputed at
// build time, so the authority transfer rate of the arc under a given
// rate vector is Rates.Rate(Type) * InvDeg (Equation 1). The out-degree
// never changes when rates are reformulated, which is why it can be
// frozen while rates stay adjustable.
type Arc struct {
	To     NodeID
	Type   TransferTypeID
	InvDeg float32
}

// Graph is a frozen data graph together with its derived authority
// transfer data graph in CSR (compressed sparse row) form. Build one
// with a Builder. A Graph is immutable and safe for concurrent reads.
type Graph struct {
	schema *Schema

	labels []TypeID
	attrs  [][]Attr

	numEdges int

	// Forward CSR over transfer arcs (both directions of every data
	// edge): arcs going OUT of node i are arcs[arcStart[i]:arcStart[i+1]].
	arcStart []int32
	arcs     []Arc

	// Reverse CSR: arcs coming INTO node i, stored with To = source
	// node (i.e. rarcs[k].To is the node the authority comes FROM) and
	// InvDeg = the source's inverse out-degree for that arc type.
	rarcStart []int32
	rarcs     []Arc

	// fp caches the Fingerprint digest (the graph is immutable, so the
	// digest is computed at most once).
	fpOnce sync.Once
	fp     uint64
}

// Schema returns the schema graph the data graph conforms to.
func (g *Graph) Schema() *Schema { return g.schema }

// NumNodes returns |V_D|.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges returns |E_D|, the number of data edges (each of which
// yields two transfer arcs).
func (g *Graph) NumEdges() int { return g.numEdges }

// NumArcs returns the number of authority transfer arcs (2 * NumEdges).
func (g *Graph) NumArcs() int { return len(g.arcs) }

// Label returns the node type of v.
func (g *Graph) Label(v NodeID) TypeID { return g.labels[v] }

// LabelName returns the node type name of v.
func (g *Graph) LabelName(v NodeID) string { return g.schema.TypeName(g.labels[v]) }

// Attrs returns the attribute tuple of v. The returned slice must not
// be modified.
func (g *Graph) Attrs(v NodeID) []Attr { return g.attrs[v] }

// Attr returns the value of the named attribute of v, or "" if absent.
func (g *Graph) Attr(v NodeID, name string) string {
	for _, a := range g.attrs[v] {
		if a.Name == name {
			return a.Value
		}
	}
	return ""
}

// Text returns the concatenation of all attribute values of v, the
// node's document text for IR purposes (its keyword set is the token
// set of this text).
func (g *Graph) Text(v NodeID) string {
	as := g.attrs[v]
	switch len(as) {
	case 0:
		return ""
	case 1:
		return as[0].Value
	}
	var b strings.Builder
	for i, a := range as {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Value)
	}
	return b.String()
}

// Display returns a short human-readable rendering of v for result
// lists and explanations: its type name and first attribute value.
func (g *Graph) Display(v NodeID) string {
	label := g.LabelName(v)
	if as := g.attrs[v]; len(as) > 0 {
		return fmt.Sprintf("%s[%d] %s=%q", label, v, as[0].Name, as[0].Value)
	}
	return fmt.Sprintf("%s[%d]", label, v)
}

// OutArcs returns the transfer arcs leaving v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) OutArcs(v NodeID) []Arc {
	return g.arcs[g.arcStart[v]:g.arcStart[v+1]]
}

// InArcs returns the transfer arcs entering v. Each returned Arc has To
// set to the SOURCE node of the arc and InvDeg set to that source's
// inverse per-type out-degree, so the arc's authority transfer rate is
// still Rates.Rate(Type) * InvDeg. The slice aliases internal storage.
func (g *Graph) InArcs(v NodeID) []Arc {
	return g.rarcs[g.rarcStart[v]:g.rarcStart[v+1]]
}

// ForwardCSR exposes the frozen forward adjacency as flat CSR arrays:
// start offsets (length NumNodes+1) and the packed arc array. Arcs
// leaving node v occupy arcs[start[v]:start[v+1]], sorted by (type,
// target). Both slices alias internal storage and must be treated as
// read-only; they are safe for unsynchronized concurrent reads.
func (g *Graph) ForwardCSR() (start []int32, arcs []Arc) {
	return g.arcStart, g.arcs
}

// ReverseCSR exposes the frozen reverse adjacency as flat CSR arrays:
// start offsets (length NumNodes+1) and the packed {source, type,
// inverse out-degree} arc array. Arcs entering node v occupy
// arcs[start[v]:start[v+1]] with To holding the SOURCE node, sorted by
// (source, type) — the same order in which a source-major scatter sweep
// deposits contributions onto v, which is what lets the rank kernel's
// gather loop reproduce scatter results bit-for-bit. Both slices alias
// internal storage and must be treated as read-only; they are safe for
// unsynchronized concurrent reads. This is the hot-loop interface of
// the power-iteration kernel: index arithmetic over contiguous memory,
// no per-node slice headers.
func (g *Graph) ReverseCSR() (start []int32, arcs []Arc) {
	return g.rarcStart, g.rarcs
}

// OutDeg returns OutDeg(v, t): the number of transfer arcs of type t
// leaving v (Equation 1's denominator).
func (g *Graph) OutDeg(v NodeID, t TransferTypeID) int {
	n := 0
	for _, a := range g.OutArcs(v) {
		if a.Type == t {
			n++
		}
	}
	return n
}

// ArcWeight returns the authority transfer rate a(arc) of an arc under
// the given rates: alpha(type)/OutDeg(source, type) per Equation 1.
func (g *Graph) ArcWeight(a Arc, r *Rates) float64 {
	return r.Rate(a.Type) * float64(a.InvDeg)
}

// FindNodes returns up to limit nodes whose attribute values contain
// the given substring (case-insensitive). A linear scan intended for
// CLI and demo lookups, not query processing.
func (g *Graph) FindNodes(substr string, limit int) []NodeID {
	if limit <= 0 {
		limit = 10
	}
	needle := strings.ToLower(substr)
	var out []NodeID
	for v := 0; v < g.NumNodes(); v++ {
		for _, a := range g.attrs[v] {
			if strings.Contains(strings.ToLower(a.Value), needle) {
				out = append(out, NodeID(v))
				break
			}
		}
		if len(out) >= limit {
			break
		}
	}
	return out
}

// NodesOfType returns all nodes with the given label, in ID order.
func (g *Graph) NodesOfType(t TypeID) []NodeID {
	var out []NodeID
	for v, l := range g.labels {
		if l == t {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// CountByType returns the number of nodes per node type, indexed by
// TypeID.
func (g *Graph) CountByType() []int {
	counts := make([]int, g.schema.NumNodeTypes())
	for _, l := range g.labels {
		counts[l]++
	}
	return counts
}

// SizeBytes estimates the in-memory size of the frozen graph (labels,
// attributes, both CSR halves), used for the Table 1 dataset-size
// column.
func (g *Graph) SizeBytes() int64 {
	size := int64(len(g.labels)) * 4
	size += int64(len(g.arcStart)+len(g.rarcStart)) * 4
	size += int64(len(g.arcs)+len(g.rarcs)) * 12
	for _, as := range g.attrs {
		size += 24 // slice header
		for _, a := range as {
			size += int64(len(a.Name) + len(a.Value) + 32)
		}
	}
	return size
}
