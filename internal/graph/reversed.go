package graph

// Reversed returns the direction-reversed view of g: a Graph whose
// forward CSR is g's reverse CSR and vice versa. Authority flow solved
// on the reversed view is hubness on the original graph (CheiRank): a
// node is a good hub when it points at good authorities, which is
// exactly "a node is a good authority on the transposed graph".
//
// The view is O(1) to construct — it shares g's schema, labels,
// attribute tuples, and both frozen arc arrays; only the roles of the
// two CSR halves swap. No arc weight changes: each arc keeps the
// InvDeg of its ORIGINAL source, so the reversed transition matrix is
// the exact transpose of the authority matrix (column stochasticity is
// deliberately not re-established — bit-identity with "authority on a
// pre-reversed corpus" requires reusing the frozen weights verbatim).
//
// The returned Graph has its own fingerprint state: Reversed graphs
// digest differently from their originals, so caches keyed by graph
// fingerprint never conflate the two directions.
func (g *Graph) Reversed() *Graph {
	return &Graph{
		schema:    g.schema,
		labels:    g.labels,
		attrs:     g.attrs,
		numEdges:  g.numEdges,
		arcStart:  g.rarcStart,
		arcs:      g.rarcs,
		rarcStart: g.arcStart,
		rarcs:     g.arcs,
	}
}
