package graph

import "testing"

func TestReversedSwapsCSRHalves(t *testing.T) {
	g, _ := figure1Graph(t)
	r := g.Reversed()

	if r.NumNodes() != g.NumNodes() || r.NumEdges() != g.NumEdges() || r.NumArcs() != g.NumArcs() {
		t.Fatalf("Reversed sizes = (%d,%d,%d), want (%d,%d,%d)",
			r.NumNodes(), r.NumEdges(), r.NumArcs(),
			g.NumNodes(), g.NumEdges(), g.NumArcs())
	}

	// The forward CSR of the view must alias the original reverse CSR
	// and vice versa — sharing, not copying, is what makes bit-identity
	// with "authority on a pre-reversed corpus" structural.
	gs, ga := g.ForwardCSR()
	grs, gra := g.ReverseCSR()
	rs, ra := r.ForwardCSR()
	rrs, rra := r.ReverseCSR()
	if &rs[0] != &grs[0] || &ra[0] != &gra[0] {
		t.Error("Reversed forward CSR does not alias the original reverse CSR")
	}
	if &rrs[0] != &gs[0] || &rra[0] != &ga[0] {
		t.Error("Reversed reverse CSR does not alias the original forward CSR")
	}

	// Per-node adjacency: out-arcs of the view are the in-arcs of the
	// original, with weights untouched.
	for v := 0; v < g.NumNodes(); v++ {
		in := g.InArcs(NodeID(v))
		out := r.OutArcs(NodeID(v))
		if len(in) != len(out) {
			t.Fatalf("node %d: Reversed out-arcs %d, want %d", v, len(out), len(in))
		}
		for i := range in {
			if in[i] != out[i] {
				t.Fatalf("node %d arc %d: %+v vs %+v", v, i, out[i], in[i])
			}
		}
	}

	// Metadata is shared.
	if r.Schema() != g.Schema() {
		t.Error("Reversed should share the schema")
	}
	for v := 0; v < g.NumNodes(); v++ {
		if r.Label(NodeID(v)) != g.Label(NodeID(v)) || r.Text(NodeID(v)) != g.Text(NodeID(v)) {
			t.Fatalf("node %d: label/text differ between views", v)
		}
	}
}

func TestReversedFingerprintDiffers(t *testing.T) {
	g, _ := figure1Graph(t)
	r := g.Reversed()
	if g.Fingerprint() == r.Fingerprint() {
		t.Error("Reversed fingerprint equals the original; caches would conflate directions")
	}
	// Reversing twice digests like the original (same arrays in the
	// same roles).
	if got := r.Reversed().Fingerprint(); got != g.Fingerprint() {
		t.Errorf("double-Reversed fingerprint = %x, want %x", got, g.Fingerprint())
	}
}
