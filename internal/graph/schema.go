// Package graph implements the labeled-graph data model of
// "Explaining and Reformulating Authority Flow Queries" (ICDE 2008),
// Section 2: data graphs, schema graphs, authority transfer schema
// graphs, and authority transfer data graphs.
//
// A data graph D(V_D, E_D) is a labeled directed graph whose nodes are
// database objects (tuples, XML elements, biological entries) and whose
// edges are typed associations. A schema graph G(V_G, E_G) describes
// its structure. From the schema graph, an authority transfer schema
// graph G^A is derived by splitting every schema edge into a forward
// and a backward transfer edge, each annotated with an authority
// transfer rate. Finally, the authority transfer data graph D^A
// annotates every data edge with the rate of its type divided by the
// per-type out-degree of its source (Equation 1 of the paper).
package graph

import (
	"fmt"
	"sort"
)

// TypeID identifies a node type (a schema-graph node), e.g. "Paper".
type TypeID int32

// EdgeTypeID identifies a schema-graph edge (an association role
// between two node types), e.g. Paper-cites-Paper.
type EdgeTypeID int32

// Direction distinguishes the two authority transfer edges derived
// from one schema edge.
type Direction int8

const (
	// Forward is the direction of the original schema edge (u -> v).
	Forward Direction = 0
	// Backward is the reverse transfer edge (v -> u) added because
	// authority potentially flows against the schema direction.
	Backward Direction = 1
)

// String returns "forward" or "backward".
func (d Direction) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// TransferTypeID identifies one authority transfer edge type in the
// authority transfer schema graph. Every schema edge type e yields two
// transfer types: TransferType(e, Forward) and TransferType(e, Backward).
type TransferTypeID int32

// TransferType maps a schema edge type and a direction to the
// corresponding transfer edge type.
func TransferType(e EdgeTypeID, dir Direction) TransferTypeID {
	return TransferTypeID(int32(e)<<1 | int32(dir))
}

// EdgeType returns the schema edge type a transfer type derives from.
func (t TransferTypeID) EdgeType() EdgeTypeID { return EdgeTypeID(t >> 1) }

// Dir returns the direction of the transfer type.
func (t TransferTypeID) Dir() Direction { return Direction(t & 1) }

// Reverse returns the transfer type of the opposite direction over the
// same schema edge.
func (t TransferTypeID) Reverse() TransferTypeID { return t ^ 1 }

// EdgeType describes one schema-graph edge: a typed association from
// one node type to another, labeled with a role such as "cites".
type EdgeType struct {
	Role string
	From TypeID
	To   TypeID
}

// Schema is a schema graph G(V_G, E_G): the node types and typed edges
// that a data graph must conform to.
type Schema struct {
	nodeTypes  []string
	typeByName map[string]TypeID
	edgeTypes  []EdgeType
	edgeByKey  map[edgeKey]EdgeTypeID
}

type edgeKey struct {
	role     string
	from, to TypeID
}

// NewSchema returns an empty schema graph.
func NewSchema() *Schema {
	return &Schema{
		typeByName: make(map[string]TypeID),
		edgeByKey:  make(map[edgeKey]EdgeTypeID),
	}
}

// AddNodeType registers a node type (schema node) and returns its ID.
// Adding the same name twice returns the existing ID.
func (s *Schema) AddNodeType(name string) TypeID {
	if id, ok := s.typeByName[name]; ok {
		return id
	}
	id := TypeID(len(s.nodeTypes))
	s.nodeTypes = append(s.nodeTypes, name)
	s.typeByName[name] = id
	return id
}

// AddEdgeType registers a schema edge with the given role between two
// previously registered node types and returns its ID. Registering an
// identical (role, from, to) triple twice returns the existing ID.
func (s *Schema) AddEdgeType(role string, from, to TypeID) (EdgeTypeID, error) {
	if int(from) >= len(s.nodeTypes) || from < 0 {
		return 0, fmt.Errorf("graph: edge type %q: unknown source type %d", role, from)
	}
	if int(to) >= len(s.nodeTypes) || to < 0 {
		return 0, fmt.Errorf("graph: edge type %q: unknown target type %d", role, to)
	}
	k := edgeKey{role, from, to}
	if id, ok := s.edgeByKey[k]; ok {
		return id, nil
	}
	id := EdgeTypeID(len(s.edgeTypes))
	s.edgeTypes = append(s.edgeTypes, EdgeType{Role: role, From: from, To: to})
	s.edgeByKey[k] = id
	return id, nil
}

// MustAddEdgeType is AddEdgeType panicking on error; intended for
// statically known schemas.
func (s *Schema) MustAddEdgeType(role string, from, to TypeID) EdgeTypeID {
	id, err := s.AddEdgeType(role, from, to)
	if err != nil {
		panic(err)
	}
	return id
}

// NumNodeTypes returns the number of node types.
func (s *Schema) NumNodeTypes() int { return len(s.nodeTypes) }

// NumEdgeTypes returns the number of schema edge types.
func (s *Schema) NumEdgeTypes() int { return len(s.edgeTypes) }

// NumTransferTypes returns the number of authority transfer edge types
// (two per schema edge type).
func (s *Schema) NumTransferTypes() int { return 2 * len(s.edgeTypes) }

// TypeName returns the name of a node type.
func (s *Schema) TypeName(t TypeID) string {
	if t < 0 || int(t) >= len(s.nodeTypes) {
		return fmt.Sprintf("type#%d", t)
	}
	return s.nodeTypes[t]
}

// TypeByName looks a node type up by name.
func (s *Schema) TypeByName(name string) (TypeID, bool) {
	id, ok := s.typeByName[name]
	return id, ok
}

// EdgeTypeInfo returns the descriptor of a schema edge type.
func (s *Schema) EdgeTypeInfo(e EdgeTypeID) EdgeType {
	return s.edgeTypes[e]
}

// EdgeTypeByRole finds the first edge type with the given role. The
// lookup is linear; roles are typically unique per schema.
func (s *Schema) EdgeTypeByRole(role string) (EdgeTypeID, bool) {
	for i, et := range s.edgeTypes {
		if et.Role == role {
			return EdgeTypeID(i), true
		}
	}
	return 0, false
}

// TransferTypeName renders a transfer type as, e.g., "Paper-cites->Paper"
// or "Paper<-cites-Paper" for the backward direction.
func (s *Schema) TransferTypeName(t TransferTypeID) string {
	et := s.edgeTypes[t.EdgeType()]
	from, to := s.TypeName(et.From), s.TypeName(et.To)
	if t.Dir() == Forward {
		return fmt.Sprintf("%s-%s->%s", from, et.Role, to)
	}
	return fmt.Sprintf("%s<-%s-%s", from, et.Role, to)
}

// TransferEndpoints returns the source and target node types of a
// transfer type (swapped relative to the schema edge for Backward).
func (s *Schema) TransferEndpoints(t TransferTypeID) (from, to TypeID) {
	et := s.edgeTypes[t.EdgeType()]
	if t.Dir() == Forward {
		return et.From, et.To
	}
	return et.To, et.From
}

// EdgeTypesFrom returns the schema edge types whose source is the given
// node type, in ascending ID order.
func (s *Schema) EdgeTypesFrom(t TypeID) []EdgeTypeID {
	var out []EdgeTypeID
	for i, et := range s.edgeTypes {
		if et.From == t {
			out = append(out, EdgeTypeID(i))
		}
	}
	return out
}

// TransferTypesFrom returns all transfer types whose source node type is
// t — forward types of edges leaving t and backward types of edges
// entering t — in ascending transfer-type order.
func (s *Schema) TransferTypesFrom(t TypeID) []TransferTypeID {
	var out []TransferTypeID
	for i, et := range s.edgeTypes {
		if et.From == t {
			out = append(out, TransferType(EdgeTypeID(i), Forward))
		}
		if et.To == t {
			out = append(out, TransferType(EdgeTypeID(i), Backward))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
