package graph

import (
	"fmt"
	"math"
	"strings"
)

// Rates holds the authority transfer rates of an authority transfer
// schema graph G^A: one rate alpha(e) per transfer edge type. In the
// original ObjectRank the rates were assigned manually by a domain
// expert; the reformulation machinery of the paper (Section 5.2)
// adjusts them automatically from user feedback, which is why Rates is
// a standalone, copyable value rather than being baked into the graph.
type Rates struct {
	schema *Schema
	alpha  []float64 // indexed by TransferTypeID
}

// NewRates returns a rate vector for the given schema with every
// transfer rate set to zero.
func NewRates(s *Schema) *Rates {
	return &Rates{schema: s, alpha: make([]float64, s.NumTransferTypes())}
}

// UniformRates returns a rate vector with every transfer rate set to r.
// The paper's training experiments (Section 6.1.1) initialize all rates
// to 0.3.
func UniformRates(s *Schema, r float64) *Rates {
	rates := NewRates(s)
	for i := range rates.alpha {
		rates.alpha[i] = r
	}
	return rates
}

// Schema returns the schema the rates are defined over.
func (r *Rates) Schema() *Schema { return r.schema }

// Rate returns alpha(t), the authority transfer rate of transfer type t.
func (r *Rates) Rate(t TransferTypeID) float64 { return r.alpha[t] }

// SetRate sets alpha(t). Rates must be non-negative; the paper further
// requires the outgoing rates of every schema node to sum to at most 1
// for convergence, which NormalizeOutgoing enforces.
func (r *Rates) SetRate(t TransferTypeID, v float64) error {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("graph: invalid transfer rate %v for %s", v, r.schema.TransferTypeName(t))
	}
	r.alpha[t] = v
	return nil
}

// Set assigns the rate of the transfer type identified by a schema edge
// type and direction.
func (r *Rates) Set(e EdgeTypeID, dir Direction, v float64) error {
	return r.SetRate(TransferType(e, dir), v)
}

// Clone returns a deep copy. Reformulation works on clones so the rates
// of the previous feedback iteration stay available.
func (r *Rates) Clone() *Rates {
	cp := NewRates(r.schema)
	copy(cp.alpha, r.alpha)
	return cp
}

// Vector returns a copy of the underlying rate vector, indexed by
// TransferTypeID. Used for cosine-similarity training curves
// (Figures 11 and 13 of the paper).
func (r *Rates) Vector() []float64 {
	out := make([]float64, len(r.alpha))
	copy(out, r.alpha)
	return out
}

// SetVector overwrites all rates from a vector indexed by
// TransferTypeID.
func (r *Rates) SetVector(v []float64) error {
	if len(v) != len(r.alpha) {
		return fmt.Errorf("graph: rate vector has %d entries, schema has %d transfer types", len(v), len(r.alpha))
	}
	for i, x := range v {
		if err := r.SetRate(TransferTypeID(i), x); err != nil {
			return err
		}
	}
	return nil
}

// OutgoingSum returns the sum of transfer rates leaving schema node t,
// i.e. the total fraction of authority node instances of t pass to
// their neighbors per step.
func (r *Rates) OutgoingSum(t TypeID) float64 {
	sum := 0.0
	for _, tt := range r.schema.TransferTypesFrom(t) {
		sum += r.alpha[tt]
	}
	return sum
}

// NormalizeOutgoing rescales, for every schema node whose outgoing
// transfer rates sum to more than 1, all of that node's outgoing rates
// proportionally so the sum becomes exactly 1. This is step 4 of the
// structure-based reformulation normalization (Section 5.2) and the
// convergence condition of ObjectRank2.
func (r *Rates) NormalizeOutgoing() {
	for t := TypeID(0); int(t) < r.schema.NumNodeTypes(); t++ {
		sum := r.OutgoingSum(t)
		if sum <= 1 {
			continue
		}
		for _, tt := range r.schema.TransferTypesFrom(t) {
			r.alpha[tt] /= sum
		}
	}
}

// Validate reports an error if any schema node's outgoing rates sum to
// more than 1 (beyond floating-point slack) or any rate is negative.
func (r *Rates) Validate() error {
	for i, a := range r.alpha {
		if a < 0 {
			return fmt.Errorf("graph: negative rate for %s", r.schema.TransferTypeName(TransferTypeID(i)))
		}
	}
	const slack = 1e-9
	for t := TypeID(0); int(t) < r.schema.NumNodeTypes(); t++ {
		if sum := r.OutgoingSum(t); sum > 1+slack {
			return fmt.Errorf("graph: outgoing rates of %s sum to %.6f > 1", r.schema.TypeName(t), sum)
		}
	}
	return nil
}

// SameRateVector reports whether two rate vectors are exactly equal —
// same length, bitwise-identical float64 entries (so +0 and -0 differ,
// matching cache-key semantics). This is THE store-vs-live-rates
// mismatch predicate: precompute.Store.ValidFor and the serving cache's
// key derivation both reduce to it, so the definition of "same rates"
// lives in exactly one place.
func SameRateVector(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// RateVectorKey returns a 64-bit FNV-1a fingerprint of a rate vector's
// exact float64 bit patterns — the hashed form of the SameRateVector
// equivalence. Two vectors with equal fingerprints are, for
// cache-keying purposes, the same rate assignment (collisions over the
// handful of schema transfer types are astronomically unlikely;
// consumers that need certainty confirm with SameRateVector). The
// serving cache keys term vectors and results by this fingerprint
// rather than by the engine's snapshot version, so republishing
// value-identical rates — a reformulation round-trip that lands back on
// the same assignment — keeps previously cached entries valid.
func RateVectorKey(v []float64) uint64 {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for _, x := range v {
		bits := math.Float64bits(x)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// String renders the rates as "Paper-cites->Paper:0.70 ...", one entry
// per transfer type with a non-zero rate.
func (r *Rates) String() string {
	var b strings.Builder
	first := true
	for i, a := range r.alpha {
		if a == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%s:%.2f", r.schema.TransferTypeName(TransferTypeID(i)), a)
	}
	return b.String()
}
