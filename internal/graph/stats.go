package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a data graph's structure: the per-type node and edge
// counts and degree distribution facts that determine authority-flow
// behaviour (and that the synthetic generators must match to stand in
// for the paper's corpora).
type Stats struct {
	Nodes int
	Edges int
	// NodesByType maps node type name to count.
	NodesByType map[string]int
	// EdgesByType maps schema edge role to count.
	EdgesByType map[string]int
	// MaxOutDeg / MaxInDeg are over data edges (forward arcs).
	MaxOutDeg int
	MaxInDeg  int
	// AvgOutDeg is Edges/Nodes.
	AvgOutDeg float64
	// Components is the number of weakly connected components.
	Components int
	// LargestComponent is the node count of the biggest component.
	LargestComponent int
}

// ComputeStats gathers Stats in two passes over the CSR.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		NodesByType: make(map[string]int),
		EdgesByType: make(map[string]int),
	}
	schema := g.Schema()
	for v := 0; v < g.NumNodes(); v++ {
		s.NodesByType[g.LabelName(NodeID(v))]++
		out, in := 0, 0
		for _, a := range g.OutArcs(NodeID(v)) {
			if a.Type.Dir() == Forward {
				out++
				s.EdgesByType[schema.EdgeTypeInfo(a.Type.EdgeType()).Role]++
			}
		}
		for _, a := range g.InArcs(NodeID(v)) {
			if a.Type.Dir() == Forward {
				in++
			}
		}
		if out > s.MaxOutDeg {
			s.MaxOutDeg = out
		}
		if in > s.MaxInDeg {
			s.MaxInDeg = in
		}
	}
	if s.Nodes > 0 {
		s.AvgOutDeg = float64(s.Edges) / float64(s.Nodes)
	}
	s.Components, s.LargestComponent = components(g)
	return s
}

// components counts weakly connected components with an iterative
// union-find over the transfer arcs.
func components(g *Graph) (count, largest int) {
	n := g.NumNodes()
	if n == 0 {
		return 0, 0
	}
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for u := 0; u < n; u++ {
		for _, a := range g.OutArcs(NodeID(u)) {
			ru, rv := find(int32(u)), find(int32(a.To))
			if ru != rv {
				parent[ru] = rv
			}
		}
	}
	size := make(map[int32]int)
	for i := 0; i < n; i++ {
		size[find(int32(i))]++
	}
	for _, s := range size {
		if s > largest {
			largest = s
		}
	}
	return len(size), largest
}

// String renders the stats as a small table.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d edges=%d avg-out=%.2f max-out=%d max-in=%d components=%d largest=%d\n",
		s.Nodes, s.Edges, s.AvgOutDeg, s.MaxOutDeg, s.MaxInDeg, s.Components, s.LargestComponent)
	var types []string
	for t := range s.NodesByType {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Fprintf(&b, "  %-20s %d nodes\n", t, s.NodesByType[t])
	}
	var roles []string
	for r := range s.EdgesByType {
		roles = append(roles, r)
	}
	sort.Strings(roles)
	for _, r := range roles {
		fmt.Fprintf(&b, "  %-20s %d edges\n", r, s.EdgesByType[r])
	}
	return b.String()
}
