package rank

import (
	"math/rand"
	"testing"

	"authorityflow/internal/graph"
)

// benchGraph builds a random citation graph for iteration benches and
// the randomized kernel-equivalence tests.
func benchGraph(b testing.TB, n, m int) (*graph.Graph, *graph.Rates) {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	s := graph.NewSchema()
	paper := s.AddNodeType("Paper")
	cites := s.MustAddEdgeType("cites", paper, paper)
	gb := graph.NewBuilder(s)
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = gb.AddNode(paper)
	}
	for i := 0; i < m; i++ {
		gb.AddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)], cites)
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	r := graph.NewRates(s)
	r.Set(cites, graph.Forward, 0.6)
	r.Set(cites, graph.Backward, 0.2)
	return g, r
}

// BenchmarkPowerIteration measures the core fixpoint loop with the
// design choice shipped in this library: per-arc weights computed on
// the fly as rate[type] * invdeg, so structure-based reformulation can
// swap rate vectors without touching the graph.
func BenchmarkPowerIteration(b *testing.B) {
	g, r := benchGraph(b, 20000, 160000)
	base := make([]float64, g.NumNodes())
	for i := range base {
		base[i] = 1
	}
	NormalizeDist(base)
	opts := Options{Threshold: 1e-6, MaxIters: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, r, base, opts)
	}
}

// BenchmarkAblationMaterializedWeights is the ablation: per-arc weights
// precomputed into a flat array before iterating. It buys a little
// speed per run but must be rebuilt on EVERY rate reformulation, which
// the shipped design avoids; the bench quantifies the trade.
func BenchmarkAblationMaterializedWeights(b *testing.B) {
	g, r := benchGraph(b, 20000, 160000)
	base := make([]float64, g.NumNodes())
	for i := range base {
		base[i] = 1
	}
	NormalizeDist(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runMaterialized(g, r, base, 0.85, 1e-6, 100)
	}
}

// runMaterialized mirrors Run but flattens arcs and weights first —
// including the rebuild cost a reformulating system would pay.
func runMaterialized(g *graph.Graph, rates *graph.Rates, base []float64, d, threshold float64, maxIters int) []float64 {
	n := g.NumNodes()
	alpha := rates.Vector()
	starts := make([]int32, n+1)
	var total int
	for u := 0; u < n; u++ {
		starts[u] = int32(total)
		total += len(g.OutArcs(graph.NodeID(u)))
	}
	starts[n] = int32(total)
	tos := make([]int32, total)
	ws := make([]float64, total)
	pos := 0
	for u := 0; u < n; u++ {
		for _, a := range g.OutArcs(graph.NodeID(u)) {
			tos[pos] = int32(a.To)
			ws[pos] = d * alpha[a.Type] * float64(a.InvDeg)
			pos++
		}
	}
	cur := append([]float64(nil), base...)
	next := make([]float64, n)
	for it := 0; it < maxIters; it++ {
		for v := range next {
			next[v] = (1 - d) * base[v]
		}
		for u := 0; u < n; u++ {
			ru := cur[u]
			if ru == 0 {
				continue
			}
			for i := starts[u]; i < starts[u+1]; i++ {
				next[tos[i]] += ws[i] * ru
			}
		}
		diff := 0.0
		for v := range next {
			delta := next[v] - cur[v]
			if delta < 0 {
				delta = -delta
			}
			diff += delta
		}
		cur, next = next, cur
		if diff < threshold {
			break
		}
	}
	return cur
}

// BenchmarkWarmVsColdIterations reports how many iterations the warm
// start saves (the Figures 14b–17b effect) as custom metrics.
func BenchmarkWarmVsColdIterations(b *testing.B) {
	g, r := benchGraph(b, 20000, 160000)
	rng := rand.New(rand.NewSource(3))
	base := make([]float64, g.NumNodes())
	for i := 0; i < 50; i++ {
		base[rng.Intn(len(base))] = 1
	}
	NormalizeDist(base)
	opts := Options{Threshold: 1e-6, MaxIters: 500}
	cold := Run(g, r, base, opts)

	base2 := append([]float64(nil), base...)
	base2[rng.Intn(len(base2))] += 0.1
	NormalizeDist(base2)

	var warmIters, coldIters int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := opts
		w.Init = cold.Scores
		warmIters = Run(g, r, base2, w).Iterations
		coldIters = Run(g, r, base2, opts).Iterations
	}
	b.ReportMetric(float64(warmIters), "warm-iters")
	b.ReportMetric(float64(coldIters), "cold-iters")
}
