package rank

import (
	"fmt"

	"authorityflow/internal/graph"
)

// DefaultFrontierFrac is the frontier-size fallback threshold of
// IterateDelta: when more than this fraction of the graph's nodes hold
// an above-tolerance residual after the seeding sweep, the rate
// perturbation was not actually small and full sweeps (which amortize
// their CSR traversal over every node) beat push-style point updates.
const DefaultFrontierFrac = 0.125

// DeltaResult is IterateDelta's outcome: a Result plus the delta-solve
// telemetry the rates-republish benches read.
type DeltaResult struct {
	Result
	// Frontier is the number of nodes whose residual exceeded the
	// per-node tolerance after the seeding sweep — the size of the
	// region the rate perturbation actually disturbed.
	Frontier int
	// Pushes is the number of residual-push point updates applied. One
	// full sweep costs |V| node updates, so Pushes/|V| is the
	// sweep-equivalent work of the push phase; Result.Iterations counts
	// only full sweeps (the seeding sweep, plus the fallback's sweeps
	// when it ran).
	Pushes int
	// FellBack reports that the frontier was too large (or prev was
	// unusable) and the solve completed with full warm-started sweeps
	// instead of pushes.
	FellBack bool
}

// IterateDelta solves the damped fixpoint r = d·A·r + (1−d)·base
// incrementally from a previously converged vector prev — the
// rates-republish fast path. A reformulation perturbs the rate vector
// by a small ε, so the new fixpoint is within O(ε/(1−d)) of the old
// one and almost all of prev is already correct; re-running full
// sweeps re-derives every node to fix a few.
//
// The algorithm is residual-frontier push (Gauss–Seidel on the
// residual): one gather sweep over the reverse CSR under the NEW alpha
// seeds the residual r[v] = (1−d)·base[v] + d·(A·prev)[v] − prev[v];
// nodes with |r[v]| > Threshold/|V| form the frontier. When the total
// residual mass Σ|r| is already ≤ Threshold — a republish that didn't
// actually move the fixpoint beyond a full solve's stopping point —
// the solve returns immediately with the residual folded in and zero
// pushes. Otherwise each push pops
// a frontier node v, folds its residual into the solution (x[v] +=
// r[v]) and propagates d·alpha[t]·InvDeg(v,t)·r[v] to each forward
// neighbour's residual — the forward CSR's frozen InvDeg is exactly
// the column weight M[u][v] the update needs. Since d < 1 the total
// residual mass contracts and the worklist drains; on exit
// ‖x − x*‖₁ ≤ Σ|r[v]| / (1−d) ≤ Threshold/(1−d), the same
// distance-to-fixpoint class a full solve's L1 stopping rule
// guarantees. Compatibility classification: delta results agree with a
// full solve WITHIN CONVERGENCE TOLERANCE, not bitwise — callers that
// serve bit-identity contracts must keep full sweeps.
//
// Fallback: when prev is nil or mis-sized (a stale vector from a
// swapped corpus), when the seeded frontier exceeds frontierFrac·|V|
// (frontierFrac <= 0 selects DefaultFrontierFrac), or when the push
// phase exhausts its budget (MaxIters·|V| pushes, the work of a full
// MaxIters run), the solve completes as a plain Iterate — warm-started
// from the already-seeded Gauss–Jacobi state when the seeding sweep
// ran — with FellBack set. The fallback preserves Iterate's exactness
// class, so IterateDelta never returns anything worse than a full
// warm-started solve.
//
// opts follows Iterate's conventions (Observe fires for the seeding
// sweep and, via the fallback, for full sweeps; Ctx is polled before
// the seeding sweep and every 4096 pushes). Options.Tile applies to
// the seeding sweep and any fallback sweeps. workers parallelizes only
// the fallback's sweeps — the push phase is inherently sequential —
// and the returned Scores come from pool as usual.
func IterateDelta(g *graph.Graph, alpha, base, prev []float64, opts Options, frontierFrac float64, workers int, pool *BufferPool) DeltaResult {
	opts = opts.Normalized()
	n := g.NumNodes()
	if len(base) != n {
		panic(fmt.Sprintf("rank: base distribution has %d entries for a %d-node graph", len(base), n))
	}
	if len(alpha) < g.Schema().NumTransferTypes() {
		panic(fmt.Sprintf("rank: alpha vector has %d entries, schema has %d transfer types", len(alpha), g.Schema().NumTransferTypes()))
	}
	if frontierFrac <= 0 {
		frontierFrac = DefaultFrontierFrac
	}
	if prev != nil && len(prev) != n {
		prev = nil
	}
	if prev == nil || n == 0 || opts.MaxIters == 0 {
		// Nothing to be incremental against (or no iteration budget):
		// the full kernel owns every edge case here.
		res := Iterate(g, alpha, base, opts, workers, pool)
		return DeltaResult{Result: res, FellBack: true}
	}
	if ctx := opts.Ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			out := pool.Get(n)
			copy(out, prev)
			return DeltaResult{Result: Result{Scores: out, Err: err}}
		}
	}

	d := opts.Damping
	x := pool.Get(n)
	copy(x, prev)

	// Seeding sweep: next = (1−d)·base + d·A·x under the new alpha,
	// computed by the ordinary (optionally tiled) gather sweep; the
	// residual is r[v] = next[v] − x[v], and the sweep's L1 return is
	// exactly Σ|r| — the frontier mass.
	start, rarcs := g.ReverseCSR()
	r := pool.Get(n)
	var seedDiff float64
	if tl := opts.Tile; tl.usable(n) {
		seedDiff = sweepTiled(tl, rarcs, alpha, d, base, x, r, 0, n)
	} else {
		seedDiff = sweep(start, rarcs, alpha, d, base, x, r, 0, n)
	}
	if opts.Observe != nil {
		opts.Observe(1, seedDiff)
	}
	for v := 0; v < n; v++ {
		r[v] -= x[v]
	}

	tau := opts.Threshold / float64(n)
	queue := make([]int32, 0, 1024)
	inQueue := make([]bool, n)
	mass := 0.0
	for v := 0; v < n; v++ {
		rv := r[v]
		if rv < 0 {
			mass -= rv
		} else {
			mass += rv
		}
		if rv > tau || rv < -tau {
			queue = append(queue, int32(v))
			inQueue[v] = true
		}
	}
	res := DeltaResult{Frontier: len(queue)}
	res.Iterations = 1 // the seeding sweep

	if mass <= opts.Threshold {
		// The republished rates didn't move the fixpoint beyond a full
		// solve's own stopping point: ‖(x+r) − x*‖₁ ≤ d·mass/(1−d) is
		// already inside the tolerance class. Folding the residual in is
		// one free Gauss–Jacobi step. Without this exit, the converged
		// prev's own slack — mass just under Threshold spread across all
		// of |V| — would put half the graph a hair over the per-node tau
		// and push-chase noise the stopping rule deliberately tolerates.
		for v := 0; v < n; v++ {
			x[v] += r[v]
		}
		pool.Put(r)
		res.Scores = x
		res.Converged = true
		return res
	}

	fallback := func(err error) DeltaResult {
		// Complete with full sweeps, warm-started from the seeded
		// Gauss–Jacobi state x+r (one whole iteration already paid for).
		for v := 0; v < n; v++ {
			x[v] += r[v]
		}
		pool.Put(r)
		if err != nil {
			res.Err = err
			res.Scores = x
			return res
		}
		fopts := opts
		fopts.Init = x
		full := Iterate(g, alpha, base, fopts, workers, pool)
		pool.Put(x)
		res.Result = full
		res.Result.Iterations += res.Iterations
		res.FellBack = true
		return res
	}
	if len(queue) > int(frontierFrac*float64(n)) {
		return fallback(nil)
	}

	// Push phase over the forward CSR. The budget equals a full
	// MaxIters run's node updates; delta solves that need anywhere near
	// it are mis-classified perturbations and finish as full sweeps.
	fstart, farcs := g.ForwardCSR()
	budget := opts.MaxIters * n
	pushes := 0
	// FIFO order, deliberately: round-robin processing is Gauss–Seidel
	// in rounds, so every frontier node's outgoing contributions
	// aggregate in its neighbours' residuals before those neighbours are
	// processed once. A LIFO stack cascades depth-first and reprocesses
	// the same descendants once per frontier node — orders of magnitude
	// more pushes for the same mass contraction.
	head := 0
	for head < len(queue) {
		v := queue[head]
		head++
		if head >= 4096 && head*2 >= len(queue) {
			copy(queue, queue[head:])
			queue = queue[:len(queue)-head]
			head = 0
		}
		inQueue[v] = false
		rv := r[v]
		if rv <= tau && rv >= -tau {
			continue
		}
		x[v] += rv
		r[v] = 0
		pushes++
		if pushes&4095 == 0 {
			if ctx := opts.Ctx; ctx != nil {
				if err := ctx.Err(); err != nil {
					res.Pushes = pushes
					return fallback(err)
				}
			}
			if pushes >= budget {
				res.Pushes = pushes
				return fallback(nil)
			}
		}
		drv := d * rv
		for k := fstart[v]; k < fstart[v+1]; k++ {
			a := farcs[k]
			w := alpha[a.Type]
			if w == 0 {
				continue
			}
			u := a.To
			ru := r[u] + drv*w*float64(a.InvDeg)
			r[u] = ru
			if !inQueue[u] && (ru > tau || ru < -tau) {
				queue = append(queue, int32(u))
				inQueue[u] = true
			}
		}
	}
	pool.Put(r)
	res.Pushes = pushes
	res.Scores = x
	res.Converged = true
	return res
}
