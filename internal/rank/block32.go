package rank

import (
	"fmt"
	"sync"

	"authorityflow/internal/graph"
)

// IterateBlock32 is IterateBlock with float32 panel STORAGE: the
// working [node*B+column] panels hold float32 lanes, halving the
// panel's memory traffic per sweep (the dominant bandwidth term of
// wide blocked solves) and doubling the number of columns one cache
// line feeds — sixteen f32 lanes per 64-byte line against eight f64
// lanes. Arithmetic stays float64 throughout: each node's per-column
// accumulation ((1−d)·base[v] first, then the d·alpha[t]·InvDeg·cur[u]
// terms in (source, type) order) runs in double precision and rounds
// to float32 exactly once, at the panel store; the L1 residuals that
// drive convergence accumulate in float64 as well. Converged columns
// are frozen into ordinary []float64 Scores, so results are drop-in
// for IterateBlock's.
//
// Compatibility classification — this is the one kernel mode in the
// package that is NOT bit-identical to Iterate: every panel element
// carries one float32 rounding (relative 2⁻²⁴) per sweep, which the
// d-contraction bounds to an absolute error of order ε₃₂/(1−d) ≈ 5e-7
// on unit-mass score vectors at d = 0.85. Callers that need answers
// bit-identical to the single-vector kernel (the user-facing query and
// batch paths) must keep using IterateBlock; IterateBlock32 is the
// opt-in for bulk producers — cache prewarm, precompute builds, the
// profile basis — whose consumers tolerate 1e-6 agreement
// (TestIterateBlock32Agreement pins the bound). Because convergence is
// decided on the f32-rounded residuals, iteration counts may differ
// from the f64 kernel by a step near the threshold; Converged remains
// a correct statement about the returned vector either way.
//
// Options.Tile is ignored: halving the panel footprint already buys
// the locality tiling exists to recover, and a tiled f32 sweep would
// round each element once per TILE PASS instead of once per sweep,
// widening the error class for no bandwidth win on top of f32.
//
// Convergence thresholds are clamped up to Float32ThresholdFloor: a
// float32-stored panel's per-sweep L1 residual carries rounding noise
// of order ε₃₂ on unit-mass vectors, so a tighter requested threshold
// (engines commonly run 1e-8/1e-9) is physically unreachable and
// would spin every column to MaxIters — turning the bandwidth
// optimization into a multiple-times-slower solve. The clamp keeps
// the final vector in the same ~1e-6 agreement class (floor/(1−d))
// while stopping as soon as the panel is inside its noise ball.
// ZeroThreshold (early stopping disabled) is honored unchanged.
//
// Per-column semantics otherwise mirror IterateBlock exactly:
// per-column Options (damping, threshold, MaxIters, Init, Observe,
// Ctx), per-column freeze-on-converge, pre-sweep cancellation gates,
// and the stale-Init degrade-to-cold with Result.InitDropped. workers
// fans node ranges out exactly as IterateBlock does.
// Float32ThresholdFloor is the tightest L1 convergence threshold
// IterateBlock32 honors. One float32 rounding per element per sweep
// puts ~ε₃₂ ≈ 1.2e-7 of irreducible noise on the L1 residual of a
// unit-mass column (the residual compares two independently rounded
// panels), so the floor sits at ~2× that noise: tight enough that the
// returned vector stays in the documented 1e-6 agreement class, loose
// enough that convergence actually triggers instead of flapping on
// rounding jitter until MaxIters.
const Float32ThresholdFloor = 2.5e-7

func IterateBlock32(g *graph.Graph, alpha []float64, bases [][]float64, opts []Options, workers int, pool *BufferPool) []Result {
	B := len(bases)
	if B == 0 {
		return nil
	}
	n := g.NumNodes()
	if len(alpha) < g.Schema().NumTransferTypes() {
		panic(fmt.Sprintf("rank: alpha vector has %d entries, schema has %d transfer types", len(alpha), g.Schema().NumTransferTypes()))
	}
	if len(opts) != 1 && len(opts) != B {
		panic(fmt.Sprintf("rank: IterateBlock32 got %d option sets for %d base sets (want 1 or %d)", len(opts), B, B))
	}
	results := make([]Result, B)
	col := make([]Options, B)
	for j := 0; j < B; j++ {
		o := opts[0]
		if len(opts) == B {
			o = opts[j]
		}
		if len(bases[j]) != n {
			panic(fmt.Sprintf("rank: base distribution %d has %d entries for a %d-node graph", j, len(bases[j]), n))
		}
		if o.Init != nil && len(o.Init) != n {
			o.Init = nil
			results[j].InitDropped = true
		}
		col[j] = o.Normalized()
		// Clamp to the f32 noise floor; Threshold 0 here means the
		// caller passed ZeroThreshold (early stopping off) — keep it.
		if t := col[j].Threshold; t > 0 && t < Float32ThresholdFloor {
			col[j].Threshold = Float32ThresholdFloor
		}
	}

	// Working panels, [node*B + column], float32 storage. These are
	// mode-local (the shared BufferPool recycles float64 backing
	// arrays); at half the footprint of the f64 panels the two
	// allocations are the cheapest part of a multi-sweep solve.
	cur := make([]float32, n*B)
	next := make([]float32, n*B)
	for v := 0; v < n; v++ {
		row := v * B
		for j := 0; j < B; j++ {
			if col[j].Init != nil {
				cur[row+j] = float32(col[j].Init[v])
			} else {
				cur[row+j] = float32(bases[j][v])
			}
		}
	}

	d := make([]float64, B)
	omd := make([]float64, B)
	for j := 0; j < B; j++ {
		d[j] = col[j].Damping
		omd[j] = 1 - col[j].Damping
	}

	active := make([]int, 0, B)
	for j := 0; j < B; j++ {
		active = append(active, j)
	}
	diffs := make([]float64, B)

	start, arcs := g.ReverseCSR()
	if workers > n {
		workers = n
	}
	parallel := workers > 1
	var bounds []int
	var wdiffs, waccs [][]float64
	acc := make([]float64, B) // per-node f64 accumulators of the serial path
	if parallel {
		bounds = make([]int, workers+1)
		for w := 0; w <= workers; w++ {
			bounds[w] = w * n / workers
		}
		wdiffs = make([][]float64, workers)
		waccs = make([][]float64, workers)
		for w := range wdiffs {
			wdiffs[w] = make([]float64, B)
			waccs[w] = make([]float64, B)
		}
	}

	freeze := func(j int, panel []float32) {
		out := pool.Get(n)
		for v := 0; v < n; v++ {
			out[v] = float64(panel[v*B+j])
		}
		results[j].Scores = out
		for i, a := range active {
			if a == j {
				active = append(active[:i], active[i+1:]...)
				break
			}
		}
	}

	var wg sync.WaitGroup
	for it := 0; len(active) > 0; it++ {
		snapshot := append([]int(nil), active...)
		for _, j := range snapshot {
			if ctx := col[j].Ctx; ctx != nil {
				if err := ctx.Err(); err != nil {
					results[j].Err = err
					freeze(j, cur)
					continue
				}
			}
			if it >= col[j].MaxIters {
				freeze(j, cur)
			}
		}
		if len(active) == 0 {
			break
		}

		if parallel {
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					sweepBlock32(start, arcs, alpha, d, omd, bases, cur, next, B, active, wdiffs[w], waccs[w], bounds[w], bounds[w+1])
				}(w)
			}
			wg.Wait()
			for _, j := range active {
				total := 0.0
				for w := 0; w < workers; w++ {
					total += wdiffs[w][j]
				}
				diffs[j] = total
			}
		} else {
			sweepBlock32(start, arcs, alpha, d, omd, bases, cur, next, B, active, diffs, acc, 0, n)
		}

		snapshot = append(snapshot[:0], active...)
		for _, j := range snapshot {
			results[j].Iterations = it + 1
			if col[j].Observe != nil {
				col[j].Observe(it+1, diffs[j])
			}
			if diffs[j] < col[j].Threshold {
				results[j].Converged = true
				freeze(j, next)
			}
		}
		cur, next = next, cur
	}

	return results
}

// sweepBlock32 is the float32-panel blocked inner loop: per node each
// live column's in-flow accumulates in the float64 scratch acc (seeded
// with omd[j]·bases[j][v], then the damped arc terms in (source, type)
// order — the f64 kernels' exact schedule), is rounded ONCE to float32
// at the panel store, and folds its L1 delta — computed in float64
// against the previous panel value — into diffs.
func sweepBlock32(start []int32, arcs []graph.Arc, alpha []float64, d, omd []float64, bases [][]float64, cur, next []float32, B int, active []int, diffs, acc []float64, lo, hi int) {
	for _, j := range active {
		diffs[j] = 0
	}
	for v := lo; v < hi; v++ {
		row := v * B
		for _, j := range active {
			acc[j] = omd[j] * bases[j][v]
		}
		for k := start[v]; k < start[v+1]; k++ {
			a := arcs[k]
			w := alpha[a.Type]
			if w == 0 {
				continue
			}
			inv := float64(a.InvDeg)
			urow := int(a.To) * B
			for _, j := range active {
				acc[j] += d[j] * w * inv * float64(cur[urow+j])
			}
		}
		for _, j := range active {
			s := acc[j]
			next[row+j] = float32(s)
			delta := s - float64(cur[row+j])
			if delta < 0 {
				delta = -delta
			}
			diffs[j] += delta
		}
	}
}
