package rank

import (
	"math"
	"testing"

	"authorityflow/internal/datagen"
	"authorityflow/internal/graph"
)

// fig1Fixture builds the paper's Figure 1 seven-node DBLP subgraph
// (nodes v1..v7 at IDs 0..6) with the Figure 3 authority transfer
// rates: cites 0.7/0.0, by 0.2/0.2, hasInstance 0.3/0.3, contains
// 0.3/0.1.
func fig1Fixture(t testing.TB) (*graph.Graph, *graph.Rates) {
	t.Helper()
	s := graph.NewSchema()
	paper := s.AddNodeType("Paper")
	conference := s.AddNodeType("Conference")
	year := s.AddNodeType("Year")
	author := s.AddNodeType("Author")
	cites := s.MustAddEdgeType("cites", paper, paper)
	hasInstance := s.MustAddEdgeType("hasInstance", conference, year)
	contains := s.MustAddEdgeType("contains", year, paper)
	by := s.MustAddEdgeType("by", paper, author)

	b := graph.NewBuilder(s)
	v1 := b.AddNode(paper)
	v2 := b.AddNode(conference)
	v3 := b.AddNode(year)
	v4 := b.AddNode(paper)
	v5 := b.AddNode(paper)
	v6 := b.AddNode(author)
	v7 := b.AddNode(paper)
	b.AddEdge(v2, v3, hasInstance)
	b.AddEdge(v3, v1, contains)
	b.AddEdge(v3, v5, contains)
	b.AddEdge(v1, v7, cites)
	b.AddEdge(v4, v7, cites)
	b.AddEdge(v4, v5, cites)
	b.AddEdge(v5, v7, cites)
	b.AddEdge(v4, v6, by)
	b.AddEdge(v5, v6, by)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := graph.NewRates(s)
	r.Set(cites, graph.Forward, 0.7)
	r.Set(cites, graph.Backward, 0.0)
	r.Set(by, graph.Forward, 0.2)
	r.Set(by, graph.Backward, 0.2)
	r.Set(hasInstance, graph.Forward, 0.3)
	r.Set(hasInstance, graph.Backward, 0.3)
	r.Set(contains, graph.Forward, 0.3)
	r.Set(contains, graph.Backward, 0.1)
	return g, r
}

// fig1Base is the Q=[olap] jump distribution of the golden fixture:
// v1 and v4 weighted 0.4/0.6.
func fig1Base(g *graph.Graph) []float64 {
	base := make([]float64, g.NumNodes())
	base[0] = 0.4
	base[3] = 0.6
	return base
}

// fig1GoldenBits holds the exact IEEE-754 bit patterns of the seed
// implementation's converged scores on the Figure 1 graph (damping
// 0.85, threshold 1e-10, recorded from the pre-refactor scatter loop).
// The unified kernel's serial path must reproduce them bit for bit.
var fig1GoldenBits = [7]uint64{
	0x3faf42d6b9f075eb, // v1 0.06105681438223683
	0x3f615099cd6ae62d, // v2 0.002113628764473649
	0x3f80f9afe1fd9fec, // v3 0.008288740238370416
	0x3fb77da86c9ddc5e, // v4 0.09176113750241785
	0x3f9ed6f64b7371cf, // v5 0.03011689029232106
	0x3f95376e519c0ea8, // v6 0.020719264727644543
	0x3fb4e0488b3affad, // v7 0.08154729270154233
}

const fig1GoldenIters = 20

func TestKernelSerialBitIdenticalToSeedFig1(t *testing.T) {
	g, r := fig1Fixture(t)
	res := Run(g, r, fig1Base(g), Options{Damping: 0.85, Threshold: 1e-10, MaxIters: 500})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Iterations != fig1GoldenIters {
		t.Errorf("Iterations = %d, want %d (convergence decision drifted from seed)", res.Iterations, fig1GoldenIters)
	}
	for i, want := range fig1GoldenBits {
		if got := math.Float64bits(res.Scores[i]); got != want {
			t.Errorf("score[v%d] bits = %#016x (%v), want %#016x (%v)",
				i+1, got, res.Scores[i], want, math.Float64frombits(want))
		}
	}
}

func TestKernelPooledBitIdenticalAndReusable(t *testing.T) {
	g, r := fig1Fixture(t)
	pool := NewBufferPool()
	opts := Options{Damping: 0.85, Threshold: 1e-10, MaxIters: 500}
	for round := 0; round < 3; round++ {
		res := Iterate(g, r.Vector(), fig1Base(g), opts, 1, pool)
		for i, want := range fig1GoldenBits {
			if got := math.Float64bits(res.Scores[i]); got != want {
				t.Fatalf("round %d: pooled score[v%d] bits = %#016x, want %#016x", round, i+1, got, want)
			}
		}
		res.ReleaseTo(pool)
		if res.Scores != nil {
			t.Fatal("ReleaseTo did not clear Scores")
		}
	}
}

func TestKernelParallelMatchesSerialFig1(t *testing.T) {
	g, r := fig1Fixture(t)
	opts := Options{Damping: 0.85, Threshold: 1e-10, MaxIters: 500}
	serial := Run(g, r, fig1Base(g), opts)
	for _, workers := range []int{2, 3, 7, 16} {
		par := RunParallel(g, r, fig1Base(g), opts, workers)
		if !par.Converged {
			t.Fatalf("workers=%d did not converge", workers)
		}
		for i := range serial.Scores {
			if math.Abs(serial.Scores[i]-par.Scores[i]) > 1e-12 {
				t.Errorf("workers=%d node %d: serial %v vs parallel %v", workers, i, serial.Scores[i], par.Scores[i])
			}
		}
	}
}

// dblpGolden holds checksums of the seed implementation's output on a
// seeded DBLPtop-scale corpus (scale 0.05, seed 7, base = uniform over
// every 37th node, damping 0.85, threshold 1e-9): node and iteration
// counts, ascending-order score sum, and spot-check score bits.
func dblpFixture(t testing.TB) (*graph.Graph, *graph.Rates, []float64) {
	t.Helper()
	cfg := datagen.DBLPTopConfig().Scale(0.05)
	cfg.Seed = 7
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := ds.Graph.NumNodes()
	base := make([]float64, n)
	for i := 0; i < n; i += 37 {
		base[i] = 1
	}
	NormalizeDist(base)
	return ds.Graph, ds.Rates, base
}

func TestKernelSerialBitIdenticalToSeedDBLP(t *testing.T) {
	g, r, base := dblpFixture(t)
	if n := g.NumNodes(); n != 1128 {
		t.Fatalf("fixture drifted: %d nodes, want 1128 (golden bits are void)", n)
	}
	res := Run(g, r, base, Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 1000})
	if !res.Converged || res.Iterations != 35 {
		t.Fatalf("converged=%v iterations=%d, want converged in 35 (seed)", res.Converged, res.Iterations)
	}
	sum := 0.0
	nonzero := 0
	for _, s := range res.Scores {
		sum += s
		if s != 0 {
			nonzero++
		}
	}
	if nonzero != 1119 {
		t.Errorf("nonzero scores = %d, want 1119", nonzero)
	}
	if bits := math.Float64bits(sum); bits != 0x3fd7247ac37c7d48 {
		t.Errorf("score-sum bits = %#016x (%v), want 0x3fd7247ac37c7d48", bits, sum)
	}
	n := g.NumNodes()
	spot := map[int]uint64{
		0:     0x3f85f07d02ed19b2,
		1:     0x3f640a40ead31216,
		n / 3: 0x3ed86de7ed83b20e,
		n / 2: 0x3f262c512c05a310,
		n - 1: 0x3ef0fc44450a261a,
	}
	for i, want := range spot {
		if got := math.Float64bits(res.Scores[i]); got != want {
			t.Errorf("score[%d] bits = %#016x (%v), want %#016x", i, got, res.Scores[i], want)
		}
	}
}

func TestKernelParallelMatchesSerialDBLP(t *testing.T) {
	g, r, base := dblpFixture(t)
	opts := Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 1000}
	serial := Run(g, r, base, opts)
	par := RunParallel(g, r, base, opts, 4)
	if !par.Converged {
		t.Fatal("parallel did not converge")
	}
	for i := range serial.Scores {
		if math.Abs(serial.Scores[i]-par.Scores[i]) > 1e-12 {
			t.Fatalf("node %d: serial %v vs parallel %v", i, serial.Scores[i], par.Scores[i])
		}
	}
}

func TestKernelDegradesStaleInit(t *testing.T) {
	// Warm-start-after-graph-rebuild contract: the seed silently
	// ignored a wrong-length Init vector, then a later version panicked
	// on it — which let a SwapCorpus racing a background precompute or
	// basis rebuild crash a serving goroutine. The kernel now DEGRADES:
	// the stale vector is dropped, the run starts cold, and
	// Result.InitDropped reports the drop. The degraded run must be
	// bit-identical to an explicitly cold one.
	g, r := fig1Fixture(t)
	first := Run(g, r, fig1Base(g), Options{})

	// "Rebuild" a larger graph (one extra paper) and warm-start from
	// the old, now-stale score vector.
	s := graph.NewSchema()
	paper := s.AddNodeType("Paper")
	cites := s.MustAddEdgeType("cites", paper, paper)
	b := graph.NewBuilder(s)
	var ids []graph.NodeID
	for i := 0; i < g.NumNodes()+1; i++ {
		ids = append(ids, b.AddNode(paper))
	}
	b.AddEdge(ids[0], ids[1], cites)
	g2 := b.MustBuild()
	r2 := graph.NewRates(s)
	r2.Set(cites, graph.Forward, 0.7)

	base2 := make([]float64, g2.NumNodes())
	base2[0] = 1
	stale := Run(g2, r2, base2, Options{Init: first.Scores})
	if !stale.InitDropped {
		t.Fatal("stale Init was not reported as dropped")
	}
	cold := Run(g2, r2, base2, Options{})
	if cold.InitDropped {
		t.Fatal("cold run reported a dropped Init")
	}
	if stale.Iterations != cold.Iterations || stale.Converged != cold.Converged {
		t.Fatalf("degraded run (iters=%d conv=%v) differs from cold (iters=%d conv=%v)",
			stale.Iterations, stale.Converged, cold.Iterations, cold.Converged)
	}
	for i := range cold.Scores {
		if math.Float64bits(stale.Scores[i]) != math.Float64bits(cold.Scores[i]) {
			t.Fatalf("score[%d]: degraded %v != cold %v", i, stale.Scores[i], cold.Scores[i])
		}
	}
	// A RIGHT-length Init must still be honored, not dropped.
	warm := Run(g, r, fig1Base(g), Options{Init: first.Scores})
	if warm.InitDropped {
		t.Fatal("matching Init reported as dropped")
	}
}

func TestKernelPanicsOnBadBase(t *testing.T) {
	g, r := fig1Fixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Run accepted a base vector of the wrong length")
		}
	}()
	Run(g, r, make([]float64, g.NumNodes()+3), Options{})
}

func TestOptionsNormalizedSentinels(t *testing.T) {
	def := Options{}.Normalized()
	if def.Damping != 0.85 || def.Threshold != 0.002 || def.MaxIters != 200 {
		t.Errorf("zero value normalized to %+v, want paper defaults", def)
	}
	z := Options{Damping: ZeroDamping, Threshold: ZeroThreshold, MaxIters: ZeroIters}.Normalized()
	if z.Damping != 0 || z.Threshold != 0 || z.MaxIters != 0 {
		t.Errorf("sentinels normalized to %+v, want literal zeros", z)
	}
	// Defaults() is already normalized.
	d2 := Defaults().Normalized()
	want := Defaults()
	if d2.Damping != want.Damping || d2.Threshold != want.Threshold || d2.MaxIters != want.MaxIters {
		t.Errorf("Defaults().Normalized() = %+v", d2)
	}
}

func TestZeroDampingYieldsBaseDistribution(t *testing.T) {
	g, r := fig1Fixture(t)
	base := fig1Base(g)
	res := Run(g, r, base, Options{Damping: ZeroDamping, Threshold: 1e-12})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for i := range base {
		if res.Scores[i] != base[i] {
			t.Errorf("score[%d] = %v, want base %v with zero damping", i, res.Scores[i], base[i])
		}
	}
}

func TestZeroItersReturnsStartVector(t *testing.T) {
	g, r := fig1Fixture(t)
	base := fig1Base(g)
	res := Run(g, r, base, Options{MaxIters: ZeroIters})
	if res.Iterations != 0 || res.Converged {
		t.Errorf("iterations=%d converged=%v, want 0/false", res.Iterations, res.Converged)
	}
	for i := range base {
		if res.Scores[i] != base[i] {
			t.Errorf("score[%d] = %v, want base %v with zero iterations", i, res.Scores[i], base[i])
		}
	}
}

func TestZeroThresholdRunsAllIterations(t *testing.T) {
	g, r := fig1Fixture(t)
	res := Run(g, r, fig1Base(g), Options{Threshold: ZeroThreshold, MaxIters: 17})
	if res.Converged || res.Iterations != 17 {
		t.Errorf("iterations=%d converged=%v, want exactly 17/false", res.Iterations, res.Converged)
	}
}

// TestKernelAllocsBounded asserts the pooled steady state allocates at
// most a small constant per run (goroutine-free serial path).
func TestKernelAllocsBounded(t *testing.T) {
	g, r := fig1Fixture(t)
	alpha := r.Vector()
	base := fig1Base(g)
	pool := NewBufferPool()
	opts := Options{Damping: 0.85, Threshold: 1e-10, MaxIters: 500}
	// Warm the pool.
	res := Iterate(g, alpha, base, opts, 1, pool)
	res.ReleaseTo(pool)
	allocs := testing.AllocsPerRun(20, func() {
		r := Iterate(g, alpha, base, opts, 1, pool)
		r.ReleaseTo(pool)
	})
	if allocs > 4 {
		t.Errorf("pooled serial kernel allocates %.0f objects/run, want <= 4", allocs)
	}
}

func BenchmarkKernelPooledSteadyState(b *testing.B) {
	g, r, base := dblpFixture(b)
	alpha := r.Vector()
	pool := NewBufferPool()
	opts := Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Iterate(g, alpha, base, opts, 1, pool)
		res.ReleaseTo(pool)
	}
}

func BenchmarkKernelUnpooled(b *testing.B) {
	g, r, base := dblpFixture(b)
	alpha := r.Vector()
	opts := Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Iterate(g, alpha, base, opts, 1, nil)
	}
}
