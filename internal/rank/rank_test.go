package rank

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"authorityflow/internal/graph"
)

// paperGraph builds a small citation-only graph: n Paper nodes plus the
// listed cites edges, with forward rate fw and backward rate bw.
func paperGraph(t testing.TB, n int, edges [][2]int, fw, bw float64) (*graph.Graph, *graph.Rates) {
	t.Helper()
	s := graph.NewSchema()
	paper := s.AddNodeType("Paper")
	cites := s.MustAddEdgeType("cites", paper, paper)
	b := graph.NewBuilder(s)
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = b.AddNode(paper)
	}
	for _, e := range edges {
		b.AddEdge(ids[e[0]], ids[e[1]], cites)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := graph.NewRates(s)
	r.Set(cites, graph.Forward, fw)
	r.Set(cites, graph.Backward, bw)
	return g, r
}

func TestRunClosedFormTwoNodes(t *testing.T) {
	// A -> B with rate 0.7 forward, 0 backward, d = 0.85, uniform base.
	// Fixpoint: r(A) = 0.15*0.5 = 0.075,
	// r(B) = 0.075 + 0.85*0.7*r(A) = 0.119625.
	g, r := paperGraph(t, 2, [][2]int{{0, 1}}, 0.7, 0)
	base := []float64{0.5, 0.5}
	res := Run(g, r, base, Options{Damping: 0.85, Threshold: 1e-12, MaxIters: 500})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(res.Scores[0]-0.075) > 1e-9 {
		t.Errorf("r(A) = %v, want 0.075", res.Scores[0])
	}
	if math.Abs(res.Scores[1]-0.119625) > 1e-9 {
		t.Errorf("r(B) = %v, want 0.119625", res.Scores[1])
	}
}

func TestRunEquation1Split(t *testing.T) {
	// A cites B and C: each forward arc carries 0.7/2 (Equation 1).
	g, r := paperGraph(t, 3, [][2]int{{0, 1}, {0, 2}}, 0.7, 0)
	base := []float64{1, 0, 0}
	res := Run(g, r, base, Options{Damping: 0.85, Threshold: 1e-12, MaxIters: 500})
	if math.Abs(res.Scores[1]-res.Scores[2]) > 1e-12 {
		t.Errorf("B and C should tie: %v vs %v", res.Scores[1], res.Scores[2])
	}
	// r(A) = 0.15, r(B) = 0.85*0.35*0.15.
	if want := 0.85 * 0.35 * 0.15; math.Abs(res.Scores[1]-want) > 1e-9 {
		t.Errorf("r(B) = %v, want %v", res.Scores[1], want)
	}
}

func TestPageRankCycleUniform(t *testing.T) {
	// A 4-cycle with symmetric rates converges to uniform PageRank.
	g, r := paperGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 0.5, 0.5)
	res := PageRank(g, r, Options{Threshold: 1e-12, MaxIters: 1000})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for i, s := range res.Scores {
		if math.Abs(s-res.Scores[0]) > 1e-9 {
			t.Errorf("node %d score %v differs from node 0 %v", i, s, res.Scores[0])
		}
	}
	// With total outgoing rate 1 per node the scores sum to 1.
	sum := 0.0
	for _, s := range res.Scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("scores sum to %v, want 1", sum)
	}
}

func TestScoresLeakWhenRatesBelowOne(t *testing.T) {
	// With outgoing rates summing below 1, authority leaks and the
	// total mass stays below 1 — matching the paper's example where the
	// ObjectRank vector sums to ~0.29.
	g, r := paperGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 0.3, 0)
	res := PageRank(g, r, Options{Threshold: 1e-12, MaxIters: 1000})
	sum := 0.0
	for _, s := range res.Scores {
		sum += s
	}
	if sum >= 1 {
		t.Errorf("scores sum to %v, want < 1 with leakage", sum)
	}
	if sum <= 0 {
		t.Errorf("scores sum to %v, want > 0", sum)
	}
}

func TestObjectRankBaseSet(t *testing.T) {
	// Chain 0 -> 1 -> 2. Base set {0}: authority reaches 2 even though
	// it is not in the base set; node outside any path stays at 0.
	g, r := paperGraph(t, 4, [][2]int{{0, 1}, {1, 2}}, 0.7, 0)
	res := ObjectRank(g, r, []graph.NodeID{0}, Options{Threshold: 1e-12, MaxIters: 500})
	if res.Scores[2] <= 0 {
		t.Error("node 2 should receive flowing authority")
	}
	if res.Scores[0] <= res.Scores[2] {
		t.Error("base-set node should outrank a 2-hop neighbor")
	}
	if res.Scores[3] != 0 {
		t.Errorf("disconnected node score = %v, want 0", res.Scores[3])
	}
	// Empty base set: all zero.
	res = ObjectRank(g, r, nil, Options{Threshold: 1e-12, MaxIters: 50})
	for i, s := range res.Scores {
		if s != 0 {
			t.Errorf("node %d = %v with empty base set", i, s)
		}
	}
}

func TestWarmStartFewerIterations(t *testing.T) {
	// A larger random graph; warm-starting from the converged scores of
	// a similar query must converge in fewer iterations (Figures
	// 14b-17b of the paper).
	rng := rand.New(rand.NewSource(42))
	var edges [][2]int
	const n = 400
	for i := 0; i < 4*n; i++ {
		edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	g, r := paperGraph(t, n, edges, 0.6, 0.2)

	base := make([]float64, n)
	for i := 0; i < 20; i++ {
		base[rng.Intn(n)] = 1
	}
	NormalizeDist(base)
	opts := Options{Threshold: 1e-9, MaxIters: 2000}
	cold := Run(g, r, base, opts)
	if !cold.Converged {
		t.Fatal("cold run did not converge")
	}

	// Perturb the base slightly (one keyword changed) and rerun warm.
	base2 := append([]float64(nil), base...)
	base2[rng.Intn(n)] += 0.05
	NormalizeDist(base2)
	optsWarm := opts
	optsWarm.Init = cold.Scores
	warm := Run(g, r, base2, optsWarm)
	coldRerun := Run(g, r, base2, opts)
	if !warm.Converged || !coldRerun.Converged {
		t.Fatal("reruns did not converge")
	}
	if warm.Iterations >= coldRerun.Iterations {
		t.Errorf("warm start took %d iterations, cold %d", warm.Iterations, coldRerun.Iterations)
	}
	// Same fixpoint either way.
	for i := range warm.Scores {
		if math.Abs(warm.Scores[i]-coldRerun.Scores[i]) > 1e-6 {
			t.Fatalf("warm and cold disagree at %d: %v vs %v", i, warm.Scores[i], coldRerun.Scores[i])
		}
	}
}

func TestMaxItersStopsWithoutConvergence(t *testing.T) {
	g, r := paperGraph(t, 2, [][2]int{{0, 1}}, 0.7, 0.1)
	res := Run(g, r, []float64{0.5, 0.5}, Options{Threshold: 1e-15, MaxIters: 2})
	if res.Converged {
		t.Error("2 iterations should not reach 1e-15")
	}
	if res.Iterations != 2 {
		t.Errorf("Iterations = %d, want 2", res.Iterations)
	}
}

func TestObjectRankMulti(t *testing.T) {
	// Two keywords with different base sets. The combined score must be
	// positive exactly for nodes reachable from BOTH base sets (product
	// semantics).
	g, r := paperGraph(t, 5, [][2]int{{0, 2}, {1, 2}, {2, 3}}, 0.7, 0)
	bs1 := []graph.NodeID{0}
	bs2 := []graph.NodeID{1}
	res := ObjectRankMulti(g, r, [][]graph.NodeID{bs1, bs2}, Options{Threshold: 1e-12, MaxIters: 500})
	if res.Scores[2] <= 0 || res.Scores[3] <= 0 {
		t.Error("nodes reachable from both base sets should score > 0")
	}
	if res.Scores[4] != 0 {
		t.Error("unreachable node should score 0")
	}
	// Node 0 is only in keyword 1's reach, so its product is 0.
	if res.Scores[1] != 0 {
		t.Errorf("node 1 = %v, want 0 (unreachable from base set 1)", res.Scores[1])
	}
	if res.Iterations <= 0 {
		t.Error("Iterations should accumulate across keywords")
	}
}

func TestNormalizingExponent(t *testing.T) {
	if g := normalizingExponent(0); g != 1 {
		t.Errorf("g(0) = %v", g)
	}
	if g := normalizingExponent(2); g != 1 {
		t.Errorf("g(2) = %v, want clamp to 1", g)
	}
	g1000 := normalizingExponent(1000)
	g10 := normalizingExponent(10)
	if !(g1000 < g10 && g10 < 1) {
		t.Errorf("exponent not decreasing: g(10)=%v g(1000)=%v", g10, g1000)
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.3, 0.9, 0.1, 0.9, 0.5}
	top := TopK(scores, 3)
	if len(top) != 3 {
		t.Fatalf("TopK len = %d", len(top))
	}
	// Ties broken by ascending node ID: 1 before 3.
	if top[0].Node != 1 || top[1].Node != 3 || top[2].Node != 4 {
		t.Errorf("TopK order = %v", top)
	}
	if got := TopK(scores, 100); len(got) != len(scores) {
		t.Errorf("TopK over-length = %d", len(got))
	}
	if got := TopK(scores, 0); got != nil {
		t.Errorf("TopK(0) = %v", got)
	}
}

func TestTopKOfType(t *testing.T) {
	s := graph.NewSchema()
	paper := s.AddNodeType("Paper")
	author := s.AddNodeType("Author")
	by := s.MustAddEdgeType("by", paper, author)
	b := graph.NewBuilder(s)
	p0 := b.AddNode(paper)
	a0 := b.AddNode(author)
	p1 := b.AddNode(paper)
	b.AddEdge(p0, a0, by)
	g := b.MustBuild()
	scores := []float64{0.2, 0.9, 0.4}
	top := TopKOfType(g, scores, paper, 10)
	if len(top) != 2 || top[0].Node != p1 || top[1].Node != p0 {
		t.Errorf("TopKOfType = %v", top)
	}
	if got := TopKOfType(g, scores, author, 0); got != nil {
		t.Errorf("TopKOfType k=0 = %v", got)
	}
}

func TestNormalizeDist(t *testing.T) {
	v := []float64{1, 3}
	NormalizeDist(v)
	if v[0] != 0.25 || v[1] != 0.75 {
		t.Errorf("NormalizeDist = %v", v)
	}
	z := []float64{0, 0}
	NormalizeDist(z)
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("zero vector changed: %v", z)
	}
}

// TestPropertyScoresNonNegativeBounded: for random graphs and random
// normalized base vectors, all scores are non-negative and the total
// mass never exceeds 1 (authority only leaks, never appears).
func TestPropertyScoresNonNegativeBounded(t *testing.T) {
	prop := func(seed int64, nEdges uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 15
		var edges [][2]int
		for i := 0; i < int(nEdges); i++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		gt := &testing.T{}
		g, r := paperGraph(gt, n, edges, 0.5, 0.3)
		base := make([]float64, n)
		for i := range base {
			base[i] = rng.Float64()
		}
		NormalizeDist(base)
		res := Run(g, r, base, Options{Threshold: 1e-10, MaxIters: 500})
		sum := 0.0
		for _, s := range res.Scores {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTopKMatchesNaiveSort cross-checks the bounded-heap selection
// against a full sort on random score vectors, including heavy ties.
func TestTopKMatchesNaiveSort(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		scores := make([]float64, n)
		for i := range scores {
			// Quantize to force ties.
			scores[i] = float64(rng.Intn(8)) / 7
		}
		k := 1 + rng.Intn(n+5)
		got := TopK(scores, k)

		naive := make([]Ranked, n)
		for i, s := range scores {
			naive[i] = Ranked{Node: graph.NodeID(i), Score: s}
		}
		sort.Slice(naive, func(i, j int) bool {
			if naive[i].Score != naive[j].Score {
				return naive[i].Score > naive[j].Score
			}
			return naive[i].Node < naive[j].Node
		})
		want := naive
		if k < len(want) {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: rank %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	scores := make([]float64, 500000)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(scores, 10)
	}
}
