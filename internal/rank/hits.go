package rank

import (
	"math"

	"authorityflow/internal/graph"
)

// HITSResult holds the converged hub and authority scores of
// Kleinberg's HITS algorithm [Kle99], which the paper's related-work
// section positions against authority-flow ranking: HITS computes two
// mutually dependent values per node instead of one flow fixpoint, and
// ignores edge types and transfer rates.
type HITSResult struct {
	Hubs        []float64
	Authorities []float64
	Iterations  int
	Converged   bool
}

// HITS runs hubs-and-authorities over the data edges (forward arcs
// only, matching HITS's original directed-link semantics) restricted to
// the given node subset (nil = whole graph). Scores are L2-normalized
// each iteration; convergence is the L1 change of the authority vector
// falling below threshold.
//
// HITS is the query-dependent baseline of the related work: callers
// typically pass the base set expanded by a hop or two (the "focused
// subgraph" of [Kle99]) and rank by authority score.
func HITS(g *graph.Graph, subset []graph.NodeID, threshold float64, maxIters int) HITSResult {
	if threshold <= 0 {
		threshold = 1e-6
	}
	if maxIters <= 0 {
		maxIters = 100
	}
	n := g.NumNodes()
	in := make([]bool, n)
	if subset == nil {
		for i := range in {
			in[i] = true
		}
	} else {
		for _, v := range subset {
			if v >= 0 && int(v) < n {
				in[v] = true
			}
		}
	}

	hubs := make([]float64, n)
	auth := make([]float64, n)
	for i := range hubs {
		if in[i] {
			hubs[i] = 1
			auth[i] = 1
		}
	}
	res := HITSResult{}
	prevAuth := make([]float64, n)
	for it := 0; it < maxIters; it++ {
		copy(prevAuth, auth)
		// Authority update: sum of hub scores over incoming data edges.
		for v := 0; v < n; v++ {
			if !in[v] {
				continue
			}
			sum := 0.0
			for _, a := range g.InArcs(graph.NodeID(v)) {
				if a.Type.Dir() == graph.Forward && in[a.To] {
					sum += hubs[a.To]
				}
			}
			auth[v] = sum
		}
		normalizeL2(auth)
		// Hub update: sum of authority scores over outgoing data edges.
		for v := 0; v < n; v++ {
			if !in[v] {
				continue
			}
			sum := 0.0
			for _, a := range g.OutArcs(graph.NodeID(v)) {
				if a.Type.Dir() == graph.Forward && in[a.To] {
					sum += auth[a.To]
				}
			}
			hubs[v] = sum
		}
		normalizeL2(hubs)

		res.Iterations = it + 1
		diff := 0.0
		for v := range auth {
			diff += math.Abs(auth[v] - prevAuth[v])
		}
		if diff < threshold {
			res.Converged = true
			break
		}
	}
	res.Hubs = hubs
	res.Authorities = auth
	return res
}

func normalizeL2(v []float64) {
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	if sum == 0 {
		return
	}
	norm := math.Sqrt(sum)
	for i := range v {
		v[i] /= norm
	}
}

// FocusedSubgraph returns the [Kle99]-style focused node set for a base
// set: the base nodes plus every node within radius data-edge hops
// (either direction).
func FocusedSubgraph(g *graph.Graph, base []graph.NodeID, radius int) []graph.NodeID {
	seen := make(map[graph.NodeID]bool, len(base))
	var out, frontier []graph.NodeID
	for _, v := range base {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
			frontier = append(frontier, v)
		}
	}
	for hop := 0; hop < radius; hop++ {
		var next []graph.NodeID
		for _, v := range frontier {
			for _, a := range g.OutArcs(v) {
				if !seen[a.To] {
					seen[a.To] = true
					out = append(out, a.To)
					next = append(next, a.To)
				}
			}
		}
		frontier = next
	}
	return out
}
