package rank

import (
	"context"
	"math"
	"testing"
	"time"
)

// TestIterateCancelBeforeStart: a context that is already dead at entry
// stops the run before the first sweep — zero iterations, Err set, and
// the scores equal the start vector (base distribution or Init).
func TestIterateCancelBeforeStart(t *testing.T) {
	g, r := fig1Fixture(t)
	base := fig1Base(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, workers := range []int{1, 3} {
		res := Iterate(g, r.Vector(), base, Options{Ctx: ctx}, workers, nil)
		if res.Err != context.Canceled {
			t.Fatalf("workers=%d: Err=%v, want context.Canceled", workers, res.Err)
		}
		if res.Iterations != 0 || res.Converged {
			t.Fatalf("workers=%d: Iterations=%d Converged=%t after pre-cancelled ctx, want 0/false",
				workers, res.Iterations, res.Converged)
		}
		for v := range base {
			if res.Scores[v] != base[v] {
				t.Fatalf("workers=%d: score %d = %v, want start-vector value %v", workers, v, res.Scores[v], base[v])
			}
		}
	}
}

// TestIterateCancelMidSolve cancels the context from the per-iteration
// observer at iteration N and asserts the kernel stops within exactly
// one sweep: the run executes iteration N (the cancel arrives after its
// sweep completed), the per-sweep poll fires before sweep N+1, and the
// published scores are the COMPLETE state of iteration N — bit-identical
// to an uncancelled run truncated at MaxIters=N. Scores are never
// partially published.
func TestIterateCancelMidSolve(t *testing.T) {
	g, r := fig1Fixture(t)
	base := fig1Base(g)
	const stopAt = 3

	// Reference: what a run truncated exactly at stopAt iterations
	// produces (ZeroThreshold disables early convergence).
	ref := Iterate(g, r.Vector(), base, Options{Threshold: ZeroThreshold, MaxIters: stopAt}, 1, nil)
	if ref.Iterations != stopAt {
		t.Fatalf("reference run executed %d iterations, want %d", ref.Iterations, stopAt)
	}

	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		opts := Options{
			Threshold: ZeroThreshold,
			MaxIters:  500,
			Ctx:       ctx,
			Observe: func(iter int, residual float64) {
				if iter == stopAt {
					cancel()
				}
			},
		}
		res := Iterate(g, r.Vector(), base, opts, workers, nil)
		if res.Err != context.Canceled {
			t.Fatalf("workers=%d: Err=%v, want context.Canceled", workers, res.Err)
		}
		if res.Iterations != stopAt {
			t.Fatalf("workers=%d: run executed %d iterations after cancel at %d — did not stop within one sweep",
				workers, res.Iterations, stopAt)
		}
		if res.Converged {
			t.Fatalf("workers=%d: cancelled run reported Converged", workers)
		}
		if workers == 1 {
			// Serial path is bitwise deterministic: the cancelled run's
			// scores must be bit-identical to the truncated reference.
			for v := range ref.Scores {
				if res.Scores[v] != ref.Scores[v] {
					t.Fatalf("score %d = %b, want the complete iteration-%d state %b",
						v, res.Scores[v], stopAt, ref.Scores[v])
				}
			}
		} else {
			// Parallel matches up to summation order.
			for v := range ref.Scores {
				if math.Abs(res.Scores[v]-ref.Scores[v]) > 1e-12 {
					t.Fatalf("workers=%d: score %d = %v, want ~%v", workers, v, res.Scores[v], ref.Scores[v])
				}
			}
		}
		cancel()
	}
}

// TestIterateDeadlineExceeded: an expired deadline surfaces
// context.DeadlineExceeded (the 504 mapping of the HTTP layer), not
// Canceled.
func TestIterateDeadlineExceeded(t *testing.T) {
	g, r := fig1Fixture(t)
	base := fig1Base(g)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	res := Iterate(g, r.Vector(), base, Options{Ctx: ctx}, 1, nil)
	if res.Err != context.DeadlineExceeded {
		t.Fatalf("Err=%v, want context.DeadlineExceeded", res.Err)
	}
}

// TestIterateBackgroundCtxMatchesNil: running under a live (never
// cancelled) context changes nothing — scores, iterations and the
// convergence decision are bit-identical to a nil-Ctx run.
func TestIterateBackgroundCtxMatchesNil(t *testing.T) {
	g, r := fig1Fixture(t)
	base := fig1Base(g)
	plain := Iterate(g, r.Vector(), base, Options{Threshold: 1e-10, MaxIters: 500}, 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx := Iterate(g, r.Vector(), base, Options{Threshold: 1e-10, MaxIters: 500, Ctx: ctx}, 1, nil)
	if withCtx.Err != nil {
		t.Fatalf("live-ctx run reported Err=%v", withCtx.Err)
	}
	if plain.Iterations != withCtx.Iterations || plain.Converged != withCtx.Converged {
		t.Fatalf("iterations/converged differ: %d/%t vs %d/%t",
			plain.Iterations, plain.Converged, withCtx.Iterations, withCtx.Converged)
	}
	for v := range plain.Scores {
		if plain.Scores[v] != withCtx.Scores[v] {
			t.Fatalf("score %d differs: %v vs %v", v, plain.Scores[v], withCtx.Scores[v])
		}
	}
}

// TestIterateContextZeroAlloc is the PR-4 overhead contract: the
// per-sweep cancellation poll adds 0 allocs/op over the PR-3 kernel on
// the pooled serial path, BOTH with Ctx nil (serving without deadlines)
// and with a live cancellable context attached (serving with deadlines
// that do not fire). seedKernelAllocsPerRun is the PR-3 baseline.
func TestIterateContextZeroAlloc(t *testing.T) {
	g, r := fig1Fixture(t)
	base := fig1Base(g)
	alpha := r.Vector()
	pool := NewBufferPool()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cases := []struct {
		name string
		ctx  context.Context
	}{
		{"nilCtx", nil},
		{"background", context.Background()},
		{"cancellable", ctx},
	}
	for _, tc := range cases {
		opts := Options{Threshold: 1e-10, MaxIters: 500, Ctx: tc.ctx}
		// Warm the pool so steady state is measured.
		res := Iterate(g, alpha, base, opts, 1, pool)
		res.ReleaseTo(pool)
		allocs := testing.AllocsPerRun(100, func() {
			r := Iterate(g, alpha, base, opts, 1, pool)
			r.ReleaseTo(pool)
		})
		if allocs > seedKernelAllocsPerRun {
			t.Fatalf("%s: pooled kernel path allocates %v allocs/op, PR-3 baseline is %d — the ctx poll added overhead",
				tc.name, allocs, seedKernelAllocsPerRun)
		}
	}
}
