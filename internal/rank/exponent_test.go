package rank

import (
	"math"
	"testing"
)

// TestNormalizingExponentGolden pins the g(t) clamp behaviour for the
// degenerate base-set sizes where Equation 16's 1/ln(|S(t)|) is
// undefined or inverted (see the normalizingExponent doc and DESIGN.md
// §2): sizes 0, 1 and 2 clamp to exponent 1 (raw scores), size 3 is the
// first size that follows the paper's formula exactly, and from there
// the exponent tracks 1/ln(n) bit-for-bit.
func TestNormalizingExponentGolden(t *testing.T) {
	golden := []struct {
		size int
		want float64
	}{
		{0, 1},                 // empty base set: ln(0) = -Inf, clamp
		{1, 1},                 // ln(1) = 0: division by zero, clamp
		{2, 1},                 // ln(2) ≈ 0.693 < 1: exponent would EXCEED 1, clamp
		{3, 1 / math.Log(3)},   // ln(3) ≈ 1.0986 > 1: paper formula, ≈ 0.9102
		{10, 1 / math.Log(10)}, // deep in paper territory, ≈ 0.4343
	}
	for _, g := range golden {
		if got := normalizingExponent(g.size); got != g.want {
			t.Errorf("normalizingExponent(%d) = %v, want %v", g.size, got, g.want)
		}
	}
	// Spot-check the boundary numerically: the size-3 exponent must be
	// strictly below 1 (no clamp) and above the size-10 exponent
	// (monotone damping of popular keywords).
	e3, e10 := normalizingExponent(3), normalizingExponent(10)
	if !(e3 < 1 && e10 < e3) {
		t.Fatalf("exponent not monotone: g(3)=%v g(10)=%v", e3, e10)
	}
}

// TestNormalizingExponentNeverExceedsOne sweeps sizes 0..100: the clamp
// guarantees the combination never AMPLIFIES a keyword's skew (exponent
// > 1 on scores < 1 would shrink rare-keyword scores harder than common
// ones — the inversion the clamp exists to prevent).
func TestNormalizingExponentNeverExceedsOne(t *testing.T) {
	for n := 0; n <= 100; n++ {
		if e := normalizingExponent(n); e > 1 || e <= 0 || math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("normalizingExponent(%d) = %v out of (0, 1]", n, e)
		}
	}
}
