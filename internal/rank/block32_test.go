package rank

import (
	"context"
	"math"
	"testing"
)

// maxAbsDiff returns max_v |a[v] − b[v]|.
func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// TestIterateBlock32Agreement pins the f32 panel mode's compatibility
// classification: per column, scores within 1e-6 (absolute, on
// unit-mass distributions) of the f64 kernel's, across cold and warm
// starts, heterogeneous per-column damping, and serial vs parallel
// execution. 1e-6 is the published bound of the mode (DESIGN.md §13);
// the expected error is ε₃₂/(1−d) ≈ 5e-7 at d = 0.85.
func TestIterateBlock32Agreement(t *testing.T) {
	g, r := benchGraph(t, 2000, 16000)
	alpha := r.Vector()
	B := 6
	bases := make([][]float64, B)
	for j := range bases {
		base := make([]float64, g.NumNodes())
		for i := range base {
			base[i] = float64((i*7+j*13)%23) + 1
		}
		bases[j] = NormalizeDist(base)
	}
	warm := make([]float64, g.NumNodes())
	for i := range warm {
		warm[i] = 1 / float64(len(warm))
	}
	opts := make([]Options, B)
	for j := range opts {
		opts[j] = Options{Damping: 0.75 + 0.02*float64(j), Threshold: 1e-7, MaxIters: 500}
		if j%2 == 1 {
			opts[j].Init = warm
		}
	}

	for _, workers := range []int{1, 4} {
		ref := IterateBlock(g, alpha, bases, opts, workers, nil)
		got := IterateBlock32(g, alpha, bases, opts, workers, nil)
		for j := 0; j < B; j++ {
			if !got[j].Converged {
				t.Fatalf("workers=%d col=%d: f32 column did not converge (iters=%d)", workers, j, got[j].Iterations)
			}
			if d := maxAbsDiff(got[j].Scores, ref[j].Scores); d > 1e-6 {
				t.Fatalf("workers=%d col=%d: f32 deviates from f64 by %.3g > 1e-6", workers, j, d)
			}
		}
	}
}

// TestIterateBlock32DegradesStaleInit: the f32 kernel shares the
// stale-warm-start degrade contract.
func TestIterateBlock32DegradesStaleInit(t *testing.T) {
	g, r := benchGraph(t, 100, 600)
	alpha := r.Vector()
	base := make([]float64, g.NumNodes())
	base[5] = 1
	o := Options{Threshold: 1e-7, MaxIters: 300, Init: make([]float64, g.NumNodes()+3)}
	res := IterateBlock32(g, alpha, [][]float64{base}, []Options{o}, 1, nil)
	if !res[0].InitDropped {
		t.Fatal("stale Init not reported as dropped")
	}
	cold := IterateBlock32(g, alpha, [][]float64{base}, []Options{{Threshold: 1e-7, MaxIters: 300}}, 1, nil)
	for v := range cold[0].Scores {
		if math.Float64bits(res[0].Scores[v]) != math.Float64bits(cold[0].Scores[v]) {
			t.Fatalf("degraded f32 column differs from cold at node %d", v)
		}
	}
}

// TestIterateBlock32Cancel: a cancelled f32 column freezes with the
// error set and a complete (unconverged) state, like the f64 kernels.
func TestIterateBlock32Cancel(t *testing.T) {
	g, r := benchGraph(t, 100, 600)
	alpha := r.Vector()
	base := make([]float64, g.NumNodes())
	base[0] = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := IterateBlock32(g, alpha, [][]float64{base}, []Options{{Ctx: ctx, MaxIters: 50}}, 1, nil)
	if res[0].Err == nil || res[0].Converged {
		t.Fatalf("cancelled column: err=%v converged=%v, want context error and false", res[0].Err, res[0].Converged)
	}
	if len(res[0].Scores) != g.NumNodes() {
		t.Fatalf("cancelled column returned %d scores, want %d", len(res[0].Scores), g.NumNodes())
	}
}
