package rank

import (
	"authorityflow/internal/graph"
)

// TopicSensitive implements Haveliwala's topic-sensitive PageRank
// [Hav02], the third related-work baseline: one PageRank vector is
// precomputed per topic (with random jumps restricted to the topic's
// node set), and a query is answered from the vector of its most
// relevant topic — or a mixture. Unlike ObjectRank2 it cannot adapt to
// arbitrary keyword combinations: queries are folded onto the fixed
// topic inventory.
type TopicSensitive struct {
	vectors [][]float64
	topics  []string
}

// BuildTopicSensitive precomputes one biased PageRank per topic.
// topicNodes[i] lists the nodes of topic i (the biased jump set).
func BuildTopicSensitive(g *graph.Graph, rates *graph.Rates, topics []string, topicNodes [][]graph.NodeID, opts Options) *TopicSensitive {
	ts := &TopicSensitive{topics: append([]string(nil), topics...)}
	for _, nodes := range topicNodes {
		res := ObjectRank(g, rates, nodes, opts)
		ts.vectors = append(ts.vectors, res.Scores)
	}
	return ts
}

// Topics returns the topic labels.
func (ts *TopicSensitive) Topics() []string { return append([]string(nil), ts.topics...) }

// Scores returns the score vector obtained by mixing the per-topic
// vectors with the given weights (len(weights) must equal the topic
// count; weights are normalized internally). A zero weight vector
// yields zeros.
func (ts *TopicSensitive) Scores(weights []float64) []float64 {
	if len(ts.vectors) == 0 {
		return nil
	}
	n := len(ts.vectors[0])
	out := make([]float64, n)
	if len(weights) != len(ts.vectors) {
		return out
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return out
	}
	for t, w := range weights {
		if w <= 0 {
			continue
		}
		c := w / total
		vec := ts.vectors[t]
		for v := range out {
			out[v] += c * vec[v]
		}
	}
	return out
}

// TopicWeightsByOverlap derives mixture weights for a query from the
// overlap between the query's base set and each topic's node set — the
// query-time topic-selection step of [Hav02], adapted from Web context
// (class probabilities) to typed graphs (base-set overlap).
func TopicWeightsByOverlap(base []graph.NodeID, topicNodes [][]graph.NodeID) []float64 {
	inBase := make(map[graph.NodeID]bool, len(base))
	for _, v := range base {
		inBase[v] = true
	}
	weights := make([]float64, len(topicNodes))
	for t, nodes := range topicNodes {
		for _, v := range nodes {
			if inBase[v] {
				weights[t]++
			}
		}
	}
	return weights
}
