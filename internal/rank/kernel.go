package rank

import (
	"fmt"
	"runtime"
	"sync"

	"authorityflow/internal/graph"
)

// BufferPool recycles score vectors across power-iteration runs so
// steady-state serving allocates (almost) nothing per query. It wraps a
// sync.Pool and is safe for concurrent use; the zero value is NOT
// usable — construct with NewBufferPool. All kernel entry points accept
// a nil pool, in which case buffers are plainly allocated and the
// garbage collector reclaims them as before.
//
// Buffers handed out by Get carry arbitrary stale contents; every
// kernel path fully overwrites them before reading.
type BufferPool struct {
	pool sync.Pool
}

// NewBufferPool returns an empty buffer pool.
func NewBufferPool() *BufferPool {
	return &BufferPool{pool: sync.Pool{New: func() any { return ([]float64)(nil) }}}
}

// Get returns a slice of length n, recycled when possible. Contents are
// undefined. Safe on a nil pool (plain allocation).
func (p *BufferPool) Get(n int) []float64 {
	if p == nil {
		return make([]float64, n)
	}
	buf := p.pool.Get().([]float64)
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// GetZeroed returns a zero-filled slice of length n.
func (p *BufferPool) GetZeroed(n int) []float64 {
	buf := p.Get(n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Put returns a buffer for reuse. The caller must not touch buf
// afterwards. Safe on a nil pool (no-op).
func (p *BufferPool) Put(buf []float64) {
	if p == nil || buf == nil {
		return
	}
	p.pool.Put(buf) //nolint:staticcheck // slice headers are small; the backing array is what we recycle
}

// ReleaseTo hands the result's score vector back to a buffer pool and
// clears it, closing the zero-allocation loop of pooled serving: run →
// read scores → release. The caller must not retain r.Scores across the
// call. Safe on a nil pool (no-op, scores kept).
func (r *Result) ReleaseTo(p *BufferPool) {
	if p == nil || r.Scores == nil {
		return
	}
	p.Put(r.Scores)
	r.Scores = nil
}

// AutoWorkers returns the worker count used by "use all cores"
// requests: GOMAXPROCS at call time.
func AutoWorkers() int { return runtime.GOMAXPROCS(0) }

// Iterate is the unified power-iteration kernel every ranking mode in
// this package reduces to. It executes the damped fixpoint
//
//	r = d·A·r + (1−d)·base
//
// over the authority transfer data graph of g, where A's entries are
// the Equation 1 arc weights alpha[type]·InvDeg (alpha is indexed by
// TransferTypeID, as produced by Rates.Vector). The iteration uses the
// gather formulation over the graph's reverse CSR —
//
//	next[v] = (1−d)·base[v] + d · Σ over in-arcs (u→v) of alpha[t]·InvDeg(u,t)·cur[u]
//
// — so parallel workers own disjoint slices of next and never contend.
// Because the reverse CSR is ordered by (source, type), the serial
// gather accumulates each node's sum in exactly the order the legacy
// scatter loop did, making workers<=1 results bit-identical to the
// historical Run implementation.
//
// workers <= 1 selects the serial, bitwise-deterministic path; larger
// values fan the node range out over that many goroutines (results then
// match serial up to floating-point summation order). pool, when
// non-nil, supplies the score buffers; the returned Result.Scores comes
// from the pool and can be recycled with Result.ReleaseTo.
//
// Cancellation: when opts.Ctx is non-nil, ctx.Err() is polled exactly
// once per sweep on the coordinating goroutine, before the next
// iteration starts — so a cancelled run stops within one sweep of the
// cancellation, Result.Err carries the context error, and Scores always
// hold a COMPLETE iteration state (the swap happens only after a full
// sweep; workers never publish a half-written vector). The poll is one
// branch plus one atomic read and allocates nothing, so the serving
// path with deadlines enabled is indistinguishable from the PR-3
// kernel until a deadline actually fires.
//
// Iterate panics on malformed inputs — a base vector whose length
// differs from g.NumNodes(), or an alpha vector that does not cover
// the schema's transfer types — because silently truncating them turns
// caller bugs into quietly wrong rankings. A mismatched Init vector is
// the one deliberate exception: it is the signature of a warm start
// donated across a concurrent corpus swap (a timing race, not a logic
// bug), it is recoverable by construction (the fixpoint does not
// depend on the start vector), and so it degrades to a cold start with
// Result.InitDropped set instead of panicking a serving goroutine.
func Iterate(g *graph.Graph, alpha []float64, base []float64, opts Options, workers int, pool *BufferPool) Result {
	opts = opts.Normalized()
	n := g.NumNodes()
	if len(base) != n {
		panic(fmt.Sprintf("rank: base distribution has %d entries for a %d-node graph", len(base), n))
	}
	if len(alpha) < g.Schema().NumTransferTypes() {
		panic(fmt.Sprintf("rank: alpha vector has %d entries, schema has %d transfer types", len(alpha), g.Schema().NumTransferTypes()))
	}
	res := Result{}
	if opts.Init != nil && len(opts.Init) != n {
		opts.Init = nil
		res.InitDropped = true
	}

	cur := pool.Get(n)
	if opts.Init != nil {
		copy(cur, opts.Init)
	} else {
		copy(cur, base)
	}
	next := pool.Get(n)

	start, arcs := g.ReverseCSR()
	d := opts.Damping
	tl := opts.Tile.forGraph(n)

	if workers > n {
		workers = n
	}
	ctx := opts.Ctx
	if workers <= 1 {
		for it := 0; it < opts.MaxIters; it++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					res.Err = err
					break
				}
			}
			var diff float64
			if tl != nil {
				diff = sweepTiled(tl, arcs, alpha, d, base, cur, next, 0, n)
			} else {
				diff = sweep(start, arcs, alpha, d, base, cur, next, 0, n)
			}
			res.Iterations = it + 1
			if opts.Observe != nil {
				opts.Observe(it+1, diff)
			}
			cur, next = next, cur
			if diff < opts.Threshold {
				res.Converged = true
				break
			}
		}
		res.Scores = cur
		pool.Put(next)
		return res
	}

	// Parallel: static disjoint node ranges per worker, one barrier per
	// iteration. Workers write only their own slice of next and their
	// own diffs entry, and read cur/base/CSR, all frozen within an
	// iteration — no locks needed.
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * n / workers
	}
	diffs := make([]float64, workers)
	var wg sync.WaitGroup
	for it := 0; it < opts.MaxIters; it++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				res.Err = err
				break
			}
		}
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				if tl != nil {
					diffs[w] = sweepTiled(tl, arcs, alpha, d, base, cur, next, bounds[w], bounds[w+1])
				} else {
					diffs[w] = sweep(start, arcs, alpha, d, base, cur, next, bounds[w], bounds[w+1])
				}
			}(w)
		}
		wg.Wait()
		res.Iterations = it + 1
		total := 0.0
		for _, x := range diffs {
			total += x
		}
		if opts.Observe != nil {
			opts.Observe(it+1, total)
		}
		cur, next = next, cur
		if total < opts.Threshold {
			res.Converged = true
			break
		}
	}
	res.Scores = cur
	pool.Put(next)
	return res
}

// sweep is THE power-iteration inner loop — the only one in the
// package. It performs one damped gather pass over the node range
// [lo, hi): for each node it accumulates (1−d)·base[v] plus the damped
// in-flow read off the reverse CSR, writes next[v], and folds the L1
// delta against cur[v] into the returned partial. Index arithmetic over
// the two flat CSR arrays is the whole body; there are no slice-header
// loads or map lookups on the hot path.
//
// Bitwise determinism contract: for a full-range call the sequence of
// floating-point additions per node — (1−d)·base[v] first, then
// d·alpha[t]·InvDeg·cur[u] terms in (source, type) order — and the
// ascending-v L1 accumulation reproduce the legacy scatter loop's
// operation order exactly, so scores AND the convergence decision are
// bit-identical to it. Terms whose rate is zero are skipped; they would
// contribute an exact +0.0, which cannot change any partial sum.
func sweep(start []int32, arcs []graph.Arc, alpha []float64, d float64, base, cur, next []float64, lo, hi int) float64 {
	diff := 0.0
	oneMinusD := 1 - d
	for v := lo; v < hi; v++ {
		sum := oneMinusD * base[v]
		for k := start[v]; k < start[v+1]; k++ {
			a := arcs[k]
			w := alpha[a.Type]
			if w == 0 {
				continue
			}
			sum += d * w * float64(a.InvDeg) * cur[a.To]
		}
		next[v] = sum
		delta := sum - cur[v]
		if delta < 0 {
			delta = -delta
		}
		diff += delta
	}
	return diff
}
