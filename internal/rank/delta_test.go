package rank

import (
	"math"
	"math/rand"
	"testing"

	"authorityflow/internal/graph"
)

// deltaGraph builds the randomized two-type graph the delta tests
// perturb: m "cites" edges spread globally, plus mloc "extends" edges
// confined to the first loc nodes. Perturbing the extends rates is the
// localized-republish case where push-style delta solves win;
// perturbing cites disturbs the whole graph and must fall back.
func deltaGraph(t *testing.T, n, m, loc, mloc int, seed int64) (*graph.Graph, *graph.Rates, []graph.EdgeTypeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := graph.NewSchema()
	paper := s.AddNodeType("Paper")
	cites := s.MustAddEdgeType("cites", paper, paper)
	extends := s.MustAddEdgeType("extends", paper, paper)
	gb := graph.NewBuilder(s)
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = gb.AddNode(paper)
	}
	for i := 0; i < m; i++ {
		gb.AddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)], cites)
	}
	for i := 0; i < mloc; i++ {
		gb.AddEdge(ids[rng.Intn(loc)], ids[rng.Intn(loc)], extends)
	}
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := graph.NewRates(s)
	r.Set(cites, graph.Forward, 0.5)
	r.Set(cites, graph.Backward, 0.15)
	r.Set(extends, graph.Forward, 0.25)
	r.Set(extends, graph.Backward, 0.1)
	return g, r, []graph.EdgeTypeID{cites, extends}
}

func l1Dist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// TestIterateDeltaProperty is the satellite's property test: across
// randomized ε-perturbations of a localized edge type's rates, the
// delta solve must (a) converge without falling back, (b) land within
// the tolerance class ‖x − x*‖₁ ≤ 2·Threshold/(1−d) of the full-sweep
// answer under the perturbed rates, and (c) do less sweep-equivalent
// work (seeding sweep + pushes/|V|) than the cold full solve it
// replaces.
func TestIterateDeltaProperty(t *testing.T) {
	g, r, ets := deltaGraph(t, 3000, 24000, 150, 1200, 11)
	n := g.NumNodes()
	opts := Options{Damping: 0.85, Threshold: 1e-8, MaxIters: 500}
	base := make([]float64, n)
	for i := range base {
		base[i] = 1
	}
	NormalizeDist(base)
	// prev is converged one decade tighter than the delta solve's
	// threshold so its own slack sits well under the per-node tau.
	prevOpts := opts
	prevOpts.Threshold = 1e-9
	prev := Iterate(g, r.Vector(), base, prevOpts, 1, nil)
	if !prev.Converged {
		t.Fatal("baseline solve did not converge")
	}
	bound := 2 * opts.Threshold / (1 - opts.Damping)
	extends := ets[1]

	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 9; trial++ {
		eps := []float64{1e-5, 1e-4, 1e-3}[trial%3]
		r2 := r.Clone()
		for _, dir := range []graph.Direction{graph.Forward, graph.Backward} {
			v := r.Rate(graph.TransferType(extends, dir)) + eps*(2*rng.Float64()-1)
			if v < 0 {
				v = 0
			}
			r2.Set(extends, dir, v)
		}
		alpha2 := r2.Vector()
		full := Iterate(g, alpha2, base, opts, 1, nil)
		dr := IterateDelta(g, alpha2, base, prev.Scores, opts, 0, 1, nil)
		if dr.Err != nil || !dr.Converged {
			t.Fatalf("trial %d (eps=%g): delta solve err=%v converged=%v", trial, eps, dr.Err, dr.Converged)
		}
		if dr.FellBack {
			t.Fatalf("trial %d (eps=%g): localized ε-perturbation fell back (frontier=%d of %d)", trial, eps, dr.Frontier, n)
		}
		if d := l1Dist(dr.Scores, full.Scores); d > bound {
			t.Fatalf("trial %d (eps=%g): delta L1-distance %.3g exceeds tolerance bound %.3g", trial, eps, d, bound)
		}
		work := float64(dr.Iterations) + float64(dr.Pushes)/float64(n)
		if work >= float64(full.Iterations) {
			t.Fatalf("trial %d (eps=%g): delta did %.2f sweep-equivalents, full solve needed only %d",
				trial, eps, work, full.Iterations)
		}
	}
}

// TestIterateDeltaFallbacks pins the degradation paths: a stale prev
// vector and a nil prev both complete as a plain cold Iterate (bit for
// bit), and a global rate perturbation — every node disturbed — falls
// back to warm full sweeps yet still converges to the full answer's
// tolerance class.
func TestIterateDeltaFallbacks(t *testing.T) {
	g, r, ets := deltaGraph(t, 500, 4000, 50, 400, 7)
	opts := Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 500}
	base := make([]float64, g.NumNodes())
	base[0] = 1

	alpha := r.Vector()
	cold := Iterate(g, alpha, base, opts, 1, nil)
	for _, prev := range [][]float64{nil, make([]float64, g.NumNodes()+1)} {
		dr := IterateDelta(g, alpha, base, prev, opts, 0, 1, nil)
		if !dr.FellBack {
			t.Fatalf("prev len=%d: expected fallback", len(prev))
		}
		for v := range cold.Scores {
			if math.Float64bits(dr.Scores[v]) != math.Float64bits(cold.Scores[v]) {
				t.Fatalf("prev len=%d: fallback differs from cold Iterate at node %d", len(prev), v)
			}
		}
	}

	// Global perturbation: shift the dominant cites rate by far more
	// than the tolerance. Every node's residual moves, the frontier
	// blows past the fraction cap, and the solve must complete as warm
	// full sweeps.
	r2 := r.Clone()
	r2.Set(ets[0], graph.Forward, 0.3)
	alpha2 := r2.Vector()
	full := Iterate(g, alpha2, base, opts, 1, nil)
	dr := IterateDelta(g, alpha2, base, cold.Scores, opts, 0, 1, nil)
	if !dr.FellBack {
		t.Fatalf("global perturbation did not fall back (frontier=%d of %d)", dr.Frontier, g.NumNodes())
	}
	if !dr.Converged {
		t.Fatal("fallback solve did not converge")
	}
	bound := 2 * opts.Threshold / (1 - opts.Damping)
	if d := l1Dist(dr.Scores, full.Scores); d > bound {
		t.Fatalf("fallback L1-distance %.3g exceeds tolerance bound %.3g", d, bound)
	}
}

// TestIterateDeltaUnperturbed: republishing identical rates costs one
// seeding sweep and nothing else — the residual mass is inside the
// full solve's own stopping tolerance, so the mass early-exit fires
// with zero pushes and the answer stays put.
func TestIterateDeltaUnperturbed(t *testing.T) {
	g, r, _ := deltaGraph(t, 800, 6400, 80, 640, 5)
	opts := Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 500}
	base := make([]float64, g.NumNodes())
	for i := range base {
		base[i] = 1
	}
	NormalizeDist(base)
	alpha := r.Vector()
	prev := Iterate(g, alpha, base, opts, 1, nil)
	dr := IterateDelta(g, alpha, base, prev.Scores, opts, 0, 1, nil)
	if dr.FellBack || !dr.Converged {
		t.Fatalf("unperturbed republish: fellBack=%v converged=%v", dr.FellBack, dr.Converged)
	}
	if dr.Iterations != 1 || dr.Pushes != 0 {
		t.Fatalf("unperturbed republish cost %d sweeps and %d pushes, want 1 sweep and 0 pushes", dr.Iterations, dr.Pushes)
	}
	bound := 2 * opts.Threshold / (1 - opts.Damping)
	if d := l1Dist(dr.Scores, prev.Scores); d > bound {
		t.Fatalf("unperturbed republish moved the answer by %.3g", d)
	}
}
