package rank

import (
	"authorityflow/internal/graph"
)

// RunParallel executes the same damped fixpoint as Run using multiple
// cores: it is the parallel entry of the unified kernel (Iterate with
// workers > 1). Workers own disjoint slices of the score vector and
// never contend; results match Run up to floating-point summation
// order. Intended for the paper-scale corpora (DBLPcomplete, DS7),
// where the per-iteration edge scan dominates; on small graphs the
// goroutine fan-out costs more than it saves, so Run remains the
// default. workers <= 0 uses all cores (AutoWorkers); workers == 1
// degenerates to the serial, bitwise-deterministic path. Like every
// kernel entry it honors opts.Ctx: the coordinating goroutine polls
// cancellation once per sweep (see Iterate).
func RunParallel(g *graph.Graph, rates *graph.Rates, base []float64, opts Options, workers int) Result {
	if workers <= 0 {
		workers = AutoWorkers()
	}
	return Iterate(g, rates.Vector(), base, opts, workers, nil)
}
