package rank

import (
	"math"
	"runtime"
	"sync"

	"authorityflow/internal/graph"
)

// RunParallel executes the same damped fixpoint as Run using all
// available cores. It uses the gather formulation over the reverse CSR —
//
//	next[v] = (1−d)·base[v] + d · sum over in-arcs (u→v) of w(u→v)·cur[u]
//
// — so workers own disjoint slices of next and never contend. Results
// match Run up to floating-point summation order. Intended for the
// paper-scale corpora (DBLPcomplete, DS7), where the per-iteration edge
// scan dominates; on small graphs the goroutine fan-out costs more than
// it saves, so Run remains the default.
func RunParallel(g *graph.Graph, rates *graph.Rates, base []float64, opts Options, workers int) Result {
	opts = opts.withDefaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumNodes()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 0 {
		return Run(g, rates, base, opts)
	}

	cur := make([]float64, n)
	if opts.Init != nil && len(opts.Init) == n {
		copy(cur, opts.Init)
	} else {
		copy(cur, base)
	}
	next := make([]float64, n)
	alpha := rates.Vector()
	d := opts.Damping

	// Static node ranges per worker.
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * n / workers
	}
	diffs := make([]float64, workers)

	var wg sync.WaitGroup
	res := Result{}
	for it := 0; it < opts.MaxIters; it++ {
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				lo, hi := bounds[w], bounds[w+1]
				diff := 0.0
				for v := lo; v < hi; v++ {
					sum := (1 - d) * base[v]
					for _, a := range g.InArcs(graph.NodeID(v)) {
						if rw := alpha[a.Type]; rw != 0 {
							sum += d * rw * float64(a.InvDeg) * cur[a.To]
						}
					}
					next[v] = sum
					diff += math.Abs(sum - cur[v])
				}
				diffs[w] = diff
			}(w)
		}
		wg.Wait()
		res.Iterations = it + 1
		total := 0.0
		for _, x := range diffs {
			total += x
		}
		cur, next = next, cur
		if total < opts.Threshold {
			res.Converged = true
			break
		}
	}
	res.Scores = cur
	return res
}
