package rank

import (
	"math"
	"testing"

	"authorityflow/internal/graph"
)

// TestIterateTiledGoldenEquivalence is the tiling contract's
// enforcement: for every tile width — one dividing |V| evenly, several
// leaving ragged last tiles, width 1, and widths at and beyond |V| —
// the tiled sweep must reproduce the untiled kernel's scores BIT FOR
// BIT, along with its iteration count and convergence decision. The
// matrix crosses tile widths with cold/warm starts and serial/parallel
// execution, because the tiled sweep has its own multi-pass code in
// both paths.
func TestIterateTiledGoldenEquivalence(t *testing.T) {
	g, r := benchGraph(t, 1000, 8000)
	alpha := r.Vector()
	base := make([]float64, g.NumNodes())
	for i := range base {
		base[i] = float64(i%7) + 1
	}
	NormalizeDist(base)
	warm := make([]float64, g.NumNodes())
	for i := range warm {
		warm[i] = 1 / float64(len(warm))
	}

	opts := Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 300}
	for _, workers := range []int{1, 4} {
		ref := Iterate(g, alpha, base, opts, workers, nil)
		for _, tileNodes := range []int{1, 7, 100, 125, 999, 1000, 1001, 5000} {
			tl := NewTiling(g, tileNodes)
			for _, init := range [][]float64{nil, warm} {
				o := opts
				o.Tile = tl
				o.Init = init
				refO := opts
				refO.Init = init
				want := ref
				if init != nil {
					want = Iterate(g, alpha, base, refO, workers, nil)
				}
				got := Iterate(g, alpha, base, o, workers, nil)
				if got.Iterations != want.Iterations || got.Converged != want.Converged {
					t.Fatalf("tile=%d workers=%d warm=%v: iters=%d conv=%v, want %d/%v",
						tileNodes, workers, init != nil, got.Iterations, got.Converged, want.Iterations, want.Converged)
				}
				for v := range want.Scores {
					if math.Float64bits(got.Scores[v]) != math.Float64bits(want.Scores[v]) {
						t.Fatalf("tile=%d workers=%d warm=%v node=%d: tiled %#016x != untiled %#016x",
							tileNodes, workers, init != nil, v,
							math.Float64bits(got.Scores[v]), math.Float64bits(want.Scores[v]))
					}
				}
			}
		}
	}
}

// TestIterateBlockTiledGoldenEquivalence is the blocked counterpart:
// per-column bit-identity between the tiled and untiled blocked sweeps
// across tile widths (ragged and beyond-|V| included), with per-column
// heterogeneous options so freezing happens mid-run.
func TestIterateBlockTiledGoldenEquivalence(t *testing.T) {
	g, r := benchGraph(t, 700, 5600)
	alpha := r.Vector()
	B := 5
	bases := make([][]float64, B)
	for j := range bases {
		base := make([]float64, g.NumNodes())
		for i := range base {
			base[i] = float64((i+j)%11) + 1
		}
		bases[j] = NormalizeDist(base)
	}
	opts := make([]Options, B)
	for j := range opts {
		opts[j] = Options{Damping: 0.80 + 0.03*float64(j), Threshold: 1e-8, MaxIters: 100 + 20*j}
	}

	for _, workers := range []int{1, 3} {
		ref := IterateBlock(g, alpha, bases, opts, workers, nil)
		for _, tileNodes := range []int{64, 99, 350, 700, 701, 4096} {
			tiledOpts := make([]Options, B)
			copy(tiledOpts, opts)
			tiledOpts[0].Tile = NewTiling(g, tileNodes)
			got := IterateBlock(g, alpha, bases, tiledOpts, workers, nil)
			for j := 0; j < B; j++ {
				if got[j].Iterations != ref[j].Iterations || got[j].Converged != ref[j].Converged {
					t.Fatalf("tile=%d workers=%d col=%d: iters=%d conv=%v, want %d/%v",
						tileNodes, workers, j, got[j].Iterations, got[j].Converged, ref[j].Iterations, ref[j].Converged)
				}
				for v := range ref[j].Scores {
					if math.Float64bits(got[j].Scores[v]) != math.Float64bits(ref[j].Scores[v]) {
						t.Fatalf("tile=%d workers=%d col=%d node=%d: tiled bits differ", tileNodes, workers, j, v)
					}
				}
			}
		}
	}
}

// TestTilingCoversAllArcs checks the pointer table is a partition: the
// per-(tile, row) sub-ranges are consecutive, cover every arc of the
// reverse CSR exactly once, and respect the tile's source window.
func TestTilingCoversAllArcs(t *testing.T) {
	g, _ := benchGraph(t, 333, 2000)
	n := g.NumNodes()
	start, arcs := g.ReverseCSR()
	for _, tileNodes := range []int{1, 10, 100, 333, 999} {
		tl := NewTiling(g, tileNodes)
		if tl.Nodes() != n {
			t.Fatalf("tileNodes=%d: Nodes()=%d, want %d", tileNodes, tl.Nodes(), n)
		}
		wantTiles := (n + tileNodes - 1) / tileNodes
		if tl.NumTiles() != wantTiles {
			t.Fatalf("tileNodes=%d: NumTiles()=%d, want %d", tileNodes, tl.NumTiles(), wantTiles)
		}
		for v := 0; v < n; v++ {
			if tl.ptr[v] != start[v] {
				t.Fatalf("tileNodes=%d row %d: first tile starts at %d, want row start %d", tileNodes, v, tl.ptr[v], start[v])
			}
			if tl.ptr[tl.numTiles*n+v] != start[v+1] {
				t.Fatalf("tileNodes=%d row %d: last tile ends at %d, want row end %d", tileNodes, v, tl.ptr[tl.numTiles*n+v], start[v+1])
			}
			for tile := 0; tile < tl.numTiles; tile++ {
				lo, hi := tl.ptr[tile*n+v], tl.ptr[(tile+1)*n+v]
				if lo > hi {
					t.Fatalf("tileNodes=%d row %d tile %d: range [%d,%d) inverted", tileNodes, v, tile, lo, hi)
				}
				for k := lo; k < hi; k++ {
					src := int(arcs[k].To)
					if src < tile*tileNodes || src >= (tile+1)*tileNodes {
						t.Fatalf("tileNodes=%d row %d tile %d: arc %d has source %d outside tile window", tileNodes, v, tile, k, src)
					}
				}
			}
		}
	}
}

// TestTilingIgnoredOnMismatch: a tiling sized for another graph is an
// execution-plan staleness (e.g. pinned across a corpus swap), not an
// input error — the kernel must fall back to the untiled sweep and
// still produce the exact answer.
func TestTilingIgnoredOnMismatch(t *testing.T) {
	g, r := benchGraph(t, 200, 1200)
	other, _ := benchGraph(t, 300, 1500)
	alpha := r.Vector()
	base := make([]float64, g.NumNodes())
	base[3] = 1
	opts := Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 200}
	ref := Iterate(g, alpha, base, opts, 1, nil)
	o := opts
	o.Tile = NewTiling(other, 64)
	got := Iterate(g, alpha, base, o, 1, nil)
	if got.Iterations != ref.Iterations {
		t.Fatalf("mismatched tiling changed the run: iters %d vs %d", got.Iterations, ref.Iterations)
	}
	for v := range ref.Scores {
		if math.Float64bits(got.Scores[v]) != math.Float64bits(ref.Scores[v]) {
			t.Fatalf("mismatched tiling changed node %d", v)
		}
	}
	if NewTiling(&graph.Graph{}, 8) != nil {
		t.Fatal("NewTiling on an empty graph should return nil")
	}
}
