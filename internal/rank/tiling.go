package rank

import (
	"authorityflow/internal/graph"
)

// DefaultTileNodes is the tile width (in source nodes) used when a
// caller asks for tiling without choosing a width. 32768 nodes keep a
// tile's slice of the current score vector at 256 KiB for a scalar
// sweep and 2 MiB for a BlockSize-8 panel — sized so the randomly
// gathered cur values stay L2-resident for the whole tile pass instead
// of bouncing through the outer cache levels on every arc.
const DefaultTileNodes = 32768

// Tiling is the cache-blocking plan of one graph's reverse CSR: a
// partition of the SOURCE-node axis into fixed-width tiles, with a
// per-(tile, destination) pointer table locating each destination row's
// contiguous sub-range of arcs whose source falls inside the tile.
// Because the reverse CSR orders every row's arcs by (source, type),
// the sub-ranges exist without moving a single arc — the tiled sweep
// visits exactly the same arcs in exactly the same per-row order as the
// untiled sweep, just grouped so all reads of cur within one pass land
// in one tileNodes-wide window.
//
// A Tiling is immutable after construction, sized for exactly one
// graph, and safe for unbounded concurrent use (kernel workers share
// it read-only). Build one per corpus and reuse it across solves; the
// arcs themselves are never copied, so the only cost is the pointer
// table ((numTiles+1)·|V| int32 entries) and an O(|arcs| + |V|·tiles)
// construction scan.
type Tiling struct {
	n         int
	tileNodes int
	numTiles  int
	// ptr locates tile sub-ranges: row v's arcs with source in tile t
	// are arcs[ptr[t*n+v] : ptr[(t+1)*n+v]]. Layout is tile-major so a
	// tile pass reads its pointer row sequentially.
	ptr []int32
}

// NewTiling builds the tiling plan for g's reverse CSR with the given
// tile width in source nodes; tileNodes <= 0 selects DefaultTileNodes.
// Returns nil for an empty graph.
func NewTiling(g *graph.Graph, tileNodes int) *Tiling {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	if tileNodes <= 0 {
		tileNodes = DefaultTileNodes
	}
	numTiles := (n + tileNodes - 1) / tileNodes
	t := &Tiling{
		n:         n,
		tileNodes: tileNodes,
		numTiles:  numTiles,
		ptr:       make([]int32, (numTiles+1)*n),
	}
	start, arcs := g.ReverseCSR()
	for v := 0; v < n; v++ {
		k := int(start[v])
		end := int(start[v+1])
		for tile := 0; tile < numTiles; tile++ {
			t.ptr[tile*n+v] = int32(k)
			limit := graph.NodeID((tile + 1) * tileNodes)
			for k < end && arcs[k].To < limit {
				k++
			}
		}
		t.ptr[numTiles*n+v] = int32(end)
	}
	return t
}

// Nodes returns the node count the tiling was built for.
func (t *Tiling) Nodes() int { return t.n }

// TileNodes returns the tile width in source nodes.
func (t *Tiling) TileNodes() int { return t.tileNodes }

// NumTiles returns the number of source-node tiles.
func (t *Tiling) NumTiles() int { return t.numTiles }

// Bytes returns the resident size of the pointer table.
func (t *Tiling) Bytes() int64 { return int64(len(t.ptr)) * 4 }

// usable reports whether the tiling can serve a sweep over an n-node
// graph: it must be sized for that graph, and a single-tile plan is
// pointless (the untiled sweep IS the one-tile pass). A mismatched
// tiling — e.g. one pinned before a concurrent corpus swap — is simply
// ignored by the kernels rather than treated as an error: tiling is an
// execution plan, not an input, and the untiled sweep computes the
// identical result.
func (t *Tiling) usable(n int) bool {
	return t != nil && t.n == n && t.numTiles >= 2
}

// forGraph resolves a caller-supplied tiling into the plan a kernel
// will actually run: t when usable for an n-node graph, nil otherwise.
// Written as a single-assignment expression so the kernel-local plan
// variable is never reassigned — the parallel paths capture it in
// their worker goroutines, and a reassigned capture would be
// heap-allocated on every run, breaking the serial path's pooled
// allocation bound (TestKernelAllocsBounded).
func (t *Tiling) forGraph(n int) *Tiling {
	if t.usable(n) {
		return t
	}
	return nil
}

// sweepTiled is the cache-blocked form of sweep: one damped gather pass
// over the node range [lo, hi), executed as numTiles passes that each
// touch only the sources of one tile. Pass 0 seeds next[v] with
// (1−d)·base[v] plus the tile-0 in-flow, middle passes accumulate their
// tile's in-flow into next[v], and the final pass adds the last tile
// and folds the L1 delta in ascending v.
//
// Bitwise determinism: per node the floating-point additions are
// (1−d)·base[v] first, then the d·alpha[t]·InvDeg·cur[u] terms in
// (source, type) order — the tiles partition each row's already-ordered
// arcs into consecutive runs, and float64 values round-trip through the
// next array between passes exactly (a double stored and reloaded is
// the same double) — so next[v] and the returned partial carry the
// exact bits sweep would produce. Verified per tile width by
// TestIterateTiledGoldenEquivalence.
func sweepTiled(tl *Tiling, arcs []graph.Arc, alpha []float64, d float64, base, cur, next []float64, lo, hi int) float64 {
	n := tl.n
	ptr := tl.ptr
	oneMinusD := 1 - d
	for v := lo; v < hi; v++ {
		sum := oneMinusD * base[v]
		for k := ptr[v]; k < ptr[n+v]; k++ {
			a := arcs[k]
			w := alpha[a.Type]
			if w == 0 {
				continue
			}
			sum += d * w * float64(a.InvDeg) * cur[a.To]
		}
		next[v] = sum
	}
	for tile := 1; tile < tl.numTiles-1; tile++ {
		off := tile * n
		for v := lo; v < hi; v++ {
			sum := next[v]
			for k := ptr[off+v]; k < ptr[off+n+v]; k++ {
				a := arcs[k]
				w := alpha[a.Type]
				if w == 0 {
					continue
				}
				sum += d * w * float64(a.InvDeg) * cur[a.To]
			}
			next[v] = sum
		}
	}
	diff := 0.0
	off := (tl.numTiles - 1) * n
	for v := lo; v < hi; v++ {
		sum := next[v]
		for k := ptr[off+v]; k < ptr[off+n+v]; k++ {
			a := arcs[k]
			w := alpha[a.Type]
			if w == 0 {
				continue
			}
			sum += d * w * float64(a.InvDeg) * cur[a.To]
		}
		next[v] = sum
		delta := sum - cur[v]
		if delta < 0 {
			delta = -delta
		}
		diff += delta
	}
	return diff
}

// sweepBlockTiled is the cache-blocked form of sweepBlock, with the
// same multi-pass structure as sweepTiled applied to the [node*B+column]
// panel: pass 0 seeds each live column's lane with omd[j]·bases[j][v]
// plus the tile-0 in-flow, middle passes accumulate, and the final pass
// folds each live column's L1 delta in ascending v. Per column the
// floating-point schedule is operation for operation sweepBlock's, so
// the panel and diffs carry identical bits (the panel values round-trip
// through memory between passes exactly).
func sweepBlockTiled(tl *Tiling, arcs []graph.Arc, alpha []float64, d, omd []float64, bases [][]float64, cur, next []float64, B int, active []int, diffs []float64, lo, hi int) {
	n := tl.n
	ptr := tl.ptr
	for _, j := range active {
		diffs[j] = 0
	}
	for v := lo; v < hi; v++ {
		row := v * B
		for _, j := range active {
			next[row+j] = omd[j] * bases[j][v]
		}
		for k := ptr[v]; k < ptr[n+v]; k++ {
			a := arcs[k]
			w := alpha[a.Type]
			if w == 0 {
				continue
			}
			inv := float64(a.InvDeg)
			urow := int(a.To) * B
			for _, j := range active {
				next[row+j] += d[j] * w * inv * cur[urow+j]
			}
		}
	}
	for tile := 1; tile < tl.numTiles-1; tile++ {
		off := tile * n
		for v := lo; v < hi; v++ {
			row := v * B
			for k := ptr[off+v]; k < ptr[off+n+v]; k++ {
				a := arcs[k]
				w := alpha[a.Type]
				if w == 0 {
					continue
				}
				inv := float64(a.InvDeg)
				urow := int(a.To) * B
				for _, j := range active {
					next[row+j] += d[j] * w * inv * cur[urow+j]
				}
			}
		}
	}
	off := (tl.numTiles - 1) * n
	for v := lo; v < hi; v++ {
		row := v * B
		for k := ptr[off+v]; k < ptr[off+n+v]; k++ {
			a := arcs[k]
			w := alpha[a.Type]
			if w == 0 {
				continue
			}
			inv := float64(a.InvDeg)
			urow := int(a.To) * B
			for _, j := range active {
				next[row+j] += d[j] * w * inv * cur[urow+j]
			}
		}
		for _, j := range active {
			delta := next[row+j] - cur[row+j]
			if delta < 0 {
				delta = -delta
			}
			diffs[j] += delta
		}
	}
}
