package rank

import (
	"fmt"
	"sync"

	"authorityflow/internal/graph"
)

// IterateBlock is the blocked multi-RHS form of Iterate: it advances B
// base sets ("columns") simultaneously through each CSR sweep, so one
// pass over the arc arrays feeds B fixpoints instead of one. This is
// the serving trick behind every multi-solve workload in the system —
// precompute builds one vector per vocabulary term, the cache prewarmer
// refreshes the hottest terms after each rate publish, and /v1/query/batch
// answers whole query panels — where B independent Iterate calls would
// cost B full memory sweeps over the same graph. (AURORA-style blocked
// PageRank solves lean on the same amortization.)
//
// Panel layout: the working state is a single flat panel indexed
// [node*B + column], so the inner arc loop reads B consecutive floats
// per source node — one cache line feeds up to eight columns — instead
// of striding through B separate vectors.
//
// Per-column semantics are EXACTLY those of Iterate:
//
//   - opts carries either one Options applied to every column or one
//     Options per column (len(opts) must be 1 or len(bases)); Damping,
//     Threshold, MaxIters, Init, Observe and Ctx are all honored per
//     column.
//   - Convergence is decided per column on that column's own L1
//     residual. A converged column is FROZEN: its lane is copied out
//     into its Result and no further sweep touches it, so its scores
//     are the same iteration-k vector a standalone Iterate would have
//     returned. Live columns keep sweeping until each converges,
//     exhausts its MaxIters, or its Ctx dies.
//   - Observe fires once per completed sweep per live column with that
//     column's residual, on the coordinating goroutine.
//   - Ctx is polled once per sweep per live column before the sweep
//     starts; a cancelled column freezes with Result.Err set and its
//     scores at the last fully completed iteration.
//
// Bit-identity contract: column j's Result — scores, Iterations,
// Converged, the convergence decision itself — is bit-identical to
// Iterate(g, alpha, bases[j], opts_j, workers, pool) for ANY B, not
// just B = 1. The blocked sweep performs, per column, the same
// floating-point operations in the same order as the single-vector
// sweep ((1−d)·base[v] first, then d·alpha[t]·InvDeg·cur[u] terms in
// (source, type) order, L1 accumulation in ascending node order), and
// lanes never interact; freezing removes a converged column from later
// sweeps exactly as Iterate's loop break does. The equivalence is
// enforced across damping/threshold/warm-start/cancel matrices by
// TestIterateBlockGoldenEquivalence.
//
// workers has Iterate's meaning: <= 1 selects the serial bitwise-
// deterministic path, larger values fan node ranges out over that many
// goroutines (per-column results then match parallel Iterate at the
// same worker count bit for bit, since the per-worker partial residuals
// are combined in the same order).
//
// The returned slice has one Result per base set, in order; each
// Result.Scores comes from pool (when non-nil) and should be recycled
// with Result.ReleaseTo as usual. IterateBlock panics on malformed
// inputs under the same rules as Iterate, plus a len(opts) that is
// neither 1 nor len(bases). Like Iterate, a column whose Init length
// does not match the graph — a warm start donated across a concurrent
// corpus swap — degrades to a cold start with that column's
// Result.InitDropped set rather than panicking the serving goroutine
// (the pre-PR-9 behaviour, which let a SwapCorpus race crash
// background precompute and basis rebuilds).
//
// Options.Tile is a per-RUN execution plan, read from the first
// options entry (per-column tiling plans make no sense — every column
// shares the one CSR sweep). When usable it selects the cache-blocked
// sweep; per-column results remain bit-identical either way.
func IterateBlock(g *graph.Graph, alpha []float64, bases [][]float64, opts []Options, workers int, pool *BufferPool) []Result {
	B := len(bases)
	if B == 0 {
		return nil
	}
	n := g.NumNodes()
	if len(alpha) < g.Schema().NumTransferTypes() {
		panic(fmt.Sprintf("rank: alpha vector has %d entries, schema has %d transfer types", len(alpha), g.Schema().NumTransferTypes()))
	}
	if len(opts) != 1 && len(opts) != B {
		panic(fmt.Sprintf("rank: IterateBlock got %d option sets for %d base sets (want 1 or %d)", len(opts), B, B))
	}
	results := make([]Result, B)
	col := make([]Options, B) // normalized per-column options
	for j := 0; j < B; j++ {
		o := opts[0]
		if len(opts) == B {
			o = opts[j]
		}
		if len(bases[j]) != n {
			panic(fmt.Sprintf("rank: base distribution %d has %d entries for a %d-node graph", j, len(bases[j]), n))
		}
		if o.Init != nil && len(o.Init) != n {
			o.Init = nil
			results[j].InitDropped = true
		}
		col[j] = o.Normalized()
	}
	tl := opts[0].Tile.forGraph(n)

	// Working panels, [node*B + column].
	cur := pool.Get(n * B)
	next := pool.Get(n * B)
	for v := 0; v < n; v++ {
		row := v * B
		for j := 0; j < B; j++ {
			if col[j].Init != nil {
				cur[row+j] = col[j].Init[v]
			} else {
				cur[row+j] = bases[j][v]
			}
		}
	}

	d := make([]float64, B)
	omd := make([]float64, B)
	for j := 0; j < B; j++ {
		d[j] = col[j].Damping
		omd[j] = 1 - col[j].Damping
	}

	// active holds the indices of columns still iterating, in ascending
	// order (preserved by the in-place compaction below, so Observe
	// callbacks per sweep fire in column order).
	active := make([]int, 0, B)
	for j := 0; j < B; j++ {
		active = append(active, j)
	}
	diffs := make([]float64, B)

	start, arcs := g.ReverseCSR()
	if workers > n {
		workers = n
	}
	parallel := workers > 1
	var bounds []int
	var wdiffs [][]float64
	if parallel {
		bounds = make([]int, workers+1)
		for w := 0; w <= workers; w++ {
			bounds[w] = w * n / workers
		}
		wdiffs = make([][]float64, workers)
		for w := range wdiffs {
			wdiffs[w] = make([]float64, B)
		}
	}

	// freeze copies column j's lane out of panel into its own pooled
	// vector and removes j from the active set.
	freeze := func(j int, panel []float64) {
		out := pool.Get(n)
		for v := 0; v < n; v++ {
			out[v] = panel[v*B+j]
		}
		results[j].Scores = out
		for i, a := range active {
			if a == j {
				active = append(active[:i], active[i+1:]...)
				break
			}
		}
	}

	var wg sync.WaitGroup
	for it := 0; len(active) > 0; it++ {
		// Pre-sweep gate, mirroring Iterate's loop head: a column whose
		// ctx died freezes with the error and the last completed
		// iteration's scores; a column out of iteration budget freezes
		// as unconverged. Iterate over a snapshot because freeze mutates
		// active.
		snapshot := append([]int(nil), active...)
		for _, j := range snapshot {
			if ctx := col[j].Ctx; ctx != nil {
				if err := ctx.Err(); err != nil {
					results[j].Err = err
					freeze(j, cur)
					continue
				}
			}
			if it >= col[j].MaxIters {
				freeze(j, cur)
			}
		}
		if len(active) == 0 {
			break
		}

		// One blocked sweep over every live column.
		if parallel {
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					if tl != nil {
						sweepBlockTiled(tl, arcs, alpha, d, omd, bases, cur, next, B, active, wdiffs[w], bounds[w], bounds[w+1])
					} else {
						sweepBlock(start, arcs, alpha, d, omd, bases, cur, next, B, active, wdiffs[w], bounds[w], bounds[w+1])
					}
				}(w)
			}
			wg.Wait()
			// Combine per-worker partials in worker order — the same
			// summation order parallel Iterate uses for its scalar
			// residual, so the per-column convergence decision matches
			// a standalone parallel run bit for bit.
			for _, j := range active {
				total := 0.0
				for w := 0; w < workers; w++ {
					total += wdiffs[w][j]
				}
				diffs[j] = total
			}
		} else if tl != nil {
			sweepBlockTiled(tl, arcs, alpha, d, omd, bases, cur, next, B, active, diffs, 0, n)
		} else {
			sweepBlock(start, arcs, alpha, d, omd, bases, cur, next, B, active, diffs, 0, n)
		}

		snapshot = append(snapshot[:0], active...)
		for _, j := range snapshot {
			results[j].Iterations = it + 1
			if col[j].Observe != nil {
				col[j].Observe(it+1, diffs[j])
			}
			if diffs[j] < col[j].Threshold {
				results[j].Converged = true
				freeze(j, next) // the just-completed iteration's values
			}
		}
		cur, next = next, cur
	}

	pool.Put(cur)
	pool.Put(next)
	return results
}

// sweepBlock is the blocked power-iteration inner loop: one damped
// gather pass over the node range [lo, hi) advancing every ACTIVE
// column of the [node*B+column] panel, accumulating each live column's
// partial L1 residual into diffs (indexed by column; entries of frozen
// columns are left untouched — callers only read active entries, which
// sweepBlock fully overwrites via the reset below).
//
// Per-column bitwise determinism: for column j the accumulation per
// node is omd[j]*base_j[v] first, then d[j]*alpha[t]*InvDeg*cur[u·B+j]
// terms in (source, type) order (zero-rate terms skipped), then the
// ascending-v L1 fold — operation for operation the single-vector
// sweep's schedule, so next[v·B+j] and diffs[j] carry the exact bits
// sweep(..., bases[j], ...) would produce.
func sweepBlock(start []int32, arcs []graph.Arc, alpha []float64, d, omd []float64, bases [][]float64, cur, next []float64, B int, active []int, diffs []float64, lo, hi int) {
	for _, j := range active {
		diffs[j] = 0
	}
	for v := lo; v < hi; v++ {
		row := v * B
		for _, j := range active {
			next[row+j] = omd[j] * bases[j][v]
		}
		for k := start[v]; k < start[v+1]; k++ {
			a := arcs[k]
			w := alpha[a.Type]
			if w == 0 {
				continue
			}
			inv := float64(a.InvDeg)
			urow := int(a.To) * B
			for _, j := range active {
				next[row+j] += d[j] * w * inv * cur[urow+j]
			}
		}
		for _, j := range active {
			delta := next[row+j] - cur[row+j]
			if delta < 0 {
				delta = -delta
			}
			diffs[j] += delta
		}
	}
}
