package rank

import (
	"testing"
)

// TestObserverMatchesIterations runs the kernel with a recording
// observer and checks the per-iteration callbacks agree exactly with
// the final Result: one call per executed iteration, 1-based indices
// in order, and a final residual consistent with the convergence
// decision.
func TestObserverMatchesIterations(t *testing.T) {
	g, r := fig1Fixture(t)
	base := fig1Base(g)
	opts := Options{Threshold: 1e-10, MaxIters: 500}

	var iters []int
	var residuals []float64
	opts.Observe = func(iter int, residual float64) {
		iters = append(iters, iter)
		residuals = append(residuals, residual)
	}

	for _, workers := range []int{1, 3} {
		iters, residuals = nil, nil
		res := Iterate(g, r.Vector(), base, opts, workers, nil)
		if !res.Converged {
			t.Fatalf("workers=%d: fixture run did not converge", workers)
		}
		if len(iters) != res.Iterations {
			t.Fatalf("workers=%d: observer saw %d iterations, kernel reports %d", workers, len(iters), res.Iterations)
		}
		for i, it := range iters {
			if it != i+1 {
				t.Fatalf("workers=%d: call %d reported iteration %d, want %d", workers, i, it, i+1)
			}
		}
		// Every residual before the last must be at or above threshold
		// (the run continued); the last must be below (it stopped).
		th := opts.Normalized().Threshold
		for i, rd := range residuals[:len(residuals)-1] {
			if rd < th {
				t.Fatalf("workers=%d: iteration %d residual %g below threshold %g but run continued", workers, i+1, rd, th)
			}
		}
		if last := residuals[len(residuals)-1]; last >= th {
			t.Fatalf("workers=%d: final residual %g not below threshold %g despite convergence", workers, last, th)
		}
		// Residuals of a converging damped iteration must reach the
		// threshold monotonically enough that the last is the minimum.
		for _, rd := range residuals[:len(residuals)-1] {
			if rd < residuals[len(residuals)-1] {
				t.Fatalf("workers=%d: interior residual %g below final residual", workers, rd)
			}
		}
	}
}

// TestObserverZeroIters checks the observer is never called when the
// sentinel requests zero iterations.
func TestObserverZeroIters(t *testing.T) {
	g, r := fig1Fixture(t)
	base := fig1Base(g)
	calls := 0
	opts := Options{MaxIters: ZeroIters, Observe: func(int, float64) { calls++ }}
	res := Iterate(g, r.Vector(), base, opts, 1, nil)
	if res.Iterations != 0 || calls != 0 {
		t.Fatalf("zero-iteration run: Iterations=%d observer calls=%d, want 0/0", res.Iterations, calls)
	}
}

// TestObserverDoesNotChangeScores verifies observation is pure: bit
// pattern of the converged scores is identical with and without an
// observer attached (the golden-fixture guarantee must survive the
// instrumentation hook).
func TestObserverDoesNotChangeScores(t *testing.T) {
	g, r := fig1Fixture(t)
	base := fig1Base(g)
	plain := Iterate(g, r.Vector(), base, Options{Threshold: 1e-10, MaxIters: 500}, 1, nil)
	observed := Iterate(g, r.Vector(), base, Options{
		Threshold: 1e-10, MaxIters: 500,
		Observe: func(int, float64) {},
	}, 1, nil)
	if plain.Iterations != observed.Iterations {
		t.Fatalf("iterations differ: %d vs %d", plain.Iterations, observed.Iterations)
	}
	for v := range plain.Scores {
		if plain.Scores[v] != observed.Scores[v] {
			t.Fatalf("score %d differs: %v vs %v", v, plain.Scores[v], observed.Scores[v])
		}
	}
}

// seedKernelAllocsPerRun is the pooled serial kernel's steady-state
// allocation count measured on the PRE-observability seed (commit
// 09dd806): 4 allocs/op, all of them sync.Pool slice-header boxing in
// BufferPool.Get/Put — none from the iteration loop itself. The
// observer hook must not add to it.
const seedKernelAllocsPerRun = 4

// TestIterateDisabledObserverZeroAlloc is the overhead contract of the
// observability PR: with Observe == nil, the pooled serial kernel path
// must allocate exactly what the seed kernel allocated — i.e. the
// per-iteration observer hook adds 0 allocs/op when disabled.
func TestIterateDisabledObserverZeroAlloc(t *testing.T) {
	g, r := fig1Fixture(t)
	base := fig1Base(g)
	alpha := r.Vector()
	pool := NewBufferPool()
	opts := Options{Threshold: 1e-10, MaxIters: 500}
	// Warm the pool so steady state is measured, not first-use growth.
	res := Iterate(g, alpha, base, opts, 1, pool)
	res.ReleaseTo(pool)

	allocs := testing.AllocsPerRun(100, func() {
		r := Iterate(g, alpha, base, opts, 1, pool)
		r.ReleaseTo(pool)
	})
	if allocs > seedKernelAllocsPerRun {
		t.Fatalf("disabled-observer pooled kernel path allocates %v allocs/op, seed allocated %d — the observer hook added overhead",
			allocs, seedKernelAllocsPerRun)
	}
}
