package rank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"authorityflow/internal/graph"
)

func randomWorld(t testing.TB, seed int64, n, m int) (*graph.Graph, *graph.Rates, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for i := 0; i < m; i++ {
		edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	g, r := paperGraph(t, n, edges, 0.6, 0.2)
	base := make([]float64, n)
	for i := range base {
		base[i] = rng.Float64()
	}
	NormalizeDist(base)
	return g, r, base
}

func TestRunParallelMatchesSerial(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 8} {
		g, r, base := randomWorld(t, int64(workers), 500, 3000)
		opts := Options{Threshold: 1e-10, MaxIters: 1000}
		serial := Run(g, r, base, opts)
		parallel := RunParallel(g, r, base, opts, workers)
		if !parallel.Converged || !serial.Converged {
			t.Fatalf("workers=%d: convergence serial=%v parallel=%v", workers, serial.Converged, parallel.Converged)
		}
		for i := range serial.Scores {
			if math.Abs(serial.Scores[i]-parallel.Scores[i]) > 1e-9 {
				t.Fatalf("workers=%d: node %d: serial %v vs parallel %v",
					workers, i, serial.Scores[i], parallel.Scores[i])
			}
		}
	}
}

func TestRunParallelDegenerateWorkerCounts(t *testing.T) {
	g, r, base := randomWorld(t, 5, 100, 500)
	opts := Options{Threshold: 1e-10, MaxIters: 1000}
	serial := Run(g, r, base, opts)
	for _, workers := range []int{0, 1, 100, 1000} {
		got := RunParallel(g, r, base, opts, workers)
		for i := range serial.Scores {
			if math.Abs(serial.Scores[i]-got.Scores[i]) > 1e-9 {
				t.Fatalf("workers=%d diverges at node %d", workers, i)
			}
		}
	}
}

func TestRunParallelEmptyGraph(t *testing.T) {
	g, r := paperGraph(t, 1, nil, 0.5, 0)
	res := RunParallel(g, r, []float64{1}, Options{Threshold: 1e-9, MaxIters: 10}, 4)
	if len(res.Scores) != 1 {
		t.Fatalf("scores = %v", res.Scores)
	}
	if math.Abs(res.Scores[0]-0.15) > 1e-9 {
		t.Errorf("isolated node score = %v, want 0.15", res.Scores[0])
	}
}

func TestRunParallelWarmStart(t *testing.T) {
	g, r, base := randomWorld(t, 9, 300, 1500)
	opts := Options{Threshold: 1e-10, MaxIters: 1000}
	cold := RunParallel(g, r, base, opts, 4)
	optsWarm := opts
	optsWarm.Init = cold.Scores
	warm := RunParallel(g, r, base, optsWarm, 4)
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start did not converge faster: %d vs %d", warm.Iterations, cold.Iterations)
	}
}

func BenchmarkPowerIterationParallel(b *testing.B) {
	g, r := benchGraph(b, 20000, 160000)
	base := make([]float64, g.NumNodes())
	for i := range base {
		base[i] = 1
	}
	NormalizeDist(base)
	opts := Options{Threshold: 1e-6, MaxIters: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunParallel(g, r, base, opts, 0)
	}
}

// TestPropertyParallelEqualsSerial: quick-checked equivalence on random
// graph/base combinations.
func TestPropertyParallelEqualsSerial(t *testing.T) {
	prop := func(seed int64, workers uint8) bool {
		g, r, base := randomWorld(&testing.T{}, seed, 60, 300)
		opts := Options{Threshold: 1e-9, MaxIters: 500}
		a := Run(g, r, base, opts)
		b := RunParallel(g, r, base, opts, 1+int(workers%7))
		for i := range a.Scores {
			if math.Abs(a.Scores[i]-b.Scores[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
