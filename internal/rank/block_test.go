package rank

import (
	"context"
	"fmt"
	"math"
	"testing"

	"authorityflow/internal/graph"
)

// blockBases builds B distinct base distributions over g: base j puts
// mass on nodes j, j+3, j+7 (mod n) with varying weights, normalized.
func blockBases(g *graph.Graph, B int) [][]float64 {
	n := g.NumNodes()
	bases := make([][]float64, B)
	for j := 0; j < B; j++ {
		b := make([]float64, n)
		b[j%n] = 0.5
		b[(j+3)%n] += 0.3
		b[(j+7)%n] += 0.2
		NormalizeDist(b)
		bases[j] = b
	}
	return bases
}

// assertColumnBitIdentical fails unless got matches the standalone
// Iterate result bit for bit — scores, iteration count, convergence
// decision, error identity.
func assertColumnBitIdentical(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Iterations != want.Iterations {
		t.Errorf("%s: Iterations = %d, want %d", label, got.Iterations, want.Iterations)
	}
	if got.Converged != want.Converged {
		t.Errorf("%s: Converged = %v, want %v", label, got.Converged, want.Converged)
	}
	if (got.Err == nil) != (want.Err == nil) || (got.Err != nil && got.Err != want.Err) {
		t.Errorf("%s: Err = %v, want %v", label, got.Err, want.Err)
	}
	if len(got.Scores) != len(want.Scores) {
		t.Fatalf("%s: %d scores, want %d", label, len(got.Scores), len(want.Scores))
	}
	for v := range want.Scores {
		if math.Float64bits(got.Scores[v]) != math.Float64bits(want.Scores[v]) {
			t.Errorf("%s: score[%d] bits = %#016x (%v), want %#016x (%v)",
				label, v, math.Float64bits(got.Scores[v]), got.Scores[v],
				math.Float64bits(want.Scores[v]), want.Scores[v])
			return // one mismatch report per column is enough
		}
	}
}

// TestIterateBlockGoldenEquivalence is the tentpole contract: for every
// block width (including 1 and a ragged 7), every damping/threshold/
// max-iters combination, serial and parallel execution, with and
// without warm starts, each IterateBlock column is bit-identical to the
// standalone Iterate run of the same base set.
func TestIterateBlockGoldenEquivalence(t *testing.T) {
	g, r, _ := dblpFixture(t)
	alpha := r.Vector()
	n := g.NumNodes()

	warm := make([]float64, n) // a deliberately lumpy warm-start vector
	for i := range warm {
		warm[i] = 1 / float64(3+i%11)
	}
	NormalizeDist(warm)

	optsMatrix := []Options{
		{}, // paper defaults
		{Damping: 0.85, Threshold: 1e-9, MaxIters: 1000},             // tight convergence
		{Damping: 0.5, Threshold: 1e-6},                              // different damping
		{Damping: ZeroDamping, Threshold: 1e-12},                     // fixpoint = base
		{Threshold: ZeroThreshold, MaxIters: 13},                     // never converges, fixed sweeps
		{MaxIters: ZeroIters},                                        // zero iterations
		{Damping: 0.85, Threshold: 1e-9, MaxIters: 1000, Init: warm}, // warm start
	}
	for _, B := range []int{1, 2, 7, 64} {
		bases := blockBases(g, B)
		for oi, o := range optsMatrix {
			for _, workers := range []int{1, 4} {
				label := fmt.Sprintf("B=%d opts=%d workers=%d", B, oi, workers)
				block := IterateBlock(g, alpha, bases, []Options{o}, workers, nil)
				if len(block) != B {
					t.Fatalf("%s: %d results for %d bases", label, len(block), B)
				}
				for j := 0; j < B; j++ {
					single := Iterate(g, alpha, bases[j], o, workers, nil)
					assertColumnBitIdentical(t, fmt.Sprintf("%s col=%d", label, j), block[j], single)
				}
			}
		}
	}
}

// TestIterateBlockPerColumnOptions drives one panel whose columns carry
// DIFFERENT options — mixed damping, thresholds, iteration budgets and
// warm starts — and checks each column still matches its standalone
// solve bit for bit (the freeze rule isolates columns completely).
func TestIterateBlockPerColumnOptions(t *testing.T) {
	g, r := fig1Fixture(t)
	alpha := r.Vector()
	base := fig1Base(g)
	warm := Run(g, r, base, Options{Damping: 0.85, Threshold: 1e-6, MaxIters: 500})

	bases := blockBases(g, 5)
	perCol := []Options{
		{Damping: 0.85, Threshold: 1e-10, MaxIters: 500},
		{Damping: 0.5, Threshold: 1e-4},
		{Threshold: ZeroThreshold, MaxIters: 3},
		{MaxIters: ZeroIters},
		{Damping: 0.85, Threshold: 1e-10, MaxIters: 500, Init: warm.Scores},
	}
	pool := NewBufferPool()
	block := IterateBlock(g, alpha, bases, perCol, 1, pool)
	for j := range bases {
		single := Iterate(g, alpha, bases[j], perCol[j], 1, nil)
		assertColumnBitIdentical(t, fmt.Sprintf("col=%d", j), block[j], single)
		block[j].ReleaseTo(pool)
	}
}

// TestIterateBlockObservePerColumn checks the per-column Observe
// contract: every live column gets one callback per completed sweep
// with its OWN residual, the residual sequence matches the standalone
// solve's exactly, and frozen columns stop observing.
func TestIterateBlockObservePerColumn(t *testing.T) {
	g, r := fig1Fixture(t)
	alpha := r.Vector()
	bases := blockBases(g, 3)
	perCol := make([]Options, 3)
	got := make([][]float64, 3)
	thresholds := []float64{1e-4, 1e-8, 1e-12}
	for j := range perCol {
		j := j
		perCol[j] = Options{Damping: 0.85, Threshold: thresholds[j], MaxIters: 500,
			Observe: func(iter int, res float64) {
				if iter != len(got[j])+1 {
					t.Errorf("col %d: observer iter %d out of order", j, iter)
				}
				got[j] = append(got[j], res)
			}}
	}
	block := IterateBlock(g, alpha, bases, perCol, 1, nil)
	for j := range bases {
		var want []float64
		o := perCol[j]
		o.Observe = func(iter int, res float64) { want = append(want, res) }
		single := Iterate(g, alpha, bases[j], o, 1, nil)
		if len(got[j]) != single.Iterations || len(got[j]) != len(want) {
			t.Fatalf("col %d: %d observations for %d iterations", j, len(got[j]), single.Iterations)
		}
		for i := range want {
			if math.Float64bits(got[j][i]) != math.Float64bits(want[i]) {
				t.Errorf("col %d iter %d: residual %v, want %v", j, i+1, got[j][i], want[i])
			}
		}
		if block[j].Iterations != single.Iterations {
			t.Errorf("col %d: %d iterations, want %d", j, block[j].Iterations, single.Iterations)
		}
	}
}

// TestIterateBlockPerColumnCancel cancels ONE column's context
// mid-solve and checks: that column freezes with the context error and
// a complete (unconverged) iteration state, while its panel-mates run
// to convergence bit-identical to standalone solves.
func TestIterateBlockPerColumnCancel(t *testing.T) {
	g, r, _ := dblpFixture(t)
	alpha := r.Vector()
	bases := blockBases(g, 4)

	ctx, cancel := context.WithCancel(context.Background())
	const cancelAfter = 5
	perCol := make([]Options, 4)
	for j := range perCol {
		perCol[j] = Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 1000}
	}
	perCol[2].Ctx = ctx
	perCol[2].Observe = func(iter int, res float64) {
		if iter == cancelAfter {
			cancel()
		}
	}
	block := IterateBlock(g, alpha, bases, perCol, 1, nil)

	// The cancelled column stopped within one sweep with a complete
	// iteration state: its scores equal a ZeroThreshold run of exactly
	// the sweeps it completed.
	if block[2].Err != context.Canceled {
		t.Fatalf("cancelled column Err = %v", block[2].Err)
	}
	if block[2].Converged {
		t.Error("cancelled column reported converged")
	}
	if block[2].Iterations != cancelAfter {
		t.Errorf("cancelled column ran %d iterations, want %d", block[2].Iterations, cancelAfter)
	}
	truncated := Iterate(g, alpha, bases[2], Options{Damping: 0.85, Threshold: ZeroThreshold, MaxIters: cancelAfter}, 1, nil)
	for v := range truncated.Scores {
		if math.Float64bits(block[2].Scores[v]) != math.Float64bits(truncated.Scores[v]) {
			t.Fatalf("cancelled column score[%d] differs from %d-sweep state", v, cancelAfter)
		}
	}
	// The other columns are untouched by their neighbor's cancellation.
	for _, j := range []int{0, 1, 3} {
		single := Iterate(g, alpha, bases[j], perCol[j], 1, nil)
		assertColumnBitIdentical(t, fmt.Sprintf("survivor col=%d", j), block[j], single)
	}
}

// TestIterateBlockCancelledBeforeStart: a ctx dead at entry freezes
// every ctx-carrying column at its start vector with zero iterations,
// matching Iterate.
func TestIterateBlockCancelledBeforeStart(t *testing.T) {
	g, r := fig1Fixture(t)
	alpha := r.Vector()
	bases := blockBases(g, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	block := IterateBlock(g, alpha, bases, []Options{{Ctx: ctx}}, 1, nil)
	for j := range bases {
		if block[j].Err != context.Canceled || block[j].Iterations != 0 {
			t.Fatalf("col %d: err=%v iters=%d, want Canceled/0", j, block[j].Err, block[j].Iterations)
		}
		for v := range bases[j] {
			if block[j].Scores[v] != bases[j][v] {
				t.Fatalf("col %d: scores are not the start vector", j)
			}
		}
	}
}

// TestIterateBlockGoldenFig1 pins the blocked kernel directly against
// the seed implementation's golden bits: a panel containing the Figure 1
// base set must reproduce fig1GoldenBits in its lane regardless of what
// shares the panel.
func TestIterateBlockGoldenFig1(t *testing.T) {
	g, r := fig1Fixture(t)
	alpha := r.Vector()
	bases := append([][]float64{fig1Base(g)}, blockBases(g, 3)...)
	o := Options{Damping: 0.85, Threshold: 1e-10, MaxIters: 500}
	block := IterateBlock(g, alpha, bases, []Options{o}, 1, nil)
	if !block[0].Converged || block[0].Iterations != fig1GoldenIters {
		t.Fatalf("converged=%v iterations=%d, want true/%d", block[0].Converged, block[0].Iterations, fig1GoldenIters)
	}
	for i, want := range fig1GoldenBits {
		if got := math.Float64bits(block[0].Scores[i]); got != want {
			t.Errorf("score[v%d] bits = %#016x, want %#016x", i+1, got, want)
		}
	}
}

// TestIterateBlockPanics checks the malformed-input contract.
func TestIterateBlockPanics(t *testing.T) {
	g, r := fig1Fixture(t)
	alpha := r.Vector()
	ok := blockBases(g, 2)
	cases := []struct {
		name  string
		bases [][]float64
		opts  []Options
	}{
		{"short base", [][]float64{ok[0], make([]float64, g.NumNodes()-1)}, []Options{{}}},
		{"opts arity", ok, []Options{{}, {}, {}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", c.name)
				}
			}()
			IterateBlock(g, alpha, c.bases, c.opts, 1, nil)
		})
	}
}

// TestIterateBlockDegradesStaleInit pins the blocked kernel's half of
// the stale-warm-start fix (ISSUE 9 satellite): a column whose Init
// length does not match the graph — the signature of a vector donated
// across a concurrent corpus swap — must degrade to a cold start with
// InitDropped set, bit-identical to the explicitly cold column, while
// well-sized columns in the same panel keep their warm starts.
func TestIterateBlockDegradesStaleInit(t *testing.T) {
	g, r := fig1Fixture(t)
	alpha := r.Vector()
	bases := blockBases(g, 2)
	o := Options{Damping: 0.85, Threshold: 1e-10, MaxIters: 500}
	warmInit := make([]float64, g.NumNodes())
	for i := range warmInit {
		warmInit[i] = 1 / float64(len(warmInit))
	}
	staleInit := make([]float64, g.NumNodes()+7)

	oStale, oWarm := o, o
	oStale.Init = staleInit
	oWarm.Init = warmInit
	block := IterateBlock(g, alpha, bases, []Options{oStale, oWarm}, 1, nil)
	if !block[0].InitDropped {
		t.Fatal("stale-init column not reported as dropped")
	}
	if block[1].InitDropped {
		t.Fatal("well-sized init column reported as dropped")
	}

	cold := Iterate(g, alpha, bases[0], o, 1, nil)
	if block[0].Iterations != cold.Iterations || block[0].Converged != cold.Converged {
		t.Fatalf("degraded column (iters=%d conv=%v) differs from cold solve (iters=%d conv=%v)",
			block[0].Iterations, block[0].Converged, cold.Iterations, cold.Converged)
	}
	for v := range cold.Scores {
		if math.Float64bits(block[0].Scores[v]) != math.Float64bits(cold.Scores[v]) {
			t.Fatalf("score[%d]: degraded column %v != cold solve %v", v, block[0].Scores[v], cold.Scores[v])
		}
	}
	warm := Iterate(g, alpha, bases[1], oWarm, 1, nil)
	for v := range warm.Scores {
		if math.Float64bits(block[1].Scores[v]) != math.Float64bits(warm.Scores[v]) {
			t.Fatalf("score[%d]: warm column %v != warm solve %v", v, block[1].Scores[v], warm.Scores[v])
		}
	}
}

// TestIterateBlockEmpty: zero base sets is a no-op, not a panic.
func TestIterateBlockEmpty(t *testing.T) {
	g, r := fig1Fixture(t)
	if res := IterateBlock(g, r.Vector(), nil, []Options{{}}, 1, nil); res != nil {
		t.Fatalf("IterateBlock(nil bases) = %v, want nil", res)
	}
}

// BenchmarkIterateBlock measures the amortization: solving 8 base sets
// through one blocked panel vs 8 standalone solves.
func BenchmarkIterateBlock(b *testing.B) {
	g, r, _ := dblpFixture(b)
	alpha := r.Vector()
	bases := blockBases(g, 8)
	o := Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 1000}
	pool := NewBufferPool()
	b.Run("blocked8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := IterateBlock(g, alpha, bases, []Options{o}, 1, pool)
			for j := range res {
				res[j].ReleaseTo(pool)
			}
		}
	})
	b.Run("serial8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range bases {
				res := Iterate(g, alpha, bases[j], o, 1, pool)
				res.ReleaseTo(pool)
			}
		}
	})
}
