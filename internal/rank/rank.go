// Package rank implements the authority-flow fixpoint computations the
// paper builds on: the damped power iteration shared by PageRank,
// ObjectRank and ObjectRank2 (Equation 4), global PageRank, the
// original 0/1-base-set ObjectRank of [BHP04], and the modified
// multi-keyword ObjectRank with normalizing exponents (Equation 16)
// used as the Table 2 baseline.
package rank

import (
	"context"
	"math"
	"sort"

	"authorityflow/internal/graph"
)

// Options control a power-iteration run.
//
// Zero-value semantics: a zero Damping, Threshold or MaxIters means
// "use the paper default" (0.85, 0.002, 200), applied by Normalized()
// at every kernel entry. To request an ACTUAL zero — damping 0 (scores
// equal the base distribution), threshold 0 (never stop early), or
// zero iterations (scores equal the start vector) — use the explicit
// sentinels ZeroDamping, ZeroThreshold and ZeroIters. Earlier versions
// silently conflated "unset" with "zero", which made Damping: 0
// impossible to express; the sentinels close that gap without breaking
// the zero value's use-the-defaults convenience.
type Options struct {
	// Damping is the probability d of following an edge rather than
	// jumping back to the base set. The paper uses 0.85. Zero means the
	// default; ZeroDamping (any negative value) means an actual 0.
	Damping float64
	// Threshold is the L1 convergence threshold on successive score
	// vectors. The paper's performance experiments use 0.002. Zero
	// means the default; ZeroThreshold (any negative value) disables
	// early stopping so the run always executes MaxIters iterations.
	Threshold float64
	// MaxIters bounds the number of iterations. Zero means the default
	// (200); ZeroIters (any negative value) means run no iterations at
	// all, leaving the scores at the start vector.
	MaxIters int
	// Init, if non-nil, is the starting score vector: the warm-start
	// mechanism of Section 6.2, where a reformulated query starts from
	// the previous query's converged scores. Its length should equal
	// the graph's node count; a mismatched vector — the signature of a
	// warm start donated across a concurrent corpus swap — is DROPPED
	// and the run degrades to a cold start with Result.InitDropped set,
	// exactly the fallback core.Engine applies at its own boundary.
	// (Earlier kernels panicked here, which let a swap race turn a
	// background precompute or basis rebuild into a serving-goroutine
	// crash; a stale warm start is recoverable by construction — the
	// fixpoint does not depend on the start vector.)
	Init []float64
	// Tile, if non-nil, selects the cache-blocked sweep built by
	// NewTiling for this graph. Tiling is an execution plan, not an
	// input: results are bit-identical to the untiled sweep (the tiles
	// partition each CSR row's arcs without reordering a single
	// floating-point operation), so this is purely a locality knob. A
	// tiling sized for a different graph, or one whose plan has fewer
	// than two tiles, is ignored and the untiled sweep runs.
	Tile *Tiling
	// Observe, if non-nil, is invoked by the kernel after EVERY
	// completed power iteration with the 1-based iteration index and
	// that iteration's L1 residual (the convergence quantity compared
	// against Threshold), so observability layers can audit where a
	// solve spends its effort — the per-solve behaviour behind the
	// paper's §6.2 warm-start claims. The last call's index equals the
	// run's final Result.Iterations.
	//
	// Contract: the nil path is guaranteed allocation-free and costs
	// one branch per iteration, so serving with observation disabled is
	// indistinguishable from a kernel without the hook (enforced by
	// TestIterateDisabledObserverZeroAlloc). A non-nil observer runs on
	// the coordinating goroutine of its own solve, never inside the
	// parallel sweep workers; concurrent solves call their observers
	// concurrently, so a shared observer must be safe for concurrent
	// use. Observers must not retain or mutate kernel state.
	Observe IterObserver
	// Ctx, if non-nil, makes the run cancellable: the kernel checks
	// ctx.Err() exactly once per sweep, on the coordinating goroutine,
	// BEFORE starting the next iteration. On cancellation the run stops
	// with Result.Err set to the context's error and Result.Scores
	// holding the last fully completed iteration's vector — a sweep is
	// never published half-written, so a cancelled run's scores are
	// always a consistent (just unconverged) fixpoint state. A nil Ctx
	// means the run cannot be cancelled and costs one branch per
	// iteration (the serving default before PR 4).
	//
	// Contract: whether Ctx is nil, context.Background(), or a live
	// cancellable context, the happy path (no cancellation) adds 0
	// allocations per run over the PR-3 kernel — ctx.Err() on the
	// stdlib context types does not allocate. Enforced by
	// TestIterateContextZeroAlloc. A context is deliberately carried in
	// Options next to Init and Observe: all three are per-run state of
	// one kernel execution, and threading a parameter through every
	// ranking-mode wrapper would force a signature break for the same
	// effect.
	Ctx context.Context
}

// IterObserver receives one callback per completed power iteration:
// the 1-based iteration index and the iteration's L1 residual
// Σ|next[v]−cur[v]|. See Options.Observe for the concurrency and
// allocation contract.
type IterObserver func(iter int, residual float64)

// Explicit-zero sentinels for Options fields whose natural zero value
// is reserved for "use the paper default". Any negative value is
// treated identically; these names exist so intent is grep-able.
const (
	// ZeroDamping requests damping factor 0: no authority propagates,
	// the fixpoint equals the base distribution.
	ZeroDamping float64 = -1
	// ZeroThreshold requests convergence threshold 0: the L1 early-stop
	// never fires and the run executes exactly MaxIters iterations
	// (Converged stays false).
	ZeroThreshold float64 = -1
	// ZeroIters requests zero iterations: the result's scores are the
	// start vector (Init if given, else the base distribution),
	// Iterations is 0 and Converged is false.
	ZeroIters int = -1
)

// Defaults returns the paper's standard options: d = 0.85, threshold
// 0.002, at most 200 iterations.
func Defaults() Options {
	return Options{Damping: 0.85, Threshold: 0.002, MaxIters: 200}
}

// Normalized resolves the zero-value/sentinel convention into literal
// field values: zero fields become the paper defaults, negative
// (sentinel) fields become actual zeros. The result is idempotent under
// further Normalized calls and is what every kernel entry point applies
// to its options before running. Init, Observe and Ctx pass through
// untouched.
func (o Options) Normalized() Options {
	switch {
	case o.Damping == 0:
		o.Damping = 0.85
	case o.Damping < 0:
		o.Damping = 0
	}
	switch {
	case o.Threshold == 0:
		o.Threshold = 0.002
	case o.Threshold < 0:
		o.Threshold = 0
	}
	switch {
	case o.MaxIters == 0:
		o.MaxIters = 200
	case o.MaxIters < 0:
		o.MaxIters = 0
	}
	return o
}

// Result is the outcome of a power-iteration run.
type Result struct {
	// Scores holds the converged authority score of every node.
	Scores []float64
	// Iterations is the number of iterations executed. The warm-start
	// experiments (Figures 14b–17b) track this count.
	Iterations int
	// Converged reports whether the L1 threshold was reached before
	// MaxIters.
	Converged bool
	// Err is non-nil iff the run was stopped early by Options.Ctx
	// (context.Canceled or context.DeadlineExceeded). Scores then hold
	// the last fully completed iteration's vector (or the start vector
	// when cancellation was observed before the first sweep) and
	// Converged is false. Callers that own a buffer pool should still
	// ReleaseTo the scores of a cancelled run.
	Err error
	// InitDropped reports that Options.Init was discarded because its
	// length did not match the graph — a stale warm start from a
	// rebuilt graph — and the run started cold instead. The scores are
	// a complete, correct solve; the flag exists so callers can count
	// how often donated warm starts go stale.
	InitDropped bool
}

// Run executes the damped authority-flow fixpoint
//
//	r = d·A·r + (1−d)·base
//
// over the authority transfer data graph derived from g and rates,
// where A's entries are the Equation 1 arc weights
// alpha(type)/OutDeg(u, type). base is the random-jump distribution; it
// should sum to 1 (use NormalizeDist). Nodes never listed in base still
// receive authority through incoming arcs.
//
// Run is the serial, bitwise-deterministic entry of the unified kernel
// (Iterate with one worker and no buffer pool); its results are
// bit-identical to the historical scatter implementation. Panics if
// opts.Init is non-nil with a length other than g.NumNodes().
func Run(g *graph.Graph, rates *graph.Rates, base []float64, opts Options) Result {
	return Iterate(g, rates.Vector(), base, opts, 1, nil)
}

// NormalizeDist scales a non-negative vector in place so it sums to 1.
// A zero vector is left unchanged. Returns the same slice.
func NormalizeDist(v []float64) []float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum == 0 {
		return v
	}
	for i := range v {
		v[i] /= sum
	}
	return v
}

// PageRank computes the global PageRank of the graph: the fixpoint with
// a uniform random-jump distribution over all nodes. The paper uses
// global ObjectRank values (equivalently, PageRank over the authority
// transfer data graph) to warm-start the first query (Section 6.2).
func PageRank(g *graph.Graph, rates *graph.Rates, opts Options) Result {
	n := g.NumNodes()
	base := make([]float64, n)
	if n == 0 {
		return Result{Scores: base, Converged: true}
	}
	u := 1 / float64(n)
	for i := range base {
		base[i] = u
	}
	return Run(g, rates, base, opts)
}

// ObjectRank computes the original [BHP04] ObjectRank for a base set
// with the 0/1 jump distribution: every base-set node receives jump
// probability 1/|S(Q)|.
func ObjectRank(g *graph.Graph, rates *graph.Rates, baseSet []graph.NodeID, opts Options) Result {
	n := g.NumNodes()
	base := make([]float64, n)
	if len(baseSet) > 0 {
		u := 1 / float64(len(baseSet))
		for _, v := range baseSet {
			base[v] = u
		}
	}
	return Run(g, rates, base, opts)
}

// ObjectRankMulti computes the modified multi-keyword ObjectRank of
// Equation 16: per-keyword ObjectRank scores are combined as
//
//	r(v) = prod_i r_ti(v)^g(ti),  g(t) = 1/log(|S(t)|)
//
// so that popular keywords (large base sets, hence skewed scores) do
// not dominate the conjunction. baseSets holds one 0/1 base set per
// keyword. The returned Result's Iterations is the sum over keywords.
func ObjectRankMulti(g *graph.Graph, rates *graph.Rates, baseSets [][]graph.NodeID, opts Options) Result {
	n := g.NumNodes()
	combined := make([]float64, n)
	for i := range combined {
		combined[i] = 1
	}
	total := Result{Scores: combined, Converged: true}
	for _, bs := range baseSets {
		r := ObjectRank(g, rates, bs, opts)
		total.Iterations += r.Iterations
		total.Converged = total.Converged && r.Converged
		exp := normalizingExponent(len(bs))
		for v := range combined {
			combined[v] *= math.Pow(r.Scores[v], exp)
		}
	}
	return total
}

// normalizingExponent returns g(t) = 1/log(|S(t)|), clamped to 1 for
// base sets too small for the logarithm to exceed 1.
//
// This deliberately DEVIATES from a literal reading of Equation 16 for
// |S(t)| <= 2 (and is undefined there in the paper): ln(0) and ln(1)
// make g infinite or divide by zero, and ln(2) ≈ 0.693 would give an
// exponent g ≈ 1.44 > 1, i.e. a rare keyword would have its (already
// < 1) scores shrunk MORE than a common one — the opposite of the
// normalization's stated purpose of damping popular keywords. Clamping
// to exponent 1 (use the raw score) keeps g monotonically
// non-increasing in base-set size and exactly matches the paper from
// |S(t)| = 3 (the first size with ln > 1) upward. Golden values for
// sizes 0..3 are pinned by TestNormalizingExponentGolden; the rationale
// is recorded in DESIGN.md §2.
func normalizingExponent(baseSize int) float64 {
	if baseSize <= 0 {
		return 1
	}
	l := math.Log(float64(baseSize))
	if l <= 1 {
		return 1
	}
	return 1 / l
}

// Ranked is one node with its authority score.
type Ranked struct {
	Node  graph.NodeID
	Score float64
}

// TopK returns the k highest-scoring nodes in descending score order
// (ties broken by ascending node ID, for determinism). Selection uses a
// bounded min-heap, O(n log k), so top-10 screens stay cheap on
// million-node graphs.
func TopK(scores []float64, k int) []Ranked {
	sel := newSelector(k)
	if sel == nil {
		return nil
	}
	for i, s := range scores {
		sel.offer(Ranked{Node: graph.NodeID(i), Score: s})
	}
	return sel.sorted()
}

// TopKOfType returns the k highest-scoring nodes of one node type,
// which the paper's survey screens use to present only Paper results.
func TopKOfType(g *graph.Graph, scores []float64, t graph.TypeID, k int) []Ranked {
	sel := newSelector(k)
	if sel == nil {
		return nil
	}
	for i, s := range scores {
		if g.Label(graph.NodeID(i)) == t {
			sel.offer(Ranked{Node: graph.NodeID(i), Score: s})
		}
	}
	return sel.sorted()
}

// selector is a bounded min-heap keeping the k best Ranked entries
// under the (score desc, node asc) order.
type selector struct {
	k    int
	heap []Ranked // min-heap: heap[0] is the WORST kept entry
}

func newSelector(k int) *selector {
	if k <= 0 {
		return nil
	}
	return &selector{k: k, heap: make([]Ranked, 0, k)}
}

// worse reports whether a ranks below b in the final order.
func worse(a, b Ranked) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Node > b.Node
}

func (s *selector) offer(r Ranked) {
	if len(s.heap) < s.k {
		s.heap = append(s.heap, r)
		s.up(len(s.heap) - 1)
		return
	}
	if worse(r, s.heap[0]) || r == s.heap[0] {
		return
	}
	s.heap[0] = r
	s.down(0)
}

func (s *selector) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(s.heap[i], s.heap[p]) {
			break
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
}

func (s *selector) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && worse(s.heap[l], s.heap[smallest]) {
			smallest = l
		}
		if r < n && worse(s.heap[r], s.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.heap[i], s.heap[smallest] = s.heap[smallest], s.heap[i]
		i = smallest
	}
}

// sorted drains the selector into descending final order.
func (s *selector) sorted() []Ranked {
	out := append([]Ranked(nil), s.heap...)
	sort.Slice(out, func(i, j int) bool { return worse(out[j], out[i]) })
	return out
}
