package rank

import (
	"math"
	"testing"

	"authorityflow/internal/graph"
)

func TestHITSStarGraph(t *testing.T) {
	// Three papers all cite one: the cited paper is the top authority,
	// the citing papers are the hubs.
	g, _ := paperGraph(t, 4, [][2]int{{0, 3}, {1, 3}, {2, 3}}, 0.7, 0)
	res := HITS(g, nil, 1e-10, 1000)
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Authorities[3] <= res.Authorities[0] {
		t.Errorf("cited paper should be top authority: %v", res.Authorities)
	}
	for i := 0; i < 3; i++ {
		if res.Hubs[i] <= res.Hubs[3] {
			t.Errorf("citing paper %d should out-hub the sink: %v", i, res.Hubs)
		}
	}
	// L2 normalization.
	sum := 0.0
	for _, a := range res.Authorities {
		sum += a * a
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("authority norm = %v", sum)
	}
}

func TestHITSSubsetRestriction(t *testing.T) {
	// Edges 0->1 and 2->3; restricting to {0,1} must zero out 2 and 3.
	g, _ := paperGraph(t, 4, [][2]int{{0, 1}, {2, 3}}, 0.7, 0)
	res := HITS(g, []graph.NodeID{0, 1}, 1e-10, 100)
	if res.Authorities[3] != 0 || res.Hubs[2] != 0 {
		t.Errorf("subset leaked: %v %v", res.Authorities, res.Hubs)
	}
	if res.Authorities[1] <= 0 {
		t.Error("in-subset authority missing")
	}
	// Out-of-range subset entries are ignored, not fatal.
	res = HITS(g, []graph.NodeID{0, 1, 99, -5}, 1e-10, 100)
	if res.Authorities[1] <= 0 {
		t.Error("subset with bad ids broke scoring")
	}
}

func TestHITSEmptyAndDefaults(t *testing.T) {
	g, _ := paperGraph(t, 2, nil, 0.7, 0)
	res := HITS(g, nil, 0, 0) // defaults kick in
	if res.Iterations == 0 {
		t.Error("no iterations run")
	}
	// No edges: authority goes to zero vector (normalization no-op).
	for _, a := range res.Authorities {
		if a != 0 {
			t.Errorf("authority on edgeless graph = %v", a)
		}
	}
}

func TestFocusedSubgraph(t *testing.T) {
	// Chain 0 -> 1 -> 2 -> 3.
	g, _ := paperGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, 0.7, 0)
	got := FocusedSubgraph(g, []graph.NodeID{0}, 1)
	want := map[graph.NodeID]bool{0: true, 1: true}
	if len(got) != 2 {
		t.Fatalf("radius 1 = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Errorf("unexpected node %d", v)
		}
	}
	// Radius includes backward arcs (transfer arcs go both ways), so
	// from node 2 at radius 1 both 1 and 3 are reachable.
	got = FocusedSubgraph(g, []graph.NodeID{2}, 1)
	if len(got) != 3 {
		t.Errorf("radius-1 around middle = %v", got)
	}
	// Duplicates in base are deduplicated.
	got = FocusedSubgraph(g, []graph.NodeID{0, 0, 0}, 0)
	if len(got) != 1 {
		t.Errorf("dedup failed: %v", got)
	}
}
