package rank

import (
	"math"
	"testing"

	"authorityflow/internal/graph"
)

func tsprFixture(t *testing.T) (*graph.Graph, *graph.Rates, [][]graph.NodeID) {
	t.Helper()
	// Two disjoint citation clusters: topic A = {0,1}, topic B = {2,3}.
	g, r := paperGraph(t, 4, [][2]int{{0, 1}, {2, 3}}, 0.7, 0.1)
	return g, r, [][]graph.NodeID{{0, 1}, {2, 3}}
}

func TestTopicSensitiveSeparation(t *testing.T) {
	g, r, topics := tsprFixture(t)
	ts := BuildTopicSensitive(g, r, []string{"a", "b"}, topics, Options{Threshold: 1e-10, MaxIters: 500})
	if got := ts.Topics(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("Topics = %v", got)
	}
	// Pure topic-A weights score only cluster A.
	sa := ts.Scores([]float64{1, 0})
	if sa[0] <= 0 || sa[1] <= 0 {
		t.Errorf("topic A nodes unscored: %v", sa)
	}
	if sa[2] != 0 || sa[3] != 0 {
		t.Errorf("topic B leaked into topic A vector: %v", sa)
	}
	// An even mixture scores all four, each cluster at half strength.
	mix := ts.Scores([]float64{1, 1})
	if math.Abs(mix[0]-sa[0]/2) > 1e-12 {
		t.Errorf("mixture not convex: %v vs %v", mix[0], sa[0]/2)
	}
}

func TestTopicSensitiveDegenerateWeights(t *testing.T) {
	g, r, topics := tsprFixture(t)
	ts := BuildTopicSensitive(g, r, []string{"a", "b"}, topics, Options{Threshold: 1e-10, MaxIters: 500})
	for _, w := range [][]float64{{0, 0}, {-1, -2}, {1}} {
		got := ts.Scores(w)
		for i, s := range got {
			if s != 0 {
				t.Errorf("weights %v: score[%d] = %v, want 0", w, i, s)
			}
		}
	}
	empty := &TopicSensitive{}
	if got := empty.Scores(nil); got != nil {
		t.Errorf("empty TS scores = %v", got)
	}
}

func TestTopicWeightsByOverlap(t *testing.T) {
	topics := [][]graph.NodeID{{0, 1, 2}, {3, 4}}
	base := []graph.NodeID{1, 2, 4}
	w := TopicWeightsByOverlap(base, topics)
	if w[0] != 2 || w[1] != 1 {
		t.Errorf("weights = %v", w)
	}
	if w := TopicWeightsByOverlap(nil, topics); w[0] != 0 || w[1] != 0 {
		t.Errorf("empty base weights = %v", w)
	}
}
