package rank

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"authorityflow/internal/graph"
)

// Kernel raw-speed benchmarks (DESIGN.md §13). All of them scale with
// AFQ_KERNEL_BENCH_N (node count, edges fixed at 8×N): CI runs the
// default small graph as a smoke test; the honest BENCH_kernel.json
// numbers come from a run large enough that the working set falls out
// of the last-level cache, where tiling actually earns its keep —
// e.g. AFQ_KERNEL_BENCH_N=4000000 go test ./internal/rank/ -run '^$'
// -bench BenchmarkKernel -benchtime 3x.
func kernelBenchN() int {
	if s := os.Getenv("AFQ_KERNEL_BENCH_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 20000
}

// kernelBenchTile is the tile width the tiled variants run with
// (AFQ_KERNEL_BENCH_TILE overrides DefaultTileNodes) — tile-size
// sensitivity is part of what BENCH_kernel.json records.
func kernelBenchTile() int {
	if s := os.Getenv("AFQ_KERNEL_BENCH_TILE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return DefaultTileNodes
}

// kernelBenchGraph is benchGraph plus a second "extends" edge type
// confined to the first 5% of nodes, so the delta bench can perturb a
// localized rate — the residual-frontier sweet spot.
func kernelBenchGraph(b testing.TB, n, m int) (*graph.Graph, *graph.Rates, graph.EdgeTypeID) {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	s := graph.NewSchema()
	paper := s.AddNodeType("Paper")
	cites := s.MustAddEdgeType("cites", paper, paper)
	extends := s.MustAddEdgeType("extends", paper, paper)
	gb := graph.NewBuilder(s)
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = gb.AddNode(paper)
	}
	for i := 0; i < m; i++ {
		gb.AddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)], cites)
	}
	loc := n / 20
	for i := 0; i < m/20; i++ {
		gb.AddEdge(ids[rng.Intn(loc)], ids[rng.Intn(loc)], extends)
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	r := graph.NewRates(s)
	r.Set(cites, graph.Forward, 0.6)
	r.Set(cites, graph.Backward, 0.2)
	r.Set(extends, graph.Forward, 0.1)
	r.Set(extends, graph.Backward, 0.05)
	return g, r, extends
}

func kernelBenchBase(g *graph.Graph) []float64 {
	base := make([]float64, g.NumNodes())
	for i := range base {
		base[i] = 1
	}
	NormalizeDist(base)
	return base
}

// BenchmarkKernelTiled: the single-vector sweep, untiled vs
// cache-blocked (bit-identical by construction — tiling_test pins it).
func BenchmarkKernelTiled(b *testing.B) {
	n := kernelBenchN()
	g, r, _ := kernelBenchGraph(b, n, 8*n)
	alpha := r.Vector()
	base := kernelBenchBase(g)
	o := Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 200}
	pool := NewBufferPool()
	b.Run("untiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := Iterate(g, alpha, base, o, 1, pool)
			res.ReleaseTo(pool)
		}
	})
	ot := o
	ot.Tile = NewTiling(g, kernelBenchTile())
	b.Run("tiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := Iterate(g, alpha, base, ot, 1, pool)
			res.ReleaseTo(pool)
		}
	})
}

// BenchmarkKernelTiledBlock: the 8-column panel sweep, untiled vs
// tiled. The panel multiplies the vector working set by BlockSize, so
// this is where tiling pays off first.
func BenchmarkKernelTiledBlock(b *testing.B) {
	n := kernelBenchN()
	g, r, _ := kernelBenchGraph(b, n, 8*n)
	alpha := r.Vector()
	bases := blockBases(g, 8)
	o := Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 200}
	pool := NewBufferPool()
	b.Run("untiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := IterateBlock(g, alpha, bases, []Options{o}, 1, pool)
			for j := range res {
				res[j].ReleaseTo(pool)
			}
		}
	})
	ot := o
	ot.Tile = NewTiling(g, kernelBenchTile())
	b.Run("tiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := IterateBlock(g, alpha, bases, []Options{ot}, 1, pool)
			for j := range res {
				res[j].ReleaseTo(pool)
			}
		}
	})
}

// BenchmarkKernelPanelF32: the 8-column panel in full precision vs the
// float32 panel mode (1e-6 agreement class, block32_test pins it).
func BenchmarkKernelPanelF32(b *testing.B) {
	n := kernelBenchN()
	g, r, _ := kernelBenchGraph(b, n, 8*n)
	alpha := r.Vector()
	bases := blockBases(g, 8)
	o := Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 200}
	pool := NewBufferPool()
	b.Run("f64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := IterateBlock(g, alpha, bases, []Options{o}, 1, pool)
			for j := range res {
				res[j].ReleaseTo(pool)
			}
		}
	})
	b.Run("f32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := IterateBlock32(g, alpha, bases, []Options{o}, 1, pool)
			for j := range res {
				res[j].ReleaseTo(pool)
			}
		}
	})
}

// BenchmarkKernelDelta: republish with an ε-perturbed localized rate,
// re-solved three ways — cold, full sweeps warm-started from the old
// vector, and the residual-frontier delta solve. sweeps/op counts
// full-sweep-equivalents (Iterations + Pushes/|V|).
func BenchmarkKernelDelta(b *testing.B) {
	n := kernelBenchN()
	g, r, extends := kernelBenchGraph(b, n, 8*n)
	base := kernelBenchBase(g)
	o := Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 200}
	pool := NewBufferPool()

	prev := Iterate(g, r.Vector(), base, o, 1, pool)
	if !prev.Converged {
		b.Fatal("baseline solve did not converge")
	}
	r2 := r.Clone()
	et := graph.TransferType(extends, graph.Forward)
	if err := r2.SetRate(et, r2.Rate(et)+1e-5); err != nil {
		b.Fatal(err)
	}
	alpha2 := r2.Vector()

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		sweeps := 0
		for i := 0; i < b.N; i++ {
			res := Iterate(g, alpha2, base, o, 1, pool)
			sweeps += res.Iterations
			res.ReleaseTo(pool)
		}
		b.ReportMetric(float64(sweeps)/float64(b.N), "sweeps/op")
	})
	b.Run("warmfull", func(b *testing.B) {
		b.ReportAllocs()
		ow := o
		ow.Init = prev.Scores
		sweeps := 0
		for i := 0; i < b.N; i++ {
			res := Iterate(g, alpha2, base, ow, 1, pool)
			sweeps += res.Iterations
			res.ReleaseTo(pool)
		}
		b.ReportMetric(float64(sweeps)/float64(b.N), "sweeps/op")
	})
	b.Run("delta", func(b *testing.B) {
		b.ReportAllocs()
		sweeps := 0.0
		for i := 0; i < b.N; i++ {
			res := IterateDelta(g, alpha2, base, prev.Scores, o, 0, 1, pool)
			if res.FellBack {
				b.Fatal("delta solve fell back on a localized ε-perturbation")
			}
			sweeps += float64(res.Iterations) + float64(res.Pushes)/float64(n)
			res.ReleaseTo(pool)
		}
		b.ReportMetric(sweeps/float64(b.N), "sweeps/op")
	})
}
