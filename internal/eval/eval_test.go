package eval

import (
	"math"
	"testing"
	"testing/quick"

	"authorityflow/internal/graph"
	"authorityflow/internal/rank"
)

func ranked(ids ...graph.NodeID) []rank.Ranked {
	out := make([]rank.Ranked, len(ids))
	for i, id := range ids {
		out[i] = rank.Ranked{Node: id, Score: float64(len(ids) - i)}
	}
	return out
}

func relset(ids ...graph.NodeID) map[graph.NodeID]bool {
	m := make(map[graph.NodeID]bool)
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestPrecisionAtK(t *testing.T) {
	res := ranked(1, 2, 3, 4, 5)
	rel := relset(1, 3, 9)
	if got := PrecisionAtK(res, rel, 5); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("P@5 = %v", got)
	}
	if got := PrecisionAtK(res, rel, 1); got != 1 {
		t.Errorf("P@1 = %v", got)
	}
	if got := PrecisionAtK(res, rel, 2); got != 0.5 {
		t.Errorf("P@2 = %v", got)
	}
	// k beyond result length uses the available results.
	if got := PrecisionAtK(res, rel, 100); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("P@100 = %v", got)
	}
	if got := PrecisionAtK(res, rel, 0); got != 0 {
		t.Errorf("P@0 = %v", got)
	}
	if got := PrecisionAtK(nil, rel, 5); got != 0 {
		t.Errorf("P on empty = %v", got)
	}
}

func TestAveragePrecision(t *testing.T) {
	// Relevant at positions 1 and 3: AP = (1/1 + 2/3)/2 = 5/6.
	res := ranked(1, 2, 3)
	rel := relset(1, 3)
	if got := AveragePrecision(res, rel); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("AP = %v", got)
	}
	if got := AveragePrecision(res, relset()); got != 0 {
		t.Errorf("AP with no relevant = %v", got)
	}
	if got := AveragePrecision(res, relset(99)); got != 0 {
		t.Errorf("AP with no hits = %v", got)
	}
	// Perfect ranking has AP 1.
	if got := AveragePrecision(ranked(1, 2), relset(1, 2)); got != 1 {
		t.Errorf("perfect AP = %v", got)
	}
}

func TestResidualCollection(t *testing.T) {
	r := NewResidual()
	res := ranked(1, 2, 3, 4)
	if got := r.Filter(res); len(got) != 4 {
		t.Errorf("Filter before Remove = %v", got)
	}
	r.Remove(2, 4)
	if !r.Removed(2) || r.Removed(3) {
		t.Error("Removed tracking wrong")
	}
	got := r.Filter(res)
	if len(got) != 2 || got[0].Node != 1 || got[1].Node != 3 {
		t.Errorf("Filter = %v", got)
	}
	rel := r.FilterRelevant(relset(1, 2, 3))
	if rel[2] || !rel[1] || !rel[3] {
		t.Errorf("FilterRelevant = %v", rel)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical = %v", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); math.Abs(got) > 1e-12 {
		t.Errorf("orthogonal = %v", got)
	}
	// Scale invariance — the rate-training curves rely on it since the
	// normalization rescales all rates by a common factor.
	a := []float64{0.7, 0, 0.2, 0.2, 0.3, 0.3, 0.3, 0.1}
	b := make([]float64, len(a))
	for i := range a {
		b[i] = a[i] * 0.808
	}
	if got := CosineSimilarity(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("scaled = %v", got)
	}
	if got := CosineSimilarity(a, a[:3]); got != 0 {
		t.Errorf("length mismatch = %v", got)
	}
	if got := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("zero vector = %v", got)
	}
}

func TestCosinePropertyBounds(t *testing.T) {
	prop := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		c := CosineSimilarity(a[:n], b[:n])
		return !math.IsNaN(c) && c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKendallTau(t *testing.T) {
	a := []graph.NodeID{1, 2, 3, 4}
	if got := KendallTau(a, a); got != 1 {
		t.Errorf("identical = %v", got)
	}
	rev := []graph.NodeID{4, 3, 2, 1}
	if got := KendallTau(a, rev); got != -1 {
		t.Errorf("reversed = %v", got)
	}
	if got := KendallTau(a, []graph.NodeID{9, 10}); got != 1 {
		t.Errorf("disjoint = %v", got)
	}
	// One swap in 4 elements: tau = (5-1)/6.
	if got := KendallTau(a, []graph.NodeID{2, 1, 3, 4}); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("one swap = %v", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestNDCG(t *testing.T) {
	res := ranked(1, 2, 3, 4)
	rel := relset(1, 3)
	// DCG = 1/log2(2) + 1/log2(4) = 1 + 0.5; ideal = 1/log2(2)+1/log2(3).
	want := (1 + 0.5) / (1 + 1/math.Log2(3))
	if got := NDCG(res, rel, 4); math.Abs(got-want) > 1e-12 {
		t.Errorf("NDCG = %v, want %v", got, want)
	}
	// Perfect ranking scores 1.
	if got := NDCG(ranked(1, 3, 2, 4), rel, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect NDCG = %v", got)
	}
	if got := NDCG(res, relset(), 4); got != 0 {
		t.Errorf("NDCG with no relevant = %v", got)
	}
	if got := NDCG(res, rel, 0); got != 0 {
		t.Errorf("NDCG@0 = %v", got)
	}
	if got := NDCG(nil, rel, 5); got != 0 {
		t.Errorf("NDCG of empty = %v", got)
	}
}

func TestMRR(t *testing.T) {
	res := ranked(9, 2, 3)
	if got := MRR(res, relset(3)); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("MRR = %v", got)
	}
	if got := MRR(res, relset(9)); got != 1 {
		t.Errorf("MRR first = %v", got)
	}
	if got := MRR(res, relset(77)); got != 0 {
		t.Errorf("MRR none = %v", got)
	}
}
