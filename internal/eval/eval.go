// Package eval implements the evaluation measures of the paper's user
// surveys (Section 6.1): precision at k, average precision, the
// residual-collection relevance-feedback protocol of [RL03, SB90], and
// the cosine similarity used for the authority-transfer-rate training
// curves (Figures 11 and 13).
package eval

import (
	"math"

	"authorityflow/internal/graph"
	"authorityflow/internal/rank"
)

// PrecisionAtK returns the fraction of the first k results that are
// relevant. With the output truncated to k, recall equals precision up
// to a constant, which is why the paper reports only precision.
func PrecisionAtK(results []rank.Ranked, relevant map[graph.NodeID]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(results) {
		k = len(results)
	}
	if k == 0 {
		return 0
	}
	hits := 0
	for _, r := range results[:k] {
		if relevant[r.Node] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// AveragePrecision returns the mean of the precision values at each
// relevant result's position, the standard AP measure.
func AveragePrecision(results []rank.Ranked, relevant map[graph.NodeID]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hits, sum := 0, 0.0
	for i, r := range results {
		if relevant[r.Node] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	if hits == 0 {
		return 0
	}
	return sum / float64(hits)
}

// Residual implements the residual-collection method: objects already
// seen by the user and marked relevant are removed from the collection
// before both the initial and all reformulated queries are evaluated.
type Residual struct {
	seen map[graph.NodeID]bool
}

// NewResidual returns an empty residual-collection tracker.
func NewResidual() *Residual {
	return &Residual{seen: make(map[graph.NodeID]bool)}
}

// Remove marks objects as seen-relevant, excluding them from future
// evaluations.
func (r *Residual) Remove(objs ...graph.NodeID) {
	for _, o := range objs {
		r.seen[o] = true
	}
}

// Removed reports whether an object has been removed.
func (r *Residual) Removed(o graph.NodeID) bool { return r.seen[o] }

// Filter returns results with removed objects dropped, preserving order.
func (r *Residual) Filter(results []rank.Ranked) []rank.Ranked {
	out := make([]rank.Ranked, 0, len(results))
	for _, res := range results {
		if !r.seen[res.Node] {
			out = append(out, res)
		}
	}
	return out
}

// FilterRelevant returns the relevant set with removed objects dropped.
func (r *Residual) FilterRelevant(relevant map[graph.NodeID]bool) map[graph.NodeID]bool {
	out := make(map[graph.NodeID]bool, len(relevant))
	for o := range relevant {
		if !r.seen[o] {
			out[o] = true
		}
	}
	return out
}

// CosineSimilarity returns the cosine of the angle between two vectors,
// the Figures 11/13 measure of how close the learned authority transfer
// rates (UserVector) are to the expert ground truth (ObjVector).
// Returns 0 if either vector is zero or the lengths differ.
func CosineSimilarity(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	// Scale by the largest magnitude first so extreme components cannot
	// overflow the intermediate sums.
	maxAbs := 0.0
	for i := range a {
		if v := math.Abs(a[i]); v > maxAbs {
			maxAbs = v
		}
		if v := math.Abs(b[i]); v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 || math.IsInf(maxAbs, 0) || math.IsNaN(maxAbs) {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		x, y := a[i]/maxAbs, b[i]/maxAbs
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// KendallTau returns the Kendall rank-correlation coefficient between
// two orderings of the same node set (1 = identical order, -1 =
// reversed). Nodes missing from either ranking are ignored.
func KendallTau(a, b []graph.NodeID) float64 {
	posB := make(map[graph.NodeID]int, len(b))
	for i, n := range b {
		posB[n] = i
	}
	var common []int
	for _, n := range a {
		if p, ok := posB[n]; ok {
			common = append(common, p)
		}
	}
	n := len(common)
	if n < 2 {
		return 1
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if common[i] < common[j] {
				concordant++
			} else if common[i] > common[j] {
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// NDCG returns the normalized discounted cumulative gain at k for a
// binary-relevance judgment: DCG over the first k results divided by
// the ideal DCG achievable with |relevant| items.
func NDCG(results []rank.Ranked, relevant map[graph.NodeID]bool, k int) float64 {
	if k <= 0 || len(relevant) == 0 {
		return 0
	}
	if k > len(results) {
		k = len(results)
	}
	dcg := 0.0
	for i := 0; i < k; i++ {
		if relevant[results[i].Node] {
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := 0.0
	n := len(relevant)
	if n > k {
		n = k
	}
	for i := 0; i < n; i++ {
		ideal += 1 / math.Log2(float64(i)+2)
	}
	if ideal == 0 {
		return 0
	}
	return dcg / ideal
}

// MRR returns the reciprocal rank of the first relevant result (0 if
// none appears).
func MRR(results []rank.Ranked, relevant map[graph.NodeID]bool) float64 {
	for i, r := range results {
		if relevant[r.Node] {
			return 1 / float64(i+1)
		}
	}
	return 0
}
