package precompute

import (
	"math"
	"testing"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// buildTestTerms is a vocabulary slice wide enough to exercise full
// panels AND a ragged final panel at every BlockSize under test.
var buildTestTerms = []string{
	"olap", "xml", "mining", "query", "optimization", "index",
	"search", "database", "web", "stream", "join",
}

// assertStoresByteEqual compares two stores term by term at the bit
// level: identical term sets, identical Z mass, and per-term entry
// lists equal node-for-node with math.Float64bits score equality. This
// is the store-level face of the kernel's per-column bit-identity
// contract — gob bytes are NOT compared because gob serializes maps in
// nondeterministic order.
func assertStoresByteEqual(t *testing.T, label string, want, got *Store) {
	t.Helper()
	if want.Terms() != got.Terms() {
		t.Fatalf("%s: term counts differ: %d vs %d", label, want.Terms(), got.Terms())
	}
	for term, wtd := range want.terms {
		gtd, ok := got.terms[term]
		if !ok {
			t.Fatalf("%s: term %q missing from blocked store", label, term)
		}
		if math.Float64bits(wtd.Z) != math.Float64bits(gtd.Z) {
			t.Fatalf("%s: term %q Z differs: %v vs %v", label, term, wtd.Z, gtd.Z)
		}
		if len(wtd.Entries) != len(gtd.Entries) {
			t.Fatalf("%s: term %q entry counts differ: %d vs %d",
				label, term, len(wtd.Entries), len(gtd.Entries))
		}
		for i := range wtd.Entries {
			w, g := wtd.Entries[i], gtd.Entries[i]
			if w.Node != g.Node {
				t.Fatalf("%s: term %q entry %d node differs: %d vs %d",
					label, term, i, w.Node, g.Node)
			}
			if math.Float64bits(w.Score) != math.Float64bits(g.Score) {
				t.Fatalf("%s: term %q entry %d (node %d) score bits differ: %v vs %v",
					label, term, i, w.Node, w.Score, g.Score)
			}
		}
	}
}

// TestBuildBlockedByteEqual is the acceptance check for the blocked
// precompute path: the store built through blocked panels is byte-equal
// — per term, bit-for-bit — to the serial one-term-per-solve build, for
// full panels, ragged final panels, and the concurrent-panel build.
func TestBuildBlockedByteEqual(t *testing.T) {
	eng, _ := testEngine(t)
	serial := Build(eng, buildTestTerms, BuildOptions{BlockSize: 1})

	for _, tc := range []struct {
		label string
		opts  BuildOptions
	}{
		{"block2", BuildOptions{BlockSize: 2}},
		{"block4-ragged", BuildOptions{BlockSize: 4}}, // 11 terms → 4+4+3
		{"block8-default", BuildOptions{}},            // corpus default (8) → 8+3
		{"block64-oversized", BuildOptions{BlockSize: 64}},
		{"block4-workers3", BuildOptions{BlockSize: 4, Workers: 3}},
	} {
		assertStoresByteEqual(t, tc.label, serial, Build(eng, buildTestTerms, tc.opts))
	}
}

// TestBuildBlockedTruncated: TopK truncation composes with blocking —
// truncated blocked and truncated serial stores agree bit-for-bit.
func TestBuildBlockedTruncated(t *testing.T) {
	eng, _ := testEngine(t)
	serial := Build(eng, buildTestTerms, BuildOptions{BlockSize: 1, TopK: 25})
	blocked := Build(eng, buildTestTerms, BuildOptions{BlockSize: 4, TopK: 25})
	assertStoresByteEqual(t, "topk25", serial, blocked)
}

// TestBuildBlockedSolveCount: an N-term build at BlockSize B fires the
// solve hook once per panel holding at least one indexable term, each
// firing carrying Columns = that panel's count of nonzero-base-mass
// terms — the amortization the blocked kernel exists for. Expectations
// are derived from the index itself because zero-mass terms (the
// vocabulary deliberately contains some) never occupy a column.
func TestBuildBlockedSolveCount(t *testing.T) {
	eng, _ := testEngine(t)
	const bs = 4
	// The forced GlobalRank warm start does not route through the solve
	// hook, so only panels count.
	wantSolves, wantColumns := 0, 0
	for lo := 0; lo < len(buildTestTerms); lo += bs {
		hi := lo + bs
		if hi > len(buildTestTerms) {
			hi = len(buildTestTerms)
		}
		nonzero := 0
		for _, tm := range buildTestTerms[lo:hi] {
			if len(eng.Index().BaseSet(ir.NewQuery(tm))) > 0 {
				nonzero++
			}
		}
		if nonzero > 0 {
			wantSolves++
			wantColumns += nonzero
		}
	}
	var solves, columns int
	eng.SetSolveHook(func(st core.SolveStats) {
		solves++
		columns += st.Columns
	})
	Build(eng, buildTestTerms, BuildOptions{BlockSize: bs})
	if solves != wantSolves || columns != wantColumns {
		t.Fatalf("solves = %d (want %d), columns = %d (want %d)",
			solves, wantSolves, columns, wantColumns)
	}
}

// BenchmarkPrecomputeBlocked measures the blocked build against the
// serial one-term-per-solve build on the same vocabulary, reporting
// ns/term and kernel solves (sweep amortization: the blocked build
// performs ⌈N/B⌉ kernel executions where serial performs N).
func BenchmarkPrecomputeBlocked(b *testing.B) {
	cfg := datagen.DBLPTopConfig().Scale(0.02)
	cfg.Seed = 11
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(ds.Graph, ds.Rates, core.Config{
		Rank: rank.Options{Threshold: 1e-10, MaxIters: 2000},
	})
	if err != nil {
		b.Fatal(err)
	}
	eng.GlobalRank() // exclude the one-time warm-start solve
	wantTerms := Build(eng, buildTestTerms, BuildOptions{}).Terms()
	for _, bm := range []struct {
		name string
		opts BuildOptions
	}{
		{"serial", BuildOptions{BlockSize: 1}},
		{"blocked8", BuildOptions{BlockSize: 8}},
	} {
		b.Run(bm.name, func(b *testing.B) {
			var solves, iters int
			eng.SetSolveHook(func(st core.SolveStats) {
				solves++
				iters += st.Iterations
			})
			defer eng.SetSolveHook(nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := Build(eng, buildTestTerms, bm.opts)
				if st.Terms() != wantTerms {
					b.Fatalf("built %d terms, want %d", st.Terms(), wantTerms)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(buildTestTerms)), "ns/term")
			b.ReportMetric(float64(solves)/float64(b.N), "solves/build")
			b.ReportMetric(float64(iters)/float64(solves), "sweeps/solve")
		})
	}
}
