package precompute

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

func testEngine(t testing.TB) (*core.Engine, *datagen.Dataset) {
	t.Helper()
	cfg := datagen.DBLPTopConfig().Scale(0.02)
	cfg.Seed = 11
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tight threshold so linear-combination comparisons are exact up to
	// fixpoint tolerance.
	eng, err := core.NewEngine(ds.Graph, ds.Rates, core.Config{
		Rank: rank.Options{Threshold: 1e-10, MaxIters: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, ds
}

func TestBuildAndSingleTermExact(t *testing.T) {
	eng, _ := testEngine(t)
	st := Build(eng, []string{"olap", "xml", "nonexistentzzz"}, BuildOptions{})
	if st.Terms() != 2 {
		t.Fatalf("terms = %d, want 2 (empty-base term skipped)", st.Terms())
	}
	if !st.Has("olap") || st.Has("nonexistentzzz") {
		t.Error("Has misreports")
	}
	// Single-term query answered from the store matches a fresh run.
	q := ir.NewQuery("olap")
	fresh := eng.Rank(q)
	got, complete := st.Query(q, 10)
	if !complete {
		t.Error("complete should be true")
	}
	want := fresh.TopK(10)
	if len(got) != len(want) {
		t.Fatalf("lengths: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Node != want[i].Node {
			t.Fatalf("rank %d: %d vs %d", i, got[i].Node, want[i].Node)
		}
		if math.Abs(got[i].Score-want[i].Score) > 1e-8 {
			t.Fatalf("rank %d score: %v vs %v", i, got[i].Score, want[i].Score)
		}
	}
}

// TestLinearity is the heart of [BHP04] precomputation: an untruncated
// store answers MULTI-keyword (and re-weighted) queries identically to
// a fresh ObjectRank2 execution, because the fixpoint is linear in the
// jump distribution.
func TestLinearity(t *testing.T) {
	eng, _ := testEngine(t)
	st := Build(eng, []string{"olap", "xml", "mining", "query", "optimization"}, BuildOptions{})

	queries := []*ir.Query{
		ir.NewQuery("olap", "xml"),
		ir.NewQuery("query", "optimization"),
		ir.NewQuery("olap", "mining", "xml"),
	}
	// Also a re-weighted query, as produced by content reformulation.
	wq := ir.NewQuery("olap")
	wq.Add("xml", 0.3)
	queries = append(queries, wq)

	for _, q := range queries {
		fresh := eng.Rank(q)
		got, complete := st.Query(q, 20)
		if !complete {
			t.Fatalf("%v: store incomplete", q)
		}
		want := fresh.TopK(20)
		for i := range got {
			if got[i].Node != want[i].Node {
				t.Fatalf("%v rank %d: node %d vs %d", q, i, got[i].Node, want[i].Node)
			}
			if math.Abs(got[i].Score-want[i].Score) > 1e-7 {
				t.Fatalf("%v rank %d: score %v vs %v", q, i, got[i].Score, want[i].Score)
			}
		}
	}
}

func TestTruncatedStoreApproximates(t *testing.T) {
	eng, _ := testEngine(t)
	full := Build(eng, []string{"olap", "xml"}, BuildOptions{})
	trunc := Build(eng, []string{"olap", "xml"}, BuildOptions{TopK: 50})
	if trunc.TopK() != 50 {
		t.Errorf("TopK = %d", trunc.TopK())
	}
	q := ir.NewQuery("olap", "xml")
	want, _ := full.Query(q, 10)
	got, _ := trunc.Query(q, 10)
	// Truncation at 50 must preserve most of the top-10.
	inWant := map[graph.NodeID]bool{}
	for _, r := range want {
		inWant[r.Node] = true
	}
	hits := 0
	for _, r := range got {
		if inWant[r.Node] {
			hits++
		}
	}
	if hits < 8 {
		t.Errorf("truncated store agrees on only %d/10 of the top-10", hits)
	}
}

func TestQueryUnknownTerms(t *testing.T) {
	eng, _ := testEngine(t)
	st := Build(eng, []string{"olap"}, BuildOptions{})
	// Entirely unknown query: nothing to combine.
	got, complete := st.Query(ir.NewQuery("zebra"), 5)
	if complete || got != nil {
		t.Errorf("unknown query: %v, %v", got, complete)
	}
	// Mixed query: combination proceeds but reports incompleteness.
	got, complete = st.Query(ir.NewQuery("olap", "zebra"), 5)
	if complete {
		t.Error("mixed query should be incomplete")
	}
	if len(got) == 0 {
		t.Error("mixed query should still rank the known term")
	}
	// Zero-weight terms are ignored.
	q := ir.NewQuery()
	q.SetWeight("olap", 0)
	if got, _ := st.Query(q, 5); got != nil {
		t.Errorf("zero-weight query = %v", got)
	}
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	eng, _ := testEngine(t)
	terms := []string{"olap", "xml", "mining", "query", "index", "search"}
	serial := Build(eng, terms, BuildOptions{})
	parallel := Build(eng, terms, BuildOptions{Workers: 4})
	if serial.Terms() != parallel.Terms() {
		t.Fatalf("term counts differ: %d vs %d", serial.Terms(), parallel.Terms())
	}
	q := ir.NewQuery("olap", "mining")
	a, _ := serial.Query(q, 10)
	b, _ := parallel.Query(q, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallel build diverges at rank %d", i)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	eng, _ := testEngine(t)
	st := Build(eng, []string{"olap", "xml"}, BuildOptions{TopK: 100})
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Terms() != st.Terms() || got.TopK() != st.TopK() {
		t.Fatal("metadata lost")
	}
	q := ir.NewQuery("olap", "xml")
	a, _ := st.Query(q, 10)
	b, _ := got.Query(q, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round trip diverges at rank %d", i)
		}
	}
	if !got.ValidFor(eng) {
		t.Error("loaded store should be valid for the engine it was built on")
	}

	path := filepath.Join(t.TempDir(), "store.gob")
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file should error")
	}
	if _, err := Load(strings.NewReader("garbage")); err == nil {
		t.Error("garbage should error")
	}
}

func TestValidFor(t *testing.T) {
	eng, _ := testEngine(t)
	st := Build(eng, []string{"olap"}, BuildOptions{})
	if !st.ValidFor(eng) {
		t.Fatal("store should be valid for its own engine")
	}
	// Rate change invalidates.
	r := eng.Rates()
	cites, _ := eng.Graph().Schema().EdgeTypeByRole("cites")
	r.Set(cites, graph.Forward, 0.5)
	if err := eng.SetRates(r); err != nil {
		t.Fatal(err)
	}
	if st.ValidFor(eng) {
		t.Error("store should be invalid after rate change")
	}
	// Rates accessor returns a copy.
	v := st.Rates()
	v[0] = 42
	if st.Rates()[0] == 42 {
		t.Error("Rates leaked internal storage")
	}
}

// TestFloat32BuildAgreement: a store built with the f32 panel mode
// answers queries within the mode's published 1e-6 score bound of the
// full-precision build, with identical term coverage.
func TestFloat32BuildAgreement(t *testing.T) {
	eng, _ := testEngine(t)
	terms := []string{"olap", "xml", "mining", "query", "index", "search"}
	f64 := Build(eng, terms, BuildOptions{})
	f32 := Build(eng, terms, BuildOptions{Float32: true, Workers: 4})
	if f64.Terms() != f32.Terms() {
		t.Fatalf("term counts differ: %d vs %d", f64.Terms(), f32.Terms())
	}
	for _, q := range []*ir.Query{
		ir.NewQuery("olap"), ir.NewQuery("olap", "mining"), ir.NewQuery("xml", "query", "index"),
	} {
		a, okA := f64.Query(q, 20)
		b, okB := f32.Query(q, 20)
		if okA != okB || len(a) != len(b) {
			t.Fatalf("query %v: coverage diverges (%v/%d vs %v/%d)", q, okA, len(a), okB, len(b))
		}
		for i := range a {
			if math.Abs(a[i].Score-b[i].Score) > 1e-6 {
				t.Fatalf("query %v rank %d: f32 score %.9g vs f64 %.9g", q, i, b[i].Score, a[i].Score)
			}
		}
	}
}
