package precompute

import (
	"context"
	"testing"

	"authorityflow/internal/core"
)

// TestBuildCtxCancelled: a pre-cancelled context aborts the build
// before any term solve starts — the returned partial store is empty
// and the error is the context error (serial and parallel paths).
func TestBuildCtxCancelled(t *testing.T) {
	eng, _ := testEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{0, 3} {
		st, err := BuildCtx(ctx, eng, []string{"olap", "xml", "query"}, BuildOptions{Workers: workers})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if st == nil || st.Terms() != 0 {
			t.Fatalf("workers=%d: partial store has %d terms after pre-cancelled build, want 0", workers, st.Terms())
		}
	}
}

// TestBuildCtxLiveMatchesBuild: a live context is a no-op — BuildCtx
// produces the same store as Build, term for term.
func TestBuildCtxLiveMatchesBuild(t *testing.T) {
	eng, _ := testEngine(t)
	terms := []string{"olap", "xml"}
	plain := Build(eng, terms, BuildOptions{TopK: 20})
	withCtx, err := BuildCtx(context.Background(), eng, terms, BuildOptions{TopK: 20})
	if err != nil {
		t.Fatalf("BuildCtx under live ctx: %v", err)
	}
	if plain.Terms() != withCtx.Terms() {
		t.Fatalf("term counts differ: %d vs %d", plain.Terms(), withCtx.Terms())
	}
	for _, term := range terms {
		if plain.Has(term) != withCtx.Has(term) {
			t.Fatalf("term %q presence differs", term)
		}
	}
}

// TestBuildCtxMidBuildCancel cancels after the first completed
// solve (the forced GlobalRank warm-start does not route through the
// solve hook) and asserts the serial build stops early with a partial —
// but internally consistent — store: exactly the terms completed before
// the cutoff are stored, fully converged, and the error is the context
// error. BlockSize 1 pins the cancellation granularity to one term per
// solve (the blocked build's granularity is otherwise the PANEL — see
// TestBuildCtxMidBuildCancelPanelGranularity).
func TestBuildCtxMidBuildCancel(t *testing.T) {
	eng, _ := testEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	solves := 0
	eng.SetSolveHook(func(core.SolveStats) {
		solves++
		if solves == 1 { // first per-term solve
			cancel()
		}
	})
	st, err := BuildCtx(ctx, eng, []string{"olap", "xml", "query", "database"}, BuildOptions{BlockSize: 1})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Terms() != 1 || !st.Has("olap") {
		t.Fatalf("partial store holds %d terms (olap=%t), want exactly the pre-cutoff term",
			st.Terms(), st.Has("olap"))
	}
}

// TestBuildCtxMidBuildCancelPanelGranularity: under the default
// BlockSize the unit of completion is the PANEL — cancelling after the
// first solve-hook firing (one blocked panel) leaves every term of that
// panel stored, because they all converged in the same kernel
// execution.
func TestBuildCtxMidBuildCancelPanelGranularity(t *testing.T) {
	eng, _ := testEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	solves := 0
	eng.SetSolveHook(func(st core.SolveStats) {
		solves++
		if st.Columns != 2 {
			t.Errorf("solve %d: Columns = %d, want 2", solves, st.Columns)
		}
		if solves == 1 { // first panel
			cancel()
		}
	})
	terms := []string{"olap", "xml", "query", "database"}
	st, err := BuildCtx(ctx, eng, terms, BuildOptions{BlockSize: 2})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Terms() != 2 || !st.Has("olap") || !st.Has("xml") {
		t.Fatalf("partial store holds %d terms, want exactly the first panel {olap, xml}", st.Terms())
	}
}
