// Package precompute implements the [BHP04]-style ObjectRank
// precomputation that the paper names as its remedy for slow
// exploratory search on the large corpora ("precompute ObjectRank2
// values as in [BHP04]", Section 6.2).
//
// The key property making this exact rather than heuristic: the
// ObjectRank2 fixpoint r = d·A·r + (1−d)·s is LINEAR in the jump
// distribution s, so for a multi-keyword query whose base distribution
// is a convex combination of the per-term base distributions,
//
//	s(Q) = Σ_t γ_t · ŝ_t   ⇒   r(Q) = Σ_t γ_t · r_t
//
// where r_t is the converged per-term score vector and γ_t is the
// term's share of the combined base mass. A Store therefore holds one
// converged vector per vocabulary term (optionally truncated to its
// top-K entries, as [BHP04] stores top-k lists) plus the term's raw
// base mass Z_t, and answers arbitrary weighted multi-keyword queries
// by linear combination — no power iteration at query time.
package precompute

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"authorityflow/internal/core"
	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// Entry is one node's precomputed score for a term.
type Entry struct {
	Node  int32
	Score float64
}

// termData is a term's truncated score vector and base mass.
type termData struct {
	Entries []Entry // sorted by descending score
	// Z is the term's unnormalized base mass Σ_v IRScore(v, {t}):
	// the combination coefficient numerator.
	Z float64
}

// Store holds precomputed per-term ObjectRank2 vectors.
type Store struct {
	topK    int
	n       int // graph size, for validation
	graphFP uint64
	rates   []float64
	terms   map[string]termData
}

// BuildOptions control Store construction.
type BuildOptions struct {
	// TopK truncates each term's stored vector to its K highest-scoring
	// nodes (0 = keep everything). [BHP04] stores truncated lists; the
	// combination then ranks within the union of the per-term lists.
	TopK int
	// Workers parallelizes PANEL solves (0/1 = one panel at a time).
	// Each worker owns whole panels, so up to Workers×BlockSize per-term
	// fixpoints are in flight at once.
	Workers int
	// BlockSize is the panel width handed to the blocked kernel: up to
	// BlockSize per-term fixpoints advance through one shared CSR sweep
	// per iteration (core.Engine.RankManyCtx → rank.IterateBlock), so B
	// terms cost ~1 memory sweep per iteration instead of B. 0 uses the
	// engine corpus's configured BlockSize; 1 recovers the one-term-per-
	// solve build. Per-term vectors are bit-identical at ANY width (the
	// kernel's per-column equivalence contract), so BlockSize is purely
	// a throughput knob — TestBuildBlockedByteEqual enforces this.
	BlockSize int
	// Float32 solves panels in the f32 panel mode (core.PanelF32):
	// float32 panel storage halves the sweep bandwidth while the
	// arithmetic stays float64, so per-term vectors agree with the
	// default build to within ~1e-6 instead of bit-identically. That
	// error class is inside the fixpoint tolerance the store already
	// quotes for Query, so combination answers keep their contract;
	// leave this off when stored vectors must be byte-stable across
	// builds (e.g. snapshot diffing).
	Float32 bool
}

// Build runs one single-term ObjectRank2 fixpoint per given term —
// solved in blocked panels of BlockSize terms each — and stores the
// results. The whole build is pinned to ONE rates snapshot taken at
// entry, so every per-term vector — and the recorded rate vector the
// store validates against — reflects a single consistent rate
// assignment even if SetRates lands mid-build. Terms with empty base
// sets are skipped. Build is BuildCtx under a background context; use
// BuildCtx to make a long build abortable.
func Build(eng *core.Engine, terms []string, opts BuildOptions) *Store {
	st, _ := BuildCtx(context.Background(), eng, terms, opts)
	return st
}

// BuildCtx is Build under a cancellable context: each panel's fixpoints
// run with ctx attached (so a cancellation lands within one kernel
// sweep), no new panels are started after ctx dies, and the ctx error
// is returned alongside the PARTIAL store covering the terms whose
// columns converged before the cutoff (a cancelled column publishes
// nothing). A partial store is internally consistent — every stored
// vector is fully converged under the pinned rates — but covers fewer
// terms; callers that require completeness must discard it when
// err != nil.
func BuildCtx(ctx context.Context, eng *core.Engine, terms []string, opts BuildOptions) (*Store, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pin := eng.Pin()
	c := pin.Corpus()
	st := &Store{
		topK:    opts.TopK,
		n:       c.Graph().NumNodes(),
		graphFP: c.Graph().Fingerprint(),
		rates:   pin.Rates().Vector(),
		terms:   make(map[string]termData, len(terms)),
	}
	if err := ctx.Err(); err != nil {
		return st, err
	}
	// Force the shared warm-start cache before fanning out.
	eng.GlobalRank()

	bs := opts.BlockSize
	if bs <= 0 {
		bs = eng.Corpus().BlockSize()
	}
	var panels [][]string
	for lo := 0; lo < len(terms); lo += bs {
		hi := lo + bs
		if hi > len(terms) {
			hi = len(terms)
		}
		panels = append(panels, terms[lo:hi])
	}

	workers := opts.Workers
	if workers <= 1 {
		for _, panel := range panels {
			if err := ctx.Err(); err != nil {
				return st, err
			}
			if err := buildPanel(ctx, pin, panel, opts, st, nil); err != nil {
				return st, err
			}
		}
		return st, nil
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	ch := make(chan []string)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for panel := range ch {
				// Error = ctx died mid-panel; completed columns were
				// already stored, keep draining remaining panels.
				_ = buildPanel(ctx, pin, panel, opts, st, &mu)
			}
		}()
	}
feed:
	for _, panel := range panels {
		select {
		case ch <- panel:
		case <-ctx.Done():
			break feed
		}
	}
	close(ch)
	wg.Wait()
	return st, ctx.Err()
}

// buildPanel solves one panel of terms through the blocked kernel and
// stores every column that completed. Terms with zero base mass are
// skipped without occupying a panel column. mu, when non-nil, guards
// the store map (concurrent-panel builds).
func buildPanel(ctx context.Context, pin *core.Pinned, terms []string, opts BuildOptions, st *Store, mu *sync.Mutex) error {
	eng := pin.Engine()
	topK := opts.TopK
	names := make([]string, 0, len(terms))
	zs := make([]float64, 0, len(terms))
	qs := make([]*ir.Query, 0, len(terms))
	for _, t := range terms {
		q := ir.NewQuery(t)
		// Base mass BEFORE normalization: recomputed from the index so
		// the combination coefficients are exact.
		z := 0.0
		for _, sd := range eng.Index().BaseSet(q) {
			z += sd.Score
		}
		if z == 0 {
			continue
		}
		names = append(names, t)
		zs = append(zs, z)
		qs = append(qs, q)
	}
	if len(qs) == 0 {
		return ctx.Err()
	}
	mode := core.PanelF64
	if opts.Float32 {
		mode = core.PanelF32
	}
	results, err := pin.RankManyModeCtx(ctx, qs, nil, mode)
	for i, res := range results {
		if res == nil {
			continue // column cancelled before convergence
		}
		td := termData{Entries: collectEntries(eng, res, topK), Z: zs[i]}
		if mu != nil {
			mu.Lock()
		}
		st.terms[names[i]] = td
		if mu != nil {
			mu.Unlock()
		}
	}
	return err
}

// collectEntries converts a converged RankResult into the store's
// sorted, truncated entry list and recycles the score vector.
func collectEntries(eng *core.Engine, res *core.RankResult, topK int) []Entry {
	entries := make([]Entry, 0, len(res.Scores))
	for v, s := range res.Scores {
		if s > 0 {
			entries = append(entries, Entry{Node: int32(v), Score: s})
		}
	}
	eng.Release(res)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Score != entries[j].Score {
			return entries[i].Score > entries[j].Score
		}
		return entries[i].Node < entries[j].Node
	})
	if topK > 0 && len(entries) > topK {
		entries = entries[:topK]
	}
	return entries
}

// Terms returns the number of stored terms.
func (s *Store) Terms() int { return len(s.terms) }

// Has reports whether the term has a precomputed vector.
func (s *Store) Has(term string) bool {
	_, ok := s.terms[term]
	return ok
}

// TopK returns the per-term truncation limit (0 = untruncated).
func (s *Store) TopK() int { return s.topK }

// Rates returns the rate vector the store was built under; a store is
// only valid for engines running the same rates.
func (s *Store) Rates() []float64 {
	return append([]float64(nil), s.rates...)
}

// Query answers a weighted multi-keyword query by linear combination of
// the precomputed per-term vectors, returning the top-k nodes. The
// second result reports whether EVERY positive-weight query term was
// precomputed; if false the combination covers only the known terms.
// With an untruncated store the scores equal a fresh ObjectRank2
// execution's (up to fixpoint tolerance).
//
// The combination weight of term t is γ_t ∝ qtf-saturated weight × Z_t,
// mirroring how Engine.BaseSet mixes per-term contributions before
// normalizing to a probability vector.
func (s *Store) Query(q *ir.Query, k int) ([]rank.Ranked, bool) {
	terms := q.Terms()
	weights := q.Weights()
	type part struct {
		td    termData
		gamma float64
	}
	var parts []part
	complete := true
	total := 0.0
	for i, t := range terms {
		w := weights[i]
		if w <= 0 {
			continue
		}
		td, ok := s.terms[t]
		if !ok {
			complete = false
			continue
		}
		g := qtfSat(w) * td.Z
		parts = append(parts, part{td: td, gamma: g})
		total += g
	}
	if total == 0 {
		return nil, complete
	}
	// Dense accumulator + touched list: far cheaper than a map for the
	// hot query path, and the touched list keeps the result collection
	// proportional to the union of the per-term lists.
	combined := make([]float64, s.n)
	seen := make([]bool, s.n)
	var touched []int32
	for _, p := range parts {
		c := p.gamma / total
		for _, e := range p.td.Entries {
			combined[e.Node] += c * e.Score
			if !seen[e.Node] {
				seen[e.Node] = true
				touched = append(touched, e.Node)
			}
		}
	}
	ranked := make([]rank.Ranked, 0, len(touched))
	for _, v := range touched {
		ranked = append(ranked, rank.Ranked{Node: graph.NodeID(v), Score: combined[v]})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Score != ranked[j].Score {
			return ranked[i].Score > ranked[j].Score
		}
		return ranked[i].Node < ranked[j].Node
	})
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked, complete
}

// qtfSat mirrors ir's query-side BM25 saturation with the default k3.
func qtfSat(w float64) float64 {
	const k3 = 1000
	return (k3 + 1) * w / (k3 + w)
}

// storeSnapshot is the gob wire form. GraphFP was added after the
// format shipped; gob leaves absent fields zero, so a pre-fingerprint
// file loads with GraphFP == 0 and ValidFor falls back to the original
// size-only graph check.
type storeSnapshot struct {
	Version int
	TopK    int
	N       int
	GraphFP uint64
	Rates   []float64
	Terms   map[string]termData
}

const storeVersion = 1

// Save writes the store to w.
func (s *Store) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(&storeSnapshot{
		Version: storeVersion,
		TopK:    s.topK,
		N:       s.n,
		GraphFP: s.graphFP,
		Rates:   s.rates,
		Terms:   s.terms,
	})
}

// Load reads a store from r.
func Load(r io.Reader) (*Store, error) {
	var snap storeSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("precompute: decode: %w", err)
	}
	if snap.Version != storeVersion {
		return nil, fmt.Errorf("precompute: snapshot version %d, want %d", snap.Version, storeVersion)
	}
	return &Store{topK: snap.TopK, n: snap.N, graphFP: snap.GraphFP, rates: snap.Rates, terms: snap.Terms}, nil
}

// SaveFile writes the store to path.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := s.Save(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a store from path.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}

// ValidFor reports whether the store was built over the engine's
// CURRENT corpus generation under its current rate vector. The graph
// comparison uses graph.Fingerprint — a content digest, so a corpus
// swap to a different graph invalidates the store even when node counts
// coincide; stores saved before fingerprints existed (GraphFP 0 on
// load) fall back to the original size-only check. The rates comparison
// is graph.SameRateVector — the same predicate the serving cache's key
// derivation (graph.RateVectorKey) hashes — so "store rates match live
// rates" and "cache entry matches live rates" cannot drift apart.
//
// Callers revalidating around swaps should pin first and compare
// against the pinned corpus; at engine level the check is simply
// re-run per generation.
func (s *Store) ValidFor(eng *core.Engine) bool {
	g := eng.Graph()
	if g.NumNodes() != s.n {
		return false
	}
	if s.graphFP != 0 && g.Fingerprint() != s.graphFP {
		return false
	}
	return graph.SameRateVector(eng.Rates().Vector(), s.rates)
}

// GraphFingerprint returns the content digest of the graph the store
// was built over (0 for stores saved before fingerprints existed).
func (s *Store) GraphFingerprint() uint64 { return s.graphFP }

// RatesKey returns the graph.RateVectorKey fingerprint of the rates the
// store was built under — directly comparable with the serving cache's
// key component for the same rate assignment.
func (s *Store) RatesKey() uint64 { return graph.RateVectorKey(s.rates) }
