package cache

import (
	"context"
	"math"
	"testing"

	"authorityflow/internal/core"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

var modeTestOpts = rank.Options{Damping: 0.85, Threshold: 1e-10, MaxIters: 500}

// TestModeKeysDisjoint: the three modes' answers for one query live
// under distinct keys and never alias each other's cache entries.
func TestModeKeysDisjoint(t *testing.T) {
	sk := stateKey{gen: 1, rk: 0xabc}
	q := ir.NewQuery("olap")
	keys := map[string]core.Mode{}
	for _, m := range []core.Mode{core.ModeAuthority, core.ModeHub, core.ModeCombined} {
		k := resultKeyMode(sk, m, 10, q)
		if prev, dup := keys[k]; dup {
			t.Fatalf("modes %s and %s share result key %q", prev, m, k)
		}
		keys[k] = m
	}
	if resultKeyMode(sk, core.ModeAuthority, 10, q) != resultKey(sk, 10, q) {
		t.Error("authority result keys must keep their pre-mode spelling")
	}
	if termKeyMode(sk, core.ModeAuthority, "olap") == termKeyMode(sk, core.ModeHub, "olap") {
		t.Error("authority and hub term vectors share a key")
	}
}

// TestQueryModeCachedBitIdentical: for every mode, a cache hit serves
// exactly the bytes the original miss computed, and the hub answer
// matches the engine's own hub solve bit for bit.
func TestQueryModeCachedBitIdentical(t *testing.T) {
	_, eng := testEngine(t, modeTestOpts)
	c := New(eng, Options{})
	defer c.Close()
	pin := eng.Pin()
	ctx := context.Background()
	q := func() *ir.Query { return ir.NewQuery("mining") }

	for _, m := range []core.Mode{core.ModeAuthority, core.ModeHub, core.ModeCombined} {
		miss, err := c.QueryModePinnedCtx(ctx, pin, q(), 10, m)
		if err != nil {
			t.Fatal(err)
		}
		hit, err := c.QueryModePinnedCtx(ctx, pin, q(), 10, m)
		if err != nil {
			t.Fatal(err)
		}
		if hit.Source != SourceResult {
			t.Errorf("%s: second query source = %q, want %q", m, hit.Source, SourceResult)
		}
		if len(hit.Results) != len(miss.Results) {
			t.Fatalf("%s: hit/miss result lengths differ", m)
		}
		for i := range hit.Results {
			if hit.Results[i].Node != miss.Results[i].Node ||
				math.Float64bits(hit.Results[i].Score) != math.Float64bits(miss.Results[i].Score) {
				t.Fatalf("%s: cached answer drifted at rank %d", m, i)
			}
		}
	}

	// The cached hub answer equals a direct hub solve.
	ref, err := pin.RankHubCtx(ctx, q())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Release(ref)
	top := ref.TopK(10)
	hub, err := c.QueryModePinnedCtx(ctx, pin, q(), 10, core.ModeHub)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range top {
		if hub.Results[i].Node != r.Node || math.Float64bits(hub.Results[i].Score) != math.Float64bits(r.Score) {
			t.Fatalf("cached hub rank %d differs from direct hub solve", i)
		}
	}
}

// TestCombinedAssembledFromDirectionVectors: a combined single-term
// query whose two direction vectors are already resident must not run
// any new kernel work, and must equal core's dual-solve combine.
func TestCombinedAssembledFromDirectionVectors(t *testing.T) {
	_, eng := testEngine(t, modeTestOpts)
	c := New(eng, Options{})
	defer c.Close()
	pin := eng.Pin()
	ctx := context.Background()

	if _, err := c.QueryModePinnedCtx(ctx, pin, ir.NewQuery("mining"), 10, core.ModeAuthority); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryModePinnedCtx(ctx, pin, ir.NewQuery("mining"), 10, core.ModeHub); err != nil {
		t.Fatal(err)
	}
	before := c.stats.computes.Load()
	comb, err := c.QueryModePinnedCtx(ctx, pin, ir.NewQuery("mining"), 10, core.ModeCombined)
	if err != nil {
		t.Fatal(err)
	}
	if after := c.stats.computes.Load(); after != before {
		t.Errorf("combined assembly ran %d kernel solves, want 0", after-before)
	}
	if comb.Source != SourceTerm {
		t.Errorf("combined-from-vectors source = %q, want %q", comb.Source, SourceTerm)
	}

	ref, err := pin.RankCombinedCtx(ctx, ir.NewQuery("mining"))
	if err != nil {
		t.Fatal(err)
	}
	top := ref.TopK(10)
	for i, r := range top {
		if comb.Results[i].Node != r.Node || math.Float64bits(comb.Results[i].Score) != math.Float64bits(r.Score) {
			t.Fatalf("assembled combined rank %d differs from RankCombinedCtx", i)
		}
	}
}

// TestBatchModesScatter: a mixed-mode batch answers every item at its
// original index with the same answer the single-query path gives.
func TestBatchModesScatter(t *testing.T) {
	_, eng := testEngine(t, modeTestOpts)
	c := New(eng, Options{})
	defer c.Close()
	pin := eng.Pin()
	ctx := context.Background()

	qs := []*ir.Query{ir.NewQuery("mining"), ir.NewQuery("mining"), ir.NewQuery("olap"), ir.NewQuery("mining")}
	ks := []int{5, 5, 5, 5}
	modes := []core.Mode{core.ModeAuthority, core.ModeHub, core.ModeHub, core.ModeCombined}
	answers, err := c.QueryBatchModePinnedCtx(ctx, pin, qs, ks, modes)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range modes {
		if answers[i] == nil {
			t.Fatalf("item %d: nil answer", i)
		}
		want, err := c.QueryModePinnedCtx(ctx, pin, qs[i], ks[i], m)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.Results {
			if answers[i].Results[j].Node != want.Results[j].Node ||
				math.Float64bits(answers[i].Results[j].Score) != math.Float64bits(want.Results[j].Score) {
				t.Fatalf("item %d (%s): batch answer differs from single-query answer", i, m)
			}
		}
	}
}

// TestPrewarmHub: with PrewarmHub set, Prewarm fills BOTH directions'
// vectors so a first mode=hub query is served without a solve.
func TestPrewarmHub(t *testing.T) {
	_, eng := testEngine(t, modeTestOpts)
	c := New(eng, Options{PrewarmHub: true})
	defer c.Close()

	c.Prewarm([]string{"mining"})
	pin := eng.Pin()
	sk := c.stateKeyFor(pin)
	if _, ok := c.vectors.Get(termKey(sk, "mining")); !ok {
		t.Fatal("authority vector not prewarmed")
	}
	if _, ok := c.vectors.Get(hubTermKey(sk, "mining")); !ok {
		t.Fatal("hub vector not prewarmed")
	}
	before := c.stats.computes.Load()
	a, err := c.QueryModePinnedCtx(context.Background(), pin, ir.NewQuery("mining"), 5, core.ModeHub)
	if err != nil {
		t.Fatal(err)
	}
	if after := c.stats.computes.Load(); after != before {
		t.Errorf("prewarmed hub query still ran %d solves", after-before)
	}
	if a.Source != SourceTerm {
		t.Errorf("prewarmed hub query source = %q, want %q", a.Source, SourceTerm)
	}
}
