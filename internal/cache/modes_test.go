package cache

import (
	"context"
	"math"
	"testing"

	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// TestPrewarmDeltaSolve: with DeltaEps set and an ε-close republish,
// the prewarmer refreshes a donated term through the incremental delta
// kernel (deltaSolves counter) and the refreshed vector stays inside
// the delta solve's tolerance class of a from-scratch solve.
func TestPrewarmDeltaSolve(t *testing.T) {
	thr := 1e-9
	ds, eng := testEngine(t, rank.Options{Damping: 0.85, Threshold: thr, MaxIters: 500})
	c := New(eng, Options{DeltaEps: 1e-4})
	defer c.Close()

	ctx := context.Background()
	// Cache "olap" under v1; this also records v1's alpha vector in the
	// versionKeys memo, which delta eligibility compares against.
	if _, err := c.QueryCtx(ctx, ir.NewQuery("olap"), 5); err != nil {
		t.Fatal(err)
	}

	// ε-republish: shrink one rate by 1e-6, an L1 rate distance well
	// under DeltaEps (outgoing sums only shrink, so Validate is happy).
	p := ds.Rates.Clone()
	v := p.Vector()
	for i, x := range v {
		if x > 0 {
			v[i] = x - 1e-6
			break
		}
	}
	if err := p.SetVector(v); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetRates(p); err != nil {
		t.Fatal(err)
	}

	c.Prewarm([]string{"olap"})
	if n := c.Stats().DeltaSolves; n != 1 {
		t.Fatalf("deltaSolves = %d, want 1 (stats %+v)", n, c.Stats())
	}

	pin := eng.Pin()
	got, ok := c.vectors.Get(termKey(c.stateKeyFor(pin), "olap"))
	if !ok {
		t.Fatal("prewarm did not cache the refreshed vector")
	}
	tv := got.(*termVector)
	if !tv.warmStarted {
		t.Error("delta-refreshed vector not marked warm-started")
	}
	ref, err := pin.RankCtx(ctx, ir.NewQuery("olap"))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Release(ref)
	l1 := 0.0
	for i := range ref.Scores {
		l1 += math.Abs(tv.vec[i] - ref.Scores[i])
	}
	if bound := 2 * thr / (1 - 0.85); l1 > bound {
		t.Fatalf("delta-refreshed vector L1-distance %.3g exceeds bound %.3g", l1, bound)
	}
}

// TestPrewarmDeltaEpsIneligible: a republish whose rate movement
// exceeds DeltaEps must take the ordinary panel path — no delta solves.
func TestPrewarmDeltaEpsIneligible(t *testing.T) {
	ds, eng := testEngine(t, rank.Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 500})
	c := New(eng, Options{DeltaEps: 1e-8})
	defer c.Close()

	ctx := context.Background()
	if _, err := c.QueryCtx(ctx, ir.NewQuery("olap"), 5); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetRates(perturb(t, ds.Rates)); err != nil {
		t.Fatal(err)
	}
	c.Prewarm([]string{"olap"})
	if n := c.Stats().DeltaSolves; n != 0 {
		t.Fatalf("deltaSolves = %d for an over-ε republish, want 0", n)
	}
	if _, ok := c.vectors.Get(termKey(c.stateKeyFor(eng.Pin()), "olap")); !ok {
		t.Fatal("panel path did not cache the refreshed vector")
	}
}

// TestPrewarmFloat32: with PrewarmFloat32 on, a cold prewarm runs the
// f32 panel and the cached vector agrees with a full-precision solve
// to within the mode's published 1e-6 bound.
func TestPrewarmFloat32(t *testing.T) {
	_, eng := testEngine(t, rank.Options{Damping: 0.85, Threshold: 1e-9, MaxIters: 500})
	c := New(eng, Options{PrewarmFloat32: true})
	defer c.Close()

	c.Prewarm([]string{"olap"})
	pin := eng.Pin()
	got, ok := c.vectors.Get(termKey(c.stateKeyFor(pin), "olap"))
	if !ok {
		t.Fatal("prewarm did not cache the vector")
	}
	tv := got.(*termVector)
	ref, err := pin.RankCtx(context.Background(), ir.NewQuery("olap"))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Release(ref)
	for i := range ref.Scores {
		if d := math.Abs(tv.vec[i] - ref.Scores[i]); d > 1e-6 {
			t.Fatalf("node %d: f32-prewarmed vector deviates by %.3g > 1e-6", i, d)
		}
	}
}
