package cache

import (
	"context"
	"math"

	"authorityflow/internal/core"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// This file is the cache's ranking-mode surface. Authority-mode entries
// keep their pre-mode key spellings; hub-direction vectors live in the
// SAME byte-budgeted LRUs under "h"-prefixed keys (hubTermKey), and
// combined answers are assembled from the two directions' vectors so a
// combined query never solves anything the per-direction paths would
// not have cached anyway.

// QueryModePinnedCtx answers q with the top k nodes under pin in the
// given ranking mode — the mode-dispatching twin of QueryPinnedCtx and
// the entry point the /v1/query surface funnels every read through.
// Authority and hub run the direction-parameterized cached path
// (result cache, then term-vector cache, then solve); combined is
// assembled from both directions' vectors. Cache-hit answers in every
// mode are bit-identical to the answer computed on the original miss.
func (c *CachedEngine) QueryModePinnedCtx(ctx context.Context, pin *core.Pinned, q *ir.Query, k int, m core.Mode) (*Answer, error) {
	switch m {
	case core.ModeAuthority, "":
		return c.queryAt(ctx, pin, q, k, nil, core.ModeAuthority)
	case core.ModeHub:
		return c.queryAt(ctx, pin, q, k, nil, core.ModeHub)
	}
	return c.queryCombinedAt(ctx, pin, q, k)
}

// queryCombinedAt serves a combined-mode answer: result cache first,
// then — for single-keyword queries — the geometric-mean merge of the
// two directions' cached (or freshly solved) term vectors, and for
// multi-keyword queries a dual solve through core's RankCombinedCtx.
// Merging cached vectors is bit-identical to RankCombinedCtx because
// each cached vector is a bit-copy of the corresponding direction's
// solve and the merge is the same elementwise sqrt.
func (c *CachedEngine) queryCombinedAt(ctx context.Context, pin *core.Pinned, q *ir.Query, k int) (*Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		k = 10
	}
	c.recordHot(q)
	sk := c.stateKeyFor(pin)
	key := resultKeyMode(sk, core.ModeCombined, k, q)
	if e, ok := c.results.Get(key); ok {
		c.stats.resultHits.Add(1)
		return c.answerFrom(e.(*cachedResult), q, SourceResult), nil
	}
	c.stats.resultMisses.Add(1)

	if term, ok := singleTerm(q); ok {
		atv, ahit, err := c.termVectorFor(ctx, pin, sk, core.ModeAuthority, term)
		if err != nil {
			return nil, err
		}
		htv, hhit, err := c.termVectorFor(ctx, pin, sk, core.ModeHub, term)
		if err != nil {
			return nil, err
		}
		n := len(atv.vec)
		if len(htv.vec) < n {
			n = len(htv.vec)
		}
		comb := make([]float64, n)
		for i := 0; i < n; i++ {
			comb[i] = math.Sqrt(atv.vec[i] * htv.vec[i])
		}
		ranked := rank.TopK(comb, k)
		items := make([]ResultItem, len(ranked))
		ix := pin.Corpus().Index()
		for i, r := range ranked {
			items[i] = ResultItem{
				Node:   r.Node,
				Score:  r.Score,
				InBase: ix.TF(int32(r.Node), term) > 0,
			}
		}
		cr := &cachedResult{
			items:   items,
			iters:   atv.iters + htv.iters,
			baseN:   atv.baseN,
			version: pin.Version(),
			gen:     pin.Generation(),
		}
		c.results.Put(key, cr, resultEntrySize(key, len(items)))
		src := SourceComputed
		if ahit && hhit {
			src = SourceTerm
		}
		return c.answerFrom(cr, q, src), nil
	}

	// Multi-keyword combined: dual solve behind the flight group, as in
	// queryAt's multi-keyword arm.
	for {
		val, shared, err := c.flights.DoCtx(ctx, key, func(dctx context.Context) (any, error) {
			if e, ok := c.results.Get(key); ok {
				return e.(*cachedResult), nil
			}
			res, rerr := pin.RankCombinedCtx(dctx, q)
			if rerr != nil {
				return nil, rerr
			}
			c.stats.computes.Add(1)
			cr := resultFrom(res, k)
			c.eng.Release(res)
			c.results.Put(key, cr, resultEntrySize(key, len(cr.items)))
			return cr, nil
		})
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			continue // joined a draining flight; retry fresh (see queryAt)
		}
		if shared {
			c.stats.dedup.Add(1)
		}
		return c.answerFrom(val.(*cachedResult), q, SourceComputed), nil
	}
}

// RankModePinnedCtx is RankPinnedCtx's mode-dispatching twin: a full
// score vector under pin in the given mode, serving single-keyword
// authority and hub queries from their term-vector caches. The explain
// and audit paths use it — they need whole vectors, not top-k lists.
// (Combined vectors rank but do not explain; the server rejects
// explain/audit on combined before ranking, so the combined arm here
// exists only for symmetry.)
func (c *CachedEngine) RankModePinnedCtx(ctx context.Context, pin *core.Pinned, q *ir.Query, m core.Mode) (*core.RankResult, error) {
	switch m {
	case core.ModeAuthority, "":
		return c.RankPinnedCtx(ctx, pin, q)
	case core.ModeCombined:
		return pin.RankCombinedCtx(ctx, q)
	}
	if term, ok := singleTerm(q); ok {
		c.recordHot(q)
		sk := c.stateKeyFor(pin)
		tv, _, err := c.termVectorFor(ctx, pin, sk, core.ModeHub, term)
		if err != nil {
			return nil, err
		}
		scores := make([]float64, len(tv.vec))
		copy(scores, tv.vec)
		return &core.RankResult{
			Query:        q,
			Scores:       scores,
			Base:         pin.BaseSet(q),
			Iterations:   tv.iters,
			Converged:    tv.converged,
			RatesVersion: pin.Version(),
			Generation:   pin.Generation(),
		}, nil
	}
	return pin.RankHubCtx(ctx, q)
}

// QueryBatchModePinnedCtx is QueryBatchPinnedCtx with a per-item mode
// (modes may be nil — all authority — or must match len(qs)). Items are
// partitioned by direction: the authority and hub subsets each run one
// blocked kernel panel (in-subset dedup included), and combined items —
// which need both directions — are answered individually. Answers land
// at their original indices; on cancellation the slice is partial and
// the first context error is returned, matching the single-mode batch.
func (c *CachedEngine) QueryBatchModePinnedCtx(ctx context.Context, pin *core.Pinned, qs []*ir.Query, ks []int, modes []core.Mode) ([]*Answer, error) {
	if modes == nil {
		return c.queryBatchDir(ctx, pin, qs, ks, core.ModeAuthority)
	}
	if len(modes) != len(qs) {
		panic("cache: QueryBatchModePinnedCtx modes/queries length mismatch")
	}
	var authIdx, hubIdx, combIdx []int
	for i, m := range modes {
		switch m {
		case core.ModeHub:
			hubIdx = append(hubIdx, i)
		case core.ModeCombined:
			combIdx = append(combIdx, i)
		default:
			authIdx = append(authIdx, i)
		}
	}
	if len(hubIdx) == 0 && len(combIdx) == 0 {
		return c.queryBatchDir(ctx, pin, qs, ks, core.ModeAuthority)
	}

	answers := make([]*Answer, len(qs))
	var firstErr error
	runDir := func(idx []int, m core.Mode) {
		if len(idx) == 0 {
			return
		}
		subQ := make([]*ir.Query, len(idx))
		subK := make([]int, len(idx))
		for j, i := range idx {
			subQ[j] = qs[i]
			subK[j] = ks[i]
		}
		sub, err := c.queryBatchDir(ctx, pin, subQ, subK, m)
		for j, i := range idx {
			answers[i] = sub[j]
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	runDir(authIdx, core.ModeAuthority)
	runDir(hubIdx, core.ModeHub)
	for _, i := range combIdx {
		if firstErr != nil && ctx.Err() != nil {
			break // deadline already blown; leave the rest nil
		}
		a, err := c.queryCombinedAt(ctx, pin, qs[i], ks[i])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		answers[i] = a
	}
	return answers, firstErr
}

// prewarmHubTerms is the hub half of a prewarm pass: one blocked
// reversed-direction panel over the terms still missing a hub vector
// under the current rates, with previous-version hub vectors donated as
// warm starts. No delta or f32 shortcuts — hub refreshes always run the
// full-precision panel (see Options.PrewarmHub).
func (c *CachedEngine) prewarmHubTerms(ctx context.Context, pin *core.Pinned, sk stateKey, v uint64, terms []string) {
	type missCol struct {
		term string
		key  string
		warm bool
	}
	var misses []missCol
	var qs []*ir.Query
	var inits [][]float64
	for _, t := range terms {
		key := hubTermKey(sk, t)
		if _, ok := c.vectors.Get(key); ok {
			c.stats.vectorHits.Add(1)
			c.stats.prewarmed.Add(1)
			continue
		}
		c.stats.vectorMisses.Add(1)
		var init []float64
		warm := false
		if prevKey, ok := c.previousTermKey(v, sk, core.ModeHub, t); ok {
			if old, ok2 := c.vectors.Remove(prevKey); ok2 {
				init = old.(*termVector).vec
				warm = true
			}
		}
		misses = append(misses, missCol{term: t, key: key, warm: warm})
		qs = append(qs, ir.NewQuery(t))
		inits = append(inits, init)
	}
	if len(qs) == 0 {
		return
	}
	results, _ := pin.RankManyHubFromCtx(ctx, qs, inits)
	for i, res := range results {
		if res == nil {
			continue
		}
		mc := misses[i]
		c.stats.computes.Add(1)
		if mc.warm {
			c.stats.warmStarts.Add(1)
		}
		vec := make([]float64, len(res.Scores))
		copy(vec, res.Scores)
		tv := &termVector{
			vec:         vec,
			iters:       res.Iterations,
			baseN:       len(res.Base),
			converged:   res.Converged,
			warmStarted: mc.warm,
		}
		c.eng.Release(res)
		c.vectors.Put(mc.key, tv, termEntrySize(mc.key, len(vec)))
		c.stats.prewarmed.Add(1)
	}
}
