package cache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// secondCorpus generates a differently-sized dataset and wraps it in a
// corpus with the given rank options, for swapping into a test engine.
func secondCorpus(t testing.TB, opts rank.Options) (*core.Corpus, *graph.Rates) {
	t.Helper()
	cfg := datagen.DBLPTopConfig().Scale(0.015)
	cfg.Seed = 9
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewCorpus(ds.Graph, core.Config{Rank: opts}), ds.Rates
}

// TestSwapInvalidatesCache is the cross-generation isolation test: a
// cached answer must never be served for a different corpus generation,
// even when the published rate vector is numerically identical before
// and after the swap (the scenario a rates-only cache key would get
// wrong).
func TestSwapInvalidatesCache(t *testing.T) {
	opts := rank.Options{Threshold: 1e-8, MaxIters: 300}
	_, eng := testEngine(t, opts)
	c := New(eng, Options{})
	defer c.Close()
	q := ir.NewQuery("mining")

	a1 := c.Query(q, 10)
	if a1.Source != SourceComputed {
		t.Fatalf("first answer source = %q, want computed", a1.Source)
	}
	if a1.Generation != eng.Generation() {
		t.Fatalf("answer generation = %d, engine at %d", a1.Generation, eng.Generation())
	}
	a2 := c.Query(q, 10)
	if a2.Source != SourceResult {
		t.Fatalf("repeat answer source = %q, want result-cache hit", a2.Source)
	}

	c2, r2 := secondCorpus(t, opts)
	gen1, err := eng.SwapCorpus(c2, r2, eng.Generation())
	if err != nil {
		t.Fatal(err)
	}

	a3 := c.Query(q, 10)
	if a3.Generation != gen1 {
		t.Fatalf("post-swap answer generation = %d, want %d", a3.Generation, gen1)
	}
	if a3.Source != SourceComputed {
		t.Fatalf("post-swap answer source = %q — a cached answer crossed the swap", a3.Source)
	}
	n2 := c2.Graph().NumNodes()
	for _, it := range a3.Results {
		if int(it.Node) >= n2 {
			t.Fatalf("post-swap result node %d out of range for %d-node graph", it.Node, n2)
		}
	}

	// The old generation's pin still answers from the old corpus (its
	// entries are unreachable for new pins but valid for old ones).
	// A fresh query through the engine default path uses the new state.
	if g := c.Query(q, 10).Generation; g != gen1 {
		t.Fatalf("steady-state generation = %d, want %d", g, gen1)
	}
}

// TestSwapWarmStartStaysWithinGeneration checks the donation path:
// after a swap, the previous-version term vector (sized for the old
// graph) must NOT be donated as a warm start for the new generation.
func TestSwapWarmStartStaysWithinGeneration(t *testing.T) {
	opts := rank.Options{Threshold: 1e-8, MaxIters: 300}
	_, eng := testEngine(t, opts)
	c := New(eng, Options{})
	defer c.Close()
	q := ir.NewQuery("mining")

	c.Query(q, 10) // populate generation 1's term vector

	c2, r2 := secondCorpus(t, opts)
	if _, err := eng.SwapCorpus(c2, r2, eng.Generation()); err != nil {
		t.Fatal(err)
	}
	pin := eng.Pin()
	sk := c.stateKeyFor(pin)
	if _, ok := c.previousTermKey(pin.Version(), sk, core.ModeAuthority, "mining"); ok {
		t.Fatal("previousTermKey offered a cross-generation donation")
	}
	// And the solve itself stays sized for the new graph.
	a := c.Query(q, 10)
	if a.Generation != pin.Generation() {
		t.Fatalf("answer generation = %d, want %d", a.Generation, pin.Generation())
	}
}

// TestSwapCacheHammer races cached queries against corpus swaps with
// -race: every answer must carry the generation of the pin that
// produced it, and every result node must be in range for that
// generation's graph.
func TestSwapCacheHammer(t *testing.T) {
	opts := rank.Options{Threshold: 1e-6, MaxIters: 200}
	_, eng := testEngine(t, opts)
	c := New(eng, Options{})
	defer c.Close()
	cA, rA := eng.Corpus(), eng.Rates()
	cB, rB := secondCorpus(t, opts)

	// Node count per generation, recorded by the single swapper.
	var nodesOf sync.Map
	nodesOf.Store(eng.Generation(), eng.Graph().NumNodes())

	queries := []*ir.Query{
		ir.NewQuery("mining"), ir.NewQuery("database"), ir.NewQuery("xml"),
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pin := eng.Pin()
				a, err := c.QueryPinnedCtx(ctx, pin, queries[(w+i)%len(queries)], 10)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if a.Generation != pin.Generation() {
					t.Errorf("answer generation %d != pinned %d", a.Generation, pin.Generation())
					return
				}
				want, ok := nodesOf.Load(a.Generation)
				if !ok {
					t.Errorf("answer carries unpublished generation %d", a.Generation)
					return
				}
				for _, it := range a.Results {
					if int(it.Node) >= want.(int) {
						t.Errorf("generation %d answer holds node %d, graph has %d nodes",
							a.Generation, it.Node, want)
						return
					}
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		useB := true
		for i := 0; i < 100; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cc, rr := cA, rA
			if useB {
				cc, rr = cB, rB
			}
			gen, err := eng.SwapCorpus(cc, rr, eng.Generation())
			if err == nil {
				nodesOf.Store(gen, cc.Graph().NumNodes())
				useB = !useB
			} else if !errors.Is(err, core.ErrGenerationConflict) {
				t.Errorf("swap: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
