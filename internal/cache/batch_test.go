package cache

import (
	"context"
	"math"
	"sync"
	"testing"

	"authorityflow/internal/core"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// assertAnswersBitEqual compares two answers item-for-item at the bit
// level (nodes, Float64bits scores, InBase flags) plus the metadata a
// batch answer must reproduce.
func assertAnswersBitEqual(t *testing.T, label string, want, got *Answer) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil answer (want %v, got %v)", label, want != nil, got != nil)
	}
	if len(want.Results) != len(got.Results) {
		t.Fatalf("%s: result lengths differ: %d vs %d", label, len(want.Results), len(got.Results))
	}
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		if w.Node != g.Node || w.InBase != g.InBase ||
			math.Float64bits(w.Score) != math.Float64bits(g.Score) {
			t.Fatalf("%s: item %d differs: %+v vs %+v", label, i, w, g)
		}
	}
	if want.Iterations != got.Iterations || want.BaseSet != got.BaseSet || want.Version != got.Version {
		t.Fatalf("%s: metadata differs: {%d %d %d} vs {%d %d %d}", label,
			want.Iterations, want.BaseSet, want.Version,
			got.Iterations, got.BaseSet, got.Version)
	}
}

// TestQueryBatchMatchesSingle: a cold batch over a mixed panel of
// single- and multi-keyword queries returns, per query, the same answer
// the single-query path produces — bit-for-bit — and fills both caches
// so a repeat batch is served entirely from the result cache.
func TestQueryBatchMatchesSingle(t *testing.T) {
	_, eng := testEngine(t, rank.Options{})
	// Two independent caches over one engine: 'single' establishes the
	// reference answers, 'batch' answers the same queries in one call.
	single := New(eng, Options{})
	defer single.Close()
	batch := New(eng, Options{})
	defer batch.Close()

	qs := []*ir.Query{
		ir.NewQuery("olap"),
		ir.NewQuery("xml", "mining"),
		ir.NewQuery("olap"), // duplicate: must dedupe onto one column
		ir.NewQuery("query"),
		ir.NewQuery("nonexistentzzz"), // empty base set
		ir.NewQuery("xml", "mining"),  // duplicate multi-term
	}
	ks := []int{10, 10, 5, 10, 10, 10}

	want := make([]*Answer, len(qs))
	for i, q := range qs {
		want[i] = single.Query(q, ks[i])
	}

	pin := eng.Pin()
	got, err := batch.QueryBatchPinnedCtx(context.Background(), pin, qs, ks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		assertAnswersBitEqual(t, qs[i].Terms()[0], want[i], got[i])
		if got[i].Source != SourceComputed {
			t.Errorf("query %d: source %q, want computed", i, got[i].Source)
		}
	}

	// Dedup accounting: queries 2 and 5 joined existing columns.
	if d := batch.Stats().SingleflightDedup; d != 2 {
		t.Errorf("in-batch dedup = %d, want 2", d)
	}

	// Repeat batch: everything from the result cache, same bits.
	got2, err := batch.QueryBatchPinnedCtx(context.Background(), pin, qs, ks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		assertAnswersBitEqual(t, "repeat", got[i], got2[i])
		if got2[i].Source != SourceResult {
			t.Errorf("repeat query %d: source %q, want result", i, got2[i].Source)
		}
	}

	// Single-term answers must now also be servable from the term-vector
	// cache: same term, different k misses the result cache but hits the
	// vector cache.
	a := batch.QueryPinned(pin, ir.NewQuery("olap"), 7)
	if a.Source != SourceTerm {
		t.Errorf("k=7 olap after batch: source %q, want term", a.Source)
	}
}

// TestQueryBatchSolveCount: a cold batch of N unique queries runs
// ⌈N/BlockSize⌉ kernel executions — the acceptance metric behind
// afq_kernel_solves_total — with Columns summing to the unique-query
// count.
func TestQueryBatchSolveCount(t *testing.T) {
	_, eng := testEngine(t, rank.Options{})
	c := New(eng, Options{})
	defer c.Close()
	eng.GlobalRank() // take the warm-start solve out of the picture

	var solves, columns int
	eng.SetSolveHook(func(st core.SolveStats) {
		solves++
		columns += st.Columns
	})
	defer eng.SetSolveHook(nil)

	unique := []string{"olap", "xml", "mining", "query", "index", "search", "web", "join"}
	terms := append(append([]string(nil), unique...), unique...) // 16 queries, 8 unique
	qs := make([]*ir.Query, len(terms))
	ks := make([]int, len(terms))
	for i, tm := range terms {
		qs[i] = ir.NewQuery(tm)
		ks[i] = 10
	}
	// Expected panel accounting, derived from the index: unique misses
	// become columns in batch order, panelled at BlockSize; empty-base
	// queries short-circuit inside the panel without a kernel column.
	bs := eng.Corpus().BlockSize()
	wantSolves, wantColumns := 0, 0
	for lo := 0; lo < len(unique); lo += bs {
		hi := lo + bs
		if hi > len(unique) {
			hi = len(unique)
		}
		nz := 0
		for _, tm := range unique[lo:hi] {
			if len(eng.Index().BaseSet(ir.NewQuery(tm))) > 0 {
				nz++
			}
		}
		if nz > 0 {
			wantSolves++
			wantColumns += nz
		}
	}
	if _, err := c.QueryBatchPinnedCtx(context.Background(), eng.Pin(), qs, ks); err != nil {
		t.Fatal(err)
	}
	if solves != wantSolves || columns != wantColumns {
		t.Fatalf("solves = %d (want %d), columns = %d (want %d; BlockSize %d)",
			solves, wantSolves, columns, wantColumns, bs)
	}
}

// TestQueryBatchArityPanics: ks must pair 1:1 with qs.
func TestQueryBatchArityPanics(t *testing.T) {
	_, eng := testEngine(t, rank.Options{})
	c := New(eng, Options{})
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched ks arity should panic")
		}
	}()
	c.QueryBatchPinnedCtx(context.Background(), eng.Pin(), []*ir.Query{ir.NewQuery("olap")}, nil)
}

// TestBlockedPrewarmWarmStarts: after a rates bump the blocked prewarm
// refreshes the hot terms in ⌈N/B⌉ kernel executions, donating each
// term's previous-version vector as its column's warm start.
func TestBlockedPrewarmWarmStarts(t *testing.T) {
	tight := rank.Options{Threshold: 5e-14, MaxIters: 5000}
	ds, eng := testEngine(t, tight)
	c := New(eng, Options{})
	defer c.Close()

	terms := []string{"olap", "xml", "mining"}
	c.Prewarm(terms) // fills v1 vectors (one blocked panel)
	if got := c.Stats().Prewarmed; got != 3 {
		t.Fatalf("prewarmed = %d, want 3", got)
	}

	if err := eng.SetRates(perturb(t, ds.Rates)); err != nil {
		t.Fatal(err)
	}

	var solves int
	eng.SetSolveHook(func(st core.SolveStats) {
		solves++
		if !st.WarmStarted {
			t.Errorf("prewarm panel not warm-started")
		}
		if st.Columns != len(terms) {
			t.Errorf("Columns = %d, want %d", st.Columns, len(terms))
		}
	})
	c.Prewarm(terms) // refresh under v2: one panel, warm-started columns
	eng.SetSolveHook(nil)
	if solves != 1 {
		t.Fatalf("refresh ran %d kernel executions, want 1 blocked panel", solves)
	}
	s := c.Stats()
	if s.WarmStarts != 3 {
		t.Errorf("warm starts = %d, want 3", s.WarmStarts)
	}
	if s.Prewarmed != 6 {
		t.Errorf("prewarmed = %d, want 6", s.Prewarmed)
	}

	// The refreshed vectors serve v2 queries from cache.
	a := c.Query(ir.NewQuery("olap"), 10)
	if a.Source != SourceTerm {
		t.Errorf("post-refresh query source %q, want term", a.Source)
	}
}

// TestBlockedPrewarmVsPublishRace is the satellite -race hammer:
// concurrent rate publications, blocked prewarms (via the publish
// hook), batch queries and single queries against one cache, verifying
// nothing tears and every answer carries a version that was actually
// published.
func TestBlockedPrewarmVsPublishRace(t *testing.T) {
	ds, eng := testEngine(t, rank.Options{Threshold: 1e-4, MaxIters: 60})
	c := New(eng, Options{PrewarmTerms: 4})
	defer c.Close()

	// Seed popularity so prewarm passes have hot terms to refresh.
	for _, tm := range []string{"olap", "xml", "mining", "query"} {
		c.Query(ir.NewQuery(tm), 5)
	}

	var wg, pubWg sync.WaitGroup
	stop := make(chan struct{})

	// Publisher: alternates between two valid rate assignments.
	pubWg.Add(1)
	go func() {
		defer pubWg.Done()
		alt := perturb(t, ds.Rates)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r := ds.Rates
			if i%2 == 0 {
				r = alt
			}
			if err := eng.SetRates(r); err != nil {
				t.Errorf("SetRates: %v", err)
				return
			}
		}
	}()

	// Batch queriers.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qs := []*ir.Query{
				ir.NewQuery("olap"), ir.NewQuery("xml"),
				ir.NewQuery("mining", "query"), ir.NewQuery("olap"),
			}
			ks := []int{5, 5, 5, 5}
			for j := 0; j < 40; j++ {
				pin := eng.Pin()
				answers, err := c.QueryBatchPinnedCtx(context.Background(), pin, qs, ks)
				if err != nil {
					t.Errorf("batch: %v", err)
					return
				}
				for i, a := range answers {
					if a == nil {
						t.Errorf("batch answer %d nil without error", i)
						return
					}
					if a.Version > eng.RatesVersion() {
						t.Errorf("answer version %d from the future", a.Version)
						return
					}
				}
			}
		}()
	}

	// Single queriers riding alongside.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 60; j++ {
				a := c.Query(ir.NewQuery("olap"), 5)
				if a == nil || len(a.Results) == 0 {
					t.Error("single query returned empty answer")
					return
				}
			}
		}()
	}

	// Let the queriers finish, then stop the publisher.
	wg.Wait()
	close(stop)
	pubWg.Wait()
}
