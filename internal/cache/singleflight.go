package cache

import (
	"context"
	"sync"
)

// flightGroup collapses concurrent duplicate work: N goroutines asking
// for the same key while a computation is in flight all wait for the
// one leader and share its result. This is a minimal in-tree
// singleflight (the repo deliberately takes no external dependencies);
// unlike golang.org/x/sync/singleflight it returns the flight's value
// as `any` and reports whether the caller was a follower.
//
// Cancellation model (the PR-4 detached-solve contract): the
// computation runs under a DETACHED context derived from
// context.Background, not from any single caller's request context. A
// caller whose own context dies stops waiting immediately — but the
// flight keeps running as long as at least one interested caller
// remains, so a cancelled follower can never abort the leader's cache
// fill. The detached context is cancelled only when the REFCOUNT of
// interested callers drops to zero: at that point nobody wants the
// result, and a context-aware fn (the ranking kernel) abandons the
// solve within one sweep instead of burning cores for nobody.
//
// Panic model: a panicking fn must not strand its followers. The
// flight goroutine recovers the panic value, clears the key (so the
// group is reusable), and re-raises the SAME value in every waiter —
// leader and followers alike — turning "one poisoned computation" into
// N observable panics instead of N goroutines blocked forever.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight computation.
type flightCall struct {
	// done is closed by the flight goroutine after val/err/panicVal are
	// final and the key has been removed from the group — so a waiter
	// that sees done closed and retries cannot re-join this flight.
	done chan struct{}

	// Written by the flight goroutine before close(done); read by
	// waiters only after <-done (happens-before via channel close).
	val      any
	err      error
	panicked bool
	panicVal any

	// mu guards waiters. cancel aborts the detached context; it is
	// invoked exactly once by whoever drops waiters to zero, or by the
	// flight goroutine at exit (context.CancelFunc is idempotent).
	mu      sync.Mutex
	waiters int
	cancel  context.CancelFunc
}

// addWaiter registers interest in the flight. It fails (returns false)
// when the refcount already hit zero: the detached solve is being
// cancelled and its result must not be handed to a fresh caller — the
// caller waits for the slot to clear and starts a new flight instead.
func (c *flightCall) addWaiter() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.waiters == 0 {
		return false
	}
	c.waiters++
	return true
}

// dropWaiter abandons interest; the last waiter out cancels the
// detached solve.
func (c *flightCall) dropWaiter() {
	c.mu.Lock()
	c.waiters--
	last := c.waiters == 0
	c.mu.Unlock()
	if last {
		c.cancel()
	}
}

// Do runs fn under key with the legacy uncancellable semantics:
// concurrent calls with the same key execute fn exactly once among
// them and every caller blocks until the flight finishes. shared is
// true for followers. Callers that arrive AFTER the flight finished
// start a fresh one, so fn must itself consult the backing cache first
// (double-checked miss) for "at most one computation ever" semantics.
func (g *flightGroup) Do(key string, fn func() any) (val any, shared bool) {
	val, shared, _ = g.DoCtx(context.Background(), key,
		func(context.Context) (any, error) { return fn(), nil })
	return val, shared
}

// DoCtx runs fn under key, deduplicating concurrent callers, with
// per-caller cancellation: ctx governs only THIS caller's wait, never
// the shared computation (see the type doc for the detachment and
// refcount rules). fn receives the detached context and should honor
// it. Returns:
//
//   - (val, shared, nil): the flight finished; val is fn's value.
//   - (nil, shared, ctx.Err()): the caller's own context died while
//     waiting. The flight may still complete for the other waiters.
//   - (nil, true, err): the caller joined a flight whose detached solve
//     failed (err is fn's error — in practice the context error of a
//     solve whose waiters all left). The caller's own ctx is live, so
//     it should retry; the key is already clear.
//
// A panicking fn re-panics in every waiter with the original value.
func (g *flightGroup) DoCtx(ctx context.Context, key string, fn func(context.Context) (any, error)) (val any, shared bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = make(map[string]*flightCall)
		}
		if c, ok := g.m[key]; ok {
			joined := c.addWaiter()
			g.mu.Unlock()
			if !joined {
				// The flight is draining (refcount hit zero, detached
				// solve cancelled). Wait for the slot to clear, then
				// start fresh — unless our own context dies first.
				select {
				case <-c.done:
					continue
				case <-ctx.Done():
					return nil, true, ctx.Err()
				}
			}
			return c.wait(ctx, true)
		}
		dctx, cancel := context.WithCancel(context.Background())
		c := &flightCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
		g.m[key] = c
		g.mu.Unlock()
		go g.run(c, key, dctx, fn)
		return c.wait(ctx, false)
	}
}

// run executes fn on the flight goroutine. The deferred block runs on
// success AND on panic: it records the panic value, removes the key
// (before close(done), so post-completion arrivals start a fresh
// flight), releases the detached context, and wakes every waiter.
func (g *flightGroup) run(c *flightCall, key string, dctx context.Context, fn func(context.Context) (any, error)) {
	defer func() {
		if p := recover(); p != nil {
			c.panicked = true
			c.panicVal = p
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		c.cancel() // release the detached context's timer/goroutine resources
		close(c.done)
	}()
	c.val, c.err = fn(dctx)
}

// wait blocks until the flight finishes or the caller's context dies.
func (c *flightCall) wait(ctx context.Context, shared bool) (any, bool, error) {
	select {
	case <-c.done:
		if c.panicked {
			panic(c.panicVal)
		}
		return c.val, shared, c.err
	case <-ctx.Done():
		c.dropWaiter()
		return nil, shared, ctx.Err()
	}
}
