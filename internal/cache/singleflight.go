package cache

import "sync"

// flightGroup collapses concurrent duplicate work: N goroutines asking
// for the same key while a computation is in flight all wait for the
// one leader and share its result. This is a minimal in-tree
// singleflight (the repo deliberately takes no external dependencies);
// unlike golang.org/x/sync/singleflight it returns the leader's value
// as `any` and reports whether the caller was a follower.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val any
}

// Do runs fn under key, ensuring that concurrent calls with the same
// key execute fn exactly once among them: the first caller (the leader)
// runs fn, every caller that arrives before the leader finishes blocks
// and receives the leader's value. shared is true for followers.
//
// Callers that arrive AFTER the leader finished start a fresh flight,
// so fn must itself consult the backing cache first (double-checked
// miss) for "at most one computation ever" semantics.
func (g *flightGroup) Do(key string, fn func() any) (val any, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		// Release followers only after the key is gone, so a follower
		// that immediately retries cannot re-join a completed flight.
		c.wg.Done()
	}()
	c.val = fn()
	return c.val, false
}
