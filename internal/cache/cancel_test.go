package cache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// ---- flightGroup-level contracts ----

// TestFlightFollowerCancelDoesNotAbortLeader is the detachment
// contract at the singleflight layer: a follower whose context dies
// stops waiting immediately, but the shared computation keeps running
// (its detached context stays live) because the leader still wants the
// result — and the leader receives the full value.
func TestFlightFollowerCancelDoesNotAbortLeader(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	var sawCancel atomic.Bool

	leaderDone := make(chan struct{})
	var leaderVal any
	go func() {
		defer close(leaderDone)
		leaderVal, _, _ = g.DoCtx(context.Background(), "k", func(dctx context.Context) (any, error) {
			close(started)
			<-release
			if dctx.Err() != nil {
				sawCancel.Store(true)
			}
			return "value", nil
		})
	}()

	<-started
	fctx, fcancel := context.WithCancel(context.Background())
	followerDone := make(chan struct{})
	var followerErr error
	var followerShared bool
	go func() {
		defer close(followerDone)
		_, followerShared, followerErr = g.DoCtx(fctx, "k", func(context.Context) (any, error) {
			t.Error("follower must join the in-flight call, not start its own")
			return nil, nil
		})
	}()

	// Give the follower a moment to join, then cancel it.
	time.Sleep(5 * time.Millisecond)
	fcancel()
	select {
	case <-followerDone:
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled follower did not return while the flight was still running")
	}
	if followerErr != context.Canceled || !followerShared {
		t.Fatalf("follower got (shared=%t, err=%v), want (true, context.Canceled)", followerShared, followerErr)
	}

	close(release)
	<-leaderDone
	if leaderVal != "value" {
		t.Fatalf("leader got %v, want the computed value", leaderVal)
	}
	if sawCancel.Load() {
		t.Fatal("detached context was cancelled although the leader still wanted the result")
	}
}

// TestFlightAllWaitersGoneCancelsSolve: when EVERY waiter (leader
// included) abandons the flight, the refcount hits zero and the
// detached context is cancelled — the solve stops computing for
// nobody, and the next caller starts a fresh flight.
func TestFlightAllWaitersGoneCancelsSolve(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	detachedCancelled := make(chan struct{})

	lctx, lcancel := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	var leaderErr error
	go func() {
		defer close(leaderDone)
		_, _, leaderErr = g.DoCtx(lctx, "k", func(dctx context.Context) (any, error) {
			close(started)
			<-dctx.Done() // simulate a kernel observing the per-sweep poll
			close(detachedCancelled)
			return nil, dctx.Err()
		})
	}()

	<-started
	lcancel()
	select {
	case <-detachedCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("detached context not cancelled after the last waiter left")
	}
	<-leaderDone
	if leaderErr != context.Canceled {
		t.Fatalf("leader err = %v, want context.Canceled", leaderErr)
	}

	// The group is reusable: a fresh caller computes anew.
	v, shared, err := g.DoCtx(context.Background(), "k", func(context.Context) (any, error) { return 42, nil })
	if v != 42 || shared || err != nil {
		t.Fatalf("fresh flight after drain = (%v, %t, %v), want (42, false, nil)", v, shared, err)
	}
}

// TestFlightPanicPropagates is the panic-safety regression: a
// panicking fn must re-raise the SAME panic value in the leader and in
// every follower (nobody blocks forever), and the key must be cleared
// so the group remains usable.
func TestFlightPanicPropagates(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	const boom = "kernel exploded"

	const followers = 8
	panics := make(chan any, followers+1)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		defer func() { panics <- recover() }()
		g.DoCtx(context.Background(), "k", func(context.Context) (any, error) {
			close(started)
			<-release
			panic(boom)
		})
	}()
	<-started
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { panics <- recover() }()
			g.DoCtx(context.Background(), "k", func(context.Context) (any, error) {
				t.Error("follower ran fn during an in-flight panic test")
				return nil, nil
			})
		}()
	}
	time.Sleep(5 * time.Millisecond) // let followers join
	close(release)
	wg.Wait()

	close(panics)
	n := 0
	for p := range panics {
		n++
		if p != boom {
			t.Fatalf("waiter recovered %v, want the original panic value %q", p, boom)
		}
	}
	if n != followers+1 {
		t.Fatalf("%d waiters panicked, want %d (leader + followers)", n, followers+1)
	}

	// Slot cleared: the group still works.
	v, _, err := g.DoCtx(context.Background(), "k", func(context.Context) (any, error) { return "ok", nil })
	if v != "ok" || err != nil {
		t.Fatalf("flight after panic = (%v, %v), want (ok, nil)", v, err)
	}
}

// ---- CachedEngine-level contracts ----

// TestQueryCtxFollowerCancelCacheFillLands is the PR-4 acceptance
// scenario: a follower that joins an in-flight solve and then cancels
// neither aborts the solve nor poisons the cache — the leader's fill
// lands, exactly one kernel execution runs, and a later identical
// query is a result-cache hit bit-identical to the leader's answer.
func TestQueryCtxFollowerCancelCacheFillLands(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	// Slow the solve enough for a deterministic join: signal on the
	// first sweep, then drag every sweep out a little.
	opts := rank.Options{
		Threshold: 1e-12,
		MaxIters:  60,
		Observe: func(iter int, _ float64) {
			once.Do(func() { close(started) })
			time.Sleep(200 * time.Microsecond)
		},
	}
	_, eng := testEngine(t, opts)
	c := New(eng, Options{})
	defer c.Close()
	q := ir.NewQuery("olap")

	leaderDone := make(chan struct{})
	var leaderAns *Answer
	var leaderErr error
	go func() {
		defer close(leaderDone)
		leaderAns, leaderErr = c.QueryCtx(context.Background(), q, 10)
	}()
	<-started

	fctx, fcancel := context.WithCancel(context.Background())
	followerDone := make(chan struct{})
	var followerErr error
	go func() {
		defer close(followerDone)
		_, followerErr = c.QueryCtx(fctx, q, 10)
	}()
	time.Sleep(2 * time.Millisecond) // let the follower join the flight
	fcancel()
	select {
	case <-followerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower did not return promptly")
	}
	if followerErr != context.Canceled {
		t.Fatalf("follower err = %v, want context.Canceled", followerErr)
	}

	select {
	case <-leaderDone:
	case <-time.After(10 * time.Second):
		t.Fatal("leader did not finish — the follower's cancel aborted the shared solve")
	}
	if leaderErr != nil {
		t.Fatalf("leader err = %v", leaderErr)
	}
	if computes := c.stats.computes.Load(); computes != 1 {
		t.Fatalf("kernel executions = %d, want exactly 1", computes)
	}

	// The fill landed: the same query is now a pure result-cache hit,
	// bit-identical to the leader's answer.
	again, err := c.QueryCtx(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if again.Source != SourceResult {
		t.Fatalf("repeat query source = %q, want %q (cache fill must have landed)", again.Source, SourceResult)
	}
	if len(again.Results) != len(leaderAns.Results) {
		t.Fatalf("result lengths differ: %d vs %d", len(again.Results), len(leaderAns.Results))
	}
	for i := range again.Results {
		if again.Results[i] != leaderAns.Results[i] {
			t.Fatalf("result %d differs: %+v vs %+v (cached answer not bit-identical)",
				i, again.Results[i], leaderAns.Results[i])
		}
	}
}

// TestQueryCtxPreCancelled: a dead context short-circuits before any
// cache or kernel work.
func TestQueryCtxPreCancelled(t *testing.T) {
	_, eng := testEngine(t, rank.Options{Threshold: 1e-8, MaxIters: 500})
	c := New(eng, Options{})
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if a, err := c.QueryCtx(ctx, ir.NewQuery("olap"), 10); err != context.Canceled || a != nil {
		t.Fatalf("QueryCtx = (%v, %v), want (nil, context.Canceled)", a, err)
	}
	if a, err := c.RankPinnedCtx(ctx, eng.Pin(), ir.NewQuery("olap")); err != context.Canceled || a != nil {
		t.Fatalf("RankPinnedCtx = (%v, %v), want (nil, context.Canceled)", a, err)
	}
}

// TestCloseDuringPublish is the shutdown-ordering regression: closing
// the cache while rate publications keep landing must neither block
// Close, nor panic, nor revive the prewarmer — the publish hook
// becomes a no-op the moment Close starts. Run under -race.
func TestCloseDuringPublish(t *testing.T) {
	_, eng := testEngine(t, rank.Options{Threshold: 1e-6, MaxIters: 200})
	c := New(eng, Options{PrewarmTerms: 4})
	c.Query(ir.NewQuery("olap"), 5) // record a hot term

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // publisher hammering SetRates during shutdown
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := eng.SetRates(eng.Rates()); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	time.Sleep(2 * time.Millisecond)
	done := make(chan struct{})
	go func() { c.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked while publications were racing shutdown")
	}
	close(stop)
	wg.Wait()
	c.Close() // idempotent
}

// TestClosePromptWithSolveInFlight: Close must not wait out a long
// prewarm solve — cancelling prewarmCtx aborts the kernel within one
// sweep. The engine runs with ZeroThreshold and a huge iteration
// budget, so an uncancelled prewarm would take far longer than the
// test allows.
func TestClosePromptWithSolveInFlight(t *testing.T) {
	solveStarted := make(chan struct{})
	var once sync.Once
	var slow atomic.Bool // armed only for the prewarm solve, not the global warm-start
	opts := rank.Options{
		Threshold: rank.ZeroThreshold,
		MaxIters:  20_000,
		Observe: func(int, float64) {
			if !slow.Load() {
				return
			}
			once.Do(func() { close(solveStarted) })
			time.Sleep(500 * time.Microsecond) // uncancelled: ≥10s of sweeps
		},
	}
	_, eng := testEngine(t, opts)
	eng.GlobalRank() // force the once-only global solve while still fast
	c := New(eng, Options{PrewarmTerms: 1})
	c.recordHot(ir.NewQuery("olap"))
	slow.Store(true)
	// Trigger the prewarmer via a publication.
	if err := eng.SetRates(eng.Rates()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-solveStarted:
	case <-time.After(30 * time.Second):
		t.Fatal("prewarm solve never started")
	}
	start := time.Now()
	c.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v with a prewarm solve in flight — cancellation did not reach the kernel", elapsed)
	}
}
