package cache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

func testEngine(t testing.TB, opts rank.Options) (*datagen.Dataset, *core.Engine) {
	t.Helper()
	cfg := datagen.DBLPTopConfig().Scale(0.02)
	cfg.Seed = 4
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ds.Graph, ds.Rates, core.Config{Rank: opts})
	if err != nil {
		t.Fatal(err)
	}
	return ds, eng
}

// perturb returns a valid rate assignment slightly different from r:
// the first non-zero rate scaled by 0.9 (outgoing sums only shrink, so
// Validate stays happy).
func perturb(t *testing.T, r *graph.Rates) *graph.Rates {
	t.Helper()
	p := r.Clone()
	v := p.Vector()
	for i, x := range v {
		if x > 0 {
			v[i] = x * 0.9
			break
		}
	}
	if err := p.SetVector(v); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSingleflightDedup is the satellite race test: 64 goroutines miss
// on the same term concurrently; exactly one power iteration must run
// and every goroutine must receive the identical vector. Run with
// -race.
func TestSingleflightDedup(t *testing.T) {
	// ZeroThreshold disables early convergence so every solve runs the
	// full 300 iterations — a wide-enough window that goroutines really
	// do pile up on the in-flight computation.
	_, eng := testEngine(t, rank.Options{Threshold: rank.ZeroThreshold, MaxIters: 300})
	c := New(eng, Options{})
	defer c.Close()

	const n = 64
	pin := eng.Pin()
	rk := c.stateKeyFor(pin)
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		got   [n]*termVector
	)
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			tv, _, _ := c.termVectorFor(context.Background(), pin, rk, core.ModeAuthority, "olap")
			got[i] = tv
		}(i)
	}
	start.Done()
	done.Wait()

	if computes := c.stats.computes.Load(); computes != 1 {
		t.Fatalf("kernel invocations = %d, want exactly 1", computes)
	}
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatalf("goroutine %d received a different vector object", i)
		}
	}
	if got[0] == nil || len(got[0].vec) != eng.Graph().NumNodes() {
		t.Fatalf("bad vector: %+v", got[0])
	}
	s := c.Stats()
	if s.Vector.Hits+s.Vector.Misses != n {
		t.Errorf("hits(%d)+misses(%d) != %d", s.Vector.Hits, s.Vector.Misses, n)
	}
	if s.Vector.Misses >= 2 && s.SingleflightDedup == 0 {
		t.Errorf("misses = %d but no singleflight dedup recorded", s.Vector.Misses)
	}
}

// TestInvalidationAndWarmStart is the satellite invalidation test:
// bumping the rates makes old-version entries unreachable, the next
// solve warm-starts from the donated previous-version vector,
// converges in no more iterations than a cold solve, and lands within
// 1e-12 of the cold solve's scores.
func TestInvalidationAndWarmStart(t *testing.T) {
	// A tight threshold drives both solves essentially to the fixpoint,
	// so warm and cold results must agree to ~1e-13 regardless of their
	// different starting points.
	tight := rank.Options{Threshold: 5e-14, MaxIters: 5000}
	ds, eng := testEngine(t, tight)
	c := New(eng, Options{})
	defer c.Close()

	q := ir.NewQuery("olap")
	ans1 := c.Query(q, 10)
	if ans1.Source != "computed" || ans1.Version != 1 {
		t.Fatalf("first answer = %+v", ans1)
	}
	oldRK := c.stateKeyFor(eng.Pin())
	if _, ok := c.vectors.Get(termKey(oldRK, "olap")); !ok {
		t.Fatal("term vector not cached after first query")
	}

	newRates := perturb(t, ds.Rates)
	if _, err := eng.TrySetRates(newRates, 1); err != nil {
		t.Fatal(err)
	}

	ans2 := c.Query(q, 10)
	if ans2.Version != 2 {
		t.Fatalf("version = %d, want 2", ans2.Version)
	}
	if ans2.Source == "result" || ans2.Source == "term" {
		t.Fatalf("old-version entry served after rates bump (source=%q)", ans2.Source)
	}
	if w := c.stats.warmStarts.Load(); w != 1 {
		t.Fatalf("warm starts = %d, want 1", w)
	}
	// The donated previous-version vector must be gone: handed over,
	// not still resident under the old key.
	if _, ok := c.vectors.Get(termKey(oldRK, "olap")); ok {
		t.Error("previous-version vector still resident after warm-start hand-over")
	}

	newRK := c.stateKeyFor(eng.Pin())
	if newRK == oldRK {
		t.Fatal("rates key did not change after rates bump")
	}
	e, ok := c.vectors.Get(termKey(newRK, "olap"))
	if !ok {
		t.Fatal("no term vector at the new rates key")
	}
	warm := e.(*termVector)
	if !warm.warmStarted || !warm.converged {
		t.Fatalf("warm vector flags = %+v", warm)
	}

	// Cold reference at the new rates: a fresh engine with no cache and
	// no warm start.
	engCold, err := core.NewEngine(ds.Graph, newRates, core.Config{Rank: tight})
	if err != nil {
		t.Fatal(err)
	}
	cold := engCold.RankCold(q)
	if !cold.Converged {
		t.Fatal("cold reference did not converge")
	}
	if warm.iters > cold.Iterations {
		t.Errorf("warm start took %d iterations, cold %d — warm must be <= cold",
			warm.iters, cold.Iterations)
	}
	for v := range cold.Scores {
		d := warm.vec[v] - cold.Scores[v]
		if d < 0 {
			d = -d
		}
		if d > 1e-12 {
			t.Fatalf("node %d: warm %g vs cold %g differ by %g > 1e-12",
				v, warm.vec[v], cold.Scores[v], d)
		}
	}
}

// TestCacheHitBitCompatible: cached answers (result cache and term
// cache) must be bitwise identical to what the uncached engine
// computes at the same rates version.
func TestCacheHitBitCompatible(t *testing.T) {
	_, eng := testEngine(t, rank.Options{})
	c := New(eng, Options{})
	defer c.Close()

	for _, q := range []*ir.Query{ir.NewQuery("olap"), ir.NewQuery("olap", "cube")} {
		miss := c.Query(q, 10)
		hit := c.Query(q, 10)
		if hit.Source != "result" {
			t.Fatalf("%v: second answer source = %q, want result", q, hit.Source)
		}
		ref := eng.Rank(q)
		top := ref.TopK(10)
		if len(top) != len(hit.Results) || len(miss.Results) != len(top) {
			t.Fatalf("%v: result lengths differ: %d vs %d", q, len(top), len(hit.Results))
		}
		for i := range top {
			if top[i].Node != hit.Results[i].Node || top[i].Score != hit.Results[i].Score {
				t.Fatalf("%v: rank %d: uncached (%d, %v) vs cached (%d, %v)",
					q, i, top[i].Node, top[i].Score, hit.Results[i].Node, hit.Results[i].Score)
			}
			if ref.InBase(top[i].Node) != hit.Results[i].InBase {
				t.Fatalf("%v: rank %d: InBase mismatch", q, i)
			}
		}
		if miss.Iterations != ref.Iterations || hit.Iterations != ref.Iterations {
			t.Errorf("%v: iterations: miss %d, hit %d, uncached %d",
				q, miss.Iterations, hit.Iterations, ref.Iterations)
		}
		eng.Release(ref)
	}
}

// TestRankPinnedMatchesEngine: the explain path's full-vector entry
// must reproduce the uncached ranking exactly, including after a cache
// hit, and its scores must be a private copy (releasable without
// corrupting the cache).
func TestRankPinnedMatchesEngine(t *testing.T) {
	_, eng := testEngine(t, rank.Options{})
	c := New(eng, Options{})
	defer c.Close()

	q := ir.NewQuery("olap")
	ref := eng.Rank(q)
	for round := 0; round < 2; round++ { // miss, then hit
		res := c.RankPinned(eng.Pin(), q)
		for v := range ref.Scores {
			if res.Scores[v] != ref.Scores[v] {
				t.Fatalf("round %d: node %d: %g != %g", round, v, res.Scores[v], ref.Scores[v])
			}
		}
		if len(res.Base) != len(ref.Base) {
			t.Fatalf("round %d: base sizes %d != %d", round, len(res.Base), len(ref.Base))
		}
		eng.Release(res) // must not corrupt the cached vector
	}
	eng.Release(ref)
}

func TestCanonicalQuery(t *testing.T) {
	a := CanonicalQuery(ir.NewQuery("olap", "cube"))
	b := CanonicalQuery(ir.NewQuery("cube", "olap"))
	if a != b {
		t.Errorf("order-sensitive canonical form: %q vs %q", a, b)
	}
	w := ir.NewQuery("olap", "cube")
	w.SetWeight("cube", 0.5)
	if CanonicalQuery(w) == a {
		t.Error("weight change did not change canonical form")
	}
	neg := ir.NewQuery("olap")
	neg.SetWeight("dropped", -1)
	if CanonicalQuery(neg) != CanonicalQuery(ir.NewQuery("olap")) {
		t.Error("non-positive-weight term should not affect the canonical form")
	}
	if term, ok := singleTerm(neg); !ok || term != "olap" {
		t.Errorf("singleTerm = %q, %v", term, ok)
	}
	if _, ok := singleTerm(ir.NewQuery("olap", "cube")); ok {
		t.Error("two-term query classified as single-term")
	}
}

func TestLRUByteBudget(t *testing.T) {
	var ev atomic.Int64
	l := newShardedLRU(1024, 1, &ev)
	for i := 0; i < 16; i++ {
		l.Put(string(rune('a'+i)), i, 128)
	}
	if l.Bytes() > 1024 {
		t.Errorf("bytes = %d exceeds budget", l.Bytes())
	}
	if ev.Load() == 0 {
		t.Error("no evictions recorded under pressure")
	}
	if _, ok := l.Get("a"); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	// Most recent entry must be resident.
	if _, ok := l.Get(string(rune('a' + 15))); !ok {
		t.Error("most recent entry evicted")
	}
	// Oversized entries are rejected, not admitted.
	before := l.Bytes()
	l.Put("huge", 1, 4096)
	if _, ok := l.Get("huge"); ok || l.Bytes() != before {
		t.Error("oversized entry admitted")
	}
	// Remove hands the value over.
	v, ok := l.Remove(string(rune('a' + 15)))
	if !ok || v.(int) != 15 {
		t.Errorf("Remove = %v, %v", v, ok)
	}
	if _, ok := l.Get(string(rune('a' + 15))); ok {
		t.Error("removed entry still resident")
	}
}

// TestEvictionUnderPressure: a tiny vector budget forces term-vector
// evictions while serving stays correct.
func TestEvictionUnderPressure(t *testing.T) {
	_, eng := testEngine(t, rank.Options{})
	n := eng.Graph().NumNodes()
	// Budget fits roughly one vector per shard with a single shard:
	// inserting several distinct terms must evict.
	c := New(eng, Options{VectorBytes: int64(8*n + 512), ResultBytes: 16 << 10, Shards: 1})
	defer c.Close()

	terms := eng.Index().TermsWithDF(3)
	if len(terms) > 6 {
		terms = terms[:6]
	}
	if len(terms) < 3 {
		t.Skip("vocabulary too small at this scale")
	}
	for _, term := range terms {
		c.Query(ir.NewQuery(term), 5)
	}
	s := c.Stats()
	if s.Vector.Evictions == 0 {
		t.Errorf("no vector evictions under a one-vector budget: %+v", s.Vector)
	}
	if s.Vector.Bytes > s.Vector.BudgetBytes {
		t.Errorf("resident bytes %d exceed budget %d", s.Vector.Bytes, s.Vector.BudgetBytes)
	}
	// Serving an evicted term still works (recompute path).
	ans := c.Query(ir.NewQuery(terms[0]), 5)
	if ans == nil || ans.Version != 1 {
		t.Fatalf("bad answer after eviction: %+v", ans)
	}
}

// TestPrewarm: after a rates publication, the background prewarmer
// refreshes the hottest terms at the new version without any query
// arriving.
func TestPrewarm(t *testing.T) {
	ds, eng := testEngine(t, rank.Options{})
	c := New(eng, Options{PrewarmTerms: 2})
	defer c.Close()

	// Make "olap" hot.
	for i := 0; i < 3; i++ {
		c.Query(ir.NewQuery("olap"), 5)
	}
	if err := eng.SetRates(perturb(t, ds.Rates)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	newRK := c.stateKeyFor(eng.Pin())
	for {
		if _, ok := c.vectors.Get(termKey(newRK, "olap")); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prewarmer did not refresh hot term; stats = %+v", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Stats().Prewarmed == 0 {
		t.Error("prewarmed counter not incremented")
	}
	// The prewarm itself should have warm-started from the donated v1
	// vector (it was resident).
	if c.Stats().WarmStarts == 0 {
		t.Error("prewarm did not warm-start from the previous version's vector")
	}
}

// TestConcurrentServeAndPublish hammers the cached serving path while
// rates are republished — the -race workout for the cache, prewarmer,
// and publish hook together.
func TestConcurrentServeAndPublish(t *testing.T) {
	ds, eng := testEngine(t, rank.Options{})
	c := New(eng, Options{PrewarmTerms: 2})
	defer c.Close()

	terms := eng.Index().TermsWithDF(3)
	if len(terms) > 4 {
		terms = terms[:4]
	}
	if len(terms) == 0 {
		t.Skip("vocabulary too small")
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := ir.NewQuery(terms[(w+i)%len(terms)])
				if ans := c.Query(q, 5); ans == nil {
					t.Error("nil answer")
					return
				}
				i++
			}
		}(w)
	}
	rates := []*graph.Rates{ds.Rates.Clone(), perturb(t, ds.Rates)}
	for i := 0; i < 6; i++ {
		if err := eng.SetRates(rates[i%2]); err != nil {
			t.Error(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}
