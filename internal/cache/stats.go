package cache

import "sync/atomic"

// stats is the set of atomic counters a CachedEngine maintains. All
// fields are monotonically increasing except the byte/entry gauges,
// which live on the LRUs themselves and are folded in at Snapshot time.
type stats struct {
	vectorHits      atomic.Int64
	vectorMisses    atomic.Int64
	vectorEvictions atomic.Int64
	resultHits      atomic.Int64
	resultMisses    atomic.Int64
	resultEvictions atomic.Int64
	// dedup counts calls that were answered by joining another caller's
	// in-flight computation instead of running their own.
	dedup atomic.Int64
	// computes counts actual power-iteration kernel invocations issued
	// by the cache (term solves, full query solves, prewarms).
	computes atomic.Int64
	// warmStarts counts term solves that were warm-started from the
	// previous rates version's converged vector for the same term.
	warmStarts atomic.Int64
	// prewarmed counts terms refreshed by the background prewarmer.
	prewarmed atomic.Int64
	// deltaSolves counts prewarm refreshes served by the incremental
	// residual-frontier delta kernel instead of full sweeps (only
	// possible when Options.DeltaEps > 0).
	deltaSolves atomic.Int64
}

// SideStats is one cache side's (term vectors or results) counter
// block in a StatsSnapshot.
type SideStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Entries     int64 `json:"entries"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budgetBytes"`
}

// StatsSnapshot is a point-in-time copy of a CachedEngine's counters,
// the payload of the server's /stats endpoint.
type StatsSnapshot struct {
	Vector            SideStats `json:"vector"`
	Result            SideStats `json:"result"`
	SingleflightDedup int64     `json:"singleflightDedup"`
	Computes          int64     `json:"computes"`
	WarmStarts        int64     `json:"warmStarts"`
	Prewarmed         int64     `json:"prewarmed"`
	DeltaSolves       int64     `json:"deltaSolves"`
}

// Stats returns a consistent-enough snapshot of the counters (each
// counter is read atomically; the set is not globally atomic, which is
// fine for monitoring).
func (c *CachedEngine) Stats() StatsSnapshot {
	return StatsSnapshot{
		Vector: SideStats{
			Hits:        c.stats.vectorHits.Load(),
			Misses:      c.stats.vectorMisses.Load(),
			Evictions:   c.stats.vectorEvictions.Load(),
			Entries:     int64(c.vectors.Len()),
			Bytes:       c.vectors.Bytes(),
			BudgetBytes: c.vectors.Budget(),
		},
		Result: SideStats{
			Hits:        c.stats.resultHits.Load(),
			Misses:      c.stats.resultMisses.Load(),
			Evictions:   c.stats.resultEvictions.Load(),
			Entries:     int64(c.results.Len()),
			Bytes:       c.results.Bytes(),
			BudgetBytes: c.results.Budget(),
		},
		SingleflightDedup: c.stats.dedup.Load(),
		Computes:          c.stats.computes.Load(),
		WarmStarts:        c.stats.warmStarts.Load(),
		Prewarmed:         c.stats.prewarmed.Load(),
		DeltaSolves:       c.stats.deltaSolves.Load(),
	}
}
