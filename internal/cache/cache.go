// Package cache is the serving-path cache of the ObjectRank2 system:
// the layer that makes repeated and concurrent querying cheap, the
// online counterpart of the offline [BHP04]-style precompute.Store.
//
// It holds two sharded, byte-budgeted LRU caches keyed by the full
// identity of the engine state a computation ran under: the corpus
// generation AND the rates identity (the graph.RateVectorKey
// fingerprint PR 1's versioned snapshots made safely derivable):
//
//   - a term-vector cache: converged per-term ObjectRank2 score vectors
//     under (generation, ratesKey, term), populated on demand through a
//     singleflight group so N concurrent misses on one term run exactly
//     one power iteration;
//   - a result cache: full top-k answers under
//     (generation, ratesKey, k, canonical query), so a repeated query
//     is a hash lookup instead of a solve.
//
// Invalidation is implicit: publishing new rates changes the rates key,
// and swapping in a new corpus generation changes the generation
// component, making every old entry unreachable — a cached answer can
// never cross generations. Old same-term vectors are not
// wasted, though — the first solve of a term under the new rates pulls
// the previous version's converged vector OUT of the cache and hands it
// to rank.Options.Init (warm-start reuse, the paper's Section 6.2
// optimization applied across rate updates), and a background prewarmer
// refreshes the hottest terms as soon as a new version is published.
package cache

import (
	"context"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"authorityflow/internal/core"
	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
)

// Options configure a CachedEngine.
type Options struct {
	// MaxBytes is the total byte budget across both caches. When
	// VectorBytes/ResultBytes are zero it is split 7/8 term vectors,
	// 1/8 results (term vectors are the expensive thing to recompute).
	// Zero means DefaultMaxBytes.
	MaxBytes int64
	// VectorBytes / ResultBytes pin the per-side budgets explicitly,
	// overriding the MaxBytes split.
	VectorBytes int64
	ResultBytes int64
	// Shards is the lock-striping factor of each LRU (rounded up to a
	// power of two). Zero means 8.
	Shards int
	// PrewarmTerms, when positive, starts a background goroutine that
	// refreshes the N hottest query terms after every rates
	// publication, so the first queries against a new version find warm
	// vectors. Zero disables prewarming.
	PrewarmTerms int
	// PrewarmFloat32 runs prewarm refresh panels through the f32 panel
	// kernel (core.PanelF32): half the sweep bandwidth per refresh, at
	// the cost that prewarmed vectors agree with a full-precision solve
	// to within ~1e-6 instead of bitwise. Answers served from a
	// prewarmed vector inherit that error class; user-triggered misses
	// always solve at full precision regardless. Leave off when cached
	// and uncached answers must stay bit-identical.
	PrewarmFloat32 bool
	// PrewarmHub additionally refreshes the hottest terms' HUB-direction
	// vectors on every publication (and in synchronous Prewarm calls), so
	// mode=hub queries find warm vectors too. Hub refreshes always run at
	// full precision through the hub panel; the f32 and delta
	// accelerations apply only to the authority side. Off by default —
	// hub vectors double the prewarm work per term.
	PrewarmHub bool
	// DeltaEps, when positive, lets the prewarmer refresh a term by an
	// incremental residual-frontier delta solve (core.Pinned.RankDeltaCtx)
	// seeded from the previous version's vector, whenever the republished
	// rate vector is within L1 distance DeltaEps of the previous
	// version's (same corpus generation). Delta results agree with a
	// full solve within the convergence tolerance class — not bitwise —
	// so like PrewarmFloat32 this trades cached-vs-uncached bit-identity
	// on prewarmed terms for refresh speed. Zero (the default) keeps
	// every refresh a full-sweep solve.
	DeltaEps float64
}

// DefaultMaxBytes is the default total cache budget (64 MiB).
const DefaultMaxBytes int64 = 64 << 20

// CachedEngine wraps a core.Engine with the serving cache. All methods
// are safe for unbounded concurrent use; the underlying engine may be
// used directly at the same time (cache entries are keyed by corpus
// generation and rates identity, so they can never serve stale answers
// after a SetRates or a SwapCorpus).
type CachedEngine struct {
	eng     *core.Engine
	vectors *shardedLRU
	results *shardedLRU
	flights flightGroup
	stats   stats

	// mu guards versionKeys and hot.
	mu sync.Mutex
	// versionKeys memoizes snapshot version -> (corpus generation,
	// rate-vector fingerprint, rate vector), so the fingerprint is
	// computed once per published version, a version bump can locate the
	// PREVIOUS version's entries for same-generation warm-start
	// hand-over, and the prewarmer can measure how far a republish
	// actually moved the rates (the DeltaEps ε-closeness test).
	versionKeys map[uint64]versionEntry
	// hot counts term popularity for the prewarmer.
	hot map[string]int64

	prewarmN   int
	prewarmF32 bool
	prewarmHub bool
	deltaEps   float64
	// prewarmCh signals the prewarm goroutine; prewarmCtx is cancelled
	// by Close so a prewarm blocked inside a long solve aborts within
	// one kernel sweep instead of stalling shutdown.
	prewarmCh     chan struct{}
	prewarmCtx    context.Context
	prewarmCancel context.CancelFunc
	wg            sync.WaitGroup
	closeOnce     sync.Once
	// closed flips once in Close; the publish hook consults it so a
	// publication racing shutdown is a no-op instead of signalling a
	// prewarmer that is going (or has gone) away.
	closed atomic.Bool
}

// New builds a CachedEngine over eng. When opts.PrewarmTerms > 0 it
// registers the engine's publish hook and starts the prewarm goroutine;
// call Close to stop it.
func New(eng *core.Engine, opts Options) *CachedEngine {
	total := opts.MaxBytes
	if total <= 0 {
		total = DefaultMaxBytes
	}
	vb, rb := opts.VectorBytes, opts.ResultBytes
	if vb <= 0 {
		vb = total - total/8
	}
	if rb <= 0 {
		rb = total / 8
		if rb < 1 {
			rb = 1
		}
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 8
	}
	c := &CachedEngine{
		eng:         eng,
		versionKeys: make(map[uint64]versionEntry),
		hot:         make(map[string]int64),
		prewarmN:    opts.PrewarmTerms,
		prewarmF32:  opts.PrewarmFloat32,
		prewarmHub:  opts.PrewarmHub,
		deltaEps:    opts.DeltaEps,
	}
	c.vectors = newShardedLRU(vb, shards, &c.stats.vectorEvictions)
	c.results = newShardedLRU(rb, shards, &c.stats.resultEvictions)
	if c.prewarmN > 0 {
		c.prewarmCh = make(chan struct{}, 1)
		c.prewarmCtx, c.prewarmCancel = context.WithCancel(context.Background())
		c.wg.Add(1)
		go c.prewarmLoop()
		eng.SetPublishHook(func(oldVersion, newVersion uint64) {
			if c.closed.Load() {
				// A publication racing (or following) Close: the
				// prewarmer is shutting down; dropping the signal is
				// the whole point — see TestCloseDuringPublish.
				return
			}
			select {
			case c.prewarmCh <- struct{}{}:
			default: // a prewarm is already pending; it will see the newest snapshot
			}
		})
	}
	return c
}

// Close detaches the publish hook and stops the prewarm goroutine (if
// any), cancelling a prewarm solve in progress. Idempotent; the cache
// itself remains usable afterwards. Safe to call concurrently with
// SetRates publications: the hook becomes a no-op the moment closed
// flips, so a racing publisher can neither block nor revive the
// prewarmer.
func (c *CachedEngine) Close() {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		if c.prewarmCancel != nil {
			c.eng.SetPublishHook(nil)
			c.prewarmCancel()
			c.wg.Wait()
		}
	})
}

// Engine returns the wrapped engine.
func (c *CachedEngine) Engine() *core.Engine { return c.eng }

// ResultItem is one cached ranked node: what a top-k answer needs to be
// re-rendered without touching score vectors.
type ResultItem struct {
	Node   graph.NodeID
	Score  float64
	InBase bool
}

// Answer.Source values: how a cache-enabled query path produced its
// answer. Exported as constants so the observability layer's
// cache-outcome metric labels and the HTTP responses' "cache" field
// can never disagree on spelling.
const (
	// SourceResult: the full top-k answer came from the result cache.
	SourceResult = "result"
	// SourceTerm: a cached converged term vector was re-ranked (top-k
	// scan only, no kernel work).
	SourceTerm = "term"
	// SourceComputed: a power-iteration solve ran — possibly another
	// concurrent caller's (see StatsSnapshot.SingleflightDedup).
	SourceComputed = "computed"
)

// Sources lists every Answer.Source value, in cheapest-first order —
// the label domain of the server's cache-outcome counters.
func Sources() []string { return []string{SourceResult, SourceTerm, SourceComputed} }

// Answer is one served query answer.
type Answer struct {
	// Query is the query that was answered.
	Query *ir.Query
	// Results is the top-k list, descending score. The slice is shared
	// with the cache and must be treated as read-only.
	Results []ResultItem
	// Iterations is the power-iteration count of the solve that
	// produced the answer (0 only for a degenerate empty query).
	Iterations int
	// BaseSet is the base-set size |S(Q)|.
	BaseSet int
	// Version is the rates-snapshot version the answer is valid for.
	Version uint64
	// Generation is the corpus generation the answer was computed
	// under; node IDs in Results are only meaningful against that
	// generation's graph.
	Generation uint64
	// Source reports how the answer was produced: SourceResult,
	// SourceTerm, or SourceComputed (see the Source constants).
	Source string
}

// cachedResult is the result cache's stored value.
type cachedResult struct {
	items   []ResultItem
	iters   int
	baseN   int
	version uint64
	gen     uint64
}

// termVector is the term-vector cache's stored value: one converged
// single-term ObjectRank2 execution. The vector is immutable after
// insertion and is never returned to the engine's buffer pool.
type termVector struct {
	vec       []float64
	iters     int
	baseN     int
	converged bool
	// warmStarted records whether this solve was initialized from the
	// previous rates version's vector (telemetry only).
	warmStarted bool
}

// Iterations returns the iteration count of the solve that produced
// the vector.
func (tv *termVector) Iterations() int { return tv.iters }

// ---- key derivation ----

// stateKey is the cache-key identity of one pinned engine state: the
// corpus generation plus the rate-vector fingerprint. Keying by value
// fingerprint rather than by version means value-identical republished
// rates keep cache entries valid WITHIN a generation; the generation
// component guarantees no entry survives a corpus swap (even one that
// republishes an identical rate vector over a new graph).
type stateKey struct {
	gen uint64
	rk  uint64
}

// versionEntry is the versionKeys memo value: the state identity plus
// the published rate vector itself, retained so a later version can
// compute its L1 distance to this one (the DeltaEps closeness test)
// without re-deriving rates that may no longer be pinnable.
type versionEntry struct {
	key   stateKey
	alpha []float64
}

// l1RateDist returns Σ|a−b|, or +Inf when the vectors are not
// comparable (different schemas).
func l1RateDist(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// stateKeyFor returns the (generation, rate-vector fingerprint)
// identity of the pinned state, memoized per rates version — versions
// advance monotonically across swaps, so one version maps to exactly
// one (generation, fingerprint) pair. The fingerprint and the
// precompute store's validity check share one definition of "same
// rates" (graph.RateVectorKey / graph.SameRateVector).
func (c *CachedEngine) stateKeyFor(pin *core.Pinned) stateKey {
	v := pin.Version()
	c.mu.Lock()
	e, ok := c.versionKeys[v]
	c.mu.Unlock()
	if ok {
		return e.key
	}
	alpha := pin.Rates().Vector()
	e = versionEntry{key: stateKey{gen: pin.Generation(), rk: graph.RateVectorKey(alpha)}, alpha: alpha}
	c.mu.Lock()
	if len(c.versionKeys) > 4096 { // bound growth across very long rate-training runs
		trimmed := make(map[uint64]versionEntry, 2)
		if prev, ok := c.versionKeys[v-1]; ok {
			trimmed[v-1] = prev
		}
		c.versionKeys = trimmed
	}
	c.versionKeys[v] = e
	c.mu.Unlock()
	return e.key
}

// previousTermKey returns the cache key of the same term (in the same
// ranking direction) under the snapshot version preceding v, if that
// version's identity is known, belongs to the SAME corpus generation,
// and actually differs in rates. The generation guard is what keeps
// warm-start hand-over from donating a vector sized for a different
// graph after a swap.
func (c *CachedEngine) previousTermKey(v uint64, sk stateKey, m core.Mode, term string) (string, bool) {
	c.mu.Lock()
	prev, ok := c.versionKeys[v-1]
	c.mu.Unlock()
	if !ok || prev.key.gen != sk.gen || prev.key.rk == sk.rk {
		return "", false
	}
	return termKeyMode(prev.key, m, term), true
}

// deltaEligible reports whether a refresh under version v may use the
// incremental delta kernel: DeltaEps opted in, the previous version is
// known, same corpus generation, and the republished rate vector moved
// by at most DeltaEps in L1.
func (c *CachedEngine) deltaEligible(v uint64) bool {
	if c.deltaEps <= 0 {
		return false
	}
	c.mu.Lock()
	cur, okc := c.versionKeys[v]
	prev, okp := c.versionKeys[v-1]
	c.mu.Unlock()
	return okc && okp && prev.key.gen == cur.key.gen &&
		l1RateDist(cur.alpha, prev.alpha) <= c.deltaEps
}

func termKey(sk stateKey, term string) string {
	return "t\x00" + strconv.FormatUint(sk.gen, 16) + "\x00" + strconv.FormatUint(sk.rk, 16) + "\x00" + term
}

// hubTermKey is the hub-direction twin of termKey. The distinct "h"
// prefix keeps the two vector populations apart inside ONE shared LRU:
// both directions compete for the same byte budget (hot authority terms
// can evict cold hub vectors and vice versa), but a key can never alias
// across directions.
func hubTermKey(sk stateKey, term string) string {
	return "h\x00" + strconv.FormatUint(sk.gen, 16) + "\x00" + strconv.FormatUint(sk.rk, 16) + "\x00" + term
}

// termKeyMode selects the direction's term key. Combined queries have
// no single-direction vector and never reach here.
func termKeyMode(sk stateKey, m core.Mode, term string) string {
	if m == core.ModeHub {
		return hubTermKey(sk, term)
	}
	return termKey(sk, term)
}

func resultKey(sk stateKey, k int, q *ir.Query) string {
	var b strings.Builder
	b.WriteString("r\x00")
	b.WriteString(strconv.FormatUint(sk.gen, 16))
	b.WriteString("\x00")
	b.WriteString(strconv.FormatUint(sk.rk, 16))
	b.WriteString("\x00")
	b.WriteString(strconv.Itoa(k))
	b.WriteString("\x00")
	b.WriteString(CanonicalQuery(q))
	return b.String()
}

// resultKeyMode tags non-authority result keys with the mode so the
// three directions' answers for one query never collide. Authority keys
// keep their pre-mode spelling — every entry cached before modes
// existed remains addressable. (No aliasing: the byte after "r\x00" is
// a hex digit for authority keys and the mode's leading letter — 'h' or
// 'c', neither a hex digit — for the others.)
func resultKeyMode(sk stateKey, m core.Mode, k int, q *ir.Query) string {
	if m == core.ModeAuthority || m == "" {
		return resultKey(sk, k, q)
	}
	return "r\x00" + string(m) + "\x00" + resultKey(sk, k, q)[2:]
}

// CanonicalQuery renders a query as a normalized cache-key fragment:
// terms sorted lexicographically, weights in exact hexadecimal float
// form, zero/negative-weight terms dropped (they contribute nothing to
// the base set). Two queries with equal canonical forms produce the
// same base distribution up to floating-point summation order.
func CanonicalQuery(q *ir.Query) string {
	terms := q.Terms()
	weights := q.Weights()
	type tw struct {
		t string
		w float64
	}
	kept := make([]tw, 0, len(terms))
	for i, t := range terms {
		if weights[i] > 0 {
			kept = append(kept, tw{t, weights[i]})
		}
	}
	for i := 1; i < len(kept); i++ { // insertion sort; queries are tiny
		for j := i; j > 0 && kept[j].t < kept[j-1].t; j-- {
			kept[j], kept[j-1] = kept[j-1], kept[j]
		}
	}
	var b strings.Builder
	for _, e := range kept {
		b.WriteString(e.t)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(e.w, 'x', -1, 64))
		b.WriteByte(';')
	}
	return b.String()
}

// singleTerm reports whether q is effectively a single-keyword query
// (exactly one positive-weight term). For such queries the normalized
// base distribution is independent of the term's weight, so one cached
// vector serves them all.
func singleTerm(q *ir.Query) (string, bool) {
	terms := q.Terms()
	weights := q.Weights()
	found := ""
	for i, t := range terms {
		if weights[i] <= 0 {
			continue
		}
		if found != "" {
			return "", false
		}
		found = t
	}
	return found, found != ""
}

// ---- size accounting ----

const entryOverhead = 96 // map entry + lruEntry + headers, approximate

func termEntrySize(key string, n int) int64 {
	return int64(8*n + len(key) + entryOverhead)
}

func resultEntrySize(key string, k int) int64 {
	return int64(24*k + len(key) + entryOverhead)
}

// ---- query paths ----

// Query answers q with the top k nodes under the engine's current
// rates, consulting the result cache, then (for single-keyword
// queries) the term-vector cache, then running the same solve the
// uncached engine would. Cache-hit answers are bit-identical to the
// answer computed on the original miss.
func (c *CachedEngine) Query(q *ir.Query, k int) *Answer {
	a, _ := c.queryAt(context.Background(), c.eng.Pin(), q, k, nil, core.ModeAuthority)
	return a
}

// QueryCtx is Query under a request context: the caller stops waiting
// the moment ctx dies and receives ctx.Err(). A cancelled caller never
// aborts a shared in-flight solve while other callers still want it —
// the solve runs detached and is cancelled only when EVERY waiter has
// left (see flightGroup). Cache fills from shared solves therefore
// land even when the caller that triggered them gave up.
func (c *CachedEngine) QueryCtx(ctx context.Context, q *ir.Query, k int) (*Answer, error) {
	return c.queryAt(ctx, c.eng.Pin(), q, k, nil, core.ModeAuthority)
}

// QueryFrom is Query warm-started from a previous score vector (the
// reformulated-query path): on a full miss the solve starts from init
// instead of the global PageRank. init is only read.
func (c *CachedEngine) QueryFrom(q *ir.Query, k int, init []float64) *Answer {
	a, _ := c.queryAt(context.Background(), c.eng.Pin(), q, k, init, core.ModeAuthority)
	return a
}

// QueryFromCtx is QueryFrom under a request context (see QueryCtx).
func (c *CachedEngine) QueryFromCtx(ctx context.Context, q *ir.Query, k int, init []float64) (*Answer, error) {
	return c.queryAt(ctx, c.eng.Pin(), q, k, init, core.ModeAuthority)
}

// QueryFromPinnedCtx is QueryFromCtx under a caller-held pin: the
// reformulation flow uses it to seed the reformulated query's answer
// at the exact engine state it just published.
func (c *CachedEngine) QueryFromPinnedCtx(ctx context.Context, pin *core.Pinned, q *ir.Query, k int, init []float64) (*Answer, error) {
	return c.queryAt(ctx, pin, q, k, init, core.ModeAuthority)
}

// QueryPinned is Query under an explicitly pinned snapshot.
func (c *CachedEngine) QueryPinned(pin *core.Pinned, q *ir.Query, k int) *Answer {
	a, _ := c.queryAt(context.Background(), pin, q, k, nil, core.ModeAuthority)
	return a
}

// QueryPinnedCtx is QueryPinned under a request context (see QueryCtx).
func (c *CachedEngine) QueryPinnedCtx(ctx context.Context, pin *core.Pinned, q *ir.Query, k int) (*Answer, error) {
	return c.queryAt(ctx, pin, q, k, nil, core.ModeAuthority)
}

// QueryBatchPinnedCtx answers a whole panel of queries under ONE pinned
// snapshot — the /v1/query/batch serving path. ks carries the per-query
// top-k (len(ks) must equal len(qs); entries <= 0 default to 10).
//
// Per query it consults the result cache, then (single-keyword queries)
// the term-vector cache; every remaining miss becomes a column of a
// single blocked kernel call (Pinned.RankManyFromCtx, panelled at the
// corpus BlockSize), deduplicated within the batch — repeated terms and
// repeated canonical multi-keyword queries share one column. Single-
// term columns warm-start from the previous rates version's vector when
// resident, exactly as the single-query miss path does, and fill the
// term-vector cache; every miss fills the result cache. Each answer is
// therefore the same answer the corresponding single QueryPinnedCtx
// call would produce.
//
// Like the blocked prewarm, the batch path bypasses the singleflight
// group: a concurrent identical user miss may duplicate one solve
// (benign — same snapshot, last insert wins) but a batch can never be
// serialized behind per-term flights.
//
// On cancellation the returned slice is partial: answers for queries
// served from cache or from columns that converged before the cutoff
// are filled, the rest are nil, and the ctx error is returned.
func (c *CachedEngine) QueryBatchPinnedCtx(ctx context.Context, pin *core.Pinned, qs []*ir.Query, ks []int) ([]*Answer, error) {
	return c.queryBatchDir(ctx, pin, qs, ks, core.ModeAuthority)
}

// queryBatchDir is the blocked batch path for one ranking direction
// (authority or hub — combined items are peeled off before reaching
// here, see QueryBatchModePinnedCtx).
func (c *CachedEngine) queryBatchDir(ctx context.Context, pin *core.Pinned, qs []*ir.Query, ks []int, m core.Mode) ([]*Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(ks) != len(qs) {
		panic("cache: QueryBatchPinnedCtx got " + strconv.Itoa(len(ks)) + " k values for " + strconv.Itoa(len(qs)) + " queries")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sk := c.stateKeyFor(pin)
	v := pin.Version()
	answers := make([]*Answer, len(qs))
	kk := make([]int, len(qs))
	for i, k := range ks {
		if k <= 0 {
			k = 10
		}
		kk[i] = k
	}

	// column is one pending kernel column; pending maps each missed
	// query onto its (possibly shared) column.
	type column struct {
		solveQ *ir.Query
		term   string // non-empty for single-term columns
		tkey   string
		warm   bool
	}
	type pendingQ struct {
		i   int    // index into qs
		key string // result-cache key
		col int    // index into cols
	}
	var cols []column
	var inits [][]float64
	var pend []pendingQ
	colByID := make(map[string]int)

	for i, q := range qs {
		c.recordHot(q)
		key := resultKeyMode(sk, m, kk[i], q)
		if e, ok := c.results.Get(key); ok {
			c.stats.resultHits.Add(1)
			answers[i] = c.answerFrom(e.(*cachedResult), q, SourceResult)
			continue
		}
		c.stats.resultMisses.Add(1)
		if term, ok := singleTerm(q); ok {
			tkey := termKeyMode(sk, m, term)
			if e, ok := c.vectors.Get(tkey); ok {
				c.stats.vectorHits.Add(1)
				answers[i] = c.answerFrom(c.storeTopK(pin, key, q, kk[i], e.(*termVector)), q, SourceTerm)
				continue
			}
			c.stats.vectorMisses.Add(1)
			id := "t\x00" + term
			ci, ok := colByID[id]
			if !ok {
				var init []float64
				warm := false
				if prevKey, ok := c.previousTermKey(v, sk, m, term); ok {
					if old, ok2 := c.vectors.Remove(prevKey); ok2 {
						init = old.(*termVector).vec
						warm = true
					}
				}
				ci = len(cols)
				colByID[id] = ci
				cols = append(cols, column{solveQ: ir.NewQuery(term), term: term, tkey: tkey, warm: warm})
				inits = append(inits, init)
			} else {
				c.stats.dedup.Add(1) // in-batch dedup, same accounting as a joined flight
			}
			pend = append(pend, pendingQ{i: i, key: key, col: ci})
			continue
		}
		id := "q\x00" + CanonicalQuery(q)
		ci, ok := colByID[id]
		if !ok {
			ci = len(cols)
			colByID[id] = ci
			cols = append(cols, column{solveQ: q})
			inits = append(inits, nil)
		} else {
			c.stats.dedup.Add(1)
		}
		pend = append(pend, pendingQ{i: i, key: key, col: ci})
	}

	if len(cols) == 0 {
		return answers, nil
	}
	queries := make([]*ir.Query, len(cols))
	for ci := range cols {
		queries[ci] = cols[ci].solveQ
	}
	var results []*core.RankResult
	var err error
	if m == core.ModeHub {
		results, err = pin.RankManyHubFromCtx(ctx, queries, inits)
	} else {
		results, err = pin.RankManyFromCtx(ctx, queries, inits)
	}

	// Harvest: single-term columns fill the term-vector cache first so
	// the pending renders below can share the copied vector.
	tvs := make([]*termVector, len(cols))
	for ci, res := range results {
		if res == nil {
			continue // cancelled column
		}
		c.stats.computes.Add(1)
		col := &cols[ci]
		if col.term == "" {
			continue
		}
		if col.warm {
			c.stats.warmStarts.Add(1)
		}
		vec := make([]float64, len(res.Scores))
		copy(vec, res.Scores)
		tvs[ci] = &termVector{
			vec:         vec,
			iters:       res.Iterations,
			baseN:       len(res.Base),
			converged:   res.Converged,
			warmStarted: col.warm,
		}
		c.vectors.Put(col.tkey, tvs[ci], termEntrySize(col.tkey, len(vec)))
	}
	for _, p := range pend {
		res := results[p.col]
		if res == nil {
			continue // answers[p.i] stays nil; err reports the cutoff
		}
		if tv := tvs[p.col]; tv != nil {
			answers[p.i] = c.answerFrom(c.storeTopK(pin, p.key, qs[p.i], kk[p.i], tv), qs[p.i], SourceComputed)
		} else {
			cr := resultFrom(res, kk[p.i])
			c.results.Put(p.key, cr, resultEntrySize(p.key, len(cr.items)))
			answers[p.i] = c.answerFrom(cr, qs[p.i], SourceComputed)
		}
	}
	for _, res := range results {
		if res != nil {
			c.eng.Release(res)
		}
	}
	return answers, err
}

// queryAt is the single-query serving path for one ranking direction
// (authority or hub; combined answers are assembled from both
// directions by queryCombinedAt in mode.go). init warm-starts only the
// multi-keyword miss solve and must come from the same direction.
func (c *CachedEngine) queryAt(ctx context.Context, pin *core.Pinned, q *ir.Query, k int, init []float64, m core.Mode) (*Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		k = 10
	}
	c.recordHot(q)
	sk := c.stateKeyFor(pin)
	key := resultKeyMode(sk, m, k, q)
	if e, ok := c.results.Get(key); ok {
		c.stats.resultHits.Add(1)
		return c.answerFrom(e.(*cachedResult), q, SourceResult), nil
	}
	c.stats.resultMisses.Add(1)

	if term, ok := singleTerm(q); ok {
		tv, hit, err := c.termVectorFor(ctx, pin, sk, m, term)
		if err != nil {
			return nil, err
		}
		cr := c.storeTopK(pin, key, q, k, tv)
		src := SourceComputed
		if hit {
			src = SourceTerm
		}
		return c.answerFrom(cr, q, src), nil
	}

	// Multi-keyword: run the full solve (identical to the uncached
	// engine's path, so cached answers are bit-compatible with it),
	// deduplicating concurrent identical queries through the flight
	// group. The solve runs under the flight's DETACHED context, so
	// this caller's cancellation cannot abort a fill that other
	// callers are still waiting on.
	for {
		val, shared, err := c.flights.DoCtx(ctx, key, func(dctx context.Context) (any, error) {
			if e, ok := c.results.Get(key); ok { // lost a miss/flight race
				return e.(*cachedResult), nil
			}
			var res *core.RankResult
			var rerr error
			switch {
			case m == core.ModeHub && init != nil:
				res, rerr = pin.RankHubFromCtx(dctx, q, init)
			case m == core.ModeHub:
				res, rerr = pin.RankHubCtx(dctx, q)
			case init != nil:
				res, rerr = pin.RankFromCtx(dctx, q, init)
			default:
				res, rerr = pin.RankCtx(dctx, q)
			}
			if rerr != nil {
				return nil, rerr // all waiters left; solve abandoned
			}
			c.stats.computes.Add(1)
			cr := resultFrom(res, k)
			c.eng.Release(res)
			c.results.Put(key, cr, resultEntrySize(key, len(cr.items)))
			return cr, nil
		})
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr // our own context died
			}
			// We joined (late) a flight that was already draining — its
			// detached solve was cancelled because every earlier waiter
			// left. Our context is live, so retry with a fresh flight.
			continue
		}
		if shared {
			c.stats.dedup.Add(1)
		}
		return c.answerFrom(val.(*cachedResult), q, SourceComputed), nil
	}
}

// resultFrom converts a live RankResult into a cached top-k entry.
func resultFrom(res *core.RankResult, k int) *cachedResult {
	ranked := res.TopK(k)
	items := make([]ResultItem, len(ranked))
	for i, r := range ranked {
		items[i] = ResultItem{Node: r.Node, Score: r.Score, InBase: res.InBase(r.Node)}
	}
	return &cachedResult{items: items, iters: res.Iterations, baseN: len(res.Base), version: res.RatesVersion, gen: res.Generation}
}

// storeTopK ranks a cached term vector's top k and stores the answer in
// the result cache so the next identical request skips even the top-k
// scan.
func (c *CachedEngine) storeTopK(pin *core.Pinned, key string, q *ir.Query, k int, tv *termVector) *cachedResult {
	term, _ := singleTerm(q)
	ranked := rank.TopK(tv.vec, k)
	items := make([]ResultItem, len(ranked))
	ix := pin.Corpus().Index() // the generation the vector was solved on
	for i, r := range ranked {
		items[i] = ResultItem{
			Node:   r.Node,
			Score:  r.Score,
			InBase: ix.TF(int32(r.Node), term) > 0,
		}
	}
	cr := &cachedResult{items: items, iters: tv.iters, baseN: tv.baseN, version: pin.Version(), gen: pin.Generation()}
	c.results.Put(key, cr, resultEntrySize(key, len(items)))
	return cr
}

func (c *CachedEngine) answerFrom(cr *cachedResult, q *ir.Query, source string) *Answer {
	return &Answer{
		Query:      q,
		Results:    cr.items,
		Iterations: cr.iters,
		BaseSet:    cr.baseN,
		Version:    cr.version,
		Generation: cr.gen,
		Source:     source,
	}
}

// termVectorFor returns the converged single-term vector for term in
// ranking direction m under the pinned snapshot, computing (at most
// once across concurrent callers) on a miss. hit reports whether the
// vector came straight from the cache. The solve runs under the flight
// group's detached context: ctx governs only this caller's wait (see
// QueryCtx).
func (c *CachedEngine) termVectorFor(ctx context.Context, pin *core.Pinned, sk stateKey, m core.Mode, term string) (tv *termVector, hit bool, err error) {
	key := termKeyMode(sk, m, term)
	if e, ok := c.vectors.Get(key); ok {
		c.stats.vectorHits.Add(1)
		return e.(*termVector), true, nil
	}
	c.stats.vectorMisses.Add(1)
	for {
		val, shared, err := c.flights.DoCtx(ctx, key, func(dctx context.Context) (any, error) {
			if e, ok := c.vectors.Get(key); ok { // lost a miss/flight race
				return e.(*termVector), nil
			}
			return c.computeTerm(dctx, pin, sk, m, key, term)
		})
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, false, cerr
			}
			continue // joined a draining flight; retry fresh (see queryAt)
		}
		if shared {
			c.stats.dedup.Add(1)
		}
		return val.(*termVector), false, nil
	}
}

// computeTerm runs one single-term ObjectRank2 solve in direction m and
// inserts the converged vector. On the first solve after a rates bump,
// the previous version's converged vector for the same term and
// direction (if still resident) is removed from the cache and donated
// as the warm start, so the new solve refines an already-close vector
// instead of starting from the global PageRank.
func (c *CachedEngine) computeTerm(ctx context.Context, pin *core.Pinned, sk stateKey, m core.Mode, key, term string) (*termVector, error) {
	var init []float64
	warm := false
	if prevKey, ok := c.previousTermKey(pin.Version(), sk, m, term); ok {
		if old, ok2 := c.vectors.Remove(prevKey); ok2 {
			init = old.(*termVector).vec
			warm = true
		}
	}
	q := ir.NewQuery(term)
	var res *core.RankResult
	var err error
	switch {
	case m == core.ModeHub && init != nil:
		res, err = pin.RankHubFromCtx(ctx, q, init)
	case m == core.ModeHub:
		res, err = pin.RankHubCtx(ctx, q)
	case init != nil:
		res, err = pin.RankFromCtx(ctx, q, init)
	default:
		res, err = pin.RankCtx(ctx, q)
	}
	if err != nil {
		// Solve abandoned (every waiter left, or a prewarm shut down):
		// nothing is cached; the next miss recomputes. The donated
		// warm-start vector (if any) is lost with it — acceptable, it
		// was already invalid under the new rates.
		return nil, err
	}
	c.stats.computes.Add(1)
	if warm {
		c.stats.warmStarts.Add(1)
	}
	vec := make([]float64, len(res.Scores))
	copy(vec, res.Scores)
	tv := &termVector{
		vec:         vec,
		iters:       res.Iterations,
		baseN:       len(res.Base),
		converged:   res.Converged,
		warmStarted: warm,
	}
	c.eng.Release(res)
	c.vectors.Put(key, tv, termEntrySize(key, len(vec)))
	return tv, nil
}

// RankPinned produces a full core.RankResult under the pinned snapshot,
// serving single-keyword queries from the term-vector cache (the scores
// are copied out, so the caller may Release the result as usual) and
// everything else by a normal solve. This is the explain path's entry:
// explanations need whole score vectors, not top-k lists.
func (c *CachedEngine) RankPinned(pin *core.Pinned, q *ir.Query) *core.RankResult {
	res, _ := c.RankPinnedCtx(context.Background(), pin, q)
	return res
}

// RankPinnedCtx is RankPinned under a request context (see QueryCtx
// for the shared-solve detachment rules).
func (c *CachedEngine) RankPinnedCtx(ctx context.Context, pin *core.Pinned, q *ir.Query) (*core.RankResult, error) {
	if term, ok := singleTerm(q); ok {
		c.recordHot(q)
		sk := c.stateKeyFor(pin)
		tv, _, err := c.termVectorFor(ctx, pin, sk, core.ModeAuthority, term)
		if err != nil {
			return nil, err
		}
		scores := make([]float64, len(tv.vec))
		copy(scores, tv.vec)
		return &core.RankResult{
			Query:        q,
			Scores:       scores,
			Base:         pin.BaseSet(q),
			Iterations:   tv.iters,
			Converged:    tv.converged,
			RatesVersion: pin.Version(),
			Generation:   pin.Generation(),
		}, nil
	}
	return pin.RankCtx(ctx, q)
}

// ---- hot-term tracking ----

func (c *CachedEngine) recordHot(q *ir.Query) {
	if c.prewarmN <= 0 {
		return
	}
	terms := q.Terms()
	weights := q.Weights()
	c.mu.Lock()
	for i, t := range terms {
		if weights[i] <= 0 {
			continue
		}
		c.hot[t]++
	}
	if len(c.hot) > 8192 { // decay: halve everything, drop the cold tail
		for t, n := range c.hot {
			n /= 2
			if n == 0 {
				delete(c.hot, t)
			} else {
				c.hot[t] = n
			}
		}
	}
	c.mu.Unlock()
}

// hottest returns up to n terms by descending popularity.
func (c *CachedEngine) hottest(n int) []string {
	c.mu.Lock()
	type tc struct {
		t string
		n int64
	}
	all := make([]tc, 0, len(c.hot))
	for t, cnt := range c.hot {
		all = append(all, tc{t, cnt})
	}
	c.mu.Unlock()
	for i := 1; i < len(all); i++ { // insertion sort by count desc, term asc
		for j := i; j > 0 && (all[j].n > all[j-1].n || (all[j].n == all[j-1].n && all[j].t < all[j-1].t)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].t
	}
	return out
}

// ---- prewarmer ----

// prewarmLoop waits for rates publications (signalled by the engine's
// publish hook) and refreshes the hottest terms under the then-current
// snapshot. Signals are coalesced: a publication arriving mid-prewarm
// queues exactly one more pass, which will pin the newest snapshot.
func (c *CachedEngine) prewarmLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.prewarmCtx.Done():
			return
		case <-c.prewarmCh:
			c.prewarmOnce()
		}
	}
}

func (c *CachedEngine) prewarmOnce() {
	terms := c.hottest(c.prewarmN)
	if len(terms) == 0 {
		return
	}
	// prewarmCtx dies on Close: a blocked prewarm solve in progress is
	// abandoned within one kernel sweep.
	c.prewarmTerms(c.prewarmCtx, terms)
}

// Prewarm synchronously computes (or refreshes) the vectors of the
// given terms under the current rates — a deployment warm-up hook for
// process start. Terms are solved together through the blocked kernel.
func (c *CachedEngine) Prewarm(terms []string) {
	c.prewarmTerms(context.Background(), terms)
}

// prewarmTerms is the blocked implementation shared by the background
// prewarmer and the synchronous Prewarm hook: every term still missing
// under the current rates is solved in ONE blocked kernel call (the
// engine panels it at BlockSize columns per kernel execution), with the
// previous rates version's vector — when still resident — donated as
// that column's warm start, exactly as the single-term miss path does.
// Two opt-in accelerations apply here and only here: when the
// republish was ε-close (deltaEligible) a donated term refreshes by an
// incremental delta solve instead of occupying a panel column, and
// PrewarmFloat32 runs the remaining panel in the f32 kernel.
//
// The blocked path deliberately BYPASSES the singleflight group: a user
// miss racing the prewarm on the same term may run one duplicate solve,
// which is benign (both converge under the same snapshot; last insert
// wins) and rare, while routing a whole panel through per-term flights
// would serialize the panel away.
func (c *CachedEngine) prewarmTerms(ctx context.Context, terms []string) {
	pin := c.eng.Pin()
	sk := c.stateKeyFor(pin)
	v := pin.Version()
	c.prewarmAuthority(ctx, pin, sk, v, terms)
	if c.prewarmHub {
		c.prewarmHubTerms(ctx, pin, sk, v, terms)
	}
}

func (c *CachedEngine) prewarmAuthority(ctx context.Context, pin *core.Pinned, sk stateKey, v uint64, terms []string) {
	useDelta := c.deltaEligible(v)
	type missCol struct {
		term string
		key  string
		warm bool
	}
	var misses []missCol
	var qs []*ir.Query
	var inits [][]float64
	for _, t := range terms {
		key := termKey(sk, t)
		if _, ok := c.vectors.Get(key); ok {
			c.stats.vectorHits.Add(1)
			c.stats.prewarmed.Add(1)
			continue
		}
		c.stats.vectorMisses.Add(1)
		var init []float64
		warm := false
		if prevKey, ok := c.previousTermKey(v, sk, core.ModeAuthority, t); ok {
			if old, ok2 := c.vectors.Remove(prevKey); ok2 {
				init = old.(*termVector).vec
				warm = true
			}
		}
		if useDelta && init != nil {
			// ε-close republish with the previous vector in hand: repair
			// the residual frontier instead of re-sweeping the graph. A
			// stale or oversized perturbation degrades inside the kernel.
			res, err := pin.RankDeltaCtx(ctx, ir.NewQuery(t), init)
			if err != nil {
				continue // cancelled; nothing cached, next miss recomputes
			}
			c.stats.computes.Add(1)
			c.stats.warmStarts.Add(1)
			c.stats.deltaSolves.Add(1)
			vec := make([]float64, len(res.Scores))
			copy(vec, res.Scores)
			tv := &termVector{
				vec:         vec,
				iters:       res.Iterations,
				baseN:       len(res.Base),
				converged:   res.Converged,
				warmStarted: true,
			}
			c.eng.Release(res)
			c.vectors.Put(key, tv, termEntrySize(key, len(vec)))
			c.stats.prewarmed.Add(1)
			continue
		}
		misses = append(misses, missCol{term: t, key: key, warm: warm})
		qs = append(qs, ir.NewQuery(t))
		inits = append(inits, init) // nil → global warm start
	}
	if len(qs) == 0 {
		return
	}
	mode := core.PanelF64
	if c.prewarmF32 {
		mode = core.PanelF32
	}
	// On cancellation (Close mid-prewarm) results holds nil for the
	// cancelled columns; completed columns still land in the cache.
	results, _ := pin.RankManyModeCtx(ctx, qs, inits, mode)
	for i, res := range results {
		if res == nil {
			continue
		}
		m := misses[i]
		c.stats.computes.Add(1)
		if m.warm {
			c.stats.warmStarts.Add(1)
		}
		vec := make([]float64, len(res.Scores))
		copy(vec, res.Scores)
		tv := &termVector{
			vec:         vec,
			iters:       res.Iterations,
			baseN:       len(res.Base),
			converged:   res.Converged,
			warmStarted: m.warm,
		}
		c.eng.Release(res)
		c.vectors.Put(m.key, tv, termEntrySize(m.key, len(vec)))
		c.stats.prewarmed.Add(1)
	}
}
