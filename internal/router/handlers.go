// handlers.go is the router's HTTP surface: the SAME /v1 routes a
// single replica serves (so clients cannot tell a fleet from one
// node), plus /v1/router/healthz for the fleet view and /metrics for
// the afq_router_* families.
//
// Read traffic is forwarded RAW — the replica's bytes (status, JSON
// body, error envelopes) pass through untouched, so a routed answer is
// byte-identical to asking that replica directly. /v1/query/batch is
// the one route the router reassembles: sub-batches decode into the
// shared DTOs and re-encode with the same encoder configuration the
// replicas use, which round-trips float64 scores exactly — the merged
// body is byte-identical to a single replica's answer at the same
// (generation, ratesVersion).
package router

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"authorityflow/internal/ir"
	"authorityflow/internal/obs"
	"authorityflow/internal/server"
)

// Version-assertion request headers: a client that has observed fleet
// state (a query answer's generation/version, a reformulation's new
// version) can assert it here, and the router will only use replicas
// at or above it — read-your-writes across the fleet.
const (
	HeaderMinGeneration   = "X-Afq-Min-Generation"
	HeaderMinRatesVersion = "X-Afq-Min-Rates-Version"
)

// HeaderServedBy is the response header naming the replica that
// produced a proxied answer. Power-iteration solves warm-start from
// each replica's own solve history, so same-version answers from
// DIFFERENT replicas can differ in the last float bits (well inside
// the convergence threshold); this header makes the byte-identity
// guarantee checkable — the routed body is exactly what the named
// replica serves directly.
const HeaderServedBy = "X-Afq-Router-Replica"

// maxProxyBody bounds any request body the router buffers for
// forwarding (matches the replicas' own 1 MiB batch/body cap).
const maxProxyBody = 1 << 20

// ReplicaStatus is one replica's row in the /v1/router/healthz fleet
// view.
type ReplicaStatus struct {
	URL          string `json:"url"`
	Healthy      bool   `json:"healthy"`
	Generation   uint64 `json:"generation"`
	RatesVersion uint64 `json:"ratesVersion"`
	LastError    string `json:"lastError,omitempty"`
	LastCheckUTC string `json:"lastCheckUtc,omitempty"`
}

// RouterHealthResponse is the /v1/router/healthz payload: the fleet
// view. Status is "ok" while at least one replica is healthy.
type RouterHealthResponse struct {
	Status            string          `json:"status"`
	ReplicasHealthy   int             `json:"replicasHealthy"`
	ReplicasTotal     int             `json:"replicasTotal"`
	FloorGeneration   uint64          `json:"floorGeneration"`
	FloorRatesVersion uint64          `json:"floorRatesVersion"`
	Replicas          []ReplicaStatus `json:"replicas"`
}

// Handler returns the router's HTTP handler. Every route runs under
// the afq_router_* observability middleware (request IDs, traces,
// latency families).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(route string, h http.HandlerFunc) {
		mux.Handle(route, rt.robs.mw.Wrap(route, h))
	}
	handle("/v1/query", rt.handleSingle)
	handle("/v1/explain", rt.handleSingle)
	handle("/v1/audit", rt.handleSingle)
	handle("/v1/query/batch", rt.handleBatch)
	handle("/v1/reformulate", rt.handleReformulate)
	handle("/v1/profile/", rt.handleProfile)
	handle("/v1/corpus/swap", rt.handleSwap)
	handle("/v1/rates", rt.handleRatesRoute)
	handle("/v1/healthz", rt.handleReadProxy)
	handle("/v1/stats", rt.handleReadProxy)
	handle("/v1/router/healthz", rt.handleRouterHealth)
	mux.Handle("/metrics", rt.robs.reg.Handler())
	return mux
}

// ---- rendering (always the v1 envelope shape) ----

// writeJSON matches the replicas' encoder configuration exactly —
// byte-identity of reassembled bodies depends on it.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders a router-originated error in the v1 envelope.
func (rt *Router) writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	writeJSON(w, status, server.ErrorEnvelope{Error: server.ErrorInfo{
		Code:      code,
		Message:   msg,
		RequestID: obs.RequestIDFrom(r.Context()),
	}})
}

// forwardAPIError re-renders a replica's decoded *APIError for the
// client, preserving status, code, message, the replica's request ID
// (so the failure is traceable in the replica's logs) and — on a
// version conflict — the winning version.
func forwardAPIError(w http.ResponseWriter, e *server.APIError) {
	info := server.ErrorInfo{Code: e.Code, Message: e.Message, RequestID: e.RequestID}
	if e.IsConflict() && e.Version > 0 {
		writeJSON(w, e.Status, server.ConflictEnvelope{Error: info, Version: e.Version})
		return
	}
	writeJSON(w, e.Status, server.ErrorEnvelope{Error: info})
}

// hopByHop are the RFC 9110 connection-scoped headers a proxy must not
// forward in either direction.
var hopByHop = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade", "Content-Length", "Host",
}

// forwardHeaders copies h minus the hop-by-hop set.
func forwardHeaders(h http.Header) http.Header {
	out := make(http.Header, len(h))
	for k, vs := range h {
		out[k] = append([]string(nil), vs...)
	}
	for _, k := range hopByHop {
		out.Del(k)
	}
	return out
}

// copyResponse forwards a replica's raw answer verbatim.
func copyResponse(w http.ResponseWriter, resp *server.RawResponse) {
	hdr := w.Header()
	for k, vs := range forwardHeaders(resp.Header) {
		hdr[k] = vs
	}
	w.WriteHeader(resp.Status)
	_, _ = w.Write(resp.Body)
}

// readBody buffers a request body up to maxProxyBody so it can be
// replayed across failover attempts. ok=false means the 400 was
// already written.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) (body []byte, ok bool) {
	if r.Body == nil {
		return nil, true
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody+1))
	if err != nil {
		rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "reading body: "+err.Error())
		return nil, false
	}
	if len(body) > maxProxyBody {
		rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "body exceeds "+strconv.Itoa(maxProxyBody)+" bytes")
		return nil, false
	}
	if len(body) == 0 {
		return nil, true
	}
	return body, true
}

// effectiveFloor combines the router's coordinated floor with the
// client's asserted minimums from the version headers. Client
// assertions raise only THIS request's floor, never the fleet's — an
// arbitrary header must not be able to mark the whole fleet stale.
func (rt *Router) effectiveFloor(w http.ResponseWriter, r *http.Request) (gen, rv uint64, ok bool) {
	gen, rv = rt.Floor()
	for _, h := range []struct {
		name string
		dst  *uint64
	}{{HeaderMinGeneration, &gen}, {HeaderMinRatesVersion, &rv}} {
		raw := r.Header.Get(h.name)
		if raw == "" {
			continue
		}
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument,
				h.name+" must be an unsigned integer")
			return 0, 0, false
		}
		if v > *h.dst {
			*h.dst = v
		}
	}
	return gen, rv, true
}

// writeNoReplica renders the two terminal routing failures: every live
// replica below the floor is the fleet-level version conflict (the
// state the client demands exists but has not propagated — retryable,
// like any lost CAS race); no live replica at all is a shed.
func (rt *Router) writeNoReplica(w http.ResponseWriter, r *http.Request, sawStale bool) {
	if sawStale {
		rt.writeError(w, r, http.StatusConflict, server.CodeVersionConflict,
			"no healthy replica has reached the requested (generation, ratesVersion) floor; retry")
		return
	}
	w.Header().Set("Retry-After", "1")
	rt.writeError(w, r, http.StatusServiceUnavailable, server.CodeShed, "no healthy replica")
}

// propagationContext builds the context for fleet-internal write
// propagation. It is detached from the inbound request: once a write
// has landed anywhere, a departing client must not be able to abort
// the propagation halfway and split the fleet.
func (rt *Router) propagationContext() (context.Context, context.CancelFunc) {
	budget := 2 * time.Minute
	if rt.timeout > 0 {
		budget = 4 * rt.timeout
	}
	return context.WithTimeout(context.Background(), budget)
}

// ---- /v1/query, /v1/explain and /v1/audit ----

// handleSingle proxies one request to the rendezvous owner of its
// canonical term set AND ranking mode (hub vectors cache independently
// of authority ones, so the two directions of a term set may own
// different replicas), failing over down the rendezvous order on
// transport errors and 5xx answers. mode and budget are validated
// through the replicas' own shared table (server.ValidateReadParams) —
// same invalid_argument bytes, no proxy hop spent — and then forwarded
// byte-faithfully; the replica's response is forwarded byte-identically
// and the router adds nothing on success.
func (rt *Router) handleSingle(w http.ResponseWriter, r *http.Request) {
	if pid := r.URL.Query().Get("profile"); pid != "" {
		// Personalized traffic routes by PROFILE ID to the one replica
		// holding the record — owner-only, no failover (profile.go).
		rt.handleProfileRead(w, r, pid)
		return
	}
	rp0, err := server.ValidateReadParams(r.URL.Query())
	if err != nil {
		rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, err.Error())
		return
	}
	floorGen, floorRV, ok := rt.effectiveFloor(w, r)
	if !ok {
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	tr := obs.TraceFrom(r.Context())
	key := routeKeyMode(r.URL.Query().Get("q"), rp0.Mode)
	hdr := forwardHeaders(r.Header)

	var last *server.RawResponse
	var lastFrom *replica
	sawStale, attempts := false, 0
	for _, rp := range rt.rendezvousRank(key) {
		if !rp.up.Load() {
			continue
		}
		if !eligible(rp, floorGen, floorRV) {
			rt.robs.staleSkips.Inc()
			sawStale = true
			continue
		}
		if attempts > 0 {
			rt.robs.failovers.Inc()
		}
		attempts++
		tr.Eventf("route", "replica=%s key=%q", rp.url, key)
		resp, err := rp.client.DoRaw(r.Context(), r.Method, r.URL.RequestURI(), hdr, body)
		if err != nil {
			if r.Context().Err() != nil {
				return // client gone; nothing to answer
			}
			rp.setDown(err)
			tr.Eventf("failover", "replica=%s err=%v", rp.url, err)
			continue
		}
		if resp.Status >= 500 {
			// A straggling or overloaded replica (shed, deadline, crash
			// handler) — another replica may well answer; keep this
			// response to forward only if every alternative also fails.
			last, lastFrom = resp, rp
			tr.Eventf("failover", "replica=%s status=%d", rp.url, resp.Status)
			continue
		}
		rt.observeAnswer(rp, r.URL.Path, resp)
		rt.robs.routed.With(rp.url).Inc()
		w.Header().Set(HeaderServedBy, rp.url)
		copyResponse(w, resp)
		return
	}
	if last != nil {
		rt.robs.routed.With(lastFrom.url).Inc()
		w.Header().Set(HeaderServedBy, lastFrom.url)
		copyResponse(w, last)
		return
	}
	rt.writeNoReplica(w, r, sawStale)
}

// observeAnswer harvests fleet knowledge from a successful /v1/query
// answer: the replica proved it serves (generation, version), which
// also raises the router's floor if a write happened behind its back.
func (rt *Router) observeAnswer(rp *replica, path string, resp *server.RawResponse) {
	if resp.Status != http.StatusOK || path != "/v1/query" {
		return
	}
	var probe struct {
		Version    uint64 `json:"version"`
		Generation uint64 `json:"generation"`
	}
	if json.Unmarshal(resp.Body, &probe) == nil && probe.Generation > 0 {
		rp.observe(probe.Generation, probe.Version)
		rt.raiseFloor(probe.Generation, probe.Version)
	}
}

// ---- /v1/query/batch ----

// batchGroup is one replica's share of a batch: the original item
// indices it owns, in request order.
type batchGroup struct {
	rp   *replica
	idxs []int
	resp *server.BatchQueryResponse
	err  error
}

// handleBatch validates the panel under exactly the replicas' rules,
// splits it across rendezvous owners, fans the sub-batches out
// concurrently and merges the answers back into request order. When a
// concurrent write lands mid-fan-out and the groups answer at
// different versions, the router raises its floor, resyncs and retries
// the whole panel — every answer in the merged response comes from ONE
// (generation, ratesVersion).
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		rt.writeError(w, r, http.StatusMethodNotAllowed, server.CodeInvalidArgument, "POST required")
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req server.BatchQueryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "bad JSON body: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "queries required")
		return
	}
	if len(req.Queries) > server.MaxBatchQueries {
		rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument,
			strconv.Itoa(len(req.Queries))+" queries exceeds the batch limit of "+strconv.Itoa(server.MaxBatchQueries))
		return
	}
	// Validate every item BEFORE splitting, under the replicas' exact
	// rules and messages — a replica-side 400 would name sub-batch
	// indices, not the client's.
	keys := make([]string, len(req.Queries))
	for i, it := range req.Queries {
		at := "queries[" + strconv.Itoa(i) + "]: "
		if strings.TrimSpace(it.Q) == "" {
			rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, at+"q required")
			return
		}
		if it.K < 0 || it.K > 1000 {
			rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, at+"k must be in 1..1000")
			return
		}
		// mode/budget run the replicas' own shared validation table, so
		// the rejection bytes match parseBatch's exactly.
		irp, err := server.ValidateItemParams(it.Mode, it.Budget)
		if err != nil {
			rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, at+err.Error())
			return
		}
		q := ir.ParseQuery(it.Q)
		if len(q.Terms()) == 0 {
			rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, at+"q contains no indexable terms")
			return
		}
		keys[i] = routeKeyMode(it.Q, irp.Mode)
	}
	floorGen, floorRV, ok := rt.effectiveFloor(w, r)
	if !ok {
		return
	}

	tr := obs.TraceFrom(r.Context())
	sawStale, exhausted := false, true
	for attempt := 0; attempt < 3; attempt++ {
		groups, stale, planned := rt.planBatch(req.Queries, keys, floorGen, floorRV)
		sawStale = sawStale || stale
		if !planned {
			exhausted = false
			break
		}
		tr.Eventf("fanout", "attempt=%d groups=%d", attempt, len(groups))

		var wg sync.WaitGroup
		for _, g := range groups {
			wg.Add(1)
			go func(g *batchGroup) {
				defer wg.Done()
				sub := server.BatchQueryRequest{Queries: make([]server.BatchQueryItem, len(g.idxs))}
				for j, idx := range g.idxs {
					sub.Queries[j] = req.Queries[idx]
				}
				g.resp, g.err = g.rp.client.QueryBatch(r.Context(), sub)
			}(g)
		}
		wg.Wait()

		retry := false
		for _, g := range groups {
			if g.err == nil {
				continue
			}
			if apiErr, isAPI := g.err.(*server.APIError); isAPI {
				// A real replica answer (conflict, shed, deadline):
				// forward it rather than guessing — but a replica names
				// SUB-batch item indices, so remap them onto the client's
				// original panel first.
				e := *apiErr
				e.Message = remapBatchIndices(e.Message, g.idxs)
				forwardAPIError(w, &e)
				return
			}
			if r.Context().Err() != nil {
				return
			}
			g.rp.setDown(g.err)
			rt.robs.failovers.Inc()
			tr.Eventf("failover", "replica=%s err=%v", g.rp.url, g.err)
			retry = true
		}
		if retry {
			continue // re-plan around the downed replicas
		}

		// Version coherence: a write that landed mid-fan-out leaves
		// groups at different versions. Raise the floor to the highest
		// state any group answered at, resync the laggards, and retry the
		// whole panel against the new floor.
		maxGen, maxRV := groups[0].resp.Generation, groups[0].resp.Version
		coherent := true
		for _, g := range groups {
			g.rp.observe(g.resp.Generation, g.resp.Version)
			if g.resp.Generation != maxGen || g.resp.Version != maxRV {
				coherent = false
			}
			if g.resp.Generation > maxGen {
				maxGen = g.resp.Generation
			}
			if g.resp.Version > maxRV {
				maxRV = g.resp.Version
			}
		}
		rt.raiseFloor(maxGen, maxRV)
		if !coherent {
			rt.robs.staleSkips.Inc()
			tr.Eventf("incoherent", "attempt=%d gen=%d rv=%d", attempt, maxGen, maxRV)
			if floorGen < maxGen {
				floorGen = maxGen
			}
			if floorRV < maxRV {
				floorRV = maxRV
			}
			rt.resync(r.Context())
			sawStale = true
			continue
		}

		resp := server.BatchQueryResponse{
			Version:    maxRV,
			Generation: maxGen,
			Answers:    make([]server.QueryResponse, len(req.Queries)),
		}
		for _, g := range groups {
			for j, idx := range g.idxs {
				resp.Answers[idx] = g.resp.Answers[j]
			}
			rt.robs.routed.With(g.rp.url).Inc()
		}
		rt.robs.batchGroups.Observe(float64(len(groups)))
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if sawStale {
		rt.writeError(w, r, http.StatusConflict, server.CodeVersionConflict,
			"fleet versions diverged across the batch fan-out; retry")
		return
	}
	if exhausted {
		// All 3 attempts burned on mid-flight transport failures — healthy
		// replicas may well remain, so don't claim "no healthy replica".
		rt.writeError(w, r, http.StatusBadGateway, server.CodeInternal,
			"batch fan-out failed after 3 attempts; replicas kept failing mid-flight — check /v1/router/healthz and retry")
		return
	}
	rt.writeNoReplica(w, r, false)
}

// remapBatchIndices rewrites "queries[N]" item references in a replica
// sub-batch error message from sub-batch positions to the client's
// original panel indices (idxs maps sub position → original index).
// Unparseable or out-of-range references pass through untouched.
func remapBatchIndices(msg string, idxs []int) string {
	const marker = "queries["
	var b strings.Builder
	for {
		i := strings.Index(msg, marker)
		if i < 0 {
			b.WriteString(msg)
			return b.String()
		}
		b.WriteString(msg[:i+len(marker)])
		msg = msg[i+len(marker):]
		j := strings.IndexByte(msg, ']')
		if j < 0 {
			b.WriteString(msg)
			return b.String()
		}
		if n, err := strconv.Atoi(msg[:j]); err == nil && n >= 0 && n < len(idxs) {
			b.WriteString(strconv.Itoa(idxs[n]))
		} else {
			b.WriteString(msg[:j])
		}
		msg = msg[j:]
	}
}

// planBatch assigns every item to the first eligible replica in its
// key's rendezvous order. planned=false means at least one item has no
// eligible replica (stale reports whether a live-but-behind replica
// was the reason).
func (rt *Router) planBatch(items []server.BatchQueryItem, keys []string, floorGen, floorRV uint64) (groups []*batchGroup, stale, planned bool) {
	byReplica := make(map[*replica]*batchGroup)
	for i := range items {
		var owner *replica
		for _, rp := range rt.rendezvousRank(keys[i]) {
			if !rp.up.Load() {
				continue
			}
			if !eligible(rp, floorGen, floorRV) {
				stale = true
				continue
			}
			owner = rp
			break
		}
		if owner == nil {
			return nil, stale, false
		}
		g := byReplica[owner]
		if g == nil {
			g = &batchGroup{rp: owner}
			byReplica[owner] = g
			groups = append(groups, g)
		}
		g.idxs = append(g.idxs, i)
	}
	return groups, stale, true
}

// ---- /v1/reformulate ----

// handleReformulate applies the reformulation on the query's rendezvous
// owner, then — before answering — replays the resulting rate vector
// onto every other live replica with CAS tokens, so the fleet advances
// through the same version sequence in lockstep. The owner's response
// is forwarded byte-identically. There is NO failover after dispatch
// AND no transport-level retry (DoRawOnce, not the retrying DoRaw):
// reformulation is not idempotent, and a transport failure leaves the
// owner's state unknown — re-sending could apply the feedback twice.
func (rt *Router) handleReformulate(w http.ResponseWriter, r *http.Request) {
	if pid := r.URL.Query().Get("profile"); pid != "" {
		// Profile-scoped training mutates only the owner's local record —
		// no global version advance, so no writeMu and no propagation.
		rt.handleProfileTrain(w, r, pid)
		return
	}
	rt.writeMu.Lock()
	defer rt.writeMu.Unlock()

	floorGen, floorRV, ok := rt.effectiveFloor(w, r)
	if !ok {
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	tr := obs.TraceFrom(r.Context())
	key := routeKey(r.URL.Query().Get("q"))

	var owner *replica
	sawStale := false
	for _, rp := range rt.rendezvousRank(key) {
		if !rp.up.Load() {
			continue
		}
		if !eligible(rp, floorGen, floorRV) {
			rt.robs.staleSkips.Inc()
			sawStale = true
			continue
		}
		owner = rp
		break
	}
	if owner == nil {
		rt.writeNoReplica(w, r, sawStale)
		return
	}
	tr.Eventf("route", "replica=%s key=%q", owner.url, key)
	resp, err := owner.client.DoRawOnce(r.Context(), r.Method, r.URL.RequestURI(), forwardHeaders(r.Header), body)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		owner.setDown(err)
		rt.writeError(w, r, http.StatusBadGateway, server.CodeInternal,
			"replica failed mid-reformulation; its state is unknown — check /v1/router/healthz and retry")
		return
	}

	switch resp.Status {
	case http.StatusOK:
		var rr server.ReformulateResponse
		if json.Unmarshal(resp.Body, &rr) == nil && rr.Version > 0 {
			owner.observe(owner.gen.Load(), rr.Version)
			rt.propagateRates(owner, tr)
		}
	case http.StatusConflict:
		// Someone published past the owner (a direct write behind the
		// router's back): harvest the winning version so the floor and
		// the next resync converge on it.
		var env server.ConflictEnvelope
		if json.Unmarshal(resp.Body, &env) == nil && env.Version > 0 {
			owner.observe(owner.gen.Load(), env.Version)
			rt.raiseFloor(owner.gen.Load(), env.Version)
		}
	}
	rt.robs.routed.With(owner.url).Inc()
	w.Header().Set(HeaderServedBy, owner.url)
	copyResponse(w, resp)
}

// propagateRates reads the owner's just-published rates and replays
// them onto every other live replica (catch-up publishing until each
// reaches the owner's version). Callers hold writeMu.
func (rt *Router) propagateRates(owner *replica, tr *obs.Trace) {
	ctx, cancel := rt.propagationContext()
	defer cancel()
	rates, err := owner.client.Rates(ctx)
	if err != nil {
		// Propagation is best-effort here: the health loop's resync
		// finishes the job once the owner answers again.
		tr.Eventf("propagate", "rates read failed: %v", err)
		return
	}
	gen := owner.gen.Load()
	owner.observe(gen, rates.Version)
	rt.raiseFloor(gen, rates.Version)
	for _, rp := range rt.replicas {
		if rp == owner || !rp.up.Load() {
			continue
		}
		rt.catchUpLocked(ctx, rp, rates.Vector, gen, rates.Version)
	}
	tr.Eventf("propagate", "gen=%d version=%d", gen, rates.Version)
}

// ---- /v1/corpus/swap ----

// handleSwap fans the snapshot swap out to every live replica. All
// replicas swapping is the happy path; a partial result still answers
// 200 (the floor rises to the new generation, so the failed replicas
// are excluded from serving until realigned) and the divergence is
// visible in /v1/router/healthz.
func (rt *Router) handleSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		rt.writeError(w, r, http.StatusMethodNotAllowed, server.CodeInvalidArgument, "POST required")
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req server.CorpusSwapRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "bad JSON body: "+err.Error())
		return
	}

	rt.writeMu.Lock()
	defer rt.writeMu.Unlock()
	ctx, cancel := rt.propagationContext()
	defer cancel()
	tr := obs.TraceFrom(r.Context())

	type swapResult struct {
		rp   *replica
		resp *server.CorpusSwapResponse
		err  error
	}
	var live []*replica
	for _, rp := range rt.replicas {
		if rp.up.Load() {
			live = append(live, rp)
		}
	}
	if len(live) == 0 {
		rt.writeNoReplica(w, r, false)
		return
	}
	results := make([]swapResult, len(live))
	var wg sync.WaitGroup
	for i, rp := range live {
		wg.Add(1)
		go func(i int, rp *replica) {
			defer wg.Done()
			resp, err := rp.client.CorpusSwap(ctx, req)
			results[i] = swapResult{rp: rp, resp: resp, err: err}
		}(i, rp)
	}
	wg.Wait()

	var first *server.CorpusSwapResponse
	var firstErr *server.APIError
	for _, res := range results {
		if res.err == nil {
			rt.robs.swaps.Inc()
			res.rp.observe(res.resp.Generation, res.resp.RatesVersion)
			tr.Eventf("swap", "replica=%s gen=%d", res.rp.url, res.resp.Generation)
			if first == nil {
				first = res.resp
			}
			continue
		}
		if apiErr, isAPI := res.err.(*server.APIError); isAPI {
			res.rp.noteErr("swap rejected: " + apiErr.Error())
			// A conflict means the replica is on a different generation
			// than assumed — refresh its view so the floor gating is
			// accurate.
			if h, herr := res.rp.client.Health(ctx); herr == nil {
				res.rp.observe(h.Generation, h.RatesVersion)
			}
			if firstErr == nil {
				firstErr = apiErr
			}
			continue
		}
		res.rp.setDown(res.err)
		tr.Eventf("swap", "replica=%s err=%v", res.rp.url, res.err)
	}
	if first == nil {
		if firstErr != nil {
			forwardAPIError(w, firstErr)
			return
		}
		rt.writeError(w, r, http.StatusBadGateway, server.CodeInternal,
			"no replica completed the swap; check /v1/router/healthz")
		return
	}
	// The new generation is the fleet's floor now: replicas that missed
	// the swap are ineligible until an operator realigns them.
	rt.raiseFloor(first.Generation, first.RatesVersion)
	writeJSON(w, http.StatusOK, *first)
}

// ---- /v1/rates ----

// handleRatesRoute dispatches /v1/rates by method, like the replicas
// do: GET reads (proxied to one replica), POST publishes fleet-wide.
func (rt *Router) handleRatesRoute(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		rt.handleRatesPublish(w, r)
		return
	}
	rt.handleReadProxy(w, r)
}

// handleRatesPublish applies a client-supplied rate vector to the
// whole fleet: CAS-publish on one replica first (so a version conflict
// is detected before anything propagates), then catch-up publish to
// the rest — the same propagation path /v1/reformulate uses.
func (rt *Router) handleRatesPublish(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req server.RatesPublishRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "bad JSON body: "+err.Error())
		return
	}
	if len(req.Vector) == 0 {
		rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "vector required")
		return
	}

	rt.writeMu.Lock()
	defer rt.writeMu.Unlock()
	floorGen, floorRV, ok := rt.effectiveFloor(w, r)
	if !ok {
		return
	}
	var owner *replica
	sawStale := false
	for _, rp := range rt.replicas {
		if !rp.up.Load() {
			continue
		}
		if !eligible(rp, floorGen, floorRV) {
			sawStale = true
			continue
		}
		owner = rp
		break
	}
	if owner == nil {
		rt.writeNoReplica(w, r, sawStale)
		return
	}
	resp, err := owner.client.RatesPublish(r.Context(), req)
	if err != nil {
		if apiErr, isAPI := err.(*server.APIError); isAPI {
			if apiErr.IsConflict() {
				rt.robs.ratesConflicts.Inc()
				if apiErr.Version > 0 {
					owner.observe(owner.gen.Load(), apiErr.Version)
					rt.raiseFloor(owner.gen.Load(), apiErr.Version)
				}
			}
			forwardAPIError(w, apiErr)
			return
		}
		if r.Context().Err() != nil {
			return
		}
		owner.setDown(err)
		rt.writeError(w, r, http.StatusBadGateway, server.CodeInternal,
			"replica failed mid-publish; its state is unknown — check /v1/router/healthz and retry")
		return
	}
	rt.robs.ratesPublishes.Inc()
	rt.propagateRates(owner, obs.TraceFrom(r.Context()))
	writeJSON(w, http.StatusOK, *resp)
}

// ---- reads proxied to one replica (/v1/healthz, /v1/stats, GET /v1/rates) ----

// handleReadProxy forwards a cheap read to the first eligible replica.
// /v1/healthz and /v1/stats fall back to any live replica when none is
// floor-eligible — a behind replica's healthz is still a real healthz —
// but GET /v1/rates does NOT: a client asserting a minimum version must
// get the 409 read-your-writes conflict, never a stale vector.
func (rt *Router) handleReadProxy(w http.ResponseWriter, r *http.Request) {
	floorGen, floorRV, ok := rt.effectiveFloor(w, r)
	if !ok {
		return
	}
	var target, anyLive *replica
	sawStale := false
	for _, rp := range rt.replicas {
		if !rp.up.Load() {
			continue
		}
		if anyLive == nil {
			anyLive = rp
		}
		if eligible(rp, floorGen, floorRV) {
			target = rp
			break
		}
		sawStale = true
	}
	if target == nil && r.URL.Path != "/v1/rates" {
		target = anyLive
	}
	if target == nil {
		rt.writeNoReplica(w, r, sawStale)
		return
	}
	resp, err := target.client.DoRaw(r.Context(), r.Method, r.URL.RequestURI(), forwardHeaders(r.Header), nil)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		target.setDown(err)
		rt.writeError(w, r, http.StatusBadGateway, server.CodeInternal, "replica unreachable: "+err.Error())
		return
	}
	rt.robs.routed.With(target.url).Inc()
	w.Header().Set(HeaderServedBy, target.url)
	copyResponse(w, resp)
}

// ---- /v1/router/healthz ----

// handleRouterHealth reports the fleet view: per-replica health and
// versions plus the coordinated floor. 200 while at least one replica
// can serve, 503 otherwise — a load balancer fronting several routers
// can health-check this.
func (rt *Router) handleRouterHealth(w http.ResponseWriter, r *http.Request) {
	resp := RouterHealthResponse{
		ReplicasTotal: len(rt.replicas),
		Replicas:      make([]ReplicaStatus, len(rt.replicas)),
	}
	for i, rp := range rt.replicas {
		resp.Replicas[i] = rp.status()
		if resp.Replicas[i].Healthy {
			resp.ReplicasHealthy++
		}
	}
	resp.FloorGeneration, resp.FloorRatesVersion = rt.Floor()
	status := http.StatusOK
	resp.Status = "ok"
	if resp.ReplicasHealthy == 0 {
		status = http.StatusServiceUnavailable
		resp.Status = "down"
	}
	writeJSON(w, status, resp)
}
