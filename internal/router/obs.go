package router

import (
	"io"
	"time"

	"authorityflow/internal/obs"
)

// ObsOptions configure the router's observability, mirroring the
// server's: the zero value serves /metrics and request IDs and merely
// disables the access log and slow-request log.
type ObsOptions struct {
	// Registry receives the router's metric families. Nil means a fresh
	// private registry (exposed at /metrics either way).
	Registry *obs.Registry
	// AccessLog, when non-nil, receives one structured JSON line per
	// routed request.
	AccessLog io.Writer
	// SlowLog receives one JSON line — with the request's span events,
	// which for the router name the replicas tried — per request slower
	// than SlowThreshold. Nil falls back to AccessLog.
	SlowLog io.Writer
	// SlowThreshold is the slow-request latency threshold; 0 disables
	// slow-request logging.
	SlowThreshold time.Duration
}

// routerObs bundles the router's metric families and HTTP middleware.
// Families are namespaced afq_router_* so a shared registry can
// co-host a replica's afq_* families without collision.
type routerObs struct {
	reg *obs.Registry
	mw  *obs.Middleware

	// routed counts proxied requests by the replica that answered.
	routed *obs.CounterVec
	// failovers counts single-request retries on the next replica in
	// rendezvous order after the preferred one failed.
	failovers *obs.Counter
	// staleSkips counts replicas skipped during routing because they
	// were below the effective version floor.
	staleSkips *obs.Counter
	// healthChecks counts health-sweep probes by outcome (ok|error).
	healthChecks *obs.CounterVec
	// ratesPublishes / ratesConflicts count fleet-propagation POST
	// /v1/rates calls and the CAS conflicts they hit.
	ratesPublishes *obs.Counter
	ratesConflicts *obs.Counter
	// swaps counts replica corpus swaps the router fanned out
	// successfully.
	swaps *obs.Counter
	// batchGroups observes how many replica sub-batches each
	// /v1/query/batch fanned out to.
	batchGroups *obs.Histogram

	// Fleet-view gauges, refreshed on every /metrics gather.
	replicaUp    *obs.GaugeVec
	replicaGen   *obs.GaugeVec
	replicaRV    *obs.GaugeVec
	floorGen     *obs.Gauge
	floorRV      *obs.Gauge
	healthyCount *obs.Gauge
}

// newRouterObs registers every afq_router_* family and wires the
// fleet-view gauges to refresh from rt on gather.
func newRouterObs(o ObsOptions, rt *Router) *routerObs {
	reg := o.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ro := &routerObs{reg: reg}
	ro.mw = obs.NewMiddleware(reg, "afq_router")
	ro.mw.AccessLog = obs.NewLogger(o.AccessLog)
	slow := o.SlowLog
	if slow == nil {
		slow = o.AccessLog
	}
	ro.mw.SlowLog = obs.NewLogger(slow)
	ro.mw.SlowThreshold = o.SlowThreshold

	ro.routed = reg.NewCounterVec("afq_router_routed_total",
		"Requests proxied to a replica, labelled by the replica that answered.", "replica")
	ro.failovers = reg.NewCounter("afq_router_failover_total",
		"Single-request attempts retried on the next replica in rendezvous order after a transport failure.")
	ro.staleSkips = reg.NewCounter("afq_router_stale_skips_total",
		"Replicas skipped during routing because they were below the effective (generation, ratesVersion) floor.")
	ro.healthChecks = reg.NewCounterVec("afq_router_health_checks_total",
		"Health-sweep probes by outcome.", "outcome")
	ro.healthChecks.With("ok")
	ro.healthChecks.With("error")
	ro.ratesPublishes = reg.NewCounter("afq_router_rates_publishes_total",
		"Fleet-propagation POST /v1/rates calls that landed (reformulate replay, fan-out and resync).")
	ro.ratesConflicts = reg.NewCounter("afq_router_rates_publish_conflicts_total",
		"CAS conflicts hit while propagating rate vectors across the fleet.")
	ro.swaps = reg.NewCounter("afq_router_corpus_swaps_total",
		"Replica corpus swaps the router fanned out successfully (one count per replica swapped).")
	ro.batchGroups = reg.NewHistogram("afq_router_batch_groups",
		"Replica sub-batches per /v1/query/batch fan-out.",
		[]float64{1, 2, 3, 4, 6, 8, 12, 16})

	ro.replicaUp = reg.NewGaugeVec("afq_router_replica_up",
		"1 when the replica passed its last health probe, else 0.", "replica")
	ro.replicaGen = reg.NewGaugeVec("afq_router_replica_generation",
		"Highest corpus generation the router has observed on the replica.", "replica")
	ro.replicaRV = reg.NewGaugeVec("afq_router_replica_rates_version",
		"Highest rates version the router has observed on the replica.", "replica")
	ro.floorGen = reg.NewGauge("afq_router_floor_generation",
		"Corpus-generation floor: replicas below it are ineligible to serve.")
	ro.floorRV = reg.NewGauge("afq_router_floor_rates_version",
		"Rates-version floor: replicas below it are ineligible to serve.")
	ro.healthyCount = reg.NewGauge("afq_router_replicas_healthy",
		"Replicas currently marked healthy.")
	reg.OnGather(func() {
		healthy := 0
		for _, rp := range rt.replicas {
			up := 0.0
			if rp.up.Load() {
				up = 1
				healthy++
			}
			ro.replicaUp.With(rp.url).Set(up)
			ro.replicaGen.With(rp.url).Set(float64(rp.gen.Load()))
			ro.replicaRV.With(rp.url).Set(float64(rp.rv.Load()))
		}
		fg, frv := rt.Floor()
		ro.floorGen.Set(float64(fg))
		ro.floorRV.Set(float64(frv))
		ro.healthyCount.Set(float64(healthy))
	})
	return ro
}
