// Package router implements the scale-out serving tier: a thin,
// stdlib-only coordinator that fronts N replica afqserver processes
// through the typed v1 client (internal/server.Client) and exposes the
// SAME /v1 surface, so clients cannot tell a fleet from one replica.
//
// # Routing
//
// Single /v1/query and /v1/explain requests route by RENDEZVOUS
// HASHING of the canonical query term set: every (key, replica) pair
// is hashed and the highest hash owns the key. The same keywords
// always land on the same replica, so each replica's term-vector cache
// stays hot on its slice of the vocabulary; when a replica fails, only
// its keys move (to their second-highest replica) and the rest of the
// fleet's caches are undisturbed. /v1/query/batch panels split
// deterministically by the same ownership function, fan out
// concurrently, and merge into one response preserving request order.
//
// # Coordinated versions
//
// Writes propagate fleet-wide through the version-CAS machinery the
// single node already has. /v1/reformulate applies feedback on the
// owner replica, reads back the resulting rate vector, and replays it
// onto every other replica via POST /v1/rates with each replica's
// current version as the CAS token — so all replicas advance through
// the same (generation, ratesVersion) sequence in lockstep.
// /v1/corpus/swap fans the snapshot swap out to every replica. The
// router tracks a monotonic FLOOR (generation, ratesVersion) — the
// highest state it has coordinated or observed — and serves a query
// only from replicas at ≥ max(floor, the client's observed versions
// from the X-Afq-Min-Generation / X-Afq-Min-Rates-Version headers).
// When no live replica reaches the floor the request gets the same
// 409 version_conflict the single node answers on a lost CAS race —
// the single-node optimistic-concurrency contract, generalized.
//
// Writes are serialized by a router-level mutex: the router is the
// fleet's serialization point (run exactly one), which is what makes
// per-replica version counters comparable across the fleet.
//
// # Failure modes
//
// A health-check loop probes /v1/healthz on every replica: transport
// failures mark a replica down (its keys re-rendezvous onto the
// remaining replicas) and recovery marks it up again. Replicas whose
// rates version falls behind the floor are resynced by replaying the
// current vector from an up-to-date replica; replicas behind on
// GENERATION cannot be resynced from the router (it holds no
// snapshots) and stay excluded from serving until an operator swap
// realigns them. With no healthy replica at all the router sheds with
// 503 + Retry-After.
package router

import (
	"context"
	"errors"
	"hash/fnv"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"authorityflow/internal/core"
	"authorityflow/internal/ir"
	"authorityflow/internal/obs"
	"authorityflow/internal/server"
)

// DefaultTimeout bounds each proxied request attempt when Options
// leaves Timeout zero.
const DefaultTimeout = 30 * time.Second

// DefaultHealthInterval is the background health-sweep period when
// Options leaves HealthInterval zero.
const DefaultHealthInterval = 2 * time.Second

// Options configure a Router.
type Options struct {
	// Timeout bounds every proxied request attempt (0 = DefaultTimeout;
	// negative = no per-attempt timeout beyond the inbound request's own
	// context).
	Timeout time.Duration
	// Retries is how many extra attempts a replica client makes after a
	// transport-level failure before the router fails over (default 1).
	Retries int
	// HealthInterval is the background health-sweep period
	// (0 = DefaultHealthInterval; negative disables the loop — tests
	// drive CheckNow explicitly).
	HealthInterval time.Duration
	// HTTPClient is the shared transport of every replica client; nil
	// uses a fresh http.Client (connection pooling across replicas).
	HTTPClient *http.Client
	// Obs configures the router's observability (shared registry,
	// access/slow logs, pprof). The zero value serves /metrics and
	// request IDs from a private registry.
	Obs ObsOptions
}

// replica is one afqserver behind the router: its typed client plus
// the router's last knowledge of its state. Health and version fields
// are atomics — the health loop, the write paths and every proxied
// answer update them concurrently.
type replica struct {
	url    string
	client *server.Client

	up  atomic.Bool
	gen atomic.Uint64 // highest corpus generation observed
	rv  atomic.Uint64 // highest rates version observed

	mu        sync.Mutex
	lastErr   string
	lastCheck time.Time
}

// observe raises the replica's known (generation, ratesVersion) —
// monotonically, so a stale health probe can never roll newer
// knowledge back.
func (rp *replica) observe(gen, rv uint64) {
	raiseMax(&rp.gen, gen)
	raiseMax(&rp.rv, rv)
}

// raiseMax lifts an atomic to at least v.
func raiseMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// setDown marks the replica unhealthy with the error that demoted it.
func (rp *replica) setDown(err error) {
	rp.up.Store(false)
	rp.mu.Lock()
	rp.lastErr = err.Error()
	rp.lastCheck = time.Now()
	rp.mu.Unlock()
}

// setUp marks the replica healthy.
func (rp *replica) setUp() {
	rp.up.Store(true)
	rp.mu.Lock()
	rp.lastErr = ""
	rp.lastCheck = time.Now()
	rp.mu.Unlock()
}

// noteErr records a condition without demoting the replica (e.g. a
// generation lag the health loop cannot repair).
func (rp *replica) noteErr(msg string) {
	rp.mu.Lock()
	rp.lastErr = msg
	rp.mu.Unlock()
}

// status snapshots the replica for /v1/router/healthz.
func (rp *replica) status() ReplicaStatus {
	rp.mu.Lock()
	lastErr, lastCheck := rp.lastErr, rp.lastCheck
	rp.mu.Unlock()
	return ReplicaStatus{
		URL:          rp.url,
		Healthy:      rp.up.Load(),
		Generation:   rp.gen.Load(),
		RatesVersion: rp.rv.Load(),
		LastError:    lastErr,
		LastCheckUTC: lastCheck.UTC().Format(time.RFC3339Nano),
	}
}

// Router is the coordinator. Construct with New; it is safe for
// unbounded concurrent use. Run exactly one router per fleet — it is
// the serialization point that keeps replica version counters
// comparable.
type Router struct {
	replicas []*replica
	timeout  time.Duration
	robs     *routerObs

	// floor is the highest (generation, ratesVersion) the router has
	// coordinated or observed: queries are served only by replicas at or
	// above it. Both components only ever rise.
	floorGen atomic.Uint64
	floorRV  atomic.Uint64

	// writeMu serializes the fleet's write paths (reformulate
	// propagation, rates publication, corpus swaps, resync) so
	// concurrent writes cannot interleave their fan-outs and split the
	// fleet's version sequence.
	writeMu sync.Mutex

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds a router over the given replica base URLs (e.g.
// "http://10.0.0.1:8080"). It runs one synchronous health sweep before
// returning — the router starts with a populated fleet view — and then
// keeps sweeping in the background every HealthInterval.
func New(replicaURLs []string, o Options) (*Router, error) {
	if len(replicaURLs) == 0 {
		return nil, errors.New("router: at least one replica URL required")
	}
	timeout := o.Timeout
	switch {
	case timeout == 0:
		timeout = DefaultTimeout
	case timeout < 0:
		timeout = 0
	}
	retries := o.Retries
	if retries == 0 {
		retries = 1
	}
	hc := o.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	rt := &Router{
		timeout: timeout,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	seen := make(map[string]struct{}, len(replicaURLs))
	for _, u := range replicaURLs {
		c := server.NewClient(u, hc,
			server.WithRequestTimeout(timeout),
			server.WithRetries(retries))
		if _, dup := seen[c.BaseURL()]; dup {
			return nil, errors.New("router: duplicate replica URL " + c.BaseURL())
		}
		seen[c.BaseURL()] = struct{}{}
		rt.replicas = append(rt.replicas, &replica{url: c.BaseURL(), client: c})
	}
	rt.robs = newRouterObs(o.Obs, rt)

	interval := o.HealthInterval
	if interval == 0 {
		interval = DefaultHealthInterval
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeoutOr(timeout, 5*time.Second))
	rt.CheckNow(ctx)
	cancel()
	if interval > 0 {
		go rt.healthLoop(interval)
	} else {
		close(rt.done)
	}
	return rt, nil
}

// timeoutOr returns t unless it is 0 (no timeout configured), in which
// case fallback bounds the initial sweep.
func timeoutOr(t, fallback time.Duration) time.Duration {
	if t > 0 {
		return t
	}
	return fallback
}

// Close stops the health loop. It does not touch the replicas.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.done
}

// Metrics exposes the router's metric registry.
func (rt *Router) Metrics() *obs.Registry { return rt.robs.reg }

// Floor returns the router's current coordinated floor.
func (rt *Router) Floor() (generation, ratesVersion uint64) {
	return rt.floorGen.Load(), rt.floorRV.Load()
}

// raiseFloor lifts the coordinated floor (each axis monotonically).
func (rt *Router) raiseFloor(gen, rv uint64) {
	raiseMax(&rt.floorGen, gen)
	raiseMax(&rt.floorRV, rv)
}

// healthLoop sweeps the fleet until Close.
func (rt *Router) healthLoop(interval time.Duration) {
	defer close(rt.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), timeoutOr(rt.timeout, 5*time.Second))
			rt.CheckNow(ctx)
			cancel()
		}
	}
}

// CheckNow runs one health sweep: probe every replica's /v1/healthz in
// parallel, update up/down and known versions, raise the floor to the
// highest state observed, then (best effort) resync any replica whose
// rates version lags the floor. Exposed so tests and operators can
// force a sweep.
func (rt *Router) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rp := range rt.replicas {
		wg.Add(1)
		go func(rp *replica) {
			defer wg.Done()
			h, err := rp.client.Health(ctx)
			if err != nil {
				rt.robs.healthChecks.With("error").Inc()
				rp.setDown(err)
				return
			}
			rt.robs.healthChecks.With("ok").Inc()
			rp.setUp()
			rp.observe(h.Generation, h.RatesVersion)
			rt.raiseFloor(h.Generation, h.RatesVersion)
		}(rp)
	}
	wg.Wait()
	rt.resync(ctx)
}

// resync replays the floor's rate vector onto replicas whose rates
// version lags it. Skipped when a write is in progress — the write
// path finishes its own propagation, and the next sweep cleans up
// stragglers.
func (rt *Router) resync(ctx context.Context) {
	floorGen, floorRV := rt.Floor()
	var lagging []*replica
	for _, rp := range rt.replicas {
		if !rp.up.Load() {
			continue
		}
		if rp.gen.Load() < floorGen {
			rp.noteErr("generation behind fleet floor; needs a corpus swap")
			continue
		}
		if rp.rv.Load() < floorRV {
			lagging = append(lagging, rp)
		}
	}
	if len(lagging) == 0 || !rt.writeMu.TryLock() {
		return
	}
	defer rt.writeMu.Unlock()
	// Source of truth: any up replica already at the floor.
	var vector []float64
	for _, rp := range rt.replicas {
		if rp.up.Load() && rp.gen.Load() >= floorGen && rp.rv.Load() >= floorRV {
			rates, err := rp.client.Rates(ctx)
			if err != nil {
				continue
			}
			// The source may have moved past the floor between the sweep
			// and this read; its version is the real target then.
			rt.raiseFloor(floorGen, rates.Version)
			floorRV = rt.floorRV.Load()
			vector = rates.Vector
			break
		}
	}
	if vector == nil {
		return
	}
	for _, rp := range lagging {
		rt.catchUpLocked(ctx, rp, vector, floorGen, floorRV)
	}
}

// catchUpLocked replays vector onto rp until its rates version reaches
// target. Each publish advances the version counter by one, so a
// replica several versions behind converges in a few round trips; the
// vector content is correct after the first successful publish and the
// remaining publishes only align the counter. Callers hold writeMu.
func (rt *Router) catchUpLocked(ctx context.Context, rp *replica, vector []float64, targetGen, targetRV uint64) {
	if rp.gen.Load() != targetGen {
		rp.noteErr("generation behind fleet floor; needs a corpus swap")
		return
	}
	for i := 0; i < 64 && rp.rv.Load() < targetRV; i++ {
		resp, err := rp.client.RatesPublish(ctx, server.RatesPublishRequest{
			Vector:       vector,
			IfVersion:    rp.rv.Load(),
			IfGeneration: targetGen,
		})
		if err == nil {
			rt.robs.ratesPublishes.Inc()
			rp.observe(targetGen, resp.Version)
			continue
		}
		var apiErr *server.APIError
		if errors.As(err, &apiErr) && apiErr.IsConflict() {
			rt.robs.ratesConflicts.Inc()
			if apiErr.Version > 0 {
				// The replica is at apiErr.Version, not where we thought.
				rp.observe(rp.gen.Load(), apiErr.Version)
				continue
			}
			// Generation-axis conflict: refresh the whole view.
			if h, herr := rp.client.Health(ctx); herr == nil {
				rp.observe(h.Generation, h.RatesVersion)
			}
			continue
		}
		rp.setDown(err)
		return
	}
}

// ---- rendezvous hashing ----

// routeKey canonicalizes a raw q parameter into the rendezvous key:
// the distinct lowercased terms, sorted — the same keyword set always
// owns the same replica, regardless of order or duplication, which is
// what keeps per-term vector caches partitioned across the fleet.
func routeKey(rawQ string) string {
	terms := ir.ParseQuery(rawQ).Terms() // tokenized, lowercased, deduped
	sort.Strings(terms)
	key := ""
	for i, t := range terms {
		if i > 0 {
			key += " "
		}
		key += t
	}
	return key
}

// routeKeyMode extends the rendezvous key with the ranking mode: hub
// and combined answers cache under their own keys replica-side, so
// giving each direction its own owner spreads those caches across the
// fleet instead of piling every direction of a hot term set onto one
// replica. Authority keeps the bare term-set key — byte-identical to
// the pre-mode routing, so existing term→replica ownership never moves.
// (The NUL separator cannot appear in tokenized terms, so a mode
// suffix can never collide with a longer term set.)
func routeKeyMode(rawQ string, m core.Mode) string {
	key := routeKey(rawQ)
	if m != core.ModeAuthority {
		key += "\x00" + string(m)
	}
	return key
}

// rendezvousRank returns the replicas ordered by descending
// hash(key, replica) — the rendezvous (highest-random-weight) order.
// The first live, floor-eligible entry owns the key; the rest are the
// failover sequence.
func (rt *Router) rendezvousRank(key string) []*replica {
	type scored struct {
		rp *replica
		h  uint64
	}
	order := make([]scored, len(rt.replicas))
	for i, rp := range rt.replicas {
		hash := fnv.New64a()
		hash.Write([]byte(key))
		hash.Write([]byte{0})
		hash.Write([]byte(rp.url))
		order[i] = scored{rp, hash.Sum64()}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].h != order[b].h {
			return order[a].h > order[b].h
		}
		return order[a].rp.url < order[b].rp.url
	})
	out := make([]*replica, len(order))
	for i, s := range order {
		out[i] = s.rp
	}
	return out
}

// eligible reports whether rp can serve a request under the given
// floor: live and at or above both axes.
func eligible(rp *replica, floorGen, floorRV uint64) bool {
	return rp.up.Load() && rp.gen.Load() >= floorGen && rp.rv.Load() >= floorRV
}
