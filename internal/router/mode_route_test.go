package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"authorityflow/internal/core"
	"authorityflow/internal/server"
)

// TestRouterModeRouting drives the redesigned read contract through
// the coordinator: mode rides the rendezvous key, hub/combined answers
// proxy byte-faithfully, and audits stay deterministic across the
// router hop.
func TestRouterModeRouting(t *testing.T) {
	f := newFleet(t, 2)

	// mode=hub and mode=combined serve through the router.
	for _, mode := range []string{"hub", "combined"} {
		code, body := get(t, f.front.URL+"/v1/query?q=olap&k=5&mode="+mode)
		if code != 200 {
			t.Fatalf("mode=%s status = %d: %s", mode, code, body)
		}
		var q server.QueryResponse
		if err := json.Unmarshal(body, &q); err != nil {
			t.Fatal(err)
		}
		if q.Mode != mode || len(q.Results) == 0 {
			t.Errorf("mode=%s answer = mode %q, %d results", mode, q.Mode, len(q.Results))
		}
	}

	// Authority spelling stays byte-identical through the router (the
	// authority rendezvous key is unchanged, so ownership never moves).
	_, b1 := get(t, f.front.URL+"/v1/query?q=olap&k=5")
	_, b2 := get(t, f.front.URL+"/v1/query?q=olap&k=5&mode=authority")
	if !bytes.Equal(b1, b2) {
		t.Error("mode=authority body differs from default through the router")
	}

	// The same raw query in different modes may land on different
	// replicas (the mode is part of the rendezvous key); both keys must
	// be stable.
	if routeKeyMode("olap", core.ModeHub) == routeKeyMode("olap", core.ModeAuthority) {
		t.Error("hub key must differ from the authority key")
	}
	if routeKeyMode("olap", core.ModeAuthority) != routeKey("olap") {
		t.Error("authority keys must keep their pre-mode spelling")
	}
}

func TestRouterAuditDeterminism(t *testing.T) {
	f := newFleet(t, 2)

	code, body := get(t, f.front.URL+"/v1/query?q=olap&k=1")
	if code != 200 {
		t.Fatalf("seed query status = %d", code)
	}
	var q server.QueryResponse
	if err := json.Unmarshal(body, &q); err != nil || len(q.Results) == 0 {
		t.Fatalf("seed query: err=%v results=%d", err, len(q.Results))
	}

	url := fmt.Sprintf("%s/v1/audit?q=olap&target=%d&budget=8", f.front.URL, q.Results[0].Node)
	c1, a1 := get(t, url)
	c2, a2 := get(t, url)
	if c1 != 200 || c2 != 200 {
		t.Fatalf("audit statuses = %d, %d: %s", c1, c2, a1)
	}
	if !bytes.Equal(a1, a2) {
		t.Error("router-served audits are not byte-identical at a pinned generation")
	}
	var a server.AuditResponse
	if err := json.Unmarshal(a1, &a); err != nil {
		t.Fatal(err)
	}
	if len(a.Contributions) == 0 || a.Generation == 0 {
		t.Errorf("audit through router = %d contributions, gen %d", len(a.Contributions), a.Generation)
	}

	// Hub audits route too; combined is rejected as not explainable
	// (replica-side contract error, proxied through).
	hubURL := fmt.Sprintf("%s/v1/audit?q=olap&target=%d&mode=hub", f.front.URL, q.Results[0].Node)
	if code, body := get(t, hubURL); code != 200 {
		t.Fatalf("hub audit through router = %d: %s", code, body)
	}
	badURL := fmt.Sprintf("%s/v1/audit?q=olap&target=%d&mode=combined", f.front.URL, q.Results[0].Node)
	if code, body := get(t, badURL); code != 400 || !strings.Contains(string(body), "not explainable") {
		t.Errorf("combined audit through router = %d: %s", code, body)
	}
}

// TestRouterContractMirrorsServer: the router rejects contract
// violations itself — before picking a replica — with the exact
// message the replicas use (one validation table, exported by the
// server package).
func TestRouterContractMirrorsServer(t *testing.T) {
	f := newFleet(t, 2)

	const wantMode = "mode must be one of authority, hub, combined"
	const wantBudget = "budget must be an integer in 0..1000"
	type env struct {
		Error server.ErrorInfo `json:"error"`
	}
	for _, tc := range []struct{ path, want string }{
		{"/v1/query?q=olap&mode=sideways", wantMode},
		{"/v1/audit?q=olap&target=0&mode=sideways", wantMode},
		{"/v1/explain?q=olap&target=0&budget=9999", wantBudget},
	} {
		code, body := get(t, f.front.URL+tc.path)
		if code != 400 {
			t.Fatalf("%s: status = %d", tc.path, code)
		}
		var e env
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatal(err)
		}
		if e.Error.Code != server.CodeInvalidArgument || e.Error.Message != tc.want {
			t.Errorf("%s: error = %q %q, want %q", tc.path, e.Error.Code, e.Error.Message, tc.want)
		}
	}

	// Batch items: mode/budget travel byte-faithfully to the owning
	// replicas, and bad items are rejected router-side with the shared
	// message.
	code, body := postJSON(t, f.front.URL+"/v1/query/batch", server.BatchQueryRequest{
		Queries: []server.BatchQueryItem{
			{Q: "olap", K: 3},
			{Q: "olap", K: 3, Mode: "hub", Budget: 5},
			{Q: "mining", K: 3, Mode: "combined"},
		},
	})
	if code != 200 {
		t.Fatalf("batch status = %d: %s", code, body)
	}
	var br server.BatchQueryResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Answers) != 3 {
		t.Fatalf("batch answers = %d", len(br.Answers))
	}
	if br.Answers[0].Mode != "" || br.Answers[1].Mode != "hub" || br.Answers[2].Mode != "combined" {
		t.Errorf("batch modes = %q, %q, %q", br.Answers[0].Mode, br.Answers[1].Mode, br.Answers[2].Mode)
	}
	code, body = postJSON(t, f.front.URL+"/v1/query/batch", server.BatchQueryRequest{
		Queries: []server.BatchQueryItem{{Q: "olap", K: 3, Mode: "sideways"}},
	})
	if code != 400 || !strings.Contains(string(body), wantMode) {
		t.Errorf("bad batch item = %d: %s", code, body)
	}
}
