package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/rank"
	"authorityflow/internal/server"
)

// newProfileFleet is newFleet with the personalization tier enabled on
// every replica (each with its own profile directory — profile records
// are replica-local, which is the property these tests exercise).
func newProfileFleet(t testing.TB, n int) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		cfg := datagen.DBLPTopConfig().Scale(0.02)
		cfg.Seed = 4
		ds, err := datagen.GenerateDBLP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := server.New(ds, core.Config{Rank: rank.Options{Threshold: 1e-6, MaxIters: 300}},
			server.WithCache(8<<20, 0), server.WithProfiles(t.TempDir(), 0))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		f.servers = append(f.servers, s)
		f.backends = append(f.backends, ts)
		f.urls = append(f.urls, ts.URL)
	}
	rt, err := New(f.urls, Options{Timeout: 10 * time.Second, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	f.rt = rt
	f.front = httptest.NewServer(rt.Handler())
	t.Cleanup(f.front.Close)
	return f
}

// servedBy issues a request through the router and returns the
// X-Afq-Router-Replica header alongside status and body.
func servedBy(t testing.TB, method, url string, body string) (int, string, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get(HeaderServedBy), raw
}

// TestProfileOwnerStickiness: every request carrying a given profile id
// — CRUD, personalized query, training — lands on the SAME replica, and
// distinct ids spread across the fleet.
func TestProfileOwnerStickiness(t *testing.T) {
	f := newProfileFleet(t, 3)
	owners := make(map[string]bool)
	for i := 0; i < 9; i++ {
		id := fmt.Sprintf("user-%d", i)
		mix := `{"mixture":{"streaming":1}}`

		code, createdBy, body := servedBy(t, http.MethodPut, f.front.URL+"/v1/profile/"+id, mix)
		if code != 200 {
			t.Fatalf("PUT %s = %d: %s", id, code, body)
		}
		if createdBy == "" {
			t.Fatalf("PUT %s carried no %s header", id, HeaderServedBy)
		}
		owners[createdBy] = true

		code, readBy, body := servedBy(t, http.MethodGet, f.front.URL+"/v1/profile/"+id, "")
		if code != 200 {
			t.Fatalf("GET %s = %d: %s", id, code, body)
		}
		if readBy != createdBy {
			t.Fatalf("profile %s read from %s but created on %s", id, readBy, createdBy)
		}

		code, queriedBy, body := servedBy(t, http.MethodGet,
			f.front.URL+"/v1/query?q=olap&k=5&profile="+id, "")
		if code != 200 {
			t.Fatalf("personalized query %s = %d: %s", id, code, body)
		}
		if queriedBy != createdBy {
			t.Fatalf("profile %s query served by %s, record lives on %s", id, queriedBy, createdBy)
		}
		var qr server.QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if !qr.Personalized || qr.Profile != id {
			t.Fatalf("personalized answer = %+v", qr)
		}
	}
	if len(owners) < 2 {
		t.Fatalf("9 profiles all owned by one replica of 3: %v", owners)
	}
}

// TestProfileTrainingStaysLocal: training through the router mutates
// only the owner's profile and publishes no rates version anywhere.
func TestProfileTrainingStaysLocal(t *testing.T) {
	f := newProfileFleet(t, 3)
	const id = "trainee"
	code, createdBy, body := servedBy(t, http.MethodPut, f.front.URL+"/v1/profile/"+id,
		`{"mixture":{"streaming":1}}`)
	if code != 200 {
		t.Fatalf("PUT = %d: %s", code, body)
	}

	// A feedback target from a fleet query.
	code, _, body = servedBy(t, http.MethodGet, f.front.URL+"/v1/query?q=olap&k=3", "")
	if code != 200 {
		t.Fatalf("seed query = %d", code)
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil || len(qr.Results) == 0 {
		t.Fatalf("seed query: %v (%d results)", err, len(qr.Results))
	}
	fb := fmt.Sprintf("%d", qr.Results[0].Node)

	code, trainedBy, body := servedBy(t, http.MethodGet,
		f.front.URL+"/v1/reformulate?q=olap&feedback="+fb+"&mode=both&profile="+id, "")
	if code != 200 {
		t.Fatalf("profile reformulate = %d: %s", code, body)
	}
	if trainedBy != createdBy {
		t.Fatalf("training served by %s, record lives on %s", trainedBy, createdBy)
	}
	var rr server.ReformulateResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Profile != id || rr.ProfileRev == 0 {
		t.Fatalf("training response = %+v", rr)
	}

	// No replica's rates version moved.
	for i, s := range f.servers {
		if v := s.Engine().RatesVersion(); v != 1 {
			t.Fatalf("replica %d rates version = %d after profile training, want 1", i, v)
		}
	}
}

// TestProfileOwnerDownNoFailover: with the owner down, profile traffic
// sheds (503 naming the owner) instead of failing over onto a replica
// that has no record.
func TestProfileOwnerDownNoFailover(t *testing.T) {
	f := newProfileFleet(t, 3)
	const id = "orphan"
	code, createdBy, body := servedBy(t, http.MethodPut, f.front.URL+"/v1/profile/"+id,
		`{"mixture":{"streaming":1}}`)
	if code != 200 {
		t.Fatalf("PUT = %d: %s", code, body)
	}

	for i, ts := range f.backends {
		if ts.URL == createdBy {
			ts.Close()
			f.servers[i].Close()
		}
	}
	f.rt.CheckNow(t.Context())

	for _, probe := range []string{
		"/v1/profile/" + id,
		"/v1/query?q=olap&k=5&profile=" + id,
	} {
		code, _, body := servedBy(t, http.MethodGet, f.front.URL+probe, "")
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s with owner down = %d: %s", probe, code, body)
		}
		var env server.ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != server.CodeShed || !strings.Contains(env.Error.Message, createdBy) {
			t.Fatalf("shed envelope = %+v, want code %s naming %s", env, server.CodeShed, createdBy)
		}
	}

	// The rest of the fleet still answers global traffic.
	code, _, _ = servedBy(t, http.MethodGet, f.front.URL+"/v1/query?q=olap&k=5", "")
	if code != 200 {
		t.Fatalf("global query with one replica down = %d", code)
	}
}
