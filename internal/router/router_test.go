package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/rank"
	"authorityflow/internal/server"
	"authorityflow/internal/storage"
)

// fleet is a test topology: n identically-seeded replicas behind one
// router. Identically-seeded replicas serve bit-identical corpora, so
// any replica's answer at a given (generation, ratesVersion) is THE
// fleet answer — which is exactly the property the router must
// preserve.
type fleet struct {
	rt       *Router
	front    *httptest.Server // the router's own HTTP face
	servers  []*server.Server
	backends []*httptest.Server
	urls     []string
	swapDir  string
}

// newFleet boots n replicas (scale 0.02, seed 4, swap-enabled with a
// shared "next.snap") and a router over them with the background
// health loop disabled — tests drive CheckNow explicitly so sweeps
// happen at deterministic points. Replicas run UNCACHED: byte-identity
// assertions need answers free of the cache-provenance field, which
// legitimately differs between a first ask ("computed") and a repeat
// ("result"). The scaling benchmark builds its own cached fleet.
func newFleet(t testing.TB, n int) *fleet {
	return newFleetCached(t, n, false)
}

func newFleetCached(t testing.TB, n int, cached bool) *fleet {
	t.Helper()
	dir := t.TempDir()
	writeSnapshot(t, dir, "next.snap", 0.015, 9)

	f := &fleet{swapDir: dir}
	for i := 0; i < n; i++ {
		cfg := datagen.DBLPTopConfig().Scale(0.02)
		cfg.Seed = 4
		ds, err := datagen.GenerateDBLP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opts := []server.Option{server.WithSwapDir(dir)}
		if cached {
			opts = append(opts, server.WithCache(8<<20, 0))
		}
		s, err := server.New(ds, core.Config{Rank: rank.Options{Threshold: 1e-6, MaxIters: 300}}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		f.servers = append(f.servers, s)
		f.backends = append(f.backends, ts)
		f.urls = append(f.urls, ts.URL)
	}
	rt, err := New(f.urls, Options{
		Timeout:        10 * time.Second,
		HealthInterval: -1, // tests call CheckNow
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	f.rt = rt
	f.front = httptest.NewServer(rt.Handler())
	t.Cleanup(f.front.Close)
	return f
}

func writeSnapshot(t testing.TB, dir, name string, scale float64, seed int64) {
	t.Helper()
	cfg := datagen.DBLPTopConfig().Scale(scale)
	cfg.Seed = seed
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ds.Graph, ds.Rates, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteSnapshotFile(filepath.Join(dir, name), ds, eng.Index()); err != nil {
		t.Fatal(err)
	}
}

// get fetches a URL and returns status + body.
func get(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func postJSON(t testing.TB, url string, v any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestRendezvousProperties pins the routing function: deterministic,
// order/duplication-insensitive via the canonical key, and actually
// spreading keys across the fleet.
func TestRendezvousProperties(t *testing.T) {
	f := newFleet(t, 4)
	rt := f.rt

	if routeKey("OLAP  mining olap") != routeKey("mining OLAP") {
		t.Error("route key must canonicalize case, order and duplicates")
	}

	terms := []string{"olap", "xml", "mining", "query", "index", "search", "web", "join",
		"graph", "rank", "cache", "stream", "tree", "hash", "sort", "scan"}
	owners := map[string]int{}
	for _, tm := range terms {
		r1 := rt.rendezvousRank(routeKey(tm))
		r2 := rt.rendezvousRank(routeKey(tm))
		for i := range r1 {
			if r1[i].url != r2[i].url {
				t.Fatalf("rendezvous order for %q not deterministic", tm)
			}
		}
		owners[r1[0].url]++
	}
	if len(owners) < 2 {
		t.Errorf("16 keys all landed on one replica: %v", owners)
	}
}

// TestSingleQueryByteIdentical is the core proxy guarantee: the
// router's /v1/query answer is byte-for-byte what the owning replica
// says directly.
func TestSingleQueryByteIdentical(t *testing.T) {
	f := newFleet(t, 2)

	for _, q := range []string{"olap", "xml", "mining", "olap+xml"} {
		path := "/v1/query?q=" + q + "&k=10"
		viaRouter, routed := get(t, f.front.URL+path)
		if viaRouter != 200 {
			t.Fatalf("router query %q = %d: %s", q, viaRouter, routed)
		}
		owner := f.rt.rendezvousRank(routeKey(q))[0]
		direct, want := get(t, owner.url+path)
		if direct != 200 {
			t.Fatalf("direct query %q = %d", q, direct)
		}
		if !bytes.Equal(routed, want) {
			t.Errorf("query %q: routed body differs from owner's direct answer\nrouted: %s\ndirect: %s", q, routed, want)
		}
	}

	// /v1/explain proxies the same way.
	var qr server.QueryResponse
	_, body := get(t, f.front.URL+"/v1/query?q=olap&k=3")
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	path := fmt.Sprintf("/v1/explain?q=olap&target=%d", qr.Results[0].Node)
	code, routed := get(t, f.front.URL+path)
	if code != 200 {
		t.Fatalf("router explain = %d: %s", code, routed)
	}
	owner := f.rt.rendezvousRank(routeKey("olap"))[0]
	_, want := get(t, owner.url+path)
	if !bytes.Equal(routed, want) {
		t.Error("routed explain body differs from owner's direct answer")
	}
}

// TestBatchSplitMerge: a panel through the router splits across
// replicas, merges in request order, and every answer is byte-identical
// (after the shared encoding) to one replica's direct batch answer for
// the same panel at the same version.
func TestBatchSplitMerge(t *testing.T) {
	f := newFleet(t, 2)

	var req server.BatchQueryRequest
	terms := []string{"olap", "xml", "mining", "query", "index", "search", "web", "join"}
	for _, tm := range terms {
		req.Queries = append(req.Queries, server.BatchQueryItem{Q: tm, K: 10})
	}
	code, routed := postJSON(t, f.front.URL+"/v1/query/batch", req)
	if code != 200 {
		t.Fatalf("router batch = %d: %s", code, routed)
	}
	var got server.BatchQueryResponse
	if err := json.Unmarshal(routed, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(terms) {
		t.Fatalf("answers = %d, want %d", len(got.Answers), len(terms))
	}

	// Replicas are identical twins, so replica 0's direct batch answer is
	// the reference for the whole panel.
	codeD, direct := postJSON(t, f.urls[0]+"/v1/query/batch", req)
	if codeD != 200 {
		t.Fatalf("direct batch = %d", codeD)
	}
	if !bytes.Equal(routed, direct) {
		t.Errorf("merged batch body differs from a single replica's direct answer\nrouted: %.200s\ndirect: %.200s", routed, direct)
	}

	// The fan-out actually used more than one replica.
	if groups := metricValue(t, f.rt, "afq_router_batch_groups_count"); groups < 1 {
		t.Error("batch fan-out not recorded")
	}
}

// TestBatchValidation: the router rejects malformed panels itself,
// with the replicas' exact messages and indices referring to the
// CLIENT's item positions.
func TestBatchValidation(t *testing.T) {
	f := newFleet(t, 2)
	cases := []struct {
		req  server.BatchQueryRequest
		want string
	}{
		{server.BatchQueryRequest{}, "queries required"},
		{server.BatchQueryRequest{Queries: []server.BatchQueryItem{{Q: "olap"}, {Q: " "}}}, "queries[1]: q required"},
		{server.BatchQueryRequest{Queries: []server.BatchQueryItem{{Q: "olap", K: 2000}}}, "queries[0]: k must be in 1..1000"},
		{server.BatchQueryRequest{Queries: []server.BatchQueryItem{{Q: "!!"}}}, "queries[0]: q contains no indexable terms"},
	}
	for _, tc := range cases {
		code, body := postJSON(t, f.front.URL+"/v1/query/batch", tc.req)
		if code != 400 {
			t.Fatalf("batch %v = %d, want 400", tc.req, code)
		}
		var env server.ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Message != tc.want {
			t.Errorf("message = %q, want %q", env.Error.Message, tc.want)
		}
		if env.Error.Code != server.CodeInvalidArgument {
			t.Errorf("code = %q, want %q", env.Error.Code, server.CodeInvalidArgument)
		}
	}
}

// TestFailover: killing a replica moves its keys to the survivor; with
// every replica dead the router sheds 503.
func TestFailover(t *testing.T) {
	f := newFleet(t, 2)

	// Find a term owned by replica 0 and one owned by replica 1, so the
	// kill provably moves traffic.
	terms := []string{"olap", "xml", "mining", "query", "index", "search", "web", "join"}
	victim := f.rt.replicas[0]
	var victimTerm string
	for _, tm := range terms {
		if f.rt.rendezvousRank(routeKey(tm))[0] == victim {
			victimTerm = tm
			break
		}
	}
	if victimTerm == "" {
		t.Fatal("no term owned by replica 0 among the probes")
	}

	var ts *httptest.Server
	for i, u := range f.urls {
		if u == victim.url {
			ts = f.backends[i]
		}
	}
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	f.rt.CheckNow(ctx)

	code, body := get(t, f.front.URL+"/v1/query?q="+victimTerm+"&k=5")
	if code != 200 {
		t.Fatalf("query after replica kill = %d: %s", code, body)
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) == 0 {
		t.Error("failover answer has no results")
	}

	// Kill the survivor too: shed.
	for i, u := range f.urls {
		if u != victim.url {
			f.backends[i].Close()
		}
	}
	f.rt.CheckNow(ctx)
	code, body = get(t, f.front.URL+"/v1/query?q=olap")
	if code != 503 {
		t.Fatalf("query with no replicas = %d: %s", code, body)
	}
	var env server.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != server.CodeShed {
		t.Errorf("code = %q, want %q", env.Error.Code, server.CodeShed)
	}
}

// TestReformulatePropagation is the coordinated-write guarantee: a
// reformulation through the router leaves EVERY replica at the same
// rates version with the same vector.
func TestReformulatePropagation(t *testing.T) {
	f := newFleet(t, 3)

	_, body := get(t, f.front.URL+"/v1/query?q=olap&k=3")
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/v1/reformulate?q=olap&feedback=%d,%d&mode=structure&version=%d",
		f.front.URL, qr.Results[0].Node, qr.Results[1].Node, qr.Version)
	code, body := get(t, url)
	if code != 200 {
		t.Fatalf("reformulate = %d: %s", code, body)
	}
	var rr server.ReformulateResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Version <= qr.Version {
		t.Fatalf("reformulate did not advance the version: %d -> %d", qr.Version, rr.Version)
	}

	var ref *server.RatesResponse
	for i, u := range f.urls {
		_, raw := get(t, u+"/v1/rates")
		var rts server.RatesResponse
		if err := json.Unmarshal(raw, &rts); err != nil {
			t.Fatal(err)
		}
		if rts.Version != rr.Version {
			t.Errorf("replica %d at version %d, want %d", i, rts.Version, rr.Version)
		}
		if ref == nil {
			ref = &rts
			continue
		}
		if len(rts.Vector) != len(ref.Vector) {
			t.Fatalf("replica %d vector length %d != %d", i, len(rts.Vector), len(ref.Vector))
		}
		for j := range rts.Vector {
			if rts.Vector[j] != ref.Vector[j] {
				t.Errorf("replica %d vector[%d] = %v, want %v", i, j, rts.Vector[j], ref.Vector[j])
			}
		}
	}

	// Post-propagation byte-identity holds against the SERVING replica
	// (named in the response header): cross-replica answers can differ
	// in the last float bits because each replica warm-starts solves
	// from its own history, but the router adds and loses nothing.
	path := "/v1/query?q=olap&k=5"
	resp, err := http.Get(f.front.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	viaRouter, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	servedBy := resp.Header.Get(HeaderServedBy)
	if servedBy == "" {
		t.Fatal("routed answer missing the " + HeaderServedBy + " header")
	}
	_, direct := get(t, servedBy+path)
	if !bytes.Equal(viaRouter, direct) {
		t.Error("routed post-reformulate answer diverges from the serving replica's direct answer")
	}
}

// TestSwapFanout: a corpus swap through the router moves every replica
// to the new generation.
func TestSwapFanout(t *testing.T) {
	f := newFleet(t, 2)

	code, body := postJSON(t, f.front.URL+"/v1/corpus/swap", server.CorpusSwapRequest{Snapshot: "next.snap"})
	if code != 200 {
		t.Fatalf("swap = %d: %s", code, body)
	}
	var sr server.CorpusSwapResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Generation != 2 {
		t.Fatalf("generation = %d, want 2", sr.Generation)
	}
	for i, u := range f.urls {
		_, raw := get(t, u+"/v1/healthz")
		var h server.HealthResponse
		if err := json.Unmarshal(raw, &h); err != nil {
			t.Fatal(err)
		}
		if h.Generation != 2 {
			t.Errorf("replica %d generation = %d, want 2", i, h.Generation)
		}
	}

	// Queries keep working on the new generation, through the router.
	code, body = get(t, f.front.URL+"/v1/query?q=olap&k=5")
	if code != 200 {
		t.Fatalf("post-swap query = %d: %s", code, body)
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Generation != 2 {
		t.Errorf("post-swap answer generation = %d, want 2", qr.Generation)
	}
}

// TestMinVersionHeaders: asserting a future version the fleet cannot
// satisfy answers the fleet-level 409, and a malformed header is a
// 400 — while an assertion the fleet DOES satisfy passes through.
func TestMinVersionHeaders(t *testing.T) {
	f := newFleet(t, 2)

	do := func(header, value string) (int, []byte) {
		req, err := http.NewRequest(http.MethodGet, f.front.URL+"/v1/query?q=olap", nil)
		if err != nil {
			t.Fatal(err)
		}
		if header != "" {
			req.Header.Set(header, value)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	if code, _ := do(HeaderMinRatesVersion, "1"); code != 200 {
		t.Fatalf("satisfiable version assertion = %d, want 200", code)
	}
	code, body := do(HeaderMinRatesVersion, "999999")
	if code != 409 {
		t.Fatalf("unsatisfiable version assertion = %d, want 409: %s", code, body)
	}
	var env server.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != server.CodeVersionConflict {
		t.Errorf("code = %q, want %q", env.Error.Code, server.CodeVersionConflict)
	}
	if code, _ = do(HeaderMinGeneration, "not-a-number"); code != 400 {
		t.Errorf("malformed header = %d, want 400", code)
	}
}

// TestRouterHealthz: the fleet view reports per-replica state and
// flips to 503/down when the last replica dies.
func TestRouterHealthz(t *testing.T) {
	f := newFleet(t, 2)

	code, body := get(t, f.front.URL+"/v1/router/healthz")
	if code != 200 {
		t.Fatalf("router healthz = %d: %s", code, body)
	}
	var rh RouterHealthResponse
	if err := json.Unmarshal(body, &rh); err != nil {
		t.Fatal(err)
	}
	if rh.Status != "ok" || rh.ReplicasHealthy != 2 || rh.ReplicasTotal != 2 {
		t.Errorf("fleet view = %+v, want 2/2 ok", rh)
	}
	if rh.FloorGeneration != 1 || rh.FloorRatesVersion < 1 {
		t.Errorf("floor = (%d, %d), want generation 1 and version >= 1", rh.FloorGeneration, rh.FloorRatesVersion)
	}

	for _, ts := range f.backends {
		ts.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	f.rt.CheckNow(ctx)
	code, body = get(t, f.front.URL+"/v1/router/healthz")
	if code != 503 {
		t.Fatalf("router healthz with dead fleet = %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &rh); err != nil {
		t.Fatal(err)
	}
	if rh.Status != "down" || rh.ReplicasHealthy != 0 {
		t.Errorf("fleet view = %+v, want 0 healthy/down", rh)
	}
	for _, rs := range rh.Replicas {
		if rs.Healthy || rs.LastError == "" {
			t.Errorf("dead replica row = %+v, want unhealthy with an error", rs)
		}
	}
}

// TestReadProxiesAndMetrics: /v1/healthz, /v1/stats and GET /v1/rates
// proxy to a replica; /metrics serves the afq_router_* families.
func TestReadProxiesAndMetrics(t *testing.T) {
	f := newFleet(t, 2)

	for _, path := range []string{"/v1/healthz", "/v1/stats", "/v1/rates"} {
		code, body := get(t, f.front.URL+path)
		if code != 200 {
			t.Errorf("%s = %d: %s", path, code, body)
		}
	}
	get(t, f.front.URL+"/v1/query?q=olap") // make routed_total non-zero

	code, body := get(t, f.front.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, family := range []string{
		"afq_router_replica_up", "afq_router_floor_rates_version",
		"afq_router_routed_total", "afq_router_health_checks_total",
		"afq_router_http_requests_total",
	} {
		if !bytes.Contains(body, []byte(family)) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
}

// metricValue scrapes one single-sample family from the router's
// registry.
func metricValue(t testing.TB, rt *Router, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := rt.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if bytes.HasPrefix(line, []byte(name+" ")) {
			var v float64
			if _, err := fmt.Sscanf(string(line[len(name)+1:]), "%g", &v); err == nil {
				return v
			}
		}
	}
	return 0
}

// reformulateFailTransport injects a connection-level failure (no HTTP
// response) for every /v1/reformulate dispatch, counting them; all
// other traffic passes through.
type reformulateFailTransport struct {
	dispatches atomic.Int64
}

func (ft *reformulateFailTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Path == "/v1/reformulate" {
		ft.dispatches.Add(1)
		return nil, errors.New("connection reset (injected)")
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestReformulateDispatchNeverRetried: reformulation is not idempotent,
// so a transport failure mid-dispatch must answer the 502 "state
// unknown" — NEVER be silently re-sent by the replica client's retry
// budget, which could apply the feedback twice.
func TestReformulateDispatchNeverRetried(t *testing.T) {
	f := newFleet(t, 2)

	ft := &reformulateFailTransport{}
	rt, err := New(f.urls, Options{
		Timeout:        10 * time.Second,
		HealthInterval: -1,
		Retries:        2, // must not apply to the reformulate dispatch
		HTTPClient:     &http.Client{Transport: ft},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	code, body := get(t, front.URL+"/v1/reformulate?q=olap&feedback=1")
	if code != 502 {
		t.Fatalf("reformulate with failing transport = %d, want 502: %s", code, body)
	}
	var env server.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != server.CodeInternal {
		t.Errorf("code = %q, want %q", env.Error.Code, server.CodeInternal)
	}
	if got := ft.dispatches.Load(); got != 1 {
		t.Errorf("reformulate dispatched %d times, want exactly 1 — a retry could double-apply feedback", got)
	}
}

// TestRatesReadRespectsVersionAssertion: GET /v1/rates must honour the
// read-your-writes contract — an unsatisfiable version assertion is a
// 409, never a silently stale vector from the any-live fallback. The
// fallback stays in place for /v1/healthz, where a behind replica's
// answer is still a real answer.
func TestRatesReadRespectsVersionAssertion(t *testing.T) {
	f := newFleet(t, 2)

	do := func(path string) (int, []byte) {
		req, err := http.NewRequest(http.MethodGet, f.front.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(HeaderMinRatesVersion, "999999")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	code, body := do("/v1/rates")
	if code != 409 {
		t.Fatalf("GET /v1/rates with unsatisfiable assertion = %d, want 409: %s", code, body)
	}
	var env server.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != server.CodeVersionConflict {
		t.Errorf("code = %q, want %q", env.Error.Code, server.CodeVersionConflict)
	}
	if code, body = do("/v1/healthz"); code != 200 {
		t.Errorf("GET /v1/healthz with unsatisfiable assertion = %d, want 200 via fallback: %s", code, body)
	}
}

// TestAnswerOfLastResortNamesReplica: when every attempt 5xxed and the
// router forwards the kept answer-of-last-resort, the response still
// names the replica that produced it.
func TestAnswerOfLastResortNamesReplica(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Path == "/v1/healthz" {
			io.WriteString(w, `{"status":"ok","generation":1,"ratesVersion":1}`)
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":{"code":"internal","message":"boom"}}`)
	}))
	defer ts.Close()

	rt, err := New([]string{ts.URL}, Options{Timeout: 5 * time.Second, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/query?q=olap")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != 500 {
		t.Fatalf("last-resort forward = %d, want the replica's 500", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderServedBy); got != ts.URL {
		t.Errorf("%s = %q, want %q", HeaderServedBy, got, ts.URL)
	}
}

// TestRemapBatchIndices: replica sub-batch error messages name
// sub-batch item positions; the router must translate them back to the
// client's original panel indices.
func TestRemapBatchIndices(t *testing.T) {
	idxs := []int{5, 7, 11}
	cases := []struct{ in, want string }{
		{"queries[0]: q required", "queries[5]: q required"},
		{"queries[2]: k must be in 1..1000", "queries[11]: k must be in 1..1000"},
		{"queries[1] and queries[2] clash", "queries[7] and queries[11] clash"},
		{"queries[9]: out of range passes through", "queries[9]: out of range passes through"},
		{"queries[abc] unparseable", "queries[abc] unparseable"},
		{"queries[ unterminated", "queries[ unterminated"},
		{"no index here", "no index here"},
	}
	for _, tc := range cases {
		if got := remapBatchIndices(tc.in, idxs); got != tc.want {
			t.Errorf("remapBatchIndices(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
