// profile.go routes the personalization tier across the fleet. Profile
// records are REPLICA-LOCAL state (one durable record on the owning
// replica's disk, plus its decoded/answer LRUs), so profile traffic is
// rendezvous-routed by PROFILE ID — not by query term set — and is
// strictly owner-dispatched: a profile's reads, writes, personalized
// queries and training rounds all land on the one replica that holds
// the record. There is NO failover — a "failover" replica has no record
// (spurious 404) or a stale one (lost training), both worse than an
// honest 503 while the owner is down.
package router

import (
	"net/http"

	"authorityflow/internal/obs"
	"authorityflow/internal/server"
)

// profileKey is the rendezvous key of a profile id. The "p\x00" prefix
// keeps the profile key space disjoint from query term-set keys, so a
// profile id that happens to spell a keyword does not co-locate with
// that keyword's query traffic.
func profileKey(id string) string { return "p\x00" + id }

// profileOwner returns the profile's rendezvous owner — dead or alive.
// Ownership does not move on failure (the record wouldn't move with
// it), which is exactly why the caller must refuse to dispatch when the
// owner is down.
func (rt *Router) profileOwner(id string) *replica {
	return rt.rendezvousRank(profileKey(id))[0]
}

// writeOwnerDown renders the owner-unavailable shed: unlike the generic
// no-replica shed it names the one replica that can serve this profile.
func (rt *Router) writeOwnerDown(w http.ResponseWriter, r *http.Request, owner *replica) {
	w.Header().Set("Retry-After", "1")
	rt.writeError(w, r, http.StatusServiceUnavailable, server.CodeShed,
		"profile owner "+owner.url+" is down; profile state is replica-local, so there is no failover — retry when it recovers")
}

// handleProfile proxies /v1/profile/{id} CRUD to the id's owner. GET
// rides the retrying DoRaw (idempotent); PUT/POST/DELETE go through
// DoRawOnce — an update bumps the profile revision, so a lost reply
// must surface rather than silently re-send.
func (rt *Router) handleProfile(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Path[len("/v1/profile/"):]
	if id == "" {
		rt.writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "profile id required")
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	owner := rt.profileOwner(id)
	if !owner.up.Load() {
		rt.writeOwnerDown(w, r, owner)
		return
	}
	tr := obs.TraceFrom(r.Context())
	tr.Eventf("route", "replica=%s profile=%s", owner.url, id)
	hdr := forwardHeaders(r.Header)
	var resp *server.RawResponse
	var err error
	if r.Method == http.MethodGet {
		resp, err = owner.client.DoRaw(r.Context(), r.Method, r.URL.RequestURI(), hdr, body)
	} else {
		resp, err = owner.client.DoRawOnce(r.Context(), r.Method, r.URL.RequestURI(), hdr, body)
	}
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		owner.setDown(err)
		rt.writeOwnerDown(w, r, owner)
		return
	}
	rt.robs.routed.With(owner.url).Inc()
	w.Header().Set(HeaderServedBy, owner.url)
	copyResponse(w, resp)
}

// handleProfileRead owner-dispatches a personalized read
// (/v1/query?profile= and, via handleProfileTrain's answer leg,
// anything carrying a profile id). The floor still gates dispatch: a
// personalized answer must reflect coordinated fleet state like any
// other, so an owner below the floor gets the same 409 a stale replica
// would — retryable once resync catches it up — never a silent
// downgrade onto a replica without the profile.
func (rt *Router) handleProfileRead(w http.ResponseWriter, r *http.Request, id string) {
	floorGen, floorRV, ok := rt.effectiveFloor(w, r)
	if !ok {
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	owner := rt.profileOwner(id)
	if !owner.up.Load() {
		rt.writeOwnerDown(w, r, owner)
		return
	}
	if !eligible(owner, floorGen, floorRV) {
		rt.robs.staleSkips.Inc()
		rt.writeNoReplica(w, r, true)
		return
	}
	tr := obs.TraceFrom(r.Context())
	tr.Eventf("route", "replica=%s profile=%s", owner.url, id)
	resp, err := owner.client.DoRaw(r.Context(), r.Method, r.URL.RequestURI(), forwardHeaders(r.Header), body)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		owner.setDown(err)
		rt.writeOwnerDown(w, r, owner)
		return
	}
	rt.observeAnswer(owner, r.URL.Path, resp)
	rt.robs.routed.With(owner.url).Inc()
	w.Header().Set(HeaderServedBy, owner.url)
	copyResponse(w, resp)
}

// handleProfileTrain owner-dispatches /v1/reformulate?profile={id}.
// Profile training publishes NOTHING globally — no rates propagation,
// no writeMu, no version advance — but it mutates the profile record,
// so the dispatch is DoRawOnce with no failover, exactly like the
// global reformulation's owner leg.
func (rt *Router) handleProfileTrain(w http.ResponseWriter, r *http.Request, id string) {
	floorGen, floorRV, ok := rt.effectiveFloor(w, r)
	if !ok {
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	owner := rt.profileOwner(id)
	if !owner.up.Load() {
		rt.writeOwnerDown(w, r, owner)
		return
	}
	if !eligible(owner, floorGen, floorRV) {
		rt.robs.staleSkips.Inc()
		rt.writeNoReplica(w, r, true)
		return
	}
	tr := obs.TraceFrom(r.Context())
	tr.Eventf("route", "replica=%s profile=%s", owner.url, id)
	resp, err := owner.client.DoRawOnce(r.Context(), r.Method, r.URL.RequestURI(), forwardHeaders(r.Header), body)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		owner.setDown(err)
		rt.writeError(w, r, http.StatusBadGateway, server.CodeInternal,
			"profile owner failed mid-training; its state is unknown — check /v1/router/healthz and retry")
		return
	}
	rt.robs.routed.With(owner.url).Inc()
	w.Header().Set(HeaderServedBy, owner.url)
	copyResponse(w, resp)
}
