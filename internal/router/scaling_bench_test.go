package router

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"testing"
	"time"
)

// benchTerms is a 16-key vocabulary spread across the fleet by
// rendezvous hashing — with 4 replicas every replica owns a share, so
// aggregate throughput can actually scale.
var benchTerms = []string{
	"olap", "xml", "mining", "query", "index", "search", "web", "join",
	"olap cube", "xml mining", "query optimization", "web search",
	"stream join", "database index", "olap mining", "xml query",
}

// BenchmarkRouterScaling measures aggregate query throughput through
// the router as the fleet grows (1, 2, 4 replicas). Replicas run with
// the serving cache on — the production configuration — so after the
// warm-up pass each query is a cache hit and the benchmark exposes the
// ROUTING tier's scaling behaviour (rendezvous dispatch, proxying,
// connection handling) rather than kernel arithmetic. RunParallel
// supplies the concurrent client load; the qps metric is the number to
// compare across replica counts (recorded in BENCH_router.json).
func BenchmarkRouterScaling(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			f := newFleetCached(b, n, true)

			// Warm every replica's caches and term vectors through the
			// router, so the measured region is steady-state serving.
			urls := make([]string, len(benchTerms))
			for i, q := range benchTerms {
				urls[i] = f.front.URL + "/v1/query?k=10&q=" + url.QueryEscape(q)
			}
			for i, u := range urls {
				code, body := get(b, u)
				if code != 200 {
					b.Fatalf("warmup %q = %d: %s", benchTerms[i], code, body)
				}
			}

			client := &http.Client{Timeout: 30 * time.Second}
			var i int64
			b.ResetTimer()
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				j := int(i) // coarse per-goroutine offset; exact spread is irrelevant
				i++
				for pb.Next() {
					u := urls[j%len(urls)]
					j++
					resp, err := client.Get(u)
					if err != nil {
						b.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						b.Errorf("%s = %d", u, resp.StatusCode)
						return
					}
				}
			})
			b.StopTimer()
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed, "qps")
			}
		})
	}
}
