package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"authorityflow/internal/server"
)

// TestRouterConsistencyHammer is the scale-out consistency gauntlet,
// meant to run under -race: queries stream through a 2-replica router
// while /v1/reformulate publishes new rate vectors fleet-wide and
// /v1/corpus/swap flips generations, with health sweeps resyncing
// laggards the whole time. Every routed answer must be BYTE-IDENTICAL
// to what the replica that served it (named by the X-Afq-Router-Replica
// header) returns directly at the same (generation, ratesVersion) —
// the router may fail a request (409/503 are legitimate under version
// churn) but it may never alter or hybridize an answer.
//
// Cross-replica answers at the same version are intentionally NOT
// compared bitwise: replicas warm-start power iteration from their own
// solve histories, so their converged vectors agree only to the solver
// threshold, not bit-for-bit.
func TestRouterConsistencyHammer(t *testing.T) {
	f := newFleet(t, 2)

	// The fixture disables the background sweep; the hammer needs it
	// live so down-marking and catch-up resync race with the traffic.
	sweepCtx, stopSweep := context.WithCancel(context.Background())
	var sweeper sync.WaitGroup
	sweeper.Add(1)
	go func() {
		defer sweeper.Done()
		for sweepCtx.Err() == nil {
			f.rt.CheckNow(sweepCtx)
			time.Sleep(20 * time.Millisecond)
		}
	}()
	defer sweeper.Wait()
	defer stopSweep()

	terms := []string{"olap", "xml", "mining", "query", "index", "search", "web", "join"}

	// answers accumulates bodies keyed by (generation, version, query,
	// k, servingReplica). A replica's answer at a fixed version is
	// deterministic, so a key seen twice must carry identical bytes —
	// whether both sightings were routed, both direct, or one of each.
	var mu sync.Mutex
	answers := map[string][]byte{}
	record := func(key string, body []byte) {
		mu.Lock()
		defer mu.Unlock()
		if prev, seen := answers[key]; seen {
			if !bytes.Equal(prev, body) {
				// Report outside the lock-free path; testing.T is safe for
				// concurrent use.
				t.Errorf("divergent answers for %s:\nfirst:  %.120s\nsecond: %.120s", key, prev, body)
			}
			return
		}
		answers[key] = body
	}
	answerKey := func(gen, rv uint64, q string, replica string) string {
		return fmt.Sprintf("g%d.v%d.q=%s.k=10@%s", gen, rv, q, replica)
	}

	var wg sync.WaitGroup

	// Routed readers: hammer /v1/query through the router.
	const readerIters = 60
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < readerIters; i++ {
				q := terms[(g+i)%len(terms)]
				resp, err := http.Get(f.front.URL + "/v1/query?q=" + q + "&k=10")
				if err != nil {
					t.Errorf("routed query transport error: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case 200:
					served := resp.Header.Get(HeaderServedBy)
					if served == "" {
						t.Error("200 routed answer without a serving-replica header")
						return
					}
					var probe struct{ Version, Generation uint64 }
					if err := json.Unmarshal(body, &probe); err != nil {
						t.Errorf("undecodable routed answer: %v", err)
						return
					}
					record(answerKey(probe.Generation, probe.Version, q, served), body)
				case 409, 503:
					// Legitimate under version churn / swap windows.
				default:
					t.Errorf("routed query %q = %d: %.200s", q, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}

	// Direct readers: the reference stream, one per replica, recording
	// under the same keys.
	for ri, u := range f.urls {
		wg.Add(1)
		go func(ri int, u string) {
			defer wg.Done()
			for i := 0; i < readerIters; i++ {
				q := terms[(ri+i)%len(terms)]
				resp, err := http.Get(u + "/v1/query?q=" + q + "&k=10")
				if err != nil {
					return // replica churn mid-swap; the routed stream is the subject
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					continue
				}
				var probe struct{ Version, Generation uint64 }
				if err := json.Unmarshal(body, &probe); err != nil {
					t.Errorf("undecodable direct answer: %v", err)
					return
				}
				record(answerKey(probe.Generation, probe.Version, q, u), body)
			}
		}(ri, u)
	}

	// Reformulator: publishes new rate vectors through the router,
	// racing the readers. Conflicts (another publish or a swap won) and
	// post-swap stale feedback IDs are expected outcomes, not failures.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			code, body := get(t, f.front.URL+"/v1/query?q=olap&k=3")
			if code != 200 {
				continue
			}
			var qr server.QueryResponse
			if err := json.Unmarshal(body, &qr); err != nil || len(qr.Results) < 2 {
				continue
			}
			url := fmt.Sprintf("%s/v1/reformulate?q=olap&feedback=%d,%d&mode=structure&version=%d",
				f.front.URL, qr.Results[0].Node, qr.Results[1].Node, qr.Version)
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("reformulate transport error: %v", err)
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case 200, 400, 409, 503:
			default:
				t.Errorf("reformulate = %d: %.200s", resp.StatusCode, raw)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Swapper: flips the fleet's corpus generation through the router.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			code, body := postJSON(t, f.front.URL+"/v1/corpus/swap", server.CorpusSwapRequest{Snapshot: "next.snap"})
			switch code {
			case 200, 409, 502, 503:
			default:
				t.Errorf("swap = %d: %.200s", code, body)
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
	}()

	wg.Wait()
	stopSweep()
	sweeper.Wait()

	// The storm is sampling-based; require real overlap so the identity
	// assertion inside record() actually fired.
	mu.Lock()
	recorded := len(answers)
	mu.Unlock()
	if recorded == 0 {
		t.Fatal("hammer recorded no successful answers")
	}

	// Quiesce and verify the fleet converged: both replicas on the same
	// (generation, ratesVersion) with elementwise-identical rate
	// vectors.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	f.rt.CheckNow(ctx)
	var ref *server.RatesResponse
	var refHealth server.HealthResponse
	for i, u := range f.urls {
		_, raw := get(t, u+"/v1/rates")
		var rts server.RatesResponse
		if err := json.Unmarshal(raw, &rts); err != nil {
			t.Fatal(err)
		}
		_, hraw := get(t, u+"/v1/healthz")
		var h server.HealthResponse
		if err := json.Unmarshal(hraw, &h); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refHealth = &rts, h
			continue
		}
		if rts.Version != ref.Version || h.Generation != refHealth.Generation {
			t.Errorf("fleet did not converge: replica %d at (gen %d, v %d), replica 0 at (gen %d, v %d)",
				i, h.Generation, rts.Version, refHealth.Generation, ref.Version)
		}
		for j := range rts.Vector {
			if rts.Vector[j] != ref.Vector[j] {
				t.Errorf("post-storm vector[%d] differs: %v vs %v", j, rts.Vector[j], ref.Vector[j])
			}
		}
	}

	// Deterministic final pass: for every term, the routed answer must
	// be byte-identical to the serving replica's direct answer.
	for _, q := range terms {
		resp, err := http.Get(f.front.URL + "/v1/query?q=" + q + "&k=10")
		if err != nil {
			t.Fatal(err)
		}
		routed, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("post-storm routed query %q = %d: %s", q, resp.StatusCode, routed)
		}
		served := resp.Header.Get(HeaderServedBy)
		_, direct := get(t, served+"/v1/query?q="+q+"&k=10")
		if !bytes.Equal(routed, direct) {
			t.Errorf("post-storm %q: routed body differs from %s's direct answer", q, served)
		}
	}
}
