// client.go is the typed Go client of the v1 HTTP surface defined in
// api.go: one method per endpoint, the shared DTOs on both ends, and
// every non-2xx response decoded into an *APIError carrying the stable
// machine-readable code from the v1 error envelope. The client speaks
// ONLY the /v1 routes — the legacy aliases exist for pre-v1 clients,
// not for this one.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// APIError is a non-2xx v1 response decoded into Go. It carries the
// HTTP status plus the envelope's stable code, human message and
// request ID; Version is non-zero only for version_conflict errors,
// where it names the winning rates version to retry against.
type APIError struct {
	// Status is the HTTP status code of the response.
	Status int
	// Code is the stable machine-readable error code (one of the Code*
	// constants; clients switch on this, never on Message).
	Code string
	// Message is the human-readable detail. May change between releases.
	Message string
	// RequestID is the server-assigned request ID for log correlation.
	RequestID string
	// Version is the winning rates version on a version_conflict.
	Version uint64
}

// Error renders "code: message (http STATUS)".
func (e *APIError) Error() string {
	var b strings.Builder
	if e.Code != "" {
		b.WriteString(e.Code)
		b.WriteString(": ")
	}
	b.WriteString(e.Message)
	b.WriteString(" (http ")
	b.WriteString(strconv.Itoa(e.Status))
	b.WriteString(")")
	return b.String()
}

// IsConflict reports whether the error is the optimistic-concurrency
// 409 of /v1/reformulate; when true, Version carries the winning rates
// version to re-read and retry against.
func (e *APIError) IsConflict() bool { return e.Code == CodeVersionConflict }

// Client is a typed client of the /v1 API. The zero value is not
// usable; construct with NewClient. Methods are safe for concurrent
// use (they share only the underlying http.Client).
type Client struct {
	base    string        // normalized base URL, no trailing slash
	http    *http.Client  // never nil
	timeout time.Duration // per-attempt deadline; 0 = none beyond the caller's ctx
	retries int           // extra attempts after a transport-level failure
}

// ClientOption configures optional Client behaviour.
type ClientOption func(*Client)

// WithRequestTimeout bounds every request attempt with its own
// deadline, layered under (never extending) the caller's context. The
// zero-value http.Client never times out on its own, so a hung replica
// would otherwise pin the caller forever — the router sets this on
// every replica client.
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithRetries retries a request up to n extra times after a
// transport-level failure (connection refused/reset, per-attempt
// timeout) — errors where no HTTP response arrived at all. HTTP error
// statuses are never retried here; they are real answers. Requests with
// bodies are replayed from their buffered bytes. A transport failure
// can also mean the reply was lost AFTER the server acted, so the
// budget is only safe for idempotent calls — non-idempotent dispatches
// (the router's /v1/reformulate) go through DoRawOnce, which bypasses
// it.
func WithRetries(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.retries = n
		}
	}
}

// NewClient builds a client for a server at baseURL (e.g.
// "http://localhost:8080"). A nil httpClient uses
// http.DefaultClient; pass a custom one for timeouts or transports.
func NewClient(baseURL string, httpClient *http.Client, opts ...ClientOption) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the normalized base URL the client talks to.
func (c *Client) BaseURL() string { return c.base }

// Query runs GET /v1/query. k <= 0 uses the server default of 10.
func (c *Client) Query(ctx context.Context, q string, k int) (*QueryResponse, error) {
	v := url.Values{"q": {q}}
	if k > 0 {
		v.Set("k", strconv.Itoa(k))
	}
	var out QueryResponse
	if err := c.get(ctx, "/v1/query", v, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// QueryMode runs GET /v1/query with an explicit ranking mode
// ("authority", "hub" or "combined"; "" means authority and omits the
// parameter, keeping the request byte-identical to Query's). k <= 0
// uses the server default of 10.
func (c *Client) QueryMode(ctx context.Context, q string, k int, mode string) (*QueryResponse, error) {
	v := url.Values{"q": {q}}
	if k > 0 {
		v.Set("k", strconv.Itoa(k))
	}
	if mode != "" {
		v.Set("mode", mode)
	}
	var out QueryResponse
	if err := c.get(ctx, "/v1/query", v, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Audit runs GET /v1/audit: the sensitivity ranking of one result node
// under q — the top-budget explaining arcs/nodes ordered by the score's
// response to rate perturbation. mode "" means authority; budget <= 0
// uses the server default (core.DefaultAuditBudget). Combined mode is
// rejected server-side with invalid_argument.
func (c *Client) Audit(ctx context.Context, q string, target int64, mode string, budget int) (*AuditResponse, error) {
	v := url.Values{"q": {q}, "target": {strconv.FormatInt(target, 10)}}
	if mode != "" {
		v.Set("mode", mode)
	}
	if budget > 0 {
		v.Set("budget", strconv.Itoa(budget))
	}
	var out AuditResponse
	if err := c.get(ctx, "/v1/audit", v, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// QueryBatch runs POST /v1/query/batch: up to MaxBatchQueries queries
// answered under ONE rates snapshot with at most ⌈unique/BlockSize⌉
// kernel executions server-side. Answers come back in request order,
// each identical to its single Query twin.
func (c *Client) QueryBatch(ctx context.Context, req BatchQueryRequest) (*BatchQueryResponse, error) {
	var out BatchQueryResponse
	if err := c.post(ctx, "/v1/query/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reformulate runs GET /v1/reformulate. feedback lists the marked
// relevant node IDs; mode is "structure", "content", "both" or ""
// (structure). version, when non-zero, is the optimistic concurrency
// token — a lost race returns an *APIError with IsConflict() true and
// Version set to the winning rates version.
func (c *Client) Reformulate(ctx context.Context, q string, feedback []int64, mode string, version uint64) (*ReformulateResponse, error) {
	ids := make([]string, len(feedback))
	for i, id := range feedback {
		ids[i] = strconv.FormatInt(id, 10)
	}
	v := url.Values{"q": {q}, "feedback": {strings.Join(ids, ",")}}
	if mode != "" {
		v.Set("mode", mode)
	}
	if version != 0 {
		v.Set("version", strconv.FormatUint(version, 10))
	}
	var out ReformulateResponse
	if err := c.get(ctx, "/v1/reformulate", v, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CorpusSwap runs POST /v1/corpus/swap: atomically replace the served
// corpus with a snapshot from the server's swap directory. A lost
// generation race returns an *APIError with IsConflict() true. The
// endpoint is opt-in server-side (WithSwapDir); a server without it
// answers 403.
func (c *Client) CorpusSwap(ctx context.Context, req CorpusSwapRequest) (*CorpusSwapResponse, error) {
	var out CorpusSwapResponse
	if err := c.post(ctx, "/v1/corpus/swap", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RatesPublish runs POST /v1/rates: publish an already-trained rate
// vector through the replica's optimistic CAS. This is the fleet
// propagation primitive — after one replica reformulates, the router
// replays the resulting vector onto every other replica. A lost race
// returns an *APIError with IsConflict() true and Version set to the
// winning rates version.
func (c *Client) RatesPublish(ctx context.Context, req RatesPublishRequest) (*RatesResponse, error) {
	var out RatesResponse
	if err := c.post(ctx, "/v1/rates", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Rates runs GET /v1/rates.
func (c *Client) Rates(ctx context.Context) (*RatesResponse, error) {
	var out RatesResponse
	if err := c.get(ctx, "/v1/rates", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health runs GET /v1/healthz.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.get(ctx, "/v1/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats runs GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.get(ctx, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ProfileGet runs GET /v1/profile/{id}. An unknown id returns an
// *APIError with Code == CodeProfileNotFound.
func (c *Client) ProfileGet(ctx context.Context, id string) (*ProfileResponse, error) {
	var out ProfileResponse
	if err := c.do(ctx, http.MethodGet, c.base+"/v1/profile/"+url.PathEscape(id), nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ProfileUpdate runs PUT /v1/profile/{id}: create the profile or
// replace its declared interest mixture (learned state — the trained
// rates-delta and revision history — is preserved server-side).
func (c *Client) ProfileUpdate(ctx context.Context, id string, req ProfileUpdateRequest) (*ProfileResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hdr := http.Header{"Content-Type": {"application/json"}}
	var out ProfileResponse
	if err := c.do(ctx, http.MethodPut, c.base+"/v1/profile/"+url.PathEscape(id), hdr, body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ProfileDelete runs DELETE /v1/profile/{id}. Deleting an id that does
// not exist succeeds (the operation is idempotent server-side).
func (c *Client) ProfileDelete(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, c.base+"/v1/profile/"+url.PathEscape(id), nil, nil, nil)
}

// QueryProfile runs GET /v1/query?profile={id}: the personalized twin
// of Query. The response reports Personalized and the answer source
// in Cache ("hit", "combined" or "global").
func (c *Client) QueryProfile(ctx context.Context, q string, k int, profileID string) (*QueryResponse, error) {
	v := url.Values{"q": {q}, "profile": {profileID}}
	if k > 0 {
		v.Set("k", strconv.Itoa(k))
	}
	var out QueryResponse
	if err := c.get(ctx, "/v1/query", v, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RawResponse is a fully-read HTTP response: status line, headers and
// body bytes. DoRaw returns it so a proxying caller (the router) can
// forward a replica's answer byte-identically, whatever its status.
type RawResponse struct {
	Status int
	Header http.Header
	Body   []byte
}

// DoRaw executes method against pathAndQuery (e.g. "/v1/query?q=olap")
// with the given extra headers and optional body, applying the
// client's per-attempt timeout and connection-error retries, and
// returns the response verbatim — no status interpretation, no
// envelope decoding. This is the router's proxy primitive: single-query
// and explain traffic is forwarded through it so success bodies (and
// replica-rendered error envelopes) stay byte-identical end to end.
func (c *Client) DoRaw(ctx context.Context, method, pathAndQuery string, header http.Header, body []byte) (*RawResponse, error) {
	resp, err := c.roundTrip(ctx, method, c.base+pathAndQuery, header, body)
	if err != nil {
		return nil, err
	}
	raw, _ := io.ReadAll(resp.Body) // roundTrip already buffered it
	resp.Body.Close()
	return &RawResponse{Status: resp.StatusCode, Header: resp.Header, Body: raw}, nil
}

// DoRawOnce is DoRaw with the retry budget bypassed: exactly one
// attempt, whatever WithRetries configured. A transport failure can
// mean the server acted and only the reply was lost; a non-idempotent
// dispatch (reformulation applies feedback) must surface that failure
// instead of silently re-sending — a double-applied reformulation
// would corrupt the learned rates and the version sequence.
func (c *Client) DoRawOnce(ctx context.Context, method, pathAndQuery string, header http.Header, body []byte) (*RawResponse, error) {
	resp, err := c.attempt(ctx, method, c.base+pathAndQuery, header, body)
	if err != nil {
		return nil, err
	}
	raw, _ := io.ReadAll(resp.Body) // attempt already buffered it
	resp.Body.Close()
	return &RawResponse{Status: resp.StatusCode, Header: resp.Header, Body: raw}, nil
}

// get issues a GET with query parameters and decodes into out.
func (c *Client) get(ctx context.Context, path string, v url.Values, out any) error {
	u := c.base + path
	if len(v) > 0 {
		u += "?" + v.Encode()
	}
	return c.do(ctx, http.MethodGet, u, nil, nil, out)
}

// post issues a POST with a JSON body and decodes into out.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	hdr := http.Header{"Content-Type": {"application/json"}}
	return c.do(ctx, http.MethodPost, c.base+path, hdr, body, out)
}

// maxErrorBody bounds how much of an error response the client reads.
const maxErrorBody = 64 << 10

// do executes the request, decoding 2xx into out and everything else
// into an *APIError via the v1 envelope (falling back to the raw body
// as Message when the server — or an intermediary — answered with
// something that is not the envelope).
func (c *Client) do(ctx context.Context, method, url string, header http.Header, body []byte, out any) error {
	resp, err := c.roundTrip(ctx, method, url, header, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeAPIError(resp)
	}
	if out == nil {
		return nil // bodyless success (204)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// roundTrip is the single request executor: it rebuilds the request
// per attempt (body replayed from its bytes), layers the per-attempt
// timeout under the caller's context, reads the whole response body
// before the attempt's deadline is released, and retries
// transport-level failures — errors where no HTTP response arrived —
// up to the configured retry budget. It never retries once a response
// (of any status) was received, and never retries past a cancelled
// caller context.
func (c *Client) roundTrip(ctx context.Context, method, url string, header http.Header, body []byte) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := c.attempt(ctx, method, url, header, body)
		if err == nil {
			return resp, nil
		}
		if attempt >= c.retries || ctx.Err() != nil {
			return nil, err
		}
	}
}

// attempt runs one HTTP exchange under its own timeout (when
// configured), buffering the body so the deferred cancel cannot abort
// a caller's later read.
func (c *Client) attempt(ctx context.Context, method, url string, header http.Header, body []byte) (*http.Response, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = append([]string(nil), vs...)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	buf, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	resp.Body = io.NopCloser(bytes.NewReader(buf))
	return resp, nil
}

// decodeAPIError turns a non-2xx response into an *APIError.
func decodeAPIError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	apiErr := &APIError{Status: resp.StatusCode}
	var env ConflictEnvelope // superset of ErrorEnvelope (adds Version)
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		apiErr.Code = env.Error.Code
		apiErr.Message = env.Error.Message
		apiErr.RequestID = env.Error.RequestID
		apiErr.Version = env.Version
		return apiErr
	}
	apiErr.Code = codeForStatus(resp.StatusCode)
	apiErr.Message = strings.TrimSpace(string(body))
	if apiErr.Message == "" {
		apiErr.Message = http.StatusText(resp.StatusCode)
	}
	return apiErr
}
