package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"authorityflow/internal/obs"
)

// AdmissionOptions bound the server's concurrent query work — the
// load-shedding half of the PR-4 deadline-aware query lifecycle. The
// zero value disables every limit (the pre-PR-4 behaviour).
//
// The model is deliberately simple: one semaphore of MaxInflight slots
// guards the EXPENSIVE endpoints (/query, /explain, /reformulate —
// each can run a power-iteration solve); cheap operator endpoints
// (/healthz, /stats, /rates, /metrics) are never throttled, so an
// overloaded replica can still be inspected. A request that cannot get
// a slot waits at most QueueWait and is then shed with 503 +
// Retry-After; a request that got a slot runs under a deadline of
// QueryTimeout (clients may SHORTEN it per request via the
// X-Request-Timeout-Ms header, never extend it), and a fired deadline
// surfaces as 504 after the kernel abandons the solve within one
// sweep.
type AdmissionOptions struct {
	// MaxInflight caps concurrently admitted expensive requests.
	// 0 = unlimited.
	MaxInflight int
	// QueueWait is how long a request may wait for an admission slot
	// before being shed with 503. 0 = shed immediately when saturated.
	QueueWait time.Duration
	// QueryTimeout is the server-side deadline for admitted requests,
	// measured from admission-wrapper entry (queue wait counts against
	// it, so a shed-or-slow request cannot exceed the operator's
	// latency budget by queueing first). 0 = no server-side deadline;
	// the X-Request-Timeout-Ms header is still honored.
	QueryTimeout time.Duration
}

// WithAdmission configures admission control and per-request deadlines
// on the expensive endpoints.
func WithAdmission(o AdmissionOptions) Option {
	return func(so *serverOptions) { so.admission = o }
}

// timeoutHeader is the request header through which a client may
// shorten (never extend) the server's per-request deadline.
const timeoutHeader = "X-Request-Timeout-Ms"

// admission is the runtime form of AdmissionOptions.
type admission struct {
	sem          chan struct{} // nil when MaxInflight == 0
	queueWait    time.Duration
	queryTimeout time.Duration
	retryAfter   string // precomputed Retry-After seconds for 503s
}

func newAdmission(o AdmissionOptions) *admission {
	a := &admission{queueWait: o.QueueWait, queryTimeout: o.QueryTimeout}
	if o.MaxInflight > 0 {
		a.sem = make(chan struct{}, o.MaxInflight)
	}
	// Retry-After: the queue wait rounded up to whole seconds, floor 1
	// — "try again after roughly one shedding window".
	secs := int(o.QueueWait.Seconds())
	if secs < 1 {
		secs = 1
	}
	a.retryAfter = strconv.Itoa(secs)
	return a
}

// effectiveTimeout resolves the per-request deadline: the server cap,
// shortened by a valid X-Request-Timeout-Ms header. ok reports whether
// any deadline applies.
func effectiveTimeout(r *http.Request, cap time.Duration) (d time.Duration, ok bool, err error) {
	d, ok = cap, cap > 0
	if hs := r.Header.Get(timeoutHeader); hs != "" {
		ms, perr := strconv.ParseInt(hs, 10, 64)
		if perr != nil || ms <= 0 {
			return 0, false, errors.New("bad " + timeoutHeader + " header: must be a positive integer of milliseconds")
		}
		if hd := time.Duration(ms) * time.Millisecond; !ok || hd < d {
			d, ok = hd, true // clients may only shorten the server cap
		}
	}
	return d, ok, nil
}

// guard wraps an expensive handler with the admission semaphore and
// the per-request deadline. It must run INSIDE the observability
// middleware (so shed responses carry a request ID and count in the
// per-handler metrics).
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	a := s.adm
	return func(w http.ResponseWriter, r *http.Request) {
		// Deadline first: queue wait burns request budget, not extra.
		d, hasDeadline, err := effectiveTimeout(r, a.queryTimeout)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, err.Error())
			return
		}
		ctx := r.Context()
		if hasDeadline {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
			r = r.WithContext(ctx)
		}

		if a.sem != nil {
			start := time.Now()
			select {
			case a.sem <- struct{}{}: // fast path: free slot
			default:
				if !s.waitForSlot(w, r, a, start) {
					return
				}
			}
			s.obs.queueWaitSeconds.Observe(time.Since(start).Seconds())
			s.obs.inflight.Add(1)
			defer func() {
				s.obs.inflight.Add(-1)
				<-a.sem
			}()
		}
		h(w, r)
	}
}

// waitForSlot blocks for at most the queue-wait budget (and no longer
// than the request's own deadline). It reports whether a slot was
// acquired; on failure the 503/504/499 response has been written.
func (s *Server) waitForSlot(w http.ResponseWriter, r *http.Request, a *admission, start time.Time) bool {
	tr := obs.TraceFrom(r.Context())
	if a.queueWait <= 0 {
		s.shed(w, r, a, time.Since(start))
		return false
	}
	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	select {
	case a.sem <- struct{}{}:
		tr.Eventf("admission", "queued=%s", time.Since(start))
		return true
	case <-timer.C:
		s.shed(w, r, a, time.Since(start))
		return false
	case <-r.Context().Done():
		// The deadline (or the client) fired while still queued: the
		// request dies without ever holding a slot.
		tr.Eventf("admission", "abandoned queued=%s err=%v", time.Since(start), r.Context().Err())
		s.writeCtxError(w, r, r.Context().Err())
		return false
	}
}

// shed writes the 503 + Retry-After load-shedding response.
func (s *Server) shed(w http.ResponseWriter, r *http.Request, a *admission, waited time.Duration) {
	s.obs.shedTotal.Inc()
	obs.TraceFrom(r.Context()).Eventf("shed", "waited=%s", waited)
	w.Header().Set("Retry-After", a.retryAfter)
	writeError(w, r, http.StatusServiceUnavailable,
		"server saturated: all "+strconv.Itoa(cap(a.sem))+" query slots busy; retry after Retry-After seconds")
}

// statusClientClosedRequest is the (nginx-originated, de-facto
// standard) status for "the client went away before we could answer".
// The client never sees it — its connection is gone — but the access
// log and per-handler metrics need a code that distinguishes
// client-abandoned work from server-side timeouts.
const statusClientClosedRequest = 499

// writeCtxError maps a context error that bubbled out of the engine or
// the admission queue onto the HTTP status contract: DeadlineExceeded
// → 504 (the server's or the client's requested budget elapsed;
// afq_http_timeout_total), Canceled → 499 (client closed the request;
// afq_http_cancelled_total). Any other error is a plain 500.
func (s *Server) writeCtxError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.obs.timeoutTotal.Inc()
		obs.TraceFrom(r.Context()).Event("deadline", "query deadline exceeded")
		writeError(w, r, http.StatusGatewayTimeout, "query deadline exceeded; the solve was abandoned mid-iteration")
	case errors.Is(err, context.Canceled):
		s.obs.cancelledTotal.Inc()
		obs.TraceFrom(r.Context()).Event("cancelled", "client closed request")
		writeError(w, r, statusClientClosedRequest, "client closed request")
	default:
		writeError(w, r, http.StatusInternalServerError, err.Error())
	}
}
