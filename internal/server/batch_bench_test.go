package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/rank"
)

// benchQueries is a 16-query panel of distinct single- and multi-term
// queries (every one a distinct kernel column on a cache-less server).
var benchQueries = []string{
	"olap", "xml", "mining", "query", "index", "search", "web", "join",
	"olap cube", "xml mining", "query optimization", "web search",
	"stream join", "database index", "olap mining", "xml query",
}

// BenchmarkQueryBatchV1 measures the v1 batch endpoint against N
// sequential /v1/query calls on an uncached server (so every query
// runs kernel work): the batch path answers the same 16 queries with
// ⌈16/BlockSize⌉ blocked kernel executions where the single path runs
// 16. Reported: ns/query and kernel solves per benchmark op.
func BenchmarkQueryBatchV1(b *testing.B) {
	cfg := datagen.DBLPTopConfig().Scale(0.02)
	cfg.Seed = 4
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(ds, core.Config{Rank: rank.Options{Threshold: 1e-6, MaxIters: 300}})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Engine().GlobalRank() // take the one-time warm-start solve out

	var batchReq BatchQueryRequest
	for _, q := range benchQueries {
		batchReq.Queries = append(batchReq.Queries, BatchQueryItem{Q: q, K: 10})
	}
	body, err := json.Marshal(batchReq)
	if err != nil {
		b.Fatal(err)
	}

	singleURLs := make([]string, len(benchQueries))
	for i, q := range benchQueries {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/query", nil)
		v := req.URL.Query()
		v.Set("q", q)
		v.Set("k", "10")
		req.URL.RawQuery = v.Encode()
		singleURLs[i] = req.URL.String()
	}

	b.Run("single16", func(b *testing.B) {
		var solves int
		s.Engine().SetSolveHook(func(core.SolveStats) { solves++ })
		defer s.Engine().SetSolveHook(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, u := range singleURLs {
				resp, err := http.Get(u)
				if err != nil {
					b.Fatal(err)
				}
				var qr QueryResponse
				if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(benchQueries)), "ns/query")
		b.ReportMetric(float64(solves)/float64(b.N), "solves/op")
	})

	b.Run("batch16", func(b *testing.B) {
		var solves int
		s.Engine().SetSolveHook(func(core.SolveStats) { solves++ })
		defer s.Engine().SetSolveHook(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/v1/query/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var br BatchQueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 || len(br.Answers) != len(benchQueries) {
				b.Fatalf("status %d, answers %d", resp.StatusCode, len(br.Answers))
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(benchQueries)), "ns/query")
		b.ReportMetric(float64(solves)/float64(b.N), "solves/op")
	})
}
