package server

import (
	"io"
	"net/http"
	"net/http/pprof"
	"time"

	"authorityflow/internal/cache"
	"authorityflow/internal/core"
	"authorityflow/internal/obs"
	"authorityflow/internal/profile"
)

// ObsOptions configure the server's observability subsystem. The zero
// value is fully functional: metrics, /metrics exposition and request
// IDs are always on (they are a few atomic adds per request); the zero
// value merely disables the access log, the slow-query log, and
// /debug/pprof.
type ObsOptions struct {
	// Registry receives the server's metric families. Nil means a
	// fresh private registry (exposed at /metrics either way); pass a
	// shared registry to co-host several servers' metrics.
	Registry *obs.Registry
	// AccessLog, when non-nil, receives one structured JSON line per
	// request.
	AccessLog io.Writer
	// SlowLog receives one JSON line — including the request's span
	// events — per request slower than SlowThreshold. Nil falls back
	// to AccessLog.
	SlowLog io.Writer
	// SlowThreshold is the slow-query latency threshold; 0 disables
	// slow-query logging.
	SlowThreshold time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ when true. Off
	// by default: profiling endpoints expose heap contents and must be
	// an explicit operator decision.
	Pprof bool
}

// WithObservability configures the observability subsystem (logs,
// slow-query threshold, pprof, shared registry). Servers built without
// this option still serve /metrics and request IDs from a default
// configuration.
func WithObservability(o ObsOptions) Option {
	return func(so *serverOptions) { so.obs = o }
}

// serverObs bundles the server's metric families, HTTP middleware and
// logs. One instance per Server; all fields are written at
// construction and read concurrently afterwards.
type serverObs struct {
	reg   *obs.Registry
	mw    *obs.Middleware
	start time.Time
	pprof bool

	// cacheOutcome counts /query answers by provenance: the cache
	// Source values plus "uncached".
	cacheOutcome *obs.CounterVec
	// profileOutcome counts personalized answers by the tier's path
	// (hit / combined / global); profileUpdates counts /v1/profile
	// record writes.
	profileOutcome *obs.CounterVec
	profileUpdates *obs.Counter
	// Kernel-side families, fed by the engine's solve hook and the
	// per-iteration observer.
	solves           *obs.Counter
	warmSolves       *obs.Counter
	kernelIterations *obs.Histogram
	solveSeconds     *obs.Histogram
	iterTotal        *obs.Counter
	ratesVersion     *obs.Gauge
	generation       *obs.Gauge
	swapsTotal       *obs.Counter

	// Admission-control families (PR-4 deadline-aware lifecycle):
	// sheds, deadline expiries, client cancellations, queue wait, and
	// the live count of admitted expensive requests.
	shedTotal        *obs.Counter
	timeoutTotal     *obs.Counter
	cancelledTotal   *obs.Counter
	queueWaitSeconds *obs.Histogram
	inflight         *obs.Gauge

	// Audit-workload families (/v1/audit): request count by mode,
	// clipped audits (subgraph larger than the budget), and the size of
	// the returned contribution list.
	auditTotal         *obs.CounterVec
	auditTruncated     *obs.Counter
	auditContributions *obs.Histogram
}

// uncachedOutcome is the cacheOutcome label of answers served without
// a serving cache.
const uncachedOutcome = "uncached"

// newServerObs registers every metric family. Family names are
// namespaced afq_*; see DESIGN.md §7 for the full table.
func newServerObs(o ObsOptions) *serverObs {
	reg := o.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	so := &serverObs{reg: reg, start: time.Now(), pprof: o.Pprof}
	so.mw = obs.NewMiddleware(reg, "afq")
	so.mw.AccessLog = obs.NewLogger(o.AccessLog)
	slow := o.SlowLog
	if slow == nil {
		slow = o.AccessLog
	}
	so.mw.SlowLog = obs.NewLogger(slow)
	so.mw.SlowThreshold = o.SlowThreshold

	so.cacheOutcome = reg.NewCounterVec("afq_query_cache_outcome_total",
		"Served /query answers by provenance: result (result-cache hit), term (term-vector hit), computed (kernel solve ran), uncached (no serving cache).",
		"source")
	for _, s := range append(cache.Sources(), uncachedOutcome) {
		so.cacheOutcome.With(s) // pre-create so every outcome is visible at 0
	}
	so.profileOutcome = reg.NewCounterVec("afq_profile_query_outcome_total",
		"Personalized answers by path: hit (answer LRU), combined (basis combination ran), global (profile carried no usable mixture).",
		"source")
	for _, s := range []string{string(profile.SourceHit), string(profile.SourceCombined), string(profile.SourceGlobal)} {
		so.profileOutcome.With(s)
	}
	so.profileUpdates = reg.NewCounter("afq_profile_updates_total",
		"Profile records written through PUT/POST /v1/profile/{id}.")
	so.solves = reg.NewCounter("afq_kernel_solves_total",
		"Completed power-iteration kernel executions (all entry points, including cache-internal solves and prewarms).")
	so.warmSolves = reg.NewCounter("afq_kernel_warm_solves_total",
		"Kernel executions that were §6.2 warm-started from a previous score vector.")
	so.kernelIterations = reg.NewHistogram("afq_kernel_iterations",
		"Iterations to convergence per kernel execution.", obs.IterationBuckets())
	so.solveSeconds = reg.NewHistogram("afq_kernel_solve_seconds",
		"Wall-clock duration of the kernel iteration stage per execution.", obs.DefaultLatencyBuckets())
	so.iterTotal = reg.NewCounter("afq_kernel_iterations_total",
		"Total power iterations executed across all kernel runs (fed by the per-iteration observer).")
	so.ratesVersion = reg.NewGauge("afq_rates_version",
		"Version of the currently published rates snapshot.")
	so.generation = reg.NewGauge("afq_corpus_generation",
		"Generation number of the currently served corpus (starts at 1; each successful swap increments it).")
	so.swapsTotal = reg.NewCounter("afq_corpus_swaps_total",
		"Successful /v1/corpus/swap publications since process start.")
	so.shedTotal = reg.NewCounter("afq_http_shed_total",
		"Expensive requests shed with 503 because every admission slot stayed busy for the whole queue wait.")
	so.timeoutTotal = reg.NewCounter("afq_http_timeout_total",
		"Requests that hit the per-request deadline (server cap or X-Request-Timeout-Ms) and were answered 504.")
	so.cancelledTotal = reg.NewCounter("afq_http_cancelled_total",
		"Requests abandoned by the client before the answer was ready (status 499 in the access log).")
	so.queueWaitSeconds = reg.NewHistogram("afq_http_queue_wait_seconds",
		"Time admitted requests spent waiting for an admission slot.", obs.DefaultLatencyBuckets())
	so.inflight = reg.NewGauge("afq_http_inflight",
		"Expensive requests currently holding an admission slot.")
	so.auditTotal = reg.NewCounterVec("afq_audit_requests_total",
		"Completed /v1/audit sensitivity rankings by ranking mode.", "mode")
	for _, m := range []core.Mode{core.ModeAuthority, core.ModeHub} {
		so.auditTotal.With(string(m)) // combined is rejected before ranking
	}
	so.auditTruncated = reg.NewCounter("afq_audit_truncated_total",
		"Audits whose explaining subgraph held more arcs than the budget (the contribution list was clipped).")
	so.auditContributions = reg.NewHistogram("afq_audit_contributions",
		"Arc contributions returned per audit (post-budget).", obs.IterationBuckets())
	reg.NewGaugeFunc("afq_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(so.start).Seconds() })
	return so
}

// uptimeSeconds reports how long the server has been up.
func (so *serverObs) uptimeSeconds() float64 { return time.Since(so.start).Seconds() }

// observeIteration is the rank.IterObserver threaded into the engine's
// kernel options: one atomic add per power iteration, from any solve.
func (so *serverObs) observeIteration(iter int, residual float64) {
	so.iterTotal.Inc()
}

// attach wires the metrics that depend on the constructed engine and
// cache: the solve hook, the rates-version gauge refresh, and —
// when the serving cache is on — counter/gauge views over the cache's
// own atomic counters. Both /metrics and /stats read those SAME
// atomics, so the two endpoints cannot drift.
func (so *serverObs) attach(s *Server) {
	s.eng.SetSolveHook(func(st core.SolveStats) {
		so.solves.Inc()
		if st.WarmStarted {
			so.warmSolves.Inc()
		}
		so.kernelIterations.Observe(float64(st.Iterations))
		so.solveSeconds.Observe(st.SolveDur.Seconds())
	})
	so.reg.OnGather(func() {
		so.ratesVersion.Set(float64(s.eng.RatesVersion()))
		so.generation.Set(float64(s.eng.Generation()))
	})
	s.eng.SetSwapHook(func(oldGen, newGen uint64) {
		so.swapsTotal.Inc()
	})
	if s.profiles != nil {
		so.attachProfile(s.profiles)
	}
	if s.cache == nil {
		return
	}
	snap := func() cache.StatsSnapshot { return s.cache.Stats() }
	type cf struct {
		name, help string
		fn         func(st cache.StatsSnapshot) float64
	}
	counters := []cf{
		{"afq_cache_vector_hits_total", "Term-vector cache hits.", func(st cache.StatsSnapshot) float64 { return float64(st.Vector.Hits) }},
		{"afq_cache_vector_misses_total", "Term-vector cache misses.", func(st cache.StatsSnapshot) float64 { return float64(st.Vector.Misses) }},
		{"afq_cache_vector_evictions_total", "Term-vector cache evictions.", func(st cache.StatsSnapshot) float64 { return float64(st.Vector.Evictions) }},
		{"afq_cache_result_hits_total", "Result cache hits.", func(st cache.StatsSnapshot) float64 { return float64(st.Result.Hits) }},
		{"afq_cache_result_misses_total", "Result cache misses.", func(st cache.StatsSnapshot) float64 { return float64(st.Result.Misses) }},
		{"afq_cache_result_evictions_total", "Result cache evictions.", func(st cache.StatsSnapshot) float64 { return float64(st.Result.Evictions) }},
		{"afq_cache_singleflight_dedup_total", "Calls answered by joining another caller's in-flight solve.", func(st cache.StatsSnapshot) float64 { return float64(st.SingleflightDedup) }},
		{"afq_cache_computes_total", "Kernel solves issued by the serving cache.", func(st cache.StatsSnapshot) float64 { return float64(st.Computes) }},
		{"afq_cache_warm_starts_total", "Cache solves warm-started from the previous rates version's vector.", func(st cache.StatsSnapshot) float64 { return float64(st.WarmStarts) }},
		{"afq_cache_prewarmed_total", "Terms refreshed by the background prewarmer.", func(st cache.StatsSnapshot) float64 { return float64(st.Prewarmed) }},
	}
	for _, c := range counters {
		fn := c.fn
		so.reg.NewCounterFunc(c.name, c.help, func() float64 { return fn(snap()) })
	}
	gauges := []cf{
		{"afq_cache_vector_bytes", "Term-vector cache resident bytes.", func(st cache.StatsSnapshot) float64 { return float64(st.Vector.Bytes) }},
		{"afq_cache_vector_entries", "Term-vector cache entries.", func(st cache.StatsSnapshot) float64 { return float64(st.Vector.Entries) }},
		{"afq_cache_vector_budget_bytes", "Term-vector cache byte budget.", func(st cache.StatsSnapshot) float64 { return float64(st.Vector.BudgetBytes) }},
		{"afq_cache_result_bytes", "Result cache resident bytes.", func(st cache.StatsSnapshot) float64 { return float64(st.Result.Bytes) }},
		{"afq_cache_result_entries", "Result cache entries.", func(st cache.StatsSnapshot) float64 { return float64(st.Result.Entries) }},
		{"afq_cache_result_budget_bytes", "Result cache byte budget.", func(st cache.StatsSnapshot) float64 { return float64(st.Result.BudgetBytes) }},
	}
	for _, g := range gauges {
		fn := g.fn
		so.reg.NewGaugeFunc(g.name, g.help, func() float64 { return fn(snap()) })
	}
}

// attachProfile registers counter/gauge views over the personalization
// manager's atomic counters — the same Stats() snapshot /v1/stats
// serves, so /metrics and /stats cannot drift (the cache pattern,
// applied to the profile tier).
func (so *serverObs) attachProfile(pm *profile.Manager) {
	snap := func() profile.Stats { return pm.Stats() }
	type pf struct {
		name, help string
		fn         func(st profile.Stats) float64
	}
	counters := []pf{
		{"afq_profile_store_hits_total", "Profile reads served from the decoded-record LRU.", func(st profile.Stats) float64 { return float64(st.StoreHits) }},
		{"afq_profile_store_misses_total", "Profile reads that missed the LRU (durable store consulted).", func(st profile.Stats) float64 { return float64(st.StoreMisses) }},
		{"afq_profile_disk_loads_total", "Profile records decoded from the durable store.", func(st profile.Stats) float64 { return float64(st.DiskLoads) }},
		{"afq_profile_answer_hits_total", "Personalized answers served from the combined-answer LRU.", func(st profile.Stats) float64 { return float64(st.AnswerHits) }},
		{"afq_profile_answer_misses_total", "Personalized answers that required a basis combination.", func(st profile.Stats) float64 { return float64(st.AnswerMisses) }},
		{"afq_profile_basis_builds_total", "Topic-basis rebuilds (one per observed (generation, rates) identity).", func(st profile.Stats) float64 { return float64(st.BasisBuilds) }},
		{"afq_profile_trains_total", "Profile training rounds (profile-scoped reformulations).", func(st profile.Stats) float64 { return float64(st.Trains) }},
		{"afq_profile_combines_total", "Basis combinations executed (the personalized fast path).", func(st profile.Stats) float64 { return float64(st.Combines) }},
		{"afq_profile_evictions_total", "Entries evicted from the profile and answer LRUs.", func(st profile.Stats) float64 { return float64(st.Evictions) }},
	}
	for _, c := range counters {
		fn := c.fn
		so.reg.NewCounterFunc(c.name, c.help, func() float64 { return fn(snap()) })
	}
	gauges := []pf{
		{"afq_profile_store_bytes", "Resident decoded-profile bytes in the LRU.", func(st profile.Stats) float64 { return float64(st.StoreBytes) }},
		{"afq_profile_resident", "Decoded profiles resident in the LRU.", func(st profile.Stats) float64 { return float64(st.Resident) }},
		{"afq_profile_answer_bytes", "Resident combined-answer bytes in the LRU.", func(st profile.Stats) float64 { return float64(st.AnswerBytes) }},
		{"afq_profile_basis_terms", "Topic terms in the current basis.", func(st profile.Stats) float64 { return float64(st.BasisTerms) }},
		{"afq_profile_basis_bytes", "Resident bytes of the current basis's fixpoint vectors.", func(st profile.Stats) float64 { return float64(st.BasisBytes) }},
		{"afq_profile_basis_generation", "Corpus generation the current basis was built against.", func(st profile.Stats) float64 { return float64(st.BasisGeneration) }},
		{"afq_profile_basis_rates_version", "Rates version the current basis was built against.", func(st profile.Stats) float64 { return float64(st.BasisRatesVersion) }},
	}
	for _, g := range gauges {
		fn := g.fn
		so.reg.NewGaugeFunc(g.name, g.help, func() float64 { return fn(snap()) })
	}
}

// mountPprof wires the net/http/pprof handlers onto mux (behind the
// ObsOptions.Pprof flag — profiling endpoints are opt-in).
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
