// swap.go implements POST /v1/corpus/swap: zero-downtime replacement
// of the served corpus from a binary snapshot file, published through
// the engine's generational CAS (core.Engine.SwapCorpus). The endpoint
// is v1-only, opt-in (WithSwapDir), and restricted to snapshot files
// inside the configured directory — the request names a file, never a
// path.
//
// Swap lifecycle, as observed by concurrent requests:
//
//   - in-flight queries finish on the generation they pinned and render
//     against that generation's graph;
//   - cache entries are keyed by (generation, rates identity), so no
//     cached answer ever crosses the swap;
//   - the swap bumps the rates version, so reformulations holding a
//     pre-swap version token lose their optimistic race with a 409;
//   - the prewarmer refreshes its hot terms against the new generation
//     through the engine's publish hook, exactly as after SetRates.
package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"path/filepath"
	"time"

	"authorityflow/internal/core"
	"authorityflow/internal/obs"
	"authorityflow/internal/storage"
)

// WithSwapDir enables POST /v1/corpus/swap, restricted to binary
// snapshot files inside dir. Without this option the endpoint answers
// 403: swapping loads operator-supplied files into the process, so it
// must be an explicit deployment decision.
func WithSwapDir(dir string) Option {
	return func(o *serverOptions) { o.swapDir = dir }
}

// maxSwapBody bounds the request body (the body names a file; it is
// never large).
const maxSwapBody = 64 << 10

func (s *Server) handleCorpusSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.swapDir == "" {
		writeAPIError(w, r, http.StatusForbidden, CodeInvalidArgument,
			"corpus swapping is disabled: the server was started without a swap directory")
		return
	}
	var req CorpusSwapRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSwapBody+1))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if len(body) > maxSwapBody {
		writeError(w, r, http.StatusBadRequest, "body too large")
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	if req.Snapshot == "" {
		writeError(w, r, http.StatusBadRequest, "snapshot file name required")
		return
	}
	// Containment: the request names a file (or subdirectory path)
	// INSIDE the swap directory. filepath.IsLocal rejects absolute
	// paths, "..", and anything else that could escape.
	if !filepath.IsLocal(req.Snapshot) {
		writeError(w, r, http.StatusBadRequest,
			"snapshot must name a file inside the swap directory")
		return
	}
	tr := obs.TraceFrom(r.Context())

	t0 := time.Now()
	ds, ix, err := storage.ReadSnapshotFile(filepath.Join(s.swapDir, req.Snapshot))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "loading snapshot: "+err.Error())
		return
	}
	tr.Eventf("load", "snapshot=%s nodes=%d edges=%d dur=%s",
		req.Snapshot, ds.Graph.NumNodes(), ds.Graph.NumEdges(), time.Since(t0))

	t1 := time.Now()
	corpus, err := core.NewCorpusWithIndex(ds.Graph, ix, s.cfg)
	if err != nil {
		writeAPIError(w, r, http.StatusInternalServerError, CodeInternal,
			"building corpus: "+err.Error())
		return
	}
	tr.Eventf("build", "dur=%s", time.Since(t1))

	ifGen := req.IfGeneration
	if ifGen == 0 {
		ifGen = s.eng.Generation()
	}
	gen, err := s.eng.SwapCorpus(corpus, ds.Rates, ifGen)
	if errors.Is(err, core.ErrGenerationConflict) {
		writeJSON(w, http.StatusConflict, SwapConflictEnvelope{
			Error: ErrorInfo{
				Code:      CodeVersionConflict,
				Message:   "corpus generation changed concurrently; re-read and retry",
				RequestID: obs.RequestIDFrom(r.Context()),
			},
			Generation: gen,
		})
		return
	}
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "swap rejected: "+err.Error())
		return
	}
	s.ds.Store(ds)
	tr.Eventf("swap", "generation=%d->%d version=%d", ifGen, gen, s.eng.RatesVersion())
	writeJSON(w, http.StatusOK, CorpusSwapResponse{
		Generation:   gen,
		RatesVersion: s.eng.RatesVersion(),
		Name:         ds.Name,
		Nodes:        ds.Graph.NumNodes(),
		Edges:        ds.Graph.NumEdges(),
	})
}
