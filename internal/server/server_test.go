package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/ir"
	"authorityflow/internal/rank"
	"authorityflow/internal/storage"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	cfg := datagen.DBLPTopConfig().Scale(0.02)
	cfg.Seed = 4
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(ds, core.Config{Rank: rank.Options{Threshold: 1e-6, MaxIters: 300}}, WithLegacyGrace())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	s, ts := testServer(t)
	var h HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if h.Status != "ok" || h.Nodes != s.Dataset().Graph.NumNodes() {
		t.Errorf("health = %+v", h)
	}
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var q QueryResponse
	if code := getJSON(t, ts.URL+"/query?q=olap&k=5", &q); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if q.BaseSet == 0 {
		t.Error("empty base set for olap")
	}
	if len(q.Results) == 0 || len(q.Results) > 5 {
		t.Errorf("results = %d", len(q.Results))
	}
	for i := 1; i < len(q.Results); i++ {
		if q.Results[i].Score > q.Results[i-1].Score {
			t.Error("results not sorted")
		}
	}
	if q.Results[0].Display == "" {
		t.Error("missing display string")
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	_, ts := testServer(t)
	if code := getJSON(t, ts.URL+"/query", nil); code != 400 {
		t.Errorf("missing q: status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/query?q=olap&k=0", nil); code != 400 {
		t.Errorf("bad k: status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/query?q=olap&k=9999", nil); code != 400 {
		t.Errorf("huge k: status = %d", code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	s, ts := testServer(t)
	// Find a real target first.
	res := s.RankWith(ir.NewQuery("olap"))
	top := res.TopK(1)
	if len(top) == 0 || top[0].Score == 0 {
		t.Skip("no olap results at this scale")
	}
	var sg storage.SubgraphJSON
	url := fmt.Sprintf("%s/explain?q=olap&target=%d", ts.URL, top[0].Node)
	if code := getJSON(t, url, &sg); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if sg.Target != int64(top[0].Node) {
		t.Errorf("target = %d", sg.Target)
	}
	if len(sg.Nodes) == 0 {
		t.Error("empty explaining subgraph")
	}
	// Errors.
	if code := getJSON(t, ts.URL+"/explain?q=olap", nil); code != 400 {
		t.Errorf("missing target: status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/explain?q=olap&target=99999999", nil); code != 400 {
		t.Errorf("bad target: status = %d", code)
	}
}

func TestReformulateEndpoint(t *testing.T) {
	s, ts := testServer(t)
	res := s.RankWith(ir.NewQuery("olap"))
	top := res.TopK(2)
	if len(top) < 2 || top[1].Score == 0 {
		t.Skip("not enough olap results at this scale")
	}
	before := s.Engine().Rates().Vector()

	var out ReformulateResponse
	url := fmt.Sprintf("%s/reformulate?q=olap&feedback=%d,%d&mode=structure", ts.URL, top[0].Node, top[1].Node)
	if code := getJSON(t, url, &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out.Rates == "" || len(out.Results) == 0 {
		t.Errorf("response = %+v", out)
	}
	if len(out.Expansion) != 0 {
		t.Error("structure mode should not expand the query")
	}
	// The trained rates persist on the server.
	after := s.Engine().Rates().Vector()
	changed := false
	for i := range before {
		if before[i] != after[i] {
			changed = true
		}
	}
	if !changed {
		t.Error("reformulation did not persist rates")
	}
	// /rates reflects them.
	var rates struct {
		Vector []float64 `json:"vector"`
	}
	if code := getJSON(t, ts.URL+"/rates", &rates); code != 200 {
		t.Fatal("rates endpoint failed")
	}
	for i := range rates.Vector {
		if rates.Vector[i] != after[i] {
			t.Fatal("/rates disagrees with engine state")
		}
	}

	// Content mode returns expansion terms.
	url = fmt.Sprintf("%s/reformulate?q=olap&feedback=%d&mode=both", ts.URL, top[0].Node)
	if code := getJSON(t, url, &out); code != 200 {
		t.Fatalf("both mode status = %d", code)
	}
	if len(out.Expansion) == 0 {
		t.Error("both mode should expand the query")
	}
}

func TestReformulateEndpointErrors(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		url  string
		want int
	}{
		{"/reformulate?q=olap", 400},                       // no feedback
		{"/reformulate?q=olap&feedback=abc", 400},          // bad id
		{"/reformulate?q=olap&feedback=1&mode=bogus", 400}, // bad mode
		{"/reformulate?feedback=1", 400},                   // no query
		{"/reformulate?q=olap&feedback=99999999", 400},     // out of range
	}
	for _, c := range cases {
		if code := getJSON(t, ts.URL+c.url, nil); code != c.want {
			t.Errorf("%s: status = %d, want %d", c.url, code, c.want)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	_, ts := testServer(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			q := []string{"olap", "xml", "mining", "search"}[i%4]
			resp, err := http.Get(ts.URL + "/query?q=" + q)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != 200 {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentMixedTraffic(t *testing.T) {
	// Queries racing reformulations run lock-free against atomically
	// published rates snapshots; run with -race to catch violations.
	// Queries must always succeed; a reformulation either succeeds
	// (200) or loses the optimistic publication race (409) — never
	// anything else.
	s, ts := testServer(t)
	res := s.RankWith(ir.NewQuery("olap"))
	top := res.TopK(1)
	if len(top) == 0 || top[0].Score == 0 {
		t.Skip("no feedback target at this scale")
	}
	target := top[0].Node
	done := make(chan error, 10)
	for i := 0; i < 10; i++ {
		go func(i int) {
			var url string
			reform := i%3 == 0
			if reform {
				url = fmt.Sprintf("%s/reformulate?q=olap&feedback=%d", ts.URL, target)
			} else {
				url = ts.URL + "/query?q=olap"
			}
			resp, err := http.Get(url)
			if err == nil {
				resp.Body.Close()
				switch {
				case resp.StatusCode == 200:
				case reform && resp.StatusCode == 409:
					// Lost the CAS race to a concurrent reformulation.
				default:
					err = fmt.Errorf("%s: status %d", url, resp.StatusCode)
				}
			}
			done <- err
		}(i)
	}
	for i := 0; i < 10; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestReformulateVersionToken(t *testing.T) {
	s, ts := testServer(t)
	res := s.RankWith(ir.NewQuery("olap"))
	top := res.TopK(1)
	if len(top) == 0 || top[0].Score == 0 {
		t.Skip("no feedback target at this scale")
	}
	target := top[0].Node

	// /query and /rates report the current version.
	var q QueryResponse
	if code := getJSON(t, ts.URL+"/query?q=olap", &q); code != 200 {
		t.Fatalf("query status = %d", code)
	}
	if q.Version == 0 {
		t.Fatal("query response missing rates version")
	}
	var rates struct {
		Version uint64 `json:"version"`
	}
	if code := getJSON(t, ts.URL+"/rates", &rates); code != 200 {
		t.Fatal("rates endpoint failed")
	}
	if rates.Version != q.Version {
		t.Fatalf("/rates version %d != /query version %d", rates.Version, q.Version)
	}

	// Reformulating with the current token succeeds and bumps the
	// version.
	var out ReformulateResponse
	url := fmt.Sprintf("%s/reformulate?q=olap&feedback=%d&version=%d", ts.URL, target, q.Version)
	if code := getJSON(t, url, &out); code != 200 {
		t.Fatalf("reformulate status = %d", code)
	}
	if out.Version != q.Version+1 {
		t.Errorf("version after reformulation = %d, want %d", out.Version, q.Version+1)
	}

	// Re-presenting the now-stale token yields 409 with the winning
	// version.
	var conflict ConflictResponse
	if code := getJSON(t, url, &conflict); code != 409 {
		t.Fatalf("stale version status = %d, want 409", code)
	}
	if conflict.Version != out.Version {
		t.Errorf("conflict reports version %d, want %d", conflict.Version, out.Version)
	}

	// A malformed token is a 400, not a conflict.
	bad := fmt.Sprintf("%s/reformulate?q=olap&feedback=%d&version=banana", ts.URL, target)
	if code := getJSON(t, bad, nil); code != 400 {
		t.Errorf("bad token status = %d, want 400", code)
	}
}

func TestConcurrentReformulationStress(t *testing.T) {
	// A heavier hammer for -race: many goroutines mixing /query,
	// /reformulate and /rates. Exactly version(final) - version(initial)
	// reformulations may succeed; every other one must 409.
	s, ts := testServer(t)
	res := s.RankWith(ir.NewQuery("olap"))
	top := res.TopK(1)
	if len(top) == 0 || top[0].Score == 0 {
		t.Skip("no feedback target at this scale")
	}
	target := top[0].Node
	startVersion := s.Engine().RatesVersion()

	const n = 24
	codes := make(chan int, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			var url string
			switch i % 4 {
			case 0:
				url = fmt.Sprintf("%s/reformulate?q=olap&feedback=%d", ts.URL, target)
			case 1:
				url = ts.URL + "/rates"
			default:
				url = ts.URL + "/query?q=olap"
			}
			resp, err := http.Get(url)
			if err != nil {
				errs <- err
				codes <- 0
				return
			}
			resp.Body.Close()
			if i%4 != 0 && resp.StatusCode != 200 {
				errs <- fmt.Errorf("%s: status %d", url, resp.StatusCode)
			} else {
				errs <- nil
			}
			if i%4 == 0 {
				codes <- resp.StatusCode
			} else {
				codes <- 0
			}
		}(i)
	}
	succeeded := 0
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		switch c := <-codes; c {
		case 200:
			succeeded++
		case 0, 409:
		default:
			t.Fatalf("reformulate status = %d", c)
		}
	}
	bumps := int(s.Engine().RatesVersion() - startVersion)
	if succeeded != bumps {
		t.Errorf("%d reformulations succeeded but version advanced by %d", succeeded, bumps)
	}
	if succeeded == 0 {
		t.Error("no reformulation succeeded at all")
	}
}

func TestExplainFormats(t *testing.T) {
	s, ts := testServer(t)
	res := s.RankWith(ir.NewQuery("olap"))
	top := res.TopK(1)
	if len(top) == 0 || top[0].Score == 0 {
		t.Skip("no results at this scale")
	}
	base := fmt.Sprintf("%s/explain?q=olap&target=%d", ts.URL, top[0].Node)

	resp, err := http.Get(base + "&format=html")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Errorf("html content type = %q", resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, "<svg") {
		t.Error("html format missing SVG")
	}

	resp, err = http.Get(base + "&format=dot")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if !strings.HasPrefix(body, "digraph") {
		t.Error("dot format malformed")
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
