package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/rank"
)

// fetch issues a request and returns status, headers and raw body.
func fetch(t *testing.T, method, url string, body io.Reader) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// TestAliasV1BodiesByteIdentical is the satellite-1 acceptance table:
// for every deterministic endpoint the legacy alias and its /v1 twin
// return BYTE-identical success bodies — the aliases are the same
// handlers, not reimplementations. (/healthz and /stats carry live
// uptime/counter fields and are covered by the decoded-field tests
// below.)
func TestAliasV1BodiesByteIdentical(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name   string
		legacy string
		v1     string
	}{
		{"query single-term", "/query?q=olap&k=5", "/v1/query?q=olap&k=5"},
		{"query multi-term", "/query?q=xml+mining&k=3", "/v1/query?q=xml+mining&k=3"},
		{"query default k", "/query?q=database", "/v1/query?q=database"},
		{"rates", "/rates", "/v1/rates"},
		{"explain json", "/explain?q=olap&target=0", "/v1/explain?q=olap&target=0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lCode, _, lBody := fetch(t, http.MethodGet, ts.URL+tc.legacy, nil)
			vCode, _, vBody := fetch(t, http.MethodGet, ts.URL+tc.v1, nil)
			if lCode != 200 || vCode != 200 {
				t.Fatalf("status legacy=%d v1=%d, want 200/200", lCode, vCode)
			}
			if !bytes.Equal(lBody, vBody) {
				t.Errorf("bodies differ:\nlegacy: %s\nv1:     %s", lBody, vBody)
			}
		})
	}
}

// TestDeprecationHeadersOnAliases: every legacy response — success or
// error — advertises the RFC 9745 Deprecation date, the RFC 8594
// Sunset date and the successor /v1 route; /v1 responses carry none of
// the three. /metrics is deliberately unversioned and undeprecated.
func TestDeprecationHeadersOnAliases(t *testing.T) {
	_, ts := testServer(t)
	aliases := []struct {
		path      string
		successor string
	}{
		{"/query?q=olap&k=3", "/v1/query"},
		{"/query", "/v1/query"}, // 400 path: headers still present
		{"/explain?q=olap&target=0", "/v1/explain"},
		{"/rates", "/v1/rates"},
		{"/healthz", "/v1/healthz"},
		{"/stats", "/v1/stats"},
	}
	for _, a := range aliases {
		_, hdr, _ := fetch(t, http.MethodGet, ts.URL+a.path, nil)
		if got := hdr.Get("Deprecation"); got != deprecationDate {
			t.Errorf("%s: Deprecation = %q, want %q", a.path, got, deprecationDate)
		}
		if got := hdr.Get("Sunset"); got != sunsetDate {
			t.Errorf("%s: Sunset = %q, want %q", a.path, got, sunsetDate)
		}
		want := "<" + a.successor + ">; rel=\"successor-version\""
		if got := hdr.Get("Link"); got != want {
			t.Errorf("%s: Link = %q, want %q", a.path, got, want)
		}
	}
	for _, path := range []string{"/v1/query?q=olap&k=3", "/v1/rates", "/v1/healthz", "/metrics"} {
		_, hdr, _ := fetch(t, http.MethodGet, ts.URL+path, nil)
		for _, h := range []string{"Deprecation", "Sunset"} {
			if got := hdr.Get(h); got != "" {
				t.Errorf("%s: unexpected %s header %q", path, h, got)
			}
		}
	}
}

// TestContentTypeAudit is the satellite-3 sweep: every JSON-producing
// response — success and error, v1 and legacy — carries
// application/json (set BEFORE the status line via the shared
// writeJSON), the explain export formats carry their own types, and
// /metrics serves the Prometheus text exposition.
func TestContentTypeAudit(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		method   string
		path     string
		body     string
		wantCode int
		wantCT   string
	}{
		{"GET", "/v1/query?q=olap&k=3", "", 200, "application/json"},
		{"GET", "/query?q=olap&k=3", "", 200, "application/json"},
		{"GET", "/v1/query", "", 400, "application/json"},
		{"GET", "/query", "", 400, "application/json"},
		{"POST", "/v1/query/batch", `{"queries":[{"q":"olap"}]}`, 200, "application/json"},
		{"GET", "/v1/query/batch", "", 405, "application/json"},
		{"POST", "/v1/query/batch", `{`, 400, "application/json"},
		{"GET", "/v1/reformulate?q=olap&feedback=0&version=999999", "", 409, "application/json"},
		{"GET", "/v1/rates", "", 200, "application/json"},
		{"GET", "/rates", "", 200, "application/json"},
		{"GET", "/v1/healthz", "", 200, "application/json"},
		{"GET", "/healthz", "", 200, "application/json"},
		{"GET", "/v1/stats", "", 200, "application/json"},
		{"GET", "/stats", "", 200, "application/json"},
		{"GET", "/v1/explain?q=olap&target=0", "", 200, "application/json"},
		{"GET", "/v1/explain?q=olap&target=0&format=html", "", 200, "text/html"},
		{"GET", "/v1/explain?q=olap&target=0&format=dot", "", 200, "text/vnd.graphviz"},
		{"GET", "/metrics", "", 200, "text/plain"},
	}
	for _, tc := range cases {
		var body io.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		}
		code, hdr, raw := fetch(t, tc.method, ts.URL+tc.path, body)
		if code != tc.wantCode {
			t.Errorf("%s %s: status = %d, want %d (body %s)", tc.method, tc.path, code, tc.wantCode, raw)
			continue
		}
		if ct := hdr.Get("Content-Type"); !strings.Contains(ct, tc.wantCT) {
			t.Errorf("%s %s: Content-Type = %q, want %q", tc.method, tc.path, ct, tc.wantCT)
		}
	}
}

// decodeEnvelope decodes a v1 error body, failing the test on any
// deviation from the envelope shape.
func decodeEnvelope(t *testing.T, raw []byte) ErrorEnvelope {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var env ErrorEnvelope
	if err := dec.Decode(&env); err != nil {
		t.Fatalf("body %s is not the v1 envelope: %v", raw, err)
	}
	return env
}

// TestV1ErrorEnvelope: every v1 error is the uniform envelope with a
// stable code and the request ID; the SAME condition on the legacy
// alias keeps the historical flat shape.
func TestV1ErrorEnvelope(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
		wantErr  string
		wantMsg  string
	}{
		{"missing q", "GET", "/v1/query", "", 400, CodeInvalidArgument, "q parameter required"},
		{"unindexable q", "GET", "/v1/query?q=%21%21", "", 400, CodeInvalidArgument, "no indexable terms"},
		{"bad k", "GET", "/v1/query?q=olap&k=0", "", 400, CodeInvalidArgument, "k must be"},
		{"bad target", "GET", "/v1/explain?q=olap&target=-1", "", 400, CodeInvalidArgument, "out of range"},
		{"batch wrong method", "GET", "/v1/query/batch", "", 405, CodeInvalidArgument, "POST required"},
		{"batch bad json", "POST", "/v1/query/batch", "{", 400, CodeInvalidArgument, "bad JSON"},
		{"batch empty", "POST", "/v1/query/batch", `{"queries":[]}`, 400, CodeInvalidArgument, "queries required"},
		{"batch item q", "POST", "/v1/query/batch", `{"queries":[{"q":"olap"},{"q":" "}]}`, 400, CodeInvalidArgument, "queries[1]: q required"},
		{"batch item k", "POST", "/v1/query/batch", `{"queries":[{"q":"olap","k":5000}]}`, 400, CodeInvalidArgument, "queries[0]: k must be"},
		{"batch item unindexable", "POST", "/v1/query/batch", `{"queries":[{"q":"!!,."}]}`, 400, CodeInvalidArgument, "queries[0]: q contains no indexable terms"},
		{"bad timeout header", "GET", "/v1/query?q=olap", "", 400, CodeInvalidArgument, timeoutHeader},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.name == "bad timeout header" {
				req.Header.Set(timeoutHeader, "soon")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantCode, raw)
			}
			env := decodeEnvelope(t, raw)
			if env.Error.Code != tc.wantErr {
				t.Errorf("code = %q, want %q", env.Error.Code, tc.wantErr)
			}
			if !strings.Contains(env.Error.Message, tc.wantMsg) {
				t.Errorf("message %q does not mention %q", env.Error.Message, tc.wantMsg)
			}
			if env.Error.RequestID == "" {
				t.Error("envelope lacks requestId")
			}
		})
	}
	// The batch 405 must advertise the allowed method.
	_, hdr, _ := fetch(t, http.MethodGet, ts.URL+"/v1/query/batch", nil)
	if got := hdr.Get("Allow"); got != http.MethodPost {
		t.Errorf("405 Allow = %q, want POST", got)
	}
	// Same condition, legacy route: flat historical shape, no nesting.
	_, _, raw := fetch(t, http.MethodGet, ts.URL+"/query", nil)
	var flat struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&flat); err != nil {
		t.Fatalf("legacy error body %s is not the flat shape: %v", raw, err)
	}
	if flat.Error == "" || flat.RequestID == "" {
		t.Errorf("legacy flat body incomplete: %s", raw)
	}
}

// TestV1ReformulateConflictEnvelope: the optimistic-concurrency 409
// answers with the envelope PLUS the winning rates version on /v1,
// while the legacy route keeps ConflictResponse (Error as a string).
func TestV1ReformulateConflictEnvelope(t *testing.T) {
	s, ts := testServer(t)
	cur := s.Engine().RatesVersion()
	code, _, raw := fetch(t, http.MethodGet,
		ts.URL+"/v1/reformulate?q=olap&feedback=0&version=999999", nil)
	if code != http.StatusConflict {
		t.Fatalf("status = %d, want 409 (body %s)", code, raw)
	}
	var env ConflictEnvelope
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		t.Fatalf("body %s is not ConflictEnvelope: %v", raw, err)
	}
	if env.Error.Code != CodeVersionConflict {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeVersionConflict)
	}
	if env.Version != cur {
		t.Errorf("version = %d, want current %d", env.Version, cur)
	}
	if env.Error.RequestID == "" {
		t.Error("conflict envelope lacks requestId")
	}

	// Legacy twin: ConflictResponse with Error as a plain string.
	code, _, raw = fetch(t, http.MethodGet,
		ts.URL+"/reformulate?q=olap&feedback=0&version=999999", nil)
	if code != http.StatusConflict {
		t.Fatalf("legacy status = %d, want 409", code)
	}
	var legacy ConflictResponse
	if err := json.Unmarshal(raw, &legacy); err != nil {
		t.Fatalf("legacy body %s is not ConflictResponse: %v", raw, err)
	}
	if legacy.Error == "" || legacy.Version != cur {
		t.Errorf("legacy conflict = %+v, want Error set and version %d", legacy, cur)
	}
}

// TestV1ShedCode: a saturated /v1 route sheds with the envelope code
// "shed" (the guard runs INSIDE the v1 marker, so its errors get the
// envelope too).
func TestV1ShedCode(t *testing.T) {
	var slow atomic.Bool
	started := make(chan struct{})
	release := make(chan struct{})
	s, ts := admissionServer(t,
		AdmissionOptions{MaxInflight: 1, QueueWait: 0},
		slowRankOptions(&slow, started, release))
	s.Engine().GlobalRank()
	slow.Store(true)

	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		fetch(t, http.MethodGet, ts.URL+"/v1/query?q=olap", nil)
	}()
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("blocking solve never started")
	}

	code, hdr, raw := fetch(t, http.MethodGet, ts.URL+"/v1/query?q=xml", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", code, raw)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if env := decodeEnvelope(t, raw); env.Error.Code != CodeShed {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeShed)
	}
	close(release)
	<-blockerDone
}

// TestV1DeadlineCode: a /v1 solve that outlives the request budget is
// answered 504 with the envelope code "deadline".
func TestV1DeadlineCode(t *testing.T) {
	var slow atomic.Bool
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	s, ts := admissionServer(t,
		AdmissionOptions{QueryTimeout: 50 * time.Millisecond},
		slowRankOptions(&slow, started, release))
	s.Engine().GlobalRank()
	slow.Store(true)

	code, _, raw := fetch(t, http.MethodGet, ts.URL+"/v1/query?q=olap", nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", code, raw)
	}
	if env := decodeEnvelope(t, raw); env.Error.Code != CodeDeadline {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeDeadline)
	}
}

// batchTestServer builds a cached server over the shared fixture.
func batchTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	cfg := datagen.DBLPTopConfig().Scale(0.02)
	cfg.Seed = 4
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(ds, core.Config{Rank: rank.Options{Threshold: 1e-6, MaxIters: 300}},
		WithCache(8<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestQueryBatchV1 is the PR-5 acceptance scenario: a cold 16-query
// batch (8 unique terms, each twice) against a cached server performs
// at most ⌈16/BlockSize⌉ kernel executions — asserted via the
// afq_kernel_solves_total delta — and every answer is identical to
// what the corresponding single /v1/query returns on an identically
// seeded twin server.
func TestQueryBatchV1(t *testing.T) {
	s, ts := batchTestServer(t)
	_, single := batchTestServer(t) // identical twin for the reference answers

	unique := []string{"olap", "xml", "mining", "query", "index", "search", "web", "join"}
	var req BatchQueryRequest
	for _, tm := range append(append([]string(nil), unique...), unique...) {
		req.Queries = append(req.Queries, BatchQueryItem{Q: tm, K: 10})
	}
	if len(req.Queries) != 16 {
		t.Fatal("want a 16-query batch")
	}

	// Force the once-only warm-start solve out of the delta (it does not
	// route through the solve hook, but be explicit about the baseline).
	s.Engine().GlobalRank()
	before, _ := scrapeMetrics(t, ts.URL)

	body, _ := json.Marshal(req)
	code, _, raw := fetch(t, http.MethodPost, ts.URL+"/v1/query/batch", bytes.NewReader(body))
	if code != 200 {
		t.Fatalf("batch status = %d (body %s)", code, raw)
	}
	var resp BatchQueryResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != len(req.Queries) {
		t.Fatalf("answers = %d, want %d", len(resp.Answers), len(req.Queries))
	}

	after, _ := scrapeMetrics(t, ts.URL)
	delta := after["afq_kernel_solves_total"] - before["afq_kernel_solves_total"]
	bs := s.Engine().Corpus().BlockSize()
	maxSolves := float64((len(req.Queries) + bs - 1) / bs)
	if delta <= 0 || delta > maxSolves {
		t.Errorf("kernel solves for the batch = %g, want in (0, %g] (BlockSize %d)",
			delta, maxSolves, bs)
	}

	// Per-answer equality with the single /v1/query path, bit-for-bit on
	// the scores.
	for i, item := range req.Queries {
		var want QueryResponse
		if code := getJSON(t, single.URL+"/v1/query?q="+item.Q+"&k=10", &want); code != 200 {
			t.Fatalf("single query %q status = %d", item.Q, code)
		}
		got := resp.Answers[i]
		if got.Version != resp.Version {
			t.Errorf("answer %d version %d != batch version %d", i, got.Version, resp.Version)
		}
		if got.Query != want.Query || got.BaseSet != want.BaseSet ||
			got.Iterations != want.Iterations || got.Version != want.Version {
			t.Errorf("answer %d metadata differs: got %+v, want %+v", i, got, want)
			continue
		}
		if len(got.Results) != len(want.Results) {
			t.Errorf("answer %d: %d results, want %d", i, len(got.Results), len(want.Results))
			continue
		}
		for j := range want.Results {
			w, g := want.Results[j], got.Results[j]
			if w.Node != g.Node || w.InBase != g.InBase || w.Display != g.Display ||
				math.Float64bits(w.Score) != math.Float64bits(g.Score) {
				t.Errorf("answer %d result %d differs: got %+v, want %+v", i, j, g, w)
			}
		}
	}

	// A repeat batch is served entirely from the result cache: zero new
	// kernel solves, every answer marked "result".
	code, _, raw = fetch(t, http.MethodPost, ts.URL+"/v1/query/batch", bytes.NewReader(body))
	if code != 200 {
		t.Fatalf("repeat batch status = %d", code)
	}
	var resp2 BatchQueryResponse
	if err := json.Unmarshal(raw, &resp2); err != nil {
		t.Fatal(err)
	}
	for i, a := range resp2.Answers {
		if a.Cache != "result" {
			t.Errorf("repeat answer %d cache = %q, want result", i, a.Cache)
		}
	}
	final, _ := scrapeMetrics(t, ts.URL)
	if d := final["afq_kernel_solves_total"] - after["afq_kernel_solves_total"]; d != 0 {
		t.Errorf("repeat batch ran %g kernel solves, want 0", d)
	}
}

// TestQueryBatchUncached: batch answers on a cache-disabled server
// match the uncached single /v1/query path.
func TestQueryBatchUncached(t *testing.T) {
	_, ts := testServer(t)
	req := BatchQueryRequest{Queries: []BatchQueryItem{
		{Q: "olap", K: 5}, {Q: "xml mining", K: 3}, {Q: "olap", K: 5},
	}}
	body, _ := json.Marshal(req)
	code, _, raw := fetch(t, http.MethodPost, ts.URL+"/v1/query/batch", bytes.NewReader(body))
	if code != 200 {
		t.Fatalf("status = %d (body %s)", code, raw)
	}
	var resp BatchQueryResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	for i, q := range []string{"/v1/query?q=olap&k=5", "/v1/query?q=xml+mining&k=3", "/v1/query?q=olap&k=5"} {
		var want QueryResponse
		if code := getJSON(t, ts.URL+q, &want); code != 200 {
			t.Fatalf("single %s status = %d", q, code)
		}
		got := resp.Answers[i]
		if got.Query != want.Query || got.BaseSet != want.BaseSet || len(got.Results) != len(want.Results) {
			t.Errorf("answer %d differs: got %+v, want %+v", i, got, want)
			continue
		}
		for j := range want.Results {
			if math.Float64bits(want.Results[j].Score) != math.Float64bits(got.Results[j].Score) {
				t.Errorf("answer %d result %d score differs", i, j)
			}
		}
	}
}

// TestClientV1 drives the typed client end-to-end against a live
// server: every method, the error decode, and the conflict fast-path.
func TestClientV1(t *testing.T) {
	s, ts := batchTestServer(t)
	c := NewClient(ts.URL+"/", nil) // trailing slash must normalize
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Nodes != s.Dataset().Graph.NumNodes() || !h.CacheEnabled {
		t.Errorf("health = %+v", h)
	}

	rts, err := c.Rates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rts.Version != s.Engine().RatesVersion() || len(rts.Vector) == 0 {
		t.Errorf("rates = %+v", rts)
	}

	q, err := c.Query(ctx, "olap", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Query, "olap") || len(q.Results) == 0 || len(q.Results) > 5 {
		t.Errorf("query = %+v", q)
	}

	batch, err := c.QueryBatch(ctx, BatchQueryRequest{Queries: []BatchQueryItem{
		{Q: "olap", K: 5}, {Q: "xml"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Answers) != 2 || batch.Version != s.Engine().RatesVersion() {
		t.Errorf("batch = %+v", batch)
	}
	if math.Float64bits(batch.Answers[0].Results[0].Score) != math.Float64bits(q.Results[0].Score) {
		t.Error("batched olap differs from single olap")
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheEnabled || st.Cache == nil || st.HTTP.RequestsTotal == 0 {
		t.Errorf("stats = %+v", st)
	}

	// Error decode: the envelope becomes a typed *APIError.
	if _, err := c.Query(ctx, "  ", 5); err == nil {
		t.Fatal("blank query should fail")
	} else if apiErr, ok := err.(*APIError); !ok {
		t.Fatalf("error type %T, want *APIError", err)
	} else if apiErr.Status != 400 || apiErr.Code != CodeInvalidArgument ||
		apiErr.RequestID == "" || apiErr.IsConflict() {
		t.Errorf("apiErr = %+v", apiErr)
	} else if !strings.Contains(apiErr.Error(), CodeInvalidArgument) {
		t.Errorf("Error() = %q lacks the code", apiErr.Error())
	}

	// Conflict decode: stale version token → IsConflict with the winning
	// version attached.
	target := batch.Answers[0].Results[0].Node
	if _, err := c.Reformulate(ctx, "olap", []int64{target}, "structure", 999999); err == nil {
		t.Fatal("stale version should conflict")
	} else if apiErr, ok := err.(*APIError); !ok || !apiErr.IsConflict() {
		t.Fatalf("conflict error = %#v, want IsConflict", err)
	} else if apiErr.Version != s.Engine().RatesVersion() {
		t.Errorf("conflict version = %d, want %d", apiErr.Version, s.Engine().RatesVersion())
	}

	// A real reformulation round-trips and bumps the version.
	before := s.Engine().RatesVersion()
	ref, err := c.Reformulate(ctx, "olap", []int64{target}, "both", before)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Version <= before {
		t.Errorf("reformulate version = %d, want > %d", ref.Version, before)
	}
	if len(ref.Results) == 0 {
		t.Error("reformulate returned no results")
	}
}

// TestBatchLimitAndBodyCap: oversize batches and oversize bodies are
// rejected 400 before any kernel work.
func TestBatchLimitAndBodyCap(t *testing.T) {
	_, ts := testServer(t)
	var req BatchQueryRequest
	for i := 0; i <= MaxBatchQueries; i++ {
		req.Queries = append(req.Queries, BatchQueryItem{Q: "olap"})
	}
	body, _ := json.Marshal(req)
	code, _, raw := fetch(t, http.MethodPost, ts.URL+"/v1/query/batch", bytes.NewReader(body))
	if code != 400 {
		t.Fatalf("oversize batch status = %d (body %s)", code, raw)
	}
	if env := decodeEnvelope(t, raw); !strings.Contains(env.Error.Message, "batch limit") {
		t.Errorf("message %q does not mention the batch limit", env.Error.Message)
	}

	huge := strings.NewReader(`{"queries":[{"q":"` + strings.Repeat("x", maxBatchBody+16) + `"}]}`)
	code, _, raw = fetch(t, http.MethodPost, ts.URL+"/v1/query/batch", huge)
	if code != 400 {
		t.Fatalf("huge body status = %d", code)
	}
	if env := decodeEnvelope(t, raw); !strings.Contains(env.Error.Message, "bytes") {
		t.Errorf("message %q does not mention the byte cap", env.Error.Message)
	}
}
