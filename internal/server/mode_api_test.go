package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/rank"
)

// getBody fetches url and returns status + raw body bytes.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestQueryModeSurface(t *testing.T) {
	_, ts := testServer(t)

	// mode=authority is the default: spelling it out changes nothing —
	// the bodies are byte-identical (Mode is omitted for authority).
	c1, b1 := getBody(t, ts.URL+"/v1/query?q=olap&k=5")
	c2, b2 := getBody(t, ts.URL+"/v1/query?q=olap&k=5&mode=authority")
	if c1 != 200 || c2 != 200 {
		t.Fatalf("statuses = %d, %d", c1, c2)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("mode=authority body differs from the default body")
	}

	// hub and combined are first-class: results come back with the mode
	// echoed, on the same generation.
	for _, mode := range []string{"hub", "combined"} {
		var q QueryResponse
		if code := getJSON(t, ts.URL+"/v1/query?q=olap&k=5&mode="+mode, &q); code != 200 {
			t.Fatalf("mode=%s status = %d", mode, code)
		}
		if q.Mode != mode {
			t.Errorf("mode=%s echoed %q", mode, q.Mode)
		}
		if len(q.Results) == 0 {
			t.Errorf("mode=%s returned no results", mode)
		}
		if q.Generation != 1 {
			t.Errorf("mode=%s generation = %d", mode, q.Generation)
		}
	}

	// Repeated hub queries at a pinned generation are byte-identical.
	_, h1 := getBody(t, ts.URL+"/v1/query?q=cube&k=8&mode=hub")
	_, h2 := getBody(t, ts.URL+"/v1/query?q=cube&k=8&mode=hub")
	if !bytes.Equal(h1, h2) {
		t.Error("repeated hub queries are not byte-identical")
	}
}

// TestHubGoldenHTTP is the serving-tier golden: mode=hub over graph g
// must rank bit-identically to mode=authority over a server built on
// the pre-reversed graph (same rates — Reversed swaps the CSR roles,
// not the rate semantics).
func TestHubGoldenHTTP(t *testing.T) {
	cfg := datagen.DBLPTopConfig().Scale(0.02)
	cfg.Seed = 4
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rev := &datagen.Dataset{Name: ds.Name, Graph: ds.Graph.Reversed(), Rates: ds.Rates}

	ecfg := core.Config{Rank: rank.Options{Threshold: 1e-6, MaxIters: 300}}
	newTS := func(d *datagen.Dataset) *httptest.Server {
		s, err := New(d, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	fwd, pre := newTS(ds), newTS(rev)

	type results struct {
		Iterations int             `json:"iterations"`
		Results    json.RawMessage `json:"results"`
	}
	for _, q := range []string{"olap", "cube+aggregation", "mining"} {
		var hub, auth results
		if code := getJSON(t, fwd.URL+"/v1/query?q="+q+"&k=10&mode=hub", &hub); code != 200 {
			t.Fatalf("%s hub status = %d", q, code)
		}
		if code := getJSON(t, pre.URL+"/v1/query?q="+q+"&k=10", &auth); code != 200 {
			t.Fatalf("%s pre-reversed status = %d", q, code)
		}
		if !bytes.Equal(hub.Results, auth.Results) {
			t.Errorf("%s: hub results differ from pre-reversed authority:\n%s\n%s", q, hub.Results, auth.Results)
		}
		if hub.Iterations != auth.Iterations {
			t.Errorf("%s: iterations %d vs %d", q, hub.Iterations, auth.Iterations)
		}
	}
}

func TestAuditEndpoint(t *testing.T) {
	_, ts := testServer(t)

	var q QueryResponse
	if code := getJSON(t, ts.URL+"/v1/query?q=olap&k=1", &q); code != 200 || len(q.Results) == 0 {
		t.Fatalf("seed query failed: code=%d results=%d", code, len(q.Results))
	}
	target := q.Results[0].Node

	url := ts.URL + "/v1/audit?q=olap&target=" + strconv.FormatInt(target, 10)
	var a AuditResponse
	if code := getJSON(t, url, &a); code != 200 {
		t.Fatalf("audit status = %d", code)
	}
	if a.Node != target || !strings.Contains(a.Query, "olap") || a.Score <= 0 {
		t.Errorf("audit header = %+v", a)
	}
	if a.Budget != core.DefaultAuditBudget {
		t.Errorf("default budget = %d, want %d", a.Budget, core.DefaultAuditBudget)
	}
	if len(a.Contributions) == 0 || len(a.Nodes) == 0 {
		t.Fatalf("audit has no contributions: %d arcs, %d nodes", len(a.Contributions), len(a.Nodes))
	}
	if a.Generation != 1 || a.RatesVersion == 0 {
		t.Errorf("audit stamps = gen %d rv %d", a.Generation, a.RatesVersion)
	}
	// Contributions arrive ranked by sensitivity, most influential first.
	for i := 1; i < len(a.Contributions); i++ {
		if a.Contributions[i].Sensitivity > a.Contributions[i-1].Sensitivity {
			t.Fatalf("contributions not ranked: %d before %d", i-1, i)
		}
	}
	for _, c := range a.Contributions {
		if c.Type == "" {
			t.Error("contribution missing transfer-type name")
		}
	}

	// budget truncates the ranking.
	var small AuditResponse
	if code := getJSON(t, url+"&budget=3", &small); code != 200 {
		t.Fatalf("budgeted audit status = %d", code)
	}
	if len(small.Contributions) > 3 {
		t.Errorf("budget=3 returned %d contributions", len(small.Contributions))
	}
	if small.TotalArcs != a.TotalArcs {
		t.Errorf("TotalArcs %d changed under budget from %d", small.TotalArcs, a.TotalArcs)
	}

	// The determinism contract: at a pinned (generation, ratesVersion),
	// repeated audits are byte-identical.
	_, b1 := getBody(t, url+"&budget=5")
	_, b2 := getBody(t, url+"&budget=5")
	if !bytes.Equal(b1, b2) {
		t.Error("repeated audits are not byte-identical")
	}

	// Hub audits work; combined is not explainable.
	var hub AuditResponse
	if code := getJSON(t, url+"&mode=hub", &hub); code != 200 {
		t.Fatalf("hub audit status = %d", code)
	}
	if hub.Mode != "hub" {
		t.Errorf("hub audit mode = %q", hub.Mode)
	}
	code, body := getBody(t, url+"&mode=combined")
	if code != 400 || !strings.Contains(string(body), "not explainable") {
		t.Errorf("combined audit: code=%d body=%s", code, body)
	}
}

// TestReadContractUniform checks the ONE validation table: every read
// surface rejects a bad mode/budget with the same invalid_argument
// message, naming the offending field.
func TestReadContractUniform(t *testing.T) {
	_, ts := testServer(t)

	const wantMode = "mode must be one of authority, hub, combined"
	const wantBudget = "budget must be an integer in 0..1000"

	type env struct {
		Error ErrorInfo `json:"error"`
	}
	surfaces := []string{
		"/v1/query?q=olap&k=5",
		"/v1/explain?q=olap&target=0",
		"/v1/audit?q=olap&target=0",
	}
	for _, s := range surfaces {
		for _, tc := range []struct{ param, want string }{
			{"mode=sideways", wantMode},
			{"budget=-1", wantBudget},
			{"budget=1001", wantBudget},
			{"budget=abc", wantBudget},
		} {
			var e env
			if code := getJSON(t, ts.URL+s+"&"+tc.param, &e); code != 400 {
				t.Fatalf("%s&%s: status = %d, want 400", s, tc.param, code)
			}
			if e.Error.Code != CodeInvalidArgument {
				t.Errorf("%s&%s: code = %q", s, tc.param, e.Error.Code)
			}
			if e.Error.Message != tc.want {
				t.Errorf("%s&%s: message = %q, want %q", s, tc.param, e.Error.Message, tc.want)
			}
		}
	}

	// Batch items share the same table, with the item position prefixed.
	body := `{"queries":[{"q":"olap","k":3,"mode":"sideways"}]}`
	resp, err := http.Post(ts.URL+"/v1/query/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 400 {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), wantMode) {
		t.Errorf("batch error does not carry the shared message: %s", raw)
	}
}

// TestExplainEnvelope checks the shared explain/audit envelope: the
// legacy subgraph fields survive unchanged, and the envelope additions
// (node, score, contributions, stamps) ride alongside.
func TestExplainEnvelope(t *testing.T) {
	_, ts := testServer(t)

	var q QueryResponse
	if code := getJSON(t, ts.URL+"/v1/query?q=olap&k=1", &q); code != 200 || len(q.Results) == 0 {
		t.Fatal("seed query failed")
	}
	target := strconv.FormatInt(q.Results[0].Node, 10)

	var e ExplainResponse
	if code := getJSON(t, ts.URL+"/v1/explain?q=olap&target="+target, &e); code != 200 {
		t.Fatalf("explain status = %d", code)
	}
	// Legacy fields (the embedded SubgraphJSON).
	if len(e.SubgraphJSON.Nodes) == 0 || len(e.SubgraphJSON.Arcs) == 0 {
		t.Fatal("legacy subgraph fields are empty")
	}
	// Envelope additions.
	if e.Node != q.Results[0].Node || e.Score <= 0 {
		t.Errorf("envelope node/score = %d/%v", e.Node, e.Score)
	}
	if e.Mode != "authority" {
		t.Errorf("explain mode = %q", e.Mode)
	}
	if e.Generation != 1 || e.RatesVersion == 0 {
		t.Errorf("explain stamps = gen %d rv %d", e.Generation, e.RatesVersion)
	}
	if len(e.Contributions) == 0 {
		t.Fatal("explain envelope has no contributions")
	}

	// budget truncates ONLY the contributions, never the subgraph.
	var small ExplainResponse
	if code := getJSON(t, ts.URL+"/v1/explain?q=olap&target="+target+"&budget=2", &small); code != 200 {
		t.Fatalf("budgeted explain status = %d", code)
	}
	if len(small.Contributions) > 2 {
		t.Errorf("budget=2 kept %d contributions", len(small.Contributions))
	}
	if len(small.SubgraphJSON.Arcs) != len(e.SubgraphJSON.Arcs) {
		t.Errorf("budget truncated the subgraph: %d vs %d arcs", len(small.SubgraphJSON.Arcs), len(e.SubgraphJSON.Arcs))
	}
}
