package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/rank"
	"authorityflow/internal/storage"
)

// writeTestSnapshot generates a dataset at the given scale/seed and
// writes its binary snapshot (graph + rates + index) into dir.
func writeTestSnapshot(t *testing.T, dir, name string, scale float64, seed int64) *datagen.Dataset {
	t.Helper()
	cfg := datagen.DBLPTopConfig().Scale(scale)
	cfg.Seed = seed
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ds.Graph, ds.Rates, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteSnapshotFile(filepath.Join(dir, name), ds, eng.Index()); err != nil {
		t.Fatal(err)
	}
	return ds
}

// swapServer builds a server with swapping enabled against a temp
// directory holding one swappable snapshot, "next.snap".
func swapServer(t *testing.T) (*Server, *httptest.Server, *datagen.Dataset) {
	t.Helper()
	dir := t.TempDir()
	next := writeTestSnapshot(t, dir, "next.snap", 0.015, 9)

	cfg := datagen.DBLPTopConfig().Scale(0.02)
	cfg.Seed = 4
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(ds, core.Config{Rank: rank.Options{Threshold: 1e-6, MaxIters: 300}},
		WithSwapDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, next
}

func postSwap(t *testing.T, url string, req CorpusSwapRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/corpus/swap", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode swap response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestCorpusSwapEndpoint(t *testing.T) {
	s, ts, next := swapServer(t)

	var h HealthResponse
	getJSON(t, ts.URL+"/v1/healthz", &h)
	if h.Generation != 1 {
		t.Fatalf("initial generation = %d, want 1", h.Generation)
	}
	oldNodes := s.Dataset().Graph.NumNodes()

	var ok CorpusSwapResponse
	if code := postSwap(t, ts.URL, CorpusSwapRequest{Snapshot: "next.snap"}, &ok); code != 200 {
		t.Fatalf("swap status = %d", code)
	}
	if ok.Generation != 2 {
		t.Errorf("swap generation = %d, want 2", ok.Generation)
	}
	if ok.Nodes != next.Graph.NumNodes() || ok.Edges != next.Graph.NumEdges() {
		t.Errorf("swap reported (%d,%d), snapshot has (%d,%d)",
			ok.Nodes, ok.Edges, next.Graph.NumNodes(), next.Graph.NumEdges())
	}
	if ok.Nodes == oldNodes {
		t.Fatal("test datasets have equal node counts; pick different scales")
	}

	// The swapped-in corpus serves immediately, without restart.
	var q QueryResponse
	if code := getJSON(t, ts.URL+"/v1/query?q=mining&k=5", &q); code != 200 {
		t.Fatalf("post-swap query status = %d", code)
	}
	if q.Generation != 2 {
		t.Errorf("query generation = %d, want 2", q.Generation)
	}
	for _, it := range q.Results {
		if int(it.Node) >= next.Graph.NumNodes() {
			t.Errorf("result node %d out of range for the swapped-in graph", it.Node)
		}
	}

	// Health, stats and the Dataset accessor all track the new corpus.
	getJSON(t, ts.URL+"/v1/healthz", &h)
	if h.Generation != 2 || h.Nodes != next.Graph.NumNodes() {
		t.Errorf("health after swap = %+v", h)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Generation != 2 || st.CorpusSwaps != 1 {
		t.Errorf("stats after swap: generation=%d swaps=%d", st.Generation, st.CorpusSwaps)
	}
	if s.Dataset().Graph.NumNodes() != next.Graph.NumNodes() {
		t.Errorf("Dataset() still returns the old corpus")
	}
}

func TestCorpusSwapConflict(t *testing.T) {
	_, ts, _ := swapServer(t)

	var env SwapConflictEnvelope
	code := postSwap(t, ts.URL, CorpusSwapRequest{Snapshot: "next.snap", IfGeneration: 42}, &env)
	if code != http.StatusConflict {
		t.Fatalf("stale-token swap status = %d, want 409", code)
	}
	if env.Error.Code != CodeVersionConflict {
		t.Errorf("error code = %q, want %q", env.Error.Code, CodeVersionConflict)
	}
	if env.Generation != 1 {
		t.Errorf("conflict reports generation %d, want the winner 1", env.Generation)
	}

	// Explicit matching token succeeds.
	if code := postSwap(t, ts.URL, CorpusSwapRequest{Snapshot: "next.snap", IfGeneration: env.Generation}, nil); code != 200 {
		t.Fatalf("matching-token swap status = %d", code)
	}
}

func TestCorpusSwapRejections(t *testing.T) {
	dir := t.TempDir()
	writeTestSnapshot(t, dir, "next.snap", 0.015, 9)
	// A valid snapshot with a flipped section-table byte: structurally a
	// file, but the table checksum no longer matches.
	good, err := os.ReadFile(filepath.Join(dir, "next.snap"))
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Clone(good)
	bad[40] ^= 0xff // inside the section table (header is 32 bytes)
	if err := os.WriteFile(filepath.Join(dir, "corrupt.snap"), bad, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := datagen.DBLPTopConfig().Scale(0.02)
	cfg.Seed = 4
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(ds, core.Config{Rank: rank.Options{Threshold: 1e-6, MaxIters: 300}},
		WithSwapDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	cases := []struct {
		name string
		req  CorpusSwapRequest
		want int
	}{
		{"empty name", CorpusSwapRequest{}, 400},
		{"path traversal", CorpusSwapRequest{Snapshot: "../next.snap"}, 400},
		{"absolute path", CorpusSwapRequest{Snapshot: "/etc/passwd"}, 400},
		{"missing file", CorpusSwapRequest{Snapshot: "nope.snap"}, 400},
		{"corrupt snapshot", CorpusSwapRequest{Snapshot: "corrupt.snap"}, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var env struct {
				Error ErrorInfo `json:"error"`
			}
			if code := postSwap(t, ts.URL, tc.req, &env); code != tc.want {
				t.Fatalf("status = %d, want %d", code, tc.want)
			}
			if env.Error.Message == "" {
				t.Error("error envelope missing message")
			}
		})
	}

	// GET is not allowed.
	resp, err := http.Get(ts.URL + "/v1/corpus/swap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}

	// After all the rejections, the untouched generation still serves.
	var h HealthResponse
	if code := getJSON(t, ts.URL+"/v1/healthz", &h); code != 200 || h.Generation != 1 {
		t.Errorf("health after rejections: code=%d generation=%d", code, h.Generation)
	}
}

func TestCorpusSwapDisabled(t *testing.T) {
	_, ts := testServer(t) // no WithSwapDir
	if code := postSwap(t, ts.URL, CorpusSwapRequest{Snapshot: "next.snap"}, nil); code != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", code)
	}
}

// TestCorpusSwapUnderLoad is the serving-layer -race hammer: concurrent
// queries while the corpus is swapped back and forth. Every response
// must be internally consistent — the generation it reports must bound
// every node ID it renders.
func TestCorpusSwapUnderLoad(t *testing.T) {
	dir := t.TempDir()
	gen1 := writeTestSnapshot(t, dir, "a.snap", 0.02, 4)
	gen2 := writeTestSnapshot(t, dir, "b.snap", 0.015, 9)

	s, err := New(gen1, core.Config{Rank: rank.Options{Threshold: 1e-5, MaxIters: 120}},
		WithSwapDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Node count per generation: odd generations serve a.snap's shape,
	// even generations b.snap's (the swapper strictly alternates).
	nodesFor := func(gen uint64) int {
		if gen%2 == 1 {
			return gen1.Graph.NumNodes()
		}
		return gen2.Graph.NumNodes()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var q QueryResponse
				code := getJSON(t, ts.URL+"/v1/query?q=mining&k=5", &q)
				if code != 200 {
					t.Errorf("query status = %d", code)
					return
				}
				if q.Generation == 0 {
					t.Error("query response missing generation")
					return
				}
				n := nodesFor(q.Generation)
				for _, it := range q.Results {
					if int(it.Node) >= n {
						t.Errorf("generation %d response holds node %d, graph has %d nodes",
							q.Generation, it.Node, n)
						return
					}
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		names := []string{"b.snap", "a.snap"}
		for i := 0; i < 40; i++ {
			select {
			case <-stop:
				return
			default:
			}
			code := postSwap(t, ts.URL, CorpusSwapRequest{Snapshot: names[i%2]}, nil)
			if code != 200 && code != http.StatusConflict {
				t.Errorf("swap %d status = %d", i, code)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.CorpusSwaps == 0 {
		t.Error("no swap ever succeeded under load")
	}
	if st.Generation != uint64(st.CorpusSwaps)+1 {
		t.Errorf("generation %d inconsistent with %d swaps", st.Generation, st.CorpusSwaps)
	}
}
