// api.go is the single definition point of the server's public HTTP
// surface: every request/response DTO, the stable machine-readable
// error codes, the v1 error envelope, and the /v1 route wrappers.
//
// # Versioning
//
// The canonical surface is versioned under /v1:
//
//	GET  /v1/query?q=olap&k=10[&mode=authority|hub|combined][&profile=alice]
//	POST /v1/query/batch          {"queries":[{"q":"olap","k":10,"mode":"hub"}, ...]}
//	GET  /v1/explain?q=olap&target=123[&mode=...][&budget=N]
//	GET  /v1/audit?q=olap&target=123[&mode=...][&budget=N]
//	GET  /v1/reformulate?q=olap&feedback=123,456&mode=...&version=N[&profile=alice]
//	GET|PUT|POST|DELETE /v1/profile/{id}
//	GET  /v1/rates | /v1/healthz | /v1/stats
//
// The four READ surfaces (/v1/query, /v1/query/batch, /v1/explain,
// /v1/audit) share ONE parameter contract for mode and budget — see
// contract.go. (/v1/reformulate's mode is the unrelated, pre-existing
// reformulation-strategy switch.)
//
// The pre-v1 unversioned routes passed their RFC 8594 sunset on
// 2026-08-06 and now answer 410 Gone with the v1 envelope naming the
// successor route. The -legacy-grace flag (WithLegacyGrace) restores
// the pre-sunset alias behaviour — same handlers, byte-identical
// success bodies — for deployments still migrating; both modes carry
// Deprecation, Sunset and Link (rel="successor-version") headers.
// /metrics stays unversioned by Prometheus convention.
//
// # Errors
//
// v1 routes answer every error with one envelope:
//
//	{"error": {"code": "invalid_argument", "message": "...", "requestId": "..."}}
//
// where code is one of the Code* constants below — stable,
// machine-readable strings clients may switch on (messages may change;
// codes may not). The 409 of /v1/reformulate adds the winning rates
// version next to the envelope. Legacy routes keep their historical
// flat error shape ({"error": "...", "requestId": "..."} and the
// ConflictResponse 409) so pre-v1 clients never break; which shape a
// request gets is decided by the route that admitted it, so shared
// handlers and middleware need no per-endpoint error logic.
package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"

	"authorityflow/internal/cache"
	"authorityflow/internal/core"
	"authorityflow/internal/ir"
	"authorityflow/internal/obs"
	"authorityflow/internal/profile"
	"authorityflow/internal/storage"
)

// Stable machine-readable error codes of the v1 error envelope. These
// strings are API surface: clients switch on them, so they may never be
// renamed (adding new ones is fine).
const (
	// CodeInvalidArgument: the request itself is malformed — missing or
	// unindexable q, k out of range, bad node IDs, bad confidence list,
	// bad version token, malformed batch body or timeout header. HTTP
	// 400 (or 405 for a wrong method).
	CodeInvalidArgument = "invalid_argument"
	// CodeVersionConflict: the optimistic version token lost its race —
	// rates were republished since the version the client saw. HTTP 409.
	CodeVersionConflict = "version_conflict"
	// CodeShed: the admission queue was saturated; retry after the
	// Retry-After header. HTTP 503.
	CodeShed = "shed"
	// CodeDeadline: the per-request deadline elapsed and the solve was
	// abandoned mid-iteration. HTTP 504.
	CodeDeadline = "deadline"
	// CodeCancelled: the client closed the request before the answer was
	// ready. HTTP 499 (never actually observed by the — departed —
	// client, but kept stable for proxies and logs).
	CodeCancelled = "cancelled"
	// CodeInternal: anything else. HTTP 500.
	CodeInternal = "internal"
	// CodeGone: the request hit a legacy unversioned route after its
	// sunset date. The message and the Link header name the /v1
	// successor. HTTP 410.
	CodeGone = "gone"
	// CodeProfileNotFound: no profile exists under the requested id.
	// HTTP 404 (distinct from CodeInvalidArgument's 404 so clients can
	// tell "create it first" from "bad request").
	CodeProfileNotFound = "profile_not_found"
)

// ErrorInfo is the body of the v1 error envelope.
type ErrorInfo struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"requestId,omitempty"`
}

// ErrorEnvelope is the uniform v1 error payload.
type ErrorEnvelope struct {
	Error ErrorInfo `json:"error"`
}

// ConflictEnvelope is the v1 409 payload of /v1/reformulate: the error
// envelope plus the currently published rates version, so the client
// can re-read and retry against it.
type ConflictEnvelope struct {
	Error   ErrorInfo `json:"error"`
	Version uint64    `json:"version"`
}

// ---- request/response DTOs (shared by v1 and the legacy aliases) ----

// Result is one JSON-rendered ranked node.
type Result struct {
	Node    int64   `json:"node"`
	Score   float64 `json:"score"`
	Display string  `json:"display"`
	Snippet string  `json:"snippet,omitempty"`
	InBase  bool    `json:"inBase"`
}

// QueryResponse is the /v1/query (and legacy /query) payload. Version
// is the rates-snapshot version the ranking ran under; clients that
// later reformulate based on these results should pass it as the
// version parameter to detect concurrent rate changes.
type QueryResponse struct {
	Query string `json:"query"`
	// Mode is the ranking direction the answer was computed under ("hub"
	// or "combined"); omitted for authority — the pre-contract meaning —
	// so authority bodies stay byte-identical to their pre-mode form.
	Mode       string `json:"mode,omitempty"`
	BaseSet    int    `json:"baseSet"`
	Iterations int    `json:"iterations"`
	Version    uint64 `json:"version"`
	// Generation is the corpus generation the ranking ran on; node IDs
	// in Results are only meaningful against that generation.
	Generation uint64 `json:"generation"`
	// Cache reports how a cache-enabled server produced the answer
	// ("result", "term", or "computed"); omitted when serving uncached.
	// Profile-scoped answers report the personalization tier's path
	// instead ("hit", "combined", "global").
	Cache string `json:"cache,omitempty"`
	// Profile names the profile a personalized answer was combined for
	// (the request's profile parameter); absent on global answers.
	Profile string `json:"profile,omitempty"`
	// Personalized reports whether the profile's mixture actually moved
	// the ranking (false when the profile is untrained or its topics
	// fell out of the current basis — the answer then equals the global
	// ranking).
	Personalized bool     `json:"personalized,omitempty"`
	Results      []Result `json:"results"`
}

// BatchQueryItem is one query of a /v1/query/batch request.
type BatchQueryItem struct {
	// Q is the query string, parsed exactly as /v1/query's q parameter.
	Q string `json:"q"`
	// K is the per-query top-k (0 = the default 10; max 1000).
	K int `json:"k,omitempty"`
	// Mode is the per-item ranking direction, validated under the uniform
	// read contract (contract.go); empty means authority.
	Mode string `json:"mode,omitempty"`
	// Budget is accepted for contract uniformity (validated, unused by
	// batch answers — they carry no contribution lists).
	Budget int `json:"budget,omitempty"`
}

// BatchQueryRequest is the POST /v1/query/batch body.
type BatchQueryRequest struct {
	Queries []BatchQueryItem `json:"queries"`
}

// MaxBatchQueries caps the number of queries one batch may carry.
const MaxBatchQueries = 64

// BatchQueryResponse is the /v1/query/batch payload: one QueryResponse
// per request item, in order, each identical to what the corresponding
// single /v1/query call would have returned. Version is the single
// rates-snapshot version the WHOLE batch was answered under (every
// answer's own version equals it).
type BatchQueryResponse struct {
	Version uint64 `json:"version"`
	// Generation is the single corpus generation the WHOLE batch was
	// answered on (every answer's own generation equals it).
	Generation uint64          `json:"generation"`
	Answers    []QueryResponse `json:"answers"`
}

// ReformulateResponse is the /v1/reformulate payload. Version is the
// rates-snapshot version AFTER the structure-based update was
// published (equal to the pre-reformulation version when the mode
// carries no rate change or publication was skipped).
type ReformulateResponse struct {
	Query   string `json:"query"`
	Rates   string `json:"rates"`
	Version uint64 `json:"version"`
	// Profile and ProfileRev are set on profile-scoped reformulations
	// (?profile=): the feedback trained the named profile's private
	// mixture and rates-delta instead of publishing globally, Rates
	// reports the profile's EFFECTIVE (not published) rates, Version is
	// the unchanged published version the training ran under, and
	// ProfileRev is the profile's post-training revision.
	Profile    string          `json:"profile,omitempty"`
	ProfileRev uint64          `json:"profileRev,omitempty"`
	Expansion  []ExpansionTerm `json:"expansion,omitempty"`
	Results    []Result        `json:"results"`
}

// ConflictResponse is the LEGACY 409 payload of /reformulate: another
// reformulation published first. Version is the currently published
// rates version; re-query and retry against it. v1 routes answer the
// same condition with ConflictEnvelope.
type ConflictResponse struct {
	Error   string `json:"error"`
	Version uint64 `json:"version"`
}

// CorpusSwapRequest is the POST /v1/corpus/swap body. Snapshot names
// a binary snapshot FILE inside the server's swap directory (no
// absolute paths, no traversal). IfGeneration, when non-zero, is the
// optimistic concurrency token: the swap publishes only if the served
// generation still equals it; zero means "swap whatever is current".
type CorpusSwapRequest struct {
	Snapshot     string `json:"snapshot"`
	IfGeneration uint64 `json:"ifGeneration,omitempty"`
}

// CorpusSwapResponse is the 200 payload of /v1/corpus/swap.
type CorpusSwapResponse struct {
	Generation   uint64 `json:"generation"`
	RatesVersion uint64 `json:"ratesVersion"`
	Name         string `json:"name"`
	Nodes        int    `json:"nodes"`
	Edges        int    `json:"edges"`
}

// SwapConflictEnvelope is the 409 payload of /v1/corpus/swap: the v1
// error envelope plus the currently served generation, so the operator
// can re-read and retry against it (the generational twin of
// ConflictEnvelope).
type SwapConflictEnvelope struct {
	Error      ErrorInfo `json:"error"`
	Generation uint64    `json:"generation"`
}

// ExpansionTerm is one content-expansion term in a reformulation
// response.
type ExpansionTerm struct {
	Term   string  `json:"term"`
	Weight float64 `json:"weight"`
}

// ---- the shared explain/audit envelope ----
//
// /v1/explain (format=json) and /v1/audit answer with ONE envelope
// shape: node, score, mode, generation, ratesVersion, and a ranked
// contributions[] block. /v1/explain additionally embeds every legacy
// SubgraphJSON field unchanged (target, query, explainedScore,
// converged, iterations, nodes, arcs) — the envelope fields are pure
// additions, so pre-contract explain clients keep decoding.

// Contribution is one ranked entry of the envelope: an explaining-
// subgraph arc ordered by the sensitivity of the target's score to
// perturbing the arc's authority transfer rate (core.AuditArc rendered
// for the wire). From/To follow the ranked direction — for mode=hub
// they are reversed-graph endpoints.
type Contribution struct {
	From        int64   `json:"from"`
	To          int64   `json:"to"`
	Type        string  `json:"type"`
	Rate        float64 `json:"rate"`
	Flow        float64 `json:"flow"`
	Sensitivity float64 `json:"sensitivity"`
}

// NodeContribution aggregates arc sensitivities per source node.
type NodeContribution struct {
	Node        int64   `json:"node"`
	Display     string  `json:"display"`
	Sensitivity float64 `json:"sensitivity"`
	Flow        float64 `json:"flow"`
}

// ExplainResponse is the /v1/explain JSON payload: the legacy subgraph
// export embedded verbatim, plus the shared envelope additions. Budget
// truncates ONLY Contributions; the embedded nodes/arcs stay complete.
type ExplainResponse struct {
	storage.SubgraphJSON
	Node          int64          `json:"node"`
	Score         float64        `json:"score"`
	Mode          string         `json:"mode"`
	Generation    uint64         `json:"generation"`
	RatesVersion  uint64         `json:"ratesVersion"`
	Contributions []Contribution `json:"contributions"`
}

// AuditResponse is the /v1/audit payload: the same envelope, with the
// per-node aggregation and the pre-truncation totals (TotalArcs/
// TotalNodes let a client tell a complete audit from a clipped one).
// At a pinned (generation, ratesVersion) the body is byte-identical
// across repeated requests — the determinism contract the audit tests
// pin at both the server and the router layer.
type AuditResponse struct {
	Node          int64              `json:"node"`
	Query         string             `json:"query"`
	Score         float64            `json:"score"`
	Mode          string             `json:"mode"`
	Budget        int                `json:"budget"`
	TotalArcs     int                `json:"totalArcs"`
	TotalNodes    int                `json:"totalNodes"`
	Converged     bool               `json:"converged"`
	Iterations    int                `json:"iterations"`
	Generation    uint64             `json:"generation"`
	RatesVersion  uint64             `json:"ratesVersion"`
	Contributions []Contribution     `json:"contributions"`
	Nodes         []NodeContribution `json:"nodes"`
}

// ProfileUpdateRequest is the PUT/POST /v1/profile/{id} body: replace
// the profile's declared interests. Mixture weights are non-negative
// topic weights over basis terms (unknown terms are kept in the record
// and simply carry no weight until a basis contains them); Beta is the
// personalization blend factor in [0,1) (0 = the server default). A
// trained rates-delta, if any, survives updates — it is learned through
// profile-scoped reformulation, not declared.
type ProfileUpdateRequest struct {
	Mixture map[string]float64 `json:"mixture"`
	Beta    float64            `json:"beta,omitempty"`
}

// ProfileResponse is the GET /v1/profile/{id} payload (and the 200
// payload of PUT/POST, reporting the just-stored state). Rev increments
// on every mutation — API update or feedback training — and doubles as
// the optimistic token that invalidates the profile's cached answers.
type ProfileResponse struct {
	ID      string             `json:"id"`
	Mixture map[string]float64 `json:"mixture"`
	Beta    float64            `json:"beta"`
	Rev     uint64             `json:"rev"`
	// HasDelta reports whether the profile carries a trained rates-delta
	// (the delta itself is internal — it personalizes training and the
	// direct solve path, not the combine fast path; see DESIGN.md §12).
	HasDelta bool `json:"hasDelta"`
	// TrainedGeneration/TrainedRatesVersion record the engine state the
	// last training round ran against (diagnostics).
	TrainedGeneration   uint64 `json:"trainedGeneration,omitempty"`
	TrainedRatesVersion uint64 `json:"trainedRatesVersion,omitempty"`
}

// HealthResponse is the /v1/healthz payload: enough for an operator to
// see WHAT a replica is serving — dataset identity and size, the
// currently published rates version, and whether the serving cache is
// on.
type HealthResponse struct {
	Status        string  `json:"status"`
	Name          string  `json:"name"`
	Nodes         int     `json:"nodes"`
	Edges         int     `json:"edges"`
	RatesVersion  uint64  `json:"ratesVersion"`
	Generation    uint64  `json:"generation"`
	CacheEnabled  bool    `json:"cacheEnabled"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// RatesResponse is the GET /v1/rates payload (and the 200 payload of
// POST /v1/rates, reporting the just-published state).
type RatesResponse struct {
	Rates   string    `json:"rates"`
	Vector  []float64 `json:"vector"`
	Version uint64    `json:"version"`
}

// RatesPublishRequest is the POST /v1/rates body: publish an
// already-trained rate vector (indexed by TransferTypeID, exactly as
// GET /v1/rates reports it) through the engine's optimistic CAS. This
// is the fleet-propagation primitive of the scale-out tier: after one
// replica reformulates, the router replays the resulting vector onto
// every other replica so the whole fleet advances through the same
// version sequence. IfVersion, when non-zero, asserts the replica's
// current rates version (the CAS token; zero means "whatever is
// current"); IfGeneration, when non-zero, additionally asserts the
// corpus generation, so a vector trained on one generation is never
// published onto another.
type RatesPublishRequest struct {
	Vector       []float64 `json:"vector"`
	IfVersion    uint64    `json:"ifVersion,omitempty"`
	IfGeneration uint64    `json:"ifGeneration,omitempty"`
}

// StatsResponse is the /v1/stats payload. The pre-v1 shape
// (cacheEnabled, ratesVersion, cache) is preserved; the counters are
// re-backed by the observability subsystem — the cache block reads the
// SAME atomic counters the /metrics afq_cache_* families read, and the
// http / kernel blocks read the registry's own metric objects — so
// /stats and /metrics can never drift.
type StatsResponse struct {
	CacheEnabled bool   `json:"cacheEnabled"`
	RatesVersion uint64 `json:"ratesVersion"`
	// Generation is the currently served corpus generation; CorpusSwaps
	// counts successful /v1/corpus/swap publications since start.
	Generation    uint64               `json:"generation"`
	CorpusSwaps   int64                `json:"corpusSwaps"`
	UptimeSeconds float64              `json:"uptimeSeconds"`
	HTTP          HTTPStats            `json:"http"`
	Kernel        KernelStats          `json:"kernel"`
	Cache         *cache.StatsSnapshot `json:"cache,omitempty"`
	// Profile is the personalization tier's counters (present only when
	// the server was built WithProfiles); it reads the SAME atomics the
	// afq_profile_* metric families read.
	Profile *profile.Stats `json:"profile,omitempty"`
}

// HTTPStats summarizes the middleware's request counters, keyed
// "handler code" (e.g. "/query 200") exactly as /metrics labels them.
type HTTPStats struct {
	RequestsTotal int64            `json:"requestsTotal"`
	ByHandler     map[string]int64 `json:"byHandler,omitempty"`
	SlowRequests  int64            `json:"slowRequests"`
}

// KernelStats summarizes the kernel-side families.
type KernelStats struct {
	Solves          int64 `json:"solves"`
	WarmSolves      int64 `json:"warmSolves"`
	IterationsTotal int64 `json:"iterationsTotal"`
}

// ---- API-version plumbing ----

// apiVersionKey marks a request as admitted through a /v1 route; error
// writers consult it to pick the envelope shape, so handlers shared
// between v1 and the legacy aliases carry no per-endpoint error logic.
type apiVersionKey struct{}

// v1Routed wraps a handler mounted under /v1, marking its requests.
func v1Routed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h(w, r.WithContext(context.WithValue(r.Context(), apiVersionKey{}, 1)))
	}
}

// isV1 reports whether the request came through a /v1 route.
func isV1(r *http.Request) bool {
	return r.Context().Value(apiVersionKey{}) != nil
}

// Deprecation metadata of the legacy unversioned routes. The values are
// fixed strings (not computed per request) so responses are cheap and
// byte-stable: Deprecation is the RFC 9745 structured date the routes
// were deprecated (the v1 release), Sunset the date they stopped
// serving per RFC 8594. The sunset has PASSED: legacy routes now answer
// 410 Gone by default, and only the -legacy-grace escape hatch
// (WithLegacyGrace) restores the pre-sunset alias behaviour for
// clients still mid-migration.
const (
	deprecationDate = "@1785974400"                   // 2026-08-06, the v1 release
	sunsetDate      = "Thu, 06 Aug 2026 00:00:00 GMT" // retirement date (passed)
)

// deprecatedAlias wraps a legacy unversioned route. After the sunset
// (the default), every request answers 410 Gone with the v1 error
// envelope naming the successor route — the envelope, not the legacy
// flat shape, because the 410 contract is new surface addressed at
// clients being pushed to /v1. Under the grace flag the handler runs
// unchanged (success bodies stay byte-identical with the /v1 twin).
// Both modes advertise the deprecation metadata and the successor.
func deprecatedAlias(successor string, grace bool, h http.HandlerFunc) http.HandlerFunc {
	link := "<" + successor + ">; rel=\"successor-version\""
	return func(w http.ResponseWriter, r *http.Request) {
		hdr := w.Header()
		hdr.Set("Deprecation", deprecationDate)
		hdr.Set("Sunset", sunsetDate)
		hdr.Set("Link", link)
		if grace {
			h(w, r)
			return
		}
		writeJSON(w, http.StatusGone, ErrorEnvelope{Error: ErrorInfo{
			Code: CodeGone,
			Message: "this route was retired on 2026-08-06; use " + successor +
				" (operators can restart with -legacy-grace during migration)",
			RequestID: obs.RequestIDFrom(r.Context()),
		}})
	}
}

// ---- shared JSON writers ----

// writeJSON is the single JSON response writer: every JSON-producing
// handler goes through it, so Content-Type is always set BEFORE the
// status line is written (headers after WriteHeader are silently
// dropped — the bug class the PR-5 Content-Type audit closed out).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// codeForStatus maps an HTTP status onto the default machine-readable
// error code; call sites with a more specific code use writeAPIError
// directly.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest, http.StatusMethodNotAllowed, http.StatusNotFound:
		return CodeInvalidArgument
	case http.StatusConflict:
		return CodeVersionConflict
	case http.StatusGone:
		return CodeGone
	case http.StatusServiceUnavailable:
		return CodeShed
	case http.StatusGatewayTimeout:
		return CodeDeadline
	case statusClientClosedRequest:
		return CodeCancelled
	default:
		return CodeInternal
	}
}

// writeError renders an error in the shape the request's route
// dictates: the v1 envelope (code + message + requestId) for /v1
// routes, the historical flat object for legacy aliases. The code is
// derived from the status; use writeAPIError to pin it explicitly.
func writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	writeAPIError(w, r, status, codeForStatus(status), msg)
}

// writeAPIError is writeError with an explicit error code.
func writeAPIError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	id := obs.RequestIDFrom(r.Context())
	if isV1(r) {
		writeJSON(w, status, ErrorEnvelope{Error: ErrorInfo{Code: code, Message: msg, RequestID: id}})
		return
	}
	body := map[string]string{"error": msg}
	if id != "" {
		body["requestId"] = id
	}
	writeJSON(w, status, body)
}

// writeConflict renders the optimistic-concurrency 409 in the route's
// shape: ConflictEnvelope for v1, the legacy ConflictResponse for
// aliases (whose Error-as-string shape pre-v1 clients decode).
func writeConflict(w http.ResponseWriter, r *http.Request, msg string, version uint64) {
	if isV1(r) {
		writeJSON(w, http.StatusConflict, ConflictEnvelope{
			Error: ErrorInfo{
				Code:      CodeVersionConflict,
				Message:   msg,
				RequestID: obs.RequestIDFrom(r.Context()),
			},
			Version: version,
		})
		return
	}
	writeJSON(w, http.StatusConflict, ConflictResponse{Error: msg, Version: version})
}

// ---- /v1/query/batch ----

// maxBatchBody bounds the request body (1 MiB is ~3 orders of magnitude
// above any legitimate 64-item batch).
const maxBatchBody = 1 << 20

// handleQueryBatch answers N queries with at most ⌈unique/BlockSize⌉
// kernel executions: the whole batch pins ONE rates snapshot, cached
// servers route through cache.QueryBatchPinnedCtx (result cache →
// term-vector cache → one blocked solve of the remaining misses),
// uncached servers through Pinned.RankManyCtx directly. Each answer is
// identical to what the corresponding single /v1/query would return.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req BatchQueryRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBody+1))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if len(body) > maxBatchBody {
		writeError(w, r, http.StatusBadRequest, "body exceeds "+strconv.Itoa(maxBatchBody)+" bytes")
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, r, http.StatusBadRequest, "queries required")
		return
	}
	if len(req.Queries) > MaxBatchQueries {
		writeError(w, r, http.StatusBadRequest,
			strconv.Itoa(len(req.Queries))+" queries exceeds the batch limit of "+strconv.Itoa(MaxBatchQueries))
		return
	}

	// Validate EVERY item before any kernel work: a batch either runs
	// whole or is rejected whole, and the 400 names the offending index.
	qs, ks, modes, ok := parseBatch(w, r, req.Queries)
	if !ok {
		return
	}

	ctx := r.Context()
	tr := obs.TraceFrom(ctx)
	pin := s.eng.Pin()
	tr.Eventf("parse", "batch=%d version=%d", len(qs), pin.Version())

	g := pin.Corpus().Graph()
	resp := BatchQueryResponse{
		Version:    pin.Version(),
		Generation: pin.Generation(),
		Answers:    make([]QueryResponse, len(qs)),
	}
	if s.cache != nil {
		answers, err := s.cache.QueryBatchModePinnedCtx(ctx, pin, qs, ks, modes)
		if err != nil {
			s.writeCtxError(w, r, err)
			return
		}
		for i, ans := range answers {
			s.obs.cacheOutcome.With(ans.Source).Inc()
			resp.Answers[i] = QueryResponse{
				Query:      qs[i].String(),
				Mode:       modeField(modes[i]),
				BaseSet:    ans.BaseSet,
				Iterations: ans.Iterations,
				Version:    ans.Version,
				Generation: ans.Generation,
				Cache:      ans.Source,
				Results:    s.renderItems(g, qs[i], ans.Results),
			}
		}
	} else {
		// Uncached: the all-authority fast path keeps the one blocked
		// panel; a mixed-mode batch dispatches per item (the uncached tier
		// is the no-throughput-promises path).
		results := make([]*core.RankResult, len(qs))
		allAuthority := true
		for _, m := range modes {
			if m != core.ModeAuthority {
				allAuthority = false
				break
			}
		}
		var err error
		if allAuthority {
			results, err = pin.RankManyCtx(ctx, qs)
		} else {
			for i := range qs {
				results[i], err = pin.RankModeCtx(ctx, qs[i], modes[i])
				if err != nil {
					break
				}
			}
		}
		if err != nil {
			for _, res := range results {
				if res != nil {
					s.eng.Release(res)
				}
			}
			s.writeCtxError(w, r, err)
			return
		}
		for i, res := range results {
			s.obs.cacheOutcome.With(uncachedOutcome).Inc()
			resp.Answers[i] = QueryResponse{
				Query:      qs[i].String(),
				Mode:       modeField(modes[i]),
				BaseSet:    len(res.Base),
				Iterations: res.Iterations,
				Version:    res.RatesVersion,
				Generation: res.Generation,
				Results:    s.results(g, res, ks[i]),
			}
			s.eng.Release(res)
		}
	}
	tr.Eventf("render", "answers=%d", len(resp.Answers))
	writeJSON(w, http.StatusOK, resp)
}

// parseBatch validates every batch item under EXACTLY /v1/query's
// parameter rules (non-blank q, indexable terms, k in 1..1000 with 0
// defaulting to 10, mode/budget via the uniform read contract); a
// violation rejects the whole batch with a 400 naming the offending
// index.
func parseBatch(w http.ResponseWriter, r *http.Request, items []BatchQueryItem) ([]*ir.Query, []int, []core.Mode, bool) {
	qs := make([]*ir.Query, len(items))
	ks := make([]int, len(items))
	modes := make([]core.Mode, len(items))
	for i, it := range items {
		at := "queries[" + strconv.Itoa(i) + "]: "
		if strings.TrimSpace(it.Q) == "" {
			writeError(w, r, http.StatusBadRequest, at+"q required")
			return nil, nil, nil, false
		}
		k := it.K
		if k == 0 {
			k = 10
		}
		if k < 0 || k > 1000 {
			writeError(w, r, http.StatusBadRequest, at+"k must be in 1..1000")
			return nil, nil, nil, false
		}
		rp, err := ValidateItemParams(it.Mode, it.Budget)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, at+err.Error())
			return nil, nil, nil, false
		}
		q := ir.ParseQuery(it.Q)
		if len(q.Terms()) == 0 {
			writeError(w, r, http.StatusBadRequest, at+"q contains no indexable terms")
			return nil, nil, nil, false
		}
		qs[i] = q
		ks[i] = k
		modes[i] = rp.Mode
	}
	return qs, ks, modes, true
}
