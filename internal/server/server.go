// Package server implements the HTTP JSON API of the deployed
// ObjectRank2 demo (the paper's web system at
// dbir.cis.fiu.edu/ObjectRankReformulation): querying, result
// explanation, and feedback-driven reformulation with per-process
// trained rates.
//
// Endpoints:
//
//	GET /query?q=olap&k=10
//	GET /explain?q=olap&target=123
//	GET /reformulate?q=olap&feedback=123,456&mode=structure|content|both[&version=N]
//	GET /rates
//	GET /healthz
//	GET /stats
//
// Concurrency: the server holds no locks. Every handler loads the
// engine's current rates snapshot once (explicitly via core.Pin for the
// multi-step reformulation flow, implicitly inside Engine.Rank for
// single-step queries) and serves from it; concurrent reformulations
// publish through the engine's compare-and-swap. /reformulate is
// optimistic: the response carries the rates version it ran under, an
// optional version=N parameter asserts the client's expected version,
// and a lost race returns 409 Conflict with the winning version so the
// client can re-read and retry.
//
// With WithCache, the query paths run through the internal/cache
// serving cache: repeated queries hit a version-keyed result cache,
// single-keyword queries share converged term vectors, concurrent
// identical misses collapse onto one solve, and /stats exposes the
// hit/miss/eviction/singleflight/bytes counters.
package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"authorityflow/internal/cache"
	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/storage"
)

// Server serves one dataset through one engine. Reformulation state
// (the trained authority transfer rates) is process-wide, published as
// atomically versioned snapshots by the engine; handlers are lock-free
// and safe under unbounded concurrency.
type Server struct {
	ds    *datagen.Dataset
	eng   *core.Engine
	cache *cache.CachedEngine // nil when serving uncached
}

// Option configures optional Server behaviour.
type Option func(*serverOptions)

type serverOptions struct {
	cacheOpts    cache.Options
	cacheEnabled bool
}

// WithCache enables the serving cache with the given total byte budget
// (0 = cache.DefaultMaxBytes) and number of hot terms to prewarm after
// each rates publication (0 = no prewarming).
func WithCache(maxBytes int64, prewarmTerms int) Option {
	return func(o *serverOptions) {
		o.cacheEnabled = true
		o.cacheOpts.MaxBytes = maxBytes
		o.cacheOpts.PrewarmTerms = prewarmTerms
	}
}

// WithCacheOptions enables the serving cache with full cache.Options.
func WithCacheOptions(co cache.Options) Option {
	return func(o *serverOptions) {
		o.cacheEnabled = true
		o.cacheOpts = co
	}
}

// New builds a Server over a dataset. Without options the server runs
// uncached, exactly as before; pass WithCache to enable the serving
// cache.
func New(ds *datagen.Dataset, cfg core.Config, opts ...Option) (*Server, error) {
	eng, err := core.NewEngine(ds.Graph, ds.Rates, cfg)
	if err != nil {
		return nil, err
	}
	var so serverOptions
	for _, o := range opts {
		o(&so)
	}
	s := &Server{ds: ds, eng: eng}
	if so.cacheEnabled {
		s.cache = cache.New(eng, so.cacheOpts)
	}
	return s, nil
}

// Close releases background resources (the cache's prewarmer, if any).
func (s *Server) Close() {
	if s.cache != nil {
		s.cache.Close()
	}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/reformulate", s.handleReformulate)
	mux.HandleFunc("/rates", s.handleRates)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// Result is one JSON-rendered ranked node.
type Result struct {
	Node    int64   `json:"node"`
	Score   float64 `json:"score"`
	Display string  `json:"display"`
	Snippet string  `json:"snippet,omitempty"`
	InBase  bool    `json:"inBase"`
}

// QueryResponse is the /query payload. Version is the rates-snapshot
// version the ranking ran under; clients that later reformulate based
// on these results should pass it as the version parameter to detect
// concurrent rate changes.
type QueryResponse struct {
	Query      string `json:"query"`
	BaseSet    int    `json:"baseSet"`
	Iterations int    `json:"iterations"`
	Version    uint64 `json:"version"`
	// Cache reports how a cache-enabled server produced the answer
	// ("result", "term", or "computed"); omitted when serving uncached.
	Cache   string   `json:"cache,omitempty"`
	Results []Result `json:"results"`
}

// ReformulateResponse is the /reformulate payload. Version is the
// rates-snapshot version AFTER the structure-based update was
// published (equal to the pre-reformulation version when the mode
// carries no rate change or publication was skipped).
type ReformulateResponse struct {
	Query     string          `json:"query"`
	Rates     string          `json:"rates"`
	Version   uint64          `json:"version"`
	Expansion []ExpansionTerm `json:"expansion,omitempty"`
	Results   []Result        `json:"results"`
}

// ConflictResponse is the 409 payload of /reformulate: another
// reformulation published first. Version is the currently published
// rates version; re-query and retry against it.
type ConflictResponse struct {
	Error   string `json:"error"`
	Version uint64 `json:"version"`
}

// ExpansionTerm is one content-expansion term in a reformulation
// response.
type ExpansionTerm struct {
	Term   string  `json:"term"`
	Weight float64 `json:"weight"`
}

// HealthResponse is the /healthz payload: enough for an operator to
// see WHAT a replica is serving — dataset identity and size, the
// currently published rates version, and whether the serving cache is
// on.
type HealthResponse struct {
	Status       string `json:"status"`
	Name         string `json:"name"`
	Nodes        int    `json:"nodes"`
	Edges        int    `json:"edges"`
	RatesVersion uint64 `json:"ratesVersion"`
	CacheEnabled bool   `json:"cacheEnabled"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:       "ok",
		Name:         s.ds.Name,
		Nodes:        s.ds.Graph.NumNodes(),
		Edges:        s.ds.Graph.NumEdges(),
		RatesVersion: s.eng.RatesVersion(),
		CacheEnabled: s.cache != nil,
	})
}

// StatsResponse is the /stats payload: the serving cache's counters
// (nil when the cache is disabled) plus the current rates version.
type StatsResponse struct {
	CacheEnabled bool                 `json:"cacheEnabled"`
	RatesVersion uint64               `json:"ratesVersion"`
	Cache        *cache.StatsSnapshot `json:"cache,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		CacheEnabled: s.cache != nil,
		RatesVersion: s.eng.RatesVersion(),
	}
	if s.cache != nil {
		snap := s.cache.Stats()
		resp.Cache = &snap
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRates(w http.ResponseWriter, r *http.Request) {
	pin := s.eng.Pin()
	rates := pin.Rates()
	writeJSON(w, http.StatusOK, map[string]any{
		"rates":   rates.String(),
		"vector":  rates.Vector(),
		"version": pin.Version(),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, k, ok := parseQuery(w, r)
	if !ok {
		return
	}
	if s.cache != nil {
		ans := s.cache.Query(q, k)
		writeJSON(w, http.StatusOK, QueryResponse{
			Query:      q.String(),
			BaseSet:    ans.BaseSet,
			Iterations: ans.Iterations,
			Version:    ans.Version,
			Cache:      ans.Source,
			Results:    s.renderItems(q, ans.Results),
		})
		return
	}
	res := s.eng.Rank(q)
	resp := QueryResponse{
		Query:      q.String(),
		BaseSet:    len(res.Base),
		Iterations: res.Iterations,
		Version:    res.RatesVersion,
		Results:    s.results(res, k),
	}
	s.eng.Release(res)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q, _, ok := parseQuery(w, r)
	if !ok {
		return
	}
	target, err := strconv.Atoi(r.URL.Query().Get("target"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad or missing target")
		return
	}
	// Pin one snapshot so the ranking and its explanation cannot see
	// different rates even if a reformulation lands in between. With the
	// cache on, single-keyword rankings come straight from the shared
	// term vectors (copied out, since Release returns scores to the
	// pool).
	pin := s.eng.Pin()
	var res *core.RankResult
	if s.cache != nil {
		res = s.cache.RankPinned(pin, q)
	} else {
		res = pin.Rank(q)
	}
	sg, err := pin.Explain(res, graph.NodeID(target), core.DefaultExplain())
	s.eng.Release(res)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	switch r.URL.Query().Get("format") {
	case "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = storage.ExportHTML(w, s.ds.Graph, sg)
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		_ = storage.ExportDOT(w, s.ds.Graph, sg)
	default:
		w.Header().Set("Content-Type", "application/json")
		_ = storage.ExportJSON(w, s.ds.Graph, sg)
	}
}

func (s *Server) handleReformulate(w http.ResponseWriter, r *http.Request) {
	q, k, ok := parseQuery(w, r)
	if !ok {
		return
	}
	var opts core.ReformulateOptions
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "structure":
		opts = core.StructureOnly()
	case "content":
		opts = core.ContentOnly()
	case "both":
		opts = core.ContentAndStructure()
	default:
		writeError(w, http.StatusBadRequest, "unknown mode "+mode)
		return
	}
	var ids []int
	for _, part := range strings.Split(r.URL.Query().Get("feedback"), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad feedback id "+part)
			return
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		writeError(w, http.StatusBadRequest, "feedback ids required")
		return
	}

	// The whole flow — rank, explain each feedback object, reformulate,
	// publish — runs against ONE pinned snapshot; no lock is held, so
	// concurrent queries proceed at full speed. Publication is
	// optimistic: TrySetRates succeeds only if the pinned version is
	// still current, otherwise the client gets 409 plus the winning
	// version and retries.
	pin := s.eng.Pin()
	if vs := r.URL.Query().Get("version"); vs != "" {
		v, err := strconv.ParseUint(vs, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad version token "+vs)
			return
		}
		if v != pin.Version() {
			writeJSON(w, http.StatusConflict, ConflictResponse{
				Error:   "rates were changed since version " + vs,
				Version: pin.Version(),
			})
			return
		}
	}
	var res *core.RankResult
	if s.cache != nil {
		res = s.cache.RankPinned(pin, q)
	} else {
		res = pin.Rank(q)
	}
	defer s.eng.Release(res)
	var subs []*core.Subgraph
	for _, id := range ids {
		sg, err := pin.Explain(res, graph.NodeID(id), core.DefaultExplain())
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		subs = append(subs, sg)
	}
	ref, err := pin.Reformulate(q, subs, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	newVersion, err := s.eng.TrySetRates(ref.Rates, pin.Version())
	if errors.Is(err, core.ErrRatesConflict) {
		writeJSON(w, http.StatusConflict, ConflictResponse{
			Error:   "rates were changed concurrently; re-query and retry",
			Version: newVersion,
		})
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := ReformulateResponse{
		Query:   ref.Query.String(),
		Rates:   ref.Rates.String(),
		Version: newVersion,
	}
	if s.cache != nil {
		// Warm-start the reformulated solve from the feedback ranking's
		// scores AND seed the result cache at the just-published
		// version, so follow-up /query calls for the reformulated query
		// hit immediately.
		ans := s.cache.QueryFrom(ref.Query, k, res.Scores)
		resp.Results = s.renderItems(ref.Query, ans.Results)
	} else {
		res2 := s.eng.RankFrom(ref.Query, res.Scores)
		resp.Results = s.results(res2, k)
		s.eng.Release(res2)
	}
	for _, wt := range ref.Expansion {
		resp.Expansion = append(resp.Expansion, ExpansionTerm{Term: wt.Term, Weight: wt.Weight})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) results(res *core.RankResult, k int) []Result {
	out := make([]Result, 0, k)
	for _, r := range res.TopK(k) {
		out = append(out, Result{
			Node:    int64(r.Node),
			Score:   r.Score,
			Display: s.ds.Graph.Display(r.Node),
			Snippet: ir.Snippet(s.ds.Graph.Text(r.Node), res.Query, 160),
			InBase:  res.InBase(r.Node),
		})
	}
	return out
}

// renderItems converts cached result items to the JSON form, attaching
// display text and snippets (which are graph-derived and therefore
// never stale).
func (s *Server) renderItems(q *ir.Query, items []cache.ResultItem) []Result {
	out := make([]Result, 0, len(items))
	for _, it := range items {
		out = append(out, Result{
			Node:    int64(it.Node),
			Score:   it.Score,
			Display: s.ds.Graph.Display(it.Node),
			Snippet: ir.Snippet(s.ds.Graph.Text(it.Node), q, 160),
			InBase:  it.InBase,
		})
	}
	return out
}

func parseQuery(w http.ResponseWriter, r *http.Request) (*ir.Query, int, bool) {
	raw := r.URL.Query().Get("q")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "q parameter required")
		return nil, 0, false
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 || v > 1000 {
			writeError(w, http.StatusBadRequest, "k must be in 1..1000")
			return nil, 0, false
		}
		k = v
	}
	return ir.ParseQuery(raw), k, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// Engine exposes the underlying engine for tests and embedding.
func (s *Server) Engine() *core.Engine { return s.eng }

// Cache exposes the serving cache (nil when disabled).
func (s *Server) Cache() *cache.CachedEngine { return s.cache }

// Dataset exposes the served dataset.
func (s *Server) Dataset() *datagen.Dataset { return s.ds }

// RankWith runs a query outside HTTP (used by embedding callers). Like
// the handlers it is lock-free; the result's scores belong to the
// engine's buffer pool and may be handed back with Engine().Release
// once read.
func (s *Server) RankWith(q *ir.Query) *core.RankResult {
	return s.eng.Rank(q)
}
