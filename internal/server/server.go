// Package server implements the HTTP JSON API of the deployed
// ObjectRank2 demo (the paper's web system at
// dbir.cis.fiu.edu/ObjectRankReformulation): querying, result
// explanation, and feedback-driven reformulation with per-process
// trained rates.
//
// Endpoints (canonical, versioned — see api.go for the full surface,
// DTOs, error envelope and the deprecation policy of the unversioned
// aliases):
//
//	GET  /v1/query?q=olap&k=10
//	POST /v1/query/batch
//	GET  /v1/explain?q=olap&target=123
//	GET  /v1/reformulate?q=olap&feedback=123,456&mode=structure|content|both[&version=N]
//	GET  /v1/rates
//	GET  /v1/healthz
//	GET  /v1/stats
//
// Concurrency: the server holds no locks. Every handler loads the
// engine's current rates snapshot once (explicitly via core.Pin for the
// multi-step reformulation flow, implicitly inside Engine.Rank for
// single-step queries) and serves from it; concurrent reformulations
// publish through the engine's compare-and-swap. /reformulate is
// optimistic: the response carries the rates version it ran under, an
// optional version=N parameter asserts the client's expected version,
// and a lost race returns 409 Conflict with the winning version so the
// client can re-read and retry.
//
// With WithCache, the query paths run through the internal/cache
// serving cache: repeated queries hit a version-keyed result cache,
// single-keyword queries share converged term vectors, concurrent
// identical misses collapse onto one solve, and /stats exposes the
// hit/miss/eviction/singleflight/bytes counters.
package server

import (
	"context"
	"errors"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"authorityflow/internal/cache"
	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/obs"
	"authorityflow/internal/profile"
	"authorityflow/internal/rank"
	"authorityflow/internal/storage"
)

// Server serves one dataset through one engine. Reformulation state
// (the trained authority transfer rates) is process-wide, published as
// atomically versioned snapshots by the engine; handlers are lock-free
// and safe under unbounded concurrency.
type Server struct {
	// ds is the dataset of the CURRENTLY served corpus generation,
	// republished atomically by /v1/corpus/swap. Handlers that render
	// nodes never read it — they use the graph of the engine state they
	// pinned — so a swap mid-request cannot mismatch IDs and text.
	ds          atomic.Pointer[datagen.Dataset]
	eng         *core.Engine
	cfg         core.Config         // post-chaining config, reused to build swapped-in corpora
	swapDir     string              // "" = /v1/corpus/swap disabled
	cache       *cache.CachedEngine // nil when serving uncached
	profiles    *profile.Manager    // nil when personalization is disabled
	legacyGrace bool                // true = legacy aliases still serve (pre-sunset behaviour)
	obs         *serverObs          // always non-nil; see ObsOptions
	adm         *admission          // always non-nil; zero options = no limits
}

// Option configures optional Server behaviour.
type Option func(*serverOptions)

type serverOptions struct {
	cacheOpts      cache.Options
	cacheEnabled   bool
	profileOpts    profile.Options
	profileEnabled bool
	legacyGrace    bool
	obs            ObsOptions
	admission      AdmissionOptions
	swapDir        string
}

// WithCache enables the serving cache with the given total byte budget
// (0 = cache.DefaultMaxBytes) and number of hot terms to prewarm after
// each rates publication (0 = no prewarming).
func WithCache(maxBytes int64, prewarmTerms int) Option {
	return func(o *serverOptions) {
		o.cacheEnabled = true
		o.cacheOpts.MaxBytes = maxBytes
		o.cacheOpts.PrewarmTerms = prewarmTerms
	}
}

// WithCacheTuning sets the serving cache's opt-in prewarm kernel
// accelerations (see cache.Options.PrewarmFloat32 and DeltaEps). It
// only adjusts fields — combine with WithCache, which enables the
// cache itself. Both default off: the stock server keeps prewarmed
// vectors bit-identical to miss-path solves.
func WithCacheTuning(prewarmF32 bool, deltaEps float64) Option {
	return func(o *serverOptions) {
		o.cacheOpts.PrewarmFloat32 = prewarmF32
		o.cacheOpts.DeltaEps = deltaEps
	}
}

// WithCacheOptions enables the serving cache with full cache.Options.
func WithCacheOptions(co cache.Options) Option {
	return func(o *serverOptions) {
		o.cacheEnabled = true
		o.cacheOpts = co
	}
}

// New builds a Server over a dataset. Without options the server runs
// uncached, exactly as before; pass WithCache to enable the serving
// cache.
func New(ds *datagen.Dataset, cfg core.Config, opts ...Option) (*Server, error) {
	return newServer(ds, nil, cfg, opts)
}

// NewWithIndex builds a Server over a dataset whose inverted index was
// loaded alongside it (the binary-snapshot cold-start path): the
// BuildIndex pass is skipped entirely and the given index is served
// as-is. ix must cover exactly ds.Graph's nodes.
func NewWithIndex(ds *datagen.Dataset, ix *ir.Index, cfg core.Config, opts ...Option) (*Server, error) {
	if ix == nil {
		return nil, errors.New("server: NewWithIndex requires an index")
	}
	return newServer(ds, ix, cfg, opts)
}

func newServer(ds *datagen.Dataset, ix *ir.Index, cfg core.Config, opts []Option) (*Server, error) {
	var so serverOptions
	for _, o := range opts {
		o(&so)
	}
	sobs := newServerObs(so.obs)
	// Thread the per-iteration kernel observer through the engine's
	// rank options (chaining any observer the caller already set), so
	// afq_kernel_iterations_total counts every iteration of every
	// solve. The nil path inside the kernel stays allocation-free; this
	// closure is one atomic add per iteration.
	cfg.Rank.Observe = chainIterObserver(cfg.Rank.Observe, sobs.observeIteration)
	var eng *core.Engine
	var err error
	if ix != nil {
		var corpus *core.Corpus
		corpus, err = core.NewCorpusWithIndex(ds.Graph, ix, cfg)
		if err == nil {
			eng, err = core.NewEngineWith(corpus, ds.Rates)
		}
	} else {
		eng, err = core.NewEngine(ds.Graph, ds.Rates, cfg)
	}
	if err != nil {
		return nil, err
	}
	s := &Server{eng: eng, cfg: cfg, swapDir: so.swapDir, legacyGrace: so.legacyGrace,
		obs: sobs, adm: newAdmission(so.admission)}
	s.ds.Store(ds)
	if so.cacheEnabled {
		s.cache = cache.New(eng, so.cacheOpts)
	}
	if so.profileEnabled {
		po := so.profileOpts
		if po.BaseRank == nil && s.cache != nil {
			// Personalized queries share the global tier's serving cache:
			// the (1−β)·r(Q) component comes from the same term vectors,
			// result collapse and solve singleflight as /v1/query.
			po.BaseRank = func(ctx context.Context, pin *core.Pinned, q *ir.Query) (*core.RankResult, error) {
				return s.cache.RankPinnedCtx(ctx, pin, q)
			}
		}
		pm, err := profile.NewManager(eng, po)
		if err != nil {
			return nil, err
		}
		s.profiles = pm
	}
	sobs.attach(s)
	return s, nil
}

// chainIterObserver composes two per-iteration observers (either may
// be nil).
func chainIterObserver(a, b rank.IterObserver) rank.IterObserver {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(iter int, residual float64) {
		a(iter, residual)
		b(iter, residual)
	}
}

// Close releases background resources (the cache's prewarmer, if any).
func (s *Server) Close() {
	if s.cache != nil {
		s.cache.Close()
	}
}

// Handler returns the routed HTTP handler. Every route runs inside
// the observability middleware (request ID + X-Request-ID header,
// per-handler request/latency metrics, access and slow-query logs);
// /metrics serves the Prometheus exposition, and /debug/pprof/ is
// mounted when ObsOptions.Pprof is set.
//
// Routing is two-surfaced (see api.go): the canonical /v1 routes run
// with the v1 error envelope, and the historical unversioned paths are
// mounted as deprecated aliases of the SAME handlers — byte-identical
// success bodies, legacy error shape, plus Deprecation/Sunset/Link
// headers. Expensive endpoints (each may run a kernel solve) go
// through the admission guard on both surfaces: bounded in-flight
// slots, queue-wait shedding, and the per-request deadline. Operator
// endpoints never do — an overloaded replica must stay inspectable.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	v1 := func(path string, h http.HandlerFunc) {
		mux.Handle(path, s.obs.mw.Wrap(path, v1Routed(h)))
	}
	// The v1 marker wraps OUTSIDE the guard, so shed/deadline/
	// bad-header errors raised by the guard itself carry the envelope.
	v1Guarded := func(path string, h http.HandlerFunc) {
		mux.Handle(path, s.obs.mw.Wrap(path, v1Routed(s.guard(h))))
	}
	v1Guarded("/v1/query", s.handleQuery)
	v1Guarded("/v1/query/batch", s.handleQueryBatch)
	v1Guarded("/v1/explain", s.handleExplain)
	v1Guarded("/v1/audit", s.handleAudit)
	v1Guarded("/v1/reformulate", s.handleReformulate)
	v1("/v1/rates", s.handleRatesDispatch)
	v1("/v1/healthz", s.handleHealth)
	v1("/v1/stats", s.handleStats)
	// Profile CRUD is v1-only and unguarded (byte-sized record I/O, no
	// kernel work — like /v1/rates); the personalized query and
	// training paths run through the guarded /v1/query and
	// /v1/reformulate routes above.
	v1("/v1/profile/", s.handleProfile)
	// Operator endpoint, v1-only (no legacy alias) and outside the
	// admission guard: swapping must work on an overloaded replica.
	v1("/v1/corpus/swap", s.handleCorpusSwap)

	alias := func(path, successor string, h http.HandlerFunc) {
		mux.Handle(path, s.obs.mw.Wrap(path, deprecatedAlias(successor, s.legacyGrace, h)))
	}
	aliasGuarded := func(path, successor string, h http.HandlerFunc) {
		mux.Handle(path, s.obs.mw.Wrap(path, deprecatedAlias(successor, s.legacyGrace, s.guard(h))))
	}
	aliasGuarded("/query", "/v1/query", s.handleQuery)
	aliasGuarded("/explain", "/v1/explain", s.handleExplain)
	aliasGuarded("/reformulate", "/v1/reformulate", s.handleReformulate)
	alias("/rates", "/v1/rates", s.handleRates)
	alias("/healthz", "/v1/healthz", s.handleHealth)
	alias("/stats", "/v1/stats", s.handleStats)

	// /metrics stays unversioned by Prometheus convention.
	mux.Handle("/metrics", s.obs.mw.Wrap("/metrics", s.obs.reg.Handler()))
	if s.obs.pprof {
		mountPprof(mux)
	}
	return mux
}

// Metrics exposes the server's metric registry (for embedding callers
// that co-host exposition or assert on metrics in tests).
func (s *Server) Metrics() *obs.Registry { return s.obs.reg }

// The request/response DTOs of every endpoint live in api.go, the
// single definition point of the public surface.

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	ds := s.ds.Load()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Name:          ds.Name,
		Nodes:         ds.Graph.NumNodes(),
		Edges:         ds.Graph.NumEdges(),
		RatesVersion:  s.eng.RatesVersion(),
		Generation:    s.eng.Generation(),
		CacheEnabled:  s.cache != nil,
		UptimeSeconds: s.obs.uptimeSeconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	byHandler := make(map[string]int64)
	s.obs.mw.Requests().Each(func(labels []string, n uint64) {
		byHandler[labels[0]+" "+labels[1]] = int64(n)
	})
	resp := StatsResponse{
		CacheEnabled:  s.cache != nil,
		RatesVersion:  s.eng.RatesVersion(),
		Generation:    s.eng.Generation(),
		CorpusSwaps:   int64(s.obs.swapsTotal.Count()),
		UptimeSeconds: s.obs.uptimeSeconds(),
		HTTP: HTTPStats{
			RequestsTotal: int64(s.obs.mw.Requests().Total()),
			ByHandler:     byHandler,
			SlowRequests:  int64(s.obs.mw.SlowCount()),
		},
		Kernel: KernelStats{
			Solves:          int64(s.obs.solves.Count()),
			WarmSolves:      int64(s.obs.warmSolves.Count()),
			IterationsTotal: int64(s.obs.iterTotal.Count()),
		},
	}
	if s.cache != nil {
		snap := s.cache.Stats()
		resp.Cache = &snap
	}
	if s.profiles != nil {
		snap := s.profiles.Stats()
		resp.Profile = &snap
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRates(w http.ResponseWriter, r *http.Request) {
	pin := s.eng.Pin()
	rates := pin.Rates()
	// RatesResponse's field order matches the alphabetical key order the
	// pre-v1 map[string]any rendering produced, so the alias body stayed
	// byte-identical across the DTO consolidation.
	writeJSON(w, http.StatusOK, RatesResponse{
		Rates:   rates.String(),
		Vector:  rates.Vector(),
		Version: pin.Version(),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, k, ok := parseQuery(w, r)
	if !ok {
		return
	}
	rp, ok := parseReadParams(w, r)
	if !ok {
		return
	}
	// Pin ONE engine state for the whole request: the solve, the cache
	// lookups and the node rendering below all see the same corpus
	// generation even if a swap lands mid-request.
	ctx := r.Context()
	pin := s.eng.Pin()
	g := pin.Corpus().Graph()
	tr := obs.TraceFrom(ctx)
	tr.Eventf("parse", "q=%s k=%d mode=%s", q.String(), k, rp.Mode)
	if pid := r.URL.Query().Get("profile"); pid != "" {
		// Profiles personalize the authority flow system; the hub and
		// combined axes have no basis-projected store behind them.
		if rp.Mode != core.ModeAuthority {
			writeError(w, r, http.StatusBadRequest,
				"profile-scoped queries support only mode=authority")
			return
		}
		s.handleProfileQuery(w, r, pin, pid, q, k)
		return
	}
	if s.cache != nil {
		ans, err := s.cache.QueryModePinnedCtx(ctx, pin, q, k, rp.Mode)
		if err != nil {
			s.writeCtxError(w, r, err)
			return
		}
		tr.Eventf("solve", "source=%s iters=%d base=%d version=%d generation=%d",
			ans.Source, ans.Iterations, ans.BaseSet, ans.Version, ans.Generation)
		s.obs.cacheOutcome.With(ans.Source).Inc()
		resp := QueryResponse{
			Query:      q.String(),
			Mode:       modeField(rp.Mode),
			BaseSet:    ans.BaseSet,
			Iterations: ans.Iterations,
			Version:    ans.Version,
			Generation: ans.Generation,
			Cache:      ans.Source,
			Results:    s.renderItems(g, q, ans.Results),
		}
		tr.Eventf("render", "results=%d", len(resp.Results))
		writeJSON(w, http.StatusOK, resp)
		return
	}
	res, err := pin.RankModeCtx(ctx, q, rp.Mode)
	if err != nil {
		s.writeCtxError(w, r, err)
		return
	}
	tr.Eventf("baseSet", "size=%d dur=%s", len(res.Base), res.BaseSetDur)
	tr.Eventf("solve", "iters=%d converged=%t dur=%s", res.Iterations, res.Converged, res.SolveDur)
	s.obs.cacheOutcome.With(uncachedOutcome).Inc()
	resp := QueryResponse{
		Query:      q.String(),
		Mode:       modeField(rp.Mode),
		BaseSet:    len(res.Base),
		Iterations: res.Iterations,
		Version:    res.RatesVersion,
		Generation: res.Generation,
		Results:    s.results(g, res, k),
	}
	s.eng.Release(res)
	tr.Eventf("render", "results=%d", len(resp.Results))
	writeJSON(w, http.StatusOK, resp)
}

// modeField renders a Mode for a response DTO: authority — the pre-mode
// meaning of every endpoint — stays the omitted zero value, keeping
// authority response bodies byte-identical to their pre-contract form.
func modeField(m core.Mode) string {
	if m == core.ModeAuthority {
		return ""
	}
	return string(m)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q, _, ok := parseQuery(w, r)
	if !ok {
		return
	}
	rp, ok := parseReadParams(w, r)
	if !ok {
		return
	}
	if !requireExplainable(w, r, rp.Mode) {
		return
	}
	// Pin one snapshot so the ranking and its explanation cannot see
	// different rates even if a reformulation lands in between, and so
	// the target ID is validated against the SAME generation's graph
	// the solve will run on. With the cache on, single-keyword rankings
	// come straight from the shared term vectors (copied out, since
	// Release returns scores to the pool).
	ctx := r.Context()
	pin := s.eng.Pin()
	g := pin.Corpus().Graph()
	target, ok := s.parseNodeID(w, r, g, r.URL.Query().Get("target"), "target")
	if !ok {
		return
	}
	tr := obs.TraceFrom(ctx)
	tr.Eventf("parse", "q=%s target=%d mode=%s", q.String(), target, rp.Mode)
	var res *core.RankResult
	var err error
	if s.cache != nil {
		res, err = s.cache.RankModePinnedCtx(ctx, pin, q, rp.Mode)
	} else {
		res, err = pin.RankModeCtx(ctx, q, rp.Mode)
	}
	if err != nil {
		s.writeCtxError(w, r, err)
		return
	}
	tr.Eventf("solve", "iters=%d base=%d", res.Iterations, len(res.Base))
	sg, err := pin.ExplainModeCtx(ctx, rp.Mode, res, target, core.DefaultExplain())
	tr.Event("explain", "")
	s.eng.Release(res)
	if err != nil {
		if ctx.Err() != nil {
			s.writeCtxError(w, r, err)
			return
		}
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	switch r.URL.Query().Get("format") {
	case "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = storage.ExportHTML(w, g, sg)
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		_ = storage.ExportDOT(w, g, sg)
	default:
		// The JSON format carries the shared explain/audit envelope: every
		// legacy SubgraphJSON field, embedded unchanged, plus the envelope
		// additions (node, score, mode, generation, ratesVersion,
		// contributions[]) — see api.go's ExplainResponse. The budget
		// parameter truncates ONLY the contributions block; the legacy
		// nodes/arcs arrays stay complete.
		a := core.AuditOf(sg, rp.Budget)
		resp := ExplainResponse{
			SubgraphJSON:  storage.BuildSubgraphJSON(g, sg),
			Node:          int64(sg.Target),
			Score:         sg.ExplainedScore(),
			Mode:          string(rp.Mode),
			Generation:    pin.Generation(),
			RatesVersion:  pin.Version(),
			Contributions: contributions(g, a),
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func (s *Server) handleReformulate(w http.ResponseWriter, r *http.Request) {
	q, k, ok := parseQuery(w, r)
	if !ok {
		return
	}
	var opts core.ReformulateOptions
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "structure":
		opts = core.StructureOnly()
	case "content":
		opts = core.ContentOnly()
	case "both":
		opts = core.ContentAndStructure()
	default:
		writeError(w, r, http.StatusBadRequest, "unknown mode "+mode)
		return
	}
	// The whole flow — rank, explain each feedback object, reformulate,
	// publish — runs against ONE pinned snapshot; no lock is held, so
	// concurrent queries proceed at full speed. Feedback IDs are
	// validated against the pinned generation's graph. Publication is
	// optimistic: TrySetRates succeeds only if the pinned version is
	// still current, otherwise the client gets 409 plus the winning
	// version and retries (a corpus swap also bumps the rates version,
	// so feedback gathered on a swapped-out generation conflicts too).
	ctx := r.Context()
	pin := s.eng.Pin()
	g := pin.Corpus().Graph()
	var ids []graph.NodeID
	for _, part := range strings.Split(r.URL.Query().Get("feedback"), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, ok := s.parseNodeID(w, r, g, part, "feedback id")
		if !ok {
			return
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		writeError(w, r, http.StatusBadRequest, "feedback ids required")
		return
	}
	confidences, ok := parseConfidences(w, r, len(ids))
	if !ok {
		return
	}

	tr := obs.TraceFrom(ctx)
	tr.Eventf("parse", "q=%s feedback=%d", q.String(), len(ids))
	if vs := r.URL.Query().Get("version"); vs != "" {
		v, err := strconv.ParseUint(vs, 10, 64)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, "bad version token "+vs)
			return
		}
		if v != pin.Version() {
			writeConflict(w, r, "rates were changed since version "+vs, pin.Version())
			return
		}
	}
	var res *core.RankResult
	var err error
	if s.cache != nil {
		res, err = s.cache.RankPinnedCtx(ctx, pin, q)
	} else {
		res, err = pin.RankCtx(ctx, q)
	}
	if err != nil {
		s.writeCtxError(w, r, err)
		return
	}
	defer s.eng.Release(res)
	tr.Eventf("solve", "iters=%d base=%d version=%d", res.Iterations, len(res.Base), pin.Version())
	var subs []*core.Subgraph
	for _, id := range ids {
		sg, err := pin.ExplainCtx(ctx, res, id, core.DefaultExplain())
		if err != nil {
			if ctx.Err() != nil {
				s.writeCtxError(w, r, err)
				return
			}
			writeError(w, r, http.StatusBadRequest, err.Error())
			return
		}
		subs = append(subs, sg)
	}
	tr.Eventf("explain", "subgraphs=%d", len(subs))
	if pid := r.URL.Query().Get("profile"); pid != "" {
		// Profile-scoped: the feedback trains the caller's private
		// mixture and rates-delta; nothing is published to the engine.
		s.handleProfileReformulate(w, r, pin, pid, q, k, subs, confidences, opts)
		return
	}
	ref, err := pin.ReformulateWeightedCtx(ctx, q, subs, confidences, opts)
	if err != nil {
		if ctx.Err() != nil {
			s.writeCtxError(w, r, err)
			return
		}
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	tr.Eventf("reformulate", "rates=%s expansion=%d", ref.Rates.String(), len(ref.Expansion))
	newVersion, err := s.eng.TrySetRates(ref.Rates, pin.Version())
	if errors.Is(err, core.ErrRatesConflict) {
		writeConflict(w, r, "rates were changed concurrently; re-query and retry", newVersion)
		return
	}
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	tr.Eventf("publish", "version=%d", newVersion)
	resp := ReformulateResponse{
		Query:   ref.Query.String(),
		Rates:   ref.Rates.String(),
		Version: newVersion,
	}
	// Re-pin for the post-publish solve so its answer and rendering
	// agree on one engine state (normally the state just published;
	// rendering always uses the graph the solve actually ran on).
	pin2 := s.eng.Pin()
	g2 := pin2.Corpus().Graph()
	if s.cache != nil {
		// Warm-start the reformulated solve from the feedback ranking's
		// scores AND seed the result cache at the just-published
		// version, so follow-up /query calls for the reformulated query
		// hit immediately.
		ans, err := s.cache.QueryFromPinnedCtx(ctx, pin2, ref.Query, k, res.Scores)
		if err != nil {
			s.writeCtxError(w, r, err)
			return
		}
		resp.Results = s.renderItems(g2, ref.Query, ans.Results)
	} else {
		res2, err := pin2.RankFromCtx(ctx, ref.Query, res.Scores)
		if err != nil {
			s.writeCtxError(w, r, err)
			return
		}
		resp.Results = s.results(g2, res2, k)
		s.eng.Release(res2)
	}
	for _, wt := range ref.Expansion {
		resp.Expansion = append(resp.Expansion, ExpansionTerm{Term: wt.Term, Weight: wt.Weight})
	}
	writeJSON(w, http.StatusOK, resp)
}

// results renders a RankResult against g, which must be the graph of
// the generation the result was computed on (the handlers pass the
// pinned corpus's graph, never the engine's current one).
func (s *Server) results(g *graph.Graph, res *core.RankResult, k int) []Result {
	out := make([]Result, 0, k)
	for _, r := range res.TopK(k) {
		out = append(out, Result{
			Node:    int64(r.Node),
			Score:   r.Score,
			Display: g.Display(r.Node),
			Snippet: ir.Snippet(g.Text(r.Node), res.Query, 160),
			InBase:  res.InBase(r.Node),
		})
	}
	return out
}

// renderItems converts cached result items to the JSON form, attaching
// display text and snippets read from g — the pinned generation's
// graph, so a concurrent swap cannot mismatch IDs and text.
func (s *Server) renderItems(g *graph.Graph, q *ir.Query, items []cache.ResultItem) []Result {
	out := make([]Result, 0, len(items))
	for _, it := range items {
		out = append(out, Result{
			Node:    int64(it.Node),
			Score:   it.Score,
			Display: g.Display(it.Node),
			Snippet: ir.Snippet(g.Text(it.Node), q, 160),
			InBase:  it.InBase,
		})
	}
	return out
}

func parseQuery(w http.ResponseWriter, r *http.Request) (*ir.Query, int, bool) {
	raw := r.URL.Query().Get("q")
	if strings.TrimSpace(raw) == "" {
		writeError(w, r, http.StatusBadRequest, "q parameter required")
		return nil, 0, false
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 || v > 1000 {
			writeError(w, r, http.StatusBadRequest, "k must be in 1..1000")
			return nil, 0, false
		}
		k = v
	}
	q := ir.ParseQuery(raw)
	if len(q.Terms()) == 0 {
		// Punctuation-/stopword-only input tokenizes to nothing; an
		// empty query used to fall through to a meaningless all-zero
		// base distribution. Reject it at the door.
		writeError(w, r, http.StatusBadRequest, "q contains no indexable terms")
		return nil, 0, false
	}
	return q, k, true
}

// parseNodeID validates one node-ID request parameter against the
// served graph: it must be a decimal integer in [0, NumNodes). The
// PRE-PR-4 handlers accepted any integer here and let negative or
// out-of-range IDs travel all the way into the explain stage (or, for
// feedback lists, into NodeID conversions that silently truncated on
// 32-bit overflow); now every ID is bounds-checked at the door and the
// 400 carries the request ID.
// The graph is passed explicitly (the caller's PINNED generation), so
// validation and use can never disagree across a concurrent swap.
func (s *Server) parseNodeID(w http.ResponseWriter, r *http.Request, g *graph.Graph, raw, what string) (graph.NodeID, bool) {
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "bad or missing "+what+": "+strconv.Quote(raw))
		return 0, false
	}
	if id < 0 || id >= int64(g.NumNodes()) {
		writeError(w, r, http.StatusBadRequest,
			what+" "+raw+" out of range [0, "+strconv.Itoa(g.NumNodes())+")")
		return 0, false
	}
	return graph.NodeID(id), true
}

// parseConfidences parses the optional confidence parameter of
// /reformulate: a comma-separated list of per-feedback-object weights
// for the ReformulateWeighted click-through path. nil (the parameter
// absent) means explicit marks — weight 1 everywhere. Each value must
// be a finite, non-negative float and the count must match the
// feedback count; NaN/Inf/negative values used to be representable in
// float syntax and would previously have reached the rate-adjustment
// arithmetic.
func parseConfidences(w http.ResponseWriter, r *http.Request, feedbackCount int) ([]float64, bool) {
	raw := r.URL.Query().Get("confidence")
	if raw == "" {
		return nil, true
	}
	var out []float64
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			writeError(w, r, http.StatusBadRequest,
				"bad confidence "+strconv.Quote(part)+": must be a finite non-negative number")
			return nil, false
		}
		out = append(out, v)
	}
	if len(out) != feedbackCount {
		writeError(w, r, http.StatusBadRequest,
			strconv.Itoa(len(out))+" confidence values for "+strconv.Itoa(feedbackCount)+" feedback objects")
		return nil, false
	}
	return out, true
}

// Engine exposes the underlying engine for tests and embedding.
func (s *Server) Engine() *core.Engine { return s.eng }

// Cache exposes the serving cache (nil when disabled).
func (s *Server) Cache() *cache.CachedEngine { return s.cache }

// Dataset exposes the currently served dataset (republished by corpus
// swaps).
func (s *Server) Dataset() *datagen.Dataset { return s.ds.Load() }

// RankWith runs a query outside HTTP (used by embedding callers). Like
// the handlers it is lock-free; the result's scores belong to the
// engine's buffer pool and may be handed back with Engine().Release
// once read.
func (s *Server) RankWith(q *ir.Query) *core.RankResult {
	return s.eng.Rank(q)
}
