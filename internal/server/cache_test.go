package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"authorityflow/internal/core"
	"authorityflow/internal/datagen"
	"authorityflow/internal/rank"
)

// testCachedServer builds a cache-enabled server next to an uncached
// twin over the SAME dataset, so responses can be compared.
func testCachedServer(t *testing.T) (*Server, *httptest.Server, *Server) {
	t.Helper()
	cfg := datagen.DBLPTopConfig().Scale(0.02)
	cfg.Seed = 4
	ds, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	core1 := core.Config{Rank: rank.Options{Threshold: 1e-6, MaxIters: 300}}
	s, err := New(ds, core1, WithCache(8<<20, 2), WithLegacyGrace())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	plain, err := New(ds, core1, WithLegacyGrace())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, plain
}

func TestCachedQueryHitAndStats(t *testing.T) {
	_, ts, _ := testCachedServer(t)

	var first, second QueryResponse
	if code := getJSON(t, ts.URL+"/query?q=olap&k=5", &first); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if first.Cache == "" || first.Cache == "result" {
		t.Errorf("first query cache source = %q, want a non-hit source", first.Cache)
	}
	if code := getJSON(t, ts.URL+"/query?q=olap&k=5", &second); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if second.Cache != "result" {
		t.Errorf("second query cache source = %q, want result", second.Cache)
	}
	if len(first.Results) != len(second.Results) {
		t.Fatalf("result lengths differ: %d vs %d", len(first.Results), len(second.Results))
	}
	for i := range first.Results {
		if first.Results[i] != second.Results[i] {
			t.Errorf("result %d differs between miss and hit: %+v vs %+v",
				i, first.Results[i], second.Results[i])
		}
	}

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != 200 {
		t.Fatalf("/stats status = %d", code)
	}
	if !st.CacheEnabled || st.Cache == nil {
		t.Fatalf("stats = %+v, want cache enabled", st)
	}
	if st.Cache.Result.Hits == 0 {
		t.Errorf("no result-cache hits recorded: %+v", st.Cache.Result)
	}
	if st.Cache.Computes == 0 {
		t.Errorf("no computes recorded: %+v", st.Cache)
	}
	if st.RatesVersion != 1 {
		t.Errorf("ratesVersion = %d, want 1", st.RatesVersion)
	}
}

// TestCachedMatchesUncached: a cache-enabled server must return the
// same /query payload (scores, order, base flags) as an uncached
// server over the same dataset and options.
func TestCachedMatchesUncached(t *testing.T) {
	_, ts, plain := testCachedServer(t)
	plainTS := httptest.NewServer(plain.Handler())
	defer plainTS.Close()

	for _, q := range []string{"olap", "olap+cube", "data+mining"} {
		url := "/query?q=" + q + "&k=10"
		var cached, uncached QueryResponse
		if code := getJSON(t, ts.URL+url, &cached); code != 200 {
			t.Fatalf("%s: status %d", q, code)
		}
		// Hit the cached server twice so the comparison also covers the
		// hit path.
		if code := getJSON(t, ts.URL+url, &cached); code != 200 {
			t.Fatalf("%s: status %d", q, code)
		}
		if code := getJSON(t, plainTS.URL+url, &uncached); code != 200 {
			t.Fatalf("%s: status %d", q, code)
		}
		if len(cached.Results) != len(uncached.Results) {
			t.Fatalf("%s: lengths %d vs %d", q, len(cached.Results), len(uncached.Results))
		}
		if cached.BaseSet != uncached.BaseSet || cached.Iterations != uncached.Iterations {
			t.Errorf("%s: meta differs: cached {base %d, iters %d} vs uncached {base %d, iters %d}",
				q, cached.BaseSet, cached.Iterations, uncached.BaseSet, uncached.Iterations)
		}
		for i := range cached.Results {
			c, u := cached.Results[i], uncached.Results[i]
			if c.Node != u.Node || c.Score != u.Score || c.InBase != u.InBase || c.Display != u.Display {
				t.Errorf("%s: result %d differs: %+v vs %+v", q, i, c, u)
			}
		}
	}
}

func TestHealthzReportsVersionAndCache(t *testing.T) {
	s, ts, _ := testCachedServer(t)
	var h HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if h.RatesVersion != 1 || !h.CacheEnabled {
		t.Errorf("healthz = %+v, want ratesVersion 1, cacheEnabled true", h)
	}
	if h.Nodes != s.Dataset().Graph.NumNodes() || h.Edges != s.Dataset().Graph.NumEdges() {
		t.Errorf("healthz counts = %+v", h)
	}

	// An uncached server reports the cache off and /stats still works.
	plainTS := httptest.NewServer(testCachedServerPlain(t).Handler())
	defer plainTS.Close()
	var h2 HealthResponse
	getJSON(t, plainTS.URL+"/healthz", &h2)
	if h2.CacheEnabled {
		t.Error("uncached server claims cacheEnabled")
	}
	var st StatsResponse
	if code := getJSON(t, plainTS.URL+"/stats", &st); code != 200 {
		t.Fatalf("/stats status = %d", code)
	}
	if st.CacheEnabled || st.Cache != nil {
		t.Errorf("uncached /stats = %+v", st)
	}
}

func testCachedServerPlain(t *testing.T) *Server {
	t.Helper()
	s, _ := testServer(t)
	return s
}

// TestCachedReformulateBumpsVersion: a reformulation through a cached
// server publishes new rates; /query afterwards serves the new version
// (never a stale cached answer) and /healthz reflects the bump.
func TestCachedReformulateBumpsVersion(t *testing.T) {
	_, ts, _ := testCachedServer(t)

	var q1 QueryResponse
	getJSON(t, ts.URL+"/query?q=olap&k=3", &q1)
	if len(q1.Results) == 0 {
		t.Skip("no results at this scale")
	}
	target := q1.Results[0].Node

	var ref ReformulateResponse
	code := getJSON(t, fmt.Sprintf("%s/reformulate?q=olap&feedback=%d&mode=structure", ts.URL, target), &ref)
	if code != 200 {
		t.Fatalf("reformulate status = %d", code)
	}
	if ref.Version != 2 {
		t.Fatalf("post-reformulation version = %d, want 2", ref.Version)
	}
	var q2 QueryResponse
	getJSON(t, ts.URL+"/query?q=olap&k=3", &q2)
	if q2.Version != 2 {
		t.Errorf("query after reformulation served version %d, want 2", q2.Version)
	}
	var h HealthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.RatesVersion != 2 {
		t.Errorf("healthz ratesVersion = %d, want 2", h.RatesVersion)
	}
}

// TestCachedServerConcurrency is the -race workout of the cached HTTP
// path: concurrent queries (hitting, missing, deduplicating) racing
// reformulations that publish new rates.
func TestCachedServerConcurrency(t *testing.T) {
	_, ts, _ := testCachedServer(t)

	var q1 QueryResponse
	getJSON(t, ts.URL+"/query?q=olap&k=3", &q1)
	if len(q1.Results) == 0 {
		t.Skip("no results at this scale")
	}
	target := q1.Results[0].Node

	queries := []string{"olap", "olap+cube", "cube", "data"}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				resp, err := http.Get(ts.URL + "/query?q=" + queries[(w+i)%len(queries)] + "&k=5")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("query status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			resp, err := http.Get(fmt.Sprintf("%s/reformulate?q=olap&feedback=%d&mode=structure", ts.URL, target))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 && resp.StatusCode != 409 && resp.StatusCode != 400 {
				t.Errorf("reformulate status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()

	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Cache == nil || st.Cache.Result.Hits+st.Cache.Vector.Hits == 0 {
		t.Errorf("no cache hits under concurrent load: %+v", st.Cache)
	}
}

// TestServerCloseWhilePublishing is the cmd/afqserver graceful-shutdown
// ordering regression at the Server level: Close (which stops the
// cache's prewarmer) racing rate publications must neither deadlock nor
// panic nor revive the prewarmer — the cache's publish hook becomes a
// no-op the moment Close starts. This is exactly the cleanup step
// serve() runs after http.Server.Shutdown drains in-flight requests
// (one of which may have just published via TrySetRates). Run under
// -race.
func TestServerCloseWhilePublishing(t *testing.T) {
	s, ts, _ := testCachedServer(t)
	// Record a hot term so the prewarmer has work on each publication.
	getJSON(t, ts.URL+"/query?q=olap&k=3", nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // a publisher standing in for in-flight reformulations
		defer wg.Done()
		eng := s.Engine()
		for {
			select {
			case <-stop:
				return
			default:
				if err := eng.SetRates(eng.Rates()); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close blocked while publications were racing shutdown")
	}
	close(stop)
	wg.Wait()
	s.Close() // idempotent, as serve()'s cleanup path may double-fire in tests
}
