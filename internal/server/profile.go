// profile.go wires the per-user personalization tier (internal/profile)
// into the HTTP surface:
//
//	GET|PUT|POST|DELETE /v1/profile/{id}   profile CRUD
//	GET /v1/query?q=...&profile={id}       personalized ranking
//	GET /v1/reformulate?...&profile={id}   profile-scoped training
//
// Personalized queries ride the basis-combination fast path: the
// profile's topic mixture combines precomputed basis fixpoints with the
// query's own (cached) fixpoint, so a personalized answer costs one
// O(|mixture|·|V|) vector blend on top of whatever the global tier
// already paid. Profile-scoped reformulation trains the CALLER's
// mixture and rates-delta and publishes nothing globally — a user's
// feedback can never race (or pollute) the fleet's shared rates.
//
// CRUD runs outside the admission guard (like /v1/rates — byte-sized
// record writes, no kernel work); the personalized query/reformulate
// paths go through the guard with the rest of the expensive endpoints.
package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"

	"authorityflow/internal/core"
	"authorityflow/internal/graph"
	"authorityflow/internal/ir"
	"authorityflow/internal/obs"
	"authorityflow/internal/profile"
	"authorityflow/internal/rank"
)

// WithProfiles enables the personalization tier: profiles persist under
// dir (one checksummed record per profile, atomic replace), and the
// topic basis holds basisSize precomputed fixpoint vectors (0 =
// profile.DefaultBasisSize). An empty dir serves profiles memory-only.
func WithProfiles(dir string, basisSize int) Option {
	return WithProfileOptions(profile.Options{Dir: dir, BasisSize: basisSize})
}

// WithProfileOptions enables the personalization tier with full
// profile.Options. Options.BaseRank is overridden on cache-enabled
// servers so personalized queries share the serving cache's term
// vectors and solve singleflight.
func WithProfileOptions(po profile.Options) Option {
	return func(o *serverOptions) {
		o.profileEnabled = true
		o.profileOpts = po
	}
}

// WithLegacyGrace restores the pre-sunset behaviour of the legacy
// unversioned routes (alias serving with deprecation headers) instead
// of the post-sunset 410. An escape hatch for deployments still
// migrating clients to /v1; new deployments should not set it.
func WithLegacyGrace() Option {
	return func(o *serverOptions) { o.legacyGrace = true }
}

// maxProfileBody bounds a profile update body (a mixture is at most a
// few dozen term/weight pairs).
const maxProfileBody = 256 << 10

// Profiles exposes the personalization manager (nil when disabled).
func (s *Server) Profiles() *profile.Manager { return s.profiles }

// profileID extracts and validates the {id} segment of /v1/profile/{id}.
func profileID(w http.ResponseWriter, r *http.Request) (string, bool) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/profile/")
	if !profile.ValidID(id) {
		writeError(w, r, http.StatusBadRequest,
			"profile id must be 1..128 bytes of [A-Za-z0-9._-]")
		return "", false
	}
	return id, true
}

// writeProfileError maps personalization-tier errors onto the v1
// surface: ErrNotFound → 404 profile_not_found, everything else 500.
func (s *Server) writeProfileError(w http.ResponseWriter, r *http.Request, id string, err error) {
	if errors.Is(err, profile.ErrNotFound) {
		writeAPIError(w, r, http.StatusNotFound, CodeProfileNotFound,
			"no profile exists under id "+strconv.Quote(id)+"; create it with PUT /v1/profile/"+id)
		return
	}
	writeError(w, r, http.StatusInternalServerError, err.Error())
}

// handleProfile is the /v1/profile/{id} CRUD surface.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if s.profiles == nil {
		writeAPIError(w, r, http.StatusForbidden, CodeInvalidArgument,
			"personalization is disabled: the server was started without a profile store (-profile-dir)")
		return
	}
	id, ok := profileID(w, r)
	if !ok {
		return
	}
	switch r.Method {
	case http.MethodGet:
		p, err := s.profiles.Get(id)
		if err != nil {
			s.writeProfileError(w, r, id, err)
			return
		}
		writeJSON(w, http.StatusOK, profileDTO(p))
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxProfileBody+1))
		if err != nil {
			writeError(w, r, http.StatusBadRequest, "reading body: "+err.Error())
			return
		}
		if len(body) > maxProfileBody {
			writeError(w, r, http.StatusBadRequest, "profile body too large")
			return
		}
		var req ProfileUpdateRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, r, http.StatusBadRequest, "bad JSON body: "+err.Error())
			return
		}
		// Updates replace the declared interests but preserve learned
		// state: an existing profile keeps its trained rates-delta and
		// its revision history.
		next := &profile.Profile{ID: id, Mixture: req.Mixture, Beta: req.Beta}
		if prev, err := s.profiles.Get(id); err == nil {
			next.Delta = append([]float64(nil), prev.Delta...)
			next.Rev = prev.Rev
			next.TrainedGeneration = prev.TrainedGeneration
			next.TrainedRatesVersion = prev.TrainedRatesVersion
		}
		stored, err := s.profiles.Put(next)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, err.Error())
			return
		}
		s.obs.profileUpdates.Inc()
		writeJSON(w, http.StatusOK, profileDTO(stored))
	case http.MethodDelete:
		if err := s.profiles.Delete(id); err != nil {
			writeError(w, r, http.StatusInternalServerError, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, PUT, POST, DELETE")
		writeError(w, r, http.StatusMethodNotAllowed, "GET, PUT, POST or DELETE required")
	}
}

// profileDTO renders a stored profile as the API shape.
func profileDTO(p *profile.Profile) ProfileResponse {
	mix := make(map[string]float64, len(p.Mixture))
	for t, w := range p.Mixture {
		mix[t] = w
	}
	return ProfileResponse{
		ID:                  p.ID,
		Mixture:             mix,
		Beta:                p.Beta,
		Rev:                 p.Rev,
		HasDelta:            len(p.Delta) > 0,
		TrainedGeneration:   p.TrainedGeneration,
		TrainedRatesVersion: p.TrainedRatesVersion,
	}
}

// handleProfileQuery serves GET /v1/query?profile={id}: the
// personalized twin of the global query path, answered by the
// basis-combination fast path. Called from handleQuery once the
// profile parameter is seen; the pin is the request's single engine
// state, exactly as on the global path.
func (s *Server) handleProfileQuery(w http.ResponseWriter, r *http.Request, pin *core.Pinned, id string, q *ir.Query, k int) {
	if s.profiles == nil {
		writeAPIError(w, r, http.StatusForbidden, CodeInvalidArgument,
			"personalization is disabled: the server was started without a profile store (-profile-dir)")
		return
	}
	if !profile.ValidID(id) {
		writeError(w, r, http.StatusBadRequest,
			"profile id must be 1..128 bytes of [A-Za-z0-9._-]")
		return
	}
	ctx := r.Context()
	tr := obs.TraceFrom(ctx)
	ans, src, err := s.profiles.QueryCtx(ctx, pin, id, q, k)
	if err != nil {
		if errors.Is(err, profile.ErrNotFound) {
			s.writeProfileError(w, r, id, err)
			return
		}
		s.writeCtxError(w, r, err)
		return
	}
	tr.Eventf("combine", "profile=%s source=%s personalized=%t", id, src, ans.Personalized)
	s.obs.profileOutcome.With(string(src)).Inc()
	g := pin.Corpus().Graph()
	writeJSON(w, http.StatusOK, QueryResponse{
		Query:        q.String(),
		BaseSet:      ans.BaseSet,
		Iterations:   ans.Iterations,
		Version:      ans.RatesVersion,
		Generation:   ans.Generation,
		Cache:        string(src),
		Profile:      id,
		Personalized: ans.Personalized,
		Results:      s.renderRanked(g, q, ans.Results, ans.InBase),
	})
}

// handleProfileReformulate finishes GET /v1/reformulate?profile={id}:
// the feedback subgraphs train the named profile (mixture EWMA +
// rates-delta under the profile's effective rates) instead of
// publishing globally. Called from handleReformulate with the parsed
// query, feedback subgraphs and mode already in hand.
func (s *Server) handleProfileReformulate(w http.ResponseWriter, r *http.Request, pin *core.Pinned, id string, q *ir.Query, k int, subs []*core.Subgraph, confidences []float64, opts core.ReformulateOptions) {
	if s.profiles == nil {
		writeAPIError(w, r, http.StatusForbidden, CodeInvalidArgument,
			"personalization is disabled: the server was started without a profile store (-profile-dir)")
		return
	}
	if !profile.ValidID(id) {
		writeError(w, r, http.StatusBadRequest,
			"profile id must be 1..128 bytes of [A-Za-z0-9._-]")
		return
	}
	ctx := r.Context()
	tr := obs.TraceFrom(ctx)
	ref, trained, err := s.profiles.TrainCtx(ctx, pin, id, q, subs, confidences, &opts)
	if err != nil {
		if errors.Is(err, profile.ErrNotFound) {
			s.writeProfileError(w, r, id, err)
			return
		}
		if ctx.Err() != nil {
			s.writeCtxError(w, r, err)
			return
		}
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	tr.Eventf("train", "profile=%s rev=%d rates=%s expansion=%d",
		id, trained.Rev, ref.Rates.String(), len(ref.Expansion))
	resp := ReformulateResponse{
		Query:      ref.Query.String(),
		Rates:      ref.Rates.String(),
		Version:    pin.Version(), // training publishes nothing
		Profile:    id,
		ProfileRev: trained.Rev,
	}
	// Answer the reformulated query PERSONALIZED — the round-trip a user
	// actually experiences: feedback in, re-ranked personalized list out.
	ans, src, err := s.profiles.QueryCtx(ctx, pin, id, ref.Query, k)
	if err != nil {
		s.writeCtxError(w, r, err)
		return
	}
	s.obs.profileOutcome.With(string(src)).Inc()
	resp.Results = s.renderRanked(pin.Corpus().Graph(), ref.Query, ans.Results, ans.InBase)
	for _, wt := range ref.Expansion {
		resp.Expansion = append(resp.Expansion, ExpansionTerm{Term: wt.Term, Weight: wt.Weight})
	}
	writeJSON(w, http.StatusOK, resp)
}

// renderRanked converts a personalized answer's ranked nodes to the
// JSON result shape against the pinned generation's graph.
func (s *Server) renderRanked(g *graph.Graph, q *ir.Query, items []rank.Ranked, inBase map[graph.NodeID]bool) []Result {
	out := make([]Result, 0, len(items))
	for _, it := range items {
		out = append(out, Result{
			Node:    int64(it.Node),
			Score:   it.Score,
			Display: g.Display(it.Node),
			Snippet: ir.Snippet(g.Text(it.Node), q, 160),
			InBase:  inBase[it.Node],
		})
	}
	return out
}
