// contract.go is the uniform read-query contract of the ranking
// surface: the mode and budget parameters accepted — with identical
// validation and identical invalid_argument messages — by /v1/query,
// /v1/query/batch, /v1/explain and /v1/audit, on the server AND on the
// router (which imports these exact validators so a request rejected at
// either tier produces the same bytes).
//
//   - mode selects the ranking direction: authority (the default, the
//     paper's ObjectRank2 semantics), hub (the CheiRank dual on the
//     direction-reversed graph), or combined (the per-node geometric
//     mean of both). Spelled exactly as core.ParseMode accepts it; the
//     empty string means authority, so every pre-mode request keeps its
//     meaning and its bytes.
//   - budget caps ranked contribution lists (the explaining arcs of
//     /v1/audit and the contributions[] block of /v1/explain). 0 means
//     the endpoint default (core.DefaultAuditBudget); surfaces without
//     contribution lists (/v1/query, /v1/query/batch) validate it all
//     the same and ignore it, so a client can set it fleet-wide without
//     caring which endpoint a request lands on.
//
// (/v1/reformulate's mode parameter is a different, pre-existing axis —
// the reformulation strategy structure|content|both — and is NOT part
// of this contract; reformulation is a write surface.)
package server

import (
	"errors"
	"net/http"
	"net/url"
	"strconv"

	"authorityflow/internal/core"
)

// MaxBudget bounds the budget parameter (matching k's 1000 cap).
const MaxBudget = 1000

// ReadParams is the validated uniform read-query parameter set.
type ReadParams struct {
	// Mode is the resolved ranking direction (never the empty string;
	// an absent parameter resolves to core.ModeAuthority).
	Mode core.Mode
	// Budget is the contribution budget; 0 means the endpoint default.
	Budget int
}

// readParamTable is THE validation table of the uniform contract: one
// entry per parameter, applied in order. Every entry's error message
// names the field, and every surface — the four server handlers, the
// batch items, and the router's mirrors — funnels through these same
// entries, so an invalid value produces one spelling of the rejection
// everywhere.
var readParamTable = []struct {
	name  string
	apply func(raw string, rp *ReadParams) error
}{
	{"mode", func(raw string, rp *ReadParams) error {
		m, err := core.ParseMode(raw)
		if err != nil {
			return err // core's message already names the field
		}
		rp.Mode = m
		return nil
	}},
	{"budget", func(raw string, rp *ReadParams) error {
		if raw == "" {
			return nil
		}
		v, err := strconv.Atoi(raw)
		if err != nil {
			return errBudget
		}
		if err := CheckBudget(v); err != nil {
			return err
		}
		rp.Budget = v
		return nil
	}},
}

var errBudget = errors.New("budget must be an integer in 0.." + strconv.Itoa(MaxBudget))

// CheckBudget validates an already-numeric budget (the JSON batch items
// carry it as an int) against the same bound the table entry enforces.
func CheckBudget(v int) error {
	if v < 0 || v > MaxBudget {
		return errBudget
	}
	return nil
}

// ValidateReadParams runs the table over URL query values and returns
// the validated parameter set or the first table error. Exported for
// the router, which mirrors the validation before fan-out so a bad
// request is rejected with the replica's exact message without
// spending a proxy hop.
func ValidateReadParams(v url.Values) (ReadParams, error) {
	rp := ReadParams{Mode: core.ModeAuthority}
	for _, e := range readParamTable {
		if err := e.apply(v.Get(e.name), &rp); err != nil {
			return rp, err
		}
	}
	return rp, nil
}

// ValidateItemParams validates a batch item's mode/budget pair through
// the same table semantics (mode via the table's string validator,
// budget via CheckBudget since JSON already made it an int).
func ValidateItemParams(mode string, budget int) (ReadParams, error) {
	rp := ReadParams{Mode: core.ModeAuthority}
	m, err := core.ParseMode(mode)
	if err != nil {
		return rp, err
	}
	if err := CheckBudget(budget); err != nil {
		return rp, err
	}
	rp.Mode, rp.Budget = m, budget
	return rp, nil
}

// parseReadParams is the handler-side wrapper: table violations become
// the uniform invalid_argument rejection.
func parseReadParams(w http.ResponseWriter, r *http.Request) (ReadParams, bool) {
	rp, err := ValidateReadParams(r.URL.Query())
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return rp, false
	}
	return rp, true
}

// requireExplainable gates the explain/audit surfaces on explainable
// modes with one shared message.
func requireExplainable(w http.ResponseWriter, r *http.Request, m core.Mode) bool {
	if m.Explainable() {
		return true
	}
	writeError(w, r, http.StatusBadRequest,
		"mode "+string(m)+" is not explainable (combined scores mix two flow systems)")
	return false
}
