package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyTransport fails the first n round trips at the connection level
// (no HTTP response), then delegates to the real transport.
type flakyTransport struct {
	failures atomic.Int64
	attempts atomic.Int64
}

func (ft *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ft.attempts.Add(1)
	if ft.failures.Add(-1) >= 0 {
		return nil, &net.OpError{Op: "dial", Err: errors.New("connection refused (injected)")}
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestClientRetriesConnectionErrors: WithRetries re-attempts requests
// that failed before any HTTP response arrived — and replays POST
// bodies from their buffered bytes.
func TestClientRetriesConnectionErrors(t *testing.T) {
	_, ts := testServer(t)

	ft := &flakyTransport{}
	ft.failures.Store(2)
	c := NewClient(ts.URL, &http.Client{Transport: ft}, WithRetries(2))

	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("health after 2 injected failures: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if got := ft.attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (2 failures + 1 success)", got)
	}

	// A POST replays its body across retries.
	ft.failures.Store(1)
	ft.attempts.Store(0)
	batch, err := c.QueryBatch(context.Background(), BatchQueryRequest{
		Queries: []BatchQueryItem{{Q: "olap", K: 3}},
	})
	if err != nil {
		t.Fatalf("batch after injected failure: %v", err)
	}
	if len(batch.Answers) != 1 || len(batch.Answers[0].Results) == 0 {
		t.Errorf("replayed batch answered %+v", batch)
	}
	if got := ft.attempts.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
}

// TestClientRetriesExhausted: more consecutive connection failures
// than the retry budget surface the transport error.
func TestClientRetriesExhausted(t *testing.T) {
	_, ts := testServer(t)
	ft := &flakyTransport{}
	ft.failures.Store(5)
	c := NewClient(ts.URL, &http.Client{Transport: ft}, WithRetries(2))
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("want an error after exhausting retries")
	}
	if got := ft.attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (initial + 2 retries)", got)
	}
}

// TestClientDoRawOnceNeverRetries: DoRawOnce bypasses the WithRetries
// budget — exactly one attempt, so a non-idempotent dispatch (the
// router's /v1/reformulate) can never be silently re-sent after a
// transport failure that may have landed server-side.
func TestClientDoRawOnceNeverRetries(t *testing.T) {
	_, ts := testServer(t)
	ft := &flakyTransport{}
	ft.failures.Store(1)
	c := NewClient(ts.URL, &http.Client{Transport: ft}, WithRetries(3))

	if _, err := c.DoRawOnce(context.Background(), http.MethodGet, "/v1/healthz", nil, nil); err == nil {
		t.Fatal("want the injected transport error surfaced, not retried away")
	}
	if got := ft.attempts.Load(); got != 1 {
		t.Errorf("attempts = %d, want exactly 1", got)
	}

	// Same budget, same failure: DoRaw retries it away.
	ft.failures.Store(1)
	ft.attempts.Store(0)
	resp, err := c.DoRaw(context.Background(), http.MethodGet, "/v1/healthz", nil, nil)
	if err != nil || resp.Status != http.StatusOK {
		t.Fatalf("DoRaw after one injected failure: resp=%+v err=%v", resp, err)
	}
	if got := ft.attempts.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
}

// TestClientNeverRetriesHTTPErrors: an HTTP error status is a real
// answer — the client must not replay the request.
func TestClientNeverRetriesHTTPErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeJSON(w, http.StatusConflict, ConflictEnvelope{
			Error:   ErrorInfo{Code: CodeVersionConflict, Message: "raced"},
			Version: 7,
		})
	}))
	defer ts.Close()

	c := NewClient(ts.URL, nil, WithRetries(3))
	_, err := c.Rates(context.Background())
	apiErr, ok := err.(*APIError)
	if !ok || !apiErr.IsConflict() || apiErr.Version != 7 {
		t.Fatalf("error = %v, want the decoded 409", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server hit %d times, want exactly 1 — HTTP statuses are never retried", got)
	}
}

// TestClientRequestTimeout: WithRequestTimeout bounds each attempt on
// its own, without a deadline on the caller's context or the
// http.Client.
func TestClientRequestTimeout(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(release)

	c := NewClient(ts.URL, nil, WithRequestTimeout(50*time.Millisecond))
	t0 := time.Now()
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("want a timeout error from the hung handler")
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Errorf("timed out after %v, want ~50ms", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Logf("timeout error type: %v (transport-wrapped deadline is acceptable)", err)
	}
}

// TestClientTimeoutNeverExtendsCallerContext: the per-attempt timeout
// layers UNDER the caller's deadline; a tighter caller context wins,
// and a cancelled context stops the retry loop immediately.
func TestClientTimeoutNeverExtendsCallerContext(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(release)

	c := NewClient(ts.URL, nil, WithRequestTimeout(10*time.Second), WithRetries(5))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := c.Health(ctx)
	if err == nil {
		t.Fatal("want an error from the expired caller context")
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Errorf("returned after %v — the 10s attempt timeout must not extend the caller's 50ms deadline, and retries must stop on a dead context", elapsed)
	}
}
