// publish.go implements POST /v1/rates: direct publication of an
// already-trained rate vector through the engine's optimistic CAS.
//
// /v1/reformulate LEARNS rates from feedback and publishes them as a
// side effect; this endpoint publishes a vector somebody else already
// learned. It exists for the scale-out tier: the afqrouter coordinator
// applies a reformulation on one replica, reads back the resulting
// vector, and replays it onto every other replica through this
// endpoint with each replica's current version as the CAS token — so
// the whole fleet advances through the same (generation, ratesVersion)
// sequence and any replica can answer any query consistently.
//
// Concurrency semantics are exactly TrySetRates': the publish lands
// only if the replica's rates version still equals the token (409 +
// winning version otherwise), and the optional ifGeneration guard
// rejects a vector trained on a different corpus generation (409 +
// current generation) — the same two conflict axes /v1/reformulate and
// /v1/corpus/swap already expose.
package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"authorityflow/internal/core"
	"authorityflow/internal/obs"
)

// maxRatesBody bounds the POST /v1/rates body; rate vectors have one
// entry per schema transfer type (a handful), so 1 MiB is generous.
const maxRatesBody = 1 << 20

func (s *Server) handleRatesPublish(w http.ResponseWriter, r *http.Request) {
	var req RatesPublishRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRatesBody+1))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if len(body) > maxRatesBody {
		writeError(w, r, http.StatusBadRequest, "body too large")
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	if len(req.Vector) == 0 {
		writeError(w, r, http.StatusBadRequest, "vector required")
		return
	}

	// Pin once: the generation guard, the version token default and the
	// vector validation all read the same engine state.
	pin := s.eng.Pin()
	if req.IfGeneration != 0 && req.IfGeneration != pin.Generation() {
		writeJSON(w, http.StatusConflict, SwapConflictEnvelope{
			Error: ErrorInfo{
				Code:      CodeVersionConflict,
				Message:   "rates were trained on a different corpus generation",
				RequestID: obs.RequestIDFrom(r.Context()),
			},
			Generation: pin.Generation(),
		})
		return
	}
	rates := pin.Rates()
	if err := rates.SetVector(req.Vector); err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if err := rates.Validate(); err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	ifVersion := req.IfVersion
	if ifVersion == 0 {
		ifVersion = pin.Version()
	}
	newVersion, err := s.eng.TrySetRates(rates, ifVersion)
	if errors.Is(err, core.ErrRatesConflict) {
		writeConflict(w, r, "rates were changed concurrently; re-read and retry", newVersion)
		return
	}
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	obs.TraceFrom(r.Context()).Eventf("publish", "version=%d", newVersion)
	writeJSON(w, http.StatusOK, RatesResponse{
		Rates:   rates.String(),
		Vector:  rates.Vector(),
		Version: newVersion,
	})
}

// handleRatesDispatch routes /v1/rates by method: GET reads the
// published rates, POST publishes a vector (the fleet-propagation
// write). The legacy /rates alias keeps its historical read-any-method
// behaviour.
func (s *Server) handleRatesDispatch(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		s.handleRatesPublish(w, r)
		return
	}
	s.handleRates(w, r)
}
